package stableleader

import (
	"errors"
	"fmt"
	"time"

	"stableleader/id"
	"stableleader/internal/election"
	"stableleader/qos"
)

// Algorithm selects the leader election core used within a group. See the
// package documentation for the trade-offs.
type Algorithm int

// Available election algorithms.
const (
	// OmegaL is the communication-efficient algorithm (service S3 of the
	// paper): eventually only the leader sends heartbeats.
	OmegaL Algorithm = Algorithm(election.OmegaL)
	// OmegaLC tolerates crashed links via leader forwarding (service S2).
	OmegaLC Algorithm = Algorithm(election.OmegaLC)
	// OmegaID is the unstable smallest-id baseline (service S1).
	OmegaID Algorithm = Algorithm(election.OmegaID)
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string { return election.Kind(a).String() }

// ParseAlgorithm converts a name ("omega-l", "omega-lc", "omega-id") into
// an Algorithm. It accepts the paper's service names (s1, s2, s3) and is
// the inverse of Algorithm.String.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "omega-l", "omegal", "s3", "S3":
		return OmegaL, nil
	case "omega-lc", "omegalc", "s2", "S2":
		return OmegaLC, nil
	case "omega-id", "omegaid", "s1", "S1":
		return OmegaID, nil
	default:
		return 0, fmt.Errorf("stableleader: unknown algorithm %q", s)
	}
}

// serviceConfig is the validated result of applying Options.
type serviceConfig struct {
	seed        int64
	clientPlane bool
	shards      int
	flightDepth int
}

// Option configures a Service at construction (see New).
type Option func(*serviceConfig) error

// WithSeed seeds the service's internal randomness (gossip peer choice).
// The default derives a seed from the clock; fixing it makes peer choice
// reproducible, which tests and simulations want.
func WithSeed(seed int64) Option {
	return func(c *serviceConfig) error {
		c.seed = seed
		return nil
	}
}

// WithShards sets the number of event-loop shards the service runs
// (default: one per schedulable CPU, capped at MaxShards). Each shard
// owns its own event loop, timer wheel, RNG and protocol node, and serves
// the groups whose ids hash onto it — protocol work for groups on
// different shards runs in parallel with no cross-shard locking. One
// shard reproduces the classic single-loop behavior exactly; a group
// never migrates between shards for the life of the service. Values
// above MaxShards are rejected.
func WithShards(n int) Option {
	return func(c *serviceConfig) error {
		if n < 1 {
			return errors.New("stableleader: shard count must be at least 1")
		}
		if n > MaxShards {
			return fmt.Errorf("stableleader: shard count %d exceeds MaxShards (%d)", n, MaxShards)
		}
		c.shards = n
		return nil
	}
}

// WithClientPlane turns on the remote client plane: the service answers
// SUBSCRIBE/LEASE_RENEW/UNSUBSCRIBE messages from non-member processes
// (see the client package) and keeps them informed of leadership through
// lease-bounded LEADER_SNAPSHOT messages — fan-out on leader changes plus
// staggered re-advertisement, coalesced per client. Graceful departures
// (Group.Leave, Close) send final tombstone snapshots so subscribed
// clients fail over immediately.
func WithClientPlane() Option {
	return func(c *serviceConfig) error {
		c.clientPlane = true
		return nil
	}
}

// WithFlightRecorderDepth sizes each shard's protocol flight recorder:
// the fixed ring of per-shard decision records (suspicions, rank
// changes, handovers, leader changes) DumpFlight and the /debug/flight
// probe expose. The default keeps the last 1024 records per shard; a
// larger ring extends the lookback window at a fixed memory cost of
// ~64 B per record, decided once at construction.
func WithFlightRecorderDepth(n int) Option {
	return func(c *serviceConfig) error {
		if n < 1 {
			return errors.New("stableleader: flight recorder depth must be at least 1")
		}
		c.flightDepth = n
		return nil
	}
}

// joinConfig is the validated result of applying JoinOptions; defaults
// live in defaultJoinConfig.
type joinConfig struct {
	candidate           bool
	algorithm           Algorithm
	spec                qos.Spec
	seeds               []id.Process
	helloInterval       time.Duration
	gossipFanout        int
	reconfigureInterval time.Duration
	disableHandover     bool
}

// defaultJoinConfig is the paper's setting: a passive observer running
// OmegaL under qos.Default, gossiping every second to three peers.
func defaultJoinConfig() joinConfig {
	return joinConfig{
		algorithm:           OmegaL,
		spec:                qos.Default(),
		helloInterval:       time.Second,
		gossipFanout:        3,
		reconfigureInterval: time.Second,
	}
}

// JoinOption configures membership in one group (see Service.Join).
type JoinOption func(*joinConfig) error

// AsCandidate marks this process as willing to lead the group. Elections
// choose only among candidates; without this option the process observes
// leadership passively.
func AsCandidate() JoinOption {
	return func(c *joinConfig) error {
		c.candidate = true
		return nil
	}
}

// WithAlgorithm selects the election core (default OmegaL).
func WithAlgorithm(a Algorithm) JoinOption {
	return func(c *joinConfig) error {
		switch a {
		case OmegaL, OmegaLC, OmegaID:
			c.algorithm = a
			return nil
		default:
			return fmt.Errorf("stableleader: invalid algorithm %d", a)
		}
	}
}

// WithQoS sets the failure detection requirement inside the group. The
// default is qos.Default(), the paper's setting.
func WithQoS(spec qos.Spec) JoinOption {
	return func(c *joinConfig) error {
		if err := spec.Validate(); err != nil {
			return err
		}
		c.spec = spec
		return nil
	}
}

// WithSeeds names processes contacted with the initial JOIN announcement;
// membership then spreads by gossip, so seeds need not be exhaustive.
// Repeated use accumulates.
func WithSeeds(seeds ...id.Process) JoinOption {
	return func(c *joinConfig) error {
		c.seeds = append(c.seeds, seeds...)
		return nil
	}
}

// WithHelloInterval sets the membership gossip period (default 1s).
func WithHelloInterval(d time.Duration) JoinOption {
	return func(c *joinConfig) error {
		if d <= 0 {
			return errors.New("stableleader: hello interval must be positive")
		}
		c.helloInterval = d
		return nil
	}
}

// WithGossipFanout sets how many members each gossip round targets
// (default 3).
func WithGossipFanout(n int) JoinOption {
	return func(c *joinConfig) error {
		if n <= 0 {
			return errors.New("stableleader: gossip fanout must be positive")
		}
		c.gossipFanout = n
		return nil
	}
}

// WithReconfigureInterval sets how often the QoS configurator re-derives
// failure detection parameters from fresh link estimates (default 1s).
// Shorter intervals adapt faster to changing links at slightly higher CPU
// cost; they also raise the rate of QoSReconfigured events.
func WithReconfigureInterval(d time.Duration) JoinOption {
	return func(c *joinConfig) error {
		if d <= 0 {
			return errors.New("stableleader: reconfigure interval must be positive")
		}
		c.reconfigureInterval = d
		return nil
	}
}

// WithoutHandover disables the warm-standby plane for this membership: no
// standby is nominated or adopted, and graceful departures fail the group
// over reactively (peers wait out failure detection; clients wait out
// their leases). Exists for experiments measuring what planned handover
// buys; production memberships should not use it.
func WithoutHandover() JoinOption {
	return func(c *joinConfig) error {
		c.disableHandover = true
		return nil
	}
}

// queryConfig is the result of applying QueryOptions.
type queryConfig struct {
	sync bool
}

// QueryOption configures one Leader or Status query.
type QueryOption func(*queryConfig)

// WithSyncRead serialises the query through the service event loop
// instead of answering from the wait-free snapshot. The result then
// reflects every event the loop has processed when the query runs —
// read-your-event-loop semantics, which tests that interleave commands
// and queries rely on. It costs a channel round-trip per call; the
// default snapshot read costs a single atomic load.
func WithSyncRead() QueryOption {
	return func(c *queryConfig) { c.sync = true }
}

// wantSyncRead applies query options. The len guard keeps the zero-option
// hot path allocation free: &c passed to an opaque func forces c to the
// heap, so it must only happen on the (cold) optioned path.
func wantSyncRead(opts []QueryOption) bool {
	if len(opts) == 0 {
		return false
	}
	var c queryConfig
	for _, o := range opts {
		o(&c)
	}
	return c.sync
}

// watchConfig is the result of applying WatchOptions.
type watchConfig struct {
	buffer  int
	mask    uint64
	initial bool
}

// defaultWatchBuffer sizes a Watch stream's buffer when WithWatchBuffer is
// not given.
const defaultWatchBuffer = 16

// WatchOption configures one Watch subscription (see Group.Watch).
type WatchOption func(*watchConfig)

// WithWatchBuffer sizes this subscriber's event buffer (default 16;
// sizes below 1 are ignored and the default applies). When the buffer is
// full the oldest undelivered event is dropped, never the newest.
func WithWatchBuffer(n int) WatchOption {
	return func(c *watchConfig) {
		if n > 0 {
			c.buffer = n
		}
	}
}

// WithEventFilter restricts the stream to the given kinds. Repeated use
// accumulates; without it every kind is delivered. Unknown kinds match
// nothing (they never silently widen the filter).
func WithEventFilter(kinds ...EventKind) WatchOption {
	return func(c *watchConfig) {
		// Bit 0 (no kind uses it: kinds start at 1) marks "a filter was
		// given", so a filter of only unknown kinds matches nothing
		// rather than degrading to the match-all zero mask.
		c.mask |= 1
		for _, k := range kinds {
			if k >= KindLeaderChanged && k <= KindStandbyChanged {
				c.mask |= 1 << uint(k)
			}
		}
	}
}

// WithInitialState delivers the group's current leader view as a synthetic
// LeaderChanged event immediately on subscription (if one has been
// observed), so a late subscriber need not wait for the next change to
// learn the standing leader.
func WithInitialState() WatchOption {
	return func(c *watchConfig) { c.initial = true }
}
