package stableleader_test

// Micro-benchmarks for the steady-state hot paths introduced by the
// atomic read plane: Leader and Status as single atomic loads, against
// the loop-serialised WithSyncRead path they replaced as the default.
//
// Run with:
//
//	go test -run=NONE -bench='LeaderQuery|StatusQuery' -benchmem .
//
// The alloc-freedom of the default paths is asserted by tests (not just
// reported), so a regression fails CI rather than drifting in a profile.

import (
	"context"
	"testing"
	"time"

	stableleader "stableleader"
	"stableleader/transport"
)

// newBenchGroup starts a single-candidate service on an in-process
// transport and joins one group.
func newBenchGroup(tb testing.TB) (*stableleader.Service, *stableleader.Group) {
	tb.Helper()
	hub := transport.NewInproc(nil)
	svc, err := stableleader.New("bench-p1", hub.Endpoint("bench-p1"), stableleader.WithSeed(1))
	if err != nil {
		tb.Fatal(err)
	}
	grp, err := svc.Join(context.Background(), "bench-g", stableleader.AsCandidate())
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { _ = svc.Close(context.Background()) })
	return svc, grp
}

func BenchmarkLeaderQuery(b *testing.B) {
	_, grp := newBenchGroup(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := grp.Leader(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkLeaderQuerySync(b *testing.B) {
	_, grp := newBenchGroup(b)
	ctx := context.Background()
	sync := stableleader.WithSyncRead()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := grp.Leader(ctx, sync); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkStatusQuery(b *testing.B) {
	_, grp := newBenchGroup(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := grp.Status(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkStatusQuerySync(b *testing.B) {
	_, grp := newBenchGroup(b)
	ctx := context.Background()
	sync := stableleader.WithSyncRead()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := grp.Status(ctx, sync); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestLeaderQueryAllocFree pins the headline property of the read plane:
// the default Leader query performs zero allocations.
func TestLeaderQueryAllocFree(t *testing.T) {
	_, grp := newBenchGroup(t)
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(1000, func() {
		if _, err := grp.Leader(ctx); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Leader allocated %.1f objects/op, want 0", allocs)
	}
}

// TestStatusQueryAllocFree: Status serves the shared copy-on-write
// snapshot, also without allocating.
func TestStatusQueryAllocFree(t *testing.T) {
	_, grp := newBenchGroup(t)
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(1000, func() {
		if _, err := grp.Status(ctx); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Status allocated %.1f objects/op, want 0", allocs)
	}
}

// TestFastReadMatchesSyncRead drives a real election to completion and
// checks the snapshot path converges to exactly what the loop-serialised
// path reports.
func TestFastReadMatchesSyncRead(t *testing.T) {
	svc, grp := newBenchGroup(t)
	ctx := context.Background()

	// Wait on the FAST path: around the startup-grace edge the sync path
	// legitimately leads it (the sync query derives elected state from the
	// wall clock the instant the grace passes, while the snapshot is
	// published when the grace-end timer fires on the loop), so waiting on
	// the sync path races that window. Once the fast path reports elected,
	// the sync path must agree — it never trails the snapshot.
	deadline := time.Now().Add(10 * time.Second)
	for {
		fli, err := grp.Leader(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if fli.Elected {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no leader elected within 10s")
		}
		time.Sleep(20 * time.Millisecond)
	}
	fli, err := grp.Leader(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sli, err := grp.Leader(ctx, stableleader.WithSyncRead())
	if err != nil {
		t.Fatal(err)
	}
	if fli.Leader != sli.Leader || fli.Elected != sli.Elected || fli.Incarnation != sli.Incarnation {
		t.Fatalf("fast read %+v disagrees with sync read %+v", fli, sli)
	}
	if fli.Leader != svc.ID() {
		t.Fatalf("single candidate did not elect itself: %+v", fli)
	}

	fst, err := grp.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sst, err := grp.Status(ctx, stableleader.WithSyncRead())
	if err != nil {
		t.Fatal(err)
	}
	if len(fst) != len(sst) {
		t.Fatalf("fast Status has %d rows, sync %d", len(fst), len(sst))
	}
	for i := range fst {
		if fst[i] != sst[i] {
			t.Fatalf("status row %d: fast %+v, sync %+v", i, fst[i], sst[i])
		}
	}
}

// TestReadPlaneAfterLeaveAndClose pins the error semantics of the fast
// path at the edges of the handle's lifecycle.
func TestReadPlaneAfterLeaveAndClose(t *testing.T) {
	hub := transport.NewInproc(nil)
	svc, err := stableleader.New("p1", hub.Endpoint("p1"), stableleader.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	grp, err := svc.Join(ctx, "g", stableleader.AsCandidate())
	if err != nil {
		t.Fatal(err)
	}
	if err := grp.Leave(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := grp.Leader(ctx); err == nil {
		t.Fatal("Leader on a left group must fail")
	}
	if _, err := grp.Status(ctx); err == nil {
		t.Fatal("Status on a left group must fail")
	}

	// A second service: observe a leader, close, and check the fallback.
	svc2, err := stableleader.New("p2", hub.Endpoint("p2"), stableleader.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	grp2, err := svc2.Join(ctx, "g2", stableleader.AsCandidate())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		li, err := grp2.Leader(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if li.Elected {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no leader elected within 10s")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := svc2.Close(ctx); err != nil {
		t.Fatal(err)
	}
	li, err := grp2.Leader(ctx)
	if err != nil {
		t.Fatalf("Leader after Close must fall back to the last view, got %v", err)
	}
	if !li.Elected || li.Leader != "p2" {
		t.Fatalf("stale view after Close = %+v, want the observed election", li)
	}
	if _, err := grp2.Status(ctx); err == nil {
		t.Fatal("Status after Close must fail (no stale-status fallback)")
	}
	_ = svc.Close(ctx)
}
