package stableleader

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"stableleader/id"
	"stableleader/internal/clock"
	"stableleader/internal/core"
	"stableleader/internal/election"
	"stableleader/internal/group"
	"stableleader/internal/metrics"
	"stableleader/internal/subs"
	"stableleader/internal/timerwheel"
	"stableleader/internal/wire"
	"stableleader/qos"
	"stableleader/transport"
)

// ErrClosed is returned by operations on a closed Service.
var ErrClosed = errors.New("stableleader: service closed")

// Service is a real-time host for the leader election node: it owns the
// event loop goroutine that serialises message delivery, timers and API
// commands, mirroring the Command Handler architecture of the paper.
type Service struct {
	self id.Process
	tr   transport.Transport
	node *core.Node
	rt   *serviceRuntime

	commands chan func()
	done     chan struct{}
	closing  chan struct{}
	finished chan struct{} // closed after subscribers and transport are down

	// counters instruments the packet plane; written on the event loop
	// (the outbound scheduler, and inbound dispatch — see onDatagram),
	// snapshot by PacketStats from anywhere.
	counters metrics.PacketCounters

	// learner, when non-nil, is the SourceAware transport the client
	// plane learns client addresses through (see onDatagramFrom).
	learner transport.SourceAware

	// inbox is the pooled wire decode harness for the receive hot path.
	inbox *wire.Inbox // recycled DecodeAppend destination slices

	mu       sync.Mutex
	groups   map[id.Group]*Group
	closed   bool
	closeErr error // transport close outcome; readable once finished is closed
}

// New creates and starts a Service for process self on the given
// transport. Options refine construction; the zero-option call is a fully
// functional service.
func New(self id.Process, tr transport.Transport, opts ...Option) (*Service, error) {
	if self == "" {
		return nil, errors.New("stableleader: a process id is required")
	}
	if tr == nil {
		return nil, errors.New("stableleader: a transport is required")
	}
	cfg := serviceConfig{}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	seed := cfg.seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	s := &Service{
		self:     self,
		tr:       tr,
		commands: make(chan func(), 256),
		done:     make(chan struct{}),
		closing:  make(chan struct{}),
		finished: make(chan struct{}),
		inbox:    wire.NewInbox(),
		groups:   make(map[id.Group]*Group),
	}
	rt := &serviceRuntime{svc: s, rng: rand.New(rand.NewSource(seed))}
	rt.wheel = timerwheel.New(time.Now(), timerwheel.DefaultTick)
	s.rt = rt
	nodeOpts := []core.NodeOption{core.WithPacketCounters(&s.counters)}
	if cfg.clientPlane {
		nodeOpts = append(nodeOpts, core.WithClientPlane(subs.Config{}))
	}
	s.node = core.NewNode(self, rt, nodeOpts...)
	if sa, ok := tr.(transport.SourceAware); ok && cfg.clientPlane {
		// Clients are a dynamic population no static address book can
		// anticipate: learn each one's address from its own client-plane
		// traffic and answer through the learned mapping.
		s.learner = sa
		sa.ReceiveFrom(s.onDatagramFrom)
	} else {
		tr.Receive(s.onDatagram)
	}
	go s.loop()
	return s, nil
}

// ClientStats reports the client-plane subscriber registry's state:
// Enabled mirrors WithClientPlane, Clients/Leases the current remote
// registrations. Serialised through the event loop (the registry is
// loop-owned), so it honours ctx like any loop query.
func (s *Service) ClientStats(ctx context.Context) (ClientStats, error) {
	var st subs.Stats
	var enabled bool
	if err := s.call(ctx, func() { st, enabled = s.node.ClientStats() }); err != nil {
		return ClientStats{}, err
	}
	return ClientStats{Enabled: enabled, Clients: st.Clients, Leases: st.Leases}, nil
}

// loop is the event loop: every node entry point funnels through here.
func (s *Service) loop() {
	defer close(s.done)
	defer s.rt.stopDriver()
	for {
		select {
		case fn := <-s.commands:
			fn()
		case <-s.closing:
			// Drain whatever is already queued, then stop.
			for {
				select {
				case fn := <-s.commands:
					fn()
				default:
					s.node.Stop()
					return
				}
			}
		}
	}
}

// enqueue schedules fn on the event loop; it drops work once closing.
func (s *Service) enqueue(fn func()) {
	select {
	case s.commands <- fn:
	case <-s.closing:
	}
}

// call runs fn on the event loop and waits for it, honouring ctx: a
// cancelled or expired context returns ctx.Err() promptly instead of
// blocking on the loop. When call returns a context error the command may
// or may not still execute; callers needing certainty enqueue idempotent
// compensation.
func (s *Service) call(ctx context.Context, fn func()) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	donec := make(chan struct{})
	select {
	case s.commands <- func() { fn(); close(donec) }:
	case <-ctx.Done():
		return ctx.Err()
	case <-s.closing:
		return ErrClosed
	}
	select {
	case <-donec:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-s.done:
		return ErrClosed
	}
}

// onDatagram decodes and dispatches one received datagram — a bare message
// or a batch envelope. Decoding happens here (the transport reuses the
// payload buffer after we return) through the pooled Decoder; the decoded
// messages are handed to the event loop and recycled once dispatched. The
// protocol handlers copy everything they keep, so the recycle-after-handle
// contract holds by construction.
func (s *Service) onDatagram(payload []byte) {
	s.dispatchDatagram(payload, netip.AddrPort{})
}

// onDatagramFrom is the SourceAware receive path: onDatagram plus the
// datagram's network source, which client-plane messages feed into the
// transport's address book. Only SUBSCRIBE/LEASE_RENEW/UNSUBSCRIBE teach
// addresses — member traffic never rewrites the static book, so a spoofed
// heartbeat cannot redirect protocol traffic.
func (s *Service) onDatagramFrom(payload []byte, src netip.AddrPort) {
	s.dispatchDatagram(payload, src)
}

func (s *Service) dispatchDatagram(payload []byte, src netip.AddrPort) {
	msgs, unknown, err := s.inbox.Decode(payload)
	if errors.Is(err, wire.ErrUnknownKind) {
		// A bare datagram of a future kind: dropped whole, but counted as
		// forward traffic, not as silent garbage.
		unknown++
	}
	s.counters.CountUnknown(unknown)
	if err != nil || len(msgs) == 0 {
		// Garbage on the wire is dropped, as a UDP service must.
		s.inbox.Recycle(msgs, false)
		return
	}
	if s.learner != nil && src.IsValid() {
		for _, m := range msgs {
			switch m.(type) {
			case *wire.Subscribe, *wire.LeaseRenew, *wire.Unsubscribe:
				s.learner.LearnPeer(m.From(), src)
			}
		}
	}
	// Counted at dispatch on the loop, not here: a datagram the closing
	// service drops between decode and dispatch must not inflate the
	// delivered-traffic counters. (payload is captured by size now — the
	// transport reuses the buffer after we return.)
	size := len(payload) + wire.UDPOverhead
	s.enqueue(func() {
		s.counters.CountIn(len(msgs), size)
		for _, m := range msgs {
			s.node.HandleMessage(m)
		}
		s.inbox.Recycle(msgs, true)
	})
}

// ID returns the service's process id.
func (s *Service) ID() id.Process { return s.self }

// PacketStats snapshots the packet-plane counters: datagrams, batches and
// coalesced messages in both directions. Safe from any goroutine.
func (s *Service) PacketStats() PacketStats {
	// A struct conversion, so a counter added to the internal set without
	// a public mirror fails to compile instead of silently reporting zero.
	return PacketStats(s.counters.Snapshot())
}

// Incarnation returns this service instance's incarnation number.
func (s *Service) Incarnation() int64 { return s.node.Incarnation() }

// Join enters group g and returns its handle. Joining is asynchronous by
// nature — the group converges through gossip — but the local registration
// itself honours ctx: a cancelled context returns ctx.Err() promptly (any
// partially applied registration is rolled back in the background).
func (s *Service) Join(ctx context.Context, g id.Group, opts ...JoinOption) (*Group, error) {
	cfg := defaultJoinConfig()
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := s.groups[g]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("stableleader: already joined %q", g)
	}
	grp := newGroup(s, g)
	s.groups[g] = grp
	s.mu.Unlock()

	var joinErr error
	err := s.call(ctx, func() {
		joinErr = s.node.Join(g, core.JoinOptions{
			Candidate:           cfg.candidate,
			Algorithm:           election.Kind(cfg.algorithm),
			QoS:                 cfg.spec,
			Seeds:               cfg.seeds,
			HelloInterval:       cfg.helloInterval,
			GossipFanout:        cfg.gossipFanout,
			ReconfigureInterval: cfg.reconfigureInterval,
			OnLeaderChange: func(li core.LeaderInfo) {
				grp.publish(LeaderChanged{Info: publicInfo(li)})
			},
			OnMembership: func(m group.Member, joined bool) {
				if joined {
					grp.publish(MemberJoined{
						Group:       g,
						Member:      m.ID,
						Incarnation: m.Incarnation,
						Candidate:   m.Candidate,
						At:          time.Now(),
					})
				} else {
					grp.publish(MemberLeft{
						Group:       g,
						Member:      m.ID,
						Incarnation: m.Incarnation,
						At:          time.Now(),
					})
				}
			},
			OnTrustChange: func(p id.Process, inc int64, trusted bool) {
				if trusted {
					grp.publish(MemberTrusted{
						Group: g, Member: p, Incarnation: inc, At: time.Now(),
					})
				} else {
					grp.publish(MemberSuspected{
						Group: g, Member: p, Incarnation: inc, At: time.Now(),
					})
				}
			},
			OnReconfigured: func(p id.Process, params qos.Params) {
				grp.publish(QoSReconfigured{
					Group:    g,
					Member:   p,
					Interval: params.Interval,
					Timeout:  params.Timeout,
					At:       time.Now(),
				})
			},
			OnStatus: grp.storeStatus,
		})
		if joinErr == nil {
			// Seed the read plane so Leader/Status answer wait-free from
			// the first instant after Join (OnStatus already stored the
			// initial membership snapshot during core join).
			if li, lerr := s.node.Leader(g); lerr == nil {
				grp.seedLeader(publicInfo(li))
			}
		}
	})
	if err == nil {
		err = joinErr
	}
	if err != nil {
		if !errors.Is(err, ErrClosed) && ctx != nil && ctx.Err() != nil {
			// The context expired mid-flight: the join may still land on
			// the loop after we report failure. Undo it; a leave of a
			// never-joined group is a harmless no-op. Enqueued BEFORE the
			// map delete so a concurrent re-Join of g serialises after
			// the rollback rather than being torn down by it.
			s.enqueue(func() { _ = s.node.Leave(g) })
		}
		s.mu.Lock()
		delete(s.groups, g)
		s.mu.Unlock()
		grp.closeSubscribers()
		return nil, err
	}
	return grp, nil
}

// Close shuts the service down gracefully: LEAVE messages are announced
// for every joined group so peers re-elect immediately rather than waiting
// for failure detection, then the event loop drains and the transport
// closes. ctx bounds how long Close waits; on cancellation it returns
// ctx.Err() promptly while the shutdown completes in the background.
// Close is idempotent.
func (s *Service) Close(ctx context.Context) error {
	return s.shutdown(ctx, true)
}

// Crash shuts the service down abruptly, announcing nothing — crash
// semantics, as a fault injector or test wants. Peers notice through
// failure detection. Crash is idempotent with Close.
func (s *Service) Crash() error {
	return s.shutdown(context.Background(), false)
}

// shutdown implements Close and Crash.
func (s *Service) shutdown(ctx context.Context, leave bool) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// Repeat closer: done only once teardown truly completed (event
		// loop exited, subscribers closed, transport closed), reporting
		// the transport's close outcome so a nil return always means the
		// listen address is free again. Deterministic: a finished
		// service reports that outcome regardless of ctx; otherwise a
		// dead ctx wins over waiting.
		select {
		case <-s.finished:
			return s.closeErr
		default:
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		select {
		case <-s.finished:
			return s.closeErr
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s.closed = true
	groups := make([]*Group, 0, len(s.groups))
	for _, g := range s.groups {
		groups = append(groups, g)
	}
	s.mu.Unlock()

	if leave {
		leaveAll := func() {
			for _, g := range groups {
				_ = s.node.Leave(g.id)
			}
		}
		if err := s.call(ctx, leaveAll); err != nil && !errors.Is(err, ErrClosed) {
			// The context died before the loop ran the departures. Queue
			// them anyway — the loop drains queued commands after closing,
			// and leaving twice is a harmless no-op — so a graceful Close
			// never silently degrades to crash semantics.
			s.enqueue(leaveAll)
		}
	}
	close(s.closing)

	// finish runs exactly once (only the first closer reaches here) and
	// unblocks repeat closers by closing s.finished at the very end.
	finish := func() error {
		<-s.done
		for _, g := range groups {
			g.closeSubscribers()
		}
		err := s.tr.Close()
		s.closeErr = err // sequenced before close(finished); readers wait on it
		close(s.finished)
		return err
	}
	if err := ctx.Err(); err != nil {
		// Deterministic on an already-dead context: report the context
		// error and complete the shutdown in the background.
		go finish()
		return err
	}
	select {
	case <-s.done:
		return finish()
	case <-ctx.Done():
		go finish()
		return ctx.Err()
	}
}

// serviceRuntime adapts the Service to core.Runtime: real clock, timers
// multiplexed onto one runtime timer through a hashed timer wheel,
// transport sends, and the service RNG (used only on the event loop).
//
// The wheel is owned by the event loop: every protocol-side arm/re-arm
// and every Advance happens there, so wheel state needs no locking and
// wheel callbacks run directly on the loop (satisfying the clock.Clock
// delivery contract with zero hops). The only cross-goroutine edge is the
// driver timer's callback, which merely enqueues an advance.
type serviceRuntime struct {
	svc *Service
	rng *rand.Rand

	// wheel holds every pending protocol deadline; driver is the single
	// runtime timer that wakes the loop at wheel.Next. armed caches the
	// instant driver is set for, so a re-arm is skipped when the earliest
	// deadline did not move. All three fields are loop-owned.
	wheel  *timerwheel.Wheel
	driver *time.Timer
	armed  time.Time
	// advancing suppresses per-callback driver re-arms while Advance
	// fires a batch of deadlines; the single kick afterwards covers them.
	advancing bool
}

var _ core.Runtime = (*serviceRuntime)(nil)
var _ clock.TimerFactory = (*serviceRuntime)(nil)

// Now implements clock.Clock.
func (r *serviceRuntime) Now() time.Time { return time.Now() }

// AfterFunc implements clock.Clock: the deadline goes onto the wheel (one
// entry allocation — one-shot timers are rare, re-armed paths use
// NewTimer), and fires on the event loop via the driver.
func (r *serviceRuntime) AfterFunc(d time.Duration, fn func()) clock.Timer {
	t := &wheelRearmer{rt: r, e: timerwheel.NewEntry(fn)}
	t.Reset(d)
	return t
}

// NewTimer implements clock.TimerFactory: a re-armable wheel entry,
// allocated once and re-armed in place — the zero-allocation path the
// failure detector, pacer and outbound scheduler run per heartbeat.
func (r *serviceRuntime) NewTimer(fn func()) clock.Rearmer {
	return &wheelRearmer{rt: r, e: timerwheel.NewEntry(fn)}
}

// wheelRearmer is a clock.Rearmer over the service wheel. Its methods run
// on the event loop, like every other wheel operation.
type wheelRearmer struct {
	rt *serviceRuntime
	e  *timerwheel.Entry
}

func (t *wheelRearmer) Reset(d time.Duration) bool {
	stopped := t.e.Pending()
	at := time.Now().Add(d)
	t.rt.wheel.Schedule(t.e, at)
	// Driver invariant: armed ≤ the earliest pending deadline. A re-arm
	// to a later instant preserves it as-is (at worst the driver wakes
	// once with nothing due and re-kicks), so only a new earliest
	// deadline pays the kick — the per-heartbeat deadline *extensions* on
	// the hot path skip it entirely.
	if !t.rt.advancing && (t.rt.armed.IsZero() || at.Before(t.rt.armed)) {
		t.rt.kick()
	}
	return stopped
}

func (t *wheelRearmer) Stop() bool {
	// No driver re-arm: a wake-up with nothing due is harmless and rarer
	// than Stops.
	return t.rt.wheel.Stop(t.e)
}

// kick re-arms the driver timer at the wheel's earliest deadline. Called
// on the loop after any schedule; the advance path calls it after every
// wheel movement.
func (r *serviceRuntime) kick() {
	next, ok := r.wheel.Next()
	if !ok {
		r.armed = time.Time{}
		if r.driver != nil {
			r.driver.Stop()
		}
		return
	}
	if !r.armed.IsZero() && r.armed.Equal(next) {
		return
	}
	r.armed = next
	d := time.Until(next)
	if r.driver == nil {
		r.driver = time.AfterFunc(d, r.wake)
		return
	}
	// A Reset racing a fired-but-not-yet-run callback at worst produces a
	// spurious advance, which fires nothing and re-kicks — never a missed
	// deadline, because this Reset always covers the earliest one.
	r.driver.Reset(d)
}

// wake runs on the driver timer's goroutine: it only hops back onto the
// event loop (dropped once the service is closing, like any command).
func (r *serviceRuntime) wake() {
	r.svc.enqueue(r.advance)
}

// advance moves the wheel to the present, firing due protocol deadlines
// inline on the loop, then re-arms the driver.
func (r *serviceRuntime) advance() {
	r.armed = time.Time{}
	r.advancing = true
	r.wheel.Advance(time.Now())
	r.advancing = false
	r.kick()
}

// stopDriver releases the runtime timer when the event loop exits.
func (r *serviceRuntime) stopDriver() {
	if r.driver != nil {
		r.driver.Stop()
	}
}

// sendBufPool recycles marshal buffers across sends: transports do not
// retain the payload after Send returns (see the Transport contract), so
// the buffer goes straight back into the pool and the send hot path stays
// allocation-free.
var sendBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 2048); return &b },
}

// Send implements core.Runtime. m is a bare message or a *wire.Batch the
// outbound scheduler flushed; either way it is one datagram.
func (r *serviceRuntime) Send(to id.Process, m wire.Message) {
	bp := sendBufPool.Get().(*[]byte)
	buf := wire.MarshalAppend((*bp)[:0], m)
	_ = r.svc.tr.Send(to, buf)
	*bp = buf[:0]
	sendBufPool.Put(bp)
}

// Rand implements core.Runtime.
func (r *serviceRuntime) Rand() *rand.Rand { return r.rng }
