package stableleader

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"stableleader/id"
	"stableleader/internal/clock"
	"stableleader/internal/core"
	"stableleader/internal/election"
	"stableleader/internal/wire"
	"stableleader/qos"
	"stableleader/transport"
)

// Algorithm selects the leader election core used within a group. See the
// package documentation for the trade-offs.
type Algorithm int

// Available election algorithms.
const (
	// OmegaL is the communication-efficient algorithm (service S3 of the
	// paper): eventually only the leader sends heartbeats.
	OmegaL Algorithm = Algorithm(election.OmegaL)
	// OmegaLC tolerates crashed links via leader forwarding (service S2).
	OmegaLC Algorithm = Algorithm(election.OmegaLC)
	// OmegaID is the unstable smallest-id baseline (service S1).
	OmegaID Algorithm = Algorithm(election.OmegaID)
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string { return election.Kind(a).String() }

// ParseAlgorithm converts a name ("omega-l", "omega-lc", "omega-id") into
// an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "omega-l", "omegal", "s3", "S3":
		return OmegaL, nil
	case "omega-lc", "omegalc", "s2", "S2":
		return OmegaLC, nil
	case "omega-id", "omegaid", "s1", "S1":
		return OmegaID, nil
	default:
		return 0, fmt.Errorf("stableleader: unknown algorithm %q", s)
	}
}

// LeaderInfo describes the leadership of one group as seen locally.
type LeaderInfo struct {
	// Group is the group concerned.
	Group id.Group
	// Leader is the elected process (empty if Elected is false).
	Leader id.Process
	// Incarnation distinguishes successive lifetimes of the leader process.
	Incarnation int64
	// Elected is false while the group looks leaderless from this process
	// (for example during an election).
	Elected bool
	// At is when this view was adopted.
	At time.Time
}

// JoinOptions configures membership in one group.
type JoinOptions struct {
	// Candidate marks this process as willing to lead the group. Elections
	// choose only among candidates; passive members observe leadership.
	Candidate bool
	// Algorithm selects the election core (default OmegaL).
	Algorithm Algorithm
	// QoS is the failure detection requirement inside the group; the
	// zero value means qos.Default(), the paper's setting.
	QoS qos.Spec
	// Seeds are processes contacted with the initial JOIN announcement;
	// membership then spreads by gossip.
	Seeds []id.Process
	// OnLeaderChange, if non-nil, is invoked (on the service's event loop)
	// whenever the leader view changes — the paper's "interrupt" mode. The
	// callback must not block. Group.Changes offers a channel alternative.
	OnLeaderChange func(LeaderInfo)
	// NotifyBuffer sizes the Changes channel (default 16). When the buffer
	// is full the oldest unconsumed notification is dropped; Leader()
	// always returns the current view regardless.
	NotifyBuffer int
	// HelloInterval is the membership gossip period (default 1s).
	HelloInterval time.Duration
	// GossipFanout is how many members each gossip round targets (default 3).
	GossipFanout int
}

// Config configures a Service.
type Config struct {
	// ID is this process's unique identifier (required). Registering two
	// live services with the same id on the same transport is an error the
	// service cannot detect; identifiers must be managed by the deployment.
	ID id.Process
	// Transport carries datagrams to peers (required).
	Transport transport.Transport
	// Seed seeds the service's internal randomness (gossip peer choice).
	// Zero means derive from the clock.
	Seed int64
}

// Service is a real-time host for the leader election node: it owns the
// event loop goroutine that serialises message delivery, timers and API
// commands, mirroring the Command Handler architecture of the paper.
type Service struct {
	cfg  Config
	node *core.Node

	commands chan func()
	done     chan struct{}
	closing  chan struct{}

	mu     sync.Mutex
	groups map[id.Group]*Group
	closed bool
}

// ErrClosed is returned by operations on a closed Service.
var ErrClosed = errors.New("stableleader: service closed")

// New creates and starts a Service for the given process.
func New(cfg Config) (*Service, error) {
	if cfg.ID == "" {
		return nil, errors.New("stableleader: Config.ID is required")
	}
	if cfg.Transport == nil {
		return nil, errors.New("stableleader: Config.Transport is required")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	s := &Service{
		cfg:      cfg,
		commands: make(chan func(), 256),
		done:     make(chan struct{}),
		closing:  make(chan struct{}),
		groups:   make(map[id.Group]*Group),
	}
	rt := &serviceRuntime{svc: s, rng: rand.New(rand.NewSource(seed))}
	s.node = core.NewNode(cfg.ID, rt)
	cfg.Transport.Receive(s.onDatagram)
	go s.loop()
	return s, nil
}

// loop is the event loop: every node entry point funnels through here.
func (s *Service) loop() {
	defer close(s.done)
	for {
		select {
		case fn := <-s.commands:
			fn()
		case <-s.closing:
			// Drain whatever is already queued, then stop.
			for {
				select {
				case fn := <-s.commands:
					fn()
				default:
					s.node.Stop()
					return
				}
			}
		}
	}
}

// enqueue schedules fn on the event loop; it drops work once closing.
func (s *Service) enqueue(fn func()) {
	select {
	case s.commands <- fn:
	case <-s.closing:
	}
}

// call runs fn on the event loop and waits for it.
func (s *Service) call(fn func()) error {
	donec := make(chan struct{})
	select {
	case s.commands <- func() { fn(); close(donec) }:
	case <-s.closing:
		return ErrClosed
	}
	select {
	case <-donec:
		return nil
	case <-s.done:
		return ErrClosed
	}
}

// onDatagram decodes and dispatches one received datagram.
func (s *Service) onDatagram(payload []byte) {
	m, err := wire.Unmarshal(payload)
	if err != nil {
		return // garbage on the wire is dropped, as a UDP service must
	}
	s.enqueue(func() { s.node.HandleMessage(m) })
}

// ID returns the service's process id.
func (s *Service) ID() id.Process { return s.cfg.ID }

// Incarnation returns this service instance's incarnation number.
func (s *Service) Incarnation() int64 { return s.node.Incarnation() }

// Join enters a group and returns its handle.
func (s *Service) Join(g id.Group, opts JoinOptions) (*Group, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := s.groups[g]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("stableleader: already joined %q", g)
	}
	buf := opts.NotifyBuffer
	if buf <= 0 {
		buf = 16
	}
	grp := &Group{svc: s, id: g, changes: make(chan LeaderInfo, buf)}
	s.groups[g] = grp
	s.mu.Unlock()

	var joinErr error
	err := s.call(func() {
		joinErr = s.node.Join(g, core.JoinOptions{
			Candidate:     opts.Candidate,
			Algorithm:     election.Kind(opts.Algorithm),
			QoS:           opts.QoS,
			Seeds:         opts.Seeds,
			HelloInterval: opts.HelloInterval,
			GossipFanout:  opts.GossipFanout,
			OnLeaderChange: func(li core.LeaderInfo) {
				grp.notify(publicInfo(li), opts.OnLeaderChange)
			},
		})
	})
	if err == nil {
		err = joinErr
	}
	if err != nil {
		s.mu.Lock()
		delete(s.groups, g)
		s.mu.Unlock()
		return nil, err
	}
	return grp, nil
}

// Close shuts the service down. When leaveGroups is true, LEAVE messages
// are announced first so peers re-elect immediately rather than waiting for
// failure detection.
func (s *Service) Close(leaveGroups bool) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	groups := make([]*Group, 0, len(s.groups))
	for _, g := range s.groups {
		groups = append(groups, g)
	}
	s.mu.Unlock()

	if leaveGroups {
		_ = s.call(func() {
			for _, g := range groups {
				_ = s.node.Leave(g.id)
			}
		})
	}
	close(s.closing)
	<-s.done
	for _, g := range groups {
		g.closeChanges()
	}
	return s.cfg.Transport.Close()
}

// publicInfo converts the internal view type.
func publicInfo(li core.LeaderInfo) LeaderInfo {
	return LeaderInfo{
		Group:       li.Group,
		Leader:      li.Leader,
		Incarnation: li.Incarnation,
		Elected:     li.Elected,
		At:          li.At,
	}
}

// Group is a handle on one joined group.
type Group struct {
	svc *Service
	id  id.Group

	mu      sync.Mutex
	last    LeaderInfo
	hasLast bool
	changes chan LeaderInfo
	closed  bool
	left    bool
}

// ID returns the group identifier.
func (g *Group) ID() id.Group { return g.id }

// notify records and fans out a leader change.
func (g *Group) notify(li LeaderInfo, callback func(LeaderInfo)) {
	g.mu.Lock()
	g.last, g.hasLast = li, true
	if !g.closed {
		for {
			select {
			case g.changes <- li:
			default:
				// Full: drop the oldest so the channel always ends on the
				// freshest view.
				select {
				case <-g.changes:
				default:
				}
				continue
			}
			break
		}
	}
	g.mu.Unlock()
	if callback != nil {
		callback(li)
	}
}

// Changes returns the interrupt-mode notification channel: one LeaderInfo
// per leader view change. Slow consumers lose old entries, never new ones.
// The channel closes when the group is left or the service closes.
func (g *Group) Changes() <-chan LeaderInfo { return g.changes }

// MemberStatus is one group member as seen by the local failure detection
// layer: identity, candidacy, the detector's current trust verdict, and the
// (η, δ) parameters its QoS configurator chose for the link.
type MemberStatus struct {
	ID          id.Process
	Incarnation int64
	Candidate   bool
	Self        bool
	Trusted     bool
	// Interval (η) is the heartbeat rate requested from this member;
	// Timeout (δ) the timeout shift applied to its heartbeats.
	Interval time.Duration
	Timeout  time.Duration
}

// Status queries the group's membership and failure detection state — the
// query surface of the shared failure detector service underlying the
// election (Section 4 of the paper).
func (g *Group) Status() ([]MemberStatus, error) {
	var out []MemberStatus
	var serr error
	err := g.svc.call(func() {
		rows, e := g.svc.node.Status(g.id)
		if e != nil {
			serr = e
			return
		}
		out = make([]MemberStatus, len(rows))
		for i, r := range rows {
			out[i] = MemberStatus{
				ID:          r.ID,
				Incarnation: r.Incarnation,
				Candidate:   r.Candidate,
				Self:        r.Self,
				Trusted:     r.Trusted,
				Interval:    r.Interval,
				Timeout:     r.Timeout,
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return out, serr
}

// Leader returns the current leader view (the paper's "query" mode).
func (g *Group) Leader() (LeaderInfo, error) {
	var li LeaderInfo
	var lerr error
	err := g.svc.call(func() {
		cli, e := g.svc.node.Leader(g.id)
		li, lerr = publicInfo(cli), e
	})
	if err != nil {
		// Service closed: fall back to the last observed view.
		g.mu.Lock()
		defer g.mu.Unlock()
		if g.hasLast {
			return g.last, nil
		}
		return LeaderInfo{}, err
	}
	return li, lerr
}

// Leave departs the group gracefully.
func (g *Group) Leave() error {
	g.mu.Lock()
	if g.left {
		g.mu.Unlock()
		return nil
	}
	g.left = true
	g.mu.Unlock()
	var lerr error
	err := g.svc.call(func() { lerr = g.svc.node.Leave(g.id) })
	g.svc.mu.Lock()
	delete(g.svc.groups, g.id)
	g.svc.mu.Unlock()
	g.closeChanges()
	if err != nil {
		return err
	}
	return lerr
}

// closeChanges closes the notification channel exactly once.
func (g *Group) closeChanges() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.closed {
		g.closed = true
		close(g.changes)
	}
}

// serviceRuntime adapts the Service to core.Runtime: real clock, timers
// that re-enter the event loop, transport sends, and the service RNG (used
// only on the event loop).
type serviceRuntime struct {
	svc *Service
	rng *rand.Rand
}

var _ core.Runtime = (*serviceRuntime)(nil)

// Now implements clock.Clock.
func (r *serviceRuntime) Now() time.Time { return time.Now() }

// AfterFunc implements clock.Clock; callbacks hop onto the event loop.
func (r *serviceRuntime) AfterFunc(d time.Duration, fn func()) clock.Timer {
	return time.AfterFunc(d, func() { r.svc.enqueue(fn) })
}

// Send implements core.Runtime.
func (r *serviceRuntime) Send(to id.Process, m wire.Message) {
	_ = r.svc.cfg.Transport.Send(to, wire.Marshal(m))
}

// Rand implements core.Runtime.
func (r *serviceRuntime) Rand() *rand.Rand { return r.rng }
