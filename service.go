package stableleader

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stableleader/id"
	"stableleader/internal/clock"
	"stableleader/internal/core"
	"stableleader/internal/election"
	"stableleader/internal/group"
	"stableleader/internal/metrics"
	"stableleader/internal/obs"
	"stableleader/internal/outbound"
	"stableleader/internal/subs"
	"stableleader/internal/timerwheel"
	"stableleader/internal/wire"
	"stableleader/qos"
	"stableleader/transport"
)

// ErrClosed is returned by operations on a closed Service.
var ErrClosed = errors.New("stableleader: service closed")

// MaxShards bounds WithShards: the steering stage partitions each
// datagram with a fixed-size scratch table, and no deployment needs more
// event loops than this per process.
const MaxShards = 64

// Service is a real-time host for the leader election protocol. It runs
// the paper's Command Handler architecture N times over: the runtime is
// partitioned into shards, each owning one event-loop goroutine, one
// timer wheel with its own driver, one RNG and one protocol node hosting
// the groups hashed onto it. Protocol work for groups on different shards
// runs truly in parallel, with no cross-shard locking anywhere on the hot
// path; a group never migrates between shards, so within a group every
// guarantee of the single-loop architecture is preserved verbatim. With
// one shard (the default on single-core hosts) the service behaves
// exactly like the classic single-loop build.
type Service struct {
	self id.Process
	tr   transport.Transport
	inc  int64 // one process lifetime, shared by every shard's node

	// batchTr/hintTr are tr's optional batched and socket-steered send
	// doors (the UDP transport implements both): non-nil when available,
	// detected once at New. With batchTr set, every shard stages its sends
	// and flushes them as whole vectors — one sendmmsg per loop wakeup
	// instead of one syscall per datagram; hintTr additionally pins each
	// shard's traffic to its own send socket.
	batchTr transport.BatchSender
	hintTr  transport.HintedSender

	// shards are the event-loop shards; groups map onto them by stable
	// hash (shardIndex). Immutable after New.
	shards []*serviceShard

	done     chan struct{} // closed once EVERY shard loop has exited
	closing  chan struct{}
	finished chan struct{} // closed after subscribers and transport are down

	// counters instruments the packet plane; written on the shard loops
	// (the outbound schedulers, and inbound dispatch — see onDatagram),
	// snapshot by PacketStats from anywhere. The counters are atomic, so
	// shards share one set without coordination.
	counters metrics.PacketCounters

	// obs is the sharded protocol observability registry: one plain-store
	// slot per shard, written only by the owning loop, aggregated at
	// scrape time through sh.call. Immutable after New.
	obs *obs.Registry

	// learner, when non-nil, is the SourceAware transport the client
	// plane learns client addresses through (see onDatagramFrom).
	learner transport.SourceAware

	// inboxes pools wire decode harnesses for the receive hot path: the
	// transport may deliver from several receiver goroutines (the UDP
	// multi-receiver mode), and a pool of inboxes lets them decode in
	// parallel instead of serialising on one decoder mutex. Each decoded
	// datagram remembers its inbox and recycles into it after dispatch.
	inboxes sync.Pool

	mu       sync.Mutex
	groups   map[id.Group]*Group
	closed   bool
	closeErr error // transport close outcome; readable once finished is closed
}

// serviceShard is one event-loop shard: the single-threaded world one
// subset of the service's groups lives in. Everything a shard owns —
// its node, wheel, RNG, command queue and inbound ring — is touched only
// by its own loop goroutine (plus the MPSC producers of the two queues).
type serviceShard struct {
	svc  *Service
	idx  int
	node *core.Node
	rt   *serviceRuntime
	// obs is this shard's observability slot — loop-written counters,
	// the leaderless-window histogram and the flight-recorder ring.
	obs *obs.Shard

	commands chan func()
	// inbound is the shard's half of the steered inbound plane: a bounded
	// MPSC ring of decoded datagram parts, fed by the transport receiver
	// goroutines and drained by the loop. Keeping it separate from
	// commands spares the receive path the closure allocation a func()
	// envelope would cost per datagram.
	inbound chan inboundPart
	done    chan struct{}
}

// inboundPart is one shard's contiguous share of a decoded datagram:
// messages fl.msgs[lo:hi] all belong to groups this shard owns. datagram
// marks the single part that carries the datagram-level counters.
type inboundPart struct {
	fl       *inFlight
	lo, hi   int
	datagram bool
}

// inFlight is the refcounted carrier of one decoded datagram while its
// parts are in flight to the shards: the last shard to finish dispatching
// recycles the message slice into the inbox that decoded it. Carriers are
// pooled; a steady receive path allocates nothing per datagram.
type inFlight struct {
	inbox   *wire.Inbox
	msgs    []wire.Message
	bytes   int  // datagram wire size (payload + UDP/IP overhead)
	batch   bool // the datagram carried more than one message
	pending atomic.Int32
}

var inFlightPool = sync.Pool{New: func() any { return new(inFlight) }}

// release drops one shard's claim; the last claim recycles the messages.
func (fl *inFlight) release() {
	if fl.pending.Add(-1) != 0 {
		return
	}
	fl.inbox.Recycle(fl.msgs, true)
	fl.inbox = nil
	fl.msgs = nil
	inFlightPool.Put(fl)
}

// New creates and starts a Service for process self on the given
// transport. Options refine construction; the zero-option call is a fully
// functional service.
//
//leadervet:init
func New(self id.Process, tr transport.Transport, opts ...Option) (*Service, error) {
	if self == "" {
		return nil, errors.New("stableleader: a process id is required")
	}
	if tr == nil {
		return nil, errors.New("stableleader: a transport is required")
	}
	cfg := serviceConfig{}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	seed := cfg.seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	nshards := cfg.shards
	if nshards <= 0 {
		nshards = defaultShards()
	}
	s := &Service{
		self:     self,
		tr:       tr,
		inc:      time.Now().UnixNano(),
		done:     make(chan struct{}),
		closing:  make(chan struct{}),
		finished: make(chan struct{}),
		groups:   make(map[id.Group]*Group),
	}
	s.inboxes.New = func() any { return wire.NewInbox() }
	if bt, ok := tr.(transport.BatchSender); ok {
		s.batchTr = bt
	}
	if ht, ok := tr.(transport.HintedSender); ok {
		s.hintTr = ht
	}
	s.obs = obs.NewRegistry(nshards, cfg.flightDepth)
	s.shards = make([]*serviceShard, nshards)
	for i := range s.shards {
		sh := &serviceShard{
			svc:      s,
			idx:      i,
			obs:      s.obs.Shard(i),
			commands: make(chan func(), 256),
			inbound:  make(chan inboundPart, 256),
			done:     make(chan struct{}),
		}
		// Per-shard RNG, deterministically derived from the service seed:
		// shard 0 sees exactly the stream a single-loop service would, so
		// one-shard runs reproduce the historical behavior bit for bit.
		rt := &serviceRuntime{sh: sh, rng: rand.New(rand.NewSource(seed + int64(i)))}
		rt.wheel = timerwheel.New(time.Now(), timerwheel.DefaultTick)
		sh.rt = rt
		nodeOpts := []core.NodeOption{
			core.WithPacketCounters(&s.counters),
			core.WithIncarnation(s.inc),
			core.WithObs(sh.obs),
		}
		if cfg.clientPlane {
			nodeOpts = append(nodeOpts, core.WithClientPlane(subs.Config{}))
		}
		sh.node = core.NewNode(self, rt, nodeOpts...)
		s.shards[i] = sh
	}
	if sa, ok := tr.(transport.SourceAware); ok && cfg.clientPlane {
		// Clients are a dynamic population no static address book can
		// anticipate: learn each one's address from its own client-plane
		// traffic and answer through the learned mapping.
		s.learner = sa
		sa.ReceiveFrom(s.onDatagramFrom)
	} else {
		tr.Receive(s.onDatagram)
	}
	for _, sh := range s.shards {
		go sh.loop()
	}
	// done aggregates the shard exits so shutdown waits on one channel.
	go func() {
		for _, sh := range s.shards {
			<-sh.done
		}
		close(s.done)
	}()
	return s, nil
}

// defaultShards derives the shard count from the hardware: one event loop
// per schedulable CPU, so a multi-group service saturates the machine
// without configuration, capped at MaxShards.
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > MaxShards {
		n = MaxShards
	}
	return n
}

// Shards reports the number of event-loop shards this service runs.
func (s *Service) Shards() int { return len(s.shards) }

// shardIndex maps a group onto its owning shard — a stable FNV-1a hash,
// so the assignment never changes for the life of the service and every
// host (steering stage, Join, queries) agrees without coordination.
func (s *Service) shardIndex(g id.Group) int {
	if len(s.shards) == 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(g); i++ {
		h ^= uint64(g[i])
		h *= prime64
	}
	return int(h % uint64(len(s.shards)))
}

// shardFor returns the shard owning group g.
func (s *Service) shardFor(g id.Group) *serviceShard { return s.shards[s.shardIndex(g)] }

// ClientStats reports the client-plane subscriber registry's state:
// Enabled mirrors WithClientPlane, Clients/Leases the current remote
// registrations, aggregated across shards. Serialised through each
// shard's event loop (the registries are loop-owned), so it honours ctx
// like any loop query. A client subscribed to groups on k shards counts
// once per shard in Clients.
func (s *Service) ClientStats(ctx context.Context) (ClientStats, error) {
	var total ClientStats
	for _, sh := range s.shards {
		var st subs.Stats
		var enabled bool
		if err := sh.call(ctx, func() { st, enabled = sh.node.ClientStats() }); err != nil {
			return ClientStats{}, err
		}
		total.Enabled = enabled
		total.Clients += st.Clients
		total.Leases += st.Leases
	}
	return total, nil
}

// loop is a shard's event loop: every entry point of the shard's node
// funnels through here — commands, steered inbound traffic, and (via the
// driver's enqueued advance) timer deadlines.
//
//leadervet:onLoop
func (sh *serviceShard) loop() {
	defer close(sh.done)
	defer sh.rt.stopDriver()
	for {
		// Every arm ends by flushing the shard's staged sends: whatever a
		// command (timer advance, API call) or an inbound burst produced
		// leaves as one vectored send before the loop blocks again, so
		// staging adds batching without adding latency.
		select {
		case fn := <-sh.commands:
			fn()
		case p := <-sh.inbound:
			sh.handleInbound(p)
		case <-sh.svc.closing:
			// Drain whatever is already queued, then stop. Only this
			// shard's queues are touched, so one shard's drain can never
			// block on (or be blocked by) another's.
			for {
				select {
				case fn := <-sh.commands:
					fn()
					sh.rt.flushSends()
				case p := <-sh.inbound:
					sh.handleInbound(p)
					sh.rt.flushSends()
				default:
					sh.node.Stop()
					sh.rt.flushSends()
					return
				}
			}
		}
		sh.rt.flushSends()
	}
}

// handleInbound dispatches one steered datagram part on the shard loop.
//
//leadervet:hotpath
func (sh *serviceShard) handleInbound(p inboundPart) {
	fl := p.fl
	sh.svc.counters.CountInPart(p.hi-p.lo, fl.bytes, p.datagram, fl.batch)
	sh.obs.Inc(obs.CInboundParts)
	if !p.datagram {
		// A continuation part of a datagram split across shards by the
		// steering stage — the cross-shard coalescing the batch envelope
		// induces, visible only here.
		sh.obs.Inc(obs.CInboundSplitParts)
	}
	for _, m := range fl.msgs[p.lo:p.hi] {
		sh.node.HandleMessage(m)
	}
	fl.release()
}

// enqueue schedules fn on the shard's event loop; it drops work once the
// service is closing.
//
//leadervet:runsOnLoop fn
func (sh *serviceShard) enqueue(fn func()) {
	select {
	case sh.commands <- fn:
	case <-sh.svc.closing:
	}
}

// enqueueInbound hands one datagram part to the shard, blocking (bounded
// ring backpressure) while the loop catches up; once the service is
// closing the part is dropped and its claim released, like any command.
func (sh *serviceShard) enqueueInbound(p inboundPart) {
	select {
	case sh.inbound <- p:
	case <-sh.svc.closing:
		p.fl.release()
	}
}

// call runs fn on the shard's event loop and waits for it, honouring ctx:
// a cancelled or expired context returns ctx.Err() promptly instead of
// blocking on the loop. When call returns a context error the command may
// or may not still execute; callers needing certainty enqueue idempotent
// compensation.
//
//leadervet:runsOnLoop fn
func (sh *serviceShard) call(ctx context.Context, fn func()) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	donec := make(chan struct{})
	select {
	case sh.commands <- func() { fn(); close(donec) }:
	case <-ctx.Done():
		return ctx.Err()
	case <-sh.svc.closing:
		return ErrClosed
	}
	select {
	case <-donec:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-sh.done:
		return ErrClosed
	}
}

// onDatagram decodes and steers one received datagram — a bare message
// or a batch envelope. Decoding happens here (the transport reuses the
// payload buffer after we return) through a pooled Decoder; the decoded
// messages are partitioned by owning shard, handed to the shard loops
// over the bounded inbound rings, and recycled once every part has been
// dispatched. The protocol handlers copy everything they keep, so the
// recycle-after-handle contract holds by construction. Safe for
// concurrent delivery (multi-receiver transports).
//
//leadervet:hotpath
func (s *Service) onDatagram(payload []byte) {
	s.dispatchDatagram(payload, netip.AddrPort{})
}

// onDatagramFrom is the SourceAware receive path: onDatagram plus the
// datagram's network source, which client-plane messages feed into the
// transport's address book. Only SUBSCRIBE/LEASE_RENEW/UNSUBSCRIBE teach
// addresses — member traffic never rewrites the static book, so a spoofed
// heartbeat cannot redirect protocol traffic.
func (s *Service) onDatagramFrom(payload []byte, src netip.AddrPort) {
	s.dispatchDatagram(payload, src)
}

//leadervet:hotpath
func (s *Service) dispatchDatagram(payload []byte, src netip.AddrPort) {
	ib := s.inboxes.Get().(*wire.Inbox)
	msgs, unknown, err := ib.Decode(payload)
	if errors.Is(err, wire.ErrUnknownKind) {
		// A bare datagram of a future kind: dropped whole, but counted as
		// forward traffic, not as silent garbage.
		unknown++
	}
	s.counters.CountUnknown(unknown)
	if err != nil || len(msgs) == 0 {
		// Garbage on the wire is dropped, as a UDP service must.
		ib.Recycle(msgs, false)
		s.inboxes.Put(ib)
		return
	}
	if s.learner != nil && src.IsValid() {
		for _, m := range msgs {
			switch m.(type) {
			case *wire.Subscribe, *wire.LeaseRenew, *wire.Unsubscribe:
				s.learner.LearnPeer(m.From(), src)
			}
		}
	}
	// Counted at dispatch on the shard loop, not here: a datagram the
	// closing service drops between decode and dispatch must not inflate
	// the delivered-traffic counters. (payload is captured by size now —
	// the transport reuses the buffer after we return.)
	fl := inFlightPool.Get().(*inFlight)
	fl.inbox = ib
	fl.msgs = msgs
	fl.bytes = len(payload) + wire.UDPOverhead
	fl.batch = len(msgs) > 1
	if len(s.shards) == 1 {
		// Single-shard fast path: no steering pass, the whole datagram is
		// one part — exactly the classic single-loop delivery.
		s.dispatchWhole(fl, ib, s.shards[0])
		return
	}
	s.steer(fl, ib)
}

// dispatchWhole hands an undivided datagram to one shard: a single part
// covering every message, carrying the datagram-level counters.
func (s *Service) dispatchWhole(fl *inFlight, ib *wire.Inbox, sh *serviceShard) {
	fl.pending.Store(1)
	s.inboxes.Put(ib)
	sh.enqueueInbound(inboundPart{fl: fl, lo: 0, hi: len(fl.msgs), datagram: true})
}

// steer partitions one decoded datagram's messages into shard-contiguous
// runs and hands each run to its owning shard. The outbound coalescer
// freely mixes groups bound for one peer into one datagram, so a received
// batch routinely spans shards; a stable scatter (two passes over the
// messages, scratch tables on the stack, destination slice recycled from
// the inbox) keeps per-message order inside each shard identical to wire
// order, which is what preserves the per-peer FIFO the protocol relies
// on. The datagram-level counters ride with the part holding the first
// message.
//
//leadervet:hotpath
func (s *Service) steer(fl *inFlight, ib *wire.Inbox) {
	msgs := fl.msgs
	var counts [MaxShards]int32
	for _, m := range msgs {
		counts[s.shardIndex(m.GroupID())]++
	}
	// A datagram whose messages all landed on one shard (the common case:
	// member traffic between two nodes sharing one group) skips the
	// scatter entirely.
	first := s.shardIndex(msgs[0].GroupID())
	if int(counts[first]) == len(msgs) {
		s.dispatchWhole(fl, ib, s.shards[first])
		return
	}
	var starts, offsets [MaxShards]int32
	parts := int32(0)
	pos := int32(0)
	for i := range s.shards {
		starts[i] = pos
		offsets[i] = pos
		pos += counts[i]
		if counts[i] > 0 {
			parts++
		}
	}
	dst := ib.TakeSlice()
	if cap(dst) < len(msgs) {
		// Too small to scatter into: back to the pool, not the floor.
		ib.Recycle(dst, false)
		dst = make([]wire.Message, len(msgs)) //leadervet:ignore — cold pool-miss fallback, amortised away
	} else {
		dst = dst[:len(msgs)]
	}
	for _, m := range msgs {
		i := s.shardIndex(m.GroupID())
		dst[offsets[i]] = m
		offsets[i]++
	}
	// The scatter slice replaces the decode slice as the carrier payload;
	// the decode slice goes straight back to the pool (its messages live
	// on, now referenced by dst).
	fl.msgs = dst
	ib.Recycle(msgs[:0], false)
	s.inboxes.Put(ib)
	fl.pending.Store(parts)
	for i := range s.shards {
		if counts[i] == 0 {
			continue
		}
		s.shards[i].enqueueInbound(inboundPart{
			fl:       fl,
			lo:       int(starts[i]),
			hi:       int(offsets[i]),
			datagram: i == first,
		})
	}
}

// ID returns the service's process id.
func (s *Service) ID() id.Process { return s.self }

// PacketStats snapshots the packet-plane counters: datagrams, batches and
// coalesced messages in both directions, plus — on transports that
// account their kernel crossings, like UDP — the syscall columns behind
// them. Safe from any goroutine.
func (s *Service) PacketStats() PacketStats {
	// A struct conversion, so a counter added to the internal set without
	// a public mirror fails to compile instead of silently reporting zero.
	ps := PacketStats(s.counters.Snapshot())
	if st, ok := s.tr.(transport.IOStatser); ok {
		io := st.IOStats()
		ps.RecvSyscalls = io.RecvSyscalls
		ps.SendSyscalls = io.SendSyscalls
	}
	return ps
}

// Incarnation returns this service instance's incarnation number. Every
// shard's node announces this same number: a sharded service is still one
// process lifetime to the rest of the cluster.
func (s *Service) Incarnation() int64 { return s.inc }

// Join enters group g and returns its handle. Joining is asynchronous by
// nature — the group converges through gossip — but the local registration
// itself honours ctx: a cancelled context returns ctx.Err() promptly (any
// partially applied registration is rolled back in the background). The
// group is served by the event-loop shard its id hashes onto, for the
// life of the service.
func (s *Service) Join(ctx context.Context, g id.Group, opts ...JoinOption) (*Group, error) {
	cfg := defaultJoinConfig()
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := s.groups[g]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("stableleader: already joined %q", g)
	}
	sh := s.shardFor(g)
	grp := newGroup(s, sh, g)
	s.groups[g] = grp
	s.mu.Unlock()

	var joinErr error
	err := sh.call(ctx, func() {
		joinErr = sh.node.Join(g, core.JoinOptions{
			Candidate:           cfg.candidate,
			Algorithm:           election.Kind(cfg.algorithm),
			QoS:                 cfg.spec,
			Seeds:               cfg.seeds,
			HelloInterval:       cfg.helloInterval,
			GossipFanout:        cfg.gossipFanout,
			ReconfigureInterval: cfg.reconfigureInterval,
			DisableHandover:     cfg.disableHandover,
			OnLeaderChange: func(li core.LeaderInfo) {
				grp.publish(LeaderChanged{Info: publicInfo(li)})
			},
			OnMembership: func(m group.Member, joined bool) {
				if joined {
					grp.publish(MemberJoined{
						Group:       g,
						Member:      m.ID,
						Incarnation: m.Incarnation,
						Candidate:   m.Candidate,
						At:          time.Now(),
					})
				} else {
					grp.publish(MemberLeft{
						Group:       g,
						Member:      m.ID,
						Incarnation: m.Incarnation,
						At:          time.Now(),
					})
				}
			},
			OnTrustChange: func(p id.Process, inc int64, trusted bool) {
				if trusted {
					grp.publish(MemberTrusted{
						Group: g, Member: p, Incarnation: inc, At: time.Now(),
					})
				} else {
					grp.publish(MemberSuspected{
						Group: g, Member: p, Incarnation: inc, At: time.Now(),
					})
				}
			},
			OnStandbyChange: func(p id.Process, inc int64) {
				grp.storeStandby(p, inc)
				grp.publish(StandbyChanged{
					Group: g, Standby: p, Incarnation: inc, At: time.Now(),
				})
			},
			OnReconfigured: func(p id.Process, params qos.Params) {
				grp.publish(QoSReconfigured{
					Group:    g,
					Member:   p,
					Interval: params.Interval,
					Timeout:  params.Timeout,
					At:       time.Now(),
				})
			},
			OnStatus: grp.storeStatus,
		})
		if joinErr == nil {
			// Seed the read plane so Leader/Status answer wait-free from
			// the first instant after Join (OnStatus already stored the
			// initial membership snapshot during core join).
			if li, lerr := sh.node.Leader(g); lerr == nil {
				grp.seedLeader(publicInfo(li))
			}
		}
	})
	if err == nil {
		err = joinErr
	}
	if err != nil {
		if !errors.Is(err, ErrClosed) && ctx != nil && ctx.Err() != nil {
			// The context expired mid-flight: the join may still land on
			// the loop after we report failure. Undo it; a leave of a
			// never-joined group is a harmless no-op. Enqueued BEFORE the
			// map delete so a concurrent re-Join of g serialises after
			// the rollback rather than being torn down by it.
			sh.enqueue(func() { _ = sh.node.Leave(g) })
		}
		s.mu.Lock()
		delete(s.groups, g)
		s.mu.Unlock()
		grp.closeSubscribers()
		return nil, err
	}
	return grp, nil
}

// Close shuts the service down gracefully: LEAVE messages are announced
// for every joined group so peers re-elect immediately rather than waiting
// for failure detection, then the event-loop shards drain and the
// transport closes. ctx bounds how long Close waits; on cancellation it
// returns ctx.Err() promptly while the shutdown completes in the
// background. Close is idempotent.
func (s *Service) Close(ctx context.Context) error {
	return s.shutdown(ctx, true)
}

// Crash shuts the service down abruptly, announcing nothing — crash
// semantics, as a fault injector or test wants. Peers notice through
// failure detection. Crash is idempotent with Close.
func (s *Service) Crash() error {
	return s.shutdown(context.Background(), false)
}

// shutdown implements Close and Crash.
func (s *Service) shutdown(ctx context.Context, leave bool) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// Repeat closer: done only once teardown truly completed (every
		// shard loop exited, subscribers closed, transport closed),
		// reporting the transport's close outcome so a nil return always
		// means the listen address is free again. Deterministic: a
		// finished service reports that outcome regardless of ctx;
		// otherwise a dead ctx wins over waiting.
		select {
		case <-s.finished:
			return s.closeErr
		default:
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		select {
		case <-s.finished:
			return s.closeErr
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s.closed = true
	groups := make([]*Group, 0, len(s.groups))
	for _, g := range s.groups {
		groups = append(groups, g)
	}
	s.mu.Unlock()

	if leave {
		// Departures run on the owning shard of each group: one leaveAll
		// command per shard that has groups, so every LEAVE is announced
		// by the loop that owns the group's protocol state.
		perShard := make(map[*serviceShard][]*Group)
		for _, g := range groups {
			perShard[g.sh] = append(perShard[g.sh], g)
		}
		for sh, ggs := range perShard {
			sh, ggs := sh, ggs
			leaveAll := func() {
				for _, g := range ggs {
					_ = sh.node.Leave(g.id)
				}
			}
			if err := sh.call(ctx, leaveAll); err != nil && !errors.Is(err, ErrClosed) {
				// The context died before the loop ran the departures.
				// Queue them anyway — the loop drains queued commands
				// after closing, and leaving twice is a harmless no-op —
				// so a graceful Close never silently degrades to crash
				// semantics.
				sh.enqueue(leaveAll)
			}
		}
	}
	close(s.closing)

	// finish runs exactly once (only the first closer reaches here) and
	// unblocks repeat closers by closing s.finished at the very end.
	finish := func() error {
		<-s.done
		for _, g := range groups {
			g.closeSubscribers()
		}
		err := s.tr.Close()
		s.closeErr = err // sequenced before close(finished); readers wait on it
		close(s.finished)
		return err
	}
	if err := ctx.Err(); err != nil {
		// Deterministic on an already-dead context: report the context
		// error and complete the shutdown in the background.
		go finish()
		return err
	}
	select {
	case <-s.done:
		return finish()
	case <-ctx.Done():
		go finish()
		return ctx.Err()
	}
}

// serviceRuntime adapts one shard to core.Runtime: real clock, timers
// multiplexed onto one runtime timer through the shard's hashed timer
// wheel, transport sends, and the shard RNG (used only on the shard's
// event loop).
//
// The wheel is owned by the shard loop: every protocol-side arm/re-arm
// and every Advance happens there, so wheel state needs no locking and
// wheel callbacks run directly on the loop (satisfying the clock.Clock
// delivery contract with zero hops). The only cross-goroutine edge is the
// driver timer's callback, which merely enqueues an advance onto its own
// shard — it can never touch, block, or be blocked by another shard.
type serviceRuntime struct {
	sh  *serviceShard
	rng *rand.Rand

	// wheel holds every pending protocol deadline of this shard; driver
	// is the single runtime timer that wakes the loop at wheel.Next.
	// armed caches the instant driver is set for, so a re-arm is skipped
	// when the earliest deadline did not move. All three fields are
	// loop-owned.
	wheel  *timerwheel.Wheel //leadervet:loopOwned
	driver *time.Timer       //leadervet:loopOwned
	armed  time.Time         //leadervet:loopOwned
	// advancing suppresses per-callback driver re-arms while Advance
	// fires a batch of deadlines; the single kick afterwards covers them.
	advancing bool //leadervet:loopOwned

	// Send staging (only with a batch-capable transport): marshalled
	// datagrams accumulate here during one loop wakeup and leave as one
	// vectored send — flushSends runs at the end of every loop arm, or
	// mid-arm when the vector fills. pendBuf keeps the pooled marshal
	// buffer of each staged payload so the flush can recycle it.
	pend    [sendVector]transport.Datagram //leadervet:loopOwned
	pendBuf [sendVector]*[]byte            //leadervet:loopOwned
	npend   int                            //leadervet:loopOwned
}

// sendVector is the per-shard send staging depth, matching what one
// sendmmsg comfortably carries; a wakeup producing more simply flushes
// mid-arm.
const sendVector = 32

var _ core.Runtime = (*serviceRuntime)(nil)
var _ clock.TimerFactory = (*serviceRuntime)(nil)

// Now implements clock.Clock.
func (r *serviceRuntime) Now() time.Time { return time.Now() }

// AfterFunc implements clock.Clock: the deadline goes onto the wheel (one
// entry allocation — one-shot timers are rare, re-armed paths use
// NewTimer), and fires on the shard loop via the driver. Like every
// core.Runtime entry point, it is invoked on the shard's loop.
//
//leadervet:onLoop
func (r *serviceRuntime) AfterFunc(d time.Duration, fn func()) clock.Timer {
	t := &wheelRearmer{rt: r, e: timerwheel.NewEntry(fn)}
	t.Reset(d)
	return t
}

// NewTimer implements clock.TimerFactory: a re-armable wheel entry,
// allocated once and re-armed in place — the zero-allocation path the
// failure detector, pacer and outbound scheduler run per heartbeat.
func (r *serviceRuntime) NewTimer(fn func()) clock.Rearmer {
	return &wheelRearmer{rt: r, e: timerwheel.NewEntry(fn)}
}

// wheelRearmer is a clock.Rearmer over a shard wheel. Its methods run
// on the shard's event loop, like every other wheel operation.
type wheelRearmer struct {
	rt *serviceRuntime
	e  *timerwheel.Entry
}

//leadervet:onLoop
func (t *wheelRearmer) Reset(d time.Duration) bool {
	stopped := t.e.Pending()
	at := time.Now().Add(d)
	t.rt.wheel.Schedule(t.e, at)
	// Driver invariant: armed ≤ the earliest pending deadline. A re-arm
	// to a later instant preserves it as-is (at worst the driver wakes
	// once with nothing due and re-kicks), so only a new earliest
	// deadline pays the kick — the per-heartbeat deadline *extensions* on
	// the hot path skip it entirely.
	if !t.rt.advancing && (t.rt.armed.IsZero() || at.Before(t.rt.armed)) {
		t.rt.kick()
	}
	return stopped
}

//leadervet:onLoop
func (t *wheelRearmer) Stop() bool {
	// No driver re-arm: a wake-up with nothing due is harmless and rarer
	// than Stops.
	return t.rt.wheel.Stop(t.e)
}

// kick re-arms the driver timer at the wheel's earliest deadline. Called
// on the loop after any schedule; the advance path calls it after every
// wheel movement.
func (r *serviceRuntime) kick() {
	next, ok := r.wheel.Next()
	if !ok {
		r.armed = time.Time{}
		if r.driver != nil {
			r.driver.Stop()
		}
		return
	}
	if !r.armed.IsZero() && r.armed.Equal(next) {
		return
	}
	r.armed = next
	d := time.Until(next)
	if r.driver == nil {
		r.driver = time.AfterFunc(d, r.wake)
		return
	}
	// A Reset racing a fired-but-not-yet-run callback at worst produces a
	// spurious advance, which fires nothing and re-kicks — never a missed
	// deadline, because this Reset always covers the earliest one.
	r.driver.Reset(d)
}

// wake runs on the driver timer's goroutine: it only hops back onto its
// own shard's event loop (dropped once the service is closing, like any
// command) — so a timer firing during Close on one shard can neither
// deadlock nor touch another shard's drain.
func (r *serviceRuntime) wake() {
	r.sh.enqueue(r.advance)
}

// advance moves the wheel to the present, firing due protocol deadlines
// inline on the loop, then re-arms the driver.
func (r *serviceRuntime) advance() {
	r.armed = time.Time{}
	r.advancing = true
	r.wheel.Advance(time.Now())
	r.advancing = false
	r.kick()
}

// stopDriver releases the runtime timer when the shard loop exits.
func (r *serviceRuntime) stopDriver() {
	if r.driver != nil {
		r.driver.Stop()
	}
}

// sendBufPool recycles marshal buffers across sends: transports do not
// retain the payload after Send returns (see the Transport contract), so
// the buffer goes straight back into the pool and the send hot path stays
// allocation-free. Shared across shards (sync.Pool scales with Ps).
var sendBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 2048); return &b },
}

// Send implements core.Runtime. m is a bare message or a *wire.Batch the
// outbound scheduler flushed; either way it is one datagram. Once the
// bytes are handed to the transport the message is dead, so pool-managed
// kinds (the client plane's fan-out snapshots) are recycled here — the
// release half of the send pool that keeps a 10k-subscriber fan-out
// allocation-free.
//
//leadervet:hotpath
func (r *serviceRuntime) Send(to id.Process, m wire.Message) {
	bp := sendBufPool.Get().(*[]byte)
	buf := wire.MarshalAppend((*bp)[:0], m)
	svc := r.sh.svc
	if svc.batchTr == nil {
		_ = svc.tr.Send(to, buf)
		*bp = buf[:0]
		sendBufPool.Put(bp)
		wire.ReleaseOutbound(m)
		return
	}
	// Batch-capable transport: stage instead of sending. The marshal
	// buffer stays out of the pool (pendBuf holds it) until flushSends
	// hands the staged payloads to the transport; the Transport contract
	// still holds — the transport sees the bytes only during the batch
	// call.
	*bp = buf
	r.pend[r.npend] = transport.Datagram{To: to, Payload: buf}
	r.pendBuf[r.npend] = bp
	r.npend++
	wire.ReleaseOutbound(m)
	if r.npend == sendVector {
		r.flushSends()
	}
}

// SendBatch implements core.BatchSender: the outbound scheduler's
// gathered drains land in the same staging vector Send feeds, so a
// multi-destination drain leaves as one sendmmsg.
//
//leadervet:onLoop
func (r *serviceRuntime) SendBatch(batch []outbound.Flushed) {
	for _, f := range batch {
		r.Send(f.To, f.Msg)
	}
}

// flushSends transmits the staged datagrams as one vector on the
// transport's batch door, steered to this shard's send socket, then
// recycles the marshal buffers. Runs on the shard loop; the loop calls
// it before blocking, so nothing ever lingers staged across a wait.
//
//leadervet:onLoop
func (r *serviceRuntime) flushSends() {
	n := r.npend
	if n == 0 {
		return
	}
	svc := r.sh.svc
	if n == 1 {
		// One datagram needs no vector; the hint still keeps the shard on
		// its own socket.
		d := r.pend[0]
		if svc.hintTr != nil {
			_ = svc.hintTr.SendHint(transport.SenderHint(r.sh.idx), d.To, d.Payload)
		} else {
			_ = svc.tr.Send(d.To, d.Payload)
		}
	} else if svc.hintTr != nil {
		_, _ = svc.hintTr.SendBatchHint(transport.SenderHint(r.sh.idx), r.pend[:n])
	} else {
		_, _ = svc.batchTr.SendBatch(r.pend[:n])
	}
	for i := 0; i < n; i++ {
		bp := r.pendBuf[i]
		*bp = (*bp)[:0]
		sendBufPool.Put(bp)
		r.pendBuf[i] = nil
		r.pend[i] = transport.Datagram{}
	}
	r.npend = 0
}

// Rand implements core.Runtime.
func (r *serviceRuntime) Rand() *rand.Rand { return r.rng }
