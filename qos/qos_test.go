package qos

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultIsPaperSetting(t *testing.T) {
	d := Default()
	if d.DetectionTime != time.Second {
		t.Errorf("TdU = %v, want 1s", d.DetectionTime)
	}
	if d.MistakeRecurrence != 2400*time.Hour {
		t.Errorf("TmrL = %v, want 100 days", d.MistakeRecurrence)
	}
	if d.QueryAccuracy != 0.99999988 {
		t.Errorf("PaL = %v", d.QueryAccuracy)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("default spec invalid: %v", err)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Spec
		ok   bool
	}{
		{"default", Default(), true},
		{"zero", Spec{}, false},
		{"negative detection", Spec{DetectionTime: -1, MistakeRecurrence: 1, QueryAccuracy: 0.5}, false},
		{"zero recurrence", Spec{DetectionTime: 1, QueryAccuracy: 0.5}, false},
		{"accuracy one", Spec{DetectionTime: 1, MistakeRecurrence: 1, QueryAccuracy: 1}, false},
		{"accuracy negative", Spec{DetectionTime: 1, MistakeRecurrence: 1, QueryAccuracy: -0.1}, false},
		{"accuracy zero ok", Spec{DetectionTime: 1, MistakeRecurrence: 1, QueryAccuracy: 0}, true},
	}
	for _, c := range cases {
		if err := c.s.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// lanLink is the paper's measured LAN behaviour.
func lanLink() LinkStats {
	return LinkStats{Loss: 0, MeanDelay: 25 * time.Microsecond, StdDelay: 25 * time.Microsecond}
}

// worstLink is the paper's worst lossy network.
func worstLink() LinkStats {
	return LinkStats{Loss: 0.1, MeanDelay: 100 * time.Millisecond, StdDelay: 100 * time.Millisecond}
}

func TestConfigureSpendsFullDetectionBudget(t *testing.T) {
	for _, link := range []LinkStats{lanLink(), worstLink()} {
		p := Configure(Default(), link)
		if got := p.Interval + p.Timeout; got > time.Second || got < 990*time.Millisecond {
			t.Errorf("η+δ = %v, want ≈ TdU (1s) for link %+v", got, link)
		}
		if p.Interval <= 0 || p.Timeout <= 0 {
			t.Errorf("non-positive parameters %+v", p)
		}
	}
}

func TestConfigureLANPicksLargestInterval(t *testing.T) {
	p := Configure(Default(), lanLink())
	// On a perfect LAN the QoS is easy: the configurator should choose the
	// largest offered interval, TdU/4.
	if p.Interval != 250*time.Millisecond {
		t.Errorf("LAN interval = %v, want 250ms", p.Interval)
	}
}

func TestConfigureLossyNeedsMoreHeartbeats(t *testing.T) {
	lan := Configure(Default(), lanLink())
	bad := Configure(Default(), worstLink())
	if bad.Interval >= lan.Interval {
		t.Errorf("lossy link interval %v should be below LAN interval %v", bad.Interval, lan.Interval)
	}
	// With 10% loss, meeting one mistake per 100 days needs several
	// heartbeats overlapping the window.
	if k := int(bad.Timeout / bad.Interval); k < 3 {
		t.Errorf("only %d heartbeats overlap the timeout window on the worst link", k)
	}
}

func TestConfigureMeetsMistakeBoundModel(t *testing.T) {
	// The chosen parameters must satisfy the very model the configurator
	// uses: eta/p_s >= max(TmrL, (eta+Ed)/(1-PaL)).
	spec := Default()
	for _, link := range []LinkStats{
		lanLink(),
		worstLink(),
		{Loss: 0.01, MeanDelay: 10 * time.Millisecond, StdDelay: 10 * time.Millisecond},
		{Loss: 0.1, MeanDelay: 10 * time.Millisecond, StdDelay: 10 * time.Millisecond},
	} {
		p := Configure(spec, link)
		eta := p.Interval.Seconds()
		delta := p.Timeout.Seconds()
		ps := suspicionProbability(eta, delta, link)
		required := spec.MistakeRecurrence.Seconds()
		if r := (eta + link.MeanDelay.Seconds()) / (1 - spec.QueryAccuracy); r > required {
			required = r
		}
		if eta/ps < required {
			t.Errorf("link %+v: E[Tmr] = %.3g s < required %.3g s (η=%v δ=%v)",
				link, eta/ps, required, p.Interval, p.Timeout)
		}
	}
}

func TestConfigureHopelessLinkFallsBackToFloor(t *testing.T) {
	// A link losing 99.9% of messages cannot meet 100-day recurrence
	// within a 1s detection bound; the configurator must return its most
	// aggressive detector rather than fail.
	p := Configure(Default(), LinkStats{Loss: 0.999, MeanDelay: 100 * time.Millisecond, StdDelay: 100 * time.Millisecond})
	if p.Interval > 5*time.Millisecond {
		t.Errorf("hopeless link interval = %v, want the floor (≈2ms)", p.Interval)
	}
}

func TestConfigureShortDetectionBound(t *testing.T) {
	spec := Default()
	spec.DetectionTime = 100 * time.Millisecond
	p := Configure(spec, lanLink())
	if p.Interval+p.Timeout > 100*time.Millisecond {
		t.Errorf("η+δ = %v exceeds TdU = 100ms", p.Interval+p.Timeout)
	}
	if p.Interval < 200*time.Microsecond {
		t.Errorf("interval %v below the absolute floor", p.Interval)
	}
}

// TestConfigureQuickInvariants drives the configurator across random specs
// and link qualities: it must always return positive parameters within the
// detection budget, with the timeout at least as large as the interval.
func TestConfigureQuickInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		spec := Spec{
			DetectionTime:     time.Duration(1+rng.Intn(5000)) * time.Millisecond,
			MistakeRecurrence: time.Duration(1+rng.Intn(1000)) * time.Hour,
			QueryAccuracy:     rng.Float64() * 0.9999999,
		}
		link := LinkStats{
			Loss:      rng.Float64() * 0.9,
			MeanDelay: time.Duration(rng.Intn(int(200 * time.Millisecond))),
			StdDelay:  time.Duration(rng.Intn(int(200 * time.Millisecond))),
		}
		p := Configure(spec, link)
		if p.Interval <= 0 || p.Timeout <= 0 {
			t.Logf("non-positive params %+v for %v %+v", p, spec, link)
			return false
		}
		if p.Interval+p.Timeout > spec.DetectionTime+time.Millisecond {
			t.Logf("budget exceeded: %+v for %v %+v", p, spec, link)
			return false
		}
		if p.Timeout < p.Interval {
			t.Logf("timeout below interval: %+v", p)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestConfigureMonotoneInLoss(t *testing.T) {
	// More loss must never buy a longer heartbeat interval.
	prev := time.Duration(1 << 62)
	for _, loss := range []float64{0, 0.01, 0.05, 0.1, 0.3, 0.5} {
		p := Configure(Default(), LinkStats{Loss: loss, MeanDelay: 10 * time.Millisecond, StdDelay: 10 * time.Millisecond})
		if p.Interval > prev {
			t.Errorf("interval grew from %v to %v as loss rose to %g", prev, p.Interval, loss)
		}
		prev = p.Interval
	}
}

func TestSuspicionProbabilityMonotoneInTimeout(t *testing.T) {
	link := worstLink()
	prev := 1.1
	for _, delta := range []float64{0.2, 0.4, 0.6, 0.8, 0.95} {
		ps := suspicionProbability(0.05, delta, link)
		if ps > prev {
			t.Errorf("p_s rose from %g to %g as δ grew to %g", prev, ps, delta)
		}
		prev = ps
	}
}

func TestTailBound(t *testing.T) {
	if got := tailBound(0.5, 1.0, 0.01); got != 1 {
		t.Errorf("tail bound below the mean must be vacuous, got %g", got)
	}
	// One-sided Chebyshev: Var/(Var+d²).
	if got, want := tailBound(2, 1, 0.25), 0.25/(0.25+1); got != want {
		t.Errorf("tailBound = %g, want %g", got, want)
	}
}

func TestSpecString(t *testing.T) {
	s := Default().String()
	if s == "" {
		t.Error("empty String()")
	}
}
