// Package qos implements the failure detector configurator of Chen, Toueg
// and Aguilera ("On the Quality of Service of Failure Detectors", IEEE
// Transactions on Computers 2002), as used by the leader election service.
//
// Applications do not choose heartbeat rates or timeouts. They state a QoS
// requirement for crash detection:
//
//	TdU  — an upper bound on the time to detect a crash,
//	TmrL — a lower bound on the expected time between two consecutive
//	       failure detector mistakes, and
//	PaL  — a lower bound on the probability that, at a random time, the
//	       detector's output is correct,
//
// and the configurator derives the heartbeat interval η and the timeout
// shift δ from the requirement and from the current link quality (loss
// probability pL, delay mean Ed and standard deviation Sd, supplied by the
// link quality estimator). Parameters are recomputed continuously, which is
// how the service adapts to changing network conditions.
//
// # Model
//
// The service runs the NFD-S detector: the monitored process q stamps every
// heartbeat with its send time σ and current interval η; the monitor p
// trusts q until σ+η+δ for the freshest heartbeat received. Under this rule
//
//   - a crash is detected at most η+δ after the last pre-crash heartbeat
//     was sent, so the detection bound requires η+δ ≤ TdU;
//
//   - a mistake can begin only at a freshness point, which occurs once per
//     η; the probability that no sufficiently recent heartbeat has arrived
//     by a freshness point is
//
//     p_s = Π_{k=0..K} [ pL + (1−pL)·Pr(D > δ−kη) ],  K = ⌊δ/η⌋,
//
//     because K+1 heartbeats are in flight inside the window (this is what
//     makes the detector robust to bursty loss: the configurator shrinks η
//     until enough heartbeats overlap the timeout window);
//
//   - the expected mistake recurrence time is then E[T_MR] ≈ η/p_s, and the
//     expected mistake duration is at most η+Ed (the next heartbeat ends
//     it), so the accuracy requirements become
//
//     η/p_s ≥ max( TmrL, (η+Ed)/(1−PaL) ).
//
// Only the mean and variance of the delay are known, so Pr(D > x) is
// bounded with the one-sided Chebyshev inequality Var/(Var+(x−Ed)²), the
// same distribution-free bound used by Chen et al. Where their paper
// derives η in closed form from these constraints, we maximise η by direct
// feasibility search over the identical model — the contract (meet the QoS
// if the link permits, otherwise deliver the best achievable detector) is
// unchanged. See DESIGN.md for the substitution note.
package qos

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Spec is an application's QoS requirement for crash detection, per
// monitored process. The zero value is invalid; use Default for the
// paper's setting.
type Spec struct {
	// DetectionTime (TdU) bounds the time to detect a crash.
	DetectionTime time.Duration
	// MistakeRecurrence (TmrL) lower-bounds the expected time between two
	// consecutive failure detector mistakes.
	MistakeRecurrence time.Duration
	// QueryAccuracy (PaL) lower-bounds the probability that the detector is
	// correct at a random query time. Must be in [0, 1).
	QueryAccuracy float64
}

// Default is the QoS used throughout the paper's evaluation (Section 6.1):
// detect crashes within one second, at most one mistake per monitored
// process every 100 days, and query accuracy at least 0.99999988.
func Default() Spec {
	return Spec{
		DetectionTime:     time.Second,
		MistakeRecurrence: 100 * 24 * time.Hour,
		QueryAccuracy:     0.99999988,
	}
}

// Validate reports whether the spec is well-formed.
func (s Spec) Validate() error {
	switch {
	case s.DetectionTime <= 0:
		return errors.New("qos: DetectionTime must be positive")
	case s.MistakeRecurrence <= 0:
		return errors.New("qos: MistakeRecurrence must be positive")
	case s.QueryAccuracy < 0 || s.QueryAccuracy >= 1:
		return errors.New("qos: QueryAccuracy must be in [0, 1)")
	default:
		return nil
	}
}

// String renders the spec in the paper's notation.
func (s Spec) String() string {
	return fmt.Sprintf("QoS{TdU=%v TmrL=%v PaL=%g}", s.DetectionTime, s.MistakeRecurrence, s.QueryAccuracy)
}

// LinkStats is the link quality input to the configurator, as produced by
// the link quality estimator.
type LinkStats struct {
	// Loss is the probability a message is dropped (pL).
	Loss float64
	// MeanDelay is the expected one-way delay (Ed).
	MeanDelay time.Duration
	// StdDelay is the standard deviation of the one-way delay (Sd).
	StdDelay time.Duration
}

// Params is the configurator's output: the heartbeat interval η the
// monitored process must use and the timeout shift δ the monitor applies to
// heartbeat send times.
type Params struct {
	// Interval is η, the heartbeat sending interval.
	Interval time.Duration
	// Timeout is δ: a heartbeat stamped σ with interval η keeps the sender
	// trusted until σ+η+δ.
	Timeout time.Duration
}

// Search granularity and guard rails.
const (
	// gridPoints is the number of log-spaced candidate intervals examined.
	gridPoints = 96
	// maxInFlight caps the number of overlapping heartbeats modelled.
	maxInFlight = 128
	// minIntervalFraction bounds η below as a fraction of TdU so a hopeless
	// link cannot drive the send rate to infinity.
	minIntervalFraction = 1.0 / 500
	// absoluteMinInterval is a hard floor on the heartbeat interval.
	absoluteMinInterval = 200 * time.Microsecond
)

// tailBound bounds Pr(D > x) given only mean and variance, via the
// one-sided Chebyshev inequality. For x at or below the mean the bound is
// vacuous (1).
func tailBound(x, mean, variance float64) float64 {
	d := x - mean
	if d <= 0 {
		return 1
	}
	return variance / (variance + d*d)
}

// suspicionProbability is p_s: the probability that none of the heartbeats
// overlapping the timeout window arrives in time.
func suspicionProbability(eta, delta float64, link LinkStats) float64 {
	mean := link.MeanDelay.Seconds()
	sd := link.StdDelay.Seconds()
	// A tiny variance floor keeps the bound meaningful when the estimator
	// reports a near-deterministic link.
	if sd < 1e-6 {
		sd = 1e-6
	}
	variance := sd * sd
	loss := link.Loss
	if loss < 0 {
		loss = 0
	}
	if loss > 1 {
		loss = 1
	}
	k := int(delta / eta)
	if k > maxInFlight {
		k = maxInFlight
	}
	ps := 1.0
	for i := 0; i <= k; i++ {
		term := loss + (1-loss)*tailBound(delta-float64(i)*eta, mean, variance)
		ps *= term
		if ps < 1e-300 {
			return 1e-300
		}
	}
	return ps
}

// feasible reports whether (η, δ=TdU−η) meets the accuracy requirements.
func feasible(eta float64, spec Spec, link LinkStats) bool {
	delta := spec.DetectionTime.Seconds() - eta
	if delta <= 0 {
		return false
	}
	ps := suspicionProbability(eta, delta, link)
	recurrence := eta / ps
	required := spec.MistakeRecurrence.Seconds()
	inaccuracy := 1 - spec.QueryAccuracy
	if inaccuracy < 1e-12 {
		inaccuracy = 1e-12
	}
	if r := (eta + link.MeanDelay.Seconds()) / inaccuracy; r > required {
		required = r
	}
	return recurrence >= required
}

// Configure computes (η, δ) for the given QoS requirement and link quality.
//
// η is maximised (fewer messages cost less) subject to the detection bound
// η+δ ≤ TdU, to η ≤ δ (at least one heartbeat always overlaps the timeout
// window, which also keeps the average detection time well inside TdU), and
// to the accuracy constraints above. If even the minimum interval cannot
// satisfy the accuracy requirements — for example during a complete link
// outage — the configurator returns the most accurate achievable detector
// rather than failing, matching the best-effort behaviour of the service.
func Configure(spec Spec, link LinkStats) Params {
	td := spec.DetectionTime.Seconds()
	// A quarter of the detection budget is the largest interval offered:
	// several heartbeats always overlap the timeout window (loss
	// tolerance), the average detection time stays well inside TdU, and the
	// resulting rates match the operating point of the paper's evaluation.
	maxEta := td / 4
	minEta := td * minIntervalFraction
	if floor := absoluteMinInterval.Seconds(); minEta < floor {
		minEta = floor
	}
	if minEta > maxEta {
		minEta = maxEta
	}
	// Walk a log-spaced grid from the largest interval downward and take
	// the first feasible point. Feasibility is monotone in practice (a
	// smaller η means more heartbeats in flight and a larger δ), so this
	// finds the cheapest compliant configuration.
	ratio := minEta / maxEta
	for i := 0; i < gridPoints; i++ {
		frac := float64(i) / float64(gridPoints-1)
		eta := maxEta * math.Pow(ratio, frac)
		if feasible(eta, spec, link) {
			return paramsFor(eta, td)
		}
	}
	return paramsFor(minEta, td)
}

// paramsFor rounds the chosen interval to microseconds and spends the rest
// of the detection budget on the timeout shift.
func paramsFor(eta, td float64) Params {
	interval := time.Duration(eta * float64(time.Second)).Round(time.Microsecond)
	if interval <= 0 {
		interval = absoluteMinInterval
	}
	timeout := time.Duration(td*float64(time.Second)) - interval
	if timeout < interval {
		timeout = interval
	}
	return Params{Interval: interval, Timeout: timeout}
}
