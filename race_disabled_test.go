//go:build !race

package stableleader_test

// raceEnabled: see race_enabled_test.go.
const raceEnabled = false
