package stableleader

import (
	"testing"
	"time"

	"stableleader/id"
)

// mkLeader builds a distinguishable LeaderChanged event.
func mkLeader(n int) Event {
	return LeaderChanged{Info: LeaderInfo{
		Group:       "g",
		Leader:      id.Process(rune('a' + n)),
		Incarnation: int64(n),
		Elected:     true,
		At:          time.Unix(int64(n), 0),
	}}
}

// TestSubscriberDropOldest pins the slow-subscriber contract at the unit
// level: with a full buffer, offer evicts the oldest undelivered event and
// never blocks, so the receiver always drains the freshest suffix.
func TestSubscriberDropOldest(t *testing.T) {
	sub := &subscriber{ch: make(chan Event, 2)}
	for i := 0; i < 5; i++ {
		sub.offer(mkLeader(i))
	}
	if got := len(sub.ch); got != 2 {
		t.Fatalf("buffered %d events, want 2", got)
	}
	first := (<-sub.ch).(LeaderChanged)
	second := (<-sub.ch).(LeaderChanged)
	if first.Info.Incarnation != 3 || second.Info.Incarnation != 4 {
		t.Errorf("retained incarnations (%d, %d), want the freshest (3, 4)",
			first.Info.Incarnation, second.Info.Incarnation)
	}
}

// TestSubscriberFilter pins the mask semantics: zero admits everything,
// otherwise only the requested kinds pass.
func TestSubscriberFilter(t *testing.T) {
	all := &subscriber{ch: make(chan Event, 8)}
	all.offer(mkLeader(0))
	all.offer(MemberJoined{Group: "g", Member: "b"})
	if len(all.ch) != 2 {
		t.Errorf("unfiltered subscriber buffered %d events, want 2", len(all.ch))
	}

	only := &subscriber{ch: make(chan Event, 8), mask: 1 << uint(KindMemberJoined)}
	only.offer(mkLeader(0))
	only.offer(MemberJoined{Group: "g", Member: "b"})
	only.offer(MemberSuspected{Group: "g", Member: "b"})
	if len(only.ch) != 1 {
		t.Fatalf("filtered subscriber buffered %d events, want 1", len(only.ch))
	}
	if ev := <-only.ch; ev.Kind() != KindMemberJoined {
		t.Errorf("filtered subscriber got %v", ev.Kind())
	}
}

// TestWatchFilterUnknownKindMatchesNothing pins the filter's failure mode:
// an out-of-range kind must narrow the stream to nothing, not silently
// widen it to everything.
func TestWatchFilterUnknownKindMatchesNothing(t *testing.T) {
	cfg := watchConfig{}
	WithEventFilter(EventKind(200))(&cfg)
	sub := &subscriber{ch: make(chan Event, 4), mask: cfg.mask}
	sub.offer(mkLeader(0))
	sub.offer(MemberJoined{Group: "g", Member: "b"})
	if len(sub.ch) != 0 {
		t.Errorf("filter on an unknown kind delivered %d events, want 0", len(sub.ch))
	}

	mixed := watchConfig{}
	WithEventFilter(EventKind(200), KindMemberJoined)(&mixed)
	sub2 := &subscriber{ch: make(chan Event, 4), mask: mixed.mask}
	sub2.offer(mkLeader(0))
	sub2.offer(MemberJoined{Group: "g", Member: "b"})
	if len(sub2.ch) != 1 {
		t.Errorf("mixed filter delivered %d events, want just the valid kind", len(sub2.ch))
	}
}

// TestEventKindStrings keeps the log labels in sync with the kinds.
func TestEventKindStrings(t *testing.T) {
	want := map[EventKind]string{
		KindLeaderChanged:   "leader-changed",
		KindMemberJoined:    "member-joined",
		KindMemberLeft:      "member-left",
		KindMemberSuspected: "member-suspected",
		KindMemberTrusted:   "member-trusted",
		KindQoSReconfigured: "qos-reconfigured",
		EventKind(200):      "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

// TestEventAccessors verifies every concrete event reports kind, group and
// time coherently through the Event interface.
func TestEventAccessors(t *testing.T) {
	at := time.Unix(42, 0)
	events := []Event{
		LeaderChanged{Info: LeaderInfo{Group: "g", Leader: "p", At: at}},
		MemberJoined{Group: "g", Member: "p", At: at},
		MemberLeft{Group: "g", Member: "p", At: at},
		MemberSuspected{Group: "g", Member: "p", At: at},
		MemberTrusted{Group: "g", Member: "p", At: at},
		QoSReconfigured{Group: "g", Member: "p", At: at},
	}
	kinds := map[EventKind]bool{}
	for _, ev := range events {
		if ev.GroupID() != "g" {
			t.Errorf("%T.GroupID() = %q", ev, ev.GroupID())
		}
		if !ev.When().Equal(at) {
			t.Errorf("%T.When() = %v", ev, ev.When())
		}
		if kinds[ev.Kind()] {
			t.Errorf("duplicate kind %v", ev.Kind())
		}
		kinds[ev.Kind()] = true
	}
	if len(kinds) != 6 {
		t.Errorf("covered %d kinds, want 6", len(kinds))
	}
}
