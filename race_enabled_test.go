//go:build race

package stableleader_test

// raceEnabled reports that this binary runs under the race detector —
// the mode the race hammers exist for. Same convention as
// internal/subs/race_enabled_test.go.
const raceEnabled = true
