package stableleader_test

import (
	"context"
	"errors"
	"testing"
	"time"

	stableleader "stableleader"
	"stableleader/id"
	"stableleader/transport"
)

// collectKinds drains events from w until every kind in want has appeared
// or the deadline passes; it returns the kinds still missing (nil on
// success).
func collectKinds(w <-chan stableleader.Event, want map[stableleader.EventKind]bool, timeout time.Duration) []stableleader.EventKind {
	seen := make(map[stableleader.EventKind]bool)
	deadline := time.After(timeout)
	for {
		var missing []stableleader.EventKind
		for k := range want {
			if !seen[k] {
				missing = append(missing, k)
			}
		}
		if len(missing) == 0 {
			return nil
		}
		select {
		case ev, ok := <-w:
			if !ok {
				return missing
			}
			seen[ev.Kind()] = true
		case <-deadline:
			return missing
		}
	}
}

// TestWatchMultipleSubscribers is the acceptance scenario: two concurrent
// subscribers on one group each receive their own copies of LeaderChanged,
// MemberJoined, MemberSuspected and QoSReconfigured events.
func TestWatchMultipleSubscribers(t *testing.T) {
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	names := []id.Process{"a", "b", "c"}
	svcs := startServices(t, hub, names...)
	defer func() {
		for _, s := range svcs {
			_ = s.Crash()
		}
	}()

	// "a" observes passively so the leader is always b or c and crashing
	// the leader never kills the watched node. omega-lc keeps every member
	// heartbeating, so suspicion only arises from a real crash. The tight
	// reconfigure interval makes QoSReconfigured events prompt. Joining
	// "a" first — and subscribing before b and c exist — guarantees the
	// watchers see the MemberJoined events.
	joinOpts := func(name id.Process) []stableleader.JoinOption {
		opts := []stableleader.JoinOption{
			stableleader.WithAlgorithm(stableleader.OmegaLC),
			stableleader.WithQoS(fastQoS()),
			stableleader.WithSeeds(names...),
			stableleader.WithReconfigureInterval(50 * time.Millisecond),
		}
		if name != "a" {
			opts = append(opts, stableleader.AsCandidate())
		}
		return opts
	}
	groups := make(map[id.Process]*stableleader.Group, len(names))
	grp, err := svcs["a"].Join(ctx, "demo", joinOpts("a")...)
	if err != nil {
		t.Fatal(err)
	}
	groups["a"] = grp

	w1 := groups["a"].Watch(ctx, stableleader.WithWatchBuffer(256))
	w2 := groups["a"].Watch(ctx, stableleader.WithWatchBuffer(256))

	for _, name := range []id.Process{"b", "c"} {
		grp, err := svcs[name].Join(ctx, "demo", joinOpts(name)...)
		if err != nil {
			t.Fatal(err)
		}
		groups[name] = grp
	}

	leader := waitAgreement(t, groups, 5*time.Second)
	if leader == "a" {
		t.Fatalf("passive observer %q must not lead", leader)
	}
	if err := svcs[leader].Crash(); err != nil {
		t.Fatal(err)
	}
	delete(svcs, leader)
	delete(groups, leader)
	waitAgreement(t, groups, 5*time.Second)

	want := map[stableleader.EventKind]bool{
		stableleader.KindLeaderChanged:   true,
		stableleader.KindMemberJoined:    true,
		stableleader.KindMemberSuspected: true,
		stableleader.KindQoSReconfigured: true,
	}
	if missing := collectKinds(w1, want, 5*time.Second); missing != nil {
		t.Errorf("subscriber 1 missing event kinds %v", missing)
	}
	if missing := collectKinds(w2, want, 5*time.Second); missing != nil {
		t.Errorf("subscriber 2 missing event kinds %v", missing)
	}
}

// TestWatchMemberLeft verifies the graceful-departure event reaches
// observers.
func TestWatchMemberLeft(t *testing.T) {
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	names := []id.Process{"a", "b"}
	svcs := startServices(t, hub, names...)
	groups := joinAll(t, svcs, "demo", names)
	defer func() {
		for _, s := range svcs {
			_ = s.Crash()
		}
	}()
	w := groups["a"].Watch(ctx, stableleader.WithEventFilter(stableleader.KindMemberLeft))
	waitAgreement(t, groups, 5*time.Second)

	if err := groups["b"].Leave(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case ev, ok := <-w:
		if !ok {
			t.Fatal("Watch closed before the departure event")
		}
		left := ev.(stableleader.MemberLeft)
		if left.Member != "b" {
			t.Errorf("MemberLeft.Member = %q, want b", left.Member)
		}
		if left.GroupID() != "demo" {
			t.Errorf("MemberLeft.GroupID() = %q, want demo", left.GroupID())
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no MemberLeft event after a graceful leave")
	}
}

// TestWatchTrustRestored verifies the suspect->trust edge pair surfaces
// when a member stops competing and later returns. Under omega-l the
// non-leader stops heartbeating (legitimate suspicion); forcing it back
// into competition is convoluted, so instead use a crash/no-recovery on
// omega-lc for suspicion and rely on initial trust establishment for the
// trusted edge.
func TestWatchTrustEdges(t *testing.T) {
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	names := []id.Process{"a", "b"}
	svcs := startServices(t, hub, names...)
	groups := joinAll(t, svcs, "demo", names, stableleader.WithAlgorithm(stableleader.OmegaLC))
	defer func() {
		for _, s := range svcs {
			_ = s.Crash()
		}
	}()
	w := groups["a"].Watch(ctx, stableleader.WithEventFilter(
		stableleader.KindMemberTrusted, stableleader.KindMemberSuspected))
	waitAgreement(t, groups, 5*time.Second)

	// b's heartbeats make a trust it; then b crashes and a must suspect.
	sawTrusted := false
	deadline := time.After(3 * time.Second)
	for !sawTrusted {
		select {
		case ev, ok := <-w:
			if !ok {
				t.Fatal("Watch closed early")
			}
			if tr, isTrust := ev.(stableleader.MemberTrusted); isTrust && tr.Member == "b" {
				sawTrusted = true
			}
		case <-deadline:
			t.Fatal("a never trusted b")
		}
	}
	if err := svcs["b"].Crash(); err != nil {
		t.Fatal(err)
	}
	delete(svcs, "b")
	deadline = time.After(3 * time.Second)
	for {
		select {
		case ev, ok := <-w:
			if !ok {
				t.Fatal("Watch closed early")
			}
			if su, isSuspect := ev.(stableleader.MemberSuspected); isSuspect && su.Member == "b" {
				return
			}
		case <-deadline:
			t.Fatal("a never suspected the crashed b")
		}
	}
}

// TestCloseDeadContextStillAnnouncesLeave verifies a graceful Close never
// degrades to crash semantics: even when its context is already dead, the
// LEAVE announcements are queued and sent, so peers observe MemberLeft
// instead of waiting out the detection bound.
func TestCloseDeadContextStillAnnouncesLeave(t *testing.T) {
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	names := []id.Process{"a", "b"}
	svcs := startServices(t, hub, names...)
	groups := joinAll(t, svcs, "demo", names)
	defer func() {
		for _, s := range svcs {
			_ = s.Crash()
		}
	}()
	w := groups["a"].Watch(ctx, stableleader.WithEventFilter(stableleader.KindMemberLeft))
	waitAgreement(t, groups, 5*time.Second)

	dead, cancel := context.WithCancel(ctx)
	cancel()
	if err := svcs["b"].Close(dead); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close(dead) = %v, want context.Canceled", err)
	}
	select {
	case ev, ok := <-w:
		if !ok {
			t.Fatal("Watch closed before the departure event")
		}
		if left := ev.(stableleader.MemberLeft); left.Member != "b" {
			t.Errorf("MemberLeft.Member = %q, want b", left.Member)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no MemberLeft: Close with a dead context skipped the LEAVE")
	}
}

// TestWatchContextCancel verifies a Watch stream ends promptly when its
// context is cancelled, independently of other subscribers.
func TestWatchContextCancel(t *testing.T) {
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	svc, err := stableleader.New("solo", hub.Endpoint("solo"))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Crash()
	grp, err := svc.Join(ctx, "demo", stableleader.AsCandidate(), stableleader.WithQoS(fastQoS()))
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithCancel(ctx)
	w := grp.Watch(wctx)
	keep := grp.Watch(ctx) // second subscriber must survive the cancel
	cancel()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-w:
			if !ok {
				// Cancelled stream closed; the sibling must still be open.
				select {
				case _, ok := <-keep:
					if !ok {
						t.Fatal("sibling subscriber closed by an unrelated cancel")
					}
				default:
				}
				return
			}
		case <-deadline:
			t.Fatal("Watch channel not closed after context cancel")
		}
	}
}

// TestWatchAfterLeaveReturnsClosedChannel pins the degenerate subscription.
func TestWatchAfterLeaveReturnsClosedChannel(t *testing.T) {
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	svc, err := stableleader.New("solo", hub.Endpoint("solo"))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Crash()
	grp, err := svc.Join(ctx, "demo", stableleader.AsCandidate(), stableleader.WithQoS(fastQoS()))
	if err != nil {
		t.Fatal(err)
	}
	if err := grp.Leave(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-grp.Watch(ctx):
		if ok {
			t.Fatal("Watch on a left group delivered an event")
		}
	case <-time.After(time.Second):
		t.Fatal("Watch on a left group did not return a closed channel")
	}
}

// TestWatchInitialState verifies WithInitialState replays the standing
// leader view to a late subscriber.
func TestWatchInitialState(t *testing.T) {
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	svc, err := stableleader.New("solo", hub.Endpoint("solo"))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Crash()
	grp, err := svc.Join(ctx, "demo", stableleader.AsCandidate(), stableleader.WithQoS(fastQoS()))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until elected, with no subscriber attached.
	deadline := time.Now().Add(3 * time.Second)
	for {
		li, err := grp.Leader(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if li.Elected {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never elected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A late subscriber without replay would wait for the *next* change;
	// with WithInitialState it learns the standing leader immediately.
	select {
	case ev := <-grp.Watch(ctx, stableleader.WithInitialState()):
		lc, ok := ev.(stableleader.LeaderChanged)
		if !ok || !lc.Info.Elected || lc.Info.Leader != "solo" {
			t.Errorf("initial event = %#v, want elected solo", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no initial state delivered")
	}
}

// TestContextCancellationUnblocksAPI is the acceptance check that every
// blocking public method returns promptly with ctx.Err() on a dead
// context.
func TestContextCancellationUnblocksAPI(t *testing.T) {
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	svc, err := stableleader.New("a", hub.Endpoint("a"))
	if err != nil {
		t.Fatal(err)
	}
	grp, err := svc.Join(ctx, "g", stableleader.AsCandidate(), stableleader.WithQoS(fastQoS()))
	if err != nil {
		t.Fatal(err)
	}

	dead, cancel := context.WithCancel(context.Background())
	cancel()

	check := func(name string, err error) {
		t.Helper()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s with cancelled ctx = %v, want context.Canceled", name, err)
		}
	}
	start := time.Now()
	_, err = svc.Join(dead, "g2")
	check("Join", err)
	_, err = grp.Leader(dead)
	check("Leader", err)
	_, err = grp.Status(dead)
	check("Status", err)
	check("Leave", grp.Leave(dead))
	check("Close", svc.Close(dead))
	if e := time.Since(start); e > time.Second {
		t.Errorf("cancelled calls took %v; want prompt returns", e)
	}

	// The service still shuts down cleanly afterwards.
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRepeatCloseWaitsForFullTeardown verifies a repeat Close returns nil
// only once the whole teardown — including the transport — completed: the
// listen address must be immediately rebindable.
func TestRepeatCloseWaitsForFullTeardown(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	ctx := context.Background()
	tr, err := transport.NewUDP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := tr.LocalAddr().String()
	svc, err := stableleader.New("a", tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Join(ctx, "g", stableleader.AsCandidate(), stableleader.WithQoS(fastQoS())); err != nil {
		t.Fatal(err)
	}
	// First closer abandons the shutdown via a dead context; the teardown
	// continues in the background.
	dead, cancel := context.WithCancel(ctx)
	cancel()
	if err := svc.Close(dead); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close(dead) = %v, want context.Canceled", err)
	}
	// The repeat close must block until the transport is really down.
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("repeat Close = %v", err)
	}
	tr2, err := transport.NewUDP(addr, nil)
	if err != nil {
		t.Fatalf("rebinding %s after a nil Close failed: %v", addr, err)
	}
	_ = tr2.Close()
}

// TestContextDeadlineUnblocksLiveService verifies an expiring (not
// pre-cancelled) deadline also unblocks a caller on a live service.
func TestContextDeadlineUnblocksLiveService(t *testing.T) {
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	svc, err := stableleader.New("a", hub.Endpoint("a"))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(ctx)
	grp, err := svc.Join(ctx, "g", stableleader.AsCandidate(), stableleader.WithQoS(fastQoS()))
	if err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	// The call itself is fast, so it normally succeeds; what must never
	// happen is blocking past the deadline. Run many to cover both the
	// success path and (occasionally) the deadline path.
	start := time.Now()
	for i := 0; i < 100; i++ {
		if _, err := grp.Leader(short); err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("Leader = %v, want nil or DeadlineExceeded", err)
			}
			break
		}
	}
	if e := time.Since(start); e > time.Second {
		t.Errorf("deadline-bounded calls took %v", e)
	}
}
