// Lockservice: the introduction's motivating pattern — a leader as the
// central coordinator of a replicated application.
//
// Three replicas hold a counter. Clients send increments to whichever
// replica they like; a replica only *applies* increments while it is the
// group leader, stamping each with its leadership epoch (leader id +
// incarnation) as a fence. When the leader crashes, the service elects a
// new one and the application keeps going — the fence shows which writes
// belonged to which leadership reign, the building block the paper cites
// for consensus and state machine replication ([12], [13], [16]).
//
//	go run ./examples/lockservice
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	stableleader "stableleader"
	"stableleader/id"
	"stableleader/qos"
	"stableleader/transport"
)

// replica is one application process embedding the election service.
type replica struct {
	name id.Process
	svc  *stableleader.Service
	grp  *stableleader.Group

	mu      sync.Mutex
	counter int
	applied []string // audit log: "value@leader/incarnation"
}

// tryIncrement applies the increment iff this replica currently leads.
func (r *replica) tryIncrement(ctx context.Context) (string, bool) {
	li, err := r.grp.Leader(ctx)
	if err != nil || !li.Elected || li.Leader != r.name {
		return "", false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counter++
	entry := fmt.Sprintf("%d@%s/%d", r.counter, li.Leader, li.Incarnation)
	r.applied = append(r.applied, entry)
	return entry, true
}

func main() {
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	names := []id.Process{"r1", "r2", "r3"}
	spec := qos.Spec{
		DetectionTime:     300 * time.Millisecond,
		MistakeRecurrence: 24 * time.Hour,
		QueryAccuracy:     0.99999,
	}

	replicas := make(map[id.Process]*replica)
	for _, name := range names {
		svc, err := stableleader.New(name, hub.Endpoint(name))
		if err != nil {
			log.Fatal(err)
		}
		grp, err := svc.Join(ctx, "counter",
			stableleader.AsCandidate(),
			stableleader.WithQoS(spec),
			stableleader.WithSeeds(names...),
		)
		if err != nil {
			log.Fatal(err)
		}
		replicas[name] = &replica{name: name, svc: svc, grp: grp}
	}

	// A stream of client increments, sprayed at random replicas; only the
	// current leader accepts each.
	apply := func(n int) {
		for i := 0; i < n; {
			for _, r := range replicas {
				if entry, ok := r.tryIncrement(ctx); ok {
					fmt.Printf("  applied %s\n", entry)
					i++
					if i >= n {
						break
					}
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	fmt.Println("phase 1: writes under the first leader")
	apply(3)

	// Find and crash the current leader.
	var leader id.Process
	for _, r := range replicas {
		if li, err := r.grp.Leader(ctx); err == nil && li.Elected {
			leader = li.Leader
			break
		}
	}
	fmt.Printf("\ncrashing leader %s...\n\n", leader)
	lost := replicas[leader]
	_ = lost.svc.Crash()
	delete(replicas, leader)

	fmt.Println("phase 2: writes resume under the new leader (note the fence change)")
	apply(3)

	fmt.Println("\naudit logs (the fence tells reigns apart):")
	for name, r := range replicas {
		r.mu.Lock()
		fmt.Printf("  %s: %v\n", name, r.applied)
		r.mu.Unlock()
	}
	fmt.Printf("  %s (crashed): %v\n", lost.name, lost.applied)

	for _, r := range replicas {
		_ = r.svc.Close(ctx)
	}
}
