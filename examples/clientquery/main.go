// Clientquery: the remote client plane end to end in one binary. Three
// service processes elect a leader and serve leadership subscriptions; a
// fourth process — NOT a group member — consults them through the client
// package: a lease-cached Leader query plus a Watch stream. We then close
// the client's serving endpoint gracefully and watch the tombstone-driven
// failover, and finally crash the leader and watch the re-election reach
// the client.
//
//	go run ./examples/clientquery
//
// The processes communicate over the in-process transport; swap it for
// transport.NewUDP to split them across machines (see cmd/leaderd
// -serve-clients — clients need no -peer entries there, their addresses
// are learned from their own traffic).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	stableleader "stableleader"
	"stableleader/client"
	"stableleader/id"
	"stableleader/qos"
	"stableleader/transport"
)

func main() {
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	names := []id.Process{"alpha", "bravo", "charlie"}

	// A snappy QoS for an interactive demo: detect crashes within 300ms.
	spec := qos.Spec{
		DetectionTime:     300 * time.Millisecond,
		MistakeRecurrence: 24 * time.Hour,
		QueryAccuracy:     0.99999,
	}

	services := make(map[id.Process]*stableleader.Service)
	for _, name := range names {
		svc, err := stableleader.New(name, hub.Endpoint(name),
			stableleader.WithClientPlane()) // serve remote subscribers
		if err != nil {
			log.Fatal(err)
		}
		if _, err := svc.Join(ctx, "demo",
			stableleader.AsCandidate(),
			stableleader.WithQoS(spec),
			stableleader.WithSeeds(names...),
		); err != nil {
			log.Fatal(err)
		}
		services[name] = svc
	}
	fmt.Println("three services joined group \"demo\" with the client plane on")

	// The client: a non-member process with nothing but a transport and
	// the endpoint names. Leader() subscribes on first use and then
	// answers from a lease-bounded cache — one atomic load per query.
	cli, err := client.New(hub.Endpoint("frontend"),
		client.WithID("frontend"),
		client.WithEndpoints(names...),
		client.WithLeaseTTL(2*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}

	lease := waitElected(ctx, cli)
	fmt.Printf("-> client sees leader %s (served by %s, lease %v)\n\n",
		lease.Leader, lease.ServedBy, time.Until(lease.Expires).Round(time.Millisecond))

	events := cli.Watch(ctx, "demo")

	// Close the endpoint serving our lease: its goodbye tombstone makes
	// the client fail over immediately — no lease timeout needed.
	fmt.Printf("closing %s (the client's serving endpoint) gracefully...\n", lease.ServedBy)
	served := lease.ServedBy
	_ = services[served].Close(ctx)
	delete(services, served)
	for ev := range events {
		if tb, ok := ev.(client.EndpointTombstoned); ok {
			fmt.Printf("-> tombstone from %s; failing over\n", tb.Endpoint)
			break
		}
	}
	lease = waitElected(ctx, cli)
	fmt.Printf("-> re-served by %s, leader still %s\n\n", lease.ServedBy, lease.Leader)

	// Crash the leader itself (it may or may not be the serving
	// endpoint): the re-election propagates to the client as an event.
	fmt.Printf("crashing leader %s (no goodbye)...\n", lease.Leader)
	dead := lease.Leader
	start := time.Now()
	_ = services[dead].Crash()
	delete(services, dead)
	for ev := range events {
		if up, ok := ev.(client.LeaderUpdated); ok && up.Lease.Elected && up.Lease.Leader != dead {
			fmt.Printf("-> client observed new leader %s after %v\n",
				up.Lease.Leader, time.Since(start).Round(time.Millisecond))
			break
		}
	}

	_ = cli.Close(ctx)
	for _, svc := range services {
		_ = svc.Close(ctx)
	}
}

// waitElected polls the client until it serves a fresh elected view.
func waitElected(ctx context.Context, cli *client.Client) client.LeaderLease {
	for {
		qctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		lease, err := cli.Leader(qctx, "demo")
		cancel()
		if err == nil && lease.Elected {
			return lease
		}
		time.Sleep(20 * time.Millisecond)
	}
}
