// Multigroup: one service instance, several groups, different QoS — the
// paper's shared-service architecture (Section 4).
//
// Four processes join two groups concurrently: a latency-critical group
// "fast" that wants crashes detected within 200ms, and a background group
// "cheap" that tolerates 2s detection. Each group gets its own failure
// detection parameters from its own QoS, while the per-link quality
// estimators are shared by both groups on each node — the cost-sharing the
// paper's architecture was designed for.
//
//	go run ./examples/multigroup
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	stableleader "stableleader"
	"stableleader/id"
	"stableleader/qos"
	"stableleader/transport"
)

func main() {
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	names := []id.Process{"n1", "n2", "n3", "n4"}

	fast := qos.Spec{
		DetectionTime:     200 * time.Millisecond,
		MistakeRecurrence: 24 * time.Hour,
		QueryAccuracy:     0.99999,
	}
	cheap := qos.Spec{
		DetectionTime:     2 * time.Second,
		MistakeRecurrence: 24 * time.Hour,
		QueryAccuracy:     0.99999,
	}

	services := map[id.Process]*stableleader.Service{}
	fastGroups := map[id.Process]*stableleader.Group{}
	cheapGroups := map[id.Process]*stableleader.Group{}
	for _, name := range names {
		svc, err := stableleader.New(name, hub.Endpoint(name))
		if err != nil {
			log.Fatal(err)
		}
		services[name] = svc
		if fastGroups[name], err = svc.Join(ctx, "fast",
			stableleader.AsCandidate(),
			stableleader.WithQoS(fast),
			stableleader.WithSeeds(names...),
		); err != nil {
			log.Fatal(err)
		}
		if cheapGroups[name], err = svc.Join(ctx, "cheap",
			stableleader.AsCandidate(),
			stableleader.WithQoS(cheap),
			stableleader.WithSeeds(names...),
		); err != nil {
			log.Fatal(err)
		}
	}

	fastLeader := waitLeader(ctx, fastGroups)
	cheapLeader := waitLeader(ctx, cheapGroups)
	fmt.Printf("group \"fast\"  (TdU=200ms): leader %s\n", fastLeader)
	fmt.Printf("group \"cheap\" (TdU=2s):    leader %s\n", cheapLeader)

	// Crash the fast group's leader and time both groups' reactions: the
	// fast group must recover roughly 10x sooner.
	fmt.Printf("\ncrashing %s (leader of both groups on this topology)...\n", fastLeader)
	_ = services[fastLeader].Crash()
	dead := fastLeader
	delete(services, dead)
	delete(fastGroups, dead)
	delete(cheapGroups, dead)

	start := time.Now()
	newFast := waitLeaderExcluding(ctx, fastGroups, dead)
	tFast := time.Since(start)
	newCheap := waitLeaderExcluding(ctx, cheapGroups, dead)
	tCheap := time.Since(start)
	fmt.Printf("  fast  recovered to %s in %v\n", newFast, tFast.Round(time.Millisecond))
	fmt.Printf("  cheap recovered to %s in %v\n", newCheap, tCheap.Round(time.Millisecond))
	fmt.Println("\nthe same service instance ran both detectors; per-link quality")
	fmt.Println("estimators were shared between the groups (Section 4 cost sharing).")

	for _, svc := range services {
		_ = svc.Close(ctx)
	}
}

func waitLeader(ctx context.Context, groups map[id.Process]*stableleader.Group) id.Process {
	return waitLeaderExcluding(ctx, groups, "")
}

func waitLeaderExcluding(ctx context.Context, groups map[id.Process]*stableleader.Group, not id.Process) id.Process {
	for {
		var leader id.Process
		agreed, first := true, true
		for _, g := range groups {
			li, err := g.Leader(ctx)
			if err != nil || !li.Elected {
				agreed = false
				break
			}
			if first {
				leader, first = li.Leader, false
			} else if li.Leader != leader {
				agreed = false
				break
			}
		}
		if agreed && !first && leader != not {
			return leader
		}
		time.Sleep(2 * time.Millisecond)
	}
}
