// Quickstart: five processes in one binary elect a stable leader; we then
// kill the leader and watch the service detect the crash and re-elect.
//
//	go run ./examples/quickstart
//
// The processes communicate over the in-process transport; swap it for
// transport.NewUDP to run the identical code across machines (see
// cmd/leaderd).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	stableleader "stableleader"
	"stableleader/id"
	"stableleader/qos"
	"stableleader/transport"
)

func main() {
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	names := []id.Process{"alpha", "bravo", "charlie", "delta", "echo"}

	// A snappy QoS for an interactive demo: detect crashes within 300ms.
	spec := qos.Spec{
		DetectionTime:     300 * time.Millisecond,
		MistakeRecurrence: 24 * time.Hour,
		QueryAccuracy:     0.99999,
	}

	services := make(map[id.Process]*stableleader.Service)
	groups := make(map[id.Process]*stableleader.Group)
	for _, name := range names {
		svc, err := stableleader.New(name, hub.Endpoint(name))
		if err != nil {
			log.Fatal(err)
		}
		grp, err := svc.Join(ctx, "demo",
			stableleader.AsCandidate(),
			stableleader.WithQoS(spec),
			stableleader.WithSeeds(names...),
		)
		if err != nil {
			log.Fatal(err)
		}
		services[name] = svc
		groups[name] = grp
	}

	fmt.Println("five processes joined group \"demo\"; waiting for the election...")
	leader := waitLeader(ctx, groups, nil)
	fmt.Printf("-> leader elected: %s\n\n", leader)

	fmt.Printf("killing %s (no goodbye — a crash)...\n", leader)
	_ = services[leader].Crash()
	dead := leader
	delete(services, dead)
	delete(groups, dead)

	start := time.Now()
	leader = waitLeader(ctx, groups, func(p id.Process) bool { return p != dead })
	fmt.Printf("-> new leader: %s (recovered in %v)\n\n", leader, time.Since(start).Round(time.Millisecond))

	fmt.Printf("now %s leaves gracefully (LEAVE announcement, no detection needed)...\n", leader)
	_ = groups[leader].Leave(ctx)
	departed := leader
	delete(groups, departed)
	_ = services[departed].Crash()
	delete(services, departed)

	start = time.Now()
	leader = waitLeader(ctx, groups, func(p id.Process) bool { return p != departed })
	fmt.Printf("-> new leader: %s (handover in %v)\n", leader, time.Since(start).Round(time.Millisecond))

	for _, svc := range services {
		_ = svc.Close(ctx)
	}
}

// waitLeader polls until every group handle agrees on one elected leader
// accepted by ok (nil accepts all).
func waitLeader(ctx context.Context, groups map[id.Process]*stableleader.Group, ok func(id.Process) bool) id.Process {
	for {
		var leader id.Process
		agreed, first := true, true
		for _, g := range groups {
			li, err := g.Leader(ctx)
			if err != nil || !li.Elected {
				agreed = false
				break
			}
			if first {
				leader, first = li.Leader, false
			} else if li.Leader != leader {
				agreed = false
				break
			}
		}
		if agreed && !first && (ok == nil || ok(leader)) {
			return leader
		}
		time.Sleep(5 * time.Millisecond)
	}
}
