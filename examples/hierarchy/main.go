// Hierarchy: the paper's Section 7 sketch of scaling to large networks —
// hierarchical elections built from plain groups plus candidate flags.
//
// Nine processes sit in three regions. Each region elects a regional
// leader in its own group. Every process also joins a global group, but
// only as a *listener* (no candidacy); the regional leaders join the
// global group as candidates. The service then maintains a two-level
// hierarchy: a leader per region and one global leader among the regional
// leaders, with non-candidates following passively — exactly the
// "groups as levels" construction the paper proposes.
//
//	go run ./examples/hierarchy
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	stableleader "stableleader"
	"stableleader/id"
	"stableleader/qos"
	"stableleader/transport"
)

func main() {
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	regions := map[id.Group][]id.Process{
		"region/eu":   {"eu-1", "eu-2", "eu-3"},
		"region/us":   {"us-1", "us-2", "us-3"},
		"region/asia": {"asia-1", "asia-2", "asia-3"},
	}
	spec := qos.Spec{
		DetectionTime:     300 * time.Millisecond,
		MistakeRecurrence: 24 * time.Hour,
		QueryAccuracy:     0.99999,
	}

	var everyone []id.Process
	for _, ps := range regions {
		everyone = append(everyone, ps...)
	}
	sort.Slice(everyone, func(i, j int) bool { return everyone[i] < everyone[j] })

	services := make(map[id.Process]*stableleader.Service)
	regional := make(map[id.Process]*stableleader.Group)
	global := make(map[id.Process]*stableleader.Group)

	for region, members := range regions {
		for _, name := range members {
			svc, err := stableleader.New(name, hub.Endpoint(name))
			if err != nil {
				log.Fatal(err)
			}
			services[name] = svc
			rg, err := svc.Join(ctx, region,
				stableleader.AsCandidate(),
				stableleader.WithQoS(spec),
				stableleader.WithSeeds(members...),
			)
			if err != nil {
				log.Fatal(err)
			}
			regional[name] = rg
		}
	}

	// Wait for the regional elections, then promote each regional leader
	// into the global group as a candidate; everyone else joins the global
	// group as a passive listener.
	leaders := map[id.Group]id.Process{}
	for region, members := range regions {
		leaders[region] = waitLeader(ctx, collect(regional, members))
	}
	for name, svc := range services {
		isRegionalLeader := false
		for _, l := range leaders {
			if l == name {
				isRegionalLeader = true
			}
		}
		opts := []stableleader.JoinOption{
			stableleader.WithQoS(spec),
			stableleader.WithSeeds(everyone...),
		}
		if isRegionalLeader {
			opts = append(opts, stableleader.AsCandidate())
		}
		gg, err := svc.Join(ctx, "global", opts...)
		if err != nil {
			log.Fatal(err)
		}
		global[name] = gg
	}

	globalLeader := waitLeader(ctx, global)
	fmt.Println("two-level hierarchy established:")
	for region := range regions {
		marker := ""
		if leaders[region] == globalLeader {
			marker = "  <- global leader"
		}
		fmt.Printf("  %-12s leader: %s%s\n", region, leaders[region], marker)
	}
	fmt.Printf("  %-12s leader: %s (elected among the 3 regional leaders; 6 passive listeners follow)\n",
		"global", globalLeader)

	// The election cost at the top level involves only the candidates; the
	// listeners receive the result without competing — the paper's first
	// scaling approach.
	for _, svc := range services {
		_ = svc.Close(ctx)
	}
}

// collect picks the group handles of the given member names.
func collect(all map[id.Process]*stableleader.Group, names []id.Process) map[id.Process]*stableleader.Group {
	out := make(map[id.Process]*stableleader.Group, len(names))
	for _, n := range names {
		out[n] = all[n]
	}
	return out
}

// waitLeader polls until all handles agree on an elected leader.
func waitLeader(ctx context.Context, groups map[id.Process]*stableleader.Group) id.Process {
	for {
		var leader id.Process
		agreed, first := true, true
		for _, g := range groups {
			li, err := g.Leader(ctx)
			if err != nil || !li.Elected {
				agreed = false
				break
			}
			if first {
				leader, first = li.Leader, false
			} else if li.Leader != leader {
				agreed = false
				break
			}
		}
		if agreed && !first {
			return leader
		}
		time.Sleep(5 * time.Millisecond)
	}
}
