// Chaos: the paper's Section 1 headline scenario, live.
//
// Twelve workstations compete for leadership while the (simulated) world
// burns: every workstation crashes every 10 minutes on average, every link
// drops one message in ten, and delays average 100ms. The run prints the
// paper's three QoS metrics for each algorithm.
//
//	go run ./examples/chaos                 # one simulated hour, seconds of real time
//	go run ./examples/chaos -duration 6h    # tighter confidence intervals
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	stableleader "stableleader"
	"stableleader/sim"
)

func main() {
	duration := flag.Duration("duration", time.Hour, "simulated time per algorithm")
	seed := flag.Int64("seed", 2008, "random seed (runs are reproducible)")
	flag.Parse()

	fmt.Println("Section 1 scenario: 12 workstations, crash every 10min (recover in 5s),")
	fmt.Println("links lose 1 msg in 10 with 100ms average delay; QoS: detect in 1s,")
	fmt.Println("≤1 mistake per 100 days, 0.99999988 query accuracy.")
	fmt.Println()

	for _, algo := range []stableleader.Algorithm{
		stableleader.OmegaID, stableleader.OmegaLC, stableleader.OmegaL,
	} {
		res, err := sim.Run(sim.Scenario{
			Name:      "chaos",
			N:         12,
			Algorithm: algo,
			Link: sim.LinkModel{
				MeanDelay: 100 * time.Millisecond,
				Loss:      0.1,
			},
			ProcessFaults: &sim.Faults{MTBF: 600 * time.Second, MTTR: 5 * time.Second},
			Duration:      *duration,
			Seed:          *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		fmt.Printf("%-9s leader available %7.4f%% of the time | recovery %v (n=%d) | %5.2f unjustified demotions/h | %5.2f KB/s and %5.3f%% CPU per workstation | simulated %v in %v\n",
			algo, 100*m.Pleader, m.TrMean.Round(time.Millisecond), m.TrSamples,
			m.MistakesPerHour, res.KBPerSec, res.CPUPercent,
			res.Scenario.Duration, res.WallTime.Round(time.Millisecond))
	}
	fmt.Println()
	fmt.Println("Matching the paper: omega-lc and omega-l never demote a live leader")
	fmt.Println("(λu = 0) and keep a leader available ~99.8% of the time; omega-id is")
	fmt.Println("fast but demotes a healthy leader on every recovery of a smaller id.")
}
