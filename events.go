package stableleader

import (
	"time"

	"stableleader/id"
	"stableleader/internal/metrics"
)

// EventKind discriminates the concrete type of an Event without a type
// switch; it doubles as the unit of Watch filtering.
type EventKind uint8

// Event kinds, one per concrete Event type.
const (
	// KindLeaderChanged is a change of the locally observed leader view.
	KindLeaderChanged EventKind = iota + 1
	// KindMemberJoined is a member entering the group's active view.
	KindMemberJoined
	// KindMemberLeft is a member leaving the group's active view.
	KindMemberLeft
	// KindMemberSuspected is the failure detector suspecting a member.
	KindMemberSuspected
	// KindMemberTrusted is the failure detector restoring trust in a member.
	KindMemberTrusted
	// KindQoSReconfigured is the configurator adopting new failure
	// detection parameters for one monitored link.
	KindQoSReconfigured
	// KindStandbyChanged is the leader's warm-standby nomination changing.
	KindStandbyChanged
)

// String names the kind for logs.
func (k EventKind) String() string {
	switch k {
	case KindLeaderChanged:
		return "leader-changed"
	case KindMemberJoined:
		return "member-joined"
	case KindMemberLeft:
		return "member-left"
	case KindMemberSuspected:
		return "member-suspected"
	case KindMemberTrusted:
		return "member-trusted"
	case KindQoSReconfigured:
		return "qos-reconfigured"
	case KindStandbyChanged:
		return "standby-changed"
	default:
		return "unknown"
	}
}

// Event is one observation delivered on a Group.Watch stream: a sum type
// over leadership, membership, suspicion and QoS reconfiguration events.
// The concrete types are LeaderChanged, MemberJoined, MemberLeft,
// MemberSuspected, MemberTrusted, QoSReconfigured and StandbyChanged;
// switch on the value's type or on Kind().
type Event interface {
	// Kind identifies the concrete event type.
	Kind() EventKind
	// GroupID is the group the event concerns.
	GroupID() id.Group
	// When is when the event was observed locally.
	When() time.Time

	isEvent() // seals the sum type
}

// LeaderChanged reports a change of the locally observed leader view — the
// paper's interrupt-mode notification.
type LeaderChanged struct {
	// Info is the newly adopted view.
	Info LeaderInfo
}

// Kind implements Event.
func (e LeaderChanged) Kind() EventKind { return KindLeaderChanged }

// GroupID implements Event.
func (e LeaderChanged) GroupID() id.Group { return e.Info.Group }

// When implements Event.
func (e LeaderChanged) When() time.Time { return e.Info.At }

func (LeaderChanged) isEvent() {}

// MemberJoined reports a member (a specific incarnation of a process)
// entering the group's active view on this node.
type MemberJoined struct {
	// Group is the group concerned.
	Group id.Group
	// Member identifies the process and Incarnation its lifetime.
	Member      id.Process
	Incarnation int64
	// Candidate reports whether the member competes for leadership.
	Candidate bool
	// At is the local observation time.
	At time.Time
}

// Kind implements Event.
func (e MemberJoined) Kind() EventKind { return KindMemberJoined }

// GroupID implements Event.
func (e MemberJoined) GroupID() id.Group { return e.Group }

// When implements Event.
func (e MemberJoined) When() time.Time { return e.At }

func (MemberJoined) isEvent() {}

// MemberLeft reports a member leaving the group's active view on this
// node, whether by LEAVE announcement or by being superseded by a newer
// incarnation of the same process.
type MemberLeft struct {
	// Group is the group concerned.
	Group id.Group
	// Member identifies the process and Incarnation the lifetime that ended.
	Member      id.Process
	Incarnation int64
	// At is the local observation time.
	At time.Time
}

// Kind implements Event.
func (e MemberLeft) Kind() EventKind { return KindMemberLeft }

// GroupID implements Event.
func (e MemberLeft) GroupID() id.Group { return e.Group }

// When implements Event.
func (e MemberLeft) When() time.Time { return e.At }

func (MemberLeft) isEvent() {}

// MemberSuspected reports the local failure detector losing trust in a
// member: no sufficiently fresh heartbeat arrived within the configured
// timeout. Under OmegaL a member that voluntarily stopped competing is
// legitimately reported suspected.
type MemberSuspected struct {
	// Group is the group concerned.
	Group id.Group
	// Member identifies the suspected process and Incarnation its lifetime.
	Member      id.Process
	Incarnation int64
	// At is the local observation time.
	At time.Time
}

// Kind implements Event.
func (e MemberSuspected) Kind() EventKind { return KindMemberSuspected }

// GroupID implements Event.
func (e MemberSuspected) GroupID() id.Group { return e.Group }

// When implements Event.
func (e MemberSuspected) When() time.Time { return e.At }

func (MemberSuspected) isEvent() {}

// MemberTrusted reports the local failure detector restoring trust in a
// member: a fresh heartbeat arrived.
type MemberTrusted struct {
	// Group is the group concerned.
	Group id.Group
	// Member identifies the trusted process and Incarnation its lifetime.
	Member      id.Process
	Incarnation int64
	// At is the local observation time.
	At time.Time
}

// Kind implements Event.
func (e MemberTrusted) Kind() EventKind { return KindMemberTrusted }

// GroupID implements Event.
func (e MemberTrusted) GroupID() id.Group { return e.Group }

// When implements Event.
func (e MemberTrusted) When() time.Time { return e.At }

func (MemberTrusted) isEvent() {}

// QoSReconfigured reports the QoS configurator adopting new failure
// detection parameters for the link from one member, in response to
// measured link behaviour — the adaptation loop of Section 3 of the paper.
type QoSReconfigured struct {
	// Group is the group concerned.
	Group id.Group
	// Member is the monitored process whose link was reconfigured.
	Member id.Process
	// Interval (η) is the heartbeat interval now requested from Member;
	// Timeout (δ) the timeout shift now applied to its heartbeats.
	Interval time.Duration
	Timeout  time.Duration
	// At is the local observation time.
	At time.Time
}

// Kind implements Event.
func (e QoSReconfigured) Kind() EventKind { return KindQoSReconfigured }

// GroupID implements Event.
func (e QoSReconfigured) GroupID() id.Group { return e.Group }

// When implements Event.
func (e QoSReconfigured) When() time.Time { return e.At }

func (QoSReconfigured) isEvent() {}

// StandbyChanged reports the group's warm standby changing as seen
// locally: the follower the current leader nominates (and continuously
// re-announces in its heartbeat stream) to take over on a planned
// handover. An empty Standby means no live follower qualifies.
type StandbyChanged struct {
	// Group is the group concerned.
	Group id.Group
	// Standby identifies the nominated process and Incarnation its
	// lifetime; both are zero when the nomination was withdrawn.
	Standby     id.Process
	Incarnation int64
	// At is the local observation time.
	At time.Time
}

// Kind implements Event.
func (e StandbyChanged) Kind() EventKind { return KindStandbyChanged }

// GroupID implements Event.
func (e StandbyChanged) GroupID() id.Group { return e.Group }

// When implements Event.
func (e StandbyChanged) When() time.Time { return e.At }

func (StandbyChanged) isEvent() {}

// PacketStats is a point-in-time snapshot of the service's packet plane:
// how many datagrams crossed the wire, how many protocol messages rode
// inside them, and how much traffic the coalescing scheduler merged into
// shared datagrams. MessagesOut/DatagramsOut is the outbound coalescing
// factor; Bytes count one UDP/IP header per datagram. Obtain it from
// Service.PacketStats; counters accumulate from service start.
type PacketStats struct {
	// DatagramsOut is the number of datagrams handed to the transport.
	DatagramsOut int64
	// BatchesOut is how many of those carried more than one message.
	BatchesOut int64
	// MessagesOut is the number of protocol messages sent, batched or bare.
	MessagesOut int64
	// CoalescedOut is the number of messages that shared a datagram with
	// at least one other message.
	CoalescedOut int64
	// BytesOut is outbound wire bytes, UDP/IP headers included.
	BytesOut int64
	// DatagramsIn, BatchesIn, MessagesIn and BytesIn mirror the receive
	// side.
	DatagramsIn int64
	BatchesIn   int64
	MessagesIn  int64
	BytesIn     int64

	// UnknownDropped counts received messages skipped because their wire
	// kind is unknown to this build — traffic from newer-versioned peers
	// (batch inners are skipped individually; a bare unknown datagram
	// drops whole). A nonzero value under homogeneous versions indicates
	// garbage or hostile traffic.
	UnknownDropped int64

	// RecvSyscalls and SendSyscalls count the kernel crossings behind the
	// datagram columns, filled in when the transport accounts its syscall
	// traffic (the UDP transport does; in-process transports report zero).
	// On the syscall-batched packet plane one recvmmsg/sendmmsg crossing
	// carries many datagrams, so the per-syscall ratios run above 1.
	RecvSyscalls int64
	SendSyscalls int64
}

// Delta returns the column-wise difference s - prev: the traffic between
// two PacketStats snapshots of the same service. Periodic observers
// difference successive snapshots with it instead of hand-subtracting
// fields; the per-syscall ratio methods apply to a delta exactly as to
// a cumulative snapshot, yielding interval ratios.
func (s PacketStats) Delta(prev PacketStats) PacketStats {
	return PacketStats(metrics.PacketStats(s).Delta(metrics.PacketStats(prev)))
}

// PacketRates is a PacketStats delta normalised to per-second rates over
// a measurement interval; see PacketStats.RatesOver.
type PacketRates = metrics.PacketRates

// RatesOver converts the snapshot — normally a Delta — into per-second
// rates over elapsed. A non-positive elapsed yields zero rates.
func (s PacketStats) RatesOver(elapsed time.Duration) PacketRates {
	return metrics.PacketStats(s).RatesOver(elapsed)
}

// RecvPacketsPerSyscall reports how many received datagrams each receive
// syscall carried on average — 1 on the classic path, above 1 when
// recvmmsg batching is active. Zero when the transport does not account
// syscalls (or nothing was received).
func (s PacketStats) RecvPacketsPerSyscall() float64 {
	if s.RecvSyscalls == 0 {
		return 0
	}
	return float64(s.DatagramsIn) / float64(s.RecvSyscalls)
}

// SendPacketsPerSyscall is RecvPacketsPerSyscall for the send direction
// (sendmmsg vectors and GSO super-datagrams raise it above 1).
func (s PacketStats) SendPacketsPerSyscall() float64 {
	if s.SendSyscalls == 0 {
		return 0
	}
	return float64(s.DatagramsOut) / float64(s.SendSyscalls)
}

// PacketsPerSyscall aggregates both directions: total datagrams moved
// per kernel crossing. Zero when the transport does not account
// syscalls.
func (s PacketStats) PacketsPerSyscall() float64 {
	calls := s.RecvSyscalls + s.SendSyscalls
	if calls == 0 {
		return 0
	}
	return float64(s.DatagramsIn+s.DatagramsOut) / float64(calls)
}

// ClientStats is a point-in-time summary of the remote client plane (see
// WithClientPlane and the client package): how many remote client
// processes hold leadership subscriptions on this node, and how many
// (client, group) leases they add up to. Obtain it from
// Service.ClientStats.
type ClientStats struct {
	// Enabled mirrors the WithClientPlane option.
	Enabled bool
	// Clients is the number of distinct subscribed client processes.
	Clients int
	// Leases is the number of live (client, group) subscriptions.
	Leases int
}

// subscriber is one Watch stream: a buffered channel plus a kind filter.
// Delivery never blocks the event loop: when the buffer is full the oldest
// undelivered event is dropped, so a slow consumer loses history but always
// converges on the freshest events.
type subscriber struct {
	ch   chan Event
	mask uint64 // bitset of 1<<EventKind; 0 means all kinds
}

// wants reports whether the filter admits kind k.
func (s *subscriber) wants(k EventKind) bool {
	return s.mask == 0 || s.mask&(1<<uint(k)) != 0
}

// offer delivers ev with drop-oldest semantics. Only the owning Group's
// publisher (one goroutine at a time, under the group mutex) calls offer,
// so the drain-retry loop cannot livelock against another producer.
func (s *subscriber) offer(ev Event) {
	if !s.wants(ev.Kind()) {
		return
	}
	for {
		select {
		case s.ch <- ev:
			return
		default:
			// Buffer full: evict the oldest entry and retry. The receiver
			// may win the race and drain it first; either way one slot
			// frees up and the retry succeeds or loops again.
			select {
			case <-s.ch:
			default:
			}
		}
	}
}
