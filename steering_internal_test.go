package stableleader

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"stableleader/id"
	"stableleader/internal/wire"
	"stableleader/transport"
)

// pickCrossShardGroups returns count group ids that hash onto pairwise
// distinct shards of s, so tests can force genuinely cross-shard traffic.
func pickCrossShardGroups(t *testing.T, s *Service, count int) []id.Group {
	t.Helper()
	seen := map[int]bool{}
	var out []id.Group
	for i := 0; i < 10000 && len(out) < count; i++ {
		g := id.Group(fmt.Sprintf("xg%04d", i))
		if idx := s.shardIndex(g); !seen[idx] {
			seen[idx] = true
			out = append(out, g)
		}
	}
	if len(out) < count {
		t.Fatalf("could not find %d groups on distinct shards of %d", count, s.Shards())
	}
	return out
}

// TestSteeringSplitsBatchAcrossShards pins the steered inbound plane: one
// received batch envelope mixing groups owned by different shards must be
// delivered to every owning shard (each group's protocol state advances),
// while the datagram-level counters count the datagram exactly once.
func TestSteeringSplitsBatchAcrossShards(t *testing.T) {
	hub := transport.NewInproc(nil)
	s, err := New("p1", hub.Endpoint("p1"), WithSeed(1), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	ctx := context.Background()

	gids := pickCrossShardGroups(t, s, 2)
	for _, g := range gids {
		if _, err := s.Join(ctx, g, AsCandidate()); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := s.shardIndex(gids[0]), s.shardIndex(gids[1]); a == b {
		t.Fatalf("test groups landed on one shard (%d): steering not exercised", a)
	}

	// One batch carrying a JOIN for each group — exactly what the outbound
	// coalescer of a multi-group peer would ship to this node.
	batch := &wire.Batch{Msgs: []wire.Message{
		&wire.Join{Group: gids[0], Sender: "zz", Incarnation: 1, Candidate: false},
		&wire.Join{Group: gids[1], Sender: "zz", Incarnation: 1, Candidate: false},
	}}
	s.onDatagram(wire.MarshalAppend(nil, batch))

	// Both shards must process their share: the fake member appears in
	// each group's membership.
	deadline := time.Now().Add(5 * time.Second)
	for _, g := range gids {
		grp := s.groups[g]
		for {
			rows, err := grp.Status(ctx, WithSyncRead())
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, r := range rows {
				if r.ID == "zz" {
					found = true
				}
			}
			if found {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("group %q (shard %d) never processed its part of the batch", g, s.shardIndex(g))
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Datagram-level accounting: one datagram, one batch, two messages —
	// not double-counted across the two shard parts.
	st := s.PacketStats()
	if st.DatagramsIn != 1 || st.BatchesIn != 1 || st.MessagesIn != 2 {
		t.Fatalf("steered batch counted as %+v, want 1 datagram / 1 batch / 2 messages", st)
	}
}

// TestSteeringSingleShardGroupFastPath: a batch whose messages all belong
// to one shard must take the no-scatter path and still count correctly.
func TestSteeringSingleShardGroupFastPath(t *testing.T) {
	hub := transport.NewInproc(nil)
	s, err := New("p1", hub.Endpoint("p1"), WithSeed(1), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	ctx := context.Background()

	g := pickCrossShardGroups(t, s, 1)[0]
	if _, err := s.Join(ctx, g, AsCandidate()); err != nil {
		t.Fatal(err)
	}
	batch := &wire.Batch{Msgs: []wire.Message{
		&wire.Join{Group: g, Sender: "z1", Incarnation: 1},
		&wire.Join{Group: g, Sender: "z2", Incarnation: 1},
	}}
	s.onDatagram(wire.MarshalAppend(nil, batch))
	grp := s.groups[g]
	deadline := time.Now().Add(5 * time.Second)
	for {
		rows, err := grp.Status(ctx, WithSyncRead())
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("same-shard batch not fully delivered: %d rows", len(rows))
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.PacketStats(); st.DatagramsIn != 1 || st.MessagesIn != 2 || st.BatchesIn != 1 {
		t.Fatalf("same-shard batch counted as %+v", st)
	}
}

// TestSteerRecyclesUndersizedScatterSlice pins the pool-miss fallback in
// steer: when the inbox's recycled destination slice is too small to
// scatter the datagram into, the slice must go back to the pool, not be
// dropped. The regression (found by the poolcheck analyzer) leaked one
// pooled slice per undersized scatter, slowly draining the inbox slice
// pool under mixed datagram sizes.
func TestSteerRecyclesUndersizedScatterSlice(t *testing.T) {
	hub := transport.NewInproc(nil)
	s, err := New("p1", hub.Endpoint("p1"), WithSeed(1), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	gids := pickCrossShardGroups(t, s, 2)
	msgs := []wire.Message{
		&wire.Join{Group: gids[0], Sender: "zz", Incarnation: 1},
		&wire.Join{Group: gids[1], Sender: "zz", Incarnation: 1},
	}

	// A private inbox whose slice pool holds exactly one undersized
	// destination slice: steer's TakeSlice returns it, finds it too small
	// for the two-message scatter, and must recycle it.
	ib := wire.NewInbox()
	ib.Recycle(make([]wire.Message, 1), false)

	fl := inFlightPool.Get().(*inFlight)
	fl.inbox = ib
	fl.msgs = msgs
	fl.bytes = 64
	fl.batch = true
	s.steer(fl, ib)

	// steer recycles both the undersized slice and the decode slice
	// synchronously, before the shard parts complete, so the cap-1 slice
	// must already be back in the pool. (A shard finishing fast may have
	// recycled the scatter slice into ib too; only cap 1 is asserted on.)
	found := false
	for i := 0; i < 8; i++ {
		sl := ib.TakeSlice()
		if sl == nil {
			break
		}
		if cap(sl) == 1 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("undersized scatter slice was dropped instead of recycled back to the inbox pool")
	}
}

// TestCloseDuringTimerStormAcrossShards is the shutdown-race regression
// test for the sharded world: with every shard's timer wheel firing hot
// (tiny hello and reconfigure intervals across many groups) and inbound
// traffic arriving concurrently, a timer firing during Close on one shard
// must not deadlock or panic another shard's drain. The test fails by
// timeout (deadlock) or crash (panic/race), not by assertion.
func TestCloseDuringTimerStormAcrossShards(t *testing.T) {
	for round := 0; round < 5; round++ {
		hub := transport.NewInproc(nil)
		s, err := New("p1", hub.Endpoint("p1"), WithSeed(int64(round+1)), WithShards(8))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		var payloads [][]byte
		for i := 0; i < 16; i++ {
			g := id.Group(fmt.Sprintf("storm%02d", i))
			if _, err := s.Join(ctx, g,
				AsCandidate(),
				WithHelloInterval(time.Millisecond),
				WithReconfigureInterval(time.Millisecond),
				WithSeeds("p2"),
			); err != nil {
				t.Fatal(err)
			}
			payloads = append(payloads, wire.MarshalAppend(nil, &wire.Join{
				Group: g, Sender: "p2", Incarnation: 1, Candidate: true,
			}))
		}

		// Inbound blast racing the close from several producers.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					s.onDatagram(payloads[(w+i)%len(payloads)])
				}
			}(w)
		}
		time.Sleep(5 * time.Millisecond) // let the storm and the wheels spin up

		done := make(chan error, 1)
		go func() {
			done <- s.Close(context.Background())
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("round %d: Close = %v", round, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: Close deadlocked under the timer storm", round)
		}
		close(stop)
		wg.Wait()
	}
}
