package stableleader

import (
	"context"
	"testing"
	"time"

	"stableleader/internal/wire"
	"stableleader/transport"
)

// TestInboundCountedAtDispatchNotReceipt is the regression test for the
// inbound-counter drift: onDatagram used to count a datagram as delivered
// before enqueueing it, so traffic arriving while the service was closing
// — decoded but never dispatched — inflated the delivered counters. The
// count now happens at dispatch on the event loop.
func TestInboundCountedAtDispatchNotReceipt(t *testing.T) {
	hub := transport.NewInproc(nil)
	s, err := New("p1", hub.Endpoint("p1"), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	payload := wire.MarshalAppend(nil, &wire.Alive{
		Group:       "g",
		Sender:      "p2",
		Incarnation: 1,
		Seq:         1,
		SendTime:    time.Now().UnixNano(),
		Interval:    int64(100 * time.Millisecond),
	})

	// While running, a delivered datagram is counted (asynchronously, at
	// dispatch).
	s.onDatagram(payload)
	deadline := time.Now().Add(5 * time.Second)
	for s.PacketStats().DatagramsIn != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("running service never counted the dispatched datagram: %+v", s.PacketStats())
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.PacketStats().MessagesIn; got != 1 {
		t.Fatalf("MessagesIn = %d, want 1", got)
	}

	// Once closing, the datagram is decoded but dropped before dispatch —
	// it must NOT be counted as delivered.
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.onDatagram(payload)
	// The drop is synchronous (enqueue bails on the closed closing
	// channel), so the counters are already final.
	if got := s.PacketStats(); got.DatagramsIn != 1 || got.MessagesIn != 1 {
		t.Fatalf("closing service counted a dropped datagram as delivered: %+v", got)
	}
}

// TestUnknownKindsCountedNotFatal is the forward-compatibility regression
// test at the service boundary: a batch from a future-versioned peer that
// mixes a known message with unknown kinds must deliver the known message
// and count the skipped ones in PacketStats.UnknownDropped; a bare unknown
// datagram drops whole but is counted too.
func TestUnknownKindsCountedNotFatal(t *testing.T) {
	hub := transport.NewInproc(nil)
	s, err := New("p1", hub.Endpoint("p1"), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	known := &wire.Alive{
		Group:       "g",
		Sender:      "p2",
		Incarnation: 1,
		Seq:         1,
		SendTime:    time.Now().UnixNano(),
		Interval:    int64(100 * time.Millisecond),
	}
	// Hand-build a batch: known | future-kind | future-kind.
	payload := []byte{byte(wire.KindBatch), wire.BatchVersion, 3}
	payload = append(payload, byte(known.WireSize()))
	payload = wire.MarshalAppend(payload, known)
	payload = append(payload, 3, 0x2a, 0xde, 0xad) // len=3, kind 42, body
	payload = append(payload, 1, 0x30)             // len=1, kind 48

	s.onDatagram(payload)
	deadline := time.Now().Add(5 * time.Second)
	for s.PacketStats().MessagesIn != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("known message inside a future-versioned envelope never delivered: %+v", s.PacketStats())
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.PacketStats().UnknownDropped; got != 2 {
		t.Fatalf("UnknownDropped = %d, want 2 (the skipped future kinds)", got)
	}

	// A bare datagram of a future kind: dropped whole, counted once.
	s.onDatagram([]byte{0x2a, 1, 'g', 1, 's'})
	deadline = time.Now().Add(5 * time.Second)
	for s.PacketStats().UnknownDropped != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("bare unknown datagram not counted: %+v", s.PacketStats())
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.PacketStats(); got.MessagesIn != 1 || got.DatagramsIn != 1 {
		t.Fatalf("unknown traffic leaked into delivered counters: %+v", got)
	}
}
