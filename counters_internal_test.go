package stableleader

import (
	"context"
	"testing"
	"time"

	"stableleader/internal/wire"
	"stableleader/transport"
)

// TestInboundCountedAtDispatchNotReceipt is the regression test for the
// inbound-counter drift: onDatagram used to count a datagram as delivered
// before enqueueing it, so traffic arriving while the service was closing
// — decoded but never dispatched — inflated the delivered counters. The
// count now happens at dispatch on the event loop.
func TestInboundCountedAtDispatchNotReceipt(t *testing.T) {
	hub := transport.NewInproc(nil)
	s, err := New("p1", hub.Endpoint("p1"), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	payload := wire.MarshalAppend(nil, &wire.Alive{
		Group:       "g",
		Sender:      "p2",
		Incarnation: 1,
		Seq:         1,
		SendTime:    time.Now().UnixNano(),
		Interval:    int64(100 * time.Millisecond),
	})

	// While running, a delivered datagram is counted (asynchronously, at
	// dispatch).
	s.onDatagram(payload)
	deadline := time.Now().Add(5 * time.Second)
	for s.PacketStats().DatagramsIn != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("running service never counted the dispatched datagram: %+v", s.PacketStats())
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.PacketStats().MessagesIn; got != 1 {
		t.Fatalf("MessagesIn = %d, want 1", got)
	}

	// Once closing, the datagram is decoded but dropped before dispatch —
	// it must NOT be counted as delivered.
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.onDatagram(payload)
	// The drop is synchronous (enqueue bails on the closed closing
	// channel), so the counters are already final.
	if got := s.PacketStats(); got.DatagramsIn != 1 || got.MessagesIn != 1 {
		t.Fatalf("closing service counted a dropped datagram as delivered: %+v", got)
	}
}
