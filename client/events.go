package client

import (
	"time"

	"stableleader/id"
)

// EventKind discriminates the concrete type of an Event.
type EventKind uint8

// Event kinds, one per concrete Event type.
const (
	// KindLeaderUpdated is a fresh leadership view adopted from a service
	// endpoint.
	KindLeaderUpdated EventKind = iota + 1
	// KindLeaseLost is the staleness edge: the lease ran out without a
	// fresh snapshot, so the cached view may be outdated.
	KindLeaseLost
	// KindEndpointTombstoned is a serving endpoint announcing it no longer
	// serves the group; failover is already in progress.
	KindEndpointTombstoned
)

// String names the kind for logs.
func (k EventKind) String() string {
	switch k {
	case KindLeaderUpdated:
		return "leader-updated"
	case KindLeaseLost:
		return "lease-lost"
	case KindEndpointTombstoned:
		return "endpoint-tombstoned"
	default:
		return "unknown"
	}
}

// Event is one observation delivered on a Client.Watch stream. The
// concrete types are LeaderUpdated, LeaseLost and EndpointTombstoned;
// switch on the value's type or on Kind().
type Event interface {
	// Kind identifies the concrete event type.
	Kind() EventKind
	// GroupID is the group the event concerns.
	GroupID() id.Group
	// When is when the event was observed locally.
	When() time.Time

	isEvent() // seals the sum type
}

// LeaderUpdated reports a change of the leadership view served to this
// client — the interrupt-mode notification of the client plane. Silent
// lease refreshes (re-advertisements of an unchanged view) do not fire it.
type LeaderUpdated struct {
	// Lease is the newly adopted view.
	Lease LeaderLease
}

// Kind implements Event.
func (e LeaderUpdated) Kind() EventKind { return KindLeaderUpdated }

// GroupID implements Event.
func (e LeaderUpdated) GroupID() id.Group { return e.Lease.Group }

// When implements Event.
func (e LeaderUpdated) When() time.Time { return e.Lease.At }

func (LeaderUpdated) isEvent() {}

// LeaseLost reports that the lease on a group's view expired without a
// fresh snapshot: the service endpoint is unreachable or dead. The client
// is already retrying and failing over; a LeaderUpdated follows when an
// endpoint answers.
type LeaseLost struct {
	// Group is the group concerned.
	Group id.Group
	// ServedBy is the endpoint that went silent.
	ServedBy id.Process
	// Last is the now-stale view (still readable through Cached).
	Last LeaderLease
	// At is the local observation time.
	At time.Time
}

// Kind implements Event.
func (e LeaseLost) Kind() EventKind { return KindLeaseLost }

// GroupID implements Event.
func (e LeaseLost) GroupID() id.Group { return e.Group }

// When implements Event.
func (e LeaseLost) When() time.Time { return e.At }

func (LeaseLost) isEvent() {}

// EndpointTombstoned reports a serving endpoint's goodbye: it stopped
// serving the group (graceful leave or shutdown) and told us so, which is
// cheaper than waiting out the lease. Failover is already in progress.
type EndpointTombstoned struct {
	// Group is the group concerned.
	Group id.Group
	// Endpoint is the service node that said goodbye.
	Endpoint id.Process
	// At is the local observation time.
	At time.Time
}

// Kind implements Event.
func (e EndpointTombstoned) Kind() EventKind { return KindEndpointTombstoned }

// GroupID implements Event.
func (e EndpointTombstoned) GroupID() id.Group { return e.Group }

// When implements Event.
func (e EndpointTombstoned) When() time.Time { return e.At }

func (EndpointTombstoned) isEvent() {}

// subscriber is one Watch stream: a buffered channel with drop-oldest
// delivery, exactly like the service-side event streams.
type subscriber struct {
	ch chan Event
}

// offer delivers ev without ever blocking the event loop: when the buffer
// is full the oldest undelivered event is dropped. Only the owning group
// view's publisher (one goroutine at a time, under its mutex) calls offer.
func (s *subscriber) offer(ev Event) {
	for {
		select {
		case s.ch <- ev:
			return
		default:
			select {
			case <-s.ch:
			default:
			}
		}
	}
}
