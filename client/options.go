package client

import (
	"errors"
	"fmt"
	"time"

	"stableleader/id"
)

// config is the validated result of applying Options.
type config struct {
	self      id.Process
	endpoints []id.Process
	ttl       time.Duration
	seed      int64
	ordered   bool
}

// Option configures a Client at construction (see New).
type Option func(*config) error

// WithID sets the client's process id — how service nodes address their
// snapshots back to it, so it must be unique among everything attached to
// the transport. Without it a random id is generated.
func WithID(p id.Process) Option {
	return func(c *config) error {
		if p == "" {
			return errors.New("client: empty process id")
		}
		c.self = p
		return nil
	}
}

// WithEndpoints names the service nodes to consult. At least one endpoint
// is required; more enable failover (and each subscription spreads its
// initial load across them). Repeated use accumulates.
func WithEndpoints(eps ...id.Process) Option {
	return func(c *config) error {
		for _, ep := range eps {
			if ep == "" {
				return errors.New("client: empty endpoint id")
			}
			c.endpoints = append(c.endpoints, ep)
		}
		return nil
	}
}

// WithLeaseTTL sets the lease duration to request (default 10s; service
// nodes clamp it to their configured bounds). The TTL is the client's
// staleness bound: a cached view is never served as fresh beyond it.
func WithLeaseTTL(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("client: lease TTL must be positive, got %v", d)
		}
		c.ttl = d
		return nil
	}
}

// WithSeed seeds the client's internal randomness (endpoint spreading,
// retry jitter); fixing it makes those choices reproducible.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithOrderedEndpoints keeps the endpoint list in the order given to
// WithEndpoints instead of shuffling it once per client: the first endpoint
// is preferred, the rest are failover targets in order. Use it when
// endpoints have a deliberate priority (e.g. nearest first); the default
// shuffle spreads a client population across the service nodes.
func WithOrderedEndpoints() Option {
	return func(c *config) error {
		c.ordered = true
		return nil
	}
}

// watchConfig is the result of applying WatchOptions.
type watchConfig struct {
	buffer  int
	initial bool
}

// defaultWatchBuffer sizes a Watch stream's buffer when WithWatchBuffer
// is not given.
const defaultWatchBuffer = 16

// WatchOption configures one Watch subscription (see Client.Watch).
type WatchOption func(*watchConfig)

// WithWatchBuffer sizes this subscriber's event buffer (default 16; sizes
// below 1 are ignored). When the buffer is full the oldest undelivered
// event is dropped, never the newest.
func WithWatchBuffer(n int) WatchOption {
	return func(c *watchConfig) {
		if n > 0 {
			c.buffer = n
		}
	}
}

// WithInitialState delivers the group's current cached view as a
// synthetic LeaderUpdated event immediately on subscription (if one has
// been observed), so a late watcher need not wait for the next change.
func WithInitialState() WatchOption {
	return func(c *watchConfig) { c.initial = true }
}
