//go:build race

package client_test

// raceEnabled reports that this binary runs under the race detector —
// the mode the churn hammer exists for. Same convention as
// internal/subs/race_enabled_test.go.
const raceEnabled = true
