//go:build !race

package client_test

// raceEnabled: see race_enabled_test.go.
const raceEnabled = false
