package client_test

// Over real UDP sockets the service has no static address-book entry for
// a client — clients are a dynamic population. This test proves the
// learned-address path: the service discovers the client's socket address
// from its SUBSCRIBE datagram (transport.SourceAware) and answers through
// the learned mapping.

import (
	"context"
	"testing"
	"time"

	stableleader "stableleader"
	"stableleader/client"
	"stableleader/id"
	"stableleader/transport"
)

func TestClientOverUDPLearnedAddress(t *testing.T) {
	ctx := context.Background()
	srvTr, err := transport.NewUDP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := stableleader.New("a", srvTr,
		stableleader.WithSeed(1), stableleader.WithClientPlane())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(ctx)
	if _, err := svc.Join(ctx, "g",
		stableleader.AsCandidate(), stableleader.WithQoS(fastSpec)); err != nil {
		t.Fatal(err)
	}

	// The client knows the server's address; the server knows nothing of
	// the client until its first datagram arrives.
	cliTr, err := transport.NewUDP("127.0.0.1:0", map[id.Process]string{
		"a": srvTr.LocalAddr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := client.New(cliTr,
		client.WithID("udp-cli"), client.WithEndpoints("a"),
		client.WithLeaseTTL(2*time.Second), client.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close(ctx)

	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	var lease client.LeaderLease
	for {
		lease, err = cli.Leader(qctx, "g")
		if err != nil {
			t.Fatalf("Leader over UDP: %v", err)
		}
		if lease.Elected {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if lease.Leader != "a" || lease.ServedBy != "a" {
		t.Fatalf("lease = %+v, want leader a served by a", lease)
	}
	// Freshness persists across leases: renewals flow back through the
	// learned address too.
	time.Sleep(3 * time.Second)
	l2, err := cli.Leader(ctx, "g")
	if err != nil || l2.Stale {
		t.Fatalf("lease went stale over UDP: %+v, %v", l2, err)
	}
}
