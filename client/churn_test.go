package client_test

// The client-plane race hammer (run under -race in CI): clients joining,
// querying, watching and leaving — gracefully and by crash-style
// abandonment — while the service side runs real elections, leader
// crashes and graceful leaves. Its job is to put every client-plane
// reader/writer pair (cached lease vs event loop, registry vs lease
// expiry, tombstone fan-out vs transport close) in front of the race
// detector.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	stableleader "stableleader"
	"stableleader/client"
	"stableleader/id"
	"stableleader/transport"
)

func TestClientPlaneChurnRaceHammer(t *testing.T) {
	if !raceEnabled {
		t.Log("running without -race: this hammer only detects races under the race detector")
	}
	hub := transport.NewInproc(nil)
	svcs, eps := cluster(t, hub, "g", 3)
	ctx := context.Background()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Client churners: each goroutine cycles clients through their whole
	// lifecycle — subscribe, query, watch, close — with short leases so
	// expiry and renewal paths run constantly.
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cycle := 0; ; cycle++ {
				select {
				case <-stop:
					return
				default:
				}
				name := id.Process(fmt.Sprintf("cli-%d-%d", i, cycle))
				cli, err := client.New(hub.Endpoint(name),
					client.WithID(name), client.WithEndpoints(eps...),
					client.WithLeaseTTL(time.Second),
					client.WithSeed(int64(i*1000+cycle+1)))
				if err != nil {
					t.Error(err)
					return
				}
				qctx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
				_, _ = cli.Leader(qctx, "g")
				_, _ = cli.Cached("g")
				wctx, wcancel := context.WithTimeout(ctx, 100*time.Millisecond)
				for range cli.Watch(wctx, "g", client.WithInitialState()) {
					break
				}
				wcancel()
				cancel()
				if cycle%3 == 2 {
					// Crash-style abandonment: no Close, the transport
					// endpoint just goes silent; server leases must expire.
					_ = hub.Endpoint(name).Close()
				} else {
					_ = cli.Close(ctx)
				}
			}
		}()
	}

	// Server churn: crash and restart members (including whoever leads)
	// under the client load.
	time.Sleep(300 * time.Millisecond)
	if err := svcs[0].Crash(); err != nil {
		t.Error(err)
	}
	time.Sleep(500 * time.Millisecond)
	replacement, err := stableleader.New(eps[0], hub.Endpoint(eps[0]),
		stableleader.WithSeed(99), stableleader.WithClientPlane())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replacement.Join(ctx, "g",
		stableleader.AsCandidate(),
		stableleader.WithQoS(fastSpec),
		stableleader.WithSeeds(eps...),
		stableleader.WithHelloInterval(100*time.Millisecond),
	); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	// A graceful close fans tombstones out to whatever clients are
	// currently subscribed, racing their own closes.
	if err := svcs[1].Close(ctx); err != nil {
		t.Error(err)
	}
	time.Sleep(500 * time.Millisecond)

	close(stop)
	wg.Wait()
	_ = replacement.Close(ctx)
	_ = svcs[2].Close(ctx)
	// svcs[0] crashed, svcs[1] closed above; closing again must be a
	// clean idempotent no-op even after the churn.
	_ = svcs[0].Close(ctx)
	_ = svcs[1].Close(ctx)
}
