package client_test

// The client-plane race hammer (run under -race in CI): clients joining,
// querying, watching and leaving — gracefully and by crash-style
// abandonment — while the service side runs real elections, leader
// crashes and graceful leaves. Its job is to put every client-plane
// reader/writer pair (cached lease vs event loop, registry vs lease
// expiry, tombstone fan-out vs transport close) in front of the race
// detector.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	stableleader "stableleader"
	"stableleader/client"
	"stableleader/id"
	"stableleader/transport"
)

// TestClientFailoverToStandbyNoStaleWindow pins the client half of the
// planned-handover plane: a client pinned to the leader's endpoint, when
// that leader closes gracefully, re-pins to the announced warm standby off
// the successor hint carried in the tombstone fan-out — adopting a fresh
// elected view in one step, with no stale window (no LeaseLost) and no
// reactive tombstone/retry cycle in between.
func TestClientFailoverToStandbyNoStaleWindow(t *testing.T) {
	hub := transport.NewInproc(nil)
	ctx := context.Background()
	eps := []id.Process{"a", "b", "c"}
	svcs := make([]*stableleader.Service, len(eps))
	grps := make([]*stableleader.Group, len(eps))
	for i, p := range eps {
		svc, err := stableleader.New(p, hub.Endpoint(p),
			stableleader.WithSeed(int64(i+1)), stableleader.WithClientPlane())
		if err != nil {
			t.Fatal(err)
		}
		svcs[i] = svc
		grp, err := svc.Join(ctx, "g",
			stableleader.AsCandidate(),
			stableleader.WithQoS(fastSpec),
			stableleader.WithSeeds(eps...),
			stableleader.WithHelloInterval(100*time.Millisecond),
		)
		if err != nil {
			t.Fatal(err)
		}
		grps[i] = grp
	}
	defer func() {
		for _, s := range svcs {
			_ = s.Close(ctx)
		}
	}()

	// Wait until the group has a leader that has nominated (and announced)
	// a warm standby.
	var leaderIdx int
	var standby id.Process
	deadline := time.Now().Add(15 * time.Second)
	for {
		leaderIdx = -1
		for i := range grps {
			li, err := grps[i].Leader(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if li.Elected && li.Leader == svcs[i].ID() {
				leaderIdx = i
			}
		}
		if leaderIdx >= 0 {
			p, _, ok, err := grps[leaderIdx].Standby(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				standby = p
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no leader with an announced standby within 15s")
		}
		time.Sleep(20 * time.Millisecond)
	}
	leader := svcs[leaderIdx].ID()

	// Pin the client to the leader's endpoint (ordered: no shuffle), with a
	// lease long enough that only the handover path can beat it.
	order := []id.Process{leader}
	for _, p := range eps {
		if p != leader {
			order = append(order, p)
		}
	}
	cli, err := client.New(hub.Endpoint("cli"),
		client.WithID("cli"), client.WithEndpoints(order...),
		client.WithOrderedEndpoints(),
		client.WithLeaseTTL(30*time.Second), client.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close(ctx)

	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	var lease client.LeaderLease
	for {
		lease, err = cli.Leader(qctx, "g")
		if err != nil {
			t.Fatal(err)
		}
		if lease.Elected {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	if lease.ServedBy != leader {
		t.Fatalf("client served by %q, want pinned to leader %q", lease.ServedBy, leader)
	}
	if lease.Leader != leader {
		t.Fatalf("lease names leader %q, want %q", lease.Leader, leader)
	}

	events := cli.Watch(ctx, "g")

	// Graceful close: planned handover in the group, successor hint in the
	// client-plane tombstone fan-out.
	if err := svcs[leaderIdx].Close(ctx); err != nil {
		t.Fatal(err)
	}

	// The FIRST leadership event must already be the fresh successor view:
	// no LeaseLost (stale window) and no reactive tombstone beforehand.
	evDeadline := time.After(10 * time.Second)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("watch closed prematurely")
			}
			switch e := ev.(type) {
			case client.LeaseLost:
				t.Fatalf("stale window during planned handover: %+v", e)
			case client.EndpointTombstoned:
				t.Fatalf("reactive tombstone failover despite successor hint: %+v", e)
			case client.LeaderUpdated:
				if !e.Lease.Elected || e.Lease.Stale {
					t.Fatalf("first post-close view not fresh+elected: %+v", e.Lease)
				}
				if e.Lease.Leader != standby {
					t.Fatalf("client adopted leader %q, want announced standby %q",
						e.Lease.Leader, standby)
				}
				// The cached view stayed fresh throughout.
				if cached, ok := cli.Cached("g"); !ok || cached.Stale {
					t.Fatalf("Cached went stale across the handover: %+v, %v", cached, ok)
				}
				// The client re-pinned: renewals now flow to the successor,
				// keeping the lease fresh well past the close.
				fctx, fcancel := context.WithTimeout(ctx, 10*time.Second)
				defer fcancel()
				for {
					l2, err := cli.Leader(fctx, "g")
					if err != nil {
						t.Fatalf("Leader after handover: %v", err)
					}
					if l2.ServedBy == standby && l2.Elected && !l2.Stale {
						return
					}
					time.Sleep(50 * time.Millisecond)
				}
			}
		case <-evDeadline:
			t.Fatal("no leadership event within 10s of graceful close")
		}
	}
}

func TestClientPlaneChurnRaceHammer(t *testing.T) {
	if !raceEnabled {
		t.Log("running without -race: this hammer only detects races under the race detector")
	}
	hub := transport.NewInproc(nil)
	svcs, eps := cluster(t, hub, "g", 3)
	ctx := context.Background()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Client churners: each goroutine cycles clients through their whole
	// lifecycle — subscribe, query, watch, close — with short leases so
	// expiry and renewal paths run constantly.
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cycle := 0; ; cycle++ {
				select {
				case <-stop:
					return
				default:
				}
				name := id.Process(fmt.Sprintf("cli-%d-%d", i, cycle))
				cli, err := client.New(hub.Endpoint(name),
					client.WithID(name), client.WithEndpoints(eps...),
					client.WithLeaseTTL(time.Second),
					client.WithSeed(int64(i*1000+cycle+1)))
				if err != nil {
					t.Error(err)
					return
				}
				qctx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
				_, _ = cli.Leader(qctx, "g")
				_, _ = cli.Cached("g")
				wctx, wcancel := context.WithTimeout(ctx, 100*time.Millisecond)
				for range cli.Watch(wctx, "g", client.WithInitialState()) {
					break
				}
				wcancel()
				cancel()
				if cycle%3 == 2 {
					// Crash-style abandonment: no Close, the transport
					// endpoint just goes silent; server leases must expire.
					_ = hub.Endpoint(name).Close()
				} else {
					_ = cli.Close(ctx)
				}
			}
		}()
	}

	// Server churn: crash and restart members (including whoever leads)
	// under the client load.
	time.Sleep(300 * time.Millisecond)
	if err := svcs[0].Crash(); err != nil {
		t.Error(err)
	}
	time.Sleep(500 * time.Millisecond)
	replacement, err := stableleader.New(eps[0], hub.Endpoint(eps[0]),
		stableleader.WithSeed(99), stableleader.WithClientPlane())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replacement.Join(ctx, "g",
		stableleader.AsCandidate(),
		stableleader.WithQoS(fastSpec),
		stableleader.WithSeeds(eps...),
		stableleader.WithHelloInterval(100*time.Millisecond),
	); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	// A graceful close fans tombstones out to whatever clients are
	// currently subscribed, racing their own closes.
	if err := svcs[1].Close(ctx); err != nil {
		t.Error(err)
	}
	time.Sleep(500 * time.Millisecond)

	close(stop)
	wg.Wait()
	_ = replacement.Close(ctx)
	_ = svcs[2].Close(ctx)
	// svcs[0] crashed, svcs[1] closed above; closing again must be a
	// clean idempotent no-op even after the churn.
	_ = svcs[0].Close(ctx)
	_ = svcs[1].Close(ctx)
}
