package client_test

// End-to-end tests of the remote client plane: real services (client
// plane enabled) and real clients on the in-process transport — both ends
// of the socket, through the full wire codec.

import (
	"context"
	"testing"
	"time"

	stableleader "stableleader"
	"stableleader/client"
	"stableleader/id"
	"stableleader/qos"
	"stableleader/transport"
)

// fastSpec keeps elections and detection quick for tests.
var fastSpec = qos.Spec{
	DetectionTime:     250 * time.Millisecond,
	MistakeRecurrence: 24 * time.Hour,
	QueryAccuracy:     0.999,
}

// cluster starts n candidate services in group g with the client plane on.
func cluster(t testing.TB, hub *transport.Inproc, g id.Group, n int) ([]*stableleader.Service, []id.Process) {
	t.Helper()
	ctx := context.Background()
	eps := make([]id.Process, n)
	for i := range eps {
		eps[i] = id.Process('a' + rune(i))
	}
	svcs := make([]*stableleader.Service, n)
	for i, p := range eps {
		svc, err := stableleader.New(p, hub.Endpoint(p),
			stableleader.WithSeed(int64(i+1)), stableleader.WithClientPlane())
		if err != nil {
			t.Fatal(err)
		}
		svcs[i] = svc
		if _, err := svc.Join(ctx, g,
			stableleader.AsCandidate(),
			stableleader.WithQoS(fastSpec),
			stableleader.WithSeeds(eps...),
			stableleader.WithHelloInterval(100*time.Millisecond),
		); err != nil {
			t.Fatal(err)
		}
	}
	return svcs, eps
}

// svcByID finds a service in the cluster slice.
func svcByID(svcs []*stableleader.Service, p id.Process) *stableleader.Service {
	for _, s := range svcs {
		if s.ID() == p {
			return s
		}
	}
	return nil
}

func TestClientLeaderQueryEndToEnd(t *testing.T) {
	hub := transport.NewInproc(nil)
	svcs, eps := cluster(t, hub, "g", 3)
	ctx := context.Background()
	defer func() {
		for _, s := range svcs {
			_ = s.Close(ctx)
		}
	}()

	cli, err := client.New(hub.Endpoint("cli"),
		client.WithID("cli"), client.WithEndpoints(eps...),
		client.WithLeaseTTL(2*time.Second), client.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close(ctx)

	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	// Cold cache: Leader subscribes and waits for the first snapshot.
	// The group may still be electing; poll until a leader is served.
	var lease client.LeaderLease
	for {
		lease, err = cli.Leader(qctx, "g")
		if err != nil {
			t.Fatal(err)
		}
		if lease.Elected {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if lease.Stale || lease.Leader == "" || !time.Now().Before(lease.Expires) {
		t.Fatalf("bad lease: %+v", lease)
	}
	// The answer agrees with the serving member's own view.
	srv := svcByID(svcs, lease.ServedBy)
	if srv == nil {
		t.Fatalf("lease served by unknown endpoint %q", lease.ServedBy)
	}

	// Warm cache: answers survive well past one lease through renewals
	// and re-advertisements — with NO staleness blips, even though the
	// lease (2s) is far shorter than the server's default: the
	// re-advertisement cadence follows the shortest granted lease.
	events := cli.Watch(ctx, "g")
	time.Sleep(3 * time.Second)
	lease2, err := cli.Leader(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	if lease2.Stale || lease2.Leader != lease.Leader {
		t.Fatalf("lease did not stay fresh: %+v vs %+v", lease2, lease)
	}
	for {
		select {
		case ev := <-events:
			if _, lost := ev.(client.LeaseLost); lost {
				t.Fatal("spurious LeaseLost in quiet steady state with a short lease")
			}
			continue
		default:
		}
		break
	}

	// The server side accounts the registration.
	st, err := srv.ClientStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.Clients != 1 || st.Leases != 1 {
		t.Fatalf("server ClientStats = %+v, want 1 client / 1 lease", st)
	}
}

func TestClientFailoverOnGracefulClose(t *testing.T) {
	// The satellite property: a SIGTERM-style graceful close sends final
	// tombstone snapshots to subscribed clients BEFORE the transport
	// closes, so failover is tombstone-driven (fast), not lease-expiry
	// driven (slow).
	hub := transport.NewInproc(nil)
	svcs, eps := cluster(t, hub, "g", 3)
	ctx := context.Background()
	defer func() {
		for _, s := range svcs {
			_ = s.Close(ctx)
		}
	}()

	cli, err := client.New(hub.Endpoint("cli"),
		client.WithID("cli"), client.WithEndpoints(eps...),
		client.WithLeaseTTL(30*time.Second), // long: only a tombstone can beat it
		client.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close(ctx)

	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	var lease client.LeaderLease
	for {
		lease, err = cli.Leader(qctx, "g")
		if err != nil {
			t.Fatal(err)
		}
		if lease.Elected {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	events := cli.Watch(ctx, "g")
	// Close the endpoint that serves us.
	if err := svcByID(svcs, lease.ServedBy).Close(ctx); err != nil {
		t.Fatal(err)
	}

	// The tombstone arrives promptly (no 30s lease wait), then failover
	// restores a fresh view from another endpoint.
	deadline := time.After(10 * time.Second)
	sawTombstone := false
	for !sawTombstone {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("watch closed prematurely")
			}
			if tb, isTomb := ev.(client.EndpointTombstoned); isTomb {
				if tb.Endpoint != lease.ServedBy {
					t.Fatalf("tombstone from %q, want %q", tb.Endpoint, lease.ServedBy)
				}
				sawTombstone = true
			}
		case <-deadline:
			t.Fatal("no tombstone within 10s of graceful close")
		}
	}
	// Leader answers fresh again from a surviving endpoint.
	fctx, fcancel := context.WithTimeout(ctx, 10*time.Second)
	defer fcancel()
	for {
		l2, err := cli.Leader(fctx, "g")
		if err != nil {
			t.Fatalf("Leader after failover: %v", err)
		}
		if l2.Elected && l2.ServedBy != lease.ServedBy {
			if l2.Stale {
				t.Fatalf("failover served a stale lease: %+v", l2)
			}
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestClientStaleEdgeOnServerCrash(t *testing.T) {
	hub := transport.NewInproc(nil)
	svcs, eps := cluster(t, hub, "g", 2)
	ctx := context.Background()
	defer func() {
		for _, s := range svcs {
			_ = s.Close(ctx)
		}
	}()

	cli, err := client.New(hub.Endpoint("cli"),
		client.WithID("cli"), client.WithEndpoints(eps...),
		client.WithLeaseTTL(time.Second), client.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close(ctx)

	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	var lease client.LeaderLease
	for {
		lease, err = cli.Leader(qctx, "g")
		if err != nil {
			t.Fatal(err)
		}
		if lease.Elected {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	events := cli.Watch(ctx, "g")

	// Crash (no goodbye): the lease must run out and the stale edge fire.
	if err := svcByID(svcs, lease.ServedBy).Crash(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(15 * time.Second)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("watch closed prematurely")
			}
			if ll, isLost := ev.(client.LeaseLost); isLost {
				if ll.Last.Leader != lease.Leader {
					t.Fatalf("stale edge lost the last view: %+v", ll)
				}
				// The stale view stays readable through Cached...
				if cached, ok := cli.Cached("g"); !ok || !cached.Stale {
					t.Fatalf("Cached after stale edge = %+v, %v", cached, ok)
				}
				// ...and failover to the survivor restores freshness.
				fctx, fcancel := context.WithTimeout(ctx, 15*time.Second)
				defer fcancel()
				for {
					l2, err := cli.Leader(fctx, "g")
					if err != nil {
						t.Fatalf("Leader after crash failover: %v", err)
					}
					if l2.Elected && !l2.Stale && l2.ServedBy != lease.ServedBy {
						return
					}
					time.Sleep(50 * time.Millisecond)
				}
			}
		case <-deadline:
			t.Fatal("no LeaseLost edge within 15s of server crash")
		}
	}
}

func TestClientCloseReleasesServerLeases(t *testing.T) {
	hub := transport.NewInproc(nil)
	svcs, eps := cluster(t, hub, "g", 1)
	ctx := context.Background()
	defer svcs[0].Close(ctx)

	cli, err := client.New(hub.Endpoint("cli"),
		client.WithID("cli"), client.WithEndpoints(eps...),
		client.WithLeaseTTL(time.Hour), client.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if _, err := cli.Leader(qctx, "g"); err != nil {
		t.Fatal(err)
	}
	if st, err := svcs[0].ClientStats(ctx); err != nil || st.Leases != 1 {
		t.Fatalf("ClientStats before close = %+v, %v", st, err)
	}
	// Graceful client close unsubscribes: the (clamped, long) lease is
	// freed immediately instead of lingering.
	if err := cli.Close(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := svcs[0].ClientStats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Leases == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server still holds %d leases after client close", st.Leases)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Operations on the closed client fail cleanly — including Leader on
	// the already-cached group, whose (1h) lease is nowhere near expiry:
	// the fast path must not keep serving a client the caller shut down.
	if _, err := cli.Leader(ctx, "g"); err == nil {
		t.Fatal("Leader served a cached lease after Close")
	}
	if _, err := cli.Leader(ctx, "other"); err == nil {
		t.Fatal("Leader on a closed client succeeded")
	}
	// The stale hint remains readable by design (the view may predate
	// the election — what matters is that Cached still answers).
	if cached, ok := cli.Cached("g"); !ok || cached.Group != "g" {
		t.Fatalf("Cached after Close = %+v, %v; want the last view", cached, ok)
	}
}

func TestClientWatchSeesLeaderChange(t *testing.T) {
	hub := transport.NewInproc(nil)
	svcs, eps := cluster(t, hub, "g", 3)
	ctx := context.Background()
	defer func() {
		for _, s := range svcs {
			_ = s.Close(ctx)
		}
	}()

	cli, err := client.New(hub.Endpoint("cli"),
		client.WithID("cli"), client.WithEndpoints(eps...),
		client.WithLeaseTTL(2*time.Second), client.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close(ctx)

	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	var lease client.LeaderLease
	for {
		lease, err = cli.Leader(qctx, "g")
		if err != nil {
			t.Fatal(err)
		}
		if lease.Elected {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	events := cli.Watch(ctx, "g", client.WithInitialState())

	// Take the current leader down. If it serves our lease we will see a
	// tombstone first; either way a LeaderUpdated naming a different
	// leader must eventually arrive.
	old := lease.Leader
	if err := svcByID(svcs, old).Close(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(20 * time.Second)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("watch closed prematurely")
			}
			if up, isUp := ev.(client.LeaderUpdated); isUp {
				if up.Lease.Elected && up.Lease.Leader != old {
					return // the re-election reached the client
				}
			}
		case <-deadline:
			t.Fatal("client never observed the re-election")
		}
	}
}

// TestClientCachedReadAllocFree pins the headline property of the client
// read plane: the cached Leader query performs zero allocations.
func TestClientCachedReadAllocFree(t *testing.T) {
	hub := transport.NewInproc(nil)
	svcs, eps := cluster(t, hub, "g", 1)
	ctx := context.Background()
	defer svcs[0].Close(ctx)

	cli, err := client.New(hub.Endpoint("cli"),
		client.WithID("cli"), client.WithEndpoints(eps...),
		client.WithLeaseTTL(time.Hour), client.WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close(ctx)
	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if _, err := cli.Leader(qctx, "g"); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		if _, err := cli.Leader(ctx, "g"); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("cached Leader allocated %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkClientLeaderQuery measures the cached read: the path every
// application request takes in steady state.
func BenchmarkClientLeaderQuery(b *testing.B) {
	hub := transport.NewInproc(nil)
	svcs, eps := cluster(b, hub, "g", 1)
	ctx := context.Background()
	defer svcs[0].Close(ctx)

	cli, err := client.New(hub.Endpoint("cli"),
		client.WithID("cli"), client.WithEndpoints(eps...),
		client.WithLeaseTTL(time.Hour), client.WithSeed(7))
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close(ctx)
	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if _, err := cli.Leader(qctx, "g"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := cli.Leader(ctx, "g"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
