// Package client consults a stableleader service from processes that are
// not group members — the "leader election as a service" reading of the
// paper, scaled to remote clients.
//
// A Client attaches to a transport, subscribes to leadership snapshots
// from one or more service endpoints under a renewable lease, and answers
// Leader queries from a local copy-on-write cache: the steady-state read
// is one atomic load, allocation free, with staleness bounded by the lease
// TTL. Changes stream through Watch as typed events. When the serving
// endpoint dies or says goodbye, the client fails over across its
// endpoint list by itself.
//
//	cli, err := client.New(tr,
//		client.WithID("frontend-1"),
//		client.WithEndpoints("a", "b", "c"))
//	...
//	lease, err := cli.Leader(ctx, "orders")   // cached, wait-free
//	for ev := range cli.Watch(ctx, "orders") { ... }
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"stableleader/id"
	"stableleader/internal/clientcore"
	"stableleader/internal/clock"
	"stableleader/internal/wire"
	"stableleader/transport"
)

// ErrClosed is returned by operations on a closed Client.
var ErrClosed = errors.New("client: closed")

// LeaderLease is one group's leadership as served to this client: the
// view, who served it, and how long it may be treated as fresh.
type LeaderLease struct {
	// Group is the group concerned.
	Group id.Group
	// Leader is the elected process (empty if Elected is false).
	Leader id.Process
	// LeaderIncarnation distinguishes successive lifetimes of the leader.
	LeaderIncarnation int64
	// Elected is false while the serving endpoint sees the group
	// leaderless (for example mid-election).
	Elected bool
	// Stale marks a view served past its lease (only visible through
	// Cached; Leader never returns stale views).
	Stale bool
	// ServedBy is the service endpoint the view came from.
	ServedBy id.Process
	// At is when the view was adopted locally; Expires is the lease
	// deadline, after which the view is no longer served as fresh.
	At      time.Time
	Expires time.Time
}

// Client is a remote consumer of the leader election service.
type Client struct {
	self id.Process
	tr   transport.Transport
	node *clientcore.Node

	commands chan func()
	done     chan struct{}
	closing  chan struct{}
	finished chan struct{}

	// inbox is the pooled wire decode harness for the receive path, the
	// same one the service uses.
	inbox *wire.Inbox

	// mu guards groups (the canonical registry) and closed. The read hot
	// path never takes it: viewsRO holds a copy-on-write snapshot of the
	// groups map, re-published on every (rare) mutation, so Leader/Cached
	// resolve a group with two atomic loads and no lock.
	mu       sync.RWMutex
	groups   map[id.Group]*groupView
	viewsRO  atomic.Pointer[map[id.Group]*groupView]
	closed   bool
	closeErr error
}

// groupView is the client-side read plane for one group: the cached lease
// (copy-on-write, atomically published from the event loop) plus the
// Watch subscribers and slow-path waiters.
type groupView struct {
	c     *Client
	g     id.Group
	lease atomic.Pointer[LeaderLease]

	mu      sync.Mutex
	subs    map[*subscriber]struct{}
	waiters []chan struct{}
	closed  bool
	donec   chan struct{}
}

// New creates and starts a Client on the given transport. WithEndpoints
// is required; everything else defaults sensibly (a random client id, a
// 10s lease).
func New(tr transport.Transport, opts ...Option) (*Client, error) {
	if tr == nil {
		return nil, errors.New("client: a transport is required")
	}
	cfg := config{ttl: clientcore.DefaultTTL}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if len(cfg.endpoints) == 0 {
		return nil, errors.New("client: at least one endpoint is required (WithEndpoints)")
	}
	seed := cfg.seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(seed))
	if cfg.self == "" {
		cfg.self = id.Process(fmt.Sprintf("client-%08x", rng.Uint32()))
	}
	c := &Client{
		self:     cfg.self,
		tr:       tr,
		commands: make(chan func(), 256),
		done:     make(chan struct{}),
		closing:  make(chan struct{}),
		finished: make(chan struct{}),
		inbox:    wire.NewInbox(),
		groups:   make(map[id.Group]*groupView),
	}
	rt := &clientRuntime{c: c, rng: rng}
	c.node = clientcore.NewNode(rt, clientcore.Config{
		Self:      cfg.self,
		Endpoints: cfg.endpoints,
		TTL:       cfg.ttl,
		NoShuffle: cfg.ordered,
		OnUpdate:  c.onUpdate,
	})
	tr.Receive(c.onDatagram)
	go c.loop()
	return c, nil
}

// ID returns the client's process id.
func (c *Client) ID() id.Process { return c.self }

// loop is the event loop: every node entry point funnels through here.
func (c *Client) loop() {
	defer close(c.done)
	for {
		select {
		case fn := <-c.commands:
			fn()
		case <-c.closing:
			for {
				select {
				case fn := <-c.commands:
					fn()
				default:
					c.node.Stop(true) // graceful: unsubscribe everywhere
					return
				}
			}
		}
	}
}

// enqueue schedules fn on the event loop; it drops work once closing.
func (c *Client) enqueue(fn func()) {
	select {
	case c.commands <- fn:
	case <-c.closing:
	}
}

// onDatagram decodes and dispatches one received datagram through the
// pooled decoder, recycling the messages after dispatch (the state
// machine copies everything it keeps). The unknown-kind count is
// discarded: forward traffic is irrelevant to a client.
func (c *Client) onDatagram(payload []byte) {
	msgs, _, err := c.inbox.Decode(payload)
	if err != nil || len(msgs) == 0 {
		c.inbox.Recycle(msgs, false)
		return
	}
	c.enqueue(func() {
		for _, m := range msgs {
			c.node.HandleMessage(m)
		}
		c.inbox.Recycle(msgs, true)
	})
}

// viewFast resolves g's read plane without locks: one atomic load of the
// copy-on-write map snapshot.
//
//leadervet:hotpath
func (c *Client) viewFast(g id.Group) *groupView {
	if m := c.viewsRO.Load(); m != nil {
		return (*m)[g]
	}
	return nil
}

// view returns (creating and subscribing if needed) the read plane for g.
// The lock-free snapshot serves repeat callers; the write lock, the map
// re-publication and the subscribe command happen only on first touch.
func (c *Client) view(g id.Group) (*groupView, error) {
	if gv := c.viewFast(g); gv != nil {
		return gv, nil
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	gv := c.groups[g]
	if gv == nil {
		gv = &groupView{c: c, g: g, subs: make(map[*subscriber]struct{}), donec: make(chan struct{})}
		c.groups[g] = gv
		ro := make(map[id.Group]*groupView, len(c.groups))
		for k, v := range c.groups {
			ro[k] = v
		}
		c.viewsRO.Store(&ro)
		c.enqueue(func() { c.node.Subscribe(g) })
	}
	c.mu.Unlock()
	return gv, nil
}

// Leader returns the current leader view of g — the query mode of the
// paper, served from the client's cache: a single atomic load, allocation
// free, no network round trip. The view's staleness is bounded by the
// lease TTL; a view past its lease is never returned. On a cold cache (or
// past the lease) Leader subscribes (idempotently) and waits, honouring
// ctx, until a service endpoint answers. On a closed client Leader
// returns ErrClosed (Cached still serves the last view as a stale hint).
//
//leadervet:hotpath
func (c *Client) Leader(ctx context.Context, g id.Group) (LeaderLease, error) {
	select {
	case <-c.closing:
		return LeaderLease{}, ErrClosed
	default:
	}
	gv, err := c.view(g)
	if err != nil {
		return LeaderLease{}, err
	}
	if l := gv.lease.Load(); l != nil && !l.Stale && time.Now().Before(l.Expires) {
		return *l, nil
	}
	return gv.await(ctx)
}

// Cached returns the last view of g without waiting or staleness checks —
// the stale hint for callers that prefer outdated data to blocking, and
// deliberately still served after Close. ok is false before the first
// snapshot or if g was never queried or watched.
//
//leadervet:hotpath
func (c *Client) Cached(g id.Group) (LeaderLease, bool) {
	gv := c.viewFast(g)
	if gv == nil {
		return LeaderLease{}, false
	}
	l := gv.lease.Load()
	if l == nil {
		return LeaderLease{}, false
	}
	out := *l
	if !out.Stale && !time.Now().Before(out.Expires) {
		out.Stale = true
	}
	return out, true
}

// await is the slow path: wait for the next fresh snapshot.
func (gv *groupView) await(ctx context.Context) (LeaderLease, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		if err := ctx.Err(); err != nil {
			return LeaderLease{}, err
		}
		gv.mu.Lock()
		if gv.closed {
			gv.mu.Unlock()
			return LeaderLease{}, ErrClosed
		}
		// Re-check under the lock: an update racing the registration
		// would otherwise be missed.
		if l := gv.lease.Load(); l != nil && !l.Stale && time.Now().Before(l.Expires) {
			gv.mu.Unlock()
			return *l, nil
		}
		ch := make(chan struct{})
		gv.waiters = append(gv.waiters, ch)
		gv.mu.Unlock()
		select {
		case <-ch:
			// A fresh lease was published; loop to read it (it may have
			// aged out again under extreme delays, hence the loop).
		case <-ctx.Done():
			return LeaderLease{}, ctx.Err()
		case <-gv.donec:
			return LeaderLease{}, ErrClosed
		}
	}
}

// Watch subscribes to g's event stream: leadership updates, lease-loss
// (staleness) edges and endpoint tombstones. Any number of watchers may
// run concurrently; each has its own drop-oldest buffer, so a slow
// consumer loses history, never freshness. The channel closes when ctx
// is cancelled or the client closes. Watching implicitly subscribes to g.
func (c *Client) Watch(ctx context.Context, g id.Group, opts ...WatchOption) <-chan Event {
	cfg := watchConfig{buffer: defaultWatchBuffer}
	for _, o := range opts {
		o(&cfg)
	}
	sub := &subscriber{ch: make(chan Event, cfg.buffer)}
	gv, err := c.view(g)
	if err != nil {
		close(sub.ch)
		return sub.ch
	}
	gv.mu.Lock()
	if gv.closed {
		gv.mu.Unlock()
		close(sub.ch)
		return sub.ch
	}
	gv.subs[sub] = struct{}{}
	if l := gv.lease.Load(); cfg.initial && l != nil {
		sub.offer(LeaderUpdated{Lease: *l})
	}
	gv.mu.Unlock()

	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				gv.unsubscribe(sub)
			case <-gv.donec:
			}
		}()
	}
	return sub.ch
}

// unsubscribe detaches one watcher and closes its channel.
func (gv *groupView) unsubscribe(sub *subscriber) {
	gv.mu.Lock()
	defer gv.mu.Unlock()
	if _, ok := gv.subs[sub]; !ok {
		return
	}
	delete(gv.subs, sub)
	close(sub.ch)
}

// onUpdate is the clientcore hook: it publishes the copy-on-write lease,
// wakes slow-path waiters on fresh views, and fans Watch events out. It
// runs on the event loop, one publication at a time.
func (c *Client) onUpdate(up clientcore.Update) {
	gv := c.viewFast(up.Group)
	if gv == nil {
		return
	}
	lease := &LeaderLease{
		Group:             up.Group,
		Leader:            up.Leader,
		LeaderIncarnation: up.LeaderIncarnation,
		Elected:           up.Elected,
		Stale:             up.Stale || up.Tombstone,
		ServedBy:          up.ServedBy,
		At:                up.At,
		Expires:           up.Expires,
	}
	gv.mu.Lock()
	defer gv.mu.Unlock()
	gv.lease.Store(lease)
	fresh := !lease.Stale
	if fresh && len(gv.waiters) > 0 {
		for _, ch := range gv.waiters {
			close(ch)
		}
		gv.waiters = nil
	}
	if gv.closed || !up.Changed {
		return
	}
	var ev Event
	switch {
	case up.Tombstone:
		ev = EndpointTombstoned{Group: up.Group, Endpoint: up.ServedBy, At: up.At}
	case up.Stale:
		ev = LeaseLost{Group: up.Group, ServedBy: up.ServedBy, Last: *lease, At: up.At}
	default:
		ev = LeaderUpdated{Lease: *lease}
	}
	for s := range gv.subs {
		s.offer(ev)
	}
}

// closeView ends one group's watchers and waiters exactly once.
func (gv *groupView) closeView() {
	gv.mu.Lock()
	defer gv.mu.Unlock()
	if gv.closed {
		return
	}
	gv.closed = true
	for s := range gv.subs {
		close(s.ch)
		delete(gv.subs, s)
	}
	for _, ch := range gv.waiters {
		close(ch)
	}
	gv.waiters = nil
	close(gv.donec)
}

// Close shuts the client down gracefully: UNSUBSCRIBEs go to every
// serving endpoint (so registries free the leases immediately rather than
// waiting them out), then the transport closes. ctx bounds the wait; on
// cancellation the shutdown completes in the background. Close is
// idempotent.
func (c *Client) Close(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		select {
		case <-c.finished:
			return c.closeErr
		default:
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		select {
		case <-c.finished:
			return c.closeErr
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	c.closed = true
	views := make([]*groupView, 0, len(c.groups))
	for _, gv := range c.groups {
		views = append(views, gv)
	}
	c.mu.Unlock()

	close(c.closing)
	finish := func() error {
		<-c.done
		for _, gv := range views {
			gv.closeView()
		}
		err := c.tr.Close()
		c.closeErr = err
		close(c.finished)
		return err
	}
	if err := ctx.Err(); err != nil {
		go finish()
		return err
	}
	select {
	case <-c.done:
		return finish()
	case <-ctx.Done():
		go finish()
		return ctx.Err()
	}
}

// clientRuntime adapts the Client to clientcore.Runtime: real clock,
// timers hopping onto the event loop, transport sends through a pooled
// marshal buffer.
type clientRuntime struct {
	c   *Client
	rng *rand.Rand
}

var _ clientcore.Runtime = (*clientRuntime)(nil)

// Now implements clock.Clock.
func (r *clientRuntime) Now() time.Time { return time.Now() }

// AfterFunc implements clock.Clock: the callback hops onto the event loop
// (dropped once the client is closing, like any command).
func (r *clientRuntime) AfterFunc(d time.Duration, fn func()) clock.Timer {
	return time.AfterFunc(d, func() { r.c.enqueue(fn) })
}

// sendBufPool recycles marshal buffers across sends (transports do not
// retain the payload after Send returns).
var sendBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 2048); return &b },
}

// Send implements clientcore.Runtime.
//
//leadervet:hotpath
func (r *clientRuntime) Send(to id.Process, m wire.Message) {
	bp := sendBufPool.Get().(*[]byte)
	buf := wire.MarshalAppend((*bp)[:0], m)
	_ = r.c.tr.Send(to, buf)
	*bp = buf[:0]
	sendBufPool.Put(bp)
}

// Rand implements clientcore.Runtime (used only on the event loop).
func (r *clientRuntime) Rand() *rand.Rand { return r.rng }
