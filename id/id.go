// Package id defines the identity types shared by every layer of the leader
// election service: process identifiers and group identifiers.
//
// Identifiers are opaque strings chosen by the application (for example
// "node-03" or "orders-service"). The service orders processes by identifier
// only to break exact ties, so the choice of naming scheme does not affect
// leader stability.
package id

// Process identifies a single process (one service instance). A process that
// crashes and recovers keeps its Process id but is distinguished by a fresh
// incarnation number, carried separately in protocol messages.
type Process string

// Group identifies a dynamic group of processes among which a leader is
// elected. A process may belong to any number of groups concurrently.
type Group string

// SortedMapKeys returns m's keys in ascending order. Every peer- or
// group-set iteration that can affect message order goes through it, so
// simulation runs stay a pure function of their seed (insertion sort: the
// sets are tiny).
func SortedMapKeys[K ~string, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
