// Package id defines the identity types shared by every layer of the leader
// election service: process identifiers and group identifiers.
//
// Identifiers are opaque strings chosen by the application (for example
// "node-03" or "orders-service"). The service orders processes by identifier
// only to break exact ties, so the choice of naming scheme does not affect
// leader stability.
package id

// Process identifies a single process (one service instance). A process that
// crashes and recovers keeps its Process id but is distinguished by a fresh
// incarnation number, carried separately in protocol messages.
type Process string

// Group identifies a dynamic group of processes among which a leader is
// elected. A process may belong to any number of groups concurrently.
type Group string

// SortedMapKeys returns m's keys in ascending order. Every peer- or
// group-set iteration that can affect message order goes through it, so
// simulation runs stay a pure function of their seed (insertion sort: the
// sets are tiny).
func SortedMapKeys[K ~string, V any](m map[K]V) []K {
	return AppendSortedMapKeys(make([]K, 0, len(m)), m)
}

// AppendSortedMapKeys appends m's keys to dst in ascending order and
// returns the extended slice. Hot iteration sites (the client-plane
// fan-out) pass a reusable scratch buffer so the steady state allocates
// nothing; everyone else goes through SortedMapKeys.
func AppendSortedMapKeys[K ~string, V any](dst []K, m map[K]V) []K {
	base := len(dst)
	for k := range m {
		dst = append(dst, k)
	}
	for i := base + 1; i < len(dst); i++ {
		for j := i; j > base && dst[j] < dst[j-1]; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	return dst
}
