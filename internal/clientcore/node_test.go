package clientcore

import (
	"math/rand"
	"testing"
	"time"

	"stableleader/id"
	"stableleader/internal/clock"
	"stableleader/internal/simnet"
	"stableleader/internal/wire"
)

// fakeRT drives the node on a virtual clock and captures its sends.
type fakeRT struct {
	eng  *simnet.Engine
	rng  *rand.Rand
	sent []outMsg
}

type outMsg struct {
	to id.Process
	m  wire.Message
}

func newRT() *fakeRT {
	eng := simnet.NewEngine(1)
	return &fakeRT{eng: eng, rng: rand.New(rand.NewSource(7))}
}

func (rt *fakeRT) Now() time.Time { return rt.eng.Now() }
func (rt *fakeRT) AfterFunc(d time.Duration, fn func()) clock.Timer {
	return rt.eng.After(d, fn)
}
func (rt *fakeRT) Send(to id.Process, m wire.Message) {
	rt.sent = append(rt.sent, outMsg{to: to, m: m})
}
func (rt *fakeRT) Rand() *rand.Rand { return rt.rng }

// take drains captured sends, flattening batches into their messages.
func (rt *fakeRT) take() []outMsg {
	var out []outMsg
	for _, s := range rt.sent {
		if b, ok := s.m.(*wire.Batch); ok {
			for _, inner := range b.Msgs {
				out = append(out, outMsg{to: s.to, m: inner})
			}
			continue
		}
		out = append(out, s)
	}
	rt.sent = nil
	return out
}

// settle runs the engine long enough for coalescing flushes to drain.
func (rt *fakeRT) settle() { rt.eng.RunFor(10 * time.Millisecond) }

// harness bundles a node with update capture.
type harness struct {
	rt      *fakeRT
	n       *Node
	updates []Update
}

func newNode(t *testing.T, mutate func(*Config)) *harness {
	t.Helper()
	h := &harness{rt: newRT()}
	cfg := Config{
		Self:      "c1",
		Endpoints: []id.Process{"w01", "w02", "w03"},
		TTL:       6 * time.Second,
		NoShuffle: true,
		OnUpdate:  func(up Update) { h.updates = append(h.updates, up) },
	}
	if mutate != nil {
		mutate(&cfg)
	}
	h.n = NewNode(h.rt, cfg)
	return h
}

func (h *harness) takeUpdates() []Update {
	out := h.updates
	h.updates = nil
	return out
}

// snapshot builds a server answer for the node's current expectations.
func snapshot(from id.Process, g id.Group, seq uint64, leader id.Process, lease time.Duration) *wire.LeaderSnapshot {
	return &wire.LeaderSnapshot{
		Group: g, Sender: from, Incarnation: 1, Seq: seq,
		Elected: true, Leader: leader, LeaderIncarnation: 9,
		Lease: int64(lease),
	}
}

func TestSubscribeAcceptRenewCycle(t *testing.T) {
	h := newNode(t, nil)
	h.n.Subscribe("g")
	h.rt.settle()
	out := h.rt.take()
	if len(out) != 1 || out[0].to != "w01" || out[0].m.Kind() != wire.KindSubscribe {
		t.Fatalf("initial traffic = %+v, want one SUBSCRIBE to w01", out)
	}

	h.n.HandleMessage(snapshot("w01", "g", 1, "w02", 6*time.Second))
	ups := h.takeUpdates()
	if len(ups) != 1 {
		t.Fatalf("accepted snapshot published %d updates, want 1", len(ups))
	}
	up := ups[0]
	if up.Leader != "w02" || !up.Elected || up.Stale || up.Tombstone || !up.Changed ||
		up.ServedBy != "w01" || !up.Expires.Equal(h.rt.Now().Add(6*time.Second)) {
		t.Fatalf("bad update: %+v", up)
	}
	if got, ok := h.n.Snapshot("g"); !ok || got.Leader != "w02" {
		t.Fatalf("Snapshot() = %+v, %v", got, ok)
	}

	// The renewal fires at lease/3 — and only renewals, no re-subscribes,
	// as long as snapshots keep the lease fresh.
	h.rt.eng.RunFor(2100 * time.Millisecond)
	out = h.rt.take()
	if len(out) != 1 || out[0].m.Kind() != wire.KindLeaseRenew || out[0].to != "w01" {
		t.Fatalf("traffic at lease/3 = %+v, want one LEASE_RENEW to w01", out)
	}
}

func TestRenewalsSurviveFrequentReadverts(t *testing.T) {
	// Server re-advertisements arrive at least as often as lease/3. If
	// each one reset the renew timer, LEASE_RENEW — the only message
	// that extends the server-side lease — would never fire and the
	// lease would silently die. The renew cycle must be self-arming,
	// independent of snapshot arrivals.
	h := newNode(t, nil) // TTL 6s → renew every 2s
	h.n.Subscribe("g")
	h.rt.settle()
	h.rt.take()
	var seq uint64 = 1
	h.n.HandleMessage(snapshot("w01", "g", seq, "w02", 6*time.Second))
	h.rt.take()
	// Re-advertise every 1.5s (faster than lease/3) for 30s.
	renews := 0
	for i := 0; i < 20; i++ {
		h.rt.eng.RunFor(1500 * time.Millisecond)
		for _, s := range h.rt.take() {
			if s.m.Kind() == wire.KindLeaseRenew {
				renews++
			}
		}
		seq++
		h.n.HandleMessage(snapshot("w01", "g", seq, "w02", 6*time.Second))
	}
	// Expect ~15 renewals (one per 2s); starvation would give 0.
	if renews < 12 {
		t.Fatalf("%d renewals over 30s of frequent re-adverts, want ~15 (starved?)", renews)
	}
}

func TestRenewCadenceFollowsGrantedLease(t *testing.T) {
	// The server may clamp the requested TTL down; renewals must pace
	// off the GRANT, or they would arrive after the server-side lease
	// already expired.
	h := newNode(t, func(c *Config) { c.TTL = time.Hour })
	h.n.Subscribe("g")
	h.rt.settle()
	h.rt.take()
	h.n.HandleMessage(snapshot("w01", "g", 1, "w02", 6*time.Second)) // granted 6s
	h.rt.take()
	h.rt.eng.RunFor(2100 * time.Millisecond) // granted/3, far below requested/3
	renews := 0
	for _, s := range h.rt.take() {
		if s.m.Kind() == wire.KindLeaseRenew {
			renews++
		}
	}
	if renews != 1 {
		t.Fatalf("%d renewals at granted-lease/3, want 1 (pacing off the request?)", renews)
	}
}

func TestReadvertSameViewRefreshesLeaseSilently(t *testing.T) {
	h := newNode(t, nil)
	h.n.Subscribe("g")
	h.rt.settle()
	h.rt.take()
	h.n.HandleMessage(snapshot("w01", "g", 1, "w02", 6*time.Second))
	h.takeUpdates()

	h.rt.eng.RunFor(2 * time.Second)
	h.n.HandleMessage(snapshot("w01", "g", 2, "w02", 6*time.Second))
	ups := h.takeUpdates()
	if len(ups) != 1 || ups[0].Changed {
		t.Fatalf("re-advert of the same view: %+v, want one unchanged update", ups)
	}
	if !ups[0].Expires.Equal(h.rt.Now().Add(6 * time.Second)) {
		t.Fatalf("re-advert did not refresh the lease: %+v", ups[0])
	}
}

func TestReorderedOlderSnapshotIgnored(t *testing.T) {
	h := newNode(t, nil)
	h.n.Subscribe("g")
	h.rt.settle()
	h.rt.take()
	h.n.HandleMessage(snapshot("w01", "g", 5, "w02", 6*time.Second))
	h.takeUpdates()
	// An older sequence from the same server lifetime must not regress
	// the view.
	h.n.HandleMessage(snapshot("w01", "g", 3, "OLD", 6*time.Second))
	if ups := h.takeUpdates(); len(ups) != 0 {
		t.Fatalf("reordered snapshot published %+v", ups)
	}
	if got, _ := h.n.Snapshot("g"); got.Leader != "w02" {
		t.Fatalf("view regressed to %q", got.Leader)
	}
	// A snapshot from an endpoint we are not pinned to is ignored too.
	h.n.HandleMessage(snapshot("w03", "g", 9, "ROGUE", 6*time.Second))
	if got, _ := h.n.Snapshot("g"); got.Leader != "w02" {
		t.Fatalf("foreign-endpoint snapshot applied: %+v", got)
	}
}

func TestUnansweredSubscribeRotatesEndpoints(t *testing.T) {
	h := newNode(t, nil)
	h.n.Subscribe("g")
	// Never answer. The machine must retry, and after failoverAfter
	// attempts rotate to w02 (then w03).
	h.rt.eng.RunFor(30 * time.Second)
	var targets []id.Process
	for _, s := range h.rt.take() {
		if s.m.Kind() == wire.KindSubscribe {
			targets = append(targets, s.to)
		}
	}
	if len(targets) < 4 {
		t.Fatalf("only %d subscribe attempts in 30s", len(targets))
	}
	seen := map[id.Process]bool{}
	for _, ep := range targets {
		seen[ep] = true
	}
	for _, want := range []id.Process{"w01", "w02", "w03"} {
		if !seen[want] {
			t.Fatalf("failover never tried %s: attempts %v", want, targets)
		}
	}
}

func TestLeaseExpiryPublishesStaleEdgeOnce(t *testing.T) {
	h := newNode(t, nil)
	h.n.Subscribe("g")
	h.rt.settle()
	h.rt.take()
	h.n.HandleMessage(snapshot("w01", "g", 1, "w02", 6*time.Second))
	h.takeUpdates()

	// Silence. At the lease deadline the stale edge fires exactly once,
	// preserving the last-known view.
	h.rt.eng.RunFor(20 * time.Second)
	var stales []Update
	for _, up := range h.takeUpdates() {
		if up.Stale {
			stales = append(stales, up)
		}
	}
	if len(stales) != 1 {
		t.Fatalf("%d stale edges published, want exactly 1", len(stales))
	}
	if stales[0].Leader != "w02" || !stales[0].Changed {
		t.Fatalf("stale edge lost the last view: %+v", stales[0])
	}
	// A fresh snapshot (after failover) publishes a fresh edge.
	sub := h.n.groups["g"]
	h.n.HandleMessage(snapshot(sub.currentEP(), "g", 1, "w02", 6*time.Second))
	ups := h.takeUpdates()
	if len(ups) != 1 || ups[0].Stale || !ups[0].Changed {
		t.Fatalf("recovery edge = %+v", ups)
	}
}

func TestTombstoneFailsOverImmediately(t *testing.T) {
	h := newNode(t, nil)
	h.n.Subscribe("g")
	h.rt.settle()
	h.rt.take()
	h.n.HandleMessage(snapshot("w01", "g", 1, "w02", 6*time.Second))
	h.takeUpdates()

	h.n.HandleMessage(&wire.LeaderSnapshot{
		Group: "g", Sender: "w01", Incarnation: 1, Seq: 2,
		Elected: true, Leader: "w02", LeaderIncarnation: 9, Tombstone: true,
	})
	ups := h.takeUpdates()
	if len(ups) != 1 || !ups[0].Tombstone || !ups[0].Stale {
		t.Fatalf("tombstone published %+v", ups)
	}
	h.rt.settle()
	var subTo, unsubTo []id.Process
	for _, s := range h.rt.take() {
		switch s.m.Kind() {
		case wire.KindSubscribe:
			subTo = append(subTo, s.to)
		case wire.KindUnsubscribe:
			unsubTo = append(unsubTo, s.to)
		}
	}
	if len(subTo) != 1 || subTo[0] != "w02" {
		t.Fatalf("tombstone failover subscribed to %v, want w02", subTo)
	}
	if len(unsubTo) != 1 || unsubTo[0] != "w01" {
		t.Fatalf("tombstone failover unsubscribed from %v, want w01", unsubTo)
	}
}

func TestDuplicatedOldTombstoneIgnored(t *testing.T) {
	// A network-duplicated tombstone from earlier in the stream must not
	// tear down a newer healthy subscription: the server sequences
	// tombstones like any snapshot, and the client holds them to the
	// same ordering guard.
	h := newNode(t, nil)
	h.n.Subscribe("g")
	h.rt.settle()
	h.rt.take()
	h.n.HandleMessage(snapshot("w01", "g", 7, "w02", 6*time.Second))
	h.takeUpdates()
	h.n.HandleMessage(&wire.LeaderSnapshot{
		Group: "g", Sender: "w01", Incarnation: 1, Seq: 5, Tombstone: true,
	})
	if ups := h.takeUpdates(); len(ups) != 0 {
		t.Fatalf("stale duplicate tombstone published %+v", ups)
	}
	if got, _ := h.n.Snapshot("g"); got.Stale || got.Leader != "w02" {
		t.Fatalf("stale duplicate tombstone disturbed the view: %+v", got)
	}
	// A properly sequenced tombstone still works.
	h.n.HandleMessage(&wire.LeaderSnapshot{
		Group: "g", Sender: "w01", Incarnation: 1, Seq: 8, Tombstone: true,
	})
	if ups := h.takeUpdates(); len(ups) != 1 || !ups[0].Tombstone {
		t.Fatalf("in-order tombstone published %+v, want one tombstone edge", h.updates)
	}
}

func TestGracefulStopUnsubscribes(t *testing.T) {
	h := newNode(t, nil)
	h.n.Subscribe("g1")
	h.n.Subscribe("g2")
	h.rt.settle()
	h.rt.take()
	h.n.Stop(true)
	var unsubs int
	for _, s := range h.rt.take() {
		if s.m.Kind() == wire.KindUnsubscribe {
			unsubs++
		}
	}
	if unsubs != 2 {
		t.Fatalf("graceful stop sent %d unsubscribes, want 2", unsubs)
	}
	// Nothing fires afterwards.
	h.rt.eng.RunFor(time.Minute)
	if out := h.rt.take(); len(out) != 0 {
		t.Fatalf("stopped client still sent %+v", out)
	}
}

func TestSnapshotForUnknownGroupAnsweredWithUnsubscribe(t *testing.T) {
	h := newNode(t, nil)
	h.n.HandleMessage(snapshot("w01", "ghost", 1, "w02", 6*time.Second))
	h.rt.settle()
	out := h.rt.take()
	if len(out) != 1 || out[0].m.Kind() != wire.KindUnsubscribe || out[0].to != "w01" {
		t.Fatalf("unknown-group snapshot answered with %+v, want UNSUBSCRIBE to w01", out)
	}
}

func TestMultiGroupTrafficCoalesces(t *testing.T) {
	h := newNode(t, nil)
	const groups = 8
	for i := 0; i < groups; i++ {
		h.n.Subscribe(id.Group(string(rune('a' + i))))
	}
	h.rt.settle()
	// All 8 SUBSCRIBEs to w01 must ride few datagrams, not 8.
	datagrams := len(h.rt.sent)
	msgs := len(h.rt.take())
	if msgs != groups {
		t.Fatalf("%d messages sent, want %d", msgs, groups)
	}
	if datagrams > 2 {
		t.Fatalf("%d datagrams for %d same-endpoint subscribes: coalescing broken", datagrams, groups)
	}
}
