// Package clientcore implements the client half of the remote client
// plane: the protocol state machine a non-member process runs to consult
// the leader election service over the wire.
//
// Mirroring the architecture of internal/core, the state machine is
// host-agnostic: the public client package drives it from a real-time
// event loop over UDP or the in-process transport, and the simulator
// drives whole client populations in virtual time. All entry points —
// message delivery, timer callbacks, API commands — must be serialised
// onto one logical event loop by the host.
//
// Per subscribed group the machine:
//
//   - SUBSCRIBEs to one service endpoint and caches the LeaderSnapshot it
//     returns, stamped with a lease;
//   - renews the lease every lease/3 with LEASE_RENEW (coalesced across
//     groups into one datagram by the shared outbound scheduler);
//   - treats the cached view as fresh until the lease runs out without a
//     snapshot — the staleness bound the client API advertises;
//   - on expiry or tombstone, fails over across the configured endpoints
//     (unsubscribing from the old one), with immediate rotation on
//     tombstones and paced retries once the whole list has been tried.
package clientcore

import (
	"math/rand"
	"time"

	"stableleader/id"
	"stableleader/internal/clock"
	"stableleader/internal/metrics"
	"stableleader/internal/outbound"
	"stableleader/internal/wire"
)

// Runtime is everything the client node needs from its host: a clock,
// timers, a transmit primitive and a deterministic random stream (jitter,
// endpoint spreading). The contract matches core.Runtime, so simnet's
// NodeRuntime serves both.
type Runtime interface {
	clock.Clock
	Send(to id.Process, m wire.Message)
	Rand() *rand.Rand
}

// DefaultTTL is the lease requested when Config.TTL is zero.
const DefaultTTL = 10 * time.Second

// coalesceDelay is how long client-plane sends may wait for companions
// bound to the same endpoint: long enough to merge a burst of per-group
// subscribes or renewals into one datagram, invisible against any lease.
const coalesceDelay = 2 * time.Millisecond

// failoverAfter is how many consecutive unanswered subscribe attempts the
// machine tolerates at one endpoint before rotating to the next.
const failoverAfter = 2

// Update is one observation published to the host: an accepted snapshot,
// a tombstone, or a staleness edge.
type Update struct {
	// Group is the group concerned.
	Group id.Group
	// Leader, LeaderIncarnation and Elected are the served leadership
	// view (the last known one on tombstone/stale updates).
	Leader            id.Process
	LeaderIncarnation int64
	Elected           bool
	// Tombstone reports that the serving endpoint stopped serving the
	// group; failover is already in progress.
	Tombstone bool
	// Stale reports that the lease ran out without a fresh snapshot: the
	// view may be outdated and must not be served as fresh.
	Stale bool
	// Changed reports whether the visible content (leadership, tombstone
	// or staleness) differs from the previously published update — hosts
	// use it to separate Watch-worthy events from silent lease refreshes.
	Changed bool
	// ServedBy is the service endpoint this view came from.
	ServedBy id.Process
	// At is the local adoption time; Expires is when the lease runs out.
	At      time.Time
	Expires time.Time
}

// Config parameterises a client node.
type Config struct {
	// Self is the client's process id (how snapshots find their way back).
	Self id.Process
	// Endpoints are the service nodes to consult, in preference order
	// before the per-node deterministic shuffle.
	Endpoints []id.Process
	// TTL is the lease to request (default DefaultTTL; the service clamps).
	TTL time.Duration
	// OnUpdate, if set, receives every accepted snapshot, staleness edge
	// and tombstone, on the host's event loop.
	OnUpdate func(Update)
	// Counters, when non-nil, receives outbound datagram accounting.
	Counters *metrics.PacketCounters
	// DisableCoalescing bypasses the outbound scheduler (ablation).
	DisableCoalescing bool
	// NoShuffle keeps Endpoints in the given order instead of spreading
	// initial load across them (tests want determinism relative to the
	// list, simulations want the spread).
	NoShuffle bool
}

// Node is one client process's state machine, multiplexing any number of
// group subscriptions over one endpoint list.
type Node struct {
	self id.Process
	inc  int64
	rt   Runtime
	cfg  Config
	out  *outbound.Scheduler
	// eps is the node's endpoint order: shuffled ONCE per client, shared
	// as the starting order by every subscription. Pinning all of one
	// client's groups to the same endpoint is what lets the server and
	// the renewal path coalesce its per-group traffic into per-client
	// datagrams; the population still spreads load because each client
	// shuffles differently.
	eps     []id.Process
	groups  map[id.Group]*groupSub
	stopped bool
}

// groupSub is one group's subscription state.
type groupSub struct {
	n   *Node
	gid id.Group
	// eps is this subscription's endpoint rotation order; epIdx the
	// current endpoint.
	eps   []id.Process
	epIdx int
	// attempts counts consecutive disappointments (unanswered subscribes,
	// tombstones) since the last accepted snapshot.
	attempts int
	// haveServer/serverInc/seq order snapshots from the current endpoint.
	haveServer bool
	serverInc  int64
	seq        uint64
	// last is the most recently published update; haveView marks it
	// meaningful.
	last     Update
	haveView bool
	stale    bool
	// succ/succInc/succLease hold the successor hint a departing endpoint
	// stages just before its tombstone (haveSucc marks it set): the next
	// tombstone from the same stream fails over to the named successor
	// without a stale window instead of probing blindly.
	succ      id.Process
	succInc   int64
	succLease time.Duration
	haveSucc  bool
	// leaseDur is the granted lease (the server may clamp the requested
	// TTL); renewals pace off it, not off the request.
	leaseDur time.Duration
	// renewTimer paces LEASE_RENEWs. It is armed by the first accepted
	// snapshot of a subscription and then re-arms ITSELF — snapshot
	// arrivals must not reset it, or the server's re-advertisements
	// (sent at least as often as lease/3) would perpetually defer the
	// renewal that is the only thing keeping the server-side lease
	// alive. renewArmed tracks whether the cycle is running.
	renewTimer clock.Rearmer
	renewArmed bool
	// deadTimer is the lease/subscribe deadline driving staleness edges
	// and failover.
	deadTimer clock.Rearmer
	removed   bool
}

// NewNode creates a client node. The incarnation distinguishes restarts,
// exactly like a service node's.
func NewNode(rt Runtime, cfg Config) *Node {
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	n := &Node{
		self:   cfg.Self,
		inc:    rt.Now().UnixNano(),
		rt:     rt,
		cfg:    cfg,
		groups: make(map[id.Group]*groupSub),
	}
	n.out = outbound.New(outbound.Config{
		Clock:    rt,
		Emit:     rt.Send,
		Counters: cfg.Counters,
		Disabled: cfg.DisableCoalescing,
	})
	n.eps = make([]id.Process, len(cfg.Endpoints))
	copy(n.eps, cfg.Endpoints)
	if !cfg.NoShuffle && len(n.eps) > 1 {
		rng := rt.Rand()
		for i := len(n.eps) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			n.eps[i], n.eps[j] = n.eps[j], n.eps[i]
		}
	}
	return n
}

// Self returns the client's process id.
func (n *Node) Self() id.Process { return n.self }

// Incarnation returns this client lifetime's incarnation number.
func (n *Node) Incarnation() int64 { return n.inc }

// Subscribe starts (or restarts) the subscription for g. It is
// asynchronous: the first Update arrives through OnUpdate once an endpoint
// answers.
func (n *Node) Subscribe(g id.Group) {
	if n.stopped {
		return
	}
	if _, ok := n.groups[g]; ok {
		return
	}
	sub := &groupSub{n: n, gid: g, eps: n.endpointOrder()}
	sub.renewTimer = clock.NewTimer(n.rt, sub.renewTick)
	sub.deadTimer = clock.NewTimer(n.rt, sub.deadTick)
	n.groups[g] = sub
	sub.sendSubscribe()
	sub.armRetry()
}

// Unsubscribe withdraws the subscription for g, telling the endpoint.
func (n *Node) Unsubscribe(g id.Group) {
	sub, ok := n.groups[g]
	if !ok {
		return
	}
	n.sendUnsubscribe(sub.currentEP(), g)
	n.out.Flush(sub.currentEP())
	sub.remove()
}

// Snapshot returns the last published update for g. ok is false before
// the first snapshot (or when g was never subscribed).
func (n *Node) Snapshot(g id.Group) (Update, bool) {
	sub, ok := n.groups[g]
	if !ok || !sub.haveView {
		return Update{}, false
	}
	return sub.last, true
}

// Stop halts the node. Graceful stops unsubscribe everywhere first (one
// coalesced datagram per endpoint); otherwise timers just die — crash
// semantics, the leases expire server-side.
func (n *Node) Stop(graceful bool) {
	if n.stopped {
		return
	}
	n.stopped = true
	for _, g := range id.SortedMapKeys(n.groups) {
		sub := n.groups[g]
		if graceful {
			n.sendUnsubscribe(sub.currentEP(), g)
		}
		sub.stopTimers()
	}
	if graceful {
		n.out.FlushAll()
	}
	n.out.Stop()
	n.groups = make(map[id.Group]*groupSub)
}

// HandleMessage dispatches one received datagram: a LeaderSnapshot or a
// SuccessorHint, or a Batch envelope whose inner messages dispatch
// individually. Hosts call it on the node's event loop; other kinds are
// ignored (a client shares transports with nothing else, but hostile
// traffic must be harmless).
//
//leadervet:hotpath
func (n *Node) HandleMessage(m wire.Message) {
	if n.stopped || m == nil {
		return
	}
	if b, ok := m.(*wire.Batch); ok {
		for _, inner := range b.Msgs {
			if n.stopped {
				return
			}
			switch t := inner.(type) {
			case *wire.LeaderSnapshot:
				n.handleSnapshot(t)
			case *wire.SuccessorHint:
				n.handleHint(t)
			}
		}
		return
	}
	switch t := m.(type) {
	case *wire.LeaderSnapshot:
		n.handleSnapshot(t)
	case *wire.SuccessorHint:
		n.handleHint(t)
	}
}

// endpointOrder returns this client's endpoint order (see Node.eps) as a
// fresh slice, so per-subscription failover rotation stays independent.
func (n *Node) endpointOrder() []id.Process {
	eps := make([]id.Process, len(n.eps))
	copy(eps, n.eps)
	return eps
}

// handleSnapshot is the receive path for one (possibly batched) snapshot.
//
//leadervet:hotpath
func (n *Node) handleSnapshot(m *wire.LeaderSnapshot) {
	sub, ok := n.groups[m.Group]
	if !ok {
		// Not subscribed (any more): tell the sender to stop. The
		// incarnation is ours, so a reordered copy cannot hurt a future
		// lifetime's subscription.
		n.sendUnsubscribe(m.Sender, m.Group)
		return
	}
	sub.handleSnapshot(m)
}

// handleHint is the receive path for a departing endpoint's successor
// hint. Unknown groups are simply dropped: the tombstone that follows the
// hint handles any unsubscribe bookkeeping.
func (n *Node) handleHint(m *wire.SuccessorHint) {
	if sub, ok := n.groups[m.Group]; ok {
		sub.handleHint(m)
	}
}

// sendUnsubscribe emits one UNSUBSCRIBE on the coalescing path.
func (n *Node) sendUnsubscribe(to id.Process, g id.Group) {
	if to == "" {
		return
	}
	n.out.Enqueue(to, &wire.Unsubscribe{
		Group: g, Sender: n.self, Incarnation: n.inc,
	}, coalesceDelay)
}

// --- per-group machinery ---------------------------------------------

// currentEP is the endpoint this subscription is pinned to.
func (sub *groupSub) currentEP() id.Process {
	if len(sub.eps) == 0 {
		return ""
	}
	return sub.eps[sub.epIdx%len(sub.eps)]
}

// retryEvery is the pacing of unanswered subscribe attempts: a quarter
// lease, clamped to stay responsive for long leases and gentle for short
// ones, jittered so client herds desynchronise.
func (sub *groupSub) retryEvery() time.Duration {
	d := sub.n.cfg.TTL / 4
	if d < 200*time.Millisecond {
		d = 200 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	jitter := 0.75 + 0.5*sub.n.rt.Rand().Float64()
	return time.Duration(float64(d) * jitter)
}

// sendSubscribe asks the current endpoint for a lease.
func (sub *groupSub) sendSubscribe() {
	ep := sub.currentEP()
	if ep == "" {
		return
	}
	sub.n.out.Enqueue(ep, &wire.Subscribe{
		Group:       sub.gid,
		Sender:      sub.n.self,
		Incarnation: sub.n.inc,
		TTL:         int64(sub.n.cfg.TTL),
	}, coalesceDelay)
}

// armRetry arms the deadline timer for an unanswered subscribe.
func (sub *groupSub) armRetry() {
	sub.deadTimer.Reset(sub.retryEvery())
}

// rotate moves to the next endpoint, withdrawing from the current one.
func (sub *groupSub) rotate() {
	if len(sub.eps) == 0 {
		return
	}
	sub.n.sendUnsubscribe(sub.currentEP(), sub.gid)
	sub.epIdx = (sub.epIdx + 1) % len(sub.eps)
	// A new endpoint is a new snapshot stream.
	sub.haveServer = false
	sub.seq = 0
	sub.serverInc = 0
	sub.haveSucc = false
}

// rotateTo re-pins the subscription to the named endpoint if it is in the
// rotation; otherwise it falls back to plain rotation.
func (sub *groupSub) rotateTo(ep id.Process) {
	for i, e := range sub.eps {
		if e != ep {
			continue
		}
		sub.n.sendUnsubscribe(sub.currentEP(), sub.gid)
		sub.epIdx = i
		sub.haveServer = false
		sub.seq = 0
		sub.serverInc = 0
		sub.haveSucc = false
		return
	}
	sub.rotate()
}

// handleSnapshot applies one snapshot from the wire.
func (sub *groupSub) handleSnapshot(m *wire.LeaderSnapshot) {
	if sub.removed || m.Sender != sub.currentEP() {
		// Stragglers from a rotated-away endpoint: already unsubscribed,
		// and its lease will expire; ignore.
		return
	}
	if sub.haveServer {
		if m.Incarnation < sub.serverInc {
			return // from before the endpoint's restart
		}
		if m.Incarnation == sub.serverInc && m.Seq <= sub.seq {
			// Reordered duplicate of an older view. Tombstones are not
			// exempt: the server bumps the sequence for them too, so a
			// duplicated old goodbye cannot tear down a newer healthy
			// subscription (and must not regress sub.seq below).
			return
		}
	}
	sub.haveServer = true
	sub.serverInc = m.Incarnation
	sub.seq = m.Seq

	now := sub.n.rt.Now()
	if m.Tombstone {
		if sub.haveSucc {
			sub.failoverToSuccessor(m, now)
			return
		}
		// The endpoint stopped serving the group: publish the edge (the
		// last view rides along as a stale hint), then fail over. After a
		// full lap of tombstoning endpoints, pace the retries instead of
		// spinning around the ring.
		sub.publish(Update{
			Group:             sub.gid,
			Leader:            m.Leader,
			LeaderIncarnation: m.LeaderIncarnation,
			Elected:           m.Elected,
			Tombstone:         true,
			Stale:             true,
			ServedBy:          m.Sender,
			At:                now,
		})
		sub.stale = true
		sub.stopRenewing()
		sub.attempts++
		sub.rotate()
		if sub.attempts%max(len(sub.eps), 1) != 0 {
			sub.sendSubscribe()
		}
		sub.armRetry()
		return
	}

	lease := time.Duration(m.Lease)
	if lease <= 0 {
		lease = sub.n.cfg.TTL
	}
	sub.attempts = 0
	sub.stale = false
	sub.haveSucc = false // a healthy snapshot supersedes any staged hint
	sub.leaseDur = lease
	sub.publish(Update{
		Group:             sub.gid,
		Leader:            m.Leader,
		LeaderIncarnation: m.LeaderIncarnation,
		Elected:           m.Elected,
		ServedBy:          m.Sender,
		At:                now,
		Expires:           now.Add(lease),
	})
	if !sub.renewArmed {
		sub.renewArmed = true
		sub.renewTimer.Reset(lease / 3)
	}
	sub.deadTimer.Reset(lease)
}

// handleHint stages a successor hint from the wire. It shares the
// snapshot stream's (incarnation, seq) ordering — the server numbers hints
// and tombstones from the same counter, hint first — so a reordered
// delivery (tombstone before hint) degrades to the reactive failover path
// rather than applying the hint late.
func (sub *groupSub) handleHint(m *wire.SuccessorHint) {
	if sub.removed || m.Sender != sub.currentEP() {
		return
	}
	if sub.haveServer {
		if m.Incarnation < sub.serverInc {
			return
		}
		if m.Incarnation == sub.serverInc && m.Seq <= sub.seq {
			return
		}
	}
	sub.haveServer = true
	sub.serverInc = m.Incarnation
	sub.seq = m.Seq
	sub.succ, sub.succInc = m.Successor, m.SuccessorInc
	sub.succLease = time.Duration(m.Lease)
	sub.haveSucc = m.Successor != ""
}

// failoverToSuccessor handles a tombstone whose stream carried a successor
// hint: the departing leader already handed the group to the named
// successor, so the client publishes the successor as the fresh leader —
// no stale window — and re-pins to the successor's endpoint for its next
// lease.
func (sub *groupSub) failoverToSuccessor(m *wire.LeaderSnapshot, now time.Time) {
	succ, succInc, lease := sub.succ, sub.succInc, sub.succLease
	sub.haveSucc = false
	if lease <= 0 {
		lease = sub.n.cfg.TTL
	}
	sub.attempts = 0
	sub.stale = false
	sub.leaseDur = lease
	sub.rotateTo(succ)
	sub.publish(Update{
		Group:             sub.gid,
		Leader:            succ,
		LeaderIncarnation: succInc,
		Elected:           true,
		ServedBy:          m.Sender,
		At:                now,
		Expires:           now.Add(lease),
	})
	sub.sendSubscribe()
	if !sub.renewArmed {
		sub.renewArmed = true
		sub.renewTimer.Reset(lease / 3)
	}
	sub.deadTimer.Reset(lease)
}

// renewTick extends the lease server-side; it re-arms itself — on the
// GRANTED lease's cadence, which may be shorter than the requested TTL —
// for as long as the subscription is healthy.
func (sub *groupSub) renewTick() {
	if sub.removed || sub.n.stopped || sub.stale {
		sub.renewArmed = false
		return
	}
	sub.n.out.Enqueue(sub.currentEP(), &wire.LeaseRenew{
		Group:       sub.gid,
		Sender:      sub.n.self,
		Incarnation: sub.n.inc,
		TTL:         int64(sub.n.cfg.TTL),
	}, coalesceDelay)
	lease := sub.leaseDur
	if lease <= 0 {
		lease = sub.n.cfg.TTL
	}
	sub.renewTimer.Reset(lease / 3)
}

// stopRenewing ends the renewal cycle (the next healthy snapshot
// restarts it).
func (sub *groupSub) stopRenewing() {
	sub.renewTimer.Stop()
	sub.renewArmed = false
}

// deadTick fires when the lease (or a subscribe attempt) ran out: publish
// the staleness edge once, then retry — rotating endpoints after
// failoverAfter consecutive disappointments.
func (sub *groupSub) deadTick() {
	if sub.removed || sub.n.stopped {
		return
	}
	if sub.haveView && !sub.stale {
		sub.stale = true
		sub.stopRenewing()
		up := sub.last
		up.Stale = true
		up.At = sub.n.rt.Now()
		sub.publish(up)
	}
	sub.attempts++
	if sub.attempts%failoverAfter == 0 {
		sub.rotate()
	}
	sub.sendSubscribe()
	sub.armRetry()
}

// publish stores and delivers one update, computing the Changed flag.
func (sub *groupSub) publish(up Update) {
	up.Changed = !sub.haveView ||
		sub.last.Leader != up.Leader ||
		sub.last.LeaderIncarnation != up.LeaderIncarnation ||
		sub.last.Elected != up.Elected ||
		sub.last.Tombstone != up.Tombstone ||
		sub.last.Stale != up.Stale
	sub.last = up
	sub.haveView = true
	if sub.n.cfg.OnUpdate != nil {
		sub.n.cfg.OnUpdate(up)
	}
}

// stopTimers quiesces the subscription's timers.
func (sub *groupSub) stopTimers() {
	sub.renewTimer.Stop()
	sub.deadTimer.Stop()
	sub.removed = true
}

// remove detaches the subscription from the node.
func (sub *groupSub) remove() {
	sub.stopTimers()
	delete(sub.n.groups, sub.gid)
}
