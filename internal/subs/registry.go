// Package subs implements the server half of the client plane: a sharded
// registry of remote subscribers that the election service keeps informed
// of leadership through lease-bounded LeaderSnapshot messages.
//
// The paper frames leader election as a *service* consulted by
// applications; members consult their in-process Group handle, but a
// production deployment also has non-member processes — frontends, load
// balancers, schedulers — that only need to know who leads. The registry
// turns those into cheap subscriptions:
//
//   - SUBSCRIBE registers a client under a lease and answers immediately
//     with the node's current view;
//   - every local leader-change edge fans a fresh snapshot out to the
//     group's subscribers;
//   - a staggered per-shard sweep re-advertises snapshots so a lost
//     change datagram heals well inside the lease;
//   - LEASE_RENEW extends the lease without data traffic; a lease that
//     expires unrenewed is dropped silently (the client crashed);
//   - leaving a group publishes tombstone snapshots so clients fail over
//     to another service node instead of timing out.
//
// Fan-out cost is what makes this viable at 10k+ subscribers per node:
// every non-urgent send goes through the node's outbound coalescing
// scheduler, so a client subscribed to G groups receives one datagram
// carrying G snapshots per re-advertisement round, and the sweep itself is
// sharded so no single tick touches more than 1/shards of the population.
// Lease expiry rides the host's timer plane (the hashed timer wheel in the
// real-time service) through one re-armable timer over an expiry heap —
// O(1) per protocol event, never O(clients).
//
// Like the protocol core, a Registry is single-threaded by contract: the
// host serialises message handlers, timer callbacks and publications onto
// one event loop.
package subs

import (
	"container/heap"
	"time"

	"stableleader/id"
	"stableleader/internal/clock"
	"stableleader/internal/obs"
	"stableleader/internal/wire"
)

// Defaults for Config fields left zero.
const (
	DefaultShards = 8
	DefaultTTL    = 10 * time.Second
	DefaultMinTTL = time.Second
	DefaultMaxTTL = time.Minute
	// DefaultMaxLeases bounds the registry: a flood of subscriptions
	// (hostile or misconfigured) degrades to tombstone refusals instead of
	// unbounded memory.
	DefaultMaxLeases = 65536
)

// View is one group's leadership as the node currently sees it — the
// payload of a snapshot, decoupled from the core's internal types.
type View struct {
	Leader      id.Process
	Incarnation int64
	Elected     bool
	At          time.Time
	// Successor, when set, names the member a departing leader handed the
	// group to (the warm standby). Tombstone publications carry it so
	// clients re-pin to the successor immediately instead of probing.
	Successor    id.Process
	SuccessorInc int64
}

// Config parameterises a Registry.
type Config struct {
	// Self and Incarnation identify the serving node in snapshots.
	Self        id.Process
	Incarnation int64
	// Clock provides time and timers (the host's event-loop clock; the
	// real-time service backs timers with its wheel).
	Clock clock.Clock
	// Send transmits one client-bound message. Urgent sends flush the
	// destination immediately (tombstones racing a transport close);
	// everything else takes the coalescing path.
	Send func(to id.Process, m wire.Message, urgent bool)
	// Leader returns the node's current view of g, and whether the node
	// serves g at all.
	Leader func(g id.Group) (View, bool)
	// Shards is the number of sweep shards (default DefaultShards).
	Shards int
	// MaxLeases caps registered (client, group) leases (default
	// DefaultMaxLeases). Excess subscribers get tombstones: "go elsewhere".
	MaxLeases int
	// TTL bounds: requested leases clamp into [MinTTL, MaxTTL]; zero
	// requests get DefaultLease.
	DefaultLease, MinTTL, MaxTTL time.Duration
	// Obs, when set, receives the client-plane counters (subscribes,
	// renews, fan-outs, lease expiries) on the host's event loop. Every
	// obs.Shard method is nil-safe, so the field may stay unset.
	Obs *obs.Shard
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.MaxLeases <= 0 {
		c.MaxLeases = DefaultMaxLeases
	}
	if c.DefaultLease <= 0 {
		c.DefaultLease = DefaultTTL
	}
	if c.MinTTL <= 0 {
		c.MinTTL = DefaultMinTTL
	}
	if c.MaxTTL <= 0 {
		c.MaxTTL = DefaultMaxTTL
	}
	if c.MaxTTL < c.MinTTL {
		c.MaxTTL = c.MinTTL
	}
	return c
}

// clientSub is one remote client's registration: its current lifetime and
// its per-group leases. Grouping leases client-major is what lets the
// sweep emit one coalesced datagram per client.
type clientSub struct {
	client id.Process
	inc    int64
	leases map[id.Group]*lease
}

// lease is one (client, group) subscription.
type lease struct {
	sub     *clientSub
	group   id.Group
	ttl     time.Duration
	expires time.Time
	// lastSnap is when this client last got a snapshot for the group (any
	// reason); the sweep re-advertises once it ages past ttl/3.
	lastSnap time.Time
	removed  bool
}

// shard is one sweep unit of the client population.
type shard struct {
	clients map[id.Process]*clientSub
}

// groupPub is the per-group publication state: the snapshot sequence and
// the reverse index from group to subscribed clients.
type groupPub struct {
	seq  uint64
	subs map[id.Process]*lease
}

// leaseEntry is one pending expiry check. Entries are lazily validated on
// pop: a renewed lease simply re-enters the heap at its new deadline.
type leaseEntry struct {
	at time.Time
	l  *lease
}

type leaseHeap []leaseEntry

func (h leaseHeap) Len() int            { return len(h) }
func (h leaseHeap) Less(i, j int) bool  { return h[i].at.Before(h[j].at) }
func (h leaseHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *leaseHeap) Push(x interface{}) { *h = append(*h, x.(leaseEntry)) }
func (h *leaseHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = leaseEntry{}
	*h = old[:n-1]
	return e
}

// Stats is a point-in-time summary of the registry.
type Stats struct {
	// Clients is the number of distinct subscribed client processes.
	Clients int
	// Leases is the number of (client, group) subscriptions.
	Leases int
}

// Registry is the sharded subscriber registry of one service node.
type Registry struct {
	cfg    Config
	shards []*shard
	groups map[id.Group]*groupPub
	leases int

	expiry      leaseHeap
	expiryTimer clock.Rearmer
	expiryAt    time.Time // instant expiryTimer is armed for; zero if unarmed

	sweepTimer clock.Rearmer
	sweepShard int
	sweepOn    bool
	// minTTL is the smallest lease granted since the registry last
	// emptied: the sweep cadence derives from it, so short-lease clients
	// are re-advertised inside THEIR ttl/3, not the default one. It only
	// shrinks (re-deriving a rising minimum on every expiry would buy
	// little and cost a scan); an empty registry resets it.
	minTTL time.Duration

	// clientScratch and groupScratch are reusable sorted-key buffers for
	// the fan-out and sweep iterations: a leader-change under 10k
	// subscribers must not allocate a fresh key slice per publication.
	// Safe as registry fields because the registry is single-threaded and
	// nothing downstream of a send re-enters the iterations.
	clientScratch []id.Process
	groupScratch  []id.Group

	stopped bool
}

// New returns an empty registry.
func New(cfg Config) *Registry {
	cfg = cfg.withDefaults()
	r := &Registry{cfg: cfg, groups: make(map[id.Group]*groupPub)}
	r.shards = make([]*shard, cfg.Shards)
	for i := range r.shards {
		r.shards[i] = &shard{clients: make(map[id.Process]*clientSub)}
	}
	r.expiryTimer = clock.NewTimer(cfg.Clock, r.expire)
	r.sweepTimer = clock.NewTimer(cfg.Clock, r.sweep)
	return r
}

// sweepEvery is the sweep timer period: each shard is visited once per
// minTTL/3 — the re-advertisement cadence that keeps every client's
// cache fresh through one lost datagram inside its own lease (the
// per-lease now-lastSnap check prevents over-sending to longer leases).
func (r *Registry) sweepEvery() time.Duration {
	ttl := r.minTTL
	if ttl <= 0 {
		ttl = r.cfg.DefaultLease
	}
	return ttl / 3 / time.Duration(r.cfg.Shards)
}

// shardFor hashes a client id onto a shard (FNV-1a).
func (r *Registry) shardFor(p id.Process) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= prime64
	}
	return r.shards[h%uint64(len(r.shards))]
}

// clampTTL applies the registry's lease bounds.
func (r *Registry) clampTTL(ns int64) time.Duration {
	ttl := time.Duration(ns)
	if ttl <= 0 {
		return r.cfg.DefaultLease
	}
	if ttl < r.cfg.MinTTL {
		return r.cfg.MinTTL
	}
	if ttl > r.cfg.MaxTTL {
		return r.cfg.MaxTTL
	}
	return ttl
}

// Stats summarises the current registration state.
func (r *Registry) Stats() Stats {
	s := Stats{Leases: r.leases}
	for _, sh := range r.shards {
		s.Clients += len(sh.clients)
	}
	return s
}

// HandleSubscribe registers (or refreshes) one client's subscription and
// answers with an immediate snapshot. Unserved groups and a full registry
// answer with a tombstone: the client's cue to try another endpoint. A
// subscribe from a superseded client lifetime is dropped silently — a
// tombstone would reach the client's CURRENT lifetime (tombstones carry
// no client incarnation) and tear down its healthy subscription.
func (r *Registry) HandleSubscribe(m *wire.Subscribe) {
	if r.stopped {
		return
	}
	r.cfg.Obs.Inc(obs.CSubscribes)
	view, ok := r.cfg.Leader(m.Group)
	if !ok {
		r.sendTombstone(m.Sender, m.Group, View{}, false)
		return
	}
	l, staleLifetime := r.ensureLease(m.Group, m.Sender, m.Incarnation, m.TTL)
	if staleLifetime {
		return
	}
	if l == nil {
		r.sendTombstone(m.Sender, m.Group, view, false)
		return
	}
	gp := r.groups[m.Group]
	gp.seq++
	r.sendSnapshot(l, gp.seq, view)
}

// HandleRenew extends a lease. An unknown registration (expired, or from a
// restarted node) is healed by treating the renew as a fresh subscribe —
// the client keeps working across server restarts without tracking them.
func (r *Registry) HandleRenew(m *wire.LeaseRenew) {
	if r.stopped {
		return
	}
	r.cfg.Obs.Inc(obs.CRenews)
	sh := r.shardFor(m.Sender)
	cs := sh.clients[m.Sender]
	if cs != nil && cs.inc == m.Incarnation {
		if l := cs.leases[m.Group]; l != nil {
			l.ttl = r.clampTTL(m.TTL)
			l.expires = r.cfg.Clock.Now().Add(l.ttl)
			r.scheduleExpiry(l)
			return
		}
	}
	r.HandleSubscribe(&wire.Subscribe{
		Group: m.Group, Sender: m.Sender, Incarnation: m.Incarnation, TTL: m.TTL,
	})
}

// HandleUnsubscribe withdraws one lease. The incarnation must match: a
// reordered unsubscribe from a client's previous lifetime must not tear
// down its successor.
func (r *Registry) HandleUnsubscribe(m *wire.Unsubscribe) {
	if r.stopped {
		return
	}
	r.cfg.Obs.Inc(obs.CUnsubscribes)
	sh := r.shardFor(m.Sender)
	cs := sh.clients[m.Sender]
	if cs == nil || cs.inc != m.Incarnation {
		return
	}
	if l := cs.leases[m.Group]; l != nil {
		r.dropLease(l)
	}
}

// PublishLeaderChange fans the new view out to every subscriber of g on
// the coalescing path — the interrupt-mode notification of the client
// plane, fired from the node's leader-change edge.
func (r *Registry) PublishLeaderChange(g id.Group, v View) {
	if r.stopped {
		return
	}
	gp := r.groups[g]
	if gp == nil || len(gp.subs) == 0 {
		return
	}
	gp.seq++
	r.clientScratch = id.AppendSortedMapKeys(r.clientScratch[:0], gp.subs)
	for _, c := range r.clientScratch {
		r.sendSnapshot(gp.subs[c], gp.seq, v)
	}
}

// PublishTombstone tells every subscriber of g that this node stopped
// serving it (graceful leave or shutdown), urgently — the transport may be
// about to close — and drops their leases.
func (r *Registry) PublishTombstone(g id.Group, v View) {
	if r.stopped {
		return
	}
	gp := r.groups[g]
	if gp == nil || len(gp.subs) == 0 {
		return
	}
	// The scratch snapshot (not live map iteration) is what makes the
	// dropLease mutations below safe.
	r.clientScratch = id.AppendSortedMapKeys(r.clientScratch[:0], gp.subs)
	for _, c := range r.clientScratch {
		l := gp.subs[c]
		if v.Successor != "" {
			r.sendSuccessorHint(l, v)
		}
		r.sendTombstone(c, g, v, true)
		r.dropLease(l)
	}
}

// sendSuccessorHint emits the where-to-next half of a goodbye: the member
// the departing leader handed the group to. It stages on the coalescing
// path so the urgent tombstone that follows flushes both in one datagram,
// hint first — a client that receives the pair fails over to the successor
// with no stale window, and one that sees only a lone or reordered
// tombstone (the hint's lower sequence is then rejected) degrades to the
// plain probing failover.
func (r *Registry) sendSuccessorHint(l *lease, v View) {
	gp := r.groups[l.group]
	gp.seq++
	r.cfg.Send(l.sub.client, &wire.SuccessorHint{
		Group:        l.group,
		Sender:       r.cfg.Self,
		Incarnation:  r.cfg.Incarnation,
		Seq:          gp.seq,
		Successor:    v.Successor,
		SuccessorInc: v.SuccessorInc,
		At:           viewAt(v),
		Lease:        int64(l.ttl),
	}, false)
}

// Stop halts the registry's timers without announcing anything (crash
// semantics; graceful paths publish tombstones through the core's leave).
func (r *Registry) Stop() {
	if r.stopped {
		return
	}
	r.stopped = true
	r.expiryTimer.Stop()
	r.sweepTimer.Stop()
}

// ensureLease finds or creates the lease for (client, g) under the client
// lifetime inc, extending its expiry. A nil lease means the registry is
// full; staleLifetime reports a message from before the client's restart,
// which callers must ignore entirely.
func (r *Registry) ensureLease(g id.Group, client id.Process, inc int64, ttlNS int64) (l *lease, staleLifetime bool) {
	sh := r.shardFor(client)
	cs := sh.clients[client]
	if cs != nil && inc < cs.inc {
		return nil, true
	}
	if cs != nil && inc > cs.inc {
		// The client restarted: its old leases die with the old lifetime.
		for _, gid := range id.SortedMapKeys(cs.leases) {
			r.dropLease(cs.leases[gid])
		}
		cs = nil
	}
	if cs == nil {
		if r.leases >= r.cfg.MaxLeases {
			return nil, false
		}
		cs = &clientSub{client: client, inc: inc, leases: make(map[id.Group]*lease)}
		sh.clients[client] = cs
	}
	l = cs.leases[g]
	if l == nil {
		if r.leases >= r.cfg.MaxLeases {
			if len(cs.leases) == 0 {
				delete(sh.clients, client)
			}
			return nil, false
		}
		l = &lease{sub: cs, group: g}
		cs.leases[g] = l
		gp := r.groups[g]
		if gp == nil {
			gp = &groupPub{subs: make(map[id.Process]*lease)}
			r.groups[g] = gp
		}
		gp.subs[client] = l
		r.leases++
	}
	l.ttl = r.clampTTL(ttlNS)
	l.expires = r.cfg.Clock.Now().Add(l.ttl)
	if r.minTTL == 0 || l.ttl < r.minTTL {
		shrunk := r.sweepOn && r.minTTL != 0
		r.minTTL = l.ttl
		if shrunk {
			// A finer cadence is now owed; the pending tick may be a full
			// old period away.
			r.sweepTimer.Reset(r.sweepEvery())
		}
	}
	if !r.sweepOn {
		r.sweepOn = true
		r.sweepTimer.Reset(r.sweepEvery())
	}
	r.scheduleExpiry(l)
	return l, false
}

// dropLease removes one lease (idempotent). Heap entries referencing it
// are invalidated lazily.
func (r *Registry) dropLease(l *lease) {
	if l.removed {
		return
	}
	l.removed = true
	delete(l.sub.leases, l.group)
	if len(l.sub.leases) == 0 {
		delete(r.shardFor(l.sub.client).clients, l.sub.client)
	}
	if gp := r.groups[l.group]; gp != nil {
		delete(gp.subs, l.sub.client)
		// gp itself stays for the node's lifetime even with no
		// subscribers: its Seq must never restart, or a client that
		// re-subscribes mid-stream would reject the fresh snapshots as
		// reordered duplicates of its higher last-seen sequence.
	}
	r.leases--
	if r.leases == 0 {
		r.minTTL = 0
		if r.sweepOn {
			r.sweepOn = false
			r.sweepTimer.Stop()
		}
	}
}

// scheduleExpiry enters l's deadline into the expiry plane, re-arming the
// single timer only when the earliest deadline moved earlier.
func (r *Registry) scheduleExpiry(l *lease) {
	heap.Push(&r.expiry, leaseEntry{at: l.expires, l: l})
	if r.expiryAt.IsZero() || l.expires.Before(r.expiryAt) {
		r.expiryAt = l.expires
		r.expiryTimer.Reset(l.expires.Sub(r.cfg.Clock.Now()))
	}
}

// expire is the expiry timer callback: drop every lease whose deadline
// passed unrenewed, skip stale heap entries, and re-arm at the new
// earliest deadline.
func (r *Registry) expire() {
	if r.stopped {
		return
	}
	now := r.cfg.Clock.Now()
	for len(r.expiry) > 0 {
		e := r.expiry[0]
		if e.at.After(now) {
			break
		}
		heap.Pop(&r.expiry)
		if e.l.removed {
			continue
		}
		if e.l.expires.After(now) {
			// Renewed since this entry was pushed: chase the new deadline.
			heap.Push(&r.expiry, leaseEntry{at: e.l.expires, l: e.l})
			continue
		}
		r.cfg.Obs.Inc(obs.CLeaseExpiries)
		r.dropLease(e.l)
	}
	if len(r.expiry) == 0 {
		r.expiryAt = time.Time{}
		return
	}
	r.expiryAt = r.expiry[0].at
	r.expiryTimer.Reset(r.expiryAt.Sub(now))
}

// sweep visits one shard per tick, re-advertising the current view to
// every lease that has not seen a snapshot for ttl/3 — loss repair and
// freshness bound in one staggered pass, never touching more than
// 1/shards of the population at once.
func (r *Registry) sweep() {
	if r.stopped {
		return
	}
	sh := r.shards[r.sweepShard]
	r.sweepShard = (r.sweepShard + 1) % len(r.shards)
	now := r.cfg.Clock.Now()
	// One tick of slack on the due check: a shard is revisited every
	// ticks×shards ≈ ttl/3, and without the slack a lease aging to
	// threshold just after its visit (or a rounding hair under it) waits
	// a whole extra round — halving the cadence its staleness bound needs.
	slack := r.sweepEvery()
	// Views and sequence bumps are resolved at most once per group per
	// tick; a nil entry marks a group the Leader callback disowned.
	type tickView struct {
		seq uint64
		v   View
		ok  bool
	}
	views := make(map[id.Group]*tickView)
	r.clientScratch = id.AppendSortedMapKeys(r.clientScratch[:0], sh.clients)
	for _, c := range r.clientScratch {
		cs := sh.clients[c]
		if cs == nil {
			continue // dropped by an earlier iteration of this tick
		}
		r.groupScratch = id.AppendSortedMapKeys(r.groupScratch[:0], cs.leases)
		for _, g := range r.groupScratch {
			l := cs.leases[g]
			if l == nil {
				continue
			}
			if now.Sub(l.lastSnap) < l.ttl/3-slack {
				continue
			}
			tv := views[g]
			if tv == nil {
				tv = &tickView{}
				tv.v, tv.ok = r.cfg.Leader(g)
				if tv.ok {
					gp := r.groups[g]
					gp.seq++
					tv.seq = gp.seq
				}
				views[g] = tv
			}
			if !tv.ok {
				// The node no longer serves g (shouldn't happen: leave
				// publishes tombstones and drops leases) — heal anyway.
				r.sendTombstone(c, g, View{}, false)
				r.dropLease(l)
				continue
			}
			r.sendSnapshot(l, tv.seq, tv.v)
		}
	}
	if r.sweepOn {
		r.sweepTimer.Reset(r.sweepEvery())
	}
}

// viewAt encodes a view's adoption time, mapping the zero time to zero.
func viewAt(v View) int64 {
	if v.At.IsZero() {
		return 0
	}
	return v.At.UnixNano()
}

// sendSnapshot emits one lease-stamped snapshot on the coalescing path.
// The struct comes from the send pool: under a 10k-subscriber fan-out the
// per-subscriber snapshot is the dominant allocation, and the consuming
// host recycles it the moment the bytes hit the wire (the view itself is
// shared by value — only the lease stamp differs per subscriber).
func (r *Registry) sendSnapshot(l *lease, seq uint64, v View) {
	r.cfg.Obs.Inc(obs.CSnapshotsSent)
	l.lastSnap = r.cfg.Clock.Now()
	m := wire.GetLeaderSnapshot()
	*m = wire.LeaderSnapshot{
		Group:             l.group,
		Sender:            r.cfg.Self,
		Incarnation:       r.cfg.Incarnation,
		Seq:               seq,
		Elected:           v.Elected,
		Leader:            v.Leader,
		LeaderIncarnation: v.Incarnation,
		At:                viewAt(v),
		Lease:             int64(l.ttl),
	}
	r.cfg.Send(l.sub.client, m, false) //leadervet:handoff — the host's send path releases it
}

// sendTombstone emits a final "not serving this group" snapshot. The last
// known view rides along as a stale hint for the client's failover. Each
// tombstone bumps the group's sequence so it passes the client's
// ordering guard like any snapshot — a duplicated old tombstone must not
// be able to tear down a later, healthy subscription. Unknown groups
// deliberately get seq 0 rather than a groupPub allocation: a spray of
// subscribes for unique group names must not grow server state, and the
// receiving client is necessarily on a fresh stream (no guard to pass).
func (r *Registry) sendTombstone(to id.Process, g id.Group, v View, urgent bool) {
	r.cfg.Obs.Inc(obs.CTombstones)
	var seq uint64
	if gp := r.groups[g]; gp != nil {
		gp.seq++
		seq = gp.seq
	}
	m := wire.GetLeaderSnapshot()
	*m = wire.LeaderSnapshot{
		Group:             g,
		Sender:            r.cfg.Self,
		Incarnation:       r.cfg.Incarnation,
		Seq:               seq,
		Elected:           v.Elected,
		Leader:            v.Leader,
		LeaderIncarnation: v.Incarnation,
		Tombstone:         true,
		At:                viewAt(v),
	}
	r.cfg.Send(to, m, urgent) //leadervet:handoff — the host's send path releases it
}
