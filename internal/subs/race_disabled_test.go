//go:build !race

package subs

// raceEnabled: see race_enabled_test.go.
const raceEnabled = false
