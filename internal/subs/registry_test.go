package subs

import (
	"fmt"
	"testing"
	"time"

	"stableleader/id"
	"stableleader/internal/clock"
	"stableleader/internal/obs"
	"stableleader/internal/simnet"
	"stableleader/internal/wire"
)

// clockAdapter exposes a simnet engine as a clock.Clock, so registry time
// is fully controlled by the test.
type clockAdapter struct{ eng *simnet.Engine }

func (c clockAdapter) Now() time.Time { return c.eng.Now() }
func (c clockAdapter) AfterFunc(d time.Duration, fn func()) clock.Timer {
	return c.eng.After(d, fn)
}

// sent records one registry emission.
type sent struct {
	to     id.Process
	m      *wire.LeaderSnapshot
	urgent bool
}

// harness wires a registry to a virtual clock and a capture sink.
type harness struct {
	eng    *simnet.Engine
	reg    *Registry
	out    []sent
	view   View
	served map[id.Group]bool
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{eng: simnet.NewEngine(1), served: map[id.Group]bool{"g": true}}
	h.view = View{Leader: "w01", Incarnation: 7, Elected: true, At: h.eng.Now()}
	cfg.Self = "w01"
	cfg.Incarnation = 1
	cfg.Clock = clockAdapter{h.eng}
	cfg.Send = func(to id.Process, m wire.Message, urgent bool) {
		snap, ok := m.(*wire.LeaderSnapshot)
		if !ok {
			t.Fatalf("registry sent a %T, want *wire.LeaderSnapshot", m)
		}
		cp := *snap
		h.out = append(h.out, sent{to: to, m: &cp, urgent: urgent})
	}
	cfg.Leader = func(g id.Group) (View, bool) {
		if !h.served[g] {
			return View{}, false
		}
		return h.view, true
	}
	h.reg = New(cfg)
	return h
}

func (h *harness) take() []sent {
	out := h.out
	h.out = nil
	return out
}

func TestSubscribeAnswersImmediately(t *testing.T) {
	h := newHarness(t, Config{})
	h.reg.HandleSubscribe(&wire.Subscribe{Group: "g", Sender: "c1", Incarnation: 5, TTL: int64(10 * time.Second)})
	out := h.take()
	if len(out) != 1 {
		t.Fatalf("subscribe produced %d sends, want 1", len(out))
	}
	m := out[0].m
	if out[0].to != "c1" || m.Group != "g" || !m.Elected || m.Leader != "w01" ||
		m.Tombstone || m.Lease != int64(10*time.Second) {
		t.Fatalf("bad subscribe answer: %+v", m)
	}
	if st := h.reg.Stats(); st.Clients != 1 || st.Leases != 1 {
		t.Fatalf("stats = %+v, want 1 client / 1 lease", st)
	}
}

func TestSubscribeUnservedGroupGetsTombstone(t *testing.T) {
	h := newHarness(t, Config{})
	h.reg.HandleSubscribe(&wire.Subscribe{Group: "nope", Sender: "c1", Incarnation: 5})
	out := h.take()
	if len(out) != 1 || !out[0].m.Tombstone {
		t.Fatalf("unserved group: got %+v, want one tombstone", out)
	}
	if st := h.reg.Stats(); st.Leases != 0 {
		t.Fatalf("unserved subscribe registered a lease: %+v", st)
	}
}

func TestLeaderChangeFansOutToSubscribersOnly(t *testing.T) {
	h := newHarness(t, Config{})
	for i := 0; i < 3; i++ {
		h.reg.HandleSubscribe(&wire.Subscribe{
			Group: "g", Sender: id.Process(fmt.Sprintf("c%d", i)), Incarnation: 1,
		})
	}
	h.take()
	h.view = View{Leader: "w02", Incarnation: 9, Elected: true, At: h.eng.Now()}
	h.reg.PublishLeaderChange("g", h.view)
	out := h.take()
	if len(out) != 3 {
		t.Fatalf("leader change fanned out %d snapshots, want 3", len(out))
	}
	// Deterministic order, same seq, fresh view.
	var lastSeq uint64
	for i, s := range out {
		if want := id.Process(fmt.Sprintf("c%d", i)); s.to != want {
			t.Errorf("fan-out %d went to %s, want %s (sorted order)", i, s.to, want)
		}
		if s.m.Leader != "w02" || s.urgent {
			t.Errorf("fan-out %d: %+v", i, s.m)
		}
		if i > 0 && s.m.Seq != lastSeq {
			t.Errorf("fan-out seq differs between clients: %d vs %d", s.m.Seq, lastSeq)
		}
		lastSeq = s.m.Seq
	}
	// A publication for a group with no subscribers is a no-op.
	h.reg.PublishLeaderChange("other", h.view)
	if out := h.take(); len(out) != 0 {
		t.Fatalf("no-subscriber publish sent %d messages", len(out))
	}
}

func TestLeaseExpiresUnrenewed(t *testing.T) {
	h := newHarness(t, Config{MinTTL: time.Second})
	h.reg.HandleSubscribe(&wire.Subscribe{Group: "g", Sender: "c1", Incarnation: 1, TTL: int64(2 * time.Second)})
	h.reg.HandleSubscribe(&wire.Subscribe{Group: "g", Sender: "c2", Incarnation: 1, TTL: int64(30 * time.Second)})
	h.take()

	// c1 renews once at 1.5s, then goes silent.
	h.eng.RunFor(1500 * time.Millisecond)
	h.reg.HandleRenew(&wire.LeaseRenew{Group: "g", Sender: "c1", Incarnation: 1, TTL: int64(2 * time.Second)})

	// At 3s c1's renewed lease (expires 3.5s) still lives.
	h.eng.RunFor(1500 * time.Millisecond)
	if st := h.reg.Stats(); st.Leases != 2 {
		t.Fatalf("leases at 3s = %d, want 2", st.Leases)
	}
	// At 4s c1 expired; c2 (30s lease) remains.
	h.eng.RunFor(time.Second)
	if st := h.reg.Stats(); st.Leases != 1 || st.Clients != 1 {
		t.Fatalf("stats after expiry = %+v, want c2 only", h.reg.Stats())
	}
	// Expired client's snapshots stop; c2 keeps receiving sweeps.
	h.take()
	h.eng.RunFor(20 * time.Second)
	for _, s := range h.take() {
		if s.to == "c1" {
			t.Fatalf("expired client still receives snapshots: %+v", s)
		}
	}
}

func TestRenewOfUnknownLeaseHealsAsSubscribe(t *testing.T) {
	h := newHarness(t, Config{})
	h.reg.HandleRenew(&wire.LeaseRenew{Group: "g", Sender: "c1", Incarnation: 1, TTL: int64(5 * time.Second)})
	out := h.take()
	if len(out) != 1 || out[0].m.Tombstone {
		t.Fatalf("healing renew answered %+v, want one snapshot", out)
	}
	if st := h.reg.Stats(); st.Leases != 1 {
		t.Fatalf("healing renew did not register: %+v", st)
	}
}

func TestStaleLifetimeSubscribeDroppedSilently(t *testing.T) {
	// A reordered SUBSCRIBE from a client's previous lifetime must be
	// ignored entirely: a tombstone reply carries no client incarnation,
	// so the client's CURRENT lifetime would accept it and tear down its
	// healthy subscription.
	h := newHarness(t, Config{})
	h.reg.HandleSubscribe(&wire.Subscribe{Group: "g", Sender: "c1", Incarnation: 2})
	h.take()
	h.reg.HandleSubscribe(&wire.Subscribe{Group: "g", Sender: "c1", Incarnation: 1})
	if out := h.take(); len(out) != 0 {
		t.Fatalf("stale-lifetime subscribe answered with %+v, want silence", out)
	}
	h.reg.HandleRenew(&wire.LeaseRenew{Group: "g", Sender: "c1", Incarnation: 1})
	if out := h.take(); len(out) != 0 {
		t.Fatalf("stale-lifetime renew answered with %+v, want silence", out)
	}
	if st := h.reg.Stats(); st.Leases != 1 {
		t.Fatalf("stale traffic disturbed the live lease: %+v", st)
	}
}

func TestSeqSurvivesLastSubscriberDropping(t *testing.T) {
	// The per-group snapshot sequence must be monotone for the node's
	// lifetime: if it restarted when the last subscriber dropped, a
	// client re-subscribing mid-stream would reject the fresh snapshots
	// as reordered duplicates of its higher last-seen sequence.
	h := newHarness(t, Config{})
	h.reg.HandleSubscribe(&wire.Subscribe{Group: "g", Sender: "c1", Incarnation: 1})
	for i := 0; i < 5; i++ {
		h.reg.PublishLeaderChange("g", h.view)
	}
	out := h.take()
	before := out[len(out)-1].m.Seq
	h.reg.HandleUnsubscribe(&wire.Unsubscribe{Group: "g", Sender: "c1", Incarnation: 1})
	h.reg.HandleSubscribe(&wire.Subscribe{Group: "g", Sender: "c1", Incarnation: 1})
	out = h.take()
	if len(out) != 1 || out[0].m.Seq <= before {
		t.Fatalf("seq after re-subscribe = %d, want > %d (monotone across empty registry)",
			out[0].m.Seq, before)
	}
}

func TestSweepCadenceFollowsShortestLease(t *testing.T) {
	// A client granted a lease shorter than the default must be
	// re-advertised inside ITS ttl/3, or it would trip its staleness
	// deadline every lease period in steady state.
	h := newHarness(t, Config{MinTTL: time.Second})
	h.reg.HandleSubscribe(&wire.Subscribe{Group: "g", Sender: "c1", Incarnation: 1, TTL: int64(2 * time.Second)})
	h.take()
	// Renew continuously; count snapshots over 12s. Cadence ttl/3 ≈ 666ms
	// → expect ~18, and certainly enough that no 2s window is dry.
	for i := 0; i < 48; i++ {
		h.eng.RunFor(250 * time.Millisecond)
		h.reg.HandleRenew(&wire.LeaseRenew{Group: "g", Sender: "c1", Incarnation: 1, TTL: int64(2 * time.Second)})
	}
	n := len(h.take())
	if n < 12 {
		t.Fatalf("short-lease client got %d re-advertisements over 12s, want ~18 (ttl/3 cadence)", n)
	}
}

func TestClientRestartSupersedesOldLifetime(t *testing.T) {
	h := newHarness(t, Config{})
	h.reg.HandleSubscribe(&wire.Subscribe{Group: "g", Sender: "c1", Incarnation: 1})
	h.reg.HandleSubscribe(&wire.Subscribe{Group: "g", Sender: "c1", Incarnation: 2})
	h.take()
	// A straggler from the old lifetime must not tear down the new lease.
	h.reg.HandleUnsubscribe(&wire.Unsubscribe{Group: "g", Sender: "c1", Incarnation: 1})
	if st := h.reg.Stats(); st.Leases != 1 {
		t.Fatalf("stale unsubscribe dropped the successor lease: %+v", st)
	}
	h.reg.HandleUnsubscribe(&wire.Unsubscribe{Group: "g", Sender: "c1", Incarnation: 2})
	if st := h.reg.Stats(); st.Leases != 0 || st.Clients != 0 {
		t.Fatalf("unsubscribe left state behind: %+v", st)
	}
}

func TestSweepReadvertisesWithinLease(t *testing.T) {
	h := newHarness(t, Config{DefaultLease: 6 * time.Second})
	h.reg.HandleSubscribe(&wire.Subscribe{Group: "g", Sender: "c1", Incarnation: 1})
	h.take()
	// Keep the lease alive and count sweep-driven snapshots over 30s: the
	// cadence is one per ttl/3 = 2s, so expect roughly 15 (one may be in
	// flight at either edge).
	for i := 0; i < 30; i++ {
		h.eng.RunFor(time.Second)
		h.reg.HandleRenew(&wire.LeaseRenew{Group: "g", Sender: "c1", Incarnation: 1})
	}
	n := len(h.take())
	if n < 12 || n > 18 {
		t.Fatalf("sweep sent %d re-advertisements over 30s, want ~15 (ttl/3 cadence)", n)
	}
}

func TestTombstoneFanOutDropsLeases(t *testing.T) {
	h := newHarness(t, Config{})
	for i := 0; i < 4; i++ {
		h.reg.HandleSubscribe(&wire.Subscribe{
			Group: "g", Sender: id.Process(fmt.Sprintf("c%d", i)), Incarnation: 1,
		})
	}
	h.take()
	h.reg.PublishTombstone("g", h.view)
	out := h.take()
	if len(out) != 4 {
		t.Fatalf("tombstone fan-out sent %d, want 4", len(out))
	}
	for _, s := range out {
		if !s.m.Tombstone || !s.urgent {
			t.Fatalf("tombstone send not urgent+marked: %+v", s)
		}
		if s.m.Leader != "w01" || !s.m.Elected {
			t.Fatalf("tombstone lost the stale-hint view: %+v", s.m)
		}
	}
	if st := h.reg.Stats(); st.Leases != 0 || st.Clients != 0 {
		t.Fatalf("tombstone left registrations: %+v", st)
	}
	// Afterwards nothing fires: timers are quiesced.
	h.eng.RunFor(time.Minute)
	if out := h.take(); len(out) != 0 {
		t.Fatalf("post-tombstone traffic: %d sends", len(out))
	}
}

func TestMaxLeasesRefusesWithTombstone(t *testing.T) {
	h := newHarness(t, Config{MaxLeases: 2})
	h.reg.HandleSubscribe(&wire.Subscribe{Group: "g", Sender: "c1", Incarnation: 1})
	h.reg.HandleSubscribe(&wire.Subscribe{Group: "g", Sender: "c2", Incarnation: 1})
	h.take()
	h.reg.HandleSubscribe(&wire.Subscribe{Group: "g", Sender: "c3", Incarnation: 1})
	out := h.take()
	if len(out) != 1 || !out[0].m.Tombstone {
		t.Fatalf("over-capacity subscribe answered %+v, want a tombstone", out)
	}
	if st := h.reg.Stats(); st.Leases != 2 {
		t.Fatalf("capacity breached: %+v", st)
	}
}

func TestTTLClamping(t *testing.T) {
	h := newHarness(t, Config{MinTTL: 2 * time.Second, MaxTTL: 20 * time.Second})
	cases := []struct {
		req  int64
		want time.Duration
	}{
		{0, DefaultTTL},
		{int64(time.Millisecond), 2 * time.Second},
		{int64(time.Hour), 20 * time.Second},
		{int64(5 * time.Second), 5 * time.Second},
	}
	for i, c := range cases {
		h.reg.HandleSubscribe(&wire.Subscribe{
			Group: "g", Sender: id.Process(fmt.Sprintf("c%d", i)), Incarnation: 1, TTL: c.req,
		})
		out := h.take()
		if len(out) != 1 || out[0].m.Lease != int64(c.want) {
			t.Errorf("TTL %d granted %v, want %v", c.req, time.Duration(out[0].m.Lease), c.want)
		}
	}
}

func TestShardingSpreadsSweepLoad(t *testing.T) {
	// With many clients, a single sweep tick must not re-advertise the
	// whole population at once: that is the burst the sharding exists to
	// prevent.
	h := newHarness(t, Config{Shards: 8, DefaultLease: 6 * time.Second})
	const clients = 200
	for i := 0; i < clients; i++ {
		h.reg.HandleSubscribe(&wire.Subscribe{
			Group: "g", Sender: id.Process(fmt.Sprintf("c%03d", i)), Incarnation: 1,
		})
	}
	h.take()
	// Nothing is due before ttl/3 = 2s; the first tick past that covers
	// exactly one shard, so expect ~clients/8 sends — never a burst that
	// touches most of the population at once.
	h.eng.RunFor(2*time.Second + h.reg.sweepEvery()/2)
	perTick := len(h.take())
	if perTick == 0 {
		t.Fatal("no sweep traffic at all")
	}
	if perTick > clients/2 {
		t.Fatalf("one stagger window re-advertised %d of %d clients: sweep is not sharded", perTick, clients)
	}
}

// BenchmarkFanout measures the per-subscriber cost of a leader-change
// publication — the hot multiplier when a leader crashes under 10k
// watchers. The Send sink releases each emitted snapshot exactly like the
// real-time host does after marshalling, so the benchmark exercises the
// send pool's steady state rather than its cold misses. The obs shard is
// wired as the service runtime wires it, so the per-snapshot counter
// increment is part of the measured (production) path.
func BenchmarkFanout(b *testing.B) {
	eng := simnet.NewEngine(1)
	var sink int
	reg := New(Config{
		Self: "w01", Incarnation: 1, Clock: clockAdapter{eng},
		Send: func(_ id.Process, m wire.Message, _ bool) {
			sink++
			wire.ReleaseOutbound(m)
		},
		Leader: func(id.Group) (View, bool) { return View{Leader: "w01", Elected: true}, true },
		Obs:    obs.NewRegistry(1, 0).Shard(0),
	})
	const subscribers = 1000
	for i := 0; i < subscribers; i++ {
		reg.HandleSubscribe(&wire.Subscribe{
			Group: "g", Sender: id.Process(fmt.Sprintf("c%04d", i)), Incarnation: 1,
			TTL: int64(time.Hour),
		})
	}
	v := View{Leader: "w02", Incarnation: 3, Elected: true, At: eng.Now()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.PublishLeaderChange("g", v)
	}
	// ns/op here is the cost of ONE full 1000-subscriber fan-out; divide
	// by 1000 for the per-subscriber price.
}

// TestFanoutAllocBudget pins the fan-out's allocation profile: one
// 1000-subscriber leader-change publication must stay under 8 allocations
// (it was 1001 before the snapshot send pool and the sorted-key scratch —
// one struct per subscriber plus the key slice). Asserted, not just
// benchmarked, so a regression fails CI instead of drifting in a profile.
func TestFanoutAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector; alloc counts are nondeterministic")
	}
	eng := simnet.NewEngine(1)
	reg := New(Config{
		Self: "w01", Incarnation: 1, Clock: clockAdapter{eng},
		Send: func(_ id.Process, m wire.Message, _ bool) {
			wire.ReleaseOutbound(m)
		},
		Leader: func(id.Group) (View, bool) { return View{Leader: "w01", Elected: true}, true },
		Obs:    obs.NewRegistry(1, 0).Shard(0),
	})
	const subscribers = 1000
	for i := 0; i < subscribers; i++ {
		reg.HandleSubscribe(&wire.Subscribe{
			Group: "g", Sender: id.Process(fmt.Sprintf("c%04d", i)), Incarnation: 1,
			TTL: int64(time.Hour),
		})
	}
	v := View{Leader: "w02", Incarnation: 3, Elected: true, At: eng.Now()}
	reg.PublishLeaderChange("g", v) // warm the pool and the scratch buffers
	allocs := testing.AllocsPerRun(20, func() {
		reg.PublishLeaderChange("g", v)
	})
	if allocs > 8 {
		t.Fatalf("1000-subscriber fan-out allocated %.0f objects/op, budget is 8 (was 1001 before pooling)", allocs)
	}
}
