//go:build race

package subs

// raceEnabled reports that this binary runs under the race detector,
// where sync.Pool deliberately drops a fraction of Puts to shake out
// misuse — making allocation counts on pooled paths nondeterministic.
const raceEnabled = true
