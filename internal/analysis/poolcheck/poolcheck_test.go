package poolcheck_test

import (
	"testing"

	"stableleader/internal/analysis/poolcheck"
	"stableleader/internal/analysis/vettest"
)

func TestPoolCheck(t *testing.T) {
	vettest.Run(t, poolcheck.Analyzer, "testdata/a")
}
