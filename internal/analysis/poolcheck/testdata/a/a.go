// Package a is the poolcheck fixture: a miniature buffer pool with
// acquire/release contracts.
package a

// get hands the caller a pooled buffer.
//
//leadervet:acquires
func get() []byte { return nil }

// put returns b to the pool.
//
//leadervet:releases b
func put(b []byte) {}

// use is a plain consumer with no ownership effect.
func use(b []byte) {}

func releaseOnStraightLine() {
	b := get()
	b = append(b, 1)
	put(b)
}

func releaseViaDefer() {
	b := get()
	defer put(b)
	use(b)
}

func releaseReslice() {
	b := get()
	use(b)
	put(b[:0])
}

func selfReslice(n int) {
	b := get()
	b = b[:n]
	b = append(b, 1)
	put(b)
}

var sink []byte

// scatter mirrors the service's steer: the pooled slice is released and
// replaced on the too-small path, resliced in place otherwise, and the
// survivor's ownership leaves by handoff. No path leaks.
func scatter() {
	b := get()
	if cap(b) == 0 {
		put(b)
		b = make([]byte, 4)
	} else {
		b = b[:1]
	}
	use(b)
	sink = b //leadervet:handoff — ownership moves to the sink
}

func leak() {
	b := get() // want `pooled value from get is not released before this function returns`
	use(b)
}

func discard() {
	get() // want `result of get is a pooled value \(//leadervet:acquires\) but is discarded`
}

func discardBlank() {
	_ = get() // want `pooled result 0 of get is discarded`
}

func doubleRelease() {
	b := get()
	put(b)
	put(b) // want `pooled value from get released twice`
}

func useAfterRelease() {
	b := get()
	put(b)
	use(b[:1]) // want `pooled value from get used after release`
}

func conditionalLeak(x bool) {
	b := get() // want `pooled value from get is not released on some paths`
	if x {
		put(b)
	}
}

func releaseBothArms(x bool) {
	b := get()
	if x {
		put(b)
	} else {
		put(b)
	}
}

func overwrite() {
	b := get()
	b = nil // want `pooled value from get overwritten before release`
	use(b)
}

func escapeUnannotated() []byte {
	b := get()
	return b // want `pooled value from get returned by escapeUnannotated, which is not annotated //leadervet:acquires`
}

// forward passes ownership to its own caller, declared loudly.
//
//leadervet:acquires
func forward() []byte {
	b := get()
	return b
}

type carrier struct{ buf []byte }

func handoff(c *carrier) {
	b := get()
	c.buf = b //leadervet:handoff — ownership moves into the carrier
}
