// Package poolcheck defines the leadervet analyzer enforcing the
// pooled-value ownership contracts of the wire plane: values obtained
// from the pooled codecs (Inbox.Decode/TakeSlice, GetLeaderSnapshot,
// the send pool) must be released exactly once on every control-flow
// path, and never used after release.
//
// The contracts are declared with two function directives:
//
//	//leadervet:acquires [i]   — the caller receives ownership of
//	                             result i (default 0) and must release
//	                             it on every path
//	//leadervet:releases name  — calling this function consumes the
//	                             argument bound to parameter (or
//	                             receiver) name; it no longer needs
//	                             releasing, and must not be used again
//
// Both are exported as facts, so callers in other packages are checked
// against contracts declared next to the pool implementations.
//
// Ownership can leave a function legitimately: returning the value
// (the enclosing function must itself be //leadervet:acquires),
// storing it into a struct/slice/map/channel, capturing it in a
// closure, or passing the line through //leadervet:handoff (an
// explicit, audited transfer — the steered inbound plane's refcounted
// carriers). After any of these the analyzer stops tracking; the
// receiving structure's discipline is covered by its own annotations
// and tests.
//
// The analysis is per-function over the control-flow graph, tracking
// one acquired variable at a time: definitely-live, definitely-
// released, or maybe-both (a path-dependent state, reported when it
// can leak). _test.go files are exempt — harnesses legitimately retain
// messages for inspection, and the pools degrade gracefully to
// allocation.
package poolcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"

	"stableleader/internal/analysis/directive"
)

// Analyzer is the poolcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "poolcheck",
	Doc:       "check that pooled values (//leadervet:acquires) are released exactly once on every path and never used after release",
	URL:       "https://pkg.go.dev/stableleader/internal/analysis/poolcheck",
	Requires:  []*analysis.Analyzer{ctrlflow.Analyzer},
	FactTypes: []analysis.Fact{(*acquiresFact)(nil), (*releasesFact)(nil)},
	Run:       run,
}

// acquiresFact marks a function whose result Result transfers pool
// ownership to the caller.
type acquiresFact struct{ Result int }

func (*acquiresFact) AFact()           {}
func (f *acquiresFact) String() string { return fmt.Sprintf("acquires(%d)", f.Result) }

// releasesFact marks a function that consumes pooled arguments.
// Indices are parameter positions; -1 is the method receiver.
type releasesFact struct{ Indices []int }

func (*releasesFact) AFact()           {}
func (f *releasesFact) String() string { return fmt.Sprintf("releases%v", f.Indices) }

// ownership state bits for the tracked value.
const (
	stLive = 1 << iota // acquired, not yet released
	stRel              // released
	stEsc              // ownership transferred elsewhere; tracking over
)

func run(pass *analysis.Pass) (interface{}, error) {
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	lines := make(map[*token.File]*directive.Lines)
	for _, f := range pass.Files {
		lines[pass.Fset.File(f.Pos())] = directive.FileLines(pass.Fset, f)
	}
	lineDir := func(pos token.Pos, name string) bool {
		return lines[pass.Fset.File(pos)].Has(pos, name)
	}

	// Pass 1: collect and export the package's own contracts.
	local := map[*types.Func]*contracts{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c := &contracts{}
			if d, ok := directive.Find(fd.Doc, "acquires"); ok {
				idx := 0
				if len(d.Args) > 0 {
					if i, err := strconv.Atoi(d.Args[0]); err == nil {
						idx = i
					} else {
						pass.Reportf(d.Pos, "leadervet:acquires argument %q is not a result index", d.Args[0])
					}
				}
				c.acquires = &acquiresFact{Result: idx}
				pass.ExportObjectFact(obj, c.acquires)
			}
			for _, d := range directive.Parse(fd.Doc) {
				if d.Name != "releases" {
					continue
				}
				if c.releases == nil {
					c.releases = &releasesFact{}
				}
				for _, name := range d.Args {
					i, ok := bindingIndex(obj, fd, name)
					if !ok {
						pass.Reportf(d.Pos, "leadervet:releases on %s names unknown parameter %q", fd.Name.Name, name)
						continue
					}
					c.releases.Indices = append(c.releases.Indices, i)
				}
			}
			if c.releases != nil && len(c.releases.Indices) > 0 {
				pass.ExportObjectFact(obj, c.releases)
			}
			if c.acquires != nil || c.releases != nil {
				local[obj] = c
			}
		}
	}

	oracle := &oracle{pass: pass, local: local}

	// Pass 2: analyze every function body.
	for _, file := range pass.Files {
		if directive.InTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g := cfgs.FuncDecl(fd)
			if g == nil {
				continue
			}
			checkFunc(pass, oracle, fd, g, lineDir)
		}
	}
	return nil, nil
}

type contracts struct {
	acquires *acquiresFact
	releases *releasesFact
}

// oracle answers contract queries for local and imported functions.
type oracle struct {
	pass  *analysis.Pass
	local map[*types.Func]*contracts
}

func (o *oracle) acquires(fn *types.Func) (*acquiresFact, bool) {
	if fn == nil {
		return nil, false
	}
	if c, ok := o.local[fn]; ok && c.acquires != nil {
		return c.acquires, true
	}
	var fact acquiresFact
	if o.pass.ImportObjectFact(fn, &fact) {
		return &fact, true
	}
	return nil, false
}

func (o *oracle) releases(fn *types.Func) (*releasesFact, bool) {
	if fn == nil {
		return nil, false
	}
	if c, ok := o.local[fn]; ok && c.releases != nil {
		return c.releases, true
	}
	var fact releasesFact
	if o.pass.ImportObjectFact(fn, &fact) {
		return &fact, true
	}
	return nil, false
}

// bindingIndex resolves a directive name to the receiver (-1) or a
// parameter index of fd.
func bindingIndex(fn *types.Func, fd *ast.FuncDecl, name string) (int, bool) {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		for _, n := range fd.Recv.List[0].Names {
			if n.Name == name {
				return -1, true
			}
		}
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Name() == name {
			return i, true
		}
	}
	return 0, false
}

// staticCallee resolves the called function object, if static.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// acquire is one tracked acquisition site.
type acquire struct {
	stmt            *ast.AssignStmt // the acquiring assignment
	obj             types.Object    // the variable holding the pooled value
	callee          *types.Func     // for diagnostics
	deferredRelease bool            // a defer releases it on every exit
}

// checkFunc analyzes one function body.
func checkFunc(pass *analysis.Pass, o *oracle, fd *ast.FuncDecl, g *cfg.CFG, lineDir func(token.Pos, string) bool) {
	funcAcquires := false
	if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		if _, ok := o.acquires(obj); ok {
			funcAcquires = true
		}
	}

	// Collect acquire sites (and flag discarded acquisitions).
	var acquires []*acquire
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures are independent scopes; see package doc
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if fn := staticCallee(pass, call); fn != nil {
					if _, ok := o.acquires(fn); ok && !lineDir(n.Pos(), "ignore") {
						pass.Reportf(n.Pos(), "result of %s is a pooled value (//leadervet:acquires) but is discarded: it leaks from the pool", fn.Name())
					}
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(pass, call)
			if fn == nil {
				return true
			}
			fact, ok := o.acquires(fn)
			if !ok {
				return true
			}
			if fact.Result >= len(n.Lhs) {
				return true
			}
			id, ok := n.Lhs[fact.Result].(*ast.Ident)
			if !ok || id.Name == "_" {
				if !lineDir(n.Pos(), "ignore") {
					pass.Reportf(n.Pos(), "pooled result %d of %s is discarded: it leaks from the pool", fact.Result, fn.Name())
				}
				return true
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				return true
			}
			acquires = append(acquires, &acquire{stmt: n, obj: obj, callee: fn})
		}
		return true
	})
	if len(acquires) == 0 {
		return
	}

	// Deferred releases cover every exit.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			_ = fl
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		for _, a := range acquires {
			if releasesObj(pass, o, d.Call, a.obj) {
				a.deferredRelease = true
			}
		}
		return true
	})

	for _, a := range acquires {
		checkAcquire(pass, o, fd, g, a, funcAcquires, lineDir)
	}
}

// releasesObj reports whether call releases obj: obj appears as an
// argument (or receiver) the callee's releases contract covers.
func releasesObj(pass *analysis.Pass, o *oracle, call *ast.CallExpr, obj types.Object) bool {
	fn := staticCallee(pass, call)
	if fn == nil {
		return false
	}
	rel, ok := o.releases(fn)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	for _, idx := range rel.Indices {
		if idx == -1 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if isObjExpr(pass, sel.X, obj) {
					return true
				}
			}
			continue
		}
		if sig.Variadic() && idx == sig.Params().Len()-1 {
			for i := idx; i < len(call.Args); i++ {
				if isObjExpr(pass, call.Args[i], obj) {
					return true
				}
			}
			continue
		}
		if idx < len(call.Args) && isObjExpr(pass, call.Args[idx], obj) {
			return true
		}
	}
	return false
}

// isObjExpr reports whether e is (a reslice of) the identifier obj:
// v, (v), v[:0], v[:n] all denote the same pooled allocation.
func isObjExpr(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(sl.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	return pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] == obj
}

// mentions reports whether the subtree mentions obj at all.
func mentions(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok {
			if pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkAcquire runs the must-release dataflow for one acquisition.
func checkAcquire(pass *analysis.Pass, o *oracle, fd *ast.FuncDecl, g *cfg.CFG, a *acquire, funcAcquires bool, lineDir func(token.Pos, string) bool) {
	// IN state per block; fixpoint over the CFG.
	in := make(map[*cfg.Block]int)
	reported := map[string]bool{}
	reportf := func(pos token.Pos, format string, args ...interface{}) {
		if lineDir(pos, "ignore") {
			return
		}
		key := fmt.Sprintf("%d:%s", pos, format)
		if reported[key] {
			return
		}
		reported[key] = true
		pass.Reportf(pos, format, args...)
	}

	// transfer applies one node's effect to the state. When report is
	// set, diagnostics are emitted (the final pass).
	transfer := func(n ast.Node, st int, report bool) int {
		if !mentions(pass, n, a.obj) {
			if as, ok := n.(*ast.AssignStmt); ok && as == a.stmt {
				// Defensive: the acquire statement always mentions obj.
				_ = as
			}
			return st
		}
		// The acquiring statement itself.
		if n == ast.Node(a.stmt) {
			if st&stLive != 0 && report {
				reportf(a.stmt.Pos(), "pooled value from %s reacquired before the previous one was released", a.callee.Name())
			}
			return stLive
		}
		if st == 0 || st == stEsc {
			// Not yet acquired on this path, or handed off on every
			// path. A mixed state (escaped on one path, live on
			// another) keeps tracking: the live component still needs a
			// release or escape of its own.
			return st
		}
		// Explicit handoff annotation on this line.
		if lineDir(n.Pos(), "handoff") {
			return stEsc
		}
		// A deferred release runs at exit, not here: its effect is
		// modeled by deferredRelease, so the statement is a no-op now.
		if d, ok := n.(*ast.DeferStmt); ok && releasesObj(pass, o, d.Call, a.obj) {
			return st
		}

		released := st&stRel != 0 && st&stLive == 0

		// Classify every mention of obj inside the node.
		esc := false
		rel := false
		leakOverwrite := false
		var relPos, escPos, usePos token.Pos
		var escWhat string
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.FuncLit:
				if mentions(pass, c, a.obj) {
					esc, escPos, escWhat = true, c.Pos(), "captured by a closure"
				}
				return false
			case *ast.CallExpr:
				if releasesObj(pass, o, c, a.obj) {
					rel, relPos = true, c.Pos()
					return false // args of a releasing call are the release itself
				}
			case *ast.AssignStmt:
				for i, l := range c.Lhs {
					if !isObjExpr(pass, l, a.obj) || c == a.stmt {
						continue
					}
					// v = append(v, ...) and v = v[:n] keep the same
					// pooled allocation: tracking continues.
					if i < len(c.Rhs) && isSelfUpdate(pass, c.Rhs[i], a.obj) {
						continue
					}
					// Reassignment: the live pooled value would be
					// overwritten and leak.
					leakOverwrite, escPos = true, c.Pos()
					escWhat = "overwritten by reassignment"
				}
				for _, r := range c.Rhs {
					if isObjExpr(pass, r, a.obj) && !isSelfAssign(pass, c, a.obj) {
						// Aliased or stored somewhere.
						esc, escPos, escWhat = true, c.Pos(), "stored or aliased"
					}
				}
			case *ast.CompositeLit:
				if mentions(pass, c, a.obj) {
					esc, escPos, escWhat = true, c.Pos(), "stored in a composite literal"
				}
				return false
			case *ast.SendStmt:
				if mentions(pass, c.Value, a.obj) {
					esc, escPos, escWhat = true, c.Pos(), "sent on a channel"
				}
			case *ast.ReturnStmt:
				if mentions(pass, c, a.obj) {
					esc, escPos, escWhat = true, c.Pos(), "returned"
				}
			case *ast.Ident:
				if (pass.TypesInfo.Uses[c] == a.obj || pass.TypesInfo.Defs[c] == a.obj) && !usePos.IsValid() {
					usePos = c.Pos()
				}
			}
			return true
		})

		switch {
		case rel:
			if released && report {
				reportf(relPos, "pooled value from %s released twice", a.callee.Name())
			}
			if a.deferredRelease && report {
				reportf(relPos, "pooled value from %s released here and again by a deferred call", a.callee.Name())
			}
			return stRel
		case leakOverwrite:
			if st&stLive != 0 && report {
				reportf(escPos, "pooled value from %s overwritten before release: it leaks from the pool (release it first)", a.callee.Name())
			}
			return stEsc
		case esc:
			if released && report {
				reportf(escPos, "pooled value from %s used after release (%s)", a.callee.Name(), escWhat)
			}
			if escWhat == "returned" && !funcAcquires && report {
				reportf(escPos, "pooled value from %s returned by %s, which is not annotated //leadervet:acquires: the caller cannot know it must release it", a.callee.Name(), fd.Name.Name)
			}
			return stEsc
		default:
			if released && usePos.IsValid() && report {
				reportf(usePos, "pooled value from %s used after release", a.callee.Name())
			}
			return st
		}
	}

	runBlock := func(b *cfg.Block, st int, report bool) int {
		for _, n := range b.Nodes {
			st = transfer(n, st, report)
		}
		return st
	}

	// Fixpoint.
	for {
		changed := false
		for _, b := range g.Blocks {
			var st int
			if b == g.Blocks[0] {
				st = 0
			}
			for _, p := range predecessors(g, b) {
				st |= runBlock(p, in[p], false)
			}
			if st != in[b] {
				in[b] = st
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Reporting pass + exit check.
	leaked := false
	var leakKind string
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		out := runBlock(b, in[b], true)
		// The CFG builder materialises implicit returns, so every
		// normal exit ends in a ReturnStmt; exits without one are
		// panic/no-return paths, where pool hygiene is moot.
		if len(b.Succs) == 0 && b.Return() != nil && out&stLive != 0 && !a.deferredRelease {
			leaked = true
			if out&stRel != 0 {
				leakKind = "on some paths"
			} else if leakKind == "" {
				leakKind = "before this function returns"
			}
		}
	}
	if leaked {
		reportf(a.stmt.Pos(), "pooled value from %s is not released %s (release it, hand it off, or mark the transfer //leadervet:handoff)", a.callee.Name(), leakKind)
	}
}

// isSelfAppend reports whether e is append(v, ...) (or append(v[:0],
// ...)) for the tracked variable v — the grow-in-place idiom that keeps
// ownership with the same variable.
func isSelfAppend(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	return isObjExpr(pass, call.Args[0], obj)
}

// isSelfUpdate reports whether e denotes the same pooled allocation as
// obj fed back to itself: append(v, ...) or a reslice v[:n].
func isSelfUpdate(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	if sl, ok := ast.Unparen(e).(*ast.SliceExpr); ok {
		return isObjExpr(pass, sl.X, obj)
	}
	return isSelfAppend(pass, e, obj)
}

// isSelfAssign reports whether stmt only moves obj back into itself
// (v = append(v, ...), v = v[:n]): not an alias or escape.
func isSelfAssign(pass *analysis.Pass, stmt *ast.AssignStmt, obj types.Object) bool {
	for i, l := range stmt.Lhs {
		if isObjExpr(pass, l, obj) && i < len(stmt.Rhs) && isSelfUpdate(pass, stmt.Rhs[i], obj) {
			return true
		}
	}
	return false
}

// predecessors returns the blocks with an edge into b.
func predecessors(g *cfg.CFG, b *cfg.Block) []*cfg.Block {
	var out []*cfg.Block
	for _, p := range g.Blocks {
		for _, s := range p.Succs {
			if s == b {
				out = append(out, p)
			}
		}
	}
	return out
}
