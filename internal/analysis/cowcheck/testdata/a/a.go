// Package a is the cowcheck fixture: a published view plane.
package a

import "sync/atomic"

type view struct {
	Leader string
	Epoch  uint64
}

type group struct {
	v atomic.Pointer[view]
}

func (g *group) mutateLoaded() {
	v := g.v.Load()
	v.Epoch++ // want `write to field Epoch of v, which was obtained from atomic.Pointer.Load`
}

func (g *group) mutateAlias() {
	v := g.v.Load()
	w := v
	w.Leader = "n2" // want `write to field Leader of w, which was obtained from atomic.Pointer.Load`
}

func (g *group) mutateDirect() {
	g.v.Load().Epoch = 9 // want `write to field Epoch of a value obtained from atomic.Pointer.Load`
}

func (g *group) mutateAfterStore() {
	nv := &view{Leader: "n1"}
	g.v.Store(nv)
	nv.Epoch = 2 // want `write to field Epoch of nv after it was published via atomic.Pointer.Store`
}

func (g *group) mutateAfterCAS(old *view) {
	nv := &view{}
	if g.v.CompareAndSwap(old, nv) {
		nv.Epoch = 3 // want `write to field Epoch of nv after it was published via atomic.Pointer.Store`
	}
}

// copyOnWrite is the blessed pattern: copy, mutate the copy, publish a
// fresh value, never touch it again.
func (g *group) copyOnWrite() {
	cur := *g.v.Load()
	cur.Epoch++
	next := &view{Leader: cur.Leader, Epoch: cur.Epoch}
	next.Leader = "n3" // before publication: still private
	g.v.Store(next)
}

func (g *group) audited() {
	v := g.v.Load()
	v.Epoch = 0 //leadervet:ignore — fixture-audited exception
}
