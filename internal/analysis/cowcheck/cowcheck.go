// Package cowcheck defines the leadervet analyzer enforcing the
// copy-on-write discipline of values published through
// sync/atomic.Pointer[T] (the service's leaderView/statusView read
// plane, the client's cached leases).
//
// The rule: a value is immutable the instant it is published, and a
// value obtained from Load is someone else's published snapshot. The
// analyzer flags, within each function:
//
//   - any field write through a value obtained from an
//     atomic.Pointer[T].Load() call (directly or via an alias), and
//   - any field write to a value after it was passed to Store,
//     CompareAndSwap (new value) or Swap on an atomic.Pointer[T].
//
// Writers must build a fresh value and publish it whole; readers must
// copy before mutating (`v := *p.Load(); v.X = ...`), which the
// analyzer does not flag because the copy is a new value.
//
// The check is intra-function and flow-approximate (a write textually
// after a Store in the same function is treated as after it), which is
// exactly the shape every publish site in this codebase has. Lines
// carrying //leadervet:ignore are exempt.
package cowcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"stableleader/internal/analysis/directive"
)

// Analyzer is the cowcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "cowcheck",
	Doc:      "check that values published via atomic.Pointer are never mutated after Load or Store",
	URL:      "https://pkg.go.dev/stableleader/internal/analysis/cowcheck",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	in := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	lines := make(map[*token.File]*directive.Lines)
	for _, f := range pass.Files {
		lines[pass.Fset.File(f.Pos())] = directive.FileLines(pass.Fset, f)
	}
	ignored := func(pos token.Pos) bool {
		l := lines[pass.Fset.File(pos)]
		return l.Has(pos, "ignore")
	}

	// Each function body is analyzed independently.
	in.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			// Literals are also visited through their enclosing
			// FuncDecl walk; analyzing them standalone double-reports.
			return
		}
		if body == nil {
			return
		}
		checkBody(pass, body, ignored)
	})
	return nil, nil
}

// checkBody applies the copy-on-write rules to one function body
// (function literals inside it included — their statements are part of
// the same walk, and taint flows into them naturally).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, ignored func(token.Pos) bool) {
	loaded := make(map[types.Object]token.Pos) // var ← result of Load()
	stored := make(map[types.Object]token.Pos) // var → published via Store/CAS/Swap

	// First sweep, in source order: collect Load-tainted variables and
	// Store positions. Source order is sufficient for the textual
	// after-Store rule below.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// v := x.Load()   or   v = x.Load()
			if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
				if isAtomicPointerCall(pass, n.Rhs[0], "Load") {
					if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						if obj := objOf(pass, id); obj != nil {
							loaded[obj] = id.Pos()
						}
					}
				}
				// Alias of a tainted variable: v2 := v
				if rid, ok := ast.Unparen(n.Rhs[0]).(*ast.Ident); ok {
					if obj := objOf(pass, rid); obj != nil {
						if _, tainted := loaded[obj]; tainted {
							if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
								if lobj := objOf(pass, id); lobj != nil {
									loaded[lobj] = id.Pos()
								}
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			if arg, ok := publishedArg(pass, n); ok {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if obj := objOf(pass, id); obj != nil {
						if _, dup := stored[obj]; !dup {
							stored[obj] = n.Pos()
						}
					}
				}
			}
		}
		return true
	})

	// Second sweep: flag mutations.
	ast.Inspect(body, func(n ast.Node) bool {
		var lhs []ast.Expr
		var pos token.Pos
		switch n := n.(type) {
		case *ast.AssignStmt:
			lhs, pos = n.Lhs, n.TokPos
		case *ast.IncDecStmt:
			lhs, pos = []ast.Expr{n.X}, n.TokPos
		default:
			return true
		}
		for _, l := range lhs {
			sel, ok := ast.Unparen(l).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			// Only field writes: x.f = v (possibly x.a.b = v).
			if v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var); !ok || !v.IsField() {
				continue
			}
			if ignored(pos) {
				continue
			}
			root := rootExpr(sel.X)
			switch r := root.(type) {
			case *ast.CallExpr:
				if isAtomicPointerCall(pass, r, "Load") {
					pass.Reportf(pos, "write to field %s of a value obtained from atomic.Pointer.Load: published snapshots are copy-on-write (build a fresh value instead)", sel.Sel.Name)
				}
			case *ast.Ident:
				obj := objOf(pass, r)
				if obj == nil {
					continue
				}
				if lpos, ok := loaded[obj]; ok && pos > lpos {
					pass.Reportf(pos, "write to field %s of %s, which was obtained from atomic.Pointer.Load: published snapshots are copy-on-write (copy the value before mutating)", sel.Sel.Name, r.Name)
				} else if spos, ok := stored[obj]; ok && pos > spos {
					pass.Reportf(pos, "write to field %s of %s after it was published via atomic.Pointer.Store: published values are immutable", sel.Sel.Name, r.Name)
				}
			}
		}
		return true
	})
}

// objOf resolves an identifier to its variable object.
func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

// rootExpr strips selectors, indexing, derefs and parens down to the
// base expression: a.b.c[i] → a, (f()).x → f().
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return e
		}
	}
}

// isAtomicPointerCall reports whether e is a call of the named method
// on a sync/atomic.Pointer[T] (or atomic.Value) receiver.
func isAtomicPointerCall(pass *analysis.Pass, e ast.Expr, method string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil {
		return false
	}
	return isAtomicPointerType(recv)
}

// publishedArg returns the expression published by call when call is
// Store(v), Swap(v) or CompareAndSwap(old, new) on an atomic.Pointer.
func publishedArg(pass *analysis.Pass, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	var idx int
	switch sel.Sel.Name {
	case "Store", "Swap":
		idx = 0
	case "CompareAndSwap":
		idx = 1
	default:
		return nil, false
	}
	if len(call.Args) <= idx {
		return nil, false
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil || !isAtomicPointerType(recv) {
		return nil, false
	}
	return call.Args[idx], true
}

// isAtomicPointerType reports whether t (or *t) is
// sync/atomic.Pointer[T] or atomic.Value.
func isAtomicPointerType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	return obj.Name() == "Pointer" || obj.Name() == "Value"
}
