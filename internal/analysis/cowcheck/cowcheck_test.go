package cowcheck_test

import (
	"testing"

	"stableleader/internal/analysis/cowcheck"
	"stableleader/internal/analysis/vettest"
)

func TestCowCheck(t *testing.T) {
	vettest.Run(t, cowcheck.Analyzer, "testdata/a")
}
