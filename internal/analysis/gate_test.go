// Package analysis_test holds the end-to-end gate test for the leadervet
// suite: it builds the real cmd/leadervet binary, seeds a throwaway module
// with one violation per analyzer, and proves `go vet -vettool=` fails on
// each — exactly the gate CI relies on. The per-analyzer unit tests under
// loopowned/cowcheck/poolcheck/hotpath cover precision; this test covers
// the plumbing (unitchecker protocol, directive parsing through the real
// toolchain, non-zero exit status).
package analysis_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildVettool compiles cmd/leadervet once per test run.
func buildVettool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "leadervet")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, "stableleader/cmd/leadervet")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building leadervet: %v\n%s", err, out)
	}
	return bin
}

// vetSeed writes src as a one-file module and runs `go vet -vettool=bin`
// over it, returning the combined output and whether vet failed.
func vetSeed(t *testing.T, bin, src string) (string, bool) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module seedtest\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seed.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, ".")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err != nil
}

// gateSeeds is one deliberately broken file per analyzer, with the message
// fragment its diagnostic must carry.
var gateSeeds = []struct {
	analyzer string
	want     string
	src      string
}{
	{
		analyzer: "loopowned",
		want:     "does not run on the owning event loop",
		src: `package seed

type shard struct {
	//leadervet:loopOwned
	seq int
}

// Outside has no on-loop annotation and no on-loop caller: touching the
// owned field from it must be rejected.
func Outside(s *shard) int { return s.seq }
`,
	},
	{
		analyzer: "cowcheck",
		want:     "copy-on-write",
		src: `package seed

import "sync/atomic"

type view struct{ n int }

var plane atomic.Pointer[view]

func Mutate() { plane.Load().n = 1 }
`,
	},
	{
		analyzer: "poolcheck",
		want:     "is not released",
		src: `package seed

var pool [][]byte

//leadervet:acquires
func take() []byte {
	if n := len(pool); n > 0 {
		b := pool[n-1]
		pool = pool[:n-1]
		return b
	}
	return make([]byte, 0, 64)
}

//leadervet:releases b
func put(b []byte) { pool = append(pool, b[:0]) }

// Leaky releases on one path only.
func Leaky(flush bool) {
	b := take()
	if flush {
		put(b)
	}
}
`,
	},
	{
		analyzer: "hotpath",
		want:     "hotpath",
		src: `package seed

//leadervet:hotpath
func Alloc(n int) []int { return make([]int, n) }
`,
	},
}

// cleanSeed must pass every analyzer: it exercises each directive in its
// legal form.
const cleanSeed = `package seed

import "sync/atomic"

type view struct{ n int }

var plane atomic.Pointer[view]

type shard struct {
	//leadervet:loopOwned
	seq int
}

//leadervet:onLoop
func (s *shard) step() { s.seq++ }

var pool [][]byte

//leadervet:acquires
func take() []byte {
	if n := len(pool); n > 0 {
		b := pool[n-1]
		pool = pool[:n-1]
		return b
	}
	return make([]byte, 0, 64)
}

//leadervet:releases b
func put(b []byte) { pool = append(pool, b[:0]) }

//leadervet:hotpath
func ReadPlane() int {
	b := take()
	n := plane.Load().n
	put(b)
	return n
}
`

// TestVettoolGatesSeededViolations is the CI gate rehearsal: the built
// vettool must fail `go vet` on one seeded violation per analyzer, with
// the right diagnostic, and pass a clean file using every directive.
func TestVettoolGatesSeededViolations(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := buildVettool(t)

	for _, seed := range gateSeeds {
		t.Run(seed.analyzer, func(t *testing.T) {
			out, failed := vetSeed(t, bin, seed.src)
			if !failed {
				t.Fatalf("go vet passed a seeded %s violation\noutput:\n%s", seed.analyzer, out)
			}
			if !strings.Contains(out, seed.want) {
				t.Fatalf("go vet failed without the expected %s diagnostic (want substring %q)\noutput:\n%s",
					seed.analyzer, seed.want, out)
			}
		})
	}

	t.Run("clean", func(t *testing.T) {
		out, failed := vetSeed(t, bin, cleanSeed)
		if failed {
			t.Fatalf("go vet rejected the clean seed:\n%s", out)
		}
	})
}
