// Package loopowned defines the leadervet analyzer enforcing the
// loop-ownership discipline: struct fields annotated
// //leadervet:loopOwned are part of an event loop's single-threaded
// world and may only be touched from functions that provably run on
// that loop.
//
// A function counts as on-loop when:
//
//   - its declaration carries //leadervet:onLoop (a contract: callers
//     promise to invoke it on the owning loop — the annotation every
//     loop-entry API carries), or
//   - its declaration carries //leadervet:init (it runs before the
//     loop exists and has exclusive access, e.g. a constructor), or
//   - it is a function literal passed as a parameter annotated
//     //leadervet:runsOnLoop on the callee (the enqueue/call pattern:
//     the callee executes the value on the loop), or
//   - every static reference to it in the package is a direct call
//     from an on-loop function (inference; a reference from a go
//     statement, or any use as a value, defeats it).
//
// Accesses in _test.go files are exempt (tests drive loops from the
// test goroutine by construction), as is any line carrying
// //leadervet:ignore.
package loopowned

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"stableleader/internal/analysis/directive"
)

// Analyzer is the loopowned analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "loopowned",
	Doc:       "check that //leadervet:loopOwned fields are only accessed from the owning event loop",
	URL:       "https://pkg.go.dev/stableleader/internal/analysis/loopowned",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*isLoopOwned)(nil), (*isOnLoop)(nil), (*runsOnLoop)(nil)},
	Run:       run,
}

// isLoopOwned marks a struct field as loop-owned state.
type isLoopOwned struct{}

func (*isLoopOwned) AFact()         {}
func (*isLoopOwned) String() string { return "loopOwned" }

// isOnLoop marks a function whose contract is "called on the owning
// loop" (//leadervet:onLoop) or "runs before the loop exists"
// (//leadervet:init).
type isOnLoop struct{}

func (*isOnLoop) AFact()         {}
func (*isOnLoop) String() string { return "onLoop" }

// runsOnLoop marks a function that executes some of its func-typed
// parameters on the owning event loop. Params holds their indices.
type runsOnLoop struct{ Params []int }

func (*runsOnLoop) AFact()         {}
func (*runsOnLoop) String() string { return "runsOnLoop" }

// fnode is one function (declaration or literal) in the package's
// reference graph.
type fnode struct {
	name      string // for diagnostics
	annotated bool   // //leadervet:onLoop or //leadervet:init
	escapes   bool   // referenced as a value in an unknown context
	noCallers bool   // resolved after the graph is built
	onLoop    bool   // fixpoint result
	fixed     bool   // onLoop may no longer change
	callers   []edge
}

type edge struct {
	from *fnode
	goed bool // the call is the operand of a go statement
}

func run(pass *analysis.Pass) (interface{}, error) {
	in := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	lines := make(map[*token.File]*directive.Lines)
	for _, f := range pass.Files {
		lines[pass.Fset.File(f.Pos())] = directive.FileLines(pass.Fset, f)
	}
	lineFor := func(pos token.Pos) *directive.Lines { return lines[pass.Fset.File(pos)] }

	// Pass 1: collect annotations — loop-owned fields, function
	// contracts, runsOnLoop parameter marks.
	owned := make(map[types.Object]bool)
	decls := make(map[*types.Func]*fnode)     // declared funcs and methods
	lits := make(map[*ast.FuncLit]*fnode)     // function literals
	onLoopArgs := make(map[*types.Func][]int) // local runsOnLoop marks

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				obj, ok := pass.TypesInfo.Defs[n.Name].(*types.Func)
				if !ok {
					return true
				}
				fn := &fnode{name: n.Name.Name}
				if directive.Has(n.Doc, "onLoop") || directive.Has(n.Doc, "init") {
					fn.annotated = true
					pass.ExportObjectFact(obj, &isOnLoop{})
				}
				if d, ok := directive.Find(n.Doc, "runsOnLoop"); ok {
					idx := paramIndices(obj, d.Args)
					if len(idx) == 0 {
						pass.Reportf(d.Pos, "leadervet:runsOnLoop on %s names no parameter (args %q)", n.Name.Name, d.Args)
					} else {
						onLoopArgs[obj] = idx
						pass.ExportObjectFact(obj, &runsOnLoop{Params: idx})
					}
				}
				decls[obj] = fn
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil && len(n.Specs) == 1 {
						doc = n.Doc // unparenthesized type decl: doc sits on the GenDecl
					}
					collectOwnedFields(pass, ts, doc, owned)
				}
			}
			return true
		})
	}

	// resolve maps a call/reference target to its local fnode (nil for
	// out-of-package or dynamic targets).
	resolve := func(obj types.Object) *fnode {
		fn, _ := obj.(*types.Func)
		if fn == nil {
			return nil
		}
		return decls[fn]
	}
	// onLoopParams reports the runsOnLoop indices of a callee, local or
	// imported (via fact).
	onLoopParams := func(obj types.Object) []int {
		fn, _ := obj.(*types.Func)
		if fn == nil {
			return nil
		}
		if idx, ok := onLoopArgs[fn]; ok {
			return idx
		}
		var fact runsOnLoop
		if pass.ImportObjectFact(fn, &fact) {
			return fact.Params
		}
		return nil
	}

	// Pass 2: build the reference graph with a stack walk.
	stackTypes := []ast.Node{
		(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil),
		(*ast.CallExpr)(nil), (*ast.Ident)(nil), (*ast.SelectorExpr)(nil),
	}
	enclosing := func(stack []ast.Node) *fnode {
		for i := len(stack) - 1; i >= 0; i-- {
			switch f := stack[i].(type) {
			case *ast.FuncLit:
				return lits[f]
			case *ast.FuncDecl:
				if obj, ok := pass.TypesInfo.Defs[f.Name].(*types.Func); ok {
					return decls[obj]
				}
				return nil
			}
		}
		return nil
	}
	// enclosingAt resolves the function enclosing stack[:i].
	enclosingAt := func(stack []ast.Node, i int) *fnode { return enclosing(stack[:i]) }

	// calleeOf returns the statically-resolved callee object of a call.
	calleeOf := func(call *ast.CallExpr) types.Object {
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[fun]
		case *ast.SelectorExpr:
			return pass.TypesInfo.Uses[fun.Sel]
		}
		return nil
	}

	// argContext classifies an expression that appears as a call
	// argument: returns the runsOnLoop verdict for that slot.
	argSlot := func(call *ast.CallExpr, arg ast.Expr) (int, bool) {
		for i, a := range call.Args {
			if a == arg {
				return i, true
			}
		}
		return 0, false
	}

	in.WithStack(stackTypes, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			fl := &fnode{name: "func literal"}
			lits[n] = fl
			// Classify by parent.
			parent := stack[len(stack)-2]
			switch p := parent.(type) {
			case *ast.GoStmt:
				// go func(){...}() — wrapped in the CallExpr below.
				_ = p
			case *ast.CallExpr:
				if p.Fun == n {
					// Immediately invoked: runs in the enclosing context.
					goed := len(stack) >= 3 && isGoCall(stack[len(stack)-3], p)
					if enc := enclosingAt(stack, len(stack)-2); enc != nil {
						fl.callers = append(fl.callers, edge{from: enc, goed: goed})
					} else {
						fl.escapes = true
					}
					return true
				}
				// Passed as an argument.
				if slot, ok := argSlot(p, n); ok {
					for _, i := range onLoopParams(calleeOf(p)) {
						if matchesSlot(i, slot, p, calleeOf(p)) {
							fl.annotated = true // executes on the loop by the callee's contract
							return true
						}
					}
				}
				fl.escapes = true
			default:
				fl.escapes = true
			}
		case *ast.CallExpr:
			callee := calleeOf(n)
			target := resolve(callee)
			if target == nil {
				return true
			}
			goed := len(stack) >= 2 && isGoCall(stack[len(stack)-2], n)
			if enc := enclosingAt(stack, len(stack)-1); enc != nil {
				target.callers = append(target.callers, edge{from: enc, goed: goed})
			} else {
				target.escapes = true // called from a package-level initializer
			}
		case *ast.Ident, *ast.SelectorExpr:
			// A function referenced as a value (method value, function
			// value): escapes unless it lands in a runsOnLoop slot.
			var obj types.Object
			var expr ast.Expr
			switch e := n.(type) {
			case *ast.Ident:
				obj, expr = pass.TypesInfo.Uses[e], e
			case *ast.SelectorExpr:
				obj, expr = pass.TypesInfo.Uses[e.Sel], e
			}
			target := resolve(obj)
			if target == nil {
				return true
			}
			parent := stack[len(stack)-2]
			// Skip idents that are part of a selector handled at the
			// selector level, and call positions (handled above).
			if sel, ok := parent.(*ast.SelectorExpr); ok && n == ast.Node(sel.Sel) {
				return true
			}
			if call, ok := parent.(*ast.CallExpr); ok {
				if call.Fun == expr {
					return true // call position
				}
				if slot, ok := argSlot(call, expr); ok {
					for _, i := range onLoopParams(calleeOf(call)) {
						if matchesSlot(i, slot, call, calleeOf(call)) {
							target.annotated = true
							return true
						}
					}
				}
			}
			target.escapes = true
		}
		return true
	})

	// Fixpoint: optimistic for inference, demote on contrary evidence.
	var all []*fnode
	for _, f := range decls {
		all = append(all, f)
	}
	for _, f := range lits {
		all = append(all, f)
	}
	for _, f := range all {
		switch {
		case f.annotated:
			f.onLoop, f.fixed = true, true
		case f.escapes || len(f.callers) == 0:
			f.onLoop, f.fixed = false, true
		default:
			f.onLoop = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range all {
			if f.fixed || !f.onLoop {
				continue
			}
			for _, e := range f.callers {
				if e.goed || !e.from.onLoop {
					f.onLoop = false
					changed = true
					break
				}
			}
		}
	}

	// Pass 3: check every field access.
	in.WithStack([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		sel := n.(*ast.SelectorExpr)
		obj := pass.TypesInfo.Uses[sel.Sel]
		v, ok := obj.(*types.Var)
		if !ok || !v.IsField() {
			return true
		}
		isOwned := owned[obj]
		if !isOwned && v.Pkg() != nil && v.Pkg() != pass.Pkg {
			isOwned = pass.ImportObjectFact(obj, &isLoopOwned{})
		}
		if !isOwned {
			return true
		}
		if directive.InTestFile(pass.Fset, sel.Pos()) {
			return true
		}
		if lineFor(sel.Pos()).Has(sel.Pos(), "ignore") {
			return true
		}
		enc := enclosing(stack)
		if enc != nil && enc.onLoop {
			return true
		}
		where := "package-level code"
		if enc != nil {
			where = enc.name
		}
		pass.Reportf(sel.Sel.Pos(),
			"field %s is //leadervet:loopOwned but %s does not run on the owning event loop (mark it //leadervet:onLoop or //leadervet:init if it does)",
			sel.Sel.Name, where)
		return true
	})

	return nil, nil
}

// collectOwnedFields records the loop-owned fields of one struct type:
// every field when the type's doc carries loopOwned, otherwise the
// fields whose own doc or line comment does.
func collectOwnedFields(pass *analysis.Pass, ts *ast.TypeSpec, doc *ast.CommentGroup, owned map[types.Object]bool) {
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	allOwned := directive.Has(doc, "loopOwned") || directive.Has(ts.Comment, "loopOwned")
	for _, f := range st.Fields.List {
		if !allOwned && !directive.Has(f.Doc, "loopOwned") && !directive.Has(f.Comment, "loopOwned") {
			continue
		}
		for _, name := range f.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				owned[obj] = true
				pass.ExportObjectFact(obj, &isLoopOwned{})
			}
		}
	}
}

// isGoCall reports whether parent is a go statement launching call.
func isGoCall(parent ast.Node, call *ast.CallExpr) bool {
	g, ok := parent.(*ast.GoStmt)
	return ok && g.Call == call
}

// matchesSlot reports whether the runsOnLoop parameter index i covers
// argument slot in a call to callee (accounting for variadics).
func matchesSlot(i, slot int, call *ast.CallExpr, callee types.Object) bool {
	fn, _ := callee.(*types.Func)
	if fn == nil {
		return i == slot
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return i == slot
	}
	if sig.Variadic() && i == sig.Params().Len()-1 {
		return slot >= i
	}
	return i == slot
}

// paramIndices resolves runsOnLoop argument names to parameter indices.
func paramIndices(fn *types.Func, names []string) []int {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	var out []int
	for _, want := range names {
		want = strings.TrimSpace(want)
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i).Name() == want {
				out = append(out, i)
			}
		}
	}
	return out
}
