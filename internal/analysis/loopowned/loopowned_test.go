package loopowned_test

import (
	"testing"

	"stableleader/internal/analysis/loopowned"
	"stableleader/internal/analysis/vettest"
)

func TestLoopOwned(t *testing.T) {
	vettest.Run(t, loopowned.Analyzer, "testdata/a")
}
