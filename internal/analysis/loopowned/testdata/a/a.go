// Package a is the loopowned fixture: a miniature event-loop shard.
package a

// shard mimics a service shard: seq is loop-owned, stats is not.
type shard struct {
	//leadervet:loopOwned
	seq int

	pending []int //leadervet:loopOwned

	stats int // freely shared (atomics in real code)
}

// loop is the event loop body.
//
//leadervet:onLoop
func (s *shard) loop() {
	s.seq++
	s.pending = s.pending[:0]
	s.step()
	go s.offLoop()
}

// step has a single static caller, loop, so it is inferred on-loop.
func (s *shard) step() {
	s.seq += 2
	s.stats++
}

func (s *shard) offLoop() {
	s.seq++ // want `field seq is //leadervet:loopOwned but offLoop does not run on the owning event loop`
	s.stats++
}

// newShard runs before the loop exists.
//
//leadervet:init
func newShard() *shard {
	s := &shard{}
	s.seq = 0
	return s
}

// enqueue executes fn on the loop.
//
//leadervet:runsOnLoop fn
func (s *shard) enqueue(fn func()) { fn() }

// sink mimics an obs.Shard: a whole struct of loop-owned slots written
// through contract-annotated methods (the observability-plane pattern —
// plain stores on the hot path, scraped via the loop).
//
//leadervet:loopOwned
type sink struct {
	counts [4]uint64
	sum    uint64
}

// inc is the hot-path write: the annotation is the caller's promise.
//
//leadervet:onLoop
func (k *sink) inc(i int) { k.counts[i]++ }

// snapshot is also loop-entered — scrapes run as loop closures.
//
//leadervet:onLoop
func (k *sink) snapshot() (out [4]uint64) {
	out = k.counts
	return
}

// drain is only called from loop(), via record — inferred on-loop
// transitively through an unannotated intermediary.
func (k *sink) drain() { k.sum = 0 }

// record is called from loop below, so inference carries through it.
func (k *sink) record(d uint64) {
	k.sum += d
	k.drain()
}

// scrapeRace is the bug the analyzer exists for: reading loop-owned
// slots from an arbitrary goroutine instead of through the loop.
func scrapeRace(k *sink) [4]uint64 {
	return k.counts // want `field counts is //leadervet:loopOwned but scrapeRace does not run on the owning event loop`
}

//leadervet:onLoop
func (k *sink) loop() { k.record(1) }

// outside has no callers, so it is not on-loop.
func outside(s *shard) {
	s.seq++ // want `field seq is //leadervet:loopOwned but outside does not run on the owning event loop`
	s.enqueue(func() {
		s.seq++ // on-loop by enqueue's runsOnLoop contract
	})
	leaked := func() {
		s.seq++ // want `field seq is //leadervet:loopOwned but func literal does not run on the owning event loop`
	}
	_ = leaked
	s.seq = 7 //leadervet:ignore — audited in the fixture
}
