// Package a is the loopowned fixture: a miniature event-loop shard.
package a

// shard mimics a service shard: seq is loop-owned, stats is not.
type shard struct {
	//leadervet:loopOwned
	seq int

	pending []int //leadervet:loopOwned

	stats int // freely shared (atomics in real code)
}

// loop is the event loop body.
//
//leadervet:onLoop
func (s *shard) loop() {
	s.seq++
	s.pending = s.pending[:0]
	s.step()
	go s.offLoop()
}

// step has a single static caller, loop, so it is inferred on-loop.
func (s *shard) step() {
	s.seq += 2
	s.stats++
}

func (s *shard) offLoop() {
	s.seq++ // want `field seq is //leadervet:loopOwned but offLoop does not run on the owning event loop`
	s.stats++
}

// newShard runs before the loop exists.
//
//leadervet:init
func newShard() *shard {
	s := &shard{}
	s.seq = 0
	return s
}

// enqueue executes fn on the loop.
//
//leadervet:runsOnLoop fn
func (s *shard) enqueue(fn func()) { fn() }

// outside has no callers, so it is not on-loop.
func outside(s *shard) {
	s.seq++ // want `field seq is //leadervet:loopOwned but outside does not run on the owning event loop`
	s.enqueue(func() {
		s.seq++ // on-loop by enqueue's runsOnLoop contract
	})
	leaked := func() {
		s.seq++ // want `field seq is //leadervet:loopOwned but func literal does not run on the owning event loop`
	}
	_ = leaked
	s.seq = 7 //leadervet:ignore — audited in the fixture
}
