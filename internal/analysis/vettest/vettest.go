// Package vettest is a self-contained analysistest substitute: it runs
// one analyzer over a fixture package and checks its diagnostics
// against // want comments.
//
// The toolchain this repository builds against vendors the go/analysis
// framework (it ships inside cmd/vendor) but not the analysistest
// helper, which depends on go/packages and a module cache. vettest
// re-implements the part the leadervet fixtures need: parse a fixture
// directory, typecheck it against the standard library via the source
// importer (no export data, no network), execute the analyzer's
// Requires closure, and match diagnostics to expectations.
//
// Expectation syntax, a compatible subset of analysistest:
//
//	x.f = 1 // want `regexp`
//	y.g = 2 // want "one" "two"
//
// Each quoted string is a regular expression that must match the
// message of a distinct diagnostic reported on that line; diagnostics
// without a matching want, and wants without a matching diagnostic,
// fail the test.
package vettest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run analyzes the fixture package in dir with a and verifies its
// diagnostics against the fixture's // want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	if err := analysis.Validate([]*analysis.Analyzer{a}); err != nil {
		t.Fatalf("invalid analyzer: %v", err)
	}

	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}

	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
	conf := types.Config{
		// The source importer typechecks std from GOROOT sources:
		// fixtures stay runnable with no export data and no network.
		Importer: importer.ForCompiler(fset, "source", nil),
	}
	pkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		t.Fatalf("fixture does not typecheck: %v", err)
	}

	var diags []analysis.Diagnostic
	runner := &runner{
		fset:     fset,
		files:    files,
		pkg:      pkg,
		info:     info,
		results:  make(map[*analysis.Analyzer]interface{}),
		objFacts: make(map[types.Object][]analysis.Fact),
		pkgFacts: make(map[*types.Package][]analysis.Fact),
		report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := runner.run(a); err != nil {
		t.Fatal(err)
	}

	check(t, fset, files, diags)
}

type runner struct {
	fset     *token.FileSet
	files    []*ast.File
	pkg      *types.Package
	info     *types.Info
	results  map[*analysis.Analyzer]interface{}
	objFacts map[types.Object][]analysis.Fact
	pkgFacts map[*types.Package][]analysis.Fact
	report   func(analysis.Diagnostic)
}

// run executes a's Requires closure depth-first, then a itself.
func (r *runner) run(a *analysis.Analyzer) error {
	if _, done := r.results[a]; done {
		return nil
	}
	for _, dep := range a.Requires {
		if err := r.run(dep); err != nil {
			return err
		}
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       r.fset,
		Files:      r.files,
		Pkg:        r.pkg,
		TypesInfo:  r.info,
		TypesSizes: types.SizesFor("gc", runtime.GOARCH),
		ResultOf:   make(map[*analysis.Analyzer]interface{}),
		Report:     r.report,

		ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
			return lookupFact(r.objFacts[obj], fact)
		},
		ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
			r.objFacts[obj] = append(r.objFacts[obj], fact)
		},
		ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool {
			return lookupFact(r.pkgFacts[pkg], fact)
		},
		ExportPackageFact: func(fact analysis.Fact) {
			r.pkgFacts[r.pkg] = append(r.pkgFacts[r.pkg], fact)
		},
		AllObjectFacts:  func() []analysis.ObjectFact { return nil },
		AllPackageFacts: func() []analysis.PackageFact { return nil },
	}
	for _, dep := range a.Requires {
		pass.ResultOf[dep] = r.results[dep]
	}
	res, err := a.Run(pass)
	if err != nil {
		return fmt.Errorf("analyzer %s: %v", a.Name, err)
	}
	r.results[a] = res
	return nil
}

// lookupFact copies the first stored fact of fact's dynamic type into
// fact, mirroring the framework's ImportObjectFact semantics.
func lookupFact(stored []analysis.Fact, fact analysis.Fact) bool {
	want := reflect.TypeOf(fact)
	for _, f := range stored {
		if reflect.TypeOf(f) == want {
			reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// parseDir parses every .go file in dir, sorted by name.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// wantRx extracts the quoted expectations from one comment text.
var wantRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// check matches diagnostics against // want comments.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	// key: "file:line"
	wants := make(map[string][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range wantRx.FindAllString(text[i+len("want "):], -1) {
					raw := q[1 : len(q)-1]
					if q[0] == '"' {
						raw = strings.ReplaceAll(raw, `\"`, `"`)
					}
					rx, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", key, raw, err)
						continue
					}
					wants[key] = append(wants[key], &expectation{rx: rx, raw: raw})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.raw)
			}
		}
	}
}
