// Package hotpath defines the leadervet analyzer enforcing the 0-alloc
// discipline of functions annotated //leadervet:hotpath — the read
// plane (Group.Leader/Status, client.Leader/Cached), the monitor's
// per-heartbeat Observe, the fan-out and the heartbeat encode path.
//
// Inside a hotpath function the analyzer flags the allocating
// constructs that have historically crept back in:
//
//   - make and new
//   - escaping composite literals (&T{...}; plain value literals are
//     stack-allocated and allowed)
//   - closures (function literals capture their environment) and go
//     statements
//   - append growth on a fresh local slice (append into a parameter,
//     field, reslice or pooled buffer — a scratch buffer — is allowed)
//   - interface boxing: passing or converting a non-pointer concrete
//     value where an interface is expected (pointers fit the interface
//     word and are free)
//   - non-constant string concatenation and string<->[]byte
//     conversions
//   - calls into known-allocating helpers (fmt, log, sort, errors.New,
//     the id.SortedMapKeys convenience wrapper — its Append variant
//     with a scratch buffer is the hot-path form); the list is
//     extendable with -hotpath.deny
//
// The check is intra-procedural by design: each function on a hot path
// carries its own annotation, so a regression is reported in the
// function that introduced it. A deliberate, measured exception (a
// cold fallback branch inside a hot function) is silenced per line
// with //leadervet:ignore.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"stableleader/internal/analysis/directive"
)

// DefaultDeny is the default set of denied callee prefixes, matched
// against the callee's fully-qualified name.
const DefaultDeny = "fmt.,log.,sort.,errors.New,stableleader/id.SortedMapKeys"

var deny string

// Analyzer is the hotpath analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "hotpath",
	Doc:      "check that //leadervet:hotpath functions contain no allocating constructs",
	URL:      "https://pkg.go.dev/stableleader/internal/analysis/hotpath",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.StringVar(&deny, "deny", DefaultDeny,
		"comma-separated fully-qualified callee prefixes denied in hotpath functions")
}

func run(pass *analysis.Pass) (interface{}, error) {
	in := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	var denied []string
	for _, d := range strings.Split(deny, ",") {
		if d = strings.TrimSpace(d); d != "" {
			denied = append(denied, d)
		}
	}

	lines := make(map[*token.File]*directive.Lines)
	for _, f := range pass.Files {
		lines[pass.Fset.File(f.Pos())] = directive.FileLines(pass.Fset, f)
	}
	ignored := func(pos token.Pos) bool {
		return lines[pass.Fset.File(pos)].Has(pos, "ignore")
	}

	in.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || !directive.Has(fd.Doc, "hotpath") {
			return
		}
		c := &checker{pass: pass, fd: fd, denied: denied, ignored: ignored}
		c.check()
	})
	return nil, nil
}

type checker struct {
	pass    *analysis.Pass
	fd      *ast.FuncDecl
	denied  []string
	ignored func(token.Pos) bool
}

func (c *checker) reportf(pos token.Pos, format string, args ...interface{}) {
	if c.ignored(pos) {
		return
	}
	args = append(args, c.fd.Name.Name)
	c.pass.Reportf(pos, format+" in //leadervet:hotpath function %s", args...)
}

func (c *checker) check() {
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.reportf(n.Pos(), "closure allocates")
			return false // its body is off the hot path by construction
		case *ast.GoStmt:
			c.reportf(n.Pos(), "go statement allocates a goroutine")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.reportf(n.Pos(), "escaping composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			c.checkConcat(n)
		case *ast.CallExpr:
			c.checkCall(n)
		}
		return true
	})
}

// checkConcat flags non-constant string concatenation.
func (c *checker) checkConcat(b *ast.BinaryExpr) {
	if b.Op != token.ADD {
		return
	}
	t := c.pass.TypesInfo.TypeOf(b)
	if t == nil || !isString(t) {
		return
	}
	// Constant folding makes the whole expression free.
	if tv, ok := c.pass.TypesInfo.Types[b]; ok && tv.Value != nil {
		return
	}
	c.reportf(b.OpPos, "non-constant string concatenation allocates")
}

func (c *checker) checkCall(call *ast.CallExpr) {
	// Builtins and conversions.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := c.pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.reportf(call.Pos(), "make allocates")
			case "new":
				c.reportf(call.Pos(), "new allocates")
			case "append":
				c.checkAppend(call)
			}
			return
		}
	}
	// Conversion? (a type used in call position)
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return
	}
	// Denied callees.
	if fn := calleeFunc(c.pass, call); fn != nil {
		full := fn.FullName()
		for _, d := range c.denied {
			if strings.HasPrefix(full, d) {
				c.reportf(call.Pos(), "call to %s (denied allocating helper)", full)
				break
			}
		}
		c.checkBoxing(call, fn)
	}
}

// checkAppend flags append growth on fresh local slices. Appending into
// a parameter, struct field, reslice of either, or any call result (a
// pooled buffer) is the scratch-buffer idiom and allowed.
func (c *checker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	base := call.Args[0]
	for {
		switch b := ast.Unparen(base).(type) {
		case *ast.SliceExpr:
			base = b.X
			continue
		case *ast.IndexExpr:
			base = b.X
			continue
		case *ast.StarExpr:
			base = b.X
			continue
		}
		break
	}
	switch b := ast.Unparen(base).(type) {
	case *ast.SelectorExpr, *ast.CallExpr:
		return // field or pooled buffer: scratch
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[b]
		if obj == nil {
			return
		}
		if v, ok := obj.(*types.Var); ok {
			if c.isParam(v) || v.IsField() {
				return
			}
			if c.scratchLocal(v) {
				return
			}
		}
		c.reportf(call.Pos(), "append growth on fresh slice %s allocates (use a scratch buffer)", b.Name)
	default:
		c.reportf(call.Pos(), "append growth allocates (use a scratch buffer)")
	}
}

// isParam reports whether v is a parameter or receiver of the checked
// function.
func (c *checker) isParam(v *types.Var) bool {
	obj, ok := c.pass.TypesInfo.Defs[c.fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if r := sig.Recv(); r != nil && r == v {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return true
		}
	}
	return false
}

// scratchLocal reports whether local slice v originates from a scratch
// source: its initialisation roots in a parameter, field, or call
// result (chasing ident-to-ident chains a few hops).
func (c *checker) scratchLocal(v *types.Var) bool {
	for hop := 0; hop < 8; hop++ {
		init := c.initExpr(v)
		if init == nil {
			return false
		}
		base := init
		for {
			switch b := ast.Unparen(base).(type) {
			case *ast.SliceExpr:
				base = b.X
				continue
			case *ast.IndexExpr:
				base = b.X
				continue
			case *ast.StarExpr:
				base = b.X
				continue
			}
			break
		}
		switch b := ast.Unparen(base).(type) {
		case *ast.SelectorExpr, *ast.CallExpr:
			return true
		case *ast.Ident:
			obj := c.pass.TypesInfo.Uses[b]
			if obj == nil {
				obj = c.pass.TypesInfo.Defs[b]
			}
			nv, ok := obj.(*types.Var)
			if !ok {
				return false
			}
			if c.isParam(nv) || nv.IsField() {
				return true
			}
			v = nv // chase the chain
		default:
			return false
		}
	}
	return false
}

// initExpr finds the defining expression of local v within the checked
// function (v := expr, var v = expr), ignoring self-appends.
func (c *checker) initExpr(v *types.Var) ast.Expr {
	var out ast.Expr
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok || c.pass.TypesInfo.Defs[id] != v {
					continue
				}
				if i < len(n.Rhs) {
					out = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					out = n.Rhs[0] // multi-assign from one call: treat the call as origin
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if c.pass.TypesInfo.Defs[name] != v {
					continue
				}
				if i < len(n.Values) {
					out = n.Values[i]
				}
			}
		}
		return true
	})
	return out
}

// checkConversion flags allocating conversions: boxing into an
// interface, and string<->[]byte copies.
func (c *checker) checkConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := c.pass.TypesInfo.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	if types.IsInterface(to.Underlying()) && boxes(from) {
		c.reportf(call.Pos(), "conversion to interface boxes a non-pointer value and allocates")
		return
	}
	if isString(to) != isString(from) && (isByteSlice(to) || isByteSlice(from)) {
		c.reportf(call.Pos(), "string/[]byte conversion copies and allocates")
	}
}

// checkBoxing flags arguments boxed into interface parameters.
func (c *checker) checkBoxing(call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		var pname string
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice: no boxing
			}
			last := params.At(params.Len() - 1)
			s, ok := last.Type().Underlying().(*types.Slice)
			if !ok {
				continue
			}
			pt, pname = s.Elem(), last.Name()
		case i < params.Len():
			pt, pname = params.At(i).Type(), params.At(i).Name()
		default:
			return
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := c.pass.TypesInfo.TypeOf(arg)
		if at == nil || !boxes(at) {
			continue
		}
		// Untyped nil never boxes.
		if tv, ok := c.pass.TypesInfo.Types[arg]; ok && tv.IsNil() {
			continue
		}
		c.reportf(arg.Pos(), "argument boxes a non-pointer value into interface parameter %s and allocates", pname)
	}
}

// boxes reports whether converting a value of type t to an interface
// allocates: true for non-pointer concrete types (pointers, channels,
// maps, funcs and unsafe pointers ride in the interface word).
func boxes(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature, *types.TypeParam:
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return false
	}
	return true
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// calleeFunc resolves the static callee of a call, nil for dynamic
// calls (which cannot be checked and are left to the alloc tests).
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
