package hotpath_test

import (
	"testing"

	"stableleader/internal/analysis/hotpath"
	"stableleader/internal/analysis/vettest"
)

func TestHotPath(t *testing.T) {
	vettest.Run(t, hotpath.Analyzer, "testdata/a")
}
