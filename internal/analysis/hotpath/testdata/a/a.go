// Package a is the hotpath fixture.
package a

import "fmt"

type peer struct {
	buf []byte
	n   int
}

type reader interface{ Name() string }

//leadervet:hotpath
func allocZoo(p *peer, s string, n int) {
	_ = make([]byte, 8) // want `make allocates`
	_ = new(peer)       // want `new allocates`
	_ = &peer{}         // want `escaping composite literal allocates`
	go helper(n)        // want `go statement allocates a goroutine`
	f := func() {}      // want `closure allocates`
	_ = f
	var fresh []int
	fresh = append(fresh, n) // want `append growth on fresh slice fresh allocates`
	_ = fresh
	_ = s + "!"     // want `non-constant string concatenation allocates`
	_ = []byte(s)   // want `string/\[\]byte conversion copies and allocates`
	_ = any(n)      // want `conversion to interface boxes a non-pointer value`
	fmt.Println(s)  // want `call to fmt.Println \(denied allocating helper\)` `argument boxes a non-pointer value into interface parameter a`
	takesIface(p.n) // want `argument boxes a non-pointer value into interface parameter v`
}

func helper(n int) {}

func takesIface(v interface{}) {}

//leadervet:hotpath
func okPath(p *peer, dst []byte, r reader) []byte {
	dst = append(dst, 1) // parameter: the caller's buffer
	buf := p.buf
	buf = append(buf, 2) // scratch rooted in a field
	p.buf = buf
	const tag = "a" + "b" // constant-folded, free
	_ = tag
	takesIface(p) // pointers ride the interface word
	takesIface(r) // interfaces re-box nothing
	if p.n > cap(dst) {
		dst = make([]byte, p.n) //leadervet:ignore — measured cold fallback
	}
	return dst
}

// unannotated is off the hot path: nothing here is flagged.
func unannotated() *peer {
	return &peer{buf: make([]byte, 1)}
}
