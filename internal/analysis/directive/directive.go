// Package directive parses the //leadervet: comment directives the
// leadervet analyzers consume.
//
// A directive is a single comment line of the form
//
//	//leadervet:<name> [args...]
//
// attached to the declaration it governs (a function's doc comment, a
// struct field's doc or line comment, a type's doc comment), or — for
// the statement-level directives ignore and handoff — written on the
// same line as the statement it governs.
//
// The directives themselves are specified in DESIGN.md ("Invariants &
// directives"); this package only extracts them.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix is the comment prefix shared by every leadervet directive.
// Like //go: directives, no space follows the slashes.
const Prefix = "//leadervet:"

// D is one parsed directive.
type D struct {
	Name string   // e.g. "loopOwned", "hotpath", "acquires"
	Args []string // whitespace-separated arguments, may be empty
	Pos  token.Pos
}

// parseLine parses one comment's text; ok is false for ordinary comments.
func parseLine(c *ast.Comment) (D, bool) {
	if !strings.HasPrefix(c.Text, Prefix) {
		return D{}, false
	}
	rest := strings.TrimPrefix(c.Text, Prefix)
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return D{}, false
	}
	return D{Name: fields[0], Args: fields[1:], Pos: c.Pos()}, true
}

// Parse returns every directive in the comment group (nil-safe).
func Parse(cg *ast.CommentGroup) []D {
	if cg == nil {
		return nil
	}
	var out []D
	for _, c := range cg.List {
		if d, ok := parseLine(c); ok {
			out = append(out, d)
		}
	}
	return out
}

// Has reports whether the comment group carries the named directive.
func Has(cg *ast.CommentGroup, name string) bool {
	d, ok := Find(cg, name)
	_ = d
	return ok
}

// Find returns the first directive with the given name in the group.
func Find(cg *ast.CommentGroup, name string) (D, bool) {
	for _, d := range Parse(cg) {
		if d.Name == name {
			return d, true
		}
	}
	return D{}, false
}

// Lines indexes the statement-level directives of one file by source
// line, so analyzers can honour //leadervet:ignore (suppress any
// diagnostic on that line) and //leadervet:handoff (ownership of a
// pooled value leaves by design on that line).
type Lines struct {
	fset  *token.FileSet
	byLn  map[int][]D
	fname string
}

// FileLines collects every directive comment in the file, keyed by the
// line it appears on.
func FileLines(fset *token.FileSet, f *ast.File) *Lines {
	l := &Lines{fset: fset, byLn: make(map[int][]D)}
	if len(f.Comments) > 0 {
		l.fname = fset.Position(f.Comments[0].Pos()).Filename
	} else if f.Package.IsValid() {
		l.fname = fset.Position(f.Package).Filename
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if d, ok := parseLine(c); ok {
				ln := fset.Position(c.Pos()).Line
				l.byLn[ln] = append(l.byLn[ln], d)
			}
		}
	}
	return l
}

// Has reports whether the named directive appears on pos's line.
func (l *Lines) Has(pos token.Pos, name string) bool {
	if l == nil {
		return false
	}
	p := l.fset.Position(pos)
	for _, d := range l.byLn[p.Line] {
		if d.Name == name {
			return true
		}
	}
	return false
}

// InTestFile reports whether pos lies in a _test.go file. Several
// analyzers exempt test files: tests legitimately poke loop state from
// the test goroutine and retain pooled messages for inspection.
func InTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
