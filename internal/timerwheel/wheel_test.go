package timerwheel

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

var t0 = time.Date(2008, time.March, 1, 0, 0, 0, 0, time.UTC)

func TestFiresInOrderAtExactTicks(t *testing.T) {
	w := New(t0, time.Millisecond)
	var got []int
	for _, d := range []int{50, 10, 30, 20, 40} {
		d := d
		w.Schedule(NewEntry(func() { got = append(got, d) }), t0.Add(time.Duration(d)*time.Millisecond))
	}
	w.Advance(t0.Add(25 * time.Millisecond))
	if want := []int{10, 20}; !equal(got, want) {
		t.Fatalf("after 25ms fired %v, want %v", got, want)
	}
	w.Advance(t0.Add(time.Second))
	if want := []int{10, 20, 30, 40, 50}; !equal(got, want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	if w.Len() != 0 {
		t.Fatalf("Len() = %d after all fired", w.Len())
	}
}

func TestNeverFiresEarly(t *testing.T) {
	w := New(t0, time.Millisecond)
	fired := false
	// 10.5ms rounds up to the 11ms tick.
	w.Schedule(NewEntry(func() { fired = true }), t0.Add(10*time.Millisecond+500*time.Microsecond))
	w.Advance(t0.Add(10*time.Millisecond + 900*time.Microsecond))
	if fired {
		t.Fatal("fired before its deadline tick")
	}
	w.Advance(t0.Add(11 * time.Millisecond))
	if !fired {
		t.Fatal("did not fire at the rounded-up tick")
	}
}

func TestSameTickFIFO(t *testing.T) {
	w := New(t0, time.Millisecond)
	var got []int
	at := t0.Add(7 * time.Millisecond)
	for i := 0; i < 10; i++ {
		i := i
		w.Schedule(NewEntry(func() { got = append(got, i) }), at)
	}
	w.Advance(t0.Add(time.Second))
	for i, v := range got {
		if v != i {
			t.Fatalf("same-tick entries fired out of arming order: %v", got)
		}
	}
}

func TestStopAndRearm(t *testing.T) {
	w := New(t0, time.Millisecond)
	n := 0
	e := NewEntry(func() { n++ })
	w.Schedule(e, t0.Add(10*time.Millisecond))
	if !e.Pending() || !w.Stop(e) {
		t.Fatal("Stop of a pending entry must report true")
	}
	if e.Pending() || w.Stop(e) {
		t.Fatal("Stop of a parked entry must report false")
	}
	w.Advance(t0.Add(20 * time.Millisecond))
	if n != 0 {
		t.Fatal("stopped entry fired")
	}
	// Re-arm moves the deadline; only the final one fires.
	w.Schedule(e, t0.Add(30*time.Millisecond))
	w.Schedule(e, t0.Add(50*time.Millisecond))
	if w.Len() != 1 {
		t.Fatalf("Len() = %d after re-arm, want 1", w.Len())
	}
	w.Advance(t0.Add(40 * time.Millisecond))
	if n != 0 {
		t.Fatal("superseded deadline fired")
	}
	w.Advance(t0.Add(60 * time.Millisecond))
	if n != 1 {
		t.Fatalf("fired %d times, want 1", n)
	}
}

func TestPastDeadlineFiresOnNextAdvance(t *testing.T) {
	w := New(t0, time.Millisecond)
	w.Advance(t0.Add(100 * time.Millisecond))
	fired := false
	w.Schedule(NewEntry(func() { fired = true }), t0) // long past
	w.Advance(t0.Add(101 * time.Millisecond))
	if !fired {
		t.Fatal("past-deadline entry did not fire on the next advance")
	}
}

// TestCascadeLevels exercises deadlines in every level of the hierarchy,
// including beyond the horizon.
func TestCascadeLevels(t *testing.T) {
	w := New(t0, time.Millisecond)
	deltas := []time.Duration{
		3 * time.Millisecond,   // level 0
		200 * time.Millisecond, // level 1
		10 * time.Second,       // level 2
		30 * time.Minute,       // level 3
		6 * time.Hour,          // beyond the ~4.66h horizon: parked, cascaded
	}
	fired := map[time.Duration]time.Time{}
	now := t0
	for _, d := range deltas {
		d := d
		w.Schedule(NewEntry(func() { fired[d] = now }), t0.Add(d))
	}
	// Advance in coarse steps, tracking "now" so callbacks can record it.
	for now.Before(t0.Add(6*time.Hour + time.Minute)) {
		now = now.Add(13 * time.Second)
		w.Advance(now)
	}
	for _, d := range deltas {
		at, ok := fired[d]
		if !ok {
			t.Fatalf("deadline +%v never fired", d)
		}
		if at.Before(t0.Add(d)) {
			t.Fatalf("deadline +%v fired early at %v", d, at.Sub(t0))
		}
		if at.Sub(t0.Add(d)) > 14*time.Second {
			t.Fatalf("deadline +%v fired %v late", d, at.Sub(t0.Add(d)))
		}
	}
}

func TestCallbackMayRearmItself(t *testing.T) {
	w := New(t0, time.Millisecond)
	n := 0
	now := t0
	var e *Entry
	e = NewEntry(func() {
		n++
		if n < 5 {
			w.Schedule(e, now.Add(10*time.Millisecond))
		}
	})
	w.Schedule(e, t0.Add(10*time.Millisecond))
	for i := 0; i < 200; i++ {
		now = now.Add(time.Millisecond)
		w.Advance(now)
	}
	if n != 5 {
		t.Fatalf("periodic self-rearm fired %d times, want 5", n)
	}
}

func TestNextTracksEarliestDeadline(t *testing.T) {
	w := New(t0, time.Millisecond)
	if _, ok := w.Next(); ok {
		t.Fatal("Next on an empty wheel reported a deadline")
	}
	e1 := NewEntry(func() {})
	w.Schedule(e1, t0.Add(40*time.Millisecond))
	if next, _ := w.Next(); !next.Equal(t0.Add(40 * time.Millisecond)) {
		t.Fatalf("Next = +%v, want +40ms", next.Sub(t0))
	}
	e2 := NewEntry(func() {})
	w.Schedule(e2, t0.Add(15*time.Millisecond))
	if next, _ := w.Next(); !next.Equal(t0.Add(15 * time.Millisecond)) {
		t.Fatalf("Next = +%v, want +15ms", next.Sub(t0))
	}
	w.Stop(e2)
	if next, _ := w.Next(); !next.Equal(t0.Add(40 * time.Millisecond)) {
		t.Fatalf("Next after Stop = +%v, want +40ms", next.Sub(t0))
	}
	// A coarse-level entry reports its cascade boundary — never later than
	// its deadline, so a driver sleeping on Next cannot fire it late.
	e3 := NewEntry(func() {})
	w.Schedule(e3, t0.Add(700*time.Millisecond)) // level 1
	w.Stop(e1)
	next, ok := w.Next()
	if !ok || next.After(t0.Add(700*time.Millisecond)) {
		t.Fatalf("Next for a level-1 entry = +%v, must be ≤ +700ms", next.Sub(t0))
	}
}

// TestNextNeverSleepsPastADeadline is the property that makes a
// wake-on-Next driver correct: advancing exactly at Next() instants fires
// every entry within one tick of its deadline.
func TestNextNeverSleepsPastADeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := New(t0, time.Millisecond)
	type rec struct{ due, fired time.Time }
	recs := make([]*rec, 300)
	now := t0
	for i := range recs {
		r := &rec{due: t0.Add(time.Duration(rng.Int63n(int64(90 * time.Minute))))}
		recs[i] = r
		w.Schedule(NewEntry(func() { r.fired = now }), r.due)
	}
	for {
		next, ok := w.Next()
		if !ok {
			break
		}
		now = next
		w.Advance(now)
	}
	for _, r := range recs {
		if r.fired.IsZero() {
			t.Fatal("an entry never fired")
		}
		if r.fired.Before(r.due) {
			t.Fatalf("entry due +%v fired early at +%v", r.due.Sub(t0), r.fired.Sub(t0))
		}
		if late := r.fired.Sub(r.due); late > w.Tick() {
			t.Fatalf("entry due +%v fired %v late (max one tick)", r.due.Sub(t0), late)
		}
	}
}

// TestRandomizedAgainstReference drives the wheel with a random mix of
// schedules, re-arms and cancels and checks the surviving deadlines fire
// in reference order, each within one tick.
func TestRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := New(t0, time.Millisecond)
	now := t0

	type item struct {
		e     *Entry
		due   time.Time // reference deadline; zero when cancelled
		fired bool
	}
	items := make([]*item, 0, 512)
	var fireOrder []*item

	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(10); {
		case op < 5 || len(items) == 0: // schedule a new entry
			it := &item{due: now.Add(time.Duration(1 + rng.Int63n(int64(20*time.Second))))}
			it.e = NewEntry(func() { it.fired = true; fireOrder = append(fireOrder, it) })
			items = append(items, it)
			w.Schedule(it.e, it.due)
		case op < 7: // re-arm a live entry
			it := items[rng.Intn(len(items))]
			if it.fired || it.due.IsZero() {
				continue
			}
			it.due = now.Add(time.Duration(1 + rng.Int63n(int64(20*time.Second))))
			w.Schedule(it.e, it.due)
		case op < 8: // cancel
			it := items[rng.Intn(len(items))]
			if it.fired || it.due.IsZero() {
				continue
			}
			w.Stop(it.e)
			it.due = time.Time{}
		default: // advance a random amount
			now = now.Add(time.Duration(rng.Int63n(int64(500 * time.Millisecond))))
			w.Advance(now)
		}
	}
	now = now.Add(21 * time.Second)
	w.Advance(now)

	live := 0
	for _, it := range items {
		if it.due.IsZero() {
			if it.fired {
				t.Fatal("cancelled entry fired")
			}
			continue
		}
		live++
		if !it.fired {
			t.Fatalf("entry due +%v never fired", it.due.Sub(t0))
		}
	}
	if len(fireOrder) != live {
		t.Fatalf("fired %d entries, want %d", len(fireOrder), live)
	}
	if !sort.SliceIsSorted(fireOrder, func(i, j int) bool {
		return fireOrder[i].due.Before(fireOrder[j].due)
	}) {
		// Two deadlines inside the same tick may legitimately fire in
		// arming order; only out-of-order across ticks is a bug.
		for i := 1; i < len(fireOrder); i++ {
			a, b := fireOrder[i-1].due, fireOrder[i].due
			if b.Before(a) && a.Sub(b) > w.Tick() {
				t.Fatalf("fired out of order: +%v before +%v", a.Sub(t0), b.Sub(t0))
			}
		}
	}
}

func TestRearmIsAllocationFree(t *testing.T) {
	w := New(t0, time.Millisecond)
	e := NewEntry(func() {})
	at := t0.Add(time.Minute)
	if allocs := testing.AllocsPerRun(1000, func() {
		at = at.Add(50 * time.Millisecond)
		w.Schedule(e, at)
	}); allocs != 0 {
		t.Fatalf("Schedule allocated %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkScheduleRearm(b *testing.B) {
	w := New(t0, time.Millisecond)
	e := NewEntry(func() {})
	at := t0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at = at.Add(100 * time.Millisecond)
		w.Schedule(e, at)
	}
}

func BenchmarkAdvanceSteadyState(b *testing.B) {
	// 64 peers re-arming 100ms deadlines: the steady-state shape.
	w := New(t0, time.Millisecond)
	now := t0
	entries := make([]*Entry, 64)
	for i := range entries {
		i := i
		entries[i] = NewEntry(func() {
			w.Schedule(entries[i], now.Add(100*time.Millisecond))
		})
		w.Schedule(entries[i], now.Add(time.Duration(i)*time.Millisecond+100*time.Millisecond))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Millisecond)
		w.Advance(now)
	}
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
