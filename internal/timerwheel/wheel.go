// Package timerwheel implements a hashed hierarchical timer wheel: the
// deadline multiplexer behind the service's single runtime timer.
//
// The steady-state protocol re-arms a deadline per received heartbeat (the
// failure detector's freshness rule) and per emitted heartbeat burst (the
// pacer), at N peers × G groups × η ≈ 100 ms. Backing each of those with
// its own runtime timer costs one runtime-timer allocation and one
// scheduler interaction per re-arm. The wheel replaces all of them:
// entries are intrusive doubly-linked list nodes owned by their callers,
// so arm, re-arm and cancel are O(1) pointer splices with zero allocation
// after setup, and one driver (the host event loop, or the simulator's
// heap) advances the whole wheel.
//
// The layout is the classic hierarchy of hashed wheels (Varghese & Lauck
// scheme 6, as in the Linux kernel and Netty): Levels wheels of Size
// slots each, level l spanning Size^(l+1) ticks. An entry due within the
// level-0 horizon sits in the slot of its exact tick; farther entries sit
// in coarser wheels and cascade down as the clock crosses their window
// boundary, landing in their exact level-0 slot before they are due.
// Deadlines are rounded UP to the next tick boundary, so a timer never
// fires early — at most one tick late.
//
// The wheel is not safe for concurrent use: the owner (an event loop)
// must serialise Schedule/Stop/Advance, which also means callbacks fired
// by Advance run on the loop and may freely re-arm their own entries.
package timerwheel

import "time"

// Geometry of the hierarchy.
const (
	// Bits is the per-level slot index width.
	Bits = 6
	// Size is the number of slots per level.
	Size = 1 << Bits
	// Levels is the number of wheels in the hierarchy.
	Levels = 4
	// horizon is the farthest representable delta, in ticks (Size^Levels).
	horizon = 1 << (Bits * Levels)
)

// DefaultTick is the default wheel resolution. One millisecond is two to
// three decades below the protocol's timing constants (η ≈ 100 ms,
// detection bounds ≈ 1 s), so the ≤1-tick rounding is invisible, while a
// four-level wheel still spans 64 ms / 4.1 s / 4.4 min / 4.7 h windows —
// the top level comfortably beyond any protocol deadline.
const DefaultTick = time.Millisecond

// Entry is one schedulable deadline: an intrusive list node owned by its
// caller and reused across arms. Create it once with NewEntry and re-arm
// it forever; a parked Entry costs nothing.
type Entry struct {
	fn     func()
	expire int64 // absolute tick the entry is due at
	slot   *slot // non-nil while queued
	level  int8  // level of slot while queued
	next   *Entry
	prev   *Entry
}

// NewEntry returns an unarmed entry firing fn. The same entry must not be
// scheduled on two wheels.
func NewEntry(fn func()) *Entry { return &Entry{fn: fn} }

// Pending reports whether the entry is currently scheduled.
func (e *Entry) Pending() bool { return e.slot != nil }

// slot is one bucket: an intrusive FIFO so same-tick entries fire in
// arming order.
type slot struct {
	head *Entry
	tail *Entry
}

func (s *slot) append(e *Entry) {
	e.slot = s
	e.next = nil
	e.prev = s.tail
	if s.tail != nil {
		s.tail.next = e
	} else {
		s.head = e
	}
	s.tail = e
}

func (s *slot) remove(e *Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.slot, e.next, e.prev = nil, nil, nil
}

// Wheel is the hierarchy. All methods must be called from one goroutine.
type Wheel struct {
	tick  time.Duration
	start time.Time
	cur   int64 // every tick ≤ cur has been processed
	count int   // pending entries
	// perLevel lets the slot scans skip whole empty levels — in steady
	// state most deadlines live in one or two levels.
	perLevel [Levels]int
	slots    [Levels][Size]slot
}

// New returns a wheel whose tick 0 is start. A non-positive tick uses
// DefaultTick.
func New(start time.Time, tick time.Duration) *Wheel {
	if tick <= 0 {
		tick = DefaultTick
	}
	return &Wheel{tick: tick, start: start}
}

// Tick returns the wheel's resolution.
func (w *Wheel) Tick() time.Duration { return w.tick }

// Len returns the number of pending entries.
func (w *Wheel) Len() int { return w.count }

// timeOf converts an absolute tick back to a time.
func (w *Wheel) timeOf(tick int64) time.Time {
	return w.start.Add(time.Duration(tick) * w.tick)
}

// Schedule arms (or re-arms) e to fire at the first tick boundary not
// before at. A deadline at or before the wheel's current position fires on
// the next Advance. O(1); allocation free.
func (w *Wheel) Schedule(e *Entry, at time.Time) {
	if e.slot != nil {
		w.unlink(e)
		w.count--
	}
	d := at.Sub(w.start)
	expire := int64((d + w.tick - 1) / w.tick) // round up: never early
	if expire <= w.cur {
		expire = w.cur + 1
	}
	e.expire = expire
	w.place(e)
	w.count++
}

// place links e into the level and slot its delta selects. Entries beyond
// the horizon park in the farthest top-level slot and cascade from there.
func (w *Wheel) place(e *Entry) {
	delta := e.expire - w.cur
	idx := e.expire
	if delta >= horizon {
		idx = w.cur + horizon - 1
	}
	for l := 0; l < Levels; l++ {
		if delta < 1<<(Bits*(l+1)) || l == Levels-1 {
			w.slots[l][(idx>>(Bits*l))&(Size-1)].append(e)
			e.level = int8(l)
			w.perLevel[l]++
			return
		}
	}
}

// unlink detaches a queued entry from its slot and level accounting (the
// total count is the caller's, since cascades keep it unchanged).
func (w *Wheel) unlink(e *Entry) {
	w.perLevel[e.level]--
	e.slot.remove(e)
}

// Stop cancels e, reporting whether it was pending. O(1).
func (w *Wheel) Stop(e *Entry) bool {
	if e.slot == nil {
		return false
	}
	w.unlink(e)
	w.count--
	return true
}

// Advance moves the wheel up to now, firing every entry whose tick has
// passed, in (tick, arming-order) order. Callbacks run inline and may
// schedule or stop entries, including their own.
func (w *Wheel) Advance(now time.Time) {
	target := int64(now.Sub(w.start) / w.tick) // floor: tick not yet over
	for w.cur < target {
		if w.count == 0 {
			// Nothing pending: jump. This is what keeps a long-idle
			// wheel (or one resumed after a host suspend) cheap.
			w.cur = target
			return
		}
		// Skip runs of ticks with no due entry and no cascade boundary,
		// so a large wall-clock gap (host suspend, VM pause) costs one
		// slot scan per event rather than one loop iteration per
		// millisecond of gap.
		if next := w.nextEventTick(); next > w.cur+1 {
			if next > target {
				w.cur = target
				return
			}
			w.cur = next - 1
		}
		w.cur++
		if w.cur&(Size-1) == 0 {
			// The level-0 wheel wrapped: pull the next window down,
			// continuing upward only while each level's index wrapped too.
			for l := 1; l < Levels; l++ {
				idx := (w.cur >> (Bits * l)) & (Size - 1)
				w.cascade(l, idx)
				if idx != 0 {
					break
				}
			}
		}
		w.fire(&w.slots[0][w.cur&(Size-1)])
	}
}

// cascade re-places every entry of one coarse slot into finer wheels.
func (w *Wheel) cascade(level int, idx int64) {
	s := &w.slots[level][idx]
	for s.head != nil {
		e := s.head
		w.unlink(e)
		w.place(e)
	}
}

// fire pops and runs every entry of a due level-0 slot. Entries are
// unlinked before their callback runs, so callbacks can re-arm freely.
func (w *Wheel) fire(s *slot) {
	for s.head != nil {
		e := s.head
		w.unlink(e)
		w.count--
		e.fn()
	}
}

// Next returns the earliest instant at which the wheel needs an Advance
// call: the exact due time for entries within the level-0 horizon, or the
// cascade boundary of the nearest occupied coarse slot (waking there is at
// most one window early; the advance cascades and the next Next is
// exact). The second return is false when nothing is pending.
func (w *Wheel) Next() (time.Time, bool) {
	if w.count == 0 {
		return time.Time{}, false
	}
	return w.timeOf(w.nextEventTick()), true
}

// nextEventTick is the earliest tick at which anything happens: the exact
// due tick of the nearest level-0 entry, or the cascade boundary of the
// nearest occupied coarse slot. Must only be called with entries pending.
func (w *Wheel) nextEventTick() int64 {
	best := int64(-1)
	for l := 0; l < Levels; l++ {
		// Every occupied level is scanned: a coarse slot's cascade
		// boundary (a multiple of its window size) can precede the finest
		// pending entry, and sleeping past it would fire entries late.
		if w.perLevel[l] == 0 {
			continue
		}
		pos := w.cur >> (Bits * l)
		for i := int64(1); i <= Size; i++ {
			if w.slots[l][(pos+i)&(Size-1)].head == nil {
				continue
			}
			// Level 0: the slot's unique tick in (cur, cur+Size].
			// Level l: the tick at which the slot cascades down.
			at := (pos + i) << (Bits * l)
			if best < 0 || at < best {
				best = at
			}
			break
		}
	}
	if best < 0 {
		// Pending entries exist but every slot looked empty: impossible by
		// construction (count is maintained with the lists).
		panic("timerwheel: count/slot bookkeeping diverged")
	}
	if best <= w.cur {
		best = w.cur + 1
	}
	return best
}
