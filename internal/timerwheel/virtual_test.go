package timerwheel_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"stableleader/internal/simnet"
	"stableleader/internal/timerwheel"
)

// simDriver runs a Wheel on the discrete-event engine the way the
// real-time Service runs it on a runtime timer: one engine event armed at
// Wheel.Next, advancing the wheel and re-arming when it fires. This is
// the virtual-time twin of the serviceRuntime driver.
type simDriver struct {
	eng   *simnet.Engine
	w     *timerwheel.Wheel
	timer *simnet.Timer
	armed time.Time
}

func (d *simDriver) kick() {
	next, ok := d.w.Next()
	if !ok {
		if d.timer != nil {
			d.timer.Stop()
			d.timer = nil
			d.armed = time.Time{}
		}
		return
	}
	if d.timer != nil && d.armed.Equal(next) {
		return
	}
	if d.timer != nil {
		d.timer.Stop()
	}
	d.armed = next
	d.timer = d.eng.After(next.Sub(d.eng.Now()), func() {
		d.timer = nil
		d.armed = time.Time{}
		d.w.Advance(d.eng.Now())
		d.kick()
	})
}

// fireLog records (deadline id, virtual instant) pairs in fire order.
type fireLog []string

func (l *fireLog) add(id int, at time.Time) {
	*l = append(*l, fmt.Sprintf("%d@%v", id, at.Sub(simnet.Epoch())))
}

// TestWheelMatchesAfterFuncUnderVirtualTime is the determinism property
// behind the timer-plane refactor: a randomized schedule of deadlines —
// including re-arms and cancels, the failure detector's steady-state
// behaviour — fires in exactly the same order, at exactly the same
// virtual instants, whether the deadlines go through a wheel driven off
// the event heap or directly through the heap's AfterFunc. Deadlines are
// tick-aligned (the protocol's timing constants are all far coarser than
// the 1ms tick); mutations are injected at half-tick instants so the two
// paths' behaviour at every shared instant is well defined. With
// identical fire sequences, a protocol run — and hence an election
// outcome — cannot depend on which path scheduled its timers; the
// simulation stays a pure function of its seed.
func TestWheelMatchesAfterFuncUnderVirtualTime(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 17, 20080301} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			wheelLog := runSchedule(seed, true)
			heapLog := runSchedule(seed, false)
			if len(wheelLog) != len(heapLog) {
				t.Fatalf("wheel fired %d deadlines, AfterFunc fired %d", len(wheelLog), len(heapLog))
			}
			for i := range heapLog {
				if wheelLog[i] != heapLog[i] {
					t.Fatalf("fire %d diverged: wheel %s, AfterFunc %s", i, wheelLog[i], heapLog[i])
				}
			}
			// Same seed, same path, second run: identical (a pure
			// function of the seed).
			again := runSchedule(seed, true)
			for i := range wheelLog {
				if wheelLog[i] != again[i] {
					t.Fatalf("wheel run is not reproducible at fire %d: %s vs %s", i, wheelLog[i], again[i])
				}
			}
		})
	}
}

// runSchedule replays one seeded scenario: n deadlines scheduled up
// front, then random re-arms and cancels injected at random half-tick
// instants, all through either the wheel or direct AfterFunc.
func runSchedule(seed int64, viaWheel bool) fireLog {
	const tick = time.Millisecond
	rng := rand.New(rand.NewSource(seed))
	eng := simnet.NewEngine(seed)
	w := timerwheel.New(eng.Now(), tick)
	drv := &simDriver{eng: eng, w: w}

	var log fireLog
	const n = 120
	entries := make([]*timerwheel.Entry, n)
	timers := make([]*simnet.Timer, n)

	// schedule (re)arms deadline i at the tick-aligned instant dticks
	// ticks past the next boundary — always strictly in the future, so
	// wheel round-up and heap AfterFunc fire at the identical instant.
	schedule := func(i int, dticks int64) {
		now := eng.Now()
		elapsed := now.Sub(simnet.Epoch())
		base := (elapsed + tick - 1) / tick
		target := simnet.Epoch().Add(time.Duration(int64(base)+dticks) * tick)
		id := i
		fire := func() { log.add(id, eng.Now()) }
		if viaWheel {
			if entries[i] == nil {
				entries[i] = timerwheel.NewEntry(fire)
			}
			w.Schedule(entries[i], target)
			drv.kick()
		} else {
			if timers[i] != nil {
				timers[i].Stop()
			}
			timers[i] = eng.After(target.Sub(now), fire)
		}
	}
	cancel := func(i int) {
		if viaWheel {
			if entries[i] != nil {
				w.Stop(entries[i])
				drv.kick()
			}
		} else if timers[i] != nil {
			timers[i].Stop()
		}
	}
	dticks := func() int64 { return 1 + rng.Int63n(int64(10*time.Minute)/int64(tick)) }

	for i := 0; i < n; i++ {
		schedule(i, dticks())
	}
	// Inject churn at random half-tick instants: the engine's own event
	// stream carries the mutations, exactly like protocol handlers
	// re-arming their monitors mid-run. The rng draws happen at
	// injection-schedule time, so both paths see identical mutations.
	for j := 0; j < n; j++ {
		i := rng.Intn(n)
		at := time.Duration(rng.Int63n(int64(5*time.Minute)/int64(tick)))*tick + tick/2
		if rng.Intn(4) == 0 {
			eng.After(at, func() { cancel(i) })
		} else {
			d := dticks()
			eng.After(at, func() { schedule(i, d) })
		}
	}
	eng.RunUntil(simnet.Epoch().Add(24 * time.Hour))
	return log
}
