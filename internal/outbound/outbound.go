// Package outbound implements the per-destination packet scheduler of the
// leader election node: the layer between the protocol core and the
// transport that coalesces every message bound for one peer into a single
// datagram carrying a wire.Batch envelope.
//
// One shared service instance multiplexes many groups (the paper's
// lightweight-infrastructure argument), so a node in G groups would
// otherwise ship G independent ALIVE datagrams to the same peer every
// heartbeat interval. The scheduler stages messages per destination and
// flushes
//
//   - when the staged envelope reaches the size threshold (~1200 B, under
//     the common 1500 B MTU),
//   - when the oldest staged message's coalescing delay expires (the node
//     derives it from the link's heartbeat interval), or
//   - immediately, for latency-critical traffic (ACCUSE, LEAVE) — which
//     drains everything staged for the peer first, preserving per-peer
//     FIFO order.
//
// A flush holding a single message emits it bare — byte-identical to the
// pre-batch wire format — so mixed-version clusters interoperate on the
// fast path.
//
// Like the protocol core, a Scheduler is single-threaded by contract: the
// host serialises Enqueue, timer callbacks and Stop onto one event loop.
package outbound

import (
	"time"

	"stableleader/id"
	"stableleader/internal/clock"
	"stableleader/internal/metrics"
	"stableleader/internal/wire"
)

// DefaultMaxBytes is the flush threshold for a staged envelope: comfortably
// inside a 1500 B Ethernet MTU after UDP/IP headers, so coalescing never
// causes IP fragmentation on common networks.
const DefaultMaxBytes = 1200

// Flushed is one datagram of a gathered drain: a flushed envelope (bare
// message or *wire.Batch) and its destination. See Config.EmitBatch.
type Flushed struct {
	To  id.Process
	Msg wire.Message
}

// Config parameterises a Scheduler.
type Config struct {
	// Clock provides time and timers (the host's event loop clock).
	Clock clock.Clock
	// Emit transmits one flushed datagram: a bare message or a *wire.Batch.
	// Ownership of the message (and a batch's slice) transfers to Emit.
	Emit func(to id.Process, m wire.Message)
	// EmitBatch, when non-nil, receives a whole gathered drain (FlushAll)
	// as one slice instead of per-destination Emit calls, so a
	// batch-capable transport can vector the drain into one kernel
	// crossing. Ownership of each message transfers exactly as with Emit;
	// the slice itself is scheduler scratch, valid only for the call.
	EmitBatch func(batch []Flushed)
	// MaxBytes overrides the flush threshold (default DefaultMaxBytes).
	MaxBytes int
	// Counters, when non-nil, receives outbound datagram accounting.
	Counters *metrics.PacketCounters
	// Disabled bypasses coalescing entirely: every Enqueue emits one bare
	// datagram. Exists for the multigroup ablation experiment.
	Disabled bool
}

// queue is the staging buffer for one destination. Queues persist once a
// peer has been contacted: they are a few dozen bytes each and the peer set
// is bounded by the membership the node has ever seen.
type queue struct {
	msgs     []wire.Message
	bytes    int // sum of wire.ItemSize over msgs (envelope body)
	deadline time.Time
	// timer is created once with the queue and re-armed per coalescing
	// window — O(1) and allocation free on wheel-backed clocks, where the
	// old per-window AfterFunc allocated a runtime timer every flush.
	timer clock.Rearmer
	armed bool
}

// Scheduler stages outbound messages per destination.
type Scheduler struct {
	cfg     Config
	queues  map[id.Process]*queue
	scratch []Flushed // FlushAll's gather buffer, reused across drains
	stopped bool
}

// New returns a Scheduler emitting through cfg.Emit.
func New(cfg Config) *Scheduler {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	return &Scheduler{cfg: cfg, queues: make(map[id.Process]*queue)}
}

// Enqueue stages m for transmission to to. maxDelay bounds how long m may
// wait for companions; zero (or negative) flushes the destination's whole
// queue synchronously — the immediate path for latency-critical kinds.
//
//leadervet:hotpath
func (s *Scheduler) Enqueue(to id.Process, m wire.Message, maxDelay time.Duration) {
	if s.stopped {
		return
	}
	if s.cfg.Disabled {
		s.cfg.Counters.CountOut(1, m.WireSize()+wire.UDPOverhead)
		s.cfg.Emit(to, m)
		return
	}
	q := s.queues[to]
	if q == nil {
		// First contact with this peer: the queue and its timer live for
		// the rest of the scheduler's life, so both allocations are
		// one-time, not per-message.
		q = &queue{}                                                            //leadervet:ignore — once per peer
		q.timer = clock.NewTimer(s.cfg.Clock, func() { s.flushExpired(to, q) }) //leadervet:ignore — once per peer
		s.queues[to] = q
	}
	item := wire.ItemSize(m)
	// Never let the staged envelope grow past the threshold: ship what is
	// already staged first (order preserved), then stage m.
	if len(q.msgs) > 0 && q.bytes+item+wire.BatchOverhead > s.cfg.MaxBytes {
		s.flush(to, q)
	}
	q.msgs = append(q.msgs, m)
	q.bytes += item
	if maxDelay <= 0 || q.bytes+wire.BatchOverhead >= s.cfg.MaxBytes {
		s.flush(to, q)
		return
	}
	deadline := s.cfg.Clock.Now().Add(maxDelay)
	if !q.armed || deadline.Before(q.deadline) {
		q.deadline = deadline
		q.armed = true
		q.timer.Reset(maxDelay)
	}
}

// flushExpired is the flush-timer callback for one queue. A stale
// callback (the queue was flushed and re-armed after the fire was
// already queued) is discarded by the armed/deadline checks: a live arm
// always has a future deadline, so a callback arriving before it is a
// leftover of an earlier window.
func (s *Scheduler) flushExpired(to id.Process, q *queue) {
	if s.stopped || s.queues[to] != q || !q.armed {
		return
	}
	if s.cfg.Clock.Now().Before(q.deadline) {
		return // re-armed since; the newer fire will come at q.deadline
	}
	q.armed = false
	s.flush(to, q)
}

// Flush transmits whatever is staged for to, if anything.
func (s *Scheduler) Flush(to id.Process) {
	if q := s.queues[to]; q != nil {
		s.flush(to, q)
	}
}

// FlushAll drains every staging buffer, in destination order for
// reproducibility. With an EmitBatch sink the whole drain goes out as
// one gathered slice — one vectored send for a burst that would
// otherwise pay a syscall per destination.
func (s *Scheduler) FlushAll() {
	if s.cfg.EmitBatch == nil {
		for _, to := range id.SortedMapKeys(s.queues) {
			s.flush(to, s.queues[to])
		}
		return
	}
	s.scratch = s.scratch[:0]
	for _, to := range id.SortedMapKeys(s.queues) {
		if m, ok := s.take(s.queues[to]); ok {
			s.scratch = append(s.scratch, Flushed{To: to, Msg: m})
		}
	}
	if len(s.scratch) == 0 {
		return
	}
	s.cfg.EmitBatch(s.scratch)
	for i := range s.scratch {
		s.scratch[i] = Flushed{} // ownership moved; don't retain messages
	}
	s.scratch = s.scratch[:0]
}

// take removes q's staged messages as one datagram envelope and counts
// it; ok is false when nothing is staged.
func (s *Scheduler) take(q *queue) (m wire.Message, ok bool) {
	if q.armed {
		q.timer.Stop()
		q.armed = false
	}
	n := len(q.msgs)
	if n == 0 {
		return nil, false
	}
	if n == 1 {
		// Fast path: a lone message ships bare, byte-compatible with the
		// pre-batch format. The slice slot is cleared so the staged buffer
		// can be reused without retaining the message.
		m = q.msgs[0]
		q.msgs[0] = nil
		q.msgs = q.msgs[:0]
	} else {
		// Ownership of the slice moves into the envelope (the host may
		// retain it past Emit, e.g. a simulated in-flight datagram).
		m = &wire.Batch{Msgs: q.msgs}
		q.msgs = nil
	}
	q.bytes = 0
	s.cfg.Counters.CountOut(n, m.WireSize()+wire.UDPOverhead)
	return m, true
}

// Staged reports the scheduler's current staging depth: the total number
// of messages waiting for a coalescing window to close, and how many
// destinations hold at least one. Called on the owning event loop
// (scrape-time observability, not a hot path).
func (s *Scheduler) Staged() (msgs, dests int) {
	for _, q := range s.queues {
		if n := len(q.msgs); n > 0 {
			msgs += n
			dests++
		}
	}
	return msgs, dests
}

// flush emits q's staged messages as one datagram.
func (s *Scheduler) flush(to id.Process, q *queue) {
	if m, ok := s.take(q); ok {
		s.cfg.Emit(to, m)
	}
}

// Stop halts the scheduler, dropping anything still staged (crash
// semantics; graceful paths flush through the immediate-kind rule before
// stopping).
func (s *Scheduler) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	for _, to := range id.SortedMapKeys(s.queues) {
		q := s.queues[to]
		q.timer.Stop()
		q.armed = false
		q.msgs = nil
	}
}
