package outbound

import (
	"testing"
	"time"

	"stableleader/id"
	"stableleader/internal/clock"
	"stableleader/internal/metrics"
	"stableleader/internal/simnet"
	"stableleader/internal/wire"
)

// engClock adapts the deterministic simulation engine to clock.Clock.
type engClock struct{ eng *simnet.Engine }

func (c engClock) Now() time.Time { return c.eng.Now() }
func (c engClock) AfterFunc(d time.Duration, fn func()) clock.Timer {
	return c.eng.After(d, fn)
}

// emitted records one flushed datagram.
type emitted struct {
	to id.Process
	m  wire.Message
}

type harness struct {
	eng      *simnet.Engine
	counters *metrics.PacketCounters
	sched    *Scheduler
	out      []emitted
}

func newHarness(t *testing.T, mutate func(*Config)) *harness {
	t.Helper()
	h := &harness{eng: simnet.NewEngine(1), counters: &metrics.PacketCounters{}}
	cfg := Config{
		Clock:    engClock{h.eng},
		Emit:     func(to id.Process, m wire.Message) { h.out = append(h.out, emitted{to, m}) },
		Counters: h.counters,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	h.sched = New(cfg)
	return h
}

func alive(g id.Group, seq uint64) *wire.Alive {
	return &wire.Alive{Group: g, Sender: "a", Incarnation: 1, Seq: seq, Interval: int64(time.Second)}
}

func TestCoalescesIntoOneBatch(t *testing.T) {
	h := newHarness(t, nil)
	h.sched.Enqueue("b", alive("g1", 1), time.Millisecond)
	h.sched.Enqueue("b", alive("g2", 1), time.Millisecond)
	h.sched.Enqueue("b", alive("g3", 1), time.Millisecond)
	if len(h.out) != 0 {
		t.Fatalf("flushed before the coalescing delay: %v", h.out)
	}
	h.eng.RunFor(time.Millisecond)
	if len(h.out) != 1 {
		t.Fatalf("emitted %d datagrams, want 1", len(h.out))
	}
	b, ok := h.out[0].m.(*wire.Batch)
	if !ok || len(b.Msgs) != 3 {
		t.Fatalf("want a 3-message batch, got %+v", h.out[0].m)
	}
	// FIFO per destination.
	for i, g := range []id.Group{"g1", "g2", "g3"} {
		if b.Msgs[i].GroupID() != g {
			t.Errorf("slot %d carries %s, want %s", i, b.Msgs[i].GroupID(), g)
		}
	}
	st := h.counters.Snapshot()
	if st.DatagramsOut != 1 || st.MessagesOut != 3 || st.BatchesOut != 1 || st.CoalescedOut != 3 {
		t.Errorf("counters = %+v", st)
	}
	if want := int64(b.WireSize() + wire.UDPOverhead); st.BytesOut != want {
		t.Errorf("BytesOut = %d, want %d", st.BytesOut, want)
	}
	// Nothing further fires.
	h.eng.RunFor(time.Second)
	if len(h.out) != 1 {
		t.Errorf("spurious late flush: %v", h.out)
	}
}

func TestSingleMessageShipsBare(t *testing.T) {
	h := newHarness(t, nil)
	m := alive("g", 7)
	h.sched.Enqueue("b", m, time.Millisecond)
	h.eng.RunFor(2 * time.Millisecond)
	if len(h.out) != 1 || h.out[0].m != wire.Message(m) {
		t.Fatalf("want the bare message, got %+v", h.out)
	}
	st := h.counters.Snapshot()
	if st.DatagramsOut != 1 || st.MessagesOut != 1 || st.BatchesOut != 0 || st.CoalescedOut != 0 {
		t.Errorf("counters = %+v", st)
	}
}

func TestImmediateKindDrainsQueueSynchronously(t *testing.T) {
	h := newHarness(t, nil)
	h.sched.Enqueue("b", alive("g1", 1), 5*time.Millisecond)
	h.sched.Enqueue("b", alive("g2", 1), 5*time.Millisecond)
	acc := &wire.Accuse{Group: "g1", Sender: "a", Incarnation: 1}
	h.sched.Enqueue("b", acc, 0)
	if len(h.out) != 1 {
		t.Fatalf("immediate enqueue did not flush synchronously: %v", h.out)
	}
	b, ok := h.out[0].m.(*wire.Batch)
	if !ok || len(b.Msgs) != 3 || b.Msgs[2] != wire.Message(acc) {
		t.Fatalf("queue must drain in order with the urgent message last: %+v", h.out[0].m)
	}
	h.eng.RunFor(time.Second)
	if len(h.out) != 1 {
		t.Errorf("cancelled timer still fired: %v", h.out)
	}
}

func TestSizeThresholdFlushes(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.MaxBytes = 200 })
	for i := 0; i < 10; i++ {
		h.sched.Enqueue("b", alive("group-with-a-name", uint64(i)), time.Second)
	}
	if len(h.out) == 0 {
		t.Fatal("size threshold never flushed")
	}
	for _, e := range h.out {
		if size := e.m.WireSize(); size > 200 {
			t.Errorf("emitted datagram of %d bytes exceeds the threshold", size)
		}
	}
}

func TestOversizedMessageShipsAlone(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.MaxBytes = 64 })
	big := &wire.Hello{Group: "g", Sender: "a", Incarnation: 1}
	for i := 0; i < 20; i++ {
		big.Members = append(big.Members, wire.MemberInfo{ID: id.Process("member-000" + string(rune('a'+i))), Incarnation: 1})
	}
	if big.WireSize() <= 64 {
		t.Fatal("test setup: hello not oversized")
	}
	h.sched.Enqueue("b", big, time.Millisecond)
	if len(h.out) != 1 || h.out[0].m != wire.Message(big) {
		t.Fatalf("oversized message must flush immediately and bare: %+v", h.out)
	}
}

func TestEarlierDeadlineWins(t *testing.T) {
	h := newHarness(t, nil)
	h.sched.Enqueue("b", alive("g1", 1), 10*time.Millisecond)
	h.sched.Enqueue("b", alive("g2", 1), time.Millisecond)
	h.eng.RunFor(time.Millisecond)
	if len(h.out) != 1 {
		t.Fatalf("queue did not flush at the earlier deadline: %v", h.out)
	}
	// A later deadline must not postpone an armed earlier one.
	h.sched.Enqueue("b", alive("g3", 1), time.Millisecond)
	h.sched.Enqueue("b", alive("g4", 1), 10*time.Millisecond)
	h.eng.RunFor(time.Millisecond)
	if len(h.out) != 2 {
		t.Fatalf("armed deadline was postponed: %v", h.out)
	}
}

func TestPerDestinationIsolation(t *testing.T) {
	h := newHarness(t, nil)
	h.sched.Enqueue("b", alive("g1", 1), time.Millisecond)
	h.sched.Enqueue("c", alive("g1", 1), time.Millisecond)
	h.eng.RunFor(time.Millisecond)
	if len(h.out) != 2 {
		t.Fatalf("emitted %d datagrams, want one per destination", len(h.out))
	}
	if h.out[0].to == h.out[1].to {
		t.Errorf("both datagrams went to %q", h.out[0].to)
	}
}

func TestDisabledBypassesCoalescing(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.Disabled = true })
	h.sched.Enqueue("b", alive("g1", 1), time.Millisecond)
	h.sched.Enqueue("b", alive("g2", 1), time.Millisecond)
	if len(h.out) != 2 {
		t.Fatalf("disabled scheduler staged messages: %v", h.out)
	}
	for _, e := range h.out {
		if _, ok := e.m.(*wire.Batch); ok {
			t.Error("disabled scheduler emitted a batch")
		}
	}
	st := h.counters.Snapshot()
	if st.DatagramsOut != 2 || st.MessagesOut != 2 || st.CoalescedOut != 0 {
		t.Errorf("counters = %+v", st)
	}
}

func TestStopDropsStagedTraffic(t *testing.T) {
	h := newHarness(t, nil)
	h.sched.Enqueue("b", alive("g1", 1), time.Millisecond)
	h.sched.Stop()
	h.sched.Enqueue("b", alive("g2", 1), 0)
	h.eng.RunFor(time.Second)
	if len(h.out) != 0 {
		t.Errorf("stopped scheduler emitted %v", h.out)
	}
}

func TestFlushAllDrainsEverything(t *testing.T) {
	h := newHarness(t, nil)
	h.sched.Enqueue("c", alive("g1", 1), time.Hour)
	h.sched.Enqueue("b", alive("g1", 1), time.Hour)
	h.sched.FlushAll()
	if len(h.out) != 2 {
		t.Fatalf("FlushAll emitted %d datagrams, want 2", len(h.out))
	}
	// Deterministic destination order.
	if h.out[0].to != "b" || h.out[1].to != "c" {
		t.Errorf("FlushAll order = %v, want sorted by id", []id.Process{h.out[0].to, h.out[1].to})
	}
}
