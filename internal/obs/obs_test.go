package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestCounterRegistry(t *testing.T) {
	r := NewRegistry(2, 0)
	r.Shard(0).Inc(CElectionsWon)
	r.Shard(0).Add(CHeartbeats, 5)
	r.Shard(1).Inc(CElectionsWon)
	r.Shard(1).Inc(CSuspicions)

	var total Snapshot
	for i := 0; i < r.NumShards(); i++ {
		total.Merge(r.Shard(i).Snapshot())
	}
	if got := total.Get(CElectionsWon); got != 2 {
		t.Errorf("CElectionsWon = %d, want 2", got)
	}
	if got := total.Get(CHeartbeats); got != 5 {
		t.Errorf("CHeartbeats = %d, want 5", got)
	}
	if got := total.Get(CSuspicions); got != 1 {
		t.Errorf("CSuspicions = %d, want 1", got)
	}
	if got := total.Get(CDemotions); got != 0 {
		t.Errorf("CDemotions = %d, want 0", got)
	}
}

func TestNilShardIsSafe(t *testing.T) {
	var s *Shard
	s.Inc(CElectionsWon)
	s.Add(CHeartbeats, 3)
	s.ObserveLeaderless(time.Second)
	s.Record(KindSuspect, "g", "p", 1, 0, time.Now())
	if snap := s.Snapshot(); snap.Get(CElectionsWon) != 0 {
		t.Error("nil shard snapshot not zero")
	}
	if recs := s.FlightSnapshot(nil); len(recs) != 0 {
		t.Errorf("nil shard flight snapshot = %d records", len(recs))
	}
}

func TestCounterDefsComplete(t *testing.T) {
	seen := map[string]Counter{}
	for c := Counter(0); int(c) < CounterCount; c++ {
		name, help := c.Name(), c.Help()
		if name == "" || help == "" {
			t.Errorf("counter %d has empty name or help", c)
			continue
		}
		if !strings.HasPrefix(name, "stableleader_") || !strings.HasSuffix(name, "_total") {
			t.Errorf("counter %d name %q breaks the naming convention", c, name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("counters %d and %d share name %q", prev, c, name)
		}
		seen[name] = c
	}
}

func TestHistogramBuckets(t *testing.T) {
	var s Shard
	s.ObserveLeaderless(0)                      // first bucket (≤ 1ms)
	s.ObserveLeaderless(500 * time.Microsecond) // first bucket
	s.ObserveLeaderless(100 * time.Millisecond) // ≤ 0.256
	s.ObserveLeaderless(time.Hour)              // +Inf bucket

	h := s.Snapshot().Leaderless
	if h.N != 4 {
		t.Fatalf("N = %d, want 4", h.N)
	}
	if h.Counts[0] != 2 {
		t.Errorf("bucket[0] = %d, want 2", h.Counts[0])
	}
	bounds := LeaderlessBounds()
	idx256 := -1
	for i, b := range bounds {
		if b == 0.256 {
			idx256 = i
		}
	}
	if idx256 < 0 || h.Counts[idx256] != 1 {
		t.Errorf("0.256 bucket = %v (idx %d), want 1", h.Counts, idx256)
	}
	if h.Counts[len(bounds)] != 1 {
		t.Errorf("+Inf bucket = %d, want 1", h.Counts[len(bounds)])
	}
	wantSum := uint64(500*time.Microsecond + 100*time.Millisecond + time.Hour)
	if h.SumNS != wantSum {
		t.Errorf("SumNS = %d, want %d", h.SumNS, wantSum)
	}
}

func TestFlightRingWraps(t *testing.T) {
	r := NewRegistry(1, 4)
	s := r.Shard(0)
	base := time.Date(2008, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 7; i++ {
		s.Record(KindLeaderChange, "g", "p", int64(i), 0, base.Add(time.Duration(i)*time.Second))
	}
	recs := s.FlightSnapshot(nil)
	if len(recs) != 4 {
		t.Fatalf("retained %d records, want 4 (ring depth)", len(recs))
	}
	for i, rec := range recs {
		if want := int64(3 + i); rec.Inc != want {
			t.Errorf("record %d Inc = %d, want %d (oldest-first, newest retained)", i, rec.Inc, want)
		}
	}
}

func TestFlightKindStrings(t *testing.T) {
	kinds := []Kind{KindSuspect, KindTrust, KindRankChange, KindStandby, KindHandover, KindLeaderChange}
	want := []string{"suspect", "trust", "rank-change", "standby", "handover", "leader-change"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want[i])
		}
	}
	if Kind(0).String() != "unknown" {
		t.Errorf("zero kind = %q, want unknown", Kind(0).String())
	}
}

func TestWriteFlightJSON(t *testing.T) {
	base := time.Date(2008, 3, 1, 0, 0, 0, 0, time.UTC)
	// Deliberately out of order: the writer sorts by timestamp.
	records := []Record{
		{At: base.Add(2 * time.Second), Kind: KindLeaderChange, Group: "g", Subject: "b", Inc: 7},
		{At: base, Kind: KindSuspect, Group: "g", Subject: "a", Inc: 3},
		{At: base.Add(time.Second), Kind: KindRankChange, Group: "g", Subject: "a", Inc: 3, Detail: 1},
	}
	var buf bytes.Buffer
	if err := WriteFlightJSON(&buf, "node-1", records); err != nil {
		t.Fatal(err)
	}
	var env struct {
		Node    string `json:"node"`
		Records []struct {
			At      string `json:"at"`
			Kind    string `json:"kind"`
			Group   string `json:"group"`
			Subject string `json:"subject"`
			Inc     int64  `json:"inc"`
			Detail  int64  `json:"detail"`
		} `json:"records"`
	}
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if env.Node != "node-1" || len(env.Records) != 3 {
		t.Fatalf("envelope = %+v", env)
	}
	wantKinds := []string{"suspect", "rank-change", "leader-change"}
	for i, r := range env.Records {
		if r.Kind != wantKinds[i] {
			t.Errorf("record %d kind = %q, want %q (time-sorted)", i, r.Kind, wantKinds[i])
		}
	}
}

func TestExpositionCounterAndGauge(t *testing.T) {
	var e Exposition
	e.Counter("x_total", "Help text.")
	e.Sample("x_total", 42)
	e.Gauge("y", "A gauge.")
	e.Sample("y", 1.5, "shard", "0")
	out := string(e.Bytes())
	for _, want := range []string{
		"# HELP x_total Help text.\n",
		"# TYPE x_total counter\n",
		"x_total 42\n",
		"# TYPE y gauge\n",
		`y{shard="0"} 1.5` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionHistogram(t *testing.T) {
	var s Shard
	s.ObserveLeaderless(2 * time.Millisecond)
	s.ObserveLeaderless(10 * time.Second)
	var e Exposition
	e.Histogram("ll_seconds", "h", LeaderlessBounds(), s.Snapshot().Leaderless)
	out := string(e.Bytes())
	for _, want := range []string{
		"# TYPE ll_seconds histogram\n",
		`ll_seconds_bucket{le="0.001"} 0` + "\n",
		`ll_seconds_bucket{le="0.004"} 1` + "\n",
		`ll_seconds_bucket{le="65.536"} 2` + "\n",
		`ll_seconds_bucket{le="+Inf"} 2` + "\n",
		"ll_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets must be monotone; _sum is seconds.
	if !strings.Contains(out, "ll_seconds_sum 10.002\n") {
		t.Errorf("unexpected _sum:\n%s", out)
	}
}

func TestExpositionEscaping(t *testing.T) {
	var e Exposition
	e.Gauge("z", "line\nbreak and back\\slash")
	e.Sample("z", 1, "l", "va\"l\nue\\x")
	out := string(e.Bytes())
	if !strings.Contains(out, `line\nbreak and back\\slash`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `z{l="va\"l\nue\\x"} 1`) {
		t.Errorf("label not escaped:\n%s", out)
	}
}

func TestExpositionFloatRendering(t *testing.T) {
	var e Exposition
	e.Gauge("f", "f")
	e.Sample("f", 3)
	e.Sample("f", 0.125, "k", "frac")
	out := string(e.Bytes())
	if !strings.Contains(out, "f 3\n") {
		t.Errorf("integral value rendered oddly:\n%s", out)
	}
	if !strings.Contains(out, `f{k="frac"} 0.125`+"\n") {
		t.Errorf("fractional value rendered oddly:\n%s", out)
	}
}
