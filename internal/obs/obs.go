// Package obs is the service's observability plane: a dependency-free,
// shard-local metrics registry, a protocol flight recorder, and a
// hand-rolled Prometheus text-exposition writer.
//
// The registry follows the same ownership discipline as the protocol
// itself. Each event-loop shard owns one Shard of cache-line-padded
// counter slots and writes them with plain stores — no atomics, no
// locks, nothing on the hot path but an indexed increment. Aggregation
// happens only at scrape time: the host serialises a Snapshot call
// through each shard's event loop (the same path as any loop query) and
// sums the copies off-loop. A scrape therefore observes each shard at a
// loop-quiescent instant, and the steady state pays nothing for being
// observable.
//
// The flight recorder applies the identical idea to *decisions* instead
// of counts: every protocol-visible edge (suspect, trust, rank change,
// standby nomination, handover, leader change) appends one fixed-size
// binary record to the shard's ring. Appends are plain stores into a
// preallocated buffer; dumping copies the ring out through the loop and
// renders JSON off it, so a disputed election can be reconstructed from
// every node's last N protocol decisions at zero steady-state cost.
//
// Every Shard method is nil-receiver safe: a host built without the
// plane passes nil and every instrumentation site degrades to a branch.
package obs

import "time"

// Counter names one shard-local counter slot. Counters are written by
// the owning event loop with plain stores and aggregated at scrape
// time; see the package comment for the ownership rules.
type Counter uint8

// The counter set. Grouped by subsystem; the exposition names and help
// strings live in counterDefs and must stay index-aligned.
const (
	// Election plane.
	CElectionsStarted Counter = iota // elected view lost: an election began
	CElectionsWon                    // local process adopted itself as leader
	CLeaderChanges                   // any elected leader view adopted
	CDemotions                       // local process lost its own leadership
	CDropouts                        // ΩL voluntary competition drop-outs

	// Failure detection plane.
	CSuspicions     // trust→suspect edges
	CTrustRestored  // suspect→trust edges
	CHeartbeats     // heartbeats fed to monitors
	CFDReconfigs    // (η, δ) reconfigurations adopted
	CAccusationsOut // ACCUSE messages sent
	CAccusationsIn  // ACCUSE messages received

	// Standby / handover plane.
	CStandbyNominations // standby view changes to a live nominee
	CHandoversSent      // planned handovers granted (leave, depose)
	CHandoversRecv      // HANDOVER messages received

	// Client plane.
	CSubscribes    // SUBSCRIBE messages accepted
	CRenews        // LEASE_RENEW messages handled
	CUnsubscribes  // UNSUBSCRIBE messages handled
	CSnapshotsSent // LeaderSnapshot fan-outs sent
	CLeaseExpiries // leases dropped unrenewed
	CTombstones    // tombstone snapshots sent

	// Inbound packet plane (per-shard share of the steered datagrams).
	CInboundParts      // datagram parts dispatched on this shard
	CInboundSplitParts // continuation parts of datagrams split across shards

	counterCount // must stay last
)

// CounterCount is the number of counter slots (for hosts sizing
// aggregate arrays).
const CounterCount = int(counterCount)

// counterDef is one counter's exposition metadata.
type counterDef struct{ name, help string }

// counterDefs is index-aligned with the Counter constants.
var counterDefs = [counterCount]counterDef{
	CElectionsStarted:   {"stableleader_elections_started_total", "Elected leader views lost: elections begun from this node's perspective."},
	CElectionsWon:       {"stableleader_elections_won_total", "Elections in which this node adopted itself as leader."},
	CLeaderChanges:      {"stableleader_leader_changes_total", "Elected leader views adopted (any leader)."},
	CDemotions:          {"stableleader_demotions_total", "Times this node lost its own leadership."},
	CDropouts:           {"stableleader_election_dropouts_total", "Voluntary competition drop-outs (OmegaL phase bumps)."},
	CSuspicions:         {"stableleader_fd_suspicions_total", "Failure detector trust-to-suspect edges."},
	CTrustRestored:      {"stableleader_fd_trust_restored_total", "Failure detector suspect-to-trust edges."},
	CHeartbeats:         {"stableleader_fd_heartbeats_total", "Heartbeats observed by failure detector monitors."},
	CFDReconfigs:        {"stableleader_fd_reconfigurations_total", "QoS configurator parameter adoptions."},
	CAccusationsOut:     {"stableleader_accusations_sent_total", "ACCUSE messages sent."},
	CAccusationsIn:      {"stableleader_accusations_received_total", "ACCUSE messages received."},
	CStandbyNominations: {"stableleader_standby_nominations_total", "Warm-standby nominations adopted."},
	CHandoversSent:      {"stableleader_handovers_sent_total", "Planned handovers granted by this node."},
	CHandoversRecv:      {"stableleader_handovers_received_total", "HANDOVER messages received."},
	CSubscribes:         {"stableleader_client_subscribes_total", "Client-plane SUBSCRIBE messages handled."},
	CRenews:             {"stableleader_client_renews_total", "Client-plane LEASE_RENEW messages handled."},
	CUnsubscribes:       {"stableleader_client_unsubscribes_total", "Client-plane UNSUBSCRIBE messages handled."},
	CSnapshotsSent:      {"stableleader_client_snapshots_sent_total", "Leader snapshots fanned out to subscribers."},
	CLeaseExpiries:      {"stableleader_client_lease_expiries_total", "Client leases dropped unrenewed."},
	CTombstones:         {"stableleader_client_tombstones_total", "Tombstone snapshots sent to subscribers."},
	CInboundParts:       {"stableleader_inbound_parts_total", "Steered datagram parts dispatched on the event loops."},
	CInboundSplitParts:  {"stableleader_inbound_split_parts_total", "Continuation parts of datagrams split across shards."},
}

// Name returns the counter's Prometheus series name.
func (c Counter) Name() string { return counterDefs[c].name }

// Help returns the counter's exposition help string.
func (c Counter) Help() string { return counterDefs[c].help }

// Leaderless-duration histogram buckets, in seconds. Exponential from
// 1ms: a planned handover lands in the first buckets, a detection-bound
// failover around the QoS detection time, pathologies in the tail.
var leaderlessBounds = [...]float64{0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384, 65.536}

const histBuckets = len(leaderlessBounds) + 1 // + the +Inf bucket

// Histogram is a fixed-bucket duration histogram, loop-owned like the
// counters: plain stores on observe, copied whole at scrape time.
type Histogram struct {
	counts [histBuckets]uint64 //leadervet:loopOwned
	sumNS  uint64              //leadervet:loopOwned
	n      uint64              //leadervet:loopOwned
}

// observe records one duration with plain stores.
//
//leadervet:onLoop
func (h *Histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(leaderlessBounds) && s > leaderlessBounds[i] {
		i++
	}
	h.counts[i]++
	if d > 0 {
		h.sumNS += uint64(d)
	}
	h.n++
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Counts [histBuckets]uint64
	SumNS  uint64
	N      uint64
}

// Merge accumulates o into s.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.SumNS += o.SumNS
	s.N += o.N
}

// Shard is one event loop's slice of the registry: counters, the
// leaderless-duration histogram and the flight-recorder ring, all
// written only by the owning loop (every mutating method carries the
// //leadervet:onLoop contract — callers promise to be on it).
type Shard struct {
	c          [counterCount]uint64 //leadervet:loopOwned
	leaderless Histogram
	flight     Ring

	// pad keeps adjacent shards in the registry's contiguous slot slice
	// from sharing cache lines: each slot is written by a different
	// event-loop goroutine at full protocol rate.
	_ [64]byte
}

// Inc adds one to counter c with a plain store.
//
//leadervet:onLoop
func (s *Shard) Inc(c Counter) {
	if s == nil {
		return
	}
	s.c[c]++
}

// Add adds n to counter c with a plain store.
//
//leadervet:onLoop
func (s *Shard) Add(c Counter, n uint64) {
	if s == nil {
		return
	}
	s.c[c] += n
}

// ObserveLeaderless records one leaderless-window duration (the time
// between losing an elected view and adopting the next one).
//
//leadervet:onLoop
func (s *Shard) ObserveLeaderless(d time.Duration) {
	if s == nil {
		return
	}
	s.leaderless.observe(d)
}

// Snapshot copies the shard's counters and histogram. Like every
// mutating method it must run on the owning loop; hosts call it from a
// loop-serialised closure at scrape time.
//
//leadervet:onLoop
func (s *Shard) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return Snapshot{
		Counters: s.c,
		Leaderless: HistogramSnapshot{
			Counts: s.leaderless.counts,
			SumNS:  s.leaderless.sumNS,
			N:      s.leaderless.n,
		},
	}
}

// Snapshot is a point-in-time copy of one shard's registry slice.
type Snapshot struct {
	Counters   [counterCount]uint64
	Leaderless HistogramSnapshot
}

// Merge accumulates o into s — the scrape-time aggregation across
// shards.
func (s *Snapshot) Merge(o Snapshot) {
	for i := range s.Counters {
		s.Counters[i] += o.Counters[i]
	}
	s.Leaderless.Merge(o.Leaderless)
}

// Get returns counter c's value in the snapshot.
func (s Snapshot) Get(c Counter) uint64 { return s.Counters[c] }

// registrySlot pads Shard (the struct already trails 64 bytes of pad;
// the contiguous slice keeps slots adjacent and index-addressable).
type registrySlot = Shard

// Registry is the per-service registry: one padded Shard slot per
// event-loop shard, allocated contiguously at construction.
type Registry struct {
	slots []registrySlot
}

// NewRegistry allocates a registry with n shard slots, each flight ring
// holding flightDepth records (FlightDepthDefault when <= 0).
func NewRegistry(n, flightDepth int) *Registry {
	if n < 1 {
		n = 1
	}
	if flightDepth <= 0 {
		flightDepth = FlightDepthDefault
	}
	r := &Registry{slots: make([]registrySlot, n)}
	for i := range r.slots {
		r.slots[i].flight.init(flightDepth)
	}
	return r
}

// Shard returns slot i; the owning event loop writes through it.
func (r *Registry) Shard(i int) *Shard { return &r.slots[i] }

// NumShards reports the number of slots.
func (r *Registry) NumShards() int { return len(r.slots) }

// LeaderlessBounds exposes the histogram bucket upper bounds in seconds
// (exclusive of the implicit +Inf) for exposition writers.
func LeaderlessBounds() []float64 { return leaderlessBounds[:] }
