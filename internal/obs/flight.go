package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"

	"stableleader/id"
)

// FlightDepthDefault is the per-shard flight-recorder depth when the
// host does not configure one: enough to hold several full elections'
// worth of decisions per shard while costing ~64 KiB per shard.
const FlightDepthDefault = 1024

// Kind classifies one flight record: which protocol decision it
// captures.
type Kind uint8

// The record kinds. A crash-driven re-election leaves the sequence
// suspect → rank-change → leader-change in the survivor's ring; a
// planned departure leaves standby → handover → leader-change.
const (
	KindSuspect      Kind = iota + 1 // FD suspected Subject
	KindTrust                        // FD restored trust in Subject
	KindRankChange                   // accusation sent to Subject (Detail = phase), or own drop-out
	KindStandby                      // standby view changed to Subject
	KindHandover                     // handover involving successor Subject (Detail: 0 received, 1 granted)
	KindLeaderChange                 // leader view adopted: Subject leads (empty = leaderless)
)

// String returns the kind's dump name.
func (k Kind) String() string {
	switch k {
	case KindSuspect:
		return "suspect"
	case KindTrust:
		return "trust"
	case KindRankChange:
		return "rank-change"
	case KindStandby:
		return "standby"
	case KindHandover:
		return "handover"
	case KindLeaderChange:
		return "leader-change"
	default:
		return "unknown"
	}
}

// Record is one binary protocol decision. The struct is fixed-size
// (string fields copy only their headers), so a ring append is a plain
// slot store with zero allocation.
type Record struct {
	// At is the decision instant from the owning loop's clock. Stamped
	// with time.Now()-derived values, it carries the monotonic reading,
	// so in-process record ordering survives wall-clock steps.
	At      time.Time
	Kind    Kind
	Group   id.Group
	Subject id.Process
	// Inc is the subject's incarnation where known (0 otherwise).
	Inc int64
	// Detail is kind-specific: the accusation phase for rank changes,
	// granted/received for handovers.
	Detail int64
}

// Ring is one shard's flight recorder: a fixed-size overwrite ring of
// Records, appended by the owning loop with plain stores.
type Ring struct {
	buf []Record //leadervet:loopOwned
	n   uint64   //leadervet:loopOwned — total appends ever; buf[n%len] is the next slot
}

// init sizes the ring; called once at registry construction.
//
//leadervet:init
func (r *Ring) init(depth int) {
	r.buf = make([]Record, depth)
}

// Record appends one decision to the shard's flight ring.
//
//leadervet:onLoop
func (s *Shard) Record(k Kind, g id.Group, subject id.Process, inc, detail int64, at time.Time) {
	if s == nil || len(s.flight.buf) == 0 {
		return
	}
	r := &s.flight
	r.buf[r.n%uint64(len(r.buf))] = Record{
		At: at, Kind: k, Group: g, Subject: subject, Inc: inc, Detail: detail,
	}
	r.n++
}

// FlightSnapshot appends the ring's retained records, oldest first,
// to dst and returns it. Runs on the owning loop like Snapshot; the
// host copies per shard and merges off-loop.
//
//leadervet:onLoop
func (s *Shard) FlightSnapshot(dst []Record) []Record {
	if s == nil {
		return dst
	}
	r := &s.flight
	depth := uint64(len(r.buf))
	if depth == 0 || r.n == 0 {
		return dst
	}
	start := uint64(0)
	if r.n > depth {
		start = r.n - depth
	}
	for i := start; i < r.n; i++ {
		dst = append(dst, r.buf[i%depth])
	}
	return dst
}

// flightDump is the JSON shape of one dumped record.
type flightDump struct {
	At      string `json:"at"`
	Kind    string `json:"kind"`
	Group   string `json:"group"`
	Subject string `json:"subject,omitempty"`
	Inc     int64  `json:"inc,omitempty"`
	Detail  int64  `json:"detail,omitempty"`
}

// flightEnvelope is the JSON shape of a whole dump.
type flightEnvelope struct {
	Node    string       `json:"node"`
	Records []flightDump `json:"records"`
}

// WriteFlightJSON merges per-shard record snapshots by time and writes
// the dump as JSON. Runs off-loop on copies; allocation here is fine.
func WriteFlightJSON(w io.Writer, node id.Process, records []Record) error {
	sort.SliceStable(records, func(i, j int) bool { return records[i].At.Before(records[j].At) })
	env := flightEnvelope{Node: string(node), Records: make([]flightDump, len(records))}
	for i, r := range records {
		env.Records[i] = flightDump{
			At:      r.At.Format(time.RFC3339Nano),
			Kind:    r.Kind.String(),
			Group:   string(r.Group),
			Subject: string(r.Subject),
			Inc:     r.Inc,
			Detail:  r.Detail,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(env)
}
