package obs

import (
	"bytes"
	"io"
	"math"
	"strconv"
	"strings"
)

// Exposition builds a Prometheus text-format (version 0.0.4) payload:
// "# HELP"/"# TYPE" headers followed by samples. It is a scrape-time
// tool — everything here runs off the event loops on snapshot copies,
// so ordinary allocation is fine.
//
// The format is hand-rolled on purpose: the repo takes no dependencies,
// and the subset a scraper needs (counters, gauges, one fixed-bucket
// histogram, label escaping) is small and stable.
type Exposition struct {
	buf bytes.Buffer
}

// Counter emits a family header for a counter series.
func (e *Exposition) Counter(name, help string) { e.header(name, help, "counter") }

// Gauge emits a family header for a gauge series.
func (e *Exposition) Gauge(name, help string) { e.header(name, help, "gauge") }

func (e *Exposition) header(name, help, typ string) {
	e.buf.WriteString("# HELP ")
	e.buf.WriteString(name)
	e.buf.WriteByte(' ')
	e.buf.WriteString(escapeHelp(help))
	e.buf.WriteString("\n# TYPE ")
	e.buf.WriteString(name)
	e.buf.WriteByte(' ')
	e.buf.WriteString(typ)
	e.buf.WriteByte('\n')
}

// Sample emits one sample line under the most recent family header.
// labels are alternating key, value pairs.
func (e *Exposition) Sample(name string, v float64, labels ...string) {
	e.buf.WriteString(name)
	e.writeLabels(labels)
	e.buf.WriteByte(' ')
	e.writeFloat(v)
	e.buf.WriteByte('\n')
}

// Simple emits a complete single-sample family: header plus one
// unlabelled sample.
func (e *Exposition) Simple(name, help, typ string, v float64) {
	e.header(name, help, typ)
	e.Sample(name, v)
}

// Histogram emits a complete histogram family from a snapshot: one
// cumulative _bucket series per bound plus +Inf, then _sum and _count.
func (e *Exposition) Histogram(name, help string, bounds []float64, s HistogramSnapshot) {
	e.header(name, help, "histogram")
	cum := uint64(0)
	for i, b := range bounds {
		cum += s.Counts[i]
		e.Sample(name+"_bucket", float64(cum), "le", formatBound(b))
	}
	cum += s.Counts[len(bounds)]
	e.Sample(name+"_bucket", float64(cum), "le", "+Inf")
	e.Sample(name+"_sum", float64(s.SumNS)/1e9)
	e.Sample(name+"_count", float64(s.N))
}

// WriteTo writes the accumulated payload.
func (e *Exposition) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(e.buf.Bytes())
	return int64(n), err
}

// Bytes returns the accumulated payload (for tests).
func (e *Exposition) Bytes() []byte { return e.buf.Bytes() }

func (e *Exposition) writeLabels(labels []string) {
	if len(labels) == 0 {
		return
	}
	e.buf.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			e.buf.WriteByte(',')
		}
		e.buf.WriteString(labels[i])
		e.buf.WriteString(`="`)
		e.buf.WriteString(escapeLabel(labels[i+1]))
		e.buf.WriteByte('"')
	}
	e.buf.WriteByte('}')
}

func (e *Exposition) writeFloat(v float64) {
	switch {
	case math.IsInf(v, 1):
		e.buf.WriteString("+Inf")
	case math.IsInf(v, -1):
		e.buf.WriteString("-Inf")
	case math.IsNaN(v):
		e.buf.WriteString("NaN")
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		e.buf.WriteString(strconv.FormatInt(int64(v), 10))
	default:
		e.buf.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
}

// formatBound renders a histogram bound the way Prometheus expects
// (shortest float form).
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string (backslash and newline only).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
