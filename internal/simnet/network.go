package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"stableleader/id"
	"stableleader/internal/clock"
	"stableleader/internal/stats"
	"stableleader/internal/wire"
)

// Handler receives messages delivered to a node. The from process is the
// wire-level sender (identical to m.From() for well-formed traffic).
type Handler interface {
	HandleMessage(m wire.Message)
}

// LinkModel describes a directed communication link the way the paper's
// injector does: an independent drop probability per message, and an
// exponentially distributed delay for messages that are not dropped. The
// Dup and Reorder knobs extend the injector beyond the paper's testbed;
// both are gated on being nonzero, so every zero-knob scenario draws
// exactly the random stream it always did and replays byte-identically.
type LinkModel struct {
	// Loss is the iid probability that a message is dropped.
	Loss float64
	// MeanDelay is the mean of the exponential delay distribution.
	MeanDelay time.Duration
	// Dup is the iid probability that a delivered datagram is delivered a
	// second time. The copy draws its own independent delay, so it can
	// arrive before the original — duplication doubles as reordering, as
	// on a real multipathed network.
	Dup float64
	// Reorder is the iid probability that a datagram is held back an extra
	// ReorderDelay before delivery, letting datagrams sent after it
	// overtake it.
	Reorder float64
	// ReorderDelay is the hold-back for reordered datagrams; when zero,
	// 4×MeanDelay is used.
	ReorderDelay time.Duration
}

// LAN is the behaviour the paper measured on its real gigabit LAN:
// practically no losses and a 0.025 ms average delay.
func LAN() LinkModel { return LinkModel{Loss: 0, MeanDelay: 25 * time.Microsecond} }

// link is the state of one directed link.
type link struct {
	model LinkModel
	down  bool
	// downSince/downTotal track outage time for diagnostics.
	downSince int64
	downTotal int64
}

// Counters accumulates per-workstation traffic and processing statistics.
// Bytes are counted per datagram: one wire.UDPOverhead per datagram, so a
// coalesced batch pays the UDP/IP header once — the honest version of the
// paper's KB/s figures. Msgs counts protocol messages (a batch of k counts
// k); Datagrams counts what actually crosses the wire.
type Counters struct {
	MsgsSent      int64
	MsgsRecv      int64
	DatagramsSent int64
	DatagramsRecv int64
	BytesSent     int64
	BytesRecv     int64
	TimerFires    int64
}

// Endpoint is a workstation attachment point. It persists across crashes
// and recoveries of the process running on it, so counters cover the whole
// experiment.
type Endpoint struct {
	id       id.Process
	up       bool
	handler  Handler
	counters Counters
}

// ID returns the process id attached to this endpoint.
func (ep *Endpoint) ID() id.Process { return ep.id }

// Up reports whether the process is currently running.
func (ep *Endpoint) Up() bool { return ep.up }

// Counters returns a snapshot of the endpoint's counters.
func (ep *Endpoint) Counters() Counters { return ep.counters }

// linkKey identifies a directed link.
type linkKey struct{ from, to id.Process }

// Network simulates the point-to-point network among a set of endpoints.
type Network struct {
	eng          *Engine
	defaultModel LinkModel
	links        map[linkKey]*link
	endpoints    map[id.Process]*Endpoint
}

// NewNetwork returns a network whose links all follow the given default
// model until overridden with SetLinkModel.
func NewNetwork(eng *Engine, defaultModel LinkModel) *Network {
	return &Network{
		eng:          eng,
		defaultModel: defaultModel,
		links:        make(map[linkKey]*link),
		endpoints:    make(map[id.Process]*Endpoint),
	}
}

// Attach registers a workstation for the given process id. The endpoint
// starts down; call SetUp when its service instance starts.
func (n *Network) Attach(p id.Process) *Endpoint {
	if _, ok := n.endpoints[p]; ok {
		panic(fmt.Sprintf("simnet: endpoint %q attached twice", p))
	}
	ep := &Endpoint{id: p}
	n.endpoints[p] = ep
	return ep
}

// Endpoint returns the endpoint for p, or nil if not attached.
func (n *Network) Endpoint(p id.Process) *Endpoint { return n.endpoints[p] }

// Endpoints returns all attached endpoints.
func (n *Network) Endpoints() []*Endpoint {
	out := make([]*Endpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		out = append(out, ep)
	}
	return out
}

// SetUp marks the process as running and installs its message handler.
// A nil handler with up=false models a crash.
func (n *Network) SetUp(p id.Process, up bool, h Handler) {
	ep := n.endpoints[p]
	if ep == nil {
		panic(fmt.Sprintf("simnet: SetUp of unattached endpoint %q", p))
	}
	ep.up = up
	ep.handler = h
}

// getLink returns (creating if needed) the state for the directed link.
func (n *Network) getLink(from, to id.Process) *link {
	k := linkKey{from, to}
	l := n.links[k]
	if l == nil {
		l = &link{model: n.defaultModel}
		n.links[k] = l
	}
	return l
}

// SetLinkModel overrides the loss/delay model of one directed link.
func (n *Network) SetLinkModel(from, to id.Process, m LinkModel) {
	n.getLink(from, to).model = m
}

// SetLinkDown crashes or recovers one directed link. While down, the link
// drops every message, exactly like the paper's link-crash injector.
func (n *Network) SetLinkDown(from, to id.Process, down bool) {
	l := n.getLink(from, to)
	if l.down == down {
		return
	}
	l.down = down
	if down {
		l.downSince = n.eng.NowNanos()
	} else {
		l.downTotal += n.eng.NowNanos() - l.downSince
	}
}

// LinkDown reports whether the directed link is currently crashed.
func (n *Network) LinkDown(from, to id.Process) bool {
	return n.getLink(from, to).down
}

// Send transmits m — a single message or a coalesced *wire.Batch — from
// from to to across the simulated link as ONE datagram: one UDP/IP header,
// one loss draw, one delay draw. The sender is charged whether or not the
// network drops it.
func (n *Network) Send(from, to id.Process, m wire.Message) {
	src := n.endpoints[from]
	if src == nil || !src.up {
		return
	}
	msgs := int64(1)
	if b, ok := m.(*wire.Batch); ok {
		msgs = int64(len(b.Msgs))
	}
	size := int64(m.WireSize() + wire.UDPOverhead)
	src.counters.MsgsSent += msgs
	src.counters.DatagramsSent++
	src.counters.BytesSent += size
	l := n.getLink(from, to)
	if l.down {
		return
	}
	if l.model.Loss > 0 && n.eng.Rand().Float64() < l.model.Loss {
		return
	}
	delay := time.Duration(stats.Exp(n.eng.Rand(), float64(l.model.MeanDelay)))
	if l.model.Reorder > 0 && n.eng.Rand().Float64() < l.model.Reorder {
		hold := l.model.ReorderDelay
		if hold <= 0 {
			hold = 4 * l.model.MeanDelay
		}
		delay += hold
	}
	n.deliver(to, m, msgs, size, delay)
	if l.model.Dup > 0 && n.eng.Rand().Float64() < l.model.Dup {
		n.deliver(to, m, msgs, size,
			time.Duration(stats.Exp(n.eng.Rand(), float64(l.model.MeanDelay))))
	}
}

// deliver schedules one copy of a datagram for arrival after delay.
func (n *Network) deliver(to id.Process, m wire.Message, msgs, size int64, delay time.Duration) {
	n.eng.After(delay, func() {
		dst := n.endpoints[to]
		if dst == nil || !dst.up || dst.handler == nil {
			return
		}
		dst.counters.MsgsRecv += msgs
		dst.counters.DatagramsRecv++
		dst.counters.BytesRecv += size
		dst.handler.HandleMessage(m)
	})
}

// NodeRuntime adapts the engine and network into the runtime interface the
// protocol stack expects (clock + timers + send + per-node random stream).
// Each process lifetime gets a fresh NodeRuntime; Shutdown invalidates all
// timers it issued, modelling the loss of all pending work on a crash.
type NodeRuntime struct {
	net  *Network
	self id.Process
	rng  *rand.Rand
	skew time.Duration
	dead bool
}

// NewNodeRuntime returns a runtime for one lifetime of process self. The
// node-local random stream is seeded from the engine stream so that the
// whole simulation remains a function of the scenario seed.
func NewNodeRuntime(net *Network, self id.Process) *NodeRuntime {
	return &NodeRuntime{
		net:  net,
		self: self,
		rng:  rand.New(rand.NewSource(net.eng.Rand().Int63())),
	}
}

// Now implements clock.Clock, offset by the node's clock skew.
func (r *NodeRuntime) Now() time.Time { return r.net.eng.Now().Add(r.skew) }

// SetSkew offsets this node's clock by d relative to virtual time: its
// timestamps (accusation times, heartbeat send times) all shift by d while
// timer durations stay exact — the way a skewed-but-stable workstation
// clock behaves. Skew only changes what the node *reports*, never when
// events run, so skewed runs stay deterministic.
func (r *NodeRuntime) SetSkew(d time.Duration) { r.skew = d }

// AfterFunc implements clock.Clock. Callbacks are suppressed once the
// runtime is shut down or the endpoint is down (the process crashed).
func (r *NodeRuntime) AfterFunc(d time.Duration, fn func()) clock.Timer {
	ep := r.net.endpoints[r.self]
	return r.net.eng.After(d, func() {
		if r.dead || ep == nil || !ep.up {
			return
		}
		ep.counters.TimerFires++
		fn()
	})
}

// NodeRuntime deliberately does NOT implement clock.TimerFactory: the
// protocol's re-armable timers (clock.NewTimer) fall back to the portable
// Stop-then-AfterFunc sequence over this AfterFunc — exactly the events
// protocol code used to push onto the heap by hand, so virtual-time runs
// are event-for-event identical whether callers re-arm through a Rearmer
// or through raw AfterFunc (the property
// timerwheel.TestWheelMatchesAfterFuncUnderVirtualTime locks in for the
// wheel-backed real-time twin).

// Send implements the protocol runtime's transmit operation.
func (r *NodeRuntime) Send(to id.Process, m wire.Message) {
	if r.dead {
		return
	}
	r.net.Send(r.self, to, m)
}

// Rand returns the node-local random stream.
func (r *NodeRuntime) Rand() *rand.Rand { return r.rng }

// Shutdown invalidates every timer issued by this runtime. Messages already
// in flight are unaffected (the network, not the process, owns them).
func (r *NodeRuntime) Shutdown() { r.dead = true }
