package simnet

import (
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	eng := NewEngine(1)
	var order []int
	eng.After(30*time.Millisecond, func() { order = append(order, 3) })
	eng.After(10*time.Millisecond, func() { order = append(order, 1) })
	eng.After(20*time.Millisecond, func() { order = append(order, 2) })
	eng.RunFor(time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	eng := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.After(5*time.Millisecond, func() { order = append(order, i) })
	}
	eng.RunFor(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("events at the same instant must run in scheduling order, got %v", order)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	eng := NewEngine(1)
	var at time.Time
	eng.After(77*time.Millisecond, func() { at = eng.Now() })
	eng.RunFor(time.Second)
	if want := Epoch().Add(77 * time.Millisecond); !at.Equal(want) {
		t.Errorf("handler saw clock %v, want %v", at, want)
	}
	if want := Epoch().Add(time.Second); !eng.Now().Equal(want) {
		t.Errorf("after RunFor clock = %v, want %v", eng.Now(), want)
	}
}

func TestSchedulingInPastRunsNow(t *testing.T) {
	eng := NewEngine(1)
	eng.RunFor(time.Second)
	fired := false
	eng.At(0, func() { fired = true })
	eng.RunFor(0)
	if !fired {
		t.Error("event scheduled in the past should fire immediately")
	}
}

func TestTimerStop(t *testing.T) {
	eng := NewEngine(1)
	fired := false
	tm := eng.After(10*time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Error("first Stop should report true")
	}
	if tm.Stop() {
		t.Error("second Stop should report false")
	}
	eng.RunFor(time.Second)
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	eng := NewEngine(1)
	tm := eng.After(time.Millisecond, func() {})
	eng.RunFor(time.Second)
	if tm.Stop() {
		t.Error("Stop after firing should report false")
	}
}

func TestHandlersCanScheduleMore(t *testing.T) {
	eng := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			eng.After(time.Millisecond, tick)
		}
	}
	eng.After(time.Millisecond, tick)
	eng.RunFor(time.Second)
	if count != 100 {
		t.Errorf("chained ticks = %d, want 100", count)
	}
	if got := eng.EventsFired(); got != 100 {
		t.Errorf("EventsFired = %d, want 100", got)
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	eng := NewEngine(1)
	fired := false
	eng.After(time.Second, func() { fired = true })
	eng.RunUntil(Epoch().Add(time.Second))
	if !fired {
		t.Error("event exactly at the boundary should fire")
	}
}

func TestStepReturnsFalseWhenIdle(t *testing.T) {
	eng := NewEngine(1)
	if eng.Step() {
		t.Error("Step on an empty engine should report false")
	}
	eng.After(time.Millisecond, func() {})
	if !eng.Step() {
		t.Error("Step with a pending event should report true")
	}
}

func TestDeterminismAcrossEngines(t *testing.T) {
	run := func(seed int64) []int64 {
		eng := NewEngine(seed)
		var draws []int64
		for i := 0; i < 50; i++ {
			d := time.Duration(eng.Rand().Int63n(int64(time.Second)))
			eng.After(d, func() { draws = append(draws, eng.NowNanos()) })
		}
		eng.RunFor(2 * time.Second)
		return draws
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical schedules (suspicious)")
	}
}

func TestPendingCount(t *testing.T) {
	eng := NewEngine(1)
	eng.After(time.Millisecond, func() {})
	eng.After(time.Millisecond, func() {})
	if eng.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", eng.Pending())
	}
	eng.RunFor(time.Second)
	if eng.Pending() != 0 {
		t.Errorf("Pending after run = %d, want 0", eng.Pending())
	}
}

// TestRunUntilStoppedEventAtTopDoesNotOvershoot is a regression test: a
// cancelled event inside the window must not let RunUntil execute a live
// event scheduled beyond the target time.
func TestRunUntilStoppedEventAtTopDoesNotOvershoot(t *testing.T) {
	eng := NewEngine(1)
	stopped := eng.After(10*time.Millisecond, func() { t.Fatal("stopped event ran") })
	stopped.Stop()
	lateFired := false
	eng.After(100*time.Millisecond, func() { lateFired = true })
	eng.RunFor(50 * time.Millisecond)
	if lateFired {
		t.Fatal("event beyond the RunUntil target executed")
	}
	if want := Epoch().Add(50 * time.Millisecond); !eng.Now().Equal(want) {
		t.Fatalf("clock = %v, want %v", eng.Now(), want)
	}
	eng.RunFor(time.Second)
	if !lateFired {
		t.Fatal("live event never executed")
	}
}
