package simnet

import (
	"time"

	"stableleader/id"
	"stableleader/internal/stats"
)

// FaultPlan describes the random crash/recovery behaviour of a component
// exactly as in the paper's evaluation: both the time between failures and
// the repair time are exponentially distributed.
type FaultPlan struct {
	// MTBF is the mean operating time between two consecutive crashes.
	MTBF time.Duration
	// MTTR is the mean time a crash lasts before recovery.
	MTTR time.Duration
}

// PaperProcessFaults is the workstation behaviour of Section 6.1: every
// workstation crashes every 10 minutes on average and takes 5 seconds on
// average to recover.
func PaperProcessFaults() FaultPlan {
	return FaultPlan{MTBF: 600 * time.Second, MTTR: 5 * time.Second}
}

// ScheduleFaults drives an alternating up/down renewal process on the
// engine: after Exp(MTBF) of uptime it calls crash, after Exp(MTTR) of
// downtime it calls recover, forever. The component starts up.
func ScheduleFaults(eng *Engine, plan FaultPlan, crash, recover func()) {
	if plan.MTBF <= 0 {
		return
	}
	var scheduleCrash func()
	var scheduleRecover func()
	scheduleCrash = func() {
		d := time.Duration(stats.Exp(eng.Rand(), float64(plan.MTBF)))
		eng.After(d, func() {
			crash()
			scheduleRecover()
		})
	}
	scheduleRecover = func() {
		d := time.Duration(stats.Exp(eng.Rand(), float64(plan.MTTR)))
		eng.After(d, func() {
			recover()
			scheduleCrash()
		})
	}
	scheduleCrash()
}

// ScheduleLinkFaults applies a FaultPlan to one directed link: while
// "crashed" the link drops every message (completely disconnecting the
// receiver from the sender), then recovers, as in the Figure 7 experiments.
func ScheduleLinkFaults(eng *Engine, net *Network, from, to id.Process, plan FaultPlan) {
	ScheduleFaults(eng, plan,
		func() { net.SetLinkDown(from, to, true) },
		func() { net.SetLinkDown(from, to, false) },
	)
}

// ScheduleAllLinkFaults applies independent fault processes to every
// directed link among the given processes.
func ScheduleAllLinkFaults(eng *Engine, net *Network, procs []id.Process, plan FaultPlan) {
	for _, a := range procs {
		for _, b := range procs {
			if a == b {
				continue
			}
			ScheduleLinkFaults(eng, net, a, b, plan)
		}
	}
}

// SetPartition crashes (down=true) or heals (down=false) every directed
// link between the two sides, in both directions: a network partition.
// Links within a side are untouched.
func SetPartition(net *Network, sideA, sideB []id.Process, down bool) {
	for _, a := range sideA {
		for _, b := range sideB {
			if a == b {
				continue
			}
			net.SetLinkDown(a, b, down)
			net.SetLinkDown(b, a, down)
		}
	}
}

// SchedulePartition partitions the two sides at a given virtual time and
// heals them at a later one. healAt of zero (or ≤ at) leaves the partition
// permanent.
func SchedulePartition(eng *Engine, net *Network, sideA, sideB []id.Process, at, healAt time.Duration) {
	eng.After(at, func() { SetPartition(net, sideA, sideB, true) })
	if healAt > at {
		eng.After(healAt, func() { SetPartition(net, sideA, sideB, false) })
	}
}
