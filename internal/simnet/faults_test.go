package simnet

import (
	"math"
	"testing"
	"time"

	"stableleader/id"
)

func TestFaultAlternation(t *testing.T) {
	eng := NewEngine(1)
	upAt, downAt := []int64{}, []int64{}
	ScheduleFaults(eng, FaultPlan{MTBF: 10 * time.Second, MTTR: time.Second},
		func() { downAt = append(downAt, eng.NowNanos()) },
		func() { upAt = append(upAt, eng.NowNanos()) },
	)
	eng.RunFor(10 * time.Minute)
	if len(downAt) == 0 {
		t.Fatal("no crashes injected in 10 minutes with a 10s MTBF")
	}
	if d := len(downAt) - len(upAt); d != 0 && d != 1 {
		t.Fatalf("crashes=%d recoveries=%d: not alternating", len(downAt), len(upAt))
	}
	for i := range upAt {
		if upAt[i] <= downAt[i] {
			t.Fatal("recovery before crash")
		}
		if i+1 < len(downAt) && downAt[i+1] <= upAt[i] {
			t.Fatal("next crash before recovery")
		}
	}
}

func TestFaultEmpiricalMeans(t *testing.T) {
	eng := NewEngine(7)
	mtbf, mttr := 60*time.Second, 3*time.Second
	var up, down []time.Duration
	lastUp, lastDown := int64(0), int64(-1)
	ScheduleFaults(eng, FaultPlan{MTBF: mtbf, MTTR: mttr},
		func() {
			up = append(up, time.Duration(eng.NowNanos()-lastUp))
			lastDown = eng.NowNanos()
		},
		func() {
			down = append(down, time.Duration(eng.NowNanos()-lastDown))
			lastUp = eng.NowNanos()
		},
	)
	eng.RunFor(24 * 7 * time.Hour)
	meanOf := func(ds []time.Duration) float64 {
		var s time.Duration
		for _, d := range ds {
			s += d
		}
		return float64(s) / float64(len(ds))
	}
	if got := meanOf(up); math.Abs(got-float64(mtbf)) > 0.05*float64(mtbf) {
		t.Errorf("empirical MTBF = %v, want %v ± 5%%", time.Duration(got), mtbf)
	}
	if got := meanOf(down); math.Abs(got-float64(mttr)) > 0.05*float64(mttr) {
		t.Errorf("empirical MTTR = %v, want %v ± 5%%", time.Duration(got), mttr)
	}
}

func TestZeroMTBFDisablesFaults(t *testing.T) {
	eng := NewEngine(1)
	ScheduleFaults(eng, FaultPlan{}, func() { t.Fatal("crash fired") }, func() {})
	eng.RunFor(time.Hour)
}

func TestLinkFaultsToggleLink(t *testing.T) {
	eng := NewEngine(3)
	net := NewNetwork(eng, LAN())
	net.Attach("a")
	net.Attach("b")
	ScheduleLinkFaults(eng, net, "a", "b", FaultPlan{MTBF: time.Second, MTTR: 500 * time.Millisecond})
	sawDown, sawUpAgain := false, false
	for i := 0; i < 10000; i++ {
		eng.RunFor(10 * time.Millisecond)
		if net.LinkDown("a", "b") {
			sawDown = true
		} else if sawDown {
			sawUpAgain = true
			break
		}
	}
	if !sawDown || !sawUpAgain {
		t.Fatalf("link never cycled: down=%v upAgain=%v", sawDown, sawUpAgain)
	}
	if net.LinkDown("b", "a") {
		t.Error("reverse link must have its own independent fault process")
	}
}

func TestScheduleAllLinkFaultsCoversAllPairs(t *testing.T) {
	eng := NewEngine(9)
	net := NewNetwork(eng, LAN())
	procs := []id.Process{"a", "b", "c"}
	for _, p := range procs {
		net.Attach(p)
	}
	ScheduleAllLinkFaults(eng, net, procs, FaultPlan{MTBF: 10 * time.Second, MTTR: time.Second})
	// Over a long horizon every directed pair should crash at least once.
	seen := map[[2]id.Process]bool{}
	for i := 0; i < 60000 && len(seen) < 6; i++ {
		eng.RunFor(50 * time.Millisecond)
		for _, a := range procs {
			for _, b := range procs {
				if a != b && net.LinkDown(a, b) {
					seen[[2]id.Process{a, b}] = true
				}
			}
		}
	}
	if len(seen) != 6 {
		t.Fatalf("only %d/6 directed links ever crashed", len(seen))
	}
	if net.LinkDown("a", "a") {
		t.Error("self links must not be scheduled")
	}
}

func TestPaperProcessFaults(t *testing.T) {
	p := PaperProcessFaults()
	if p.MTBF != 600*time.Second || p.MTTR != 5*time.Second {
		t.Errorf("paper fault plan = %+v", p)
	}
}
