package simnet

import (
	"math"
	"testing"
	"time"

	"stableleader/id"
	"stableleader/internal/wire"
)

// collector records delivered messages.
type collector struct {
	msgs []wire.Message
	at   []time.Duration
	eng  *Engine
}

func (c *collector) HandleMessage(m wire.Message) {
	c.msgs = append(c.msgs, m)
	c.at = append(c.at, time.Duration(c.eng.NowNanos()))
}

// testMsg builds a minimal message for transport tests.
func testMsg(from id.Process) wire.Message {
	return &wire.Leave{Group: "g", Sender: from, Incarnation: 1}
}

func newPair(t *testing.T, model LinkModel) (*Engine, *Network, *collector) {
	t.Helper()
	eng := NewEngine(1)
	net := NewNetwork(eng, model)
	net.Attach("a")
	net.Attach("b")
	c := &collector{eng: eng}
	net.SetUp("a", true, nil)
	net.SetUp("b", true, c)
	return eng, net, c
}

func TestDelivery(t *testing.T) {
	eng, net, c := newPair(t, LAN())
	net.Send("a", "b", testMsg("a"))
	eng.RunFor(time.Second)
	if len(c.msgs) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(c.msgs))
	}
	if c.msgs[0].From() != "a" {
		t.Errorf("From = %q", c.msgs[0].From())
	}
}

func TestLossRate(t *testing.T) {
	eng, net, c := newPair(t, LinkModel{Loss: 0.3, MeanDelay: time.Millisecond})
	const n = 20000
	for i := 0; i < n; i++ {
		net.Send("a", "b", testMsg("a"))
	}
	eng.RunFor(time.Minute)
	got := float64(len(c.msgs)) / n
	if math.Abs(got-0.7) > 0.02 {
		t.Errorf("delivery rate = %.3f, want 0.70 ± 0.02", got)
	}
}

func TestDelayDistribution(t *testing.T) {
	mean := 10 * time.Millisecond
	eng, net, c := newPair(t, LinkModel{MeanDelay: mean})
	const n = 20000
	for i := 0; i < n; i++ {
		net.Send("a", "b", testMsg("a"))
	}
	eng.RunFor(time.Minute)
	var sum time.Duration
	for _, d := range c.at {
		sum += d
	}
	got := float64(sum) / float64(len(c.at))
	if math.Abs(got-float64(mean)) > 0.05*float64(mean) {
		t.Errorf("mean delay = %v, want %v ± 5%%", time.Duration(got), mean)
	}
}

func TestLinkDownDropsEverything(t *testing.T) {
	eng, net, c := newPair(t, LAN())
	net.SetLinkDown("a", "b", true)
	for i := 0; i < 100; i++ {
		net.Send("a", "b", testMsg("a"))
	}
	eng.RunFor(time.Second)
	if len(c.msgs) != 0 {
		t.Fatalf("crashed link delivered %d messages", len(c.msgs))
	}
	net.SetLinkDown("a", "b", false)
	net.Send("a", "b", testMsg("a"))
	eng.RunFor(time.Second)
	if len(c.msgs) != 1 {
		t.Fatal("recovered link should deliver again")
	}
}

func TestLinkDownIsDirectional(t *testing.T) {
	eng := NewEngine(1)
	net := NewNetwork(eng, LAN())
	net.Attach("a")
	net.Attach("b")
	ca, cb := &collector{eng: eng}, &collector{eng: eng}
	net.SetUp("a", true, ca)
	net.SetUp("b", true, cb)
	net.SetLinkDown("a", "b", true)
	net.Send("a", "b", testMsg("a"))
	net.Send("b", "a", testMsg("b"))
	eng.RunFor(time.Second)
	if len(cb.msgs) != 0 {
		t.Error("a->b is down, nothing should arrive at b")
	}
	if len(ca.msgs) != 1 {
		t.Error("b->a is up, b's message should arrive at a")
	}
}

func TestCrashedReceiverDropsInFlight(t *testing.T) {
	eng, net, c := newPair(t, LinkModel{MeanDelay: 10 * time.Millisecond})
	net.Send("a", "b", testMsg("a"))
	// Crash b before the message can arrive.
	net.SetUp("b", false, nil)
	eng.RunFor(time.Second)
	if len(c.msgs) != 0 {
		t.Fatal("message delivered to a crashed process")
	}
}

func TestCrashedSenderCannotSend(t *testing.T) {
	eng, net, c := newPair(t, LAN())
	net.SetUp("a", false, nil)
	net.Send("a", "b", testMsg("a"))
	eng.RunFor(time.Second)
	if len(c.msgs) != 0 {
		t.Fatal("crashed sender transmitted")
	}
	if got := net.Endpoint("a").Counters().MsgsSent; got != 0 {
		t.Errorf("crashed sender counted %d sends", got)
	}
}

func TestCountersIncludeHeaderOverhead(t *testing.T) {
	eng, net, _ := newPair(t, LAN())
	m := testMsg("a")
	net.Send("a", "b", m)
	eng.RunFor(time.Second)
	wantBytes := int64(m.WireSize() + wire.UDPOverhead)
	a := net.Endpoint("a").Counters()
	b := net.Endpoint("b").Counters()
	if a.MsgsSent != 1 || a.BytesSent != wantBytes {
		t.Errorf("sender counters = %+v, want 1 msg / %d bytes", a, wantBytes)
	}
	if b.MsgsRecv != 1 || b.BytesRecv != wantBytes {
		t.Errorf("receiver counters = %+v, want 1 msg / %d bytes", b, wantBytes)
	}
}

func TestSenderChargedForDroppedMessages(t *testing.T) {
	eng, net, _ := newPair(t, LinkModel{Loss: 1.0, MeanDelay: time.Millisecond})
	net.Send("a", "b", testMsg("a"))
	eng.RunFor(time.Second)
	a := net.Endpoint("a").Counters()
	if a.MsgsSent != 1 || a.BytesSent == 0 {
		t.Error("the wire was used even though the message was lost")
	}
	if b := net.Endpoint("b").Counters(); b.MsgsRecv != 0 {
		t.Error("lost message was delivered")
	}
}

func TestAttachTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("attaching the same process twice should panic")
		}
	}()
	eng := NewEngine(1)
	net := NewNetwork(eng, LAN())
	net.Attach("a")
	net.Attach("a")
}

func TestNodeRuntimeTimersDieOnShutdown(t *testing.T) {
	eng := NewEngine(1)
	net := NewNetwork(eng, LAN())
	net.Attach("a")
	net.SetUp("a", true, nil)
	rt := NewNodeRuntime(net, "a")
	fired := 0
	rt.AfterFunc(10*time.Millisecond, func() { fired++ })
	rt.AfterFunc(20*time.Millisecond, func() { fired++ })
	eng.RunFor(15 * time.Millisecond)
	rt.Shutdown()
	eng.RunFor(time.Second)
	if fired != 1 {
		t.Errorf("fired = %d, want exactly the pre-shutdown timer", fired)
	}
}

func TestNodeRuntimeTimersSuppressedWhileDown(t *testing.T) {
	eng := NewEngine(1)
	net := NewNetwork(eng, LAN())
	net.Attach("a")
	net.SetUp("a", true, nil)
	rt := NewNodeRuntime(net, "a")
	fired := false
	rt.AfterFunc(10*time.Millisecond, func() { fired = true })
	net.SetUp("a", false, nil) // crash without runtime shutdown
	eng.RunFor(time.Second)
	if fired {
		t.Error("timer fired while the endpoint was down")
	}
}

func TestNodeRuntimeClockMatchesEngine(t *testing.T) {
	eng := NewEngine(1)
	net := NewNetwork(eng, LAN())
	net.Attach("a")
	rt := NewNodeRuntime(net, "a")
	eng.RunFor(time.Second)
	if !rt.Now().Equal(eng.Now()) {
		t.Error("runtime clock diverged from engine clock")
	}
}

func TestNodeRuntimeCountsTimerFires(t *testing.T) {
	eng := NewEngine(1)
	net := NewNetwork(eng, LAN())
	net.Attach("a")
	net.SetUp("a", true, nil)
	rt := NewNodeRuntime(net, "a")
	rt.AfterFunc(time.Millisecond, func() {})
	eng.RunFor(time.Second)
	if got := net.Endpoint("a").Counters().TimerFires; got != 1 {
		t.Errorf("TimerFires = %d, want 1", got)
	}
}

// TestBatchCountsAsOneDatagram pins the byte-exact accounting the paper's
// KB/s figures rely on: a coalesced batch crosses the wire as one datagram
// — one UDP/IP header, one loss draw — while still counting its inner
// protocol messages individually.
func TestBatchCountsAsOneDatagram(t *testing.T) {
	eng, net, c := newPair(t, LAN())
	batch := &wire.Batch{Msgs: []wire.Message{
		&wire.Alive{Group: "g1", Sender: "a", Incarnation: 1, Seq: 1},
		&wire.Alive{Group: "g2", Sender: "a", Incarnation: 1, Seq: 1},
		&wire.Alive{Group: "g3", Sender: "a", Incarnation: 1, Seq: 1},
	}}
	net.Send("a", "b", batch)
	eng.RunFor(time.Second)
	wantBytes := int64(batch.WireSize() + wire.UDPOverhead)
	a := net.Endpoint("a").Counters()
	b := net.Endpoint("b").Counters()
	if a.DatagramsSent != 1 || a.MsgsSent != 3 || a.BytesSent != wantBytes {
		t.Errorf("sender counters = %+v, want 1 datagram / 3 msgs / %d bytes", a, wantBytes)
	}
	if b.DatagramsRecv != 1 || b.MsgsRecv != 3 || b.BytesRecv != wantBytes {
		t.Errorf("receiver counters = %+v, want 1 datagram / 3 msgs / %d bytes", b, wantBytes)
	}
	// The batch costs strictly less wire than three bare datagrams.
	var bare int64
	for _, m := range batch.Msgs {
		bare += int64(m.WireSize() + wire.UDPOverhead)
	}
	if wantBytes >= bare {
		t.Errorf("batch costs %d bytes, three bare datagrams %d: coalescing must save wire", wantBytes, bare)
	}
	// Delivery hands the whole envelope to the node in one callback.
	if len(c.msgs) != 1 {
		t.Fatalf("delivered %d times, want 1", len(c.msgs))
	}
	if got, ok := c.msgs[0].(*wire.Batch); !ok || len(got.Msgs) != 3 {
		t.Errorf("delivered %+v, want the 3-message batch", c.msgs[0])
	}
}
