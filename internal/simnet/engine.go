// Package simnet is a deterministic discrete-event network simulator.
//
// It stands in for the paper's physical testbed: 12 workstations on a
// gigabit LAN plus fault-injection modules that dropped or delayed service
// messages, killed and restarted service instances, and disconnected links.
// Here the same behaviours run in virtual time: days of protocol execution
// simulate in seconds, fully reproducibly (a scenario is a pure function of
// its seed).
//
// The engine is single-threaded. Events run strictly in (time, insertion)
// order; protocol handlers execute inline and may schedule further events.
package simnet

import (
	"container/heap"
	"math/rand"
	"time"

	"stableleader/internal/clock"
)

// epoch anchors virtual time zero. The concrete date is arbitrary; it only
// needs to be fixed so time.Time values are reproducible across runs.
var epoch = time.Date(2008, time.March, 1, 0, 0, 0, 0, time.UTC)

// Epoch returns the time.Time corresponding to virtual time zero.
func Epoch() time.Time { return epoch }

// event is one scheduled callback.
type event struct {
	at      int64 // virtual nanoseconds since epoch
	seq     uint64
	fn      func()
	stopped bool
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine owns the virtual clock, the event queue and the scenario's random
// stream. All randomness in a simulation must come from Rand (or from
// sub-streams seeded by it) so runs are reproducible.
type Engine struct {
	now    int64
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	fired  int64
}

// NewEngine returns an engine at virtual time zero with a random stream
// seeded by seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// NowNanos returns the current virtual time in nanoseconds since the epoch.
func (e *Engine) NowNanos() int64 { return e.now }

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return epoch.Add(time.Duration(e.now)) }

// Rand returns the engine's random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// EventsFired returns the number of callbacks executed so far.
func (e *Engine) EventsFired() int64 { return e.fired }

// Pending returns the number of scheduled (possibly stopped) events.
func (e *Engine) Pending() int { return len(e.events) }

// Timer is a handle to a scheduled event.
type Timer struct{ ev *event }

var _ clock.Timer = (*Timer)(nil)

// Stop cancels the event. It reports whether the event had not yet fired.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.stopped || t.ev.fn == nil {
		return false
	}
	t.ev.stopped = true
	return true
}

// At schedules fn at absolute virtual time at (nanoseconds). Scheduling in
// the past runs fn at the current time, preserving event order.
func (e *Engine) At(at int64, fn func()) *Timer {
	if at < e.now {
		at = e.now
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn after virtual duration d.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	return e.At(e.now+int64(d), fn)
}

// Step executes the next event, if any, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.stopped {
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.fired++
		fn()
		return true
	}
	return false
}

// RunUntil executes every event scheduled at or before the given virtual
// time and then advances the clock to exactly that time.
func (e *Engine) RunUntil(t time.Time) {
	target := int64(t.Sub(epoch))
	for {
		// Discard cancelled events first: a stopped event inside the
		// window must not let Step execute a live event beyond it.
		for len(e.events) > 0 && e.events[0].stopped {
			heap.Pop(&e.events)
		}
		if len(e.events) == 0 || e.events[0].at > target {
			break
		}
		e.Step()
	}
	if e.now < target {
		e.now = target
	}
}

// RunFor executes events for the given virtual duration from the current
// time.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.Now().Add(d))
}
