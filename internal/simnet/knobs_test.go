package simnet

import (
	"testing"
	"time"

	"stableleader/id"
)

// TestDupKnobDuplicates: with Dup = 1 every datagram arrives exactly twice,
// each copy with its own delay draw.
func TestDupKnobDuplicates(t *testing.T) {
	eng, net, c := newPair(t, LinkModel{MeanDelay: time.Millisecond, Dup: 1})
	const n = 100
	for i := 0; i < n; i++ {
		net.Send("a", "b", testMsg("a"))
	}
	eng.RunFor(time.Minute)
	if len(c.msgs) != 2*n {
		t.Fatalf("delivered %d messages, want %d (every datagram duplicated)", len(c.msgs), 2*n)
	}
}

// TestReorderKnobReorders: a datagram held back by the reorder knob is
// overtaken by one sent after it.
func TestReorderKnobReorders(t *testing.T) {
	eng, net, c := newPair(t, LinkModel{
		MeanDelay: time.Microsecond, Reorder: 1, ReorderDelay: time.Second,
	})
	first := testMsg("a")
	net.Send("a", "b", first)
	// Second datagram goes over a clean link model: no hold-back.
	net.SetLinkModel("a", "b", LinkModel{MeanDelay: time.Microsecond})
	second := testMsg("a")
	net.Send("a", "b", second)
	eng.RunFor(time.Minute)
	if len(c.msgs) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(c.msgs))
	}
	if c.msgs[0] != second || c.msgs[1] != first {
		t.Fatalf("delivery order not reordered: got [%v %v]", c.msgs[0], c.msgs[1])
	}
}

// TestZeroKnobsDrawIdentical: with Dup and Reorder zero the injector draws
// exactly the random stream the pre-knob implementation drew — a nonzero
// ReorderDelay alone must change nothing — so existing seeded scenarios
// replay identically.
func TestZeroKnobsDrawIdentical(t *testing.T) {
	run := func(model LinkModel) []time.Duration {
		eng := NewEngine(7)
		net := NewNetwork(eng, model)
		net.Attach("a")
		net.Attach("b")
		c := &collector{eng: eng}
		net.SetUp("a", true, nil)
		net.SetUp("b", true, c)
		for i := 0; i < 500; i++ {
			net.Send("a", "b", testMsg("a"))
		}
		eng.RunFor(time.Minute)
		return c.at
	}
	base := run(LinkModel{Loss: 0.3, MeanDelay: time.Millisecond})
	knobbed := run(LinkModel{
		Loss: 0.3, MeanDelay: time.Millisecond,
		Dup: 0, Reorder: 0, ReorderDelay: 5 * time.Second,
	})
	if len(base) != len(knobbed) {
		t.Fatalf("delivery counts differ: %d vs %d", len(base), len(knobbed))
	}
	for i := range base {
		if base[i] != knobbed[i] {
			t.Fatalf("delivery %d at %v with zero knobs, %v without", i, knobbed[i], base[i])
		}
	}
}

// TestSetPartition: cross-side links drop both ways while partitioned,
// same-side links keep working, and healing restores delivery.
func TestSetPartition(t *testing.T) {
	eng := NewEngine(1)
	net := NewNetwork(eng, LAN())
	recv := make(map[id.Process]*collector)
	for _, p := range []id.Process{"a", "b", "c", "d"} {
		net.Attach(p)
		c := &collector{eng: eng}
		recv[p] = c
		net.SetUp(p, true, c)
	}
	sideA := []id.Process{"a", "b"}
	sideB := []id.Process{"c", "d"}
	SetPartition(net, sideA, sideB, true)
	net.Send("a", "c", testMsg("a")) // cross-side: dropped
	net.Send("c", "a", testMsg("c")) // cross-side: dropped
	net.Send("a", "b", testMsg("a")) // same-side: delivered
	eng.RunFor(time.Second)
	if len(recv["c"].msgs) != 0 || len(recv["a"].msgs) != 0 {
		t.Fatalf("partitioned links delivered: c got %d, a got %d", len(recv["c"].msgs), len(recv["a"].msgs))
	}
	if len(recv["b"].msgs) != 1 {
		t.Fatalf("same-side link delivered %d, want 1", len(recv["b"].msgs))
	}
	SetPartition(net, sideA, sideB, false)
	net.Send("a", "c", testMsg("a"))
	eng.RunFor(time.Second)
	if len(recv["c"].msgs) != 1 {
		t.Fatalf("healed link delivered %d, want 1", len(recv["c"].msgs))
	}
}

// TestClockSkewShiftsTimestampsNotTimers: a skewed node reports shifted
// wall time but its timers still fire on engine time.
func TestClockSkewShiftsTimestampsNotTimers(t *testing.T) {
	eng := NewEngine(1)
	net := NewNetwork(eng, LAN())
	net.Attach("a")
	net.SetUp("a", true, nil)
	rt := NewNodeRuntime(net, "a")
	rt.SetSkew(2 * time.Second)
	if got, want := rt.Now(), eng.Now().Add(2*time.Second); !got.Equal(want) {
		t.Fatalf("skewed Now = %v, want %v", got, want)
	}
	var firedAt time.Duration
	rt.AfterFunc(100*time.Millisecond, func() { firedAt = time.Duration(eng.NowNanos()) })
	eng.RunFor(time.Second)
	if firedAt != 100*time.Millisecond {
		t.Fatalf("timer fired at engine time %v, want 100ms (skew must not move timers)", firedAt)
	}
}
