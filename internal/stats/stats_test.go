package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMeanVar is the two-pass reference implementation.
func naiveMeanVar(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs) - 1)
	return mean, variance
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 || w.CI95() != 0 {
		t.Errorf("zero-value Welford should report all zeros, got n=%d mean=%g var=%g", w.N(), w.Mean(), w.Var())
	}
}

func TestWelfordSingleSample(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.N() != 1 || w.Mean() != 42 {
		t.Errorf("got n=%d mean=%g, want 1, 42", w.N(), w.Mean())
	}
	if w.Var() != 0 {
		t.Errorf("variance of one sample = %g, want 0", w.Var())
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		// Constrain magnitudes: testing/quick can generate values whose
		// squares overflow, which is out of scope for a delay estimator.
		var w Welford
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			clean = append(clean, x)
			w.Add(x)
		}
		mean, variance := naiveMeanVar(clean)
		scale := 1.0 + math.Abs(mean)
		if math.Abs(w.Mean()-mean) > 1e-6*scale {
			return false
		}
		vscale := 1.0 + variance
		return math.Abs(w.Var()-variance) <= 1e-6*vscale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(2)
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 {
		t.Errorf("after Reset: n=%d mean=%g, want zeros", w.N(), w.Mean())
	}
}

func TestTCritical95(t *testing.T) {
	cases := []struct {
		df   int64
		want float64
	}{
		{1, 12.706},
		{10, 2.228},
		{30, 2.042},
		{31, 1.96},
		{1000, 1.96},
	}
	for _, c := range cases {
		if got := TCritical95(c.df); got != c.want {
			t.Errorf("TCritical95(%d) = %g, want %g", c.df, got, c.want)
		}
	}
	if !math.IsNaN(TCritical95(0)) {
		t.Error("TCritical95(0) should be NaN")
	}
}

func TestCI95KnownValue(t *testing.T) {
	// Five samples 1..5: mean 3, sd sqrt(2.5), CI = t(4)*sd/sqrt(5).
	var w Welford
	for i := 1; i <= 5; i++ {
		w.Add(float64(i))
	}
	want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if got := w.CI95(); math.Abs(got-want) > 1e-9 {
		t.Errorf("CI95 = %g, want %g", got, want)
	}
}

func TestPoissonRateCI95(t *testing.T) {
	// 100 events over 10 hours: 1.96*sqrt(100)/10 = 1.96.
	if got := PoissonRateCI95(100, 10); math.Abs(got-1.96) > 1e-12 {
		t.Errorf("PoissonRateCI95(100, 10) = %g, want 1.96", got)
	}
	if got := PoissonRateCI95(0, 10); got != 0 {
		t.Errorf("zero events should have zero CI, got %g", got)
	}
	if !math.IsNaN(PoissonRateCI95(5, 0)) {
		t.Error("zero exposure should be NaN")
	}
}

func TestExpMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	const mean = 3.5
	var sum float64
	for i := 0; i < n; i++ {
		v := Exp(rng, mean)
		if v < 0 {
			t.Fatalf("negative exponential variate %g", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean) > 0.05 {
		t.Errorf("empirical mean = %g, want %g ± 0.05", got, mean)
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if Exp(rng, 0) != 0 || Exp(rng, -1) != 0 {
		t.Error("non-positive mean should yield 0")
	}
}
