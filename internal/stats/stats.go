// Package stats provides the small statistical toolkit used by the failure
// detector's link quality estimator and by the experiment harness: streaming
// mean/variance (Welford), 95% confidence intervals, and exponential
// variates for the fault injectors.
package stats

import (
	"math"
	"math/rand"
)

// Welford accumulates a streaming mean and variance using Welford's online
// algorithm. The zero value is an empty accumulator ready for use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations seen so far.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean, or 0 if no observations were added.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance, or 0 for fewer than two samples.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// tTable holds two-sided 95% Student-t critical values for 1..30 degrees of
// freedom; beyond 30 the normal value 1.96 is a standard approximation.
var tTable = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom.
func TCritical95(df int64) float64 {
	switch {
	case df <= 0:
		return math.NaN()
	case df <= int64(len(tTable)):
		return tTable[df-1]
	default:
		return 1.96
	}
}

// CI95 returns the half-width of the 95% confidence interval for the mean of
// the accumulated samples. It returns 0 for fewer than two samples.
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return TCritical95(w.n-1) * w.Std() / math.Sqrt(float64(w.n))
}

// PoissonRateCI95 returns the half-width of an approximate 95% confidence
// interval for an event rate, given an observed count of events over the
// stated exposure (in the rate's time unit). It uses the normal
// approximation lambda ± 1.96*sqrt(count)/exposure, which is the standard
// interval for the mistake-rate metric of the paper.
func PoissonRateCI95(count int64, exposure float64) float64 {
	if exposure <= 0 {
		return math.NaN()
	}
	return 1.96 * math.Sqrt(float64(count)) / exposure
}

// Exp draws an exponentially distributed variate with the given mean from
// rng. A non-positive mean returns 0.
func Exp(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return rng.ExpFloat64() * mean
}
