// Package group implements the Group Maintenance module of the service
// architecture (Section 4): it builds and maintains, for each group, the
// set of processes that are currently in the group, together with their
// incarnations and candidacy flags.
//
// The membership table is a state-based CRDT: rows merge commutatively and
// idempotently (the newest incarnation wins; within an incarnation the
// "left" tombstone and the candidacy flag are sticky), so HELLO gossip can
// spread tables in any order over lossy links and every process converges
// to the same view.
package group

import (
	"sort"

	"stableleader/id"
)

// Member is one row of the membership table.
type Member struct {
	// ID is the process identifier.
	ID id.Process
	// Incarnation distinguishes successive lifetimes of the same process.
	// The service uses the start timestamp (ns), which is strictly
	// increasing across restarts.
	Incarnation int64
	// Candidate reports whether this incarnation competes for leadership.
	Candidate bool
	// Left marks a voluntary departure of this incarnation.
	Left bool
}

// supersedes reports whether row a should replace row b in the table.
func supersedes(a, b Member) bool { return a.Incarnation > b.Incarnation }

// mergeSame combines two rows of the same incarnation: tombstones and
// candidacy are sticky, which makes the merge commutative.
func mergeSame(a, b Member) Member {
	a.Left = a.Left || b.Left
	a.Candidate = a.Candidate || b.Candidate
	return a
}

// Table is one group's membership view.
type Table struct {
	rows    map[id.Process]Member
	version uint64
}

// NewTable returns an empty membership table.
func NewTable() *Table {
	return &Table{rows: make(map[id.Process]Member)}
}

// Version increases every time the table content changes; hosts use it to
// detect membership changes cheaply.
func (t *Table) Version() uint64 { return t.version }

// Upsert merges one row and reports whether the table changed.
func (t *Table) Upsert(m Member) bool {
	cur, ok := t.rows[m.ID]
	switch {
	case !ok || supersedes(m, cur):
		t.rows[m.ID] = m
	case supersedes(cur, m):
		return false
	default:
		merged := mergeSame(cur, m)
		if merged == cur {
			return false
		}
		t.rows[m.ID] = merged
	}
	t.version++
	return true
}

// Merge merges a batch of rows (for example a HELLO payload) and reports
// whether anything changed.
func (t *Table) Merge(rows []Member) bool {
	changed := false
	for _, m := range rows {
		if t.Upsert(m) {
			changed = true
		}
	}
	return changed
}

// Get returns the row for p.
func (t *Table) Get(p id.Process) (Member, bool) {
	m, ok := t.rows[p]
	return m, ok
}

// Snapshot returns every row (including tombstones), sorted by id, suitable
// for gossiping.
func (t *Table) Snapshot() []Member {
	out := make([]Member, 0, len(t.rows))
	for _, m := range t.rows {
		out = append(out, m)
	}
	sortMembers(out)
	return out
}

// Active returns the rows that have not left, sorted by id. These are the
// processes currently considered "in the group"; their liveness is judged
// separately by the failure detector.
func (t *Table) Active() []Member {
	out := make([]Member, 0, len(t.rows))
	for _, m := range t.rows {
		if !m.Left {
			out = append(out, m)
		}
	}
	sortMembers(out)
	return out
}

// Len returns the number of rows, tombstones included.
func (t *Table) Len() int { return len(t.rows) }

// sortMembers orders rows by process id; deterministic iteration order is
// what keeps simulations reproducible.
func sortMembers(ms []Member) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
}
