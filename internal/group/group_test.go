package group

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"stableleader/id"
)

func TestUpsertNewMember(t *testing.T) {
	tb := NewTable()
	if !tb.Upsert(Member{ID: "a", Incarnation: 1, Candidate: true}) {
		t.Fatal("inserting a new member should report a change")
	}
	m, ok := tb.Get("a")
	if !ok || !m.Candidate || m.Incarnation != 1 {
		t.Fatalf("Get(a) = %+v, %v", m, ok)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tb.Len())
	}
}

func TestUpsertIdempotent(t *testing.T) {
	tb := NewTable()
	row := Member{ID: "a", Incarnation: 1, Candidate: true}
	tb.Upsert(row)
	v := tb.Version()
	if tb.Upsert(row) {
		t.Error("re-inserting the identical row should not report a change")
	}
	if tb.Version() != v {
		t.Error("version must not change on a no-op upsert")
	}
}

func TestNewerIncarnationWins(t *testing.T) {
	tb := NewTable()
	tb.Upsert(Member{ID: "a", Incarnation: 1, Candidate: true, Left: true})
	if !tb.Upsert(Member{ID: "a", Incarnation: 2}) {
		t.Fatal("newer incarnation should change the table")
	}
	m, _ := tb.Get("a")
	if m.Incarnation != 2 || m.Left || m.Candidate {
		t.Errorf("newer incarnation should fully replace the row, got %+v", m)
	}
	// An old incarnation arriving late must be ignored.
	if tb.Upsert(Member{ID: "a", Incarnation: 1, Candidate: true}) {
		t.Error("stale incarnation should be ignored")
	}
}

func TestTombstoneSticky(t *testing.T) {
	tb := NewTable()
	tb.Upsert(Member{ID: "a", Incarnation: 5})
	if !tb.Upsert(Member{ID: "a", Incarnation: 5, Left: true}) {
		t.Fatal("marking left should change the table")
	}
	// Left cannot be undone within the same incarnation.
	tb.Upsert(Member{ID: "a", Incarnation: 5})
	m, _ := tb.Get("a")
	if !m.Left {
		t.Error("left tombstone must be sticky within an incarnation")
	}
}

func TestActiveExcludesTombstones(t *testing.T) {
	tb := NewTable()
	tb.Upsert(Member{ID: "b", Incarnation: 1})
	tb.Upsert(Member{ID: "a", Incarnation: 1})
	tb.Upsert(Member{ID: "c", Incarnation: 1, Left: true})
	act := tb.Active()
	if len(act) != 2 || act[0].ID != "a" || act[1].ID != "b" {
		t.Errorf("Active() = %+v, want sorted [a b]", act)
	}
	if len(tb.Snapshot()) != 3 {
		t.Errorf("Snapshot should include tombstones")
	}
}

func TestSnapshotSorted(t *testing.T) {
	tb := NewTable()
	for _, p := range []id.Process{"z", "m", "a", "q"} {
		tb.Upsert(Member{ID: p, Incarnation: 1})
	}
	snap := tb.Snapshot()
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].ID < snap[j].ID }) {
		t.Errorf("Snapshot not sorted: %+v", snap)
	}
}

// randomRows builds a small random batch of member rows over few ids, so
// collisions are common.
func randomRows(r *rand.Rand) []Member {
	ids := []id.Process{"a", "b", "c"}
	n := r.Intn(6)
	rows := make([]Member, n)
	for i := range rows {
		rows[i] = Member{
			ID:          ids[r.Intn(len(ids))],
			Incarnation: int64(r.Intn(3)),
			Candidate:   r.Intn(2) == 0,
			Left:        r.Intn(2) == 0,
		}
	}
	return rows
}

// TestMergeOrderIndependent is the CRDT property HELLO gossip relies on:
// merging any two batches in either order converges to the same table.
func TestMergeOrderIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		x, y := randomRows(r), randomRows(r)
		ab, ba := NewTable(), NewTable()
		ab.Merge(x)
		ab.Merge(y)
		ba.Merge(y)
		ba.Merge(x)
		return reflect.DeepEqual(ab.Snapshot(), ba.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestMergeIdempotent: merging the same batch twice equals merging once.
func TestMergeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		x := randomRows(r)
		once, twice := NewTable(), NewTable()
		once.Merge(x)
		twice.Merge(x)
		if twice.Merge(x) {
			return false // second identical merge must be a no-op
		}
		return reflect.DeepEqual(once.Snapshot(), twice.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestGossipConvergence: any set of tables pairwise exchanging snapshots
// converges to the union.
func TestGossipConvergence(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tables := make([]*Table, 4)
	for i := range tables {
		tables[i] = NewTable()
		tables[i].Merge(randomRows(r))
	}
	// A few random gossip rounds, then a full round-robin to finish.
	for i := 0; i < 20; i++ {
		a, b := tables[r.Intn(4)], tables[r.Intn(4)]
		b.Merge(a.Snapshot())
	}
	for i := range tables {
		for j := range tables {
			tables[j].Merge(tables[i].Snapshot())
		}
	}
	want := tables[0].Snapshot()
	for i, tb := range tables {
		if !reflect.DeepEqual(tb.Snapshot(), want) {
			t.Fatalf("table %d diverged:\n%v\nvs\n%v", i, tb.Snapshot(), want)
		}
	}
}
