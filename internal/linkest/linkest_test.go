package linkest

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestDefaultsBeforeEvidence(t *testing.T) {
	e := New()
	got := e.Snapshot()
	want := DefaultStats()
	if got != want {
		t.Errorf("fresh estimator snapshot = %+v, want defaults %+v", got, want)
	}
	// A handful of samples below the threshold still returns defaults.
	for i := 1; i <= minSamples-1; i++ {
		e.Observe("g", uint64(i), time.Millisecond)
	}
	if e.Snapshot() != want {
		t.Error("estimator trusted itself before minSamples observations")
	}
}

func TestDelayEstimation(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(1))
	mean := 20 * time.Millisecond
	for i := 1; i <= 1000; i++ {
		d := time.Duration(rng.ExpFloat64() * float64(mean))
		e.Observe("g", uint64(i), d)
	}
	s := e.Snapshot()
	if math.Abs(float64(s.MeanDelay-mean)) > 0.1*float64(mean) {
		t.Errorf("MeanDelay = %v, want %v ± 10%%", s.MeanDelay, mean)
	}
	// Exponential: std == mean.
	if math.Abs(float64(s.StdDelay-mean)) > 0.15*float64(mean) {
		t.Errorf("StdDelay = %v, want ≈ %v", s.StdDelay, mean)
	}
	if s.Loss > 0.01 {
		t.Errorf("no gaps were introduced but Loss = %g (only the conservative prior should remain)", s.Loss)
	}
}

func TestLossFromSequenceGaps(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(2))
	// Drop 30% of a consecutive heartbeat stream.
	for i := 1; i <= 5000; i++ {
		if rng.Float64() < 0.3 {
			continue
		}
		e.Observe("g", uint64(i), time.Millisecond)
	}
	s := e.Snapshot()
	if math.Abs(s.Loss-0.3) > 0.03 {
		t.Errorf("Loss = %.3f, want 0.30 ± 0.03", s.Loss)
	}
}

func TestReorderDoesNotReopenGaps(t *testing.T) {
	e := New()
	// 1, 2, 5 (gap of 2), then the late 3 and 4 arrive.
	for _, seq := range []uint64{1, 2, 5, 3, 4} {
		e.Observe("g", seq, time.Millisecond)
	}
	for i := uint64(6); i < 200; i++ {
		e.Observe("g", i, time.Millisecond)
	}
	s := e.Snapshot()
	// 2 gap losses, ~200 receptions: estimate near 1%; critically, the
	// late arrivals must not have counted extra losses.
	if s.Loss > 0.02 {
		t.Errorf("Loss = %.4f after reordering, want ≈ 0.01", s.Loss)
	}
}

func TestStreamsAreIndependent(t *testing.T) {
	e := New()
	// Interleave two groups' heartbeat streams over the same link; each is
	// consecutive in its own numbering, so no losses should be inferred.
	for i := 1; i <= 500; i++ {
		e.Observe("g1", uint64(i), time.Millisecond)
		e.Observe("g2", uint64(i), time.Millisecond)
	}
	if s := e.Snapshot(); s.Loss > 0.01 {
		t.Errorf("interleaved streams produced phantom loss %.4f", s.Loss)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := New()
	for i := 1; i <= 100; i++ {
		e.Observe("g", uint64(i), -time.Millisecond)
	}
	s := e.Snapshot()
	if s.MeanDelay != 0 {
		t.Errorf("negative delays should clamp to 0, got %v", s.MeanDelay)
	}
}

func TestBurstLossCapped(t *testing.T) {
	e := New()
	e.Observe("g", 1, time.Millisecond)
	// A giant sequence jump (e.g. estimator restarted mid-stream) must not
	// poison the estimate forever.
	e.Observe("g", 1<<30, time.Millisecond)
	for i := uint64(1<<30 + 1); i < 1<<30+3000; i++ {
		e.Observe("g", i, time.Millisecond)
	}
	if s := e.Snapshot(); s.Loss > 0.30 {
		t.Errorf("Loss = %.3f long after a burst, want decayed below 0.30", s.Loss)
	}
}

func TestAdaptsToChange(t *testing.T) {
	e := New()
	seq := uint64(0)
	// A long period of terrible 50% loss...
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4000; i++ {
		seq++
		if rng.Float64() < 0.5 {
			continue
		}
		e.Observe("g", seq, 50*time.Millisecond)
	}
	if s := e.Snapshot(); s.Loss < 0.4 {
		t.Fatalf("setup failed: Loss = %.3f", s.Loss)
	}
	// ...then the network heals. The decayed window must converge.
	for i := 0; i < 20000; i++ {
		seq++
		e.Observe("g", seq, time.Millisecond)
	}
	s := e.Snapshot()
	if s.Loss > 0.01 {
		t.Errorf("Loss = %.4f after healing, want < 0.01", s.Loss)
	}
	if s.MeanDelay > 2*time.Millisecond {
		t.Errorf("MeanDelay = %v after healing, want ≈ 1ms", s.MeanDelay)
	}
}

func TestReset(t *testing.T) {
	e := New()
	for i := 1; i <= 100; i++ {
		e.Observe("g", uint64(i), time.Millisecond)
	}
	e.Reset()
	if e.Snapshot() != DefaultStats() {
		t.Error("Reset should return the estimator to defaults")
	}
	// After reset a fresh stream restarting at seq 1 must not count a gap.
	for i := 1; i <= 100; i++ {
		e.Observe("g", uint64(i), time.Millisecond)
	}
	if s := e.Snapshot(); s.Loss > 0.03 {
		t.Errorf("post-reset stream inferred loss %.4f beyond the prior", s.Loss)
	}
}

func TestSamplesReported(t *testing.T) {
	e := New()
	for i := 1; i <= 50; i++ {
		e.Observe("g", uint64(i), time.Millisecond)
	}
	if s := e.Snapshot(); s.Samples < 49 {
		t.Errorf("Samples = %g, want ≈ 50", s.Samples)
	}
}

// TestLossPriorIsConservative pins the regression found by the stability
// sweep: a young estimator that has seen a handful of gap-free heartbeats
// must NOT report a (near-)lossless link — on a genuinely lossy link that
// snap judgement let the FD configurator relax to parameters that could
// not deliver the promised mistake rate.
func TestLossPriorIsConservative(t *testing.T) {
	e := New()
	for i := 1; i <= minSamples+2; i++ {
		e.Observe("g", uint64(i), time.Millisecond)
	}
	if s := e.Snapshot(); s.Loss < 0.05 {
		t.Errorf("Loss = %.4f after %d gap-free samples; want a conservative estimate until evidence accumulates", s.Loss, minSamples+2)
	}
	// With a full window of evidence the prior must wash out.
	for i := minSamples + 3; i <= 2500; i++ {
		e.Observe("g", uint64(i), time.Millisecond)
	}
	if s := e.Snapshot(); s.Loss > 0.005 {
		t.Errorf("Loss = %.4f after 2500 gap-free samples; the prior should have washed out", s.Loss)
	}
}
