// Package linkest implements the link quality estimator of the failure
// detector architecture (Figure 1 of the paper): from the stream of ALIVE
// messages received over a directed link it continuously estimates
//
//   - pL, the probability of message loss (from sequence-number gaps),
//   - Ed, the expected message delay, and
//   - Sd, the standard deviation of the message delay,
//
// which the failure detector configurator consumes to compute the heartbeat
// interval and timeout that meet the application's QoS.
//
// The estimator forgets old behaviour exponentially (counters are halved
// once a window's worth of samples accumulates) so the failure detector
// adapts to changing network conditions, as required in Section 3.
package linkest

import (
	"math"
	"time"

	"stableleader/id"
)

// Defaults used until enough samples arrive. They are deliberately
// pessimistic (a mediocre link) so the failure detector starts conservative
// and relaxes as evidence accumulates.
const (
	defaultLoss      = 0.02
	defaultMeanDelay = 5 * time.Millisecond
	defaultStdDelay  = 5 * time.Millisecond

	// windowSize is the effective sample memory: once this many weighted
	// samples accumulate, all accumulators are halved.
	windowSize = 2000

	// minSamples is how many real samples are required before the
	// estimator trusts its own numbers over the defaults.
	minSamples = 8
)

// Stats is a snapshot of the estimated link quality.
type Stats struct {
	// Loss is the estimated probability that a message is dropped.
	Loss float64
	// MeanDelay is the estimated expected one-way delay.
	MeanDelay time.Duration
	// StdDelay is the estimated standard deviation of the one-way delay.
	StdDelay time.Duration
	// Samples is the (decayed) number of delay observations backing the
	// estimate.
	Samples float64
}

// DefaultStats returns the pre-evidence estimate.
func DefaultStats() Stats {
	return Stats{Loss: defaultLoss, MeanDelay: defaultMeanDelay, StdDelay: defaultStdDelay}
}

// Estimator estimates the quality of one incoming directed link. One
// estimator is shared by every group that monitors the same remote process
// (the cost-sharing architecture of Section 4); heartbeat streams of
// different groups are distinguished by a stream key so sequence gaps are
// counted per stream.
type Estimator struct {
	// loss accounting (decayed counts).
	recv float64
	lost float64
	// delay accounting (decayed sums, in seconds).
	n     float64
	sum   float64
	sumSq float64
	// lastSeq tracks the highest sequence number seen per heartbeat stream.
	lastSeq map[id.Group]uint64
}

// New returns an empty estimator.
func New() *Estimator {
	return &Estimator{lastSeq: make(map[id.Group]uint64)}
}

// Reset discards all state, e.g. when the remote process restarts with a
// new incarnation (its sequence numbering restarts too).
func (e *Estimator) Reset() {
	*e = Estimator{lastSeq: make(map[id.Group]uint64)}
}

// Observe records the arrival of heartbeat seq on the given stream with the
// measured one-way delay. Sequence gaps count as losses; duplicates and
// reordered arrivals are counted as received without reopening past gaps
// (a late message we already counted lost slightly overestimates pL, the
// conservative direction for the configurator).
func (e *Estimator) Observe(stream id.Group, seq uint64, delay time.Duration) {
	if delay < 0 {
		// Clock skew on real networks can produce slightly negative
		// timestamps; treat as an instantaneous delivery.
		delay = 0
	}
	last, seen := e.lastSeq[stream]
	switch {
	case !seen:
		e.lastSeq[stream] = seq
	case seq > last:
		gap := float64(seq - last - 1)
		// A burst of losses larger than the window carries no more
		// information than "the link is terrible"; cap it so a single
		// outage cannot dominate the decayed counters forever.
		if gap > windowSize/2 {
			gap = windowSize / 2
		}
		e.lost += gap
		e.lastSeq[stream] = seq
	default:
		// Duplicate or reordered: already accounted as lost; fall through
		// so the success still improves the loss estimate and the delay
		// sample is still used.
	}
	e.recv++
	d := delay.Seconds()
	e.n++
	e.sum += d
	e.sumSq += d * d
	e.decay()
}

// decay halves all accumulators once a window of samples accumulates,
// giving the estimator an exponentially fading memory.
func (e *Estimator) decay() {
	if e.recv+e.lost > windowSize {
		e.recv /= 2
		e.lost /= 2
	}
	if e.n > windowSize {
		e.n /= 2
		e.sum /= 2
		e.sumSq /= 2
	}
}

// Snapshot returns the current estimate, falling back to the defaults until
// minSamples observations have arrived.
func (e *Estimator) Snapshot() Stats {
	if e.n < minSamples {
		return DefaultStats()
	}
	mean := e.sum / e.n
	variance := e.sumSq/e.n - mean*mean
	if variance < 0 {
		variance = 0
	}
	// Loss is estimated with two pseudo-losses added (a conservative upper
	// bound in the spirit of the Wilson interval): a young estimator that
	// happened to see no gaps must not report a lossless link — the
	// configurator would instantly relax to its most aggressive parameters
	// and void the QoS until reality catches up. With a full window of
	// evidence the two pseudo-counts are negligible (2/2000 = 0.1%).
	loss := (e.lost + 2) / (e.recv + e.lost + 2)
	return Stats{
		Loss:      loss,
		MeanDelay: time.Duration(mean * float64(time.Second)),
		StdDelay:  time.Duration(math.Sqrt(variance) * float64(time.Second)),
		Samples:   e.n,
	}
}
