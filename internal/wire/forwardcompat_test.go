package wire

import (
	"errors"
	"reflect"
	"testing"
)

// futureKind is a message kind from an imagined newer protocol version:
// well past every kind this build knows.
const futureKind = Kind(0x2a)

// appendFutureItem appends one length-prefixed inner message of an unknown
// kind (arbitrary body bytes) to a batch body under construction.
func appendFutureItem(b []byte, body []byte) []byte {
	var w writer
	w.b = b
	w.uvarint(uint64(1 + len(body)))
	w.u8(byte(futureKind))
	w.b = append(w.b, body...)
	return w.b
}

// TestBatchSkipsUnknownKinds is the forward-compatibility regression test:
// a batch from a future-versioned peer that mixes known messages with kinds
// this build has never heard of must yield the known messages and count the
// skipped ones — not fail the whole datagram.
func TestBatchSkipsUnknownKinds(t *testing.T) {
	known1 := &Alive{Group: "g", Sender: "w01", Incarnation: 1, Seq: 9}
	known2 := &Leave{Group: "g", Sender: "w02", Incarnation: 2}

	// Hand-build the envelope: known | future | known | future.
	var w writer
	w.kind(KindBatch)
	w.u8(BatchVersion)
	w.uvarint(4)
	w.uvarint(uint64(known1.WireSize()))
	w.b = MarshalAppend(w.b, known1)
	w.b = appendFutureItem(w.b, []byte{0xde, 0xad, 0xbe, 0xef})
	w.uvarint(uint64(known2.WireSize()))
	w.b = MarshalAppend(w.b, known2)
	w.b = appendFutureItem(w.b, nil)

	msgs, err := UnmarshalBatch(w.b)
	if err != nil {
		t.Fatalf("batch with unknown inner kinds failed to decode: %v", err)
	}
	want := []Message{known1, known2}
	if !reflect.DeepEqual(msgs, want) {
		t.Fatalf("decoded %+v, want the two known messages %+v", msgs, want)
	}

	// The pooled decoder agrees and surfaces the skip count.
	dec := NewDecoder()
	got, err := dec.DecodeAppend(nil, w.b)
	if err != nil {
		t.Fatalf("pooled decode failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pooled decoder yielded %+v, want %+v", got, want)
	}
	if n := dec.TakeUnknown(); n != 2 {
		t.Fatalf("TakeUnknown() = %d, want 2", n)
	}
	if n := dec.TakeUnknown(); n != 0 {
		t.Fatalf("TakeUnknown() did not reset: second call = %d, want 0", n)
	}
	for _, m := range got {
		dec.Release(m)
	}
}

// TestBatchAllUnknownKinds: a batch holding only future kinds decodes to
// zero messages (and is not an error) — the canonical empty batch.
func TestBatchAllUnknownKinds(t *testing.T) {
	var w writer
	w.kind(KindBatch)
	w.u8(BatchVersion)
	w.uvarint(2)
	w.b = appendFutureItem(w.b, []byte{1, 2, 3})
	w.b = appendFutureItem(w.b, []byte{4})

	msgs, err := UnmarshalBatch(w.b)
	if err != nil {
		t.Fatalf("all-unknown batch failed: %v", err)
	}
	if len(msgs) != 0 {
		t.Fatalf("decoded %d messages from an all-unknown batch, want 0", len(msgs))
	}
	dec := NewDecoder()
	if _, err := dec.DecodeAppend(nil, w.b); err != nil {
		t.Fatalf("pooled decode of all-unknown batch failed: %v", err)
	}
	if n := dec.TakeUnknown(); n != 2 {
		t.Fatalf("TakeUnknown() = %d, want 2", n)
	}
}

// TestBareUnknownKindStillErrors: outside a batch there is no length
// prefix, so a bare unknown kind stays an ErrUnknownKind error (hosts count
// the dropped datagram separately).
func TestBareUnknownKindStillErrors(t *testing.T) {
	_, err := Unmarshal([]byte{byte(futureKind), 1, 'g', 1, 's'})
	if !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("bare unknown kind: err = %v, want ErrUnknownKind", err)
	}
}

// TestBatchTruncatedUnknownStillErrors: an unknown inner message whose
// length prefix overruns the datagram is corruption, not forward traffic.
func TestBatchTruncatedUnknownStillErrors(t *testing.T) {
	var w writer
	w.kind(KindBatch)
	w.u8(BatchVersion)
	w.uvarint(1)
	w.uvarint(100) // claims 100 bytes...
	w.u8(byte(futureKind))
	w.b = append(w.b, 1, 2, 3) // ...delivers 4
	if _, err := Unmarshal(w.b); err == nil {
		t.Fatal("truncated unknown inner message decoded without error")
	}
}

// TestClientPlaneKindStrings pins the wire names of the client plane.
func TestClientPlaneKindStrings(t *testing.T) {
	names := map[Kind]string{
		KindSubscribe:      "SUBSCRIBE",
		KindUnsubscribe:    "UNSUBSCRIBE",
		KindLeaderSnapshot: "LEADER_SNAPSHOT",
		KindLeaseRenew:     "LEASE_RENEW",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// TestClientPlaneInBatch: client-plane messages ride the coalescing
// envelope like any protocol message — a multi-group snapshot fan-out to
// one client is one datagram.
func TestClientPlaneInBatch(t *testing.T) {
	b := &Batch{Msgs: []Message{
		&LeaderSnapshot{Group: "g1", Sender: "w01", Incarnation: 1, Seq: 4,
			Elected: true, Leader: "w02", LeaderIncarnation: 5, At: 100, Lease: int64(10e9)},
		&LeaderSnapshot{Group: "g2", Sender: "w01", Incarnation: 1, Seq: 7,
			Elected: false, At: 101, Lease: int64(10e9)},
		&Subscribe{Group: "g3", Sender: "c1", Incarnation: 2, TTL: int64(10e9)},
		&LeaseRenew{Group: "g4", Sender: "c1", Incarnation: 2, TTL: int64(10e9)},
		&Unsubscribe{Group: "g5", Sender: "c1", Incarnation: 2},
	}}
	raw := Marshal(b)
	if len(raw) != b.WireSize() {
		t.Fatalf("batch WireSize %d != marshaled %d", b.WireSize(), len(raw))
	}
	got, err := UnmarshalBatch(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b.Msgs) {
		t.Fatalf("round trip mismatch:\n sent %+v\n got  %+v", b.Msgs, got)
	}
}
