package wire

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
)

// futureKind is a message kind from an imagined newer protocol version:
// well past every kind this build knows.
const futureKind = Kind(0x2a)

// appendFutureItem appends one length-prefixed inner message of an unknown
// kind (arbitrary body bytes) to a batch body under construction.
func appendFutureItem(b []byte, body []byte) []byte {
	var w writer
	w.b = b
	w.uvarint(uint64(1 + len(body)))
	w.u8(byte(futureKind))
	w.b = append(w.b, body...)
	return w.b
}

// TestBatchSkipsUnknownKinds is the forward-compatibility regression test:
// a batch from a future-versioned peer that mixes known messages with kinds
// this build has never heard of must yield the known messages and count the
// skipped ones — not fail the whole datagram.
func TestBatchSkipsUnknownKinds(t *testing.T) {
	known1 := &Alive{Group: "g", Sender: "w01", Incarnation: 1, Seq: 9}
	known2 := &Leave{Group: "g", Sender: "w02", Incarnation: 2}

	// Hand-build the envelope: known | future | known | future.
	var w writer
	w.kind(KindBatch)
	w.u8(BatchVersion)
	w.uvarint(4)
	w.uvarint(uint64(known1.WireSize()))
	w.b = MarshalAppend(w.b, known1)
	w.b = appendFutureItem(w.b, []byte{0xde, 0xad, 0xbe, 0xef})
	w.uvarint(uint64(known2.WireSize()))
	w.b = MarshalAppend(w.b, known2)
	w.b = appendFutureItem(w.b, nil)

	msgs, err := UnmarshalBatch(w.b)
	if err != nil {
		t.Fatalf("batch with unknown inner kinds failed to decode: %v", err)
	}
	want := []Message{known1, known2}
	if !reflect.DeepEqual(msgs, want) {
		t.Fatalf("decoded %+v, want the two known messages %+v", msgs, want)
	}

	// The pooled decoder agrees and surfaces the skip count.
	dec := NewDecoder()
	got, err := dec.DecodeAppend(nil, w.b)
	if err != nil {
		t.Fatalf("pooled decode failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pooled decoder yielded %+v, want %+v", got, want)
	}
	if n := dec.TakeUnknown(); n != 2 {
		t.Fatalf("TakeUnknown() = %d, want 2", n)
	}
	if n := dec.TakeUnknown(); n != 0 {
		t.Fatalf("TakeUnknown() did not reset: second call = %d, want 0", n)
	}
	for _, m := range got {
		dec.Release(m)
	}
}

// TestBatchAllUnknownKinds: a batch holding only future kinds decodes to
// zero messages (and is not an error) — the canonical empty batch.
func TestBatchAllUnknownKinds(t *testing.T) {
	var w writer
	w.kind(KindBatch)
	w.u8(BatchVersion)
	w.uvarint(2)
	w.b = appendFutureItem(w.b, []byte{1, 2, 3})
	w.b = appendFutureItem(w.b, []byte{4})

	msgs, err := UnmarshalBatch(w.b)
	if err != nil {
		t.Fatalf("all-unknown batch failed: %v", err)
	}
	if len(msgs) != 0 {
		t.Fatalf("decoded %d messages from an all-unknown batch, want 0", len(msgs))
	}
	dec := NewDecoder()
	if _, err := dec.DecodeAppend(nil, w.b); err != nil {
		t.Fatalf("pooled decode of all-unknown batch failed: %v", err)
	}
	if n := dec.TakeUnknown(); n != 2 {
		t.Fatalf("TakeUnknown() = %d, want 2", n)
	}
}

// TestBareUnknownKindStillErrors: outside a batch there is no length
// prefix, so a bare unknown kind stays an ErrUnknownKind error (hosts count
// the dropped datagram separately).
func TestBareUnknownKindStillErrors(t *testing.T) {
	_, err := Unmarshal([]byte{byte(futureKind), 1, 'g', 1, 's'})
	if !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("bare unknown kind: err = %v, want ErrUnknownKind", err)
	}
}

// TestBatchTruncatedUnknownStillErrors: an unknown inner message whose
// length prefix overruns the datagram is corruption, not forward traffic.
func TestBatchTruncatedUnknownStillErrors(t *testing.T) {
	var w writer
	w.kind(KindBatch)
	w.u8(BatchVersion)
	w.uvarint(1)
	w.uvarint(100) // claims 100 bytes...
	w.u8(byte(futureKind))
	w.b = append(w.b, 1, 2, 3) // ...delivers 4
	if _, err := Unmarshal(w.b); err == nil {
		t.Fatal("truncated unknown inner message decoded without error")
	}
}

// TestPrePR8PeersSkipStandbyKinds is the regression test for the warm-
// standby wire kinds: a peer built before STANDBY/HANDOVER/SUCCESSOR_HINT
// existed must skip them inside a batch (counting them as unknown) while
// still decoding the heartbeats they ride with. A pre-PR decoder's skip
// path reads ONLY the inner length prefix — never the body — so patching
// each new kind byte to one this build does not know reproduces the old
// peer's behaviour exactly on today's decoder.
func TestPrePR8PeersSkipStandbyKinds(t *testing.T) {
	alive := &Alive{Group: "g", Sender: "w01", Incarnation: 1, Seq: 9, AccTime: 7}
	snap := &LeaderSnapshot{Group: "g", Sender: "w01", Incarnation: 1, Seq: 10, Tombstone: true}
	newKinds := []Message{
		&Standby{Group: "g", Sender: "w01", Incarnation: 1, Seq: 3, Standby: "w02", StandbyInc: 5},
		&Handover{Group: "g", Sender: "w01", Incarnation: 1, Successor: "w02",
			SuccessorInc: 5, GrantAcc: 6, At: 100},
		&SuccessorHint{Group: "g", Sender: "w01", Incarnation: 1, Seq: 11,
			Successor: "w02", SuccessorInc: 5, At: 100, Lease: int64(10e9)},
	}
	b := &Batch{Msgs: []Message{alive, newKinds[0], newKinds[1], newKinds[2], snap}}
	raw := Marshal(b)

	// Sanity: this build decodes all five.
	all, err := UnmarshalBatch(raw)
	if err != nil {
		t.Fatalf("full decode: %v", err)
	}
	if len(all) != 5 {
		t.Fatalf("full decode yielded %d messages, want 5", len(all))
	}

	// Walk the envelope item by item (uvarint length, then kind byte) and
	// patch each standby-plane kind byte to a kind NO build knows — those
	// are exactly the bytes a pre-PR skip path dispatches on.
	patched := append([]byte(nil), raw...)
	off := 2 // batch kind byte + version byte
	count, n := binary.Uvarint(patched[off:])
	if n <= 0 {
		t.Fatal("malformed batch count")
	}
	off += n
	swapped := 0
	for i := uint64(0); i < count; i++ {
		length, n := binary.Uvarint(patched[off:])
		if n <= 0 {
			t.Fatalf("malformed item length at offset %d", off)
		}
		off += n
		switch Kind(patched[off]) {
		case KindStandby, KindHandover, KindSuccessorHint:
			patched[off] = byte(futureKind)
			swapped++
		}
		off += int(length)
	}
	if swapped != 3 {
		t.Fatalf("patched %d inner kind bytes, want 3", swapped)
	}

	dec := NewDecoder()
	got, err := dec.DecodeAppend(nil, patched)
	if err != nil {
		t.Fatalf("pre-PR-peer decode: %v", err)
	}
	want := []Message{alive, snap}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pre-PR peer decoded %+v, want just the heartbeat and snapshot %+v", got, want)
	}
	if u := dec.TakeUnknown(); u != 3 {
		t.Fatalf("TakeUnknown() = %d, want 3 (the skipped standby-plane messages)", u)
	}
	for _, m := range got {
		dec.Release(m)
	}
}

// TestStandbyPlaneKindStrings pins the wire names of the standby plane.
func TestStandbyPlaneKindStrings(t *testing.T) {
	names := map[Kind]string{
		KindStandby:       "STANDBY",
		KindHandover:      "HANDOVER",
		KindSuccessorHint: "SUCCESSOR_HINT",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// TestClientPlaneKindStrings pins the wire names of the client plane.
func TestClientPlaneKindStrings(t *testing.T) {
	names := map[Kind]string{
		KindSubscribe:      "SUBSCRIBE",
		KindUnsubscribe:    "UNSUBSCRIBE",
		KindLeaderSnapshot: "LEADER_SNAPSHOT",
		KindLeaseRenew:     "LEASE_RENEW",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// TestClientPlaneInBatch: client-plane messages ride the coalescing
// envelope like any protocol message — a multi-group snapshot fan-out to
// one client is one datagram.
func TestClientPlaneInBatch(t *testing.T) {
	b := &Batch{Msgs: []Message{
		&LeaderSnapshot{Group: "g1", Sender: "w01", Incarnation: 1, Seq: 4,
			Elected: true, Leader: "w02", LeaderIncarnation: 5, At: 100, Lease: int64(10e9)},
		&LeaderSnapshot{Group: "g2", Sender: "w01", Incarnation: 1, Seq: 7,
			Elected: false, At: 101, Lease: int64(10e9)},
		&Subscribe{Group: "g3", Sender: "c1", Incarnation: 2, TTL: int64(10e9)},
		&LeaseRenew{Group: "g4", Sender: "c1", Incarnation: 2, TTL: int64(10e9)},
		&Unsubscribe{Group: "g5", Sender: "c1", Incarnation: 2},
	}}
	raw := Marshal(b)
	if len(raw) != b.WireSize() {
		t.Fatalf("batch WireSize %d != marshaled %d", b.WireSize(), len(raw))
	}
	got, err := UnmarshalBatch(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b.Msgs) {
		t.Fatalf("round trip mismatch:\n sent %+v\n got  %+v", b.Msgs, got)
	}
}
