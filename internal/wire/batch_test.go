package wire

import (
	"reflect"
	"testing"
)

// sampleBatch coalesces one message of every protocol kind, the way the
// outbound scheduler does for a peer in many groups.
func sampleBatch() *Batch {
	return &Batch{Msgs: sampleMessages()}
}

func TestBatchRoundTrip(t *testing.T) {
	b := sampleBatch()
	enc := Marshal(b)
	if len(enc) != b.WireSize() {
		t.Fatalf("WireSize = %d, len(Marshal) = %d", b.WireSize(), len(enc))
	}
	got, err := Unmarshal(enc)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(b, got) {
		t.Errorf("batch round trip mismatch:\n sent %+v\n got  %+v", b, got)
	}
	// The flattening entry point returns the inner messages.
	msgs, err := UnmarshalBatch(enc)
	if err != nil {
		t.Fatalf("UnmarshalBatch: %v", err)
	}
	if !reflect.DeepEqual(msgs, b.Msgs) {
		t.Errorf("UnmarshalBatch mismatch:\n want %+v\n got  %+v", b.Msgs, msgs)
	}
}

func TestBatchSingleMessageFastPathIsByteCompatible(t *testing.T) {
	// A datagram carrying one message is emitted bare: the scheduler's fast
	// path must be byte-identical to the pre-batch wire format, so mixed
	// clusters interoperate.
	for _, m := range sampleMessages() {
		enc := Marshal(m)
		msgs, err := UnmarshalBatch(enc)
		if err != nil {
			t.Fatalf("%s: UnmarshalBatch of a bare message: %v", m.Kind(), err)
		}
		if len(msgs) != 1 || !reflect.DeepEqual(msgs[0], m) {
			t.Errorf("%s: bare message did not flatten to itself: %+v", m.Kind(), msgs)
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	b := &Batch{}
	enc := Marshal(b)
	if len(enc) != b.WireSize() {
		t.Fatalf("WireSize = %d, len(Marshal) = %d", b.WireSize(), len(enc))
	}
	got, err := Unmarshal(enc)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if gb := got.(*Batch); len(gb.Msgs) != 0 {
		t.Errorf("empty batch decoded to %d messages", len(gb.Msgs))
	}
}

func TestBatchItemSizeMatchesEnvelopeGrowth(t *testing.T) {
	b := &Batch{}
	prev := b.WireSize()
	for _, m := range sampleMessages() {
		b.Msgs = append(b.Msgs, m)
		if got, want := b.WireSize()-prev, ItemSize(m); got != want {
			t.Errorf("%s: envelope grew by %d, ItemSize = %d", m.Kind(), got, want)
		}
		prev = b.WireSize()
	}
}

func TestBatchRejectsCorruptEnvelopes(t *testing.T) {
	valid := Marshal(sampleBatch())
	cases := map[string][]byte{
		"empty batch header":  {byte(KindBatch)},
		"missing count":       {byte(KindBatch), BatchVersion},
		"future version":      {byte(KindBatch), BatchVersion + 1, 0},
		"zero version":        {byte(KindBatch), 0, 0},
		"count beyond buffer": {byte(KindBatch), BatchVersion, 0xff, 0xff, 0x7f},
		"zero-length inner":   {byte(KindBatch), BatchVersion, 1, 0},
		"truncated inner":     valid[:len(valid)-3],
		"inner length too long": {
			byte(KindBatch), BatchVersion, 1, 40, byte(KindLeave), 1, 'g', 1, 's',
		},
	}
	// A nested batch must be rejected, not recursed into.
	inner := Marshal(&Leave{Group: "g", Sender: "s", Incarnation: 1})
	nested := []byte{byte(KindBatch), BatchVersion, 1, byte(len(inner) + 3),
		byte(KindBatch), BatchVersion, 1, byte(len(inner))}
	nested = append(nested, inner...)
	cases["nested batch"] = nested
	// An inner message with trailing bytes inside its declared length must
	// be rejected: inner framing is strict even though the top level is
	// lenient for compatibility.
	slack := []byte{byte(KindBatch), BatchVersion, 1, byte(len(inner) + 2)}
	slack = append(slack, inner...)
	slack = append(slack, 0, 0)
	cases["inner trailing bytes"] = slack

	for name, enc := range cases {
		if _, err := Unmarshal(enc); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
		if _, err := NewDecoder().Unmarshal(enc); err == nil {
			t.Errorf("%s: Decoder decoded without error", name)
		}
	}
}

// TestDecoderMatchesUnmarshal is the equivalence property between the two
// codec surfaces: whatever Unmarshal produces, the pooled Decoder must
// produce too, including across recycling.
func TestDecoderMatchesUnmarshal(t *testing.T) {
	dec := NewDecoder()
	inputs := [][]byte{Marshal(sampleBatch())}
	for _, m := range sampleMessages() {
		inputs = append(inputs, Marshal(m))
	}
	for round := 0; round < 3; round++ { // later rounds hit the freelists
		for _, enc := range inputs {
			want, err := Unmarshal(enc)
			if err != nil {
				t.Fatal(err)
			}
			got, err := dec.Unmarshal(enc)
			if err != nil {
				t.Fatalf("Decoder.Unmarshal: %v", err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("round %d: decoder mismatch:\n want %+v\n got  %+v", round, want, got)
			}
			dec.Release(got)
		}
	}
}

func TestDecoderDecodeAppendFlattens(t *testing.T) {
	dec := NewDecoder()
	b := sampleBatch()
	enc := Marshal(b)
	var msgs []Message
	for round := 0; round < 3; round++ {
		var err error
		msgs, err = dec.DecodeAppend(msgs[:0], enc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(msgs, b.Msgs) {
			t.Fatalf("round %d: DecodeAppend mismatch: %+v", round, msgs)
		}
		for _, m := range msgs {
			dec.Release(m)
		}
	}
	// Errors leave dst unchanged.
	msgs = msgs[:0]
	msgs, err := dec.DecodeAppend(msgs, []byte{0xff})
	if err == nil || len(msgs) != 0 {
		t.Errorf("DecodeAppend on garbage: msgs=%v err=%v", msgs, err)
	}
}

// TestDecoderRecycledHelloMatchesPlain pins a state-dependent equivalence
// bug: after releasing a member-bearing Hello, the freelist holds a struct
// with a non-nil empty Members slice; decoding a zero-member HELLO through
// it must still yield nil Members, like the allocating path.
func TestDecoderRecycledHelloMatchesPlain(t *testing.T) {
	dec := NewDecoder()
	withMembers := Marshal(&Hello{Group: "g", Sender: "s", Incarnation: 1,
		Members: []MemberInfo{{ID: "m", Incarnation: 2}}})
	m1, err := dec.Unmarshal(withMembers)
	if err != nil {
		t.Fatal(err)
	}
	dec.Release(m1)
	empty := Marshal(&Hello{Group: "g", Sender: "s", Incarnation: 1})
	want, err := Unmarshal(empty)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Unmarshal(empty)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("recycled decode diverged:\n plain  %#v\n pooled %#v", want, got)
	}
}

func TestDecoderInternsStrings(t *testing.T) {
	dec := NewDecoder()
	enc := Marshal(&Leave{Group: "grp", Sender: "proc", Incarnation: 1})
	m1, err := dec.Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	s1 := m1.From()
	dec.Release(m1)
	m2, err := dec.Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	// Interned strings survive Release: the first decode's id must still be
	// valid and share storage with the second's.
	if s1 != "proc" || s1 != m2.From() {
		t.Errorf("interned string corrupted: %q vs %q", s1, m2.From())
	}
}

func TestBatchHeaderDelegation(t *testing.T) {
	b := sampleBatch()
	if b.From() != b.Msgs[0].From() || b.GroupID() != b.Msgs[0].GroupID() {
		t.Error("batch header accessors must delegate to the first message")
	}
	empty := &Batch{}
	if empty.From() != "" || empty.GroupID() != "" {
		t.Error("empty batch must report empty header fields")
	}
	if KindBatch.String() != "BATCH" {
		t.Errorf("KindBatch.String() = %q", KindBatch.String())
	}
}

// TestMarshalAppendReusesBuffer pins the alloc-free marshal contract.
func TestMarshalAppendReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 4096)
	for _, m := range append(sampleMessages(), Message(sampleBatch())) {
		out := MarshalAppend(buf[:0], m)
		if &out[0] != &buf[:1][0] {
			t.Fatalf("%s: MarshalAppend reallocated despite sufficient capacity", m.Kind())
		}
		if !reflect.DeepEqual(out, Marshal(m)) {
			t.Fatalf("%s: MarshalAppend differs from Marshal", m.Kind())
		}
	}
}

func TestMarshalNestedBatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("marshaling a nested batch must panic: the scheduler never builds one")
		}
	}()
	Marshal(&Batch{Msgs: []Message{&Batch{}}})
}
