package wire

// Micro-benchmarks for the codec hot paths. The outbound packet plane
// promises zero allocations per operation on both sides: MarshalAppend
// into a reused buffer and Decoder decode + Release. Run with
//
//	go test -bench=. -benchmem ./internal/wire
//
// and read the allocs/op column; the CI bench smoke job executes every
// benchmark once so a regression that reintroduces allocation (or panics)
// fails fast.

import (
	"testing"

	"stableleader/id"
)

// benchAlive is the hot-path message: the failure detector heartbeat.
func benchAlive() *Alive {
	return &Alive{
		Group: "orders", Sender: "w07", Incarnation: 1710000000000000000,
		Seq: 12345, SendTime: 1710000000000000000, Interval: int64(250e6),
		AccTime:        1709999990000000000,
		HasLocalLeader: true, LocalLeader: "w01", LocalLeaderAcc: 42,
	}
}

// benchBatch is a 16-group coalesced heartbeat datagram: what one peer
// receives per interval once the scheduler merges all group traffic.
func benchBatch() *Batch {
	b := &Batch{}
	for i := 0; i < 16; i++ {
		m := benchAlive()
		m.Group = id.Group("g" + string(rune('a'+i)))
		b.Msgs = append(b.Msgs, m)
	}
	return b
}

func BenchmarkMarshal(b *testing.B) {
	m := benchAlive()
	buf := make([]byte, 0, m.WireSize())
	b.ReportAllocs()
	b.SetBytes(int64(m.WireSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = MarshalAppend(buf[:0], m)
	}
	_ = buf
}

func BenchmarkUnmarshal(b *testing.B) {
	enc := Marshal(benchAlive())
	dec := NewDecoder()
	b.ReportAllocs()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := dec.Unmarshal(enc)
		if err != nil {
			b.Fatal(err)
		}
		dec.Release(m)
	}
}

func BenchmarkBatch(b *testing.B) {
	// Full batched round trip: marshal a 16-message envelope into a reused
	// buffer, decode it back with the pooled Decoder, release everything.
	batch := benchBatch()
	buf := make([]byte, 0, batch.WireSize())
	dec := NewDecoder()
	var msgs []Message
	b.ReportAllocs()
	b.SetBytes(int64(batch.WireSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = MarshalAppend(buf[:0], batch)
		var err error
		msgs, err = dec.DecodeAppend(msgs[:0], buf)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range msgs {
			dec.Release(m)
		}
	}
}

// BenchmarkUnmarshalAlloc is the pre-refactor baseline: the allocating
// Unmarshal, kept for comparison against BenchmarkUnmarshal.
func BenchmarkUnmarshalAlloc(b *testing.B) {
	enc := Marshal(benchAlive())
	b.ReportAllocs()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(enc); err != nil {
			b.Fatal(err)
		}
	}
}
