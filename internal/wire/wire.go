// Package wire defines the protocol messages exchanged by the leader
// election service and a compact binary codec for them.
//
// The same definitions serve two purposes:
//
//   - real transports (UDP, in-process) marshal messages with Marshal and
//     recover them with Unmarshal;
//   - the discrete-event simulator passes message values directly but
//     accounts network traffic byte-exactly through WireSize, which always
//     equals len(Marshal(m)) (a property-based test enforces this).
//
// Six message kinds exist, mirroring the architecture of the paper
// (Figures 1 and 2):
//
//	HELLO   group maintenance gossip (membership table)
//	JOIN    announce group membership (with candidacy flag)
//	LEAVE   announce voluntary departure
//	ALIVE   failure detector heartbeat + election payload
//	ACCUSE  leader accusation (raises the target's accusation time)
//	RATE    QoS feedback: the monitoring side asks the sender to emit
//	        ALIVEs at the interval computed by the FD configurator
//
// A seventh kind, BATCH, is not a protocol message but a transport
// envelope: the outbound packet scheduler coalesces every message bound for
// one peer into a single datagram carrying a Batch. A datagram holding one
// message is emitted bare (today's format), so mixed-version clusters keep
// interoperating on the single-message fast path.
//
// Four further kinds form the client plane — the wire surface non-member
// processes use to consult the election service (the paper's "service"
// reading of leader election):
//
//	SUBSCRIBE        a client asks a service node for leadership snapshots
//	                 of one group under a renewable lease
//	UNSUBSCRIBE      a client withdraws its subscription
//	LEADER_SNAPSHOT  the service's answer: the node's current leader view,
//	                 the granted lease, and a per-group sequence number;
//	                 doubles as the periodic re-advertisement and, with the
//	                 tombstone flag, as the "stop asking me" goodbye
//	LEASE_RENEW      a client extends its lease without provoking an
//	                 immediate snapshot
//
// Three further kinds implement warm-standby leadership and planned
// handover (the proactive-failover plane):
//
//	STANDBY         the leader's piggybacked nomination of its warm
//	                standby, riding the coalesced heartbeat stream
//	HANDOVER        the departing (or deposed) leader's urgent grant of
//	                leadership to the standby, so the group re-elects
//	                instantly instead of waiting out failure detection
//	SUCCESSOR_HINT  the client-plane companion: sent just before a
//	                tombstone so subscribed clients re-pin to the
//	                successor without a stale window
//
// Inside a Batch envelope, message kinds this build does not know are
// skipped (and counted), not treated as corruption: the length prefix makes
// every inner message self-delimiting, so a newer peer can speak a newer
// kind to an older one without poisoning the datagram's remaining traffic.
// Pre-standby peers skip all three kinds above this way.
//
// Two codec surfaces exist: the convenient allocating one (Marshal,
// Unmarshal, UnmarshalBatch) and the alloc-free one for hot paths
// (MarshalAppend into a reused buffer, Decoder with string interning and
// struct recycling via Release).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"stableleader/id"
)

// Kind discriminates the message types on the wire.
type Kind uint8

// Message kinds. Values are part of the wire format and must not change.
const (
	KindHello Kind = iota + 1
	KindJoin
	KindLeave
	KindAlive
	KindAccuse
	KindRate
	KindBatch
	KindSubscribe
	KindUnsubscribe
	KindLeaderSnapshot
	KindLeaseRenew
	KindStandby
	KindHandover
	KindSuccessorHint
)

// knownKind reports whether k names a message this build can decode (the
// Batch envelope excluded: batches never nest). Unknown kinds inside a
// batch are skipped, not errors — forward compatibility for mixed-version
// deployments.
func knownKind(k Kind) bool {
	return k >= KindHello && k <= KindSuccessorHint && k != KindBatch
}

// String returns the conventional upper-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "HELLO"
	case KindJoin:
		return "JOIN"
	case KindLeave:
		return "LEAVE"
	case KindAlive:
		return "ALIVE"
	case KindAccuse:
		return "ACCUSE"
	case KindRate:
		return "RATE"
	case KindBatch:
		return "BATCH"
	case KindSubscribe:
		return "SUBSCRIBE"
	case KindUnsubscribe:
		return "UNSUBSCRIBE"
	case KindLeaderSnapshot:
		return "LEADER_SNAPSHOT"
	case KindLeaseRenew:
		return "LEASE_RENEW"
	case KindStandby:
		return "STANDBY"
	case KindHandover:
		return "HANDOVER"
	case KindSuccessorHint:
		return "SUCCESSOR_HINT"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// UDPOverhead is the per-datagram header cost (8 bytes UDP + 20 bytes IPv4)
// added to WireSize when accounting network bandwidth, matching how the
// paper's KB/s figures count traffic on the wire.
const UDPOverhead = 28

// ErrTruncated reports a message that ended before all fields were read.
var ErrTruncated = errors.New("wire: truncated message")

// ErrUnknownKind reports an unrecognized kind byte.
var ErrUnknownKind = errors.New("wire: unknown message kind")

// ErrBadBatch reports a malformed batch envelope: an unsupported version,
// a nested batch, or an inner message whose length prefix disagrees with
// its encoding.
var ErrBadBatch = errors.New("wire: malformed batch")

// Message is implemented by every protocol message.
type Message interface {
	// Kind identifies the concrete type.
	Kind() Kind
	// From is the sending process.
	From() id.Process
	// GroupID is the group the message belongs to.
	GroupID() id.Group
	// WireSize is the exact marshaled length in bytes (headers excluded).
	WireSize() int
}

// MemberInfo is one row of the membership table gossiped in HELLO messages.
type MemberInfo struct {
	ID          id.Process
	Incarnation int64
	Candidate   bool
	Left        bool
}

// Hello carries the sender's full membership table for one group.
type Hello struct {
	Group       id.Group
	Sender      id.Process
	Incarnation int64
	Members     []MemberInfo
}

// Join announces that Sender (at Incarnation) joined Group.
type Join struct {
	Group       id.Group
	Sender      id.Process
	Incarnation int64
	Candidate   bool
}

// Leave announces that Sender (at Incarnation) voluntarily left Group.
type Leave struct {
	Group       id.Group
	Sender      id.Process
	Incarnation int64
}

// Alive is the failure-detector heartbeat. It doubles as the election
// payload: accusation time and phase for the Omega-l and Omega-lc
// algorithms, and the sender's local leader for Omega-lc's forwarding stage.
type Alive struct {
	Group       id.Group
	Sender      id.Process
	Incarnation int64
	// Seq numbers heartbeats per (sender, destination, group) stream so the
	// receiver's link estimator can count losses from gaps.
	Seq uint64
	// SendTime is the sender's clock (ns) when the heartbeat was emitted;
	// the receiver derives the NFD-S freshness deadline SendTime+Interval+delta.
	SendTime int64
	// Interval is the sender's current heartbeat interval (ns) toward this
	// destination, so the receiver can time out correctly across rate changes.
	Interval int64
	// AccTime is the sender's accusation time (ns); zero under Omega-id.
	AccTime int64
	// Phase is the sender's competition phase (Omega-l only).
	Phase uint32
	// HasLocalLeader marks the forwarding fields as meaningful (Omega-lc).
	HasLocalLeader bool
	// LocalLeader is the sender's stage-one (local) leader.
	LocalLeader id.Process
	// LocalLeaderAcc is the accusation time the sender knows for LocalLeader.
	LocalLeaderAcc int64
}

// Accuse tells the destination that the sender suspected it and demoted it.
// A valid accusation raises the target's accusation time, preventing a
// demoted leader from flapping back.
type Accuse struct {
	Group       id.Group
	Sender      id.Process
	Incarnation int64
	// TargetIncarnation must match the target's current incarnation.
	TargetIncarnation int64
	// Phase must match the target's current competition phase (Omega-l);
	// accusations provoked by voluntary silence carry a stale phase and are
	// ignored, implementing the paper's stability mechanism.
	Phase uint32
	// At is the accuser's clock when the suspicion fired.
	At int64
}

// Rate asks the destination to send ALIVEs to the sender every Interval
// nanoseconds, as computed by the sender's FD configurator for the link.
type Rate struct {
	Group       id.Group
	Sender      id.Process
	Incarnation int64
	Interval    int64
}

// Subscribe asks the destination service node to register Sender (at
// Incarnation — the client's lifetime, so a restarted client supersedes its
// stale registration) for leadership snapshots of Group under a lease. The
// node answers immediately with a LeaderSnapshot carrying the granted
// lease, then keeps the client fresh with change-driven and periodic
// snapshots until the lease expires unrenewed.
type Subscribe struct {
	Group       id.Group
	Sender      id.Process
	Incarnation int64
	// TTL is the requested lease duration in nanoseconds. The service
	// clamps it to its configured bounds; the granted value rides back in
	// the snapshot's Lease field.
	TTL int64
}

// Unsubscribe withdraws Sender's subscription to Group. Incarnation must
// match the registered lifetime: a stale unsubscribe from before a client
// restart must not tear down the successor's lease.
type Unsubscribe struct {
	Group       id.Group
	Sender      id.Process
	Incarnation int64
}

// LeaderSnapshot is the service's client-bound answer: one node's current
// leadership view of Group. It is sent on subscription, on every local
// leader change, periodically as re-advertisement (so a lost change
// snapshot heals within the lease), and with Tombstone set when the node
// stops serving the group (graceful leave or shutdown) — the signal for
// clients to fail over to another endpoint.
type LeaderSnapshot struct {
	Group       id.Group
	Sender      id.Process // the service node answering
	Incarnation int64      // the service node's incarnation
	// Seq orders snapshots per (node incarnation, group): a reordered UDP
	// datagram carrying an older view must not overwrite a newer one.
	Seq uint64
	// Elected reports whether the node currently knows a leader; Leader
	// and LeaderIncarnation are meaningful only when it is set.
	Elected           bool
	Leader            id.Process
	LeaderIncarnation int64
	// Tombstone marks a final snapshot: the node no longer serves the
	// group. Elected/Leader are the node's last view, kept so clients can
	// serve it as a stale hint while failing over.
	Tombstone bool
	// At is the service node's clock (ns) when this view was adopted.
	At int64
	// Lease is the granted lease duration in nanoseconds: how long the
	// client may serve this view from cache before it must be considered
	// stale. Zero on tombstones.
	Lease int64
}

// LeaseRenew extends Sender's existing subscription lease on Group without
// provoking an immediate snapshot — the cheap steady-state keepalive.
// A renew for an unknown (expired, superseded) registration is answered
// like a fresh Subscribe, so a client that raced an expiry heals itself.
type LeaseRenew struct {
	Group       id.Group
	Sender      id.Process
	Incarnation int64
	TTL         int64
}

// Standby is the leader's nomination of a warm standby for Group: the
// member it considers the best-placed successor should it depart. It rides
// the coalescing envelope alongside the leader's heartbeats (zero extra
// steady-state datagrams) and is re-announced on change and to newcomers.
// Followers track the nomination but act on it only through a HANDOVER —
// a stale or spoofed nomination cannot move leadership by itself.
type Standby struct {
	Group       id.Group
	Sender      id.Process // the nominating leader
	Incarnation int64
	// Seq orders nominations per (sender incarnation, group): a reordered
	// datagram carrying an older nomination must not overwrite a newer one.
	Seq uint64
	// Standby names the nominated member (empty withdraws the nomination);
	// StandbyInc is the nominee's incarnation.
	Standby    id.Process
	StandbyInc int64
}

// Handover is the planned-handover grant: the departing (graceful leave,
// shutdown) or deposed leader urgently transfers leadership to Successor.
// GrantAcc is the accusation time granted to the successor — strictly
// smaller than every live member's, so the successor wins the (accusation
// time, id) order immediately under Omega-l/Omega-lc. Receivers honour a
// HANDOVER only from their current leader at a matching incarnation: a
// duplicated, reordered or forged grant cannot move leadership.
type Handover struct {
	Group        id.Group
	Sender       id.Process // the granting leader
	Incarnation  int64
	Successor    id.Process
	SuccessorInc int64
	GrantAcc     int64
	// At is the grantor's clock (ns) when the handover was decided.
	At int64
}

// SuccessorHint is the client-plane half of a planned handover: sent to
// each subscriber immediately before the tombstone snapshot, it names the
// member about to assume leadership so clients re-pin to it without a
// stale window. Seq shares the LeaderSnapshot stream's ordering; Lease
// bounds how long the hinted view may be served before the successor's own
// snapshot must take over.
type SuccessorHint struct {
	Group        id.Group
	Sender       id.Process // the service node saying goodbye
	Incarnation  int64
	Seq          uint64
	Successor    id.Process
	SuccessorInc int64
	// At is the service node's clock (ns) when the handover was decided.
	At int64
	// Lease is how long (ns) the hinted view may be served as fresh.
	Lease int64
}

// BatchVersion is the envelope version emitted by this build. Decoders
// reject datagrams with a higher version rather than misparse them.
const BatchVersion = 1

// Batch is the coalescing envelope: one datagram carrying several protocol
// messages bound for the same peer, possibly spanning groups. Its layout is
//
//	kind (KindBatch) | version | count uvarint | (len uvarint | message)*
//
// Batches never nest. All messages in a batch come from one sender, so
// From and GroupID delegate to the first message; per-message headers stay
// authoritative for dispatch.
type Batch struct {
	Msgs []Message
}

// Interface conformance checks.
var (
	_ Message = (*Hello)(nil)
	_ Message = (*Join)(nil)
	_ Message = (*Leave)(nil)
	_ Message = (*Alive)(nil)
	_ Message = (*Accuse)(nil)
	_ Message = (*Rate)(nil)
	_ Message = (*Batch)(nil)
	_ Message = (*Subscribe)(nil)
	_ Message = (*Unsubscribe)(nil)
	_ Message = (*LeaderSnapshot)(nil)
	_ Message = (*LeaseRenew)(nil)
	_ Message = (*Standby)(nil)
	_ Message = (*Handover)(nil)
	_ Message = (*SuccessorHint)(nil)
)

// Kind implements Message.
func (*Hello) Kind() Kind { return KindHello }

// Kind implements Message.
func (*Join) Kind() Kind { return KindJoin }

// Kind implements Message.
func (*Leave) Kind() Kind { return KindLeave }

// Kind implements Message.
func (*Alive) Kind() Kind { return KindAlive }

// Kind implements Message.
func (*Accuse) Kind() Kind { return KindAccuse }

// Kind implements Message.
func (*Rate) Kind() Kind { return KindRate }

// Kind implements Message.
func (*Batch) Kind() Kind { return KindBatch }

// Kind implements Message.
func (*Subscribe) Kind() Kind { return KindSubscribe }

// Kind implements Message.
func (*Unsubscribe) Kind() Kind { return KindUnsubscribe }

// Kind implements Message.
func (*LeaderSnapshot) Kind() Kind { return KindLeaderSnapshot }

// Kind implements Message.
func (*LeaseRenew) Kind() Kind { return KindLeaseRenew }

// Kind implements Message.
func (*Standby) Kind() Kind { return KindStandby }

// Kind implements Message.
func (*Handover) Kind() Kind { return KindHandover }

// Kind implements Message.
func (*SuccessorHint) Kind() Kind { return KindSuccessorHint }

// From implements Message.
func (m *Hello) From() id.Process { return m.Sender }

// From implements Message.
func (m *Join) From() id.Process { return m.Sender }

// From implements Message.
func (m *Leave) From() id.Process { return m.Sender }

// From implements Message.
func (m *Alive) From() id.Process { return m.Sender }

// From implements Message.
func (m *Accuse) From() id.Process { return m.Sender }

// From implements Message.
func (m *Rate) From() id.Process { return m.Sender }

// From implements Message.
func (m *Subscribe) From() id.Process { return m.Sender }

// From implements Message.
func (m *Unsubscribe) From() id.Process { return m.Sender }

// From implements Message.
func (m *LeaderSnapshot) From() id.Process { return m.Sender }

// From implements Message.
func (m *LeaseRenew) From() id.Process { return m.Sender }

// From implements Message.
func (m *Standby) From() id.Process { return m.Sender }

// From implements Message.
func (m *Handover) From() id.Process { return m.Sender }

// From implements Message.
func (m *SuccessorHint) From() id.Process { return m.Sender }

// From implements Message: the first inner message's sender.
func (m *Batch) From() id.Process {
	if len(m.Msgs) == 0 {
		return ""
	}
	return m.Msgs[0].From()
}

// GroupID implements Message.
func (m *Hello) GroupID() id.Group { return m.Group }

// GroupID implements Message.
func (m *Join) GroupID() id.Group { return m.Group }

// GroupID implements Message.
func (m *Leave) GroupID() id.Group { return m.Group }

// GroupID implements Message.
func (m *Alive) GroupID() id.Group { return m.Group }

// GroupID implements Message.
func (m *Accuse) GroupID() id.Group { return m.Group }

// GroupID implements Message.
func (m *Rate) GroupID() id.Group { return m.Group }

// GroupID implements Message.
func (m *Subscribe) GroupID() id.Group { return m.Group }

// GroupID implements Message.
func (m *Unsubscribe) GroupID() id.Group { return m.Group }

// GroupID implements Message.
func (m *LeaderSnapshot) GroupID() id.Group { return m.Group }

// GroupID implements Message.
func (m *LeaseRenew) GroupID() id.Group { return m.Group }

// GroupID implements Message.
func (m *Standby) GroupID() id.Group { return m.Group }

// GroupID implements Message.
func (m *Handover) GroupID() id.Group { return m.Group }

// GroupID implements Message.
func (m *SuccessorHint) GroupID() id.Group { return m.Group }

// GroupID implements Message: the first inner message's group. A batch may
// span groups; dispatch reads each inner message's own header.
func (m *Batch) GroupID() id.Group {
	if len(m.Msgs) == 0 {
		return ""
	}
	return m.Msgs[0].GroupID()
}

// strSize is the encoded size of a length-prefixed string.
func strSize(s string) int { return uvarintLen(uint64(len(s))) + len(s) }

// uvarintLen is the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// headerSize is the encoded size of the fields common to all messages.
func headerSize(g id.Group, s id.Process) int {
	return 1 + strSize(string(g)) + strSize(string(s)) + 8
}

// WireSize implements Message.
func (m *Hello) WireSize() int {
	n := headerSize(m.Group, m.Sender) + uvarintLen(uint64(len(m.Members)))
	for _, mb := range m.Members {
		n += strSize(string(mb.ID)) + 8 + 1
	}
	return n
}

// WireSize implements Message.
func (m *Join) WireSize() int { return headerSize(m.Group, m.Sender) + 1 }

// WireSize implements Message.
func (m *Leave) WireSize() int { return headerSize(m.Group, m.Sender) }

// WireSize implements Message.
func (m *Alive) WireSize() int {
	n := headerSize(m.Group, m.Sender) + uvarintLen(m.Seq) + 8 + 8 + 8 + 4 + 1
	if m.HasLocalLeader {
		n += strSize(string(m.LocalLeader)) + 8
	}
	return n
}

// WireSize implements Message.
func (m *Accuse) WireSize() int { return headerSize(m.Group, m.Sender) + 8 + 4 + 8 }

// WireSize implements Message.
func (m *Rate) WireSize() int { return headerSize(m.Group, m.Sender) + 8 }

// WireSize implements Message.
func (m *Subscribe) WireSize() int { return headerSize(m.Group, m.Sender) + 8 }

// WireSize implements Message.
func (m *Unsubscribe) WireSize() int { return headerSize(m.Group, m.Sender) }

// WireSize implements Message.
func (m *LeaderSnapshot) WireSize() int {
	return headerSize(m.Group, m.Sender) + uvarintLen(m.Seq) + 1 +
		strSize(string(m.Leader)) + 8 + 8 + 8
}

// WireSize implements Message.
func (m *LeaseRenew) WireSize() int { return headerSize(m.Group, m.Sender) + 8 }

// WireSize implements Message.
func (m *Standby) WireSize() int {
	return headerSize(m.Group, m.Sender) + uvarintLen(m.Seq) +
		strSize(string(m.Standby)) + 8
}

// WireSize implements Message.
func (m *Handover) WireSize() int {
	return headerSize(m.Group, m.Sender) + strSize(string(m.Successor)) + 8 + 8 + 8
}

// WireSize implements Message.
func (m *SuccessorHint) WireSize() int {
	return headerSize(m.Group, m.Sender) + uvarintLen(m.Seq) +
		strSize(string(m.Successor)) + 8 + 8 + 8
}

// WireSize implements Message.
func (m *Batch) WireSize() int {
	n := 2 + uvarintLen(uint64(len(m.Msgs))) // kind + version + count
	for _, inner := range m.Msgs {
		sz := inner.WireSize()
		n += uvarintLen(uint64(sz)) + sz
	}
	return n
}

// ItemSize is the number of bytes a message occupies inside a batch
// envelope: its length prefix plus its encoding. The outbound scheduler
// uses it to enforce the datagram size threshold incrementally.
func ItemSize(m Message) int {
	sz := m.WireSize()
	return uvarintLen(uint64(sz)) + sz
}

// BatchOverhead is the fixed envelope cost of a small batch (kind byte,
// version byte, one-byte count): what coalescing adds on top of the
// back-to-back messages themselves.
const BatchOverhead = 3

// writer appends big-endian fields to a byte slice.
type writer struct{ b []byte }

func (w *writer) kind(k Kind)  { w.b = append(w.b, byte(k)) }
func (w *writer) u8(v byte)    { w.b = append(w.b, v) }
func (w *writer) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *writer) i64(v int64)  { w.b = binary.BigEndian.AppendUint64(w.b, uint64(v)) }
func (w *writer) uvarint(v uint64) {
	w.b = binary.AppendUvarint(w.b, v)
}
func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}
func (w *writer) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

// reader consumes big-endian fields from a byte slice, latching the first
// error so call sites stay linear. A non-nil d makes string decoding intern
// through the Decoder and message construction draw from its freelists.
type reader struct {
	b   []byte
	off int
	err error
	d   *Decoder
	// unknown counts inner batch messages skipped for carrying a kind this
	// build does not know — forward traffic, not corruption.
	unknown int
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

func (r *reader) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) i64() int64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return int64(v)
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail()
		return ""
	}
	raw := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	if r.d != nil {
		return r.d.intern(raw)
	}
	return string(raw)
}

func (r *reader) boolean() bool { return r.u8() != 0 }

// Marshal encodes m into a fresh byte slice.
func Marshal(m Message) []byte {
	return MarshalAppend(make([]byte, 0, m.WireSize()), m)
}

// MarshalAppend encodes m at the end of dst and returns the extended slice.
// Reusing dst across calls makes the send hot path allocation-free.
func MarshalAppend(dst []byte, m Message) []byte {
	if t, ok := m.(*Batch); ok {
		w := writer{b: dst}
		w.kind(KindBatch)
		w.u8(BatchVersion)
		w.uvarint(uint64(len(t.Msgs)))
		for _, inner := range t.Msgs {
			if inner.Kind() == KindBatch {
				panic("wire: Marshal of a nested Batch")
			}
			w.uvarint(uint64(inner.WireSize()))
			w.b = MarshalAppend(w.b, inner)
		}
		return w.b
	}
	w := writer{b: dst}
	w.kind(m.Kind())
	w.str(string(m.GroupID()))
	w.str(string(m.From()))
	switch t := m.(type) {
	case *Hello:
		w.i64(t.Incarnation)
		w.uvarint(uint64(len(t.Members)))
		for _, mb := range t.Members {
			w.str(string(mb.ID))
			w.i64(mb.Incarnation)
			var flags byte
			if mb.Candidate {
				flags |= 1
			}
			if mb.Left {
				flags |= 2
			}
			w.u8(flags)
		}
	case *Join:
		w.i64(t.Incarnation)
		w.boolean(t.Candidate)
	case *Leave:
		w.i64(t.Incarnation)
	case *Alive:
		w.i64(t.Incarnation)
		w.uvarint(t.Seq)
		w.i64(t.SendTime)
		w.i64(t.Interval)
		w.i64(t.AccTime)
		w.u32(t.Phase)
		w.boolean(t.HasLocalLeader)
		if t.HasLocalLeader {
			w.str(string(t.LocalLeader))
			w.i64(t.LocalLeaderAcc)
		}
	case *Accuse:
		w.i64(t.Incarnation)
		w.i64(t.TargetIncarnation)
		w.u32(t.Phase)
		w.i64(t.At)
	case *Rate:
		w.i64(t.Incarnation)
		w.i64(t.Interval)
	case *Subscribe:
		w.i64(t.Incarnation)
		w.i64(t.TTL)
	case *Unsubscribe:
		w.i64(t.Incarnation)
	case *LeaderSnapshot:
		w.i64(t.Incarnation)
		w.uvarint(t.Seq)
		var flags byte
		if t.Elected {
			flags |= 1
		}
		if t.Tombstone {
			flags |= 2
		}
		w.u8(flags)
		w.str(string(t.Leader))
		w.i64(t.LeaderIncarnation)
		w.i64(t.At)
		w.i64(t.Lease)
	case *LeaseRenew:
		w.i64(t.Incarnation)
		w.i64(t.TTL)
	case *Standby:
		w.i64(t.Incarnation)
		w.uvarint(t.Seq)
		w.str(string(t.Standby))
		w.i64(t.StandbyInc)
	case *Handover:
		w.i64(t.Incarnation)
		w.str(string(t.Successor))
		w.i64(t.SuccessorInc)
		w.i64(t.GrantAcc)
		w.i64(t.At)
	case *SuccessorHint:
		w.i64(t.Incarnation)
		w.uvarint(t.Seq)
		w.str(string(t.Successor))
		w.i64(t.SuccessorInc)
		w.i64(t.At)
		w.i64(t.Lease)
	default:
		panic(fmt.Sprintf("wire: Marshal of unknown type %T", m))
	}
	return w.b
}

// Unmarshal decodes one datagram from b: either a single message or a
// Batch envelope (returned as a *Batch).
func Unmarshal(b []byte) (Message, error) {
	r := reader{b: b}
	return unmarshalDatagram(&r)
}

// UnmarshalBatch decodes one datagram and flattens it: a Batch envelope
// yields its inner messages, a bare message yields a one-element slice.
// This is the receive-side entry point hosts use, tolerant of both wire
// formats (the single-message fast path is byte-identical to the pre-batch
// protocol). Inner messages with unknown kinds are silently skipped; use a
// Decoder (TakeUnknown) when the skip count matters.
func UnmarshalBatch(b []byte) ([]Message, error) {
	m, err := Unmarshal(b)
	if err != nil {
		return nil, err
	}
	if t, ok := m.(*Batch); ok {
		return t.Msgs, nil
	}
	return []Message{m}, nil
}

// unmarshalDatagram dispatches on the first byte: batch envelope or single
// message.
func unmarshalDatagram(r *reader) (Message, error) {
	if r.off < len(r.b) && Kind(r.b[r.off]) == KindBatch {
		return unmarshalBatchEnvelope(r)
	}
	return unmarshalOne(r)
}

// unmarshalBatchEnvelope decodes a Batch. Inner messages must not nest
// batches and must consume exactly their declared length.
func unmarshalBatchEnvelope(r *reader) (Message, error) {
	r.u8() // kind, already known to be KindBatch
	version := r.u8()
	if r.err != nil {
		return nil, r.err
	}
	if version == 0 || version > BatchVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadBatch, version)
	}
	count := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if count > uint64(len(r.b)-r.off) {
		// Every inner message costs at least one length byte; a count
		// larger than the remaining payload is certainly corrupt. Reject
		// before allocating.
		return nil, fmt.Errorf("%w: count %d exceeds payload", ErrBadBatch, count)
	}
	t := r.newBatch(int(count))
	for i := uint64(0); i < count; i++ {
		l := r.uvarint()
		if r.err != nil {
			return nil, r.err
		}
		if l == 0 {
			return nil, fmt.Errorf("%w: empty inner message", ErrBadBatch)
		}
		if l > uint64(len(r.b)-r.off) {
			return nil, ErrTruncated
		}
		end := r.off + int(l)
		if Kind(r.b[r.off]) == KindBatch {
			return nil, fmt.Errorf("%w: nested batch", ErrBadBatch)
		}
		if !knownKind(Kind(r.b[r.off])) {
			// A kind from a newer protocol version: the length prefix
			// delimits it, so skip exactly its bytes and keep decoding the
			// rest of the datagram. Hosts surface the count as
			// PacketStats.UnknownDropped.
			r.off = end
			r.unknown++
			continue
		}
		inner := reader{b: r.b[:end], off: r.off, d: r.d}
		m, err := unmarshalOne(&inner)
		if err != nil {
			return nil, err
		}
		if inner.off != end {
			return nil, fmt.Errorf("%w: inner message shorter than its length prefix", ErrBadBatch)
		}
		r.off = end
		t.Msgs = append(t.Msgs, m)
	}
	if len(t.Msgs) == 0 {
		// Canonical empty form, identical across the allocating and pooled
		// decoders (a recycled batch would otherwise carry a non-nil slice).
		t.Msgs = nil
	}
	return t, nil
}

// unmarshalOne decodes a single non-batch message.
func unmarshalOne(r *reader) (Message, error) {
	kind := Kind(r.u8())
	group := id.Group(r.str())
	sender := id.Process(r.str())
	var m Message
	switch kind {
	case KindHello:
		t := r.newHello()
		t.Group, t.Sender, t.Incarnation = group, sender, r.i64()
		n := r.uvarint()
		if r.err == nil && n > uint64(len(r.b)) {
			// A member row occupies at least two bytes; a count larger than
			// the buffer is certainly corrupt. Reject before allocating.
			return nil, ErrTruncated
		}
		for i := uint64(0); i < n && r.err == nil; i++ {
			mb := MemberInfo{ID: id.Process(r.str()), Incarnation: r.i64()}
			flags := r.u8()
			mb.Candidate = flags&1 != 0
			mb.Left = flags&2 != 0
			t.Members = append(t.Members, mb)
		}
		if len(t.Members) == 0 {
			// Canonical empty form: a recycled struct carries a non-nil
			// zero-length slice, which must not be observable (the pooled
			// and allocating decoders agree bit for bit).
			t.Members = nil
		}
		m = t
	case KindJoin:
		t := r.newJoin()
		t.Group, t.Sender, t.Incarnation, t.Candidate = group, sender, r.i64(), r.boolean()
		m = t
	case KindLeave:
		t := r.newLeave()
		t.Group, t.Sender, t.Incarnation = group, sender, r.i64()
		m = t
	case KindAlive:
		t := r.newAlive()
		t.Group, t.Sender, t.Incarnation = group, sender, r.i64()
		t.Seq = r.uvarint()
		t.SendTime = r.i64()
		t.Interval = r.i64()
		t.AccTime = r.i64()
		t.Phase = r.u32()
		t.HasLocalLeader = r.boolean()
		if t.HasLocalLeader {
			t.LocalLeader = id.Process(r.str())
			t.LocalLeaderAcc = r.i64()
		}
		m = t
	case KindAccuse:
		t := r.newAccuse()
		t.Group, t.Sender = group, sender
		t.Incarnation = r.i64()
		t.TargetIncarnation = r.i64()
		t.Phase = r.u32()
		t.At = r.i64()
		m = t
	case KindRate:
		t := r.newRate()
		t.Group, t.Sender, t.Incarnation, t.Interval = group, sender, r.i64(), r.i64()
		m = t
	case KindSubscribe:
		t := r.newSubscribe()
		t.Group, t.Sender, t.Incarnation, t.TTL = group, sender, r.i64(), r.i64()
		m = t
	case KindUnsubscribe:
		t := r.newUnsubscribe()
		t.Group, t.Sender, t.Incarnation = group, sender, r.i64()
		m = t
	case KindLeaderSnapshot:
		t := r.newLeaderSnapshot()
		t.Group, t.Sender, t.Incarnation = group, sender, r.i64()
		t.Seq = r.uvarint()
		flags := r.u8()
		t.Elected = flags&1 != 0
		t.Tombstone = flags&2 != 0
		t.Leader = id.Process(r.str())
		t.LeaderIncarnation = r.i64()
		t.At = r.i64()
		t.Lease = r.i64()
		m = t
	case KindLeaseRenew:
		t := r.newLeaseRenew()
		t.Group, t.Sender, t.Incarnation, t.TTL = group, sender, r.i64(), r.i64()
		m = t
	case KindStandby:
		t := r.newStandby()
		t.Group, t.Sender, t.Incarnation = group, sender, r.i64()
		t.Seq = r.uvarint()
		t.Standby = id.Process(r.str())
		t.StandbyInc = r.i64()
		m = t
	case KindHandover:
		t := r.newHandover()
		t.Group, t.Sender, t.Incarnation = group, sender, r.i64()
		t.Successor = id.Process(r.str())
		t.SuccessorInc = r.i64()
		t.GrantAcc = r.i64()
		t.At = r.i64()
		m = t
	case KindSuccessorHint:
		t := r.newSuccessorHint()
		t.Group, t.Sender, t.Incarnation = group, sender, r.i64()
		t.Seq = r.uvarint()
		t.Successor = id.Process(r.str())
		t.SuccessorInc = r.i64()
		t.At = r.i64()
		t.Lease = r.i64()
		m = t
	default:
		if r.err != nil {
			return nil, r.err
		}
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, uint8(kind))
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}

// Allocation hooks: fresh structs without a Decoder, recycled ones with.

func (r *reader) newHello() *Hello {
	if r.d != nil {
		return r.d.getHello()
	}
	return &Hello{}
}

func (r *reader) newJoin() *Join {
	if r.d != nil {
		return r.d.getJoin()
	}
	return &Join{}
}

func (r *reader) newLeave() *Leave {
	if r.d != nil {
		return r.d.getLeave()
	}
	return &Leave{}
}

func (r *reader) newAlive() *Alive {
	if r.d != nil {
		return r.d.getAlive()
	}
	return &Alive{}
}

func (r *reader) newAccuse() *Accuse {
	if r.d != nil {
		return r.d.getAccuse()
	}
	return &Accuse{}
}

func (r *reader) newRate() *Rate {
	if r.d != nil {
		return r.d.getRate()
	}
	return &Rate{}
}

func (r *reader) newSubscribe() *Subscribe {
	if r.d != nil {
		return r.d.getSubscribe()
	}
	return &Subscribe{}
}

func (r *reader) newUnsubscribe() *Unsubscribe {
	if r.d != nil {
		return r.d.getUnsubscribe()
	}
	return &Unsubscribe{}
}

func (r *reader) newLeaderSnapshot() *LeaderSnapshot {
	if r.d != nil {
		return r.d.getLeaderSnapshot()
	}
	return &LeaderSnapshot{}
}

func (r *reader) newLeaseRenew() *LeaseRenew {
	if r.d != nil {
		return r.d.getLeaseRenew()
	}
	return &LeaseRenew{}
}

func (r *reader) newStandby() *Standby {
	if r.d != nil {
		return r.d.getStandby()
	}
	return &Standby{}
}

func (r *reader) newHandover() *Handover {
	if r.d != nil {
		return r.d.getHandover()
	}
	return &Handover{}
}

func (r *reader) newSuccessorHint() *SuccessorHint {
	if r.d != nil {
		return r.d.getSuccessorHint()
	}
	return &SuccessorHint{}
}

func (r *reader) newBatch(capacity int) *Batch {
	if r.d != nil {
		if n := len(r.d.batches); n > 0 {
			t := r.d.batches[n-1]
			r.d.batches = r.d.batches[:n-1]
			return t
		}
		return &Batch{}
	}
	return &Batch{Msgs: make([]Message, 0, capacity)}
}
