package wire

import "sync"

// Send-side message pooling.
//
// The receive side recycles message structs through the Decoder's
// freelists; the send side needs the mirror for exactly one kind:
// LeaderSnapshot, the client-plane fan-out payload. A leader-change edge
// under 10k subscribers builds 10k snapshot structs in one burst, and
// before pooling that burst dominated the fan-out's allocation profile
// (BenchmarkFanout: 1001 allocs per 1000-subscriber publication).
//
// The contract mirrors the outbound ownership chain: the producer (the
// subscriber registry) obtains a struct from GetLeaderSnapshot, hands it
// to the node's send path, and never touches it again; the host that
// consumes the message — the real-time service, which marshals it into a
// datagram and drops it — returns it through ReleaseOutbound after the
// bytes are on the wire. Hosts that retain messages past Send (the
// simulator's in-flight virtual datagrams, test harnesses that inspect
// traffic) simply never call ReleaseOutbound: the pool misses and the
// producer allocates, which is correct, just not free.
var snapshotPool = sync.Pool{New: func() any { return new(LeaderSnapshot) }}

// GetLeaderSnapshot returns a zeroed LeaderSnapshot, recycled when the
// consuming host releases them through ReleaseOutbound.
//
//leadervet:acquires
func GetLeaderSnapshot() *LeaderSnapshot {
	return snapshotPool.Get().(*LeaderSnapshot)
}

// ReleaseOutbound recycles the pool-managed messages inside one emitted
// datagram: a bare LeaderSnapshot, or the LeaderSnapshots carried by a
// Batch envelope. Every other kind is left to the garbage collector — the
// protocol core builds those rarely and may share slices (HELLO member
// rows) that must not be recycled out from under a retainer. The caller
// must own m outright (the outbound scheduler transfers ownership at
// Emit) and must not touch it after the call.
//
//leadervet:releases m
func ReleaseOutbound(m Message) {
	switch t := m.(type) {
	case *LeaderSnapshot:
		*t = LeaderSnapshot{}
		snapshotPool.Put(t)
	case *Batch:
		for i, inner := range t.Msgs {
			if s, ok := inner.(*LeaderSnapshot); ok {
				*s = LeaderSnapshot{}
				snapshotPool.Put(s)
				t.Msgs[i] = nil
			}
		}
	}
}
