package wire

import (
	"testing"
)

// FuzzUnmarshal guards the decoder against hostile datagrams: whatever
// arrives on the UDP socket, Unmarshal must either return an error or a
// message that re-encodes consistently — and never panic or over-allocate.
// Run with `go test -fuzz=FuzzUnmarshal ./internal/wire` for a real fuzzing
// session; the seed corpus below runs as part of the normal test suite.
func FuzzUnmarshal(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(Marshal(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Add([]byte{byte(KindHello), 0x01, 'g', 0x01, 's', 0, 0, 0, 0, 0, 0, 0, 0, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		// A successfully decoded message must round-trip through the codec.
		b := Marshal(m)
		if len(b) != m.WireSize() {
			t.Fatalf("WireSize %d != marshaled length %d for %+v", m.WireSize(), len(b), m)
		}
		m2, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.Kind() != m.Kind() || m2.From() != m.From() || m2.GroupID() != m.GroupID() {
			t.Fatalf("round trip changed identity: %+v vs %+v", m, m2)
		}
	})
}
