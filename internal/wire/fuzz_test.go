package wire

import (
	"reflect"
	"testing"
)

// FuzzUnmarshal guards the decoder against hostile datagrams: whatever
// arrives on the UDP socket, Unmarshal must either return an error or a
// message that re-encodes consistently — and never panic or over-allocate.
// Run with `go test -fuzz=FuzzUnmarshal ./internal/wire` for a real fuzzing
// session; the seed corpus below runs as part of the normal test suite.
func FuzzUnmarshal(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(Marshal(m))
	}
	// Batch envelopes: a full multi-kind batch, a two-heartbeat batch, and
	// corrupt headers (truncated count, nested batch, lying length prefix).
	full := Marshal(sampleBatch())
	f.Add(full)
	f.Add(Marshal(&Batch{Msgs: []Message{
		&Alive{Group: "g1", Sender: "s", Incarnation: 1, Seq: 9},
		&Alive{Group: "g2", Sender: "s", Incarnation: 1, Seq: 9},
	}}))
	f.Add(full[:len(full)-2])
	// Client-plane traffic: a snapshot fan-out batch, and envelopes mixing
	// known messages with future kinds (skipped, not errors).
	f.Add(Marshal(&Batch{Msgs: []Message{
		&LeaderSnapshot{Group: "g1", Sender: "w01", Incarnation: 1, Seq: 4,
			Elected: true, Leader: "w02", LeaderIncarnation: 5, At: 100, Lease: int64(10e9)},
		&Subscribe{Group: "g2", Sender: "c1", Incarnation: 2, TTL: int64(10e9)},
		&LeaseRenew{Group: "g3", Sender: "c1", Incarnation: 2, TTL: int64(10e9)},
		&Unsubscribe{Group: "g4", Sender: "c1", Incarnation: 2},
	}}))
	// Warm-standby plane: a heartbeat batch carrying the piggybacked
	// STANDBY nomination, a planned-handover batch, and the client-plane
	// hint-before-tombstone goodbye pair.
	f.Add(Marshal(&Batch{Msgs: []Message{
		&Alive{Group: "g", Sender: "w01", Incarnation: 1, Seq: 12, AccTime: 7},
		&Standby{Group: "g", Sender: "w01", Incarnation: 1, Seq: 3, Standby: "w02", StandbyInc: 5},
	}}))
	f.Add(Marshal(&Handover{Group: "g", Sender: "w01", Incarnation: 1,
		Successor: "w02", SuccessorInc: 5, GrantAcc: 6, At: 100}))
	f.Add(Marshal(&Batch{Msgs: []Message{
		&SuccessorHint{Group: "g", Sender: "w01", Incarnation: 1, Seq: 8,
			Successor: "w02", SuccessorInc: 5, At: 100, Lease: int64(10e9)},
		&LeaderSnapshot{Group: "g", Sender: "w01", Incarnation: 1, Seq: 9, Tombstone: true},
	}}))
	f.Add(appendFutureItem(appendFutureItem([]byte{byte(KindBatch), BatchVersion, 2},
		[]byte{0xde, 0xad}), nil))
	f.Add([]byte{byte(KindBatch), BatchVersion, 1, 3, byte(futureKind), 0xff})
	f.Add([]byte{byte(KindBatch)})
	f.Add([]byte{byte(KindBatch), BatchVersion})
	f.Add([]byte{byte(KindBatch), BatchVersion, 0xff, 0xff, 0x7f})
	f.Add([]byte{byte(KindBatch), BatchVersion, 2, 1, byte(KindBatch), 1, 0})
	f.Add([]byte{byte(KindBatch), BatchVersion, 1, 40, byte(KindLeave), 1, 'g', 1, 's'})
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Add([]byte{byte(KindHello), 0x01, 'g', 0x01, 's', 0, 0, 0, 0, 0, 0, 0, 0, 0xff})
	dec := NewDecoder()
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		// The pooled Decoder must agree with the allocating path bit for
		// bit: same error-or-success, same decoded value.
		dm, derr := dec.Unmarshal(data)
		if (err == nil) != (derr == nil) {
			t.Fatalf("decoder disagreement: Unmarshal err=%v, Decoder err=%v", err, derr)
		}
		if err != nil {
			return
		}
		if !reflect.DeepEqual(m, dm) {
			t.Fatalf("decoder mismatch:\n plain  %+v\n pooled %+v", m, dm)
		}
		dec.Release(dm)
		// A successfully decoded message must round-trip through the codec.
		b := Marshal(m)
		if len(b) != m.WireSize() {
			t.Fatalf("WireSize %d != marshaled length %d for %+v", m.WireSize(), len(b), m)
		}
		m2, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.Kind() != m.Kind() || m2.From() != m.From() || m2.GroupID() != m.GroupID() {
			t.Fatalf("round trip changed identity: %+v vs %+v", m, m2)
		}
		if bt, ok := m.(*Batch); ok {
			// Batch identity goes deeper than the header: the re-decoded
			// envelope must carry the same messages.
			if !reflect.DeepEqual(bt, m2) {
				t.Fatalf("batch round trip changed contents: %+v vs %+v", bt, m2)
			}
		}
	})
}
