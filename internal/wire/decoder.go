package wire

// Decoder is the allocation-free receive side of the codec: it decodes the
// same formats as Unmarshal/UnmarshalBatch but interns the strings it
// produces (process and group ids recur on every datagram) and recycles
// message structs handed back through Release. After warm-up the decode
// path performs no heap allocation.
//
// The contract mirrors single-threaded use: a Decoder is NOT safe for
// concurrent use, and a message passed to Release must no longer be
// referenced by the caller — strings read out of it remain valid (they are
// interned, never recycled), struct and slice memory does not.
type Decoder struct {
	strings map[string]string

	hellos     []*Hello
	joins      []*Join
	leaves     []*Leave
	alives     []*Alive
	accuses    []*Accuse
	rates      []*Rate
	subscribes []*Subscribe
	unsubs     []*Unsubscribe
	snapshots  []*LeaderSnapshot
	renews     []*LeaseRenew
	standbys   []*Standby
	handovers  []*Handover
	hints      []*SuccessorHint
	batches    []*Batch

	// unknown accumulates inner batch messages skipped for carrying an
	// unrecognized kind (see TakeUnknown).
	unknown int64
}

// maxIntern bounds the interning table. Ids are few in practice; a flood of
// distinct names (hostile traffic) degrades to plain allocation instead of
// growing the table without bound.
const maxIntern = 4096

// maxFree bounds each freelist; Release beyond it lets the GC take over.
const maxFree = 256

// NewDecoder returns an empty Decoder.
func NewDecoder() *Decoder {
	return &Decoder{strings: make(map[string]string)}
}

// Unmarshal decodes one datagram like the package-level Unmarshal, drawing
// structs from the freelists and strings from the interning table.
func (d *Decoder) Unmarshal(b []byte) (Message, error) {
	r := reader{b: b, d: d}
	m, err := unmarshalDatagram(&r)
	if err == nil {
		// Counted only for datagrams that decoded: a corrupt datagram is
		// garbage, not forward traffic, even if the bytes before the
		// corruption happened to look like a skippable future kind.
		d.unknown += int64(r.unknown)
	}
	return m, err
}

// TakeUnknown returns and resets the count of batch-inner messages skipped
// since the last call because their kind is unknown to this build. Hosts
// drain it into their packet counters after each decode.
func (d *Decoder) TakeUnknown() int64 {
	n := d.unknown
	d.unknown = 0
	return n
}

// DecodeAppend decodes one datagram and appends its messages — the inner
// messages of a batch, or the single bare message — to dst, which may be a
// recycled slice. On error dst is returned unchanged.
func (d *Decoder) DecodeAppend(dst []Message, b []byte) ([]Message, error) {
	m, err := d.Unmarshal(b)
	if err != nil {
		return dst, err
	}
	if t, ok := m.(*Batch); ok {
		dst = append(dst, t.Msgs...)
		t.Msgs = t.Msgs[:0]
		d.putBatch(t)
		return dst, nil
	}
	return append(dst, m), nil
}

// intern returns a string equal to raw, reusing a previous allocation when
// the same bytes were seen before. The map index with a string conversion
// compiles to a no-allocation lookup.
func (d *Decoder) intern(raw []byte) string {
	if s, ok := d.strings[string(raw)]; ok {
		return s
	}
	s := string(raw)
	if len(d.strings) < maxIntern {
		d.strings[s] = s
	}
	return s
}

// Release recycles a message obtained from this Decoder. Releasing a
// message that anything still references corrupts later decodes; the
// protocol handlers copy what they keep, so hosts release right after
// dispatch. Releasing a *Batch releases its inner messages too.
func (d *Decoder) Release(m Message) {
	switch t := m.(type) {
	case *Hello:
		members := t.Members[:0]
		*t = Hello{Members: members}
		if len(d.hellos) < maxFree {
			d.hellos = append(d.hellos, t)
		}
	case *Join:
		*t = Join{}
		if len(d.joins) < maxFree {
			d.joins = append(d.joins, t)
		}
	case *Leave:
		*t = Leave{}
		if len(d.leaves) < maxFree {
			d.leaves = append(d.leaves, t)
		}
	case *Alive:
		*t = Alive{}
		if len(d.alives) < maxFree {
			d.alives = append(d.alives, t)
		}
	case *Accuse:
		*t = Accuse{}
		if len(d.accuses) < maxFree {
			d.accuses = append(d.accuses, t)
		}
	case *Rate:
		*t = Rate{}
		if len(d.rates) < maxFree {
			d.rates = append(d.rates, t)
		}
	case *Subscribe:
		*t = Subscribe{}
		if len(d.subscribes) < maxFree {
			d.subscribes = append(d.subscribes, t)
		}
	case *Unsubscribe:
		*t = Unsubscribe{}
		if len(d.unsubs) < maxFree {
			d.unsubs = append(d.unsubs, t)
		}
	case *LeaderSnapshot:
		*t = LeaderSnapshot{}
		if len(d.snapshots) < maxFree {
			d.snapshots = append(d.snapshots, t)
		}
	case *LeaseRenew:
		*t = LeaseRenew{}
		if len(d.renews) < maxFree {
			d.renews = append(d.renews, t)
		}
	case *Standby:
		*t = Standby{}
		if len(d.standbys) < maxFree {
			d.standbys = append(d.standbys, t)
		}
	case *Handover:
		*t = Handover{}
		if len(d.handovers) < maxFree {
			d.handovers = append(d.handovers, t)
		}
	case *SuccessorHint:
		*t = SuccessorHint{}
		if len(d.hints) < maxFree {
			d.hints = append(d.hints, t)
		}
	case *Batch:
		for _, inner := range t.Msgs {
			d.Release(inner)
		}
		t.Msgs = t.Msgs[:0]
		d.putBatch(t)
	}
}

func (d *Decoder) putBatch(t *Batch) {
	if len(d.batches) < maxFree {
		d.batches = append(d.batches, t)
	}
}

func (d *Decoder) getHello() *Hello {
	if n := len(d.hellos); n > 0 {
		t := d.hellos[n-1]
		d.hellos = d.hellos[:n-1]
		return t
	}
	return &Hello{}
}

func (d *Decoder) getJoin() *Join {
	if n := len(d.joins); n > 0 {
		t := d.joins[n-1]
		d.joins = d.joins[:n-1]
		return t
	}
	return &Join{}
}

func (d *Decoder) getLeave() *Leave {
	if n := len(d.leaves); n > 0 {
		t := d.leaves[n-1]
		d.leaves = d.leaves[:n-1]
		return t
	}
	return &Leave{}
}

func (d *Decoder) getAlive() *Alive {
	if n := len(d.alives); n > 0 {
		t := d.alives[n-1]
		d.alives = d.alives[:n-1]
		return t
	}
	return &Alive{}
}

func (d *Decoder) getAccuse() *Accuse {
	if n := len(d.accuses); n > 0 {
		t := d.accuses[n-1]
		d.accuses = d.accuses[:n-1]
		return t
	}
	return &Accuse{}
}

func (d *Decoder) getRate() *Rate {
	if n := len(d.rates); n > 0 {
		t := d.rates[n-1]
		d.rates = d.rates[:n-1]
		return t
	}
	return &Rate{}
}

func (d *Decoder) getSubscribe() *Subscribe {
	if n := len(d.subscribes); n > 0 {
		t := d.subscribes[n-1]
		d.subscribes = d.subscribes[:n-1]
		return t
	}
	return &Subscribe{}
}

func (d *Decoder) getUnsubscribe() *Unsubscribe {
	if n := len(d.unsubs); n > 0 {
		t := d.unsubs[n-1]
		d.unsubs = d.unsubs[:n-1]
		return t
	}
	return &Unsubscribe{}
}

func (d *Decoder) getLeaderSnapshot() *LeaderSnapshot {
	if n := len(d.snapshots); n > 0 {
		t := d.snapshots[n-1]
		d.snapshots = d.snapshots[:n-1]
		return t
	}
	return &LeaderSnapshot{}
}

func (d *Decoder) getLeaseRenew() *LeaseRenew {
	if n := len(d.renews); n > 0 {
		t := d.renews[n-1]
		d.renews = d.renews[:n-1]
		return t
	}
	return &LeaseRenew{}
}

func (d *Decoder) getStandby() *Standby {
	if n := len(d.standbys); n > 0 {
		t := d.standbys[n-1]
		d.standbys = d.standbys[:n-1]
		return t
	}
	return &Standby{}
}

func (d *Decoder) getHandover() *Handover {
	if n := len(d.handovers); n > 0 {
		t := d.handovers[n-1]
		d.handovers = d.handovers[:n-1]
		return t
	}
	return &Handover{}
}

func (d *Decoder) getSuccessorHint() *SuccessorHint {
	if n := len(d.hints); n > 0 {
		t := d.hints[n-1]
		d.hints = d.hints[:n-1]
		return t
	}
	return &SuccessorHint{}
}
