package wire

import "sync"

// maxInboxSlices bounds the recycled destination-slice pool.
const maxInboxSlices = 64

// Inbox is the receive-side decode harness shared by hosts (the
// real-time service and the remote client): one pooled Decoder plus
// recycled destination slices. A mutex serialises it because transports
// may deliver concurrently while releases happen on the host's event
// loop — the Decoder itself is single-threaded by contract.
type Inbox struct {
	mu     sync.Mutex
	dec    *Decoder
	slices [][]Message
}

// NewInbox returns an empty Inbox.
func NewInbox() *Inbox { return &Inbox{dec: NewDecoder()} }

// Decode decodes one datagram into a recycled slice through the pooled
// decoder, returning the messages, the count of unknown-kind inners
// skipped (forward traffic; see Decoder.TakeUnknown), and the decode
// error. The returned slice must go back through Recycle exactly once —
// with release once the messages have been dispatched (handlers copy
// what they keep), without it when they never will be.
//
//leadervet:acquires
func (ib *Inbox) Decode(payload []byte) ([]Message, int64, error) {
	ib.mu.Lock()
	var msgs []Message
	if n := len(ib.slices); n > 0 {
		msgs = ib.slices[n-1][:0]
		ib.slices = ib.slices[:n-1]
	}
	msgs, err := ib.dec.DecodeAppend(msgs, payload)
	unknown := ib.dec.TakeUnknown()
	ib.mu.Unlock()
	return msgs, unknown, err
}

// TakeSlice returns a recycled destination slice (nil when the pool is
// empty) for callers that reorder decoded messages — the sharded host's
// steering stage scatters a datagram's messages into shard-contiguous
// runs. Like a Decode result, the slice must go back through Recycle
// exactly once.
//
//leadervet:acquires
func (ib *Inbox) TakeSlice() []Message {
	ib.mu.Lock()
	var msgs []Message
	if n := len(ib.slices); n > 0 {
		msgs = ib.slices[n-1][:0]
		ib.slices = ib.slices[:n-1]
	}
	ib.mu.Unlock()
	return msgs
}

// Recycle returns a decoded message slice (and, when release is set, the
// messages themselves) to the pools.
//
//leadervet:releases msgs
func (ib *Inbox) Recycle(msgs []Message, release bool) {
	if msgs == nil {
		return
	}
	ib.mu.Lock()
	if release {
		for _, m := range msgs {
			ib.dec.Release(m)
		}
	}
	if len(ib.slices) < maxInboxSlices {
		ib.slices = append(ib.slices, msgs[:0])
	}
	ib.mu.Unlock()
}
