package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"stableleader/id"
)

// sampleMessages returns one populated instance of every message kind.
func sampleMessages() []Message {
	return []Message{
		&Hello{
			Group:       "g1",
			Sender:      "w01",
			Incarnation: 123456789,
			Members: []MemberInfo{
				{ID: "w01", Incarnation: 123456789, Candidate: true},
				{ID: "w02", Incarnation: 42, Candidate: false, Left: true},
				{ID: "w03", Incarnation: 7, Candidate: true, Left: false},
			},
		},
		&Join{Group: "orders", Sender: "a", Incarnation: -5, Candidate: true},
		&Leave{Group: "g", Sender: "node-with-a-long-name", Incarnation: 99},
		&Alive{
			Group: "g", Sender: "w07", Incarnation: 1710000000000000000,
			Seq: 1 << 40, SendTime: 55, Interval: int64(200e6), AccTime: 77,
			Phase: 3, HasLocalLeader: true, LocalLeader: "w01", LocalLeaderAcc: 11,
		},
		&Alive{Group: "g", Sender: "w07", Incarnation: 2, Seq: 0, SendTime: -1, Interval: 0},
		&Accuse{Group: "g", Sender: "w09", Incarnation: 5, TargetIncarnation: 9, Phase: 2, At: 1234},
		&Rate{Group: "g", Sender: "w02", Incarnation: 8, Interval: int64(50e6)},
		&Subscribe{Group: "g", Sender: "client-7", Incarnation: 42, TTL: int64(10e9)},
		&Unsubscribe{Group: "g", Sender: "client-7", Incarnation: 42},
		&LeaderSnapshot{
			Group: "g", Sender: "w01", Incarnation: 9,
			Seq: 1 << 33, Elected: true, Leader: "w03", LeaderIncarnation: 77,
			At: 1710000000000000000, Lease: int64(10e9),
		},
		&LeaderSnapshot{Group: "g", Sender: "w01", Incarnation: 9, Seq: 3, Tombstone: true},
		&LeaseRenew{Group: "g", Sender: "client-7", Incarnation: 42, TTL: int64(5e9)},
		&Standby{Group: "g", Sender: "w01", Incarnation: 9, Seq: 17, Standby: "w03", StandbyInc: 77},
		&Standby{Group: "g", Sender: "w01", Incarnation: 9, Seq: 18},
		&Handover{Group: "g", Sender: "w01", Incarnation: 9, Successor: "w03",
			SuccessorInc: 77, GrantAcc: 1709999999999999999, At: 1710000000000000000},
		&SuccessorHint{Group: "g", Sender: "w01", Incarnation: 9, Seq: 1 << 21,
			Successor: "w03", SuccessorInc: 77, At: 1710000000000000000, Lease: int64(10e9)},
	}
}

func TestRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		b := Marshal(m)
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%s: Unmarshal: %v", m.Kind(), err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%s round trip mismatch:\n sent %+v\n got  %+v", m.Kind(), m, got)
		}
	}
}

func TestWireSizeMatchesMarshal(t *testing.T) {
	for _, m := range sampleMessages() {
		if got, want := m.WireSize(), len(Marshal(m)); got != want {
			t.Errorf("%s: WireSize() = %d, len(Marshal) = %d", m.Kind(), got, want)
		}
	}
}

// randomProcess generates identifier-ish strings, including empty and
// unicode ones.
func randomProcess(r *rand.Rand) id.Process {
	const alphabet = "abcdefghij-0123456789é"
	n := r.Intn(20)
	b := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		b = append(b, alphabet[r.Intn(len(alphabet))])
	}
	return id.Process(b)
}

// randomMessage builds an arbitrary valid message.
func randomMessage(r *rand.Rand) Message {
	g := id.Group(randomProcess(r))
	s := randomProcess(r)
	switch r.Intn(10) {
	case 0:
		m := &Hello{Group: g, Sender: s, Incarnation: r.Int63()}
		for i := r.Intn(5); i > 0; i-- {
			m.Members = append(m.Members, MemberInfo{
				ID:          randomProcess(r),
				Incarnation: r.Int63() - r.Int63(),
				Candidate:   r.Intn(2) == 0,
				Left:        r.Intn(2) == 0,
			})
		}
		return m
	case 1:
		return &Join{Group: g, Sender: s, Incarnation: r.Int63(), Candidate: r.Intn(2) == 0}
	case 2:
		return &Leave{Group: g, Sender: s, Incarnation: r.Int63()}
	case 3:
		m := &Alive{
			Group: g, Sender: s, Incarnation: r.Int63(),
			Seq: r.Uint64() >> uint(r.Intn(64)), SendTime: r.Int63() - r.Int63(),
			Interval: r.Int63n(1e10), AccTime: r.Int63(), Phase: r.Uint32(),
		}
		if r.Intn(2) == 0 {
			m.HasLocalLeader = true
			m.LocalLeader = randomProcess(r)
			m.LocalLeaderAcc = r.Int63()
		}
		return m
	case 4:
		return &Accuse{Group: g, Sender: s, Incarnation: r.Int63(),
			TargetIncarnation: r.Int63(), Phase: r.Uint32(), At: r.Int63()}
	case 5:
		return &Subscribe{Group: g, Sender: s, Incarnation: r.Int63(), TTL: r.Int63n(1e11)}
	case 6:
		return &Unsubscribe{Group: g, Sender: s, Incarnation: r.Int63()}
	case 7:
		return &LeaderSnapshot{
			Group: g, Sender: s, Incarnation: r.Int63(),
			Seq: r.Uint64() >> uint(r.Intn(64)), Elected: r.Intn(2) == 0,
			Leader: randomProcess(r), LeaderIncarnation: r.Int63() - r.Int63(),
			Tombstone: r.Intn(4) == 0, At: r.Int63(), Lease: r.Int63n(1e11),
		}
	case 8:
		return &LeaseRenew{Group: g, Sender: s, Incarnation: r.Int63(), TTL: r.Int63n(1e11)}
	default:
		return &Rate{Group: g, Sender: s, Incarnation: r.Int63(), Interval: r.Int63n(1e10)}
	}
}

// TestQuickRoundTripAndSize is the property-based guarantee the simulator's
// bandwidth accounting relies on: for every message, encoding inverts and
// WireSize equals the marshaled length exactly.
func TestQuickRoundTripAndSize(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		m := randomMessage(r)
		b := Marshal(m)
		if len(b) != m.WireSize() {
			t.Logf("size mismatch for %+v: wire=%d marshal=%d", m, m.WireSize(), len(b))
			return false
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Logf("unmarshal error for %+v: %v", m, err)
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	for _, m := range sampleMessages() {
		full := Marshal(m)
		// Every proper prefix must fail cleanly, never panic. (A prefix of
		// a Hello may decode as a shorter Hello only if the member count
		// byte is also cut, so assert on error-or-shorter semantics by
		// checking errors only where decoding fails.)
		for cut := 0; cut < len(full); cut++ {
			_, err := Unmarshal(full[:cut])
			if err == nil {
				// Some prefixes can decode if trailing bytes are ignored;
				// our codec reads exact field counts, so any successful
				// decode of a strict prefix is a bug for these samples.
				t.Fatalf("%s: prefix of %d/%d bytes decoded without error", m.Kind(), cut, len(full))
			}
		}
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},    // kind 0 invalid
		{0xff}, // unknown kind
		{byte(KindAlive)},
		bytes.Repeat([]byte{0xff}, 64),
	}
	for _, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("Unmarshal(%v) succeeded, want error", b)
		}
	}
}

func TestUnmarshalHugeMemberCount(t *testing.T) {
	// A HELLO advertising an absurd member count must be rejected before
	// allocation, not crash or hang.
	m := &Hello{Group: "g", Sender: "s", Incarnation: 1}
	b := Marshal(m)
	// Member count is the last varint; rewrite it to a huge value.
	b = b[:len(b)-1]
	var w writer
	w.b = b
	w.uvarint(1 << 40)
	if _, err := Unmarshal(w.b); err == nil {
		t.Fatal("decoding a HELLO with 2^40 members should fail")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindHello:  "HELLO",
		KindJoin:   "JOIN",
		KindLeave:  "LEAVE",
		KindAlive:  "ALIVE",
		KindAccuse: "ACCUSE",
		KindRate:   "RATE",
		Kind(99):   "Kind(99)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestHeaderAccessors(t *testing.T) {
	for _, m := range sampleMessages() {
		if m.From() == "" && m.Kind() != KindHello {
			t.Errorf("%s: empty From", m.Kind())
		}
		if m.GroupID() == "" {
			t.Errorf("%s: empty GroupID", m.Kind())
		}
	}
}

func TestAliveWithoutLocalLeaderOmitsFields(t *testing.T) {
	with := &Alive{Group: "g", Sender: "s", HasLocalLeader: true, LocalLeader: "x"}
	without := &Alive{Group: "g", Sender: "s"}
	if with.WireSize() <= without.WireSize() {
		t.Error("local leader fields should add to the wire size")
	}
}
