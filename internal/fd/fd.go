// Package fd implements the monitoring side of Chen et al.'s failure
// detector with QoS (Section 3 of the paper). A Monitor watches one remote
// process through the ALIVE heartbeats it receives:
//
//   - every heartbeat feeds the shared link quality estimator;
//   - the NFD-S freshness rule keeps the remote trusted until
//     sendTime + interval + δ of the freshest heartbeat;
//   - a periodic reconfiguration step recomputes (η, δ) from the QoS spec
//     and the current link estimate, and asks the remote — through a RATE
//     message issued by the host — to adjust its sending interval.
//
// Trust/suspect transitions are delivered to the host synchronously on the
// node's event loop.
package fd

import (
	"time"

	"stableleader/internal/clock"
	"stableleader/internal/linkest"
	"stableleader/internal/obs"
	"stableleader/qos"
)

// DefaultReconfigureInterval is how often a monitor re-runs the
// configurator against fresh link estimates.
const DefaultReconfigureInterval = time.Second

// rateChangeThreshold is the relative change in the computed heartbeat
// interval that triggers a new RATE request to the sender; smaller drifts
// are absorbed silently to avoid RATE chatter.
const rateChangeThreshold = 0.10

// Config assembles a Monitor's dependencies.
type Config struct {
	// Clock supplies time and timers on the host's event loop.
	Clock clock.Clock
	// Spec is the QoS requirement for detecting this process's crash.
	Spec qos.Spec
	// Estimator is the (possibly shared) link quality estimator for the
	// incoming link from the monitored process.
	Estimator *linkest.Estimator
	// OnEdge is called on every trust/suspect transition.
	OnEdge func(trusted bool)
	// RequestRate asks the monitored process to send heartbeats at the
	// given interval (the host wraps this into a RATE message).
	RequestRate func(interval time.Duration)
	// OnReconfigure, if set, is called whenever a reconfiguration step
	// changed the monitor's (η, δ) parameters. Unlike RequestRate it is not
	// threshold-gated: any parameter movement is reported, so hosts can
	// surface the configurator's behaviour to observers.
	OnReconfigure func(params qos.Params)
	// ReconfigureInterval overrides DefaultReconfigureInterval when positive.
	ReconfigureInterval time.Duration
	// Obs, when set, receives the monitor's counters (heartbeats
	// observed, reconfigurations adopted) on the owning event loop.
	// Every obs.Shard method is nil-safe, so the zero Config is fine.
	Obs *obs.Shard
}

// Monitor is the per-(group, remote process) failure detector state.
type Monitor struct {
	cfg     Config
	params  qos.Params
	trusted bool
	// deadline is the current freshness deadline; zero until the first
	// heartbeat arrives.
	deadline time.Time
	// requested is the last interval communicated to the sender.
	requested time.Duration
	// observed is the sending interval advertised by the last heartbeat.
	// If it drifts from requested, the RATE message was lost (or the
	// sender restarted): the request is repeated at the next
	// reconfiguration. Without this, a single lost RATE leaves the link
	// heartbeating slower than the configured timeout assumes, quietly
	// voiding the QoS guarantee.
	observed time.Duration

	// deadlineTimer and reconfTimer are re-armable: created once with the
	// monitor and re-armed in place for its whole lifetime. On a
	// wheel-backed clock a re-arm is an O(1) pointer splice — the monitor
	// re-arms deadlineTimer on every heartbeat, the steady-state hot path.
	deadlineTimer clock.Rearmer
	reconfTimer   clock.Rearmer
	stopped       bool
}

// NewMonitor creates a monitor in the suspected state (nothing has been
// heard yet) and starts its reconfiguration loop. The initial parameters
// come from the configurator applied to the estimator's current snapshot,
// and the initial rate is requested immediately.
func NewMonitor(cfg Config) *Monitor {
	if cfg.ReconfigureInterval <= 0 {
		cfg.ReconfigureInterval = DefaultReconfigureInterval
	}
	m := &Monitor{cfg: cfg}
	m.deadlineTimer = clock.NewTimer(cfg.Clock, m.expire)
	m.reconfTimer = clock.NewTimer(cfg.Clock, m.reconfTick)
	m.params = qos.Configure(cfg.Spec, statsOf(cfg.Estimator))
	m.requested = m.params.Interval
	if cfg.RequestRate != nil {
		cfg.RequestRate(m.requested)
	}
	m.reconfTimer.Reset(m.cfg.ReconfigureInterval)
	return m
}

// statsOf converts the estimator snapshot into configurator input.
func statsOf(e *linkest.Estimator) qos.LinkStats {
	s := e.Snapshot()
	return qos.LinkStats{Loss: s.Loss, MeanDelay: s.MeanDelay, StdDelay: s.StdDelay}
}

// Params returns the monitor's current (η, δ).
func (m *Monitor) Params() qos.Params { return m.params }

// Trusted reports whether the remote process is currently trusted.
func (m *Monitor) Trusted() bool { return m.trusted }

// Deadline returns the current freshness deadline (zero before the first
// heartbeat).
func (m *Monitor) Deadline() time.Time { return m.deadline }

// Observe processes one heartbeat: the caller has already fed the link
// estimator; the monitor extends the freshness deadline if the heartbeat is
// fresh enough. sendTime and interval come from the message; now is the
// local receive time.
//
//leadervet:hotpath
func (m *Monitor) Observe(sendTime time.Time, interval time.Duration, now time.Time) {
	if m.stopped {
		return
	}
	m.cfg.Obs.Inc(obs.CHeartbeats)
	// Guard against a sender advertising an absurd interval.
	if interval <= 0 {
		interval = m.params.Interval
	}
	m.observed = interval
	candidate := sendTime.Add(interval + m.params.Timeout)
	if candidate.After(m.deadline) {
		m.deadline = candidate
		m.armDeadline(now)
		if !m.trusted {
			m.trusted = true
			m.edge(true)
		}
	}
}

// armDeadline (re)schedules the suspicion timer for the current deadline.
func (m *Monitor) armDeadline(now time.Time) {
	m.deadlineTimer.Reset(m.deadline.Sub(now))
}

// expire fires when the freshness deadline passes without a fresh heartbeat.
func (m *Monitor) expire() {
	if m.stopped {
		return
	}
	now := m.cfg.Clock.Now()
	if now.Before(m.deadline) {
		// The deadline moved after this timer was scheduled; re-arm.
		m.armDeadline(now)
		return
	}
	if m.trusted {
		m.trusted = false
		m.edge(false)
	}
}

// edge reports a transition to the host.
func (m *Monitor) edge(trusted bool) {
	if m.cfg.OnEdge != nil {
		m.cfg.OnEdge(trusted)
	}
}

// reconfTick is the periodic configurator run; it re-arms itself.
func (m *Monitor) reconfTick() {
	if m.stopped {
		return
	}
	m.reconfigure()
	m.reconfTimer.Reset(m.cfg.ReconfigureInterval)
}

// reconfigure recomputes (η, δ) from the latest link estimate and requests
// a new heartbeat rate when it changed materially — or when the sender is
// observably not honouring the previous request (the RATE was lost on an
// unreliable link, or the sender restarted and fell back to its default).
func (m *Monitor) reconfigure() {
	prev := m.params
	m.params = qos.Configure(m.cfg.Spec, statsOf(m.cfg.Estimator))
	if m.params != prev {
		m.cfg.Obs.Inc(obs.CFDReconfigs)
		if m.cfg.OnReconfigure != nil {
			m.cfg.OnReconfigure(m.params)
		}
	}
	want := m.params.Interval
	if m.requested <= 0 {
		m.requested = want
	}
	changed := relativeDiff(want, m.requested) > rateChangeThreshold
	ignored := m.observed > 0 && relativeDiff(m.observed, m.requested) > rateChangeThreshold
	if (changed || ignored) && m.cfg.RequestRate != nil {
		m.requested = want
		m.cfg.RequestRate(want)
	}
}

// relativeDiff is |a-b| / b.
func relativeDiff(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	d := float64(a-b) / float64(b)
	if d < 0 {
		return -d
	}
	return d
}

// Stop cancels all timers. The monitor must not be used afterwards.
func (m *Monitor) Stop() {
	m.stopped = true
	m.deadlineTimer.Stop()
	m.reconfTimer.Stop()
}
