package fd

import (
	"testing"
	"time"

	"stableleader/internal/clock"
	"stableleader/internal/linkest"
	"stableleader/internal/simnet"
	"stableleader/qos"
)

// harness wires a monitor to a virtual clock and records its outputs.
type harness struct {
	eng   *simnet.Engine
	est   *linkest.Estimator
	mon   *Monitor
	edges []bool
	rates []time.Duration
}

func newHarness(t *testing.T, spec qos.Spec) *harness {
	t.Helper()
	h := &harness{eng: simnet.NewEngine(1), est: linkest.New()}
	h.mon = NewMonitor(Config{
		Clock:       clockAdapter{h.eng},
		Spec:        spec,
		Estimator:   h.est,
		OnEdge:      func(trusted bool) { h.edges = append(h.edges, trusted) },
		RequestRate: func(iv time.Duration) { h.rates = append(h.rates, iv) },
	})
	return h
}

// clockAdapter exposes the engine as a clock.Clock.
type clockAdapter struct{ eng *simnet.Engine }

func (c clockAdapter) Now() time.Time { return c.eng.Now() }
func (c clockAdapter) AfterFunc(d time.Duration, fn func()) clock.Timer {
	return c.eng.After(d, fn)
}

// heartbeat feeds one heartbeat stamped now with the given interval, as the
// host would after receiving an ALIVE.
func (h *harness) heartbeat(seq uint64, interval time.Duration) {
	now := h.eng.Now()
	h.est.Observe("g", seq, 0)
	h.mon.Observe(now, interval, now)
}

func TestInitialRateRequested(t *testing.T) {
	h := newHarness(t, qos.Default())
	if len(h.rates) != 1 {
		t.Fatalf("rates requested at construction = %d, want 1", len(h.rates))
	}
	if h.rates[0] != h.mon.Params().Interval {
		t.Errorf("requested %v, params say %v", h.rates[0], h.mon.Params().Interval)
	}
}

func TestTrustOnFirstHeartbeatSuspectOnSilence(t *testing.T) {
	h := newHarness(t, qos.Default())
	if h.mon.Trusted() {
		t.Fatal("monitor must start suspected (nothing heard yet)")
	}
	interval := 100 * time.Millisecond
	h.heartbeat(1, interval)
	if !h.mon.Trusted() {
		t.Fatal("first heartbeat should establish trust")
	}
	if len(h.edges) != 1 || !h.edges[0] {
		t.Fatalf("edges = %v, want [true]", h.edges)
	}
	// Silence: suspicion must fire by interval + timeout.
	h.eng.RunFor(interval + h.mon.Params().Timeout + time.Millisecond)
	if h.mon.Trusted() {
		t.Fatal("monitor still trusting after the freshness deadline")
	}
	if len(h.edges) != 2 || h.edges[1] {
		t.Fatalf("edges = %v, want [true false]", h.edges)
	}
}

func TestDetectionWithinBound(t *testing.T) {
	spec := qos.Default()
	h := newHarness(t, spec)
	// Steady heartbeats from a sender that obeys RATE requests (it always
	// advertises the monitor's current interval), then a crash.
	var lastSend time.Time
	var interval time.Duration
	for i := 1; i <= 500; i++ {
		interval = h.mon.Params().Interval
		lastSend = h.eng.Now()
		h.heartbeat(uint64(i), interval)
		h.eng.RunFor(interval)
	}
	// The sender is dead now. Detection must happen within interval+delta
	// of the last heartbeat, which the configurator keeps at or under TdU.
	deadline := lastSend.Add(interval + h.mon.Params().Timeout)
	for h.mon.Trusted() {
		if !h.eng.Now().Before(deadline.Add(time.Millisecond)) {
			t.Fatalf("still trusted at %v, deadline was %v", h.eng.Now(), deadline)
		}
		h.eng.RunFor(time.Millisecond)
	}
	if detection := h.eng.Now().Sub(lastSend); detection > spec.DetectionTime+2*time.Millisecond {
		t.Errorf("detection took %v from last heartbeat, bound is %v", detection, spec.DetectionTime)
	}
}

func TestNoFalseSuspicionUnderSteadyHeartbeats(t *testing.T) {
	h := newHarness(t, qos.Default())
	interval := h.mon.Params().Interval
	for i := 1; i <= 2000; i++ {
		h.heartbeat(uint64(i), interval)
		h.eng.RunFor(interval)
	}
	for _, e := range h.edges[1:] {
		if !e {
			t.Fatal("monitor suspected a steadily heartbeating process")
		}
	}
}

func TestReTrustAfterResume(t *testing.T) {
	h := newHarness(t, qos.Default())
	interval := 50 * time.Millisecond
	h.heartbeat(1, interval)
	h.eng.RunFor(2 * time.Second) // silence: suspicion
	if h.mon.Trusted() {
		t.Fatal("expected suspicion after 2s of silence")
	}
	h.heartbeat(2, interval)
	if !h.mon.Trusted() {
		t.Fatal("resumed heartbeats should restore trust")
	}
	want := []bool{true, false, true}
	if len(h.edges) != len(want) {
		t.Fatalf("edges = %v, want %v", h.edges, want)
	}
}

func TestStaleHeartbeatDoesNotRegressDeadline(t *testing.T) {
	h := newHarness(t, qos.Default())
	interval := 100 * time.Millisecond
	now := h.eng.Now()
	h.est.Observe("g", 5, 0)
	h.mon.Observe(now, interval, now)
	d1 := h.mon.Deadline()
	// A reordered heartbeat sent earlier arrives late: deadline unchanged.
	h.est.Observe("g", 4, 0)
	h.mon.Observe(now.Add(-3*interval), interval, now)
	if !h.mon.Deadline().Equal(d1) {
		t.Errorf("deadline regressed from %v to %v", d1, h.mon.Deadline())
	}
}

func TestSenderIntervalGovernsDeadline(t *testing.T) {
	h := newHarness(t, qos.Default())
	// The sender declares a much longer interval than we asked for (e.g.
	// our RATE was lost): the monitor must wait interval+delta, not
	// suspect early.
	declared := 700 * time.Millisecond
	h.heartbeat(1, declared)
	h.eng.RunFor(declared + h.mon.Params().Timeout - time.Millisecond)
	if !h.mon.Trusted() {
		t.Fatal("suspected before the declared interval + timeout elapsed")
	}
	h.eng.RunFor(5 * time.Millisecond)
	if h.mon.Trusted() {
		t.Fatal("not suspected after the declared interval + timeout")
	}
}

func TestReconfigureRequestsNewRateWhenLinkDegrades(t *testing.T) {
	h := newHarness(t, qos.Default())
	initial := h.rates[0]
	// Feed the estimator a terrible link: 30% loss, 50ms delays.
	seq := uint64(0)
	rngDrop := 0
	for i := 0; i < 3000; i++ {
		seq++
		rngDrop++
		if rngDrop%3 == 0 {
			continue // lost heartbeat (gap)
		}
		h.est.Observe("g", seq, 50*time.Millisecond)
	}
	// Let several reconfiguration rounds run.
	h.eng.RunFor(5 * time.Second)
	if len(h.rates) < 2 {
		t.Fatalf("no new RATE requested after the link degraded (rates=%v)", h.rates)
	}
	last := h.rates[len(h.rates)-1]
	if last >= initial {
		t.Errorf("degraded link should demand faster heartbeats: %v -> %v", initial, last)
	}
}

func TestStopCancelsTimers(t *testing.T) {
	h := newHarness(t, qos.Default())
	h.heartbeat(1, 50*time.Millisecond)
	h.mon.Stop()
	edgesBefore := len(h.edges)
	h.eng.RunFor(time.Minute)
	if len(h.edges) != edgesBefore {
		t.Error("edges delivered after Stop")
	}
	if h.eng.Pending() != 0 {
		// Stopped timers may linger in the heap but must all be cancelled;
		// RunFor above drains them. Anything left pending would be a leak.
		t.Errorf("%d events still pending after Stop and a minute of draining", h.eng.Pending())
	}
}

func TestObserveAfterStopIgnored(t *testing.T) {
	h := newHarness(t, qos.Default())
	h.mon.Stop()
	h.heartbeat(1, 50*time.Millisecond)
	if h.mon.Trusted() || len(h.edges) != 0 {
		t.Error("stopped monitor processed a heartbeat")
	}
}

// TestLostRateIsRepeated is a regression test for a robustness gap found by
// the multi-seed stability sweep: if the initial RATE request is lost, the
// sender keeps heartbeating at its slow default while the monitor's timeout
// assumes the fast configured rate, silently voiding the QoS. The monitor
// must notice the advertised interval differs from its request and repeat
// the request.
func TestLostRateIsRepeated(t *testing.T) {
	h := newHarness(t, qos.Default())
	requested := h.rates[0]
	// The sender clearly ignores us: its heartbeats advertise a much
	// larger interval than requested.
	ignoredInterval := 4 * requested
	for i := 1; i <= 20; i++ {
		h.heartbeat(uint64(i), ignoredInterval)
		h.eng.RunFor(ignoredInterval)
	}
	if len(h.rates) < 2 {
		t.Fatalf("monitor never repeated its RATE request (rates=%v)", h.rates)
	}
}
