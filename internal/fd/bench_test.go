package fd

// Benchmarks for the monitoring hot path: one Observe per received ALIVE,
// re-arming the freshness deadline each time. On a wheel-backed clock the
// re-arm is an O(1) splice — zero allocations, zero runtime timers — where
// the AfterFunc path allocated a timer per heartbeat per monitor.

import (
	"testing"
	"time"

	"stableleader/internal/clock"
	"stableleader/internal/linkest"
	"stableleader/internal/obs"
	"stableleader/internal/timerwheel"
	"stableleader/qos"
)

// wheelClock is a test stand-in for the service runtime: a manually
// advanced clock whose timers live on a hashed timer wheel.
type wheelClock struct {
	now time.Time
	w   *timerwheel.Wheel
}

func newWheelClock() *wheelClock {
	now := time.Date(2008, time.March, 1, 0, 0, 0, 0, time.UTC)
	return &wheelClock{now: now, w: timerwheel.New(now, timerwheel.DefaultTick)}
}

func (c *wheelClock) Now() time.Time { return c.now }

func (c *wheelClock) AfterFunc(d time.Duration, fn func()) clock.Timer {
	t := c.NewTimer(fn)
	t.Reset(d)
	return t
}

func (c *wheelClock) NewTimer(fn func()) clock.Rearmer {
	return &wheelClockTimer{c: c, e: timerwheel.NewEntry(fn)}
}

func (c *wheelClock) advance(d time.Duration) {
	c.now = c.now.Add(d)
	c.w.Advance(c.now)
}

type wheelClockTimer struct {
	c *wheelClock
	e *timerwheel.Entry
}

func (t *wheelClockTimer) Reset(d time.Duration) bool {
	pending := t.e.Pending()
	t.c.w.Schedule(t.e, t.c.now.Add(d))
	return pending
}

func (t *wheelClockTimer) Stop() bool { return t.c.w.Stop(t.e) }

// BenchmarkMonitorObserve is the per-ALIVE steady state: fresh heartbeat,
// deadline extension, wheel re-arm, periodic wheel advance (which also
// runs the reconfiguration ticks a real monitor pays). The allocs/op
// column is the acceptance metric: 0 means no runtime timer — in fact no
// allocation at all — per processed heartbeat. The obs shard is wired
// exactly as the service runtime wires it, so this measures the
// production (instrumented) path.
func BenchmarkMonitorObserve(b *testing.B) {
	c := newWheelClock()
	sh := obs.NewRegistry(1, 0).Shard(0)
	m := NewMonitor(Config{Clock: c, Spec: qos.Default(), Estimator: linkest.New(), Obs: sh})
	defer m.Stop()
	const interval = 100 * time.Millisecond
	sendTime := c.now
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.advance(interval)
		sendTime = sendTime.Add(interval)
		m.Observe(sendTime, interval, c.now)
	}
}

// BenchmarkMonitorObserveHeapClock is the pre-wheel shape for comparison:
// every deadline re-arm builds a fresh timer object (the clock.NewTimer
// fallback over a plain AfterFunc clock), the way the monitor behaved
// when it stopped and re-created a timer per heartbeat.
func BenchmarkMonitorObserveHeapClock(b *testing.B) {
	c := &afClock{newWheelClock()}
	m := NewMonitor(Config{Clock: c, Spec: qos.Default(), Estimator: linkest.New()})
	defer m.Stop()
	const interval = 100 * time.Millisecond
	sendTime := c.wc.now
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.wc.advance(interval)
		sendTime = sendTime.Add(interval)
		m.Observe(sendTime, interval, c.wc.now)
	}
}

// afClock hides the wheel clock's TimerFactory so monitors fall back to
// allocate-per-arm AfterFunc timers.
type afClock struct{ wc *wheelClock }

func (c *afClock) Now() time.Time { return c.wc.now }
func (c *afClock) AfterFunc(d time.Duration, fn func()) clock.Timer {
	return c.wc.AfterFunc(d, fn)
}

// TestObserveAllocFree asserts the acceptance criterion directly: zero
// allocations per processed heartbeat on a wheel-backed clock. The huge
// reconfigure interval keeps the (allocating, once-a-second) configurator
// step out of the measurement — it is not part of the per-ALIVE path.
func TestObserveAllocFree(t *testing.T) {
	c := newWheelClock()
	m := NewMonitor(Config{
		Clock:               c,
		Spec:                qos.Default(),
		Estimator:           linkest.New(),
		ReconfigureInterval: 24 * time.Hour,
		Obs:                 obs.NewRegistry(1, 0).Shard(0),
	})
	defer m.Stop()
	const interval = 100 * time.Millisecond
	sendTime := c.now
	if allocs := testing.AllocsPerRun(1000, func() {
		c.advance(interval)
		sendTime = sendTime.Add(interval)
		m.Observe(sendTime, interval, c.now)
	}); allocs != 0 {
		t.Fatalf("Observe allocated %.1f objects per heartbeat, want 0", allocs)
	}
}
