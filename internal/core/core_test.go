package core

import (
	"testing"
	"time"

	"stableleader/id"
	"stableleader/internal/election"
	"stableleader/internal/simnet"
	"stableleader/qos"
)

const testGroup id.Group = "g"

// cluster is a small white-box harness: real Nodes over a simulated LAN.
type cluster struct {
	t     *testing.T
	eng   *simnet.Engine
	net   *simnet.Network
	nodes map[id.Process]*Node
	rts   map[id.Process]*simnet.NodeRuntime
	procs []id.Process
}

func newCluster(t *testing.T, model simnet.LinkModel, procs ...id.Process) *cluster {
	t.Helper()
	c := &cluster{
		t:     t,
		eng:   simnet.NewEngine(1),
		nodes: make(map[id.Process]*Node),
		rts:   make(map[id.Process]*simnet.NodeRuntime),
		procs: procs,
	}
	c.net = simnet.NewNetwork(c.eng, model)
	for _, p := range procs {
		c.net.Attach(p)
	}
	return c
}

// start boots a node and joins it to the test group.
func (c *cluster) start(p id.Process, opts JoinOptions) *Node {
	c.t.Helper()
	rt := simnet.NewNodeRuntime(c.net, p)
	n := NewNode(p, rt)
	c.net.SetUp(p, true, n)
	c.nodes[p] = n
	c.rts[p] = rt
	if opts.Seeds == nil {
		opts.Seeds = c.procs
	}
	if err := n.Join(testGroup, opts); err != nil {
		c.t.Fatalf("join %s: %v", p, err)
	}
	return n
}

// crash kills p like the fault injector does.
func (c *cluster) crash(p id.Process) {
	c.rts[p].Shutdown()
	c.net.SetUp(p, false, nil)
	delete(c.nodes, p)
	delete(c.rts, p)
}

// leaders returns the leader view of every live node.
func (c *cluster) leaders() map[id.Process]LeaderInfo {
	out := make(map[id.Process]LeaderInfo)
	for p, n := range c.nodes {
		li, err := n.Leader(testGroup)
		if err != nil {
			c.t.Fatalf("Leader(%s): %v", p, err)
		}
		out[p] = li
	}
	return out
}

// commonLeader asserts every live node agrees on one elected alive leader
// and returns it.
func (c *cluster) commonLeader() (id.Process, bool) {
	var leader id.Process
	first := true
	for _, li := range c.leaders() {
		if !li.Elected {
			return "", false
		}
		if first {
			leader, first = li.Leader, false
		} else if li.Leader != leader {
			return "", false
		}
	}
	if first {
		return "", false
	}
	if _, alive := c.nodes[leader]; !alive {
		return "", false
	}
	return leader, true
}

// waitCommonLeader runs the simulation until agreement or the deadline.
func (c *cluster) waitCommonLeader(d time.Duration) id.Process {
	c.t.Helper()
	deadline := c.eng.Now().Add(d)
	for c.eng.Now().Before(deadline) {
		if l, ok := c.commonLeader(); ok {
			return l
		}
		c.eng.RunFor(10 * time.Millisecond)
	}
	c.t.Fatalf("no common leader within %v; views: %+v", d, c.leaders())
	return ""
}

func defaultOpts(algo election.Kind, candidate bool) JoinOptions {
	return JoinOptions{Candidate: candidate, Algorithm: algo, QoS: qos.Default()}
}

func TestElectionHappyPathAllAlgorithms(t *testing.T) {
	for _, algo := range []election.Kind{election.OmegaL, election.OmegaLC, election.OmegaID} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			c := newCluster(t, simnet.LAN(), "a", "b", "c")
			for _, p := range c.procs {
				c.start(p, defaultOpts(algo, true))
			}
			l := c.waitCommonLeader(5 * time.Second)
			if algo == election.OmegaID && l != "a" {
				t.Errorf("omega-id must elect the smallest id, got %q", l)
			}
			// Leadership must then hold steady.
			c.eng.RunFor(30 * time.Second)
			if got, ok := c.commonLeader(); !ok || got != l {
				t.Errorf("leadership flapped from %q to %q (ok=%v)", l, got, ok)
			}
		})
	}
}

func TestLeaderCrashTriggersReelection(t *testing.T) {
	for _, algo := range []election.Kind{election.OmegaL, election.OmegaLC, election.OmegaID} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			c := newCluster(t, simnet.LAN(), "a", "b", "c", "d")
			for _, p := range c.procs {
				c.start(p, defaultOpts(algo, true))
			}
			old := c.waitCommonLeader(5 * time.Second)
			crashAt := c.eng.Now()
			c.crash(old)
			newLeader := c.waitCommonLeader(5 * time.Second)
			if newLeader == old {
				t.Fatalf("dead process %q still leads", old)
			}
			elapsed := c.eng.Now().Sub(crashAt)
			// Detection bound (1s) plus an agreement allowance.
			if elapsed > 2*time.Second {
				t.Errorf("re-election took %v, want well under 2s", elapsed)
			}
		})
	}
}

func TestLeaderLeaveReelectsQuickly(t *testing.T) {
	c := newCluster(t, simnet.LAN(), "a", "b", "c")
	for _, p := range c.procs {
		c.start(p, defaultOpts(election.OmegaL, true))
	}
	old := c.waitCommonLeader(5 * time.Second)
	leaveAt := c.eng.Now()
	if err := c.nodes[old].Leave(testGroup); err != nil {
		t.Fatal(err)
	}
	delete(c.nodes, old) // it no longer answers queries for the group
	newLeader := c.waitCommonLeader(5 * time.Second)
	if newLeader == old {
		t.Fatal("departed process still leads")
	}
	// A LEAVE announcement re-elects without waiting for failure
	// detection: far faster than the 1s QoS bound.
	if elapsed := c.eng.Now().Sub(leaveAt); elapsed > 500*time.Millisecond {
		t.Errorf("re-election after LEAVE took %v, want < 500ms", elapsed)
	}
}

func TestNonCandidatesObserveButNeverLead(t *testing.T) {
	for _, algo := range []election.Kind{election.OmegaL, election.OmegaLC, election.OmegaID} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			c := newCluster(t, simnet.LAN(), "a", "b", "c")
			// Only "c" (largest id!) is a candidate.
			c.start("a", defaultOpts(algo, false))
			c.start("b", defaultOpts(algo, false))
			c.start("c", defaultOpts(algo, true))
			l := c.waitCommonLeader(5 * time.Second)
			if l != "c" {
				t.Fatalf("leader = %q, want the only candidate c", l)
			}
			// And with the candidate gone, nobody may claim leadership.
			c.crash("c")
			c.eng.RunFor(5 * time.Second)
			for p, li := range c.leaders() {
				if li.Elected {
					t.Errorf("%s elected %q with no candidates left", p, li.Leader)
				}
			}
		})
	}
}

// TestStabilityOnRecovery is the paper's stability headline at the service
// level: the smallest-id process crashes and recovers; omega-l and omega-lc
// keep the interim leader, omega-id demotes it.
func TestStabilityOnRecovery(t *testing.T) {
	cases := []struct {
		algo       election.Kind
		wantDemote bool
	}{
		{election.OmegaL, false},
		{election.OmegaLC, false},
		{election.OmegaID, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.algo.String(), func(t *testing.T) {
			c := newCluster(t, simnet.LAN(), "a", "b", "c")
			for _, p := range c.procs {
				c.start(p, defaultOpts(tc.algo, true))
			}
			first := c.waitCommonLeader(5 * time.Second)
			c.crash(first)
			interim := c.waitCommonLeader(5 * time.Second)
			// The crashed process recovers with a fresh incarnation.
			c.start(first, defaultOpts(tc.algo, true))
			c.eng.RunFor(10 * time.Second)
			final, ok := c.commonLeader()
			if !ok {
				t.Fatalf("no common leader after recovery; views: %+v", c.leaders())
			}
			if tc.wantDemote && final != first {
				t.Errorf("omega-id should have re-elected the recovered %q, got %q", first, final)
			}
			if !tc.wantDemote && final != interim {
				t.Errorf("%v demoted the healthy interim leader %q for %q", tc.algo, interim, final)
			}
		})
	}
}

func TestGossipSpreadsMembershipFromPartialSeeds(t *testing.T) {
	c := newCluster(t, simnet.LAN(), "a", "b", "c", "d")
	// Star bootstrap: everyone only knows "a".
	c.start("a", JoinOptions{Candidate: true, Algorithm: election.OmegaL, Seeds: []id.Process{"a"}})
	c.start("b", JoinOptions{Candidate: true, Algorithm: election.OmegaL, Seeds: []id.Process{"a"}})
	c.start("c", JoinOptions{Candidate: true, Algorithm: election.OmegaL, Seeds: []id.Process{"a"}})
	c.start("d", JoinOptions{Candidate: true, Algorithm: election.OmegaL, Seeds: []id.Process{"a"}})
	c.waitCommonLeader(10 * time.Second)
	for p, n := range c.nodes {
		gs := n.groups[testGroup]
		if got := len(gs.table.Active()); got != 4 {
			t.Errorf("%s sees %d members, want 4 (gossip did not spread)", p, got)
		}
	}
}

func TestRateRequestsReachSenders(t *testing.T) {
	c := newCluster(t, simnet.LAN(), "a", "b")
	c.start("a", defaultOpts(election.OmegaLC, true))
	c.start("b", defaultOpts(election.OmegaLC, true))
	c.waitCommonLeader(5 * time.Second)
	// Give the estimators time to accumulate enough evidence that the
	// conservative loss prior washes out (the configurator only relaxes to
	// the cheapest rate once the link has proven itself over hundreds of
	// gap-free heartbeats).
	c.eng.RunFor(8 * time.Minute)
	// On a clean LAN with the paper QoS the configurator's optimum is
	// TdU/4 = 250ms; the senders must have adopted a rate within the 10%
	// hysteresis band of it via RATE (exact convergence is deliberately
	// not chased — RATE traffic has a change threshold).
	for p, n := range c.nodes {
		gs := n.groups[testGroup]
		for dest, ds := range gs.dests {
			if ds.interval < 225*time.Millisecond || ds.interval > 250*time.Millisecond {
				t.Errorf("%s -> %s heartbeat interval = %v, want within 10%% of 250ms", p, dest, ds.interval)
			}
		}
	}
}

func TestEstimatorSharedAcrossGroups(t *testing.T) {
	c := newCluster(t, simnet.LAN(), "a", "b")
	n := c.start("a", defaultOpts(election.OmegaLC, true))
	if e1, e2 := n.estimatorFor("b", 5), n.estimatorFor("b", 5); e1 != e2 {
		t.Fatal("same remote must share one estimator across groups")
	}
	e1 := n.estimatorFor("b", 5)
	e1.Observe("g", 1, time.Millisecond)
	// A newer incarnation resets the shared estimator.
	e2 := n.estimatorFor("b", 6)
	if e2 != e1 {
		t.Fatal("reset must reuse the estimator instance")
	}
	if e2.Snapshot().Samples != 0 {
		t.Error("estimator not reset on a newer incarnation")
	}
}

func TestMultiGroupIndependentLeaders(t *testing.T) {
	c := newCluster(t, simnet.LAN(), "a", "b", "c")
	for _, p := range c.procs {
		c.start(p, defaultOpts(election.OmegaL, true))
	}
	// Join a second group where only "c" is a candidate.
	for _, p := range c.procs {
		err := c.nodes[p].Join("g2", JoinOptions{
			Candidate: p == "c",
			Algorithm: election.OmegaL,
			QoS:       qos.Default(),
			Seeds:     c.procs,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	c.waitCommonLeader(5 * time.Second)
	c.eng.RunFor(5 * time.Second)
	for p, n := range c.nodes {
		li, err := n.Leader("g2")
		if err != nil {
			t.Fatal(err)
		}
		if !li.Elected || li.Leader != "c" {
			t.Errorf("%s: g2 leader = %+v, want c", p, li)
		}
	}
}

func TestNotificationsMatchQueries(t *testing.T) {
	c := newCluster(t, simnet.LAN(), "a", "b")
	var fromCallback []LeaderInfo
	opts := defaultOpts(election.OmegaL, true)
	opts.OnLeaderChange = func(li LeaderInfo) { fromCallback = append(fromCallback, li) }
	n := c.start("a", opts)
	c.start("b", defaultOpts(election.OmegaL, true))
	c.waitCommonLeader(5 * time.Second)
	c.eng.RunFor(2 * time.Second) // let the pending notification timers fire
	if len(fromCallback) == 0 {
		t.Fatal("no interrupt notifications delivered")
	}
	last := fromCallback[len(fromCallback)-1]
	q, err := n.Leader(testGroup)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Same(last) {
		t.Errorf("query %+v disagrees with last notification %+v", q, last)
	}
	// Consecutive notifications never repeat the same view.
	for i := 1; i < len(fromCallback); i++ {
		if fromCallback[i].Same(fromCallback[i-1]) {
			t.Errorf("duplicate notification at %d: %+v", i, fromCallback[i])
		}
	}
}

func TestAPIErrors(t *testing.T) {
	c := newCluster(t, simnet.LAN(), "a")
	n := c.start("a", defaultOpts(election.OmegaL, true))
	if err := n.Join(testGroup, defaultOpts(election.OmegaL, true)); err == nil {
		t.Error("double join must fail")
	}
	if _, err := n.Leader("nope"); err == nil {
		t.Error("Leader of an unjoined group must fail")
	}
	if err := n.Leave("nope"); err == nil {
		t.Error("Leave of an unjoined group must fail")
	}
	badQoS := defaultOpts(election.OmegaL, true)
	badQoS.QoS = qos.Spec{DetectionTime: -1}
	if err := n.Join("g2", badQoS); err == nil {
		t.Error("invalid QoS must be rejected")
	}
	n.Stop()
	if err := n.Join("g3", defaultOpts(election.OmegaL, true)); err == nil {
		t.Error("join on a stopped node must fail")
	}
}

func TestStaleIncarnationAliveDropped(t *testing.T) {
	c := newCluster(t, simnet.LAN(), "a", "b")
	c.start("a", defaultOpts(election.OmegaL, true))
	c.start("b", defaultOpts(election.OmegaL, true))
	c.waitCommonLeader(5 * time.Second)
	// Restart b with a new incarnation; a's monitors must follow the new
	// incarnation, and the old one's heartbeats (none will come, but the
	// monitor entry itself) must be replaced.
	c.crash("b")
	c.eng.RunFor(3 * time.Second)
	c.start("b", defaultOpts(election.OmegaL, true))
	c.eng.RunFor(5 * time.Second)
	na := c.nodes["a"]
	gs := na.groups[testGroup]
	entry, ok := gs.monitors["b"]
	if !ok {
		t.Fatal("a has no monitor for b")
	}
	if entry.inc != c.nodes["b"].Incarnation() {
		t.Errorf("monitor tracks incarnation %d, want %d", entry.inc, c.nodes["b"].Incarnation())
	}
}

func TestStatusReportsTrustAndFDParams(t *testing.T) {
	c := newCluster(t, simnet.LAN(), "a", "b", "c")
	for _, p := range c.procs {
		c.start(p, defaultOpts(election.OmegaLC, true))
	}
	c.waitCommonLeader(5 * time.Second)
	c.eng.RunFor(10 * time.Second) // let configurators settle
	rows, err := c.nodes["a"].Status(testGroup)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("status rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.ID == "a" {
			if !r.Self || !r.Trusted {
				t.Errorf("self row = %+v", r)
			}
			continue
		}
		if !r.Trusted {
			t.Errorf("%s untrusted on a clean LAN: %+v", r.ID, r)
		}
		if r.Interval <= 0 || r.Timeout <= 0 {
			t.Errorf("%s has no FD parameters: %+v", r.ID, r)
		}
		if got := r.Interval + r.Timeout; got > time.Second {
			t.Errorf("%s: η+δ = %v exceeds the 1s QoS bound", r.ID, got)
		}
	}
	if _, err := c.nodes["a"].Status("nope"); err == nil {
		t.Error("Status of an unjoined group must fail")
	}
}

func TestStatusShowsSuspectedCrashedPeer(t *testing.T) {
	c := newCluster(t, simnet.LAN(), "a", "b")
	c.start("a", defaultOpts(election.OmegaLC, true))
	c.start("b", defaultOpts(election.OmegaLC, true))
	c.waitCommonLeader(5 * time.Second)
	c.crash("b")
	c.eng.RunFor(3 * time.Second)
	rows, err := c.nodes["a"].Status(testGroup)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ID == "b" && r.Trusted {
			t.Error("crashed peer still trusted after 3x the detection bound")
		}
	}
}

// TestPacerSharesOneTimerAcrossGroups is the outbound packet plane's
// timer-side claim: a node in G groups runs one heartbeat pacer per peer,
// not G independent timers, and the per-group streams align onto one phase.
func TestPacerSharesOneTimerAcrossGroups(t *testing.T) {
	c := newCluster(t, simnet.LAN(), "a", "b")
	na := c.start("a", defaultOpts(election.OmegaLC, true))
	c.start("b", defaultOpts(election.OmegaLC, true))
	groups := []id.Group{"g2", "g3", "g4"}
	for _, g := range groups {
		for _, p := range c.procs {
			opts := defaultOpts(election.OmegaLC, true)
			opts.Seeds = c.procs
			if err := c.nodes[p].Join(g, opts); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.waitCommonLeader(5 * time.Second)
	c.eng.RunFor(10 * time.Second)
	pp := na.pacers["b"]
	if pp == nil {
		t.Fatal("a has no pacer toward b")
	}
	if len(na.pacers) != 1 {
		t.Errorf("a runs %d pacers, want 1 (single peer)", len(na.pacers))
	}
	if got := len(pp.streams); got != 4 {
		t.Fatalf("pacer carries %d streams, want 4 (one per group)", got)
	}
	// All equal-interval streams must have converged onto one wake-up.
	var due time.Time
	first := true
	for _, st := range pp.streams {
		if first {
			due, first = st.due, false
			continue
		}
		if !st.due.Equal(due) {
			t.Errorf("streams not aligned: %v vs %v", st.due, due)
		}
	}
}

// TestCoalesceDelayTracksHeartbeatInterval checks the flush-policy
// derivation: the coalescing delay follows the fastest heartbeat interval
// toward the peer, capped at 2ms.
func TestCoalesceDelayTracksHeartbeatInterval(t *testing.T) {
	c := newCluster(t, simnet.LAN(), "a", "b")
	na := c.start("a", defaultOpts(election.OmegaL, true))
	c.start("b", defaultOpts(election.OmegaL, true))
	c.waitCommonLeader(5 * time.Second)
	// Default interval is TdU/5 = 200ms; an eighth is 25ms, capped at 2ms.
	if got := na.coalesceDelayFor("b"); got != 2*time.Millisecond {
		t.Errorf("coalesce delay = %v, want the 2ms cap", got)
	}
	// A peer never heartbeated gets the conservative default.
	if got := na.coalesceDelayFor("nope"); got != time.Millisecond {
		t.Errorf("default coalesce delay = %v, want 1ms", got)
	}
	// A fast RATE-requested interval drops the delay below the cap.
	gs := na.groups[testGroup]
	ds := gs.dests["b"]
	ds.interval = 8 * time.Millisecond
	na.pacers["b"].refresh()
	if got := na.coalesceDelayFor("b"); got != time.Millisecond {
		t.Errorf("coalesce delay = %v, want interval/8 = 1ms", got)
	}
}

// TestStopCancelsPacers: a stopped node must leave no live pacer state
// behind (timers are invalidated by generation and the stopped flag).
func TestStopCancelsPacers(t *testing.T) {
	c := newCluster(t, simnet.LAN(), "a", "b")
	na := c.start("a", defaultOpts(election.OmegaL, true))
	c.start("b", defaultOpts(election.OmegaL, true))
	c.waitCommonLeader(5 * time.Second)
	na.Stop()
	if len(na.pacers) != 0 {
		t.Errorf("%d pacers survive Stop", len(na.pacers))
	}
	c.eng.RunFor(5 * time.Second) // any stale timer callback must be inert
}
