// Package core implements the node of the leader election service: the
// single-threaded state machine of Figure 2 of the paper. One Node runs per
// process; it multiplexes any number of groups, each owning
//
//   - a Group Maintenance instance (membership table + HELLO gossip +
//     JOIN/LEAVE handling),
//   - a Failure Detector instance per fellow member (Chen et al. monitors
//     sharing per-remote link estimators across groups),
//   - a heartbeat scheduler obeying per-destination RATE requests, and
//   - one pluggable Leader Election Algorithm.
//
// The Node is not safe for concurrent use: hosts (the real-time Service or
// the simulator) must serialise every entry point — message delivery, timer
// callbacks and API commands — onto one logical event loop. This mirrors the
// paper's Command Handler architecture and keeps protocol logic lock-free.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"stableleader/id"
	"stableleader/internal/clock"
	"stableleader/internal/election"
	"stableleader/internal/group"
	"stableleader/internal/linkest"
	"stableleader/internal/metrics"
	"stableleader/internal/obs"
	"stableleader/internal/outbound"
	"stableleader/internal/subs"
	"stableleader/internal/wire"
	"stableleader/qos"
)

// Runtime is everything a Node needs from its host: a clock, timers, a
// transmit primitive and a deterministic random stream. Implementations:
// simnet.NodeRuntime (virtual time) and the real-time Service adapter.
type Runtime interface {
	clock.Clock
	// Send transmits m to process to. Best effort; may drop silently.
	Send(to id.Process, m wire.Message)
	// Rand is the node-local random stream (gossip target selection).
	Rand() *rand.Rand
}

// BatchSender is optionally implemented by runtimes whose transport can
// move several datagrams per kernel crossing (the UDP transport's
// sendmmsg plane): the node wires the outbound scheduler's gathered
// drains (FlushAll) through it instead of one Send per destination.
// Same ownership rules as Send, applied per entry; the slice is scratch,
// not retained. Runtimes without it (the simulator) see the per-
// destination Send calls unchanged, byte for byte.
type BatchSender interface {
	SendBatch(batch []outbound.Flushed)
}

// Errors returned by the Node API.
var (
	ErrAlreadyJoined = errors.New("core: group already joined")
	ErrNotJoined     = errors.New("core: group not joined")
	ErrStopped       = errors.New("core: node is stopped")
	// ErrNotLeader reports a deposition request on a group the local
	// process does not currently lead (or whose election core cannot
	// express a rank transfer — Ωid).
	ErrNotLeader = errors.New("core: not the group's leader")
	// ErrNoStandby reports a deposition request with nobody to hand the
	// group to: no live standby is nominated, or the handover plane is
	// disabled for the group.
	ErrNoStandby = errors.New("core: no live standby to hand over to")
)

// LeaderInfo describes one group's leadership as seen by the local node.
type LeaderInfo struct {
	// Group is the group this information concerns.
	Group id.Group
	// Leader is the elected process; empty when Elected is false.
	Leader id.Process
	// Incarnation is the leader's incarnation.
	Incarnation int64
	// Elected reports whether a leader is currently known. A false value
	// means the group looks leaderless from here (e.g. mid-election).
	Elected bool
	// At is when this view was adopted locally.
	At time.Time
}

// Same reports whether two views name the same leadership state (ignoring
// adoption time).
func (l LeaderInfo) Same(o LeaderInfo) bool {
	return l.Group == o.Group && l.Elected == o.Elected &&
		l.Leader == o.Leader && l.Incarnation == o.Incarnation
}

// JoinOptions configures membership in one group, mirroring the paper's
// join parameters: candidacy, notification mode and failure detection QoS.
type JoinOptions struct {
	// Candidate marks this process as willing to lead the group.
	Candidate bool
	// Algorithm selects the election core (default election.OmegaL).
	Algorithm election.Kind
	// QoS is the failure detection requirement used within this group
	// (default qos.Default(), the paper's setting).
	QoS qos.Spec
	// Seeds are processes contacted with the initial JOIN announcements.
	// Membership then spreads by gossip, so seeds need not be exhaustive.
	Seeds []id.Process
	// OnLeaderChange, if set, is the interrupt-mode notification: it is
	// invoked on the node's event loop whenever the local leader view
	// changes. Query mode (Node.Leader) works regardless.
	OnLeaderChange func(LeaderInfo)
	// OnMembership, if set, reports one member entering (joined=true) or
	// leaving (joined=false) this node's active view of the group. A
	// restart (new incarnation of a known member) reports a leave of the
	// old lifetime followed by a join of the new one. Invoked on the
	// node's event loop.
	OnMembership func(m group.Member, joined bool)
	// OnTrustChange, if set, reports every failure detector edge for a
	// fellow member: trusted=false when the member becomes suspected,
	// trusted=true when trust is restored. Invoked on the node's event
	// loop, before the election algorithm reacts to the edge.
	OnTrustChange func(p id.Process, incarnation int64, trusted bool)
	// OnReconfigured, if set, reports that the QoS configurator adopted
	// new failure detection parameters (η, δ) for the link from p.
	// Invoked on the node's event loop.
	OnReconfigured func(p id.Process, params qos.Params)
	// OnStandbyChange, if set, reports changes of the group's warm
	// standby as seen locally: the member the current leader nominated to
	// take over on a planned handover, announced in the heartbeat stream.
	// An empty p means no standby is currently known. Invoked on the
	// node's event loop.
	OnStandbyChange func(p id.Process, incarnation int64)
	// OnStatus, if set, receives a freshly built snapshot of the group's
	// complete membership/FD status (the rows Node.Status would return)
	// whenever it changes: membership deltas, trust edges and QoS
	// reconfigurations. The slice is never mutated after the call —
	// hosts publish it copy-on-write to lock-free readers. Invoked on
	// the node's event loop.
	OnStatus func([]MemberStatus)
	// HelloInterval is the group maintenance gossip period (default 1s).
	HelloInterval time.Duration
	// GossipFanout is how many members each HELLO round targets (default 3).
	GossipFanout int
	// ReconfigureInterval is the FD configurator period (default 1s).
	ReconfigureInterval time.Duration
	// DisableStartupGrace removes the window during which a freshly
	// started process hides self-leadership claims. It exists for ablation
	// experiments only: without the grace, a leader that crashes and
	// recovers inside the detection bound transiently re-elects itself
	// against the group's stale views, inflating the mistake rate.
	DisableStartupGrace bool
	// DisableHandover turns off the warm-standby and planned-handover
	// plane for this group: no standby is nominated or announced, graceful
	// departures fail over reactively (peers wait out the failure
	// detector), and received STANDBY/HANDOVER messages are ignored. It
	// exists as the before/after baseline of the handover experiments.
	DisableHandover bool
}

// withDefaults fills unset options.
func (o JoinOptions) withDefaults() JoinOptions {
	if o.QoS == (qos.Spec{}) {
		o.QoS = qos.Default()
	}
	if o.HelloInterval <= 0 {
		o.HelloInterval = time.Second
	}
	if o.GossipFanout <= 0 {
		o.GossipFanout = 3
	}
	if o.ReconfigureInterval <= 0 {
		o.ReconfigureInterval = time.Second
	}
	return o
}

// estEntry is a per-remote link estimator shared across the node's groups
// (the cost-sharing architecture of Section 4).
type estEntry struct {
	est *linkest.Estimator
	inc int64
}

// Node is one process's service instance.
type Node struct {
	self   id.Process
	inc    int64
	rt     Runtime
	groups map[id.Group]*groupState
	est    map[id.Process]*estEntry
	out    *outbound.Scheduler
	pacers map[id.Process]*pacer
	// subs is the client-plane subscriber registry; nil unless the node
	// was built with WithClientPlane.
	subs *subs.Registry
	// obs is the node's slice of the host's observability registry; nil
	// when the host runs without one (the simulator). Every obs.Shard
	// method is nil-safe, so instrumentation sites need no guards.
	obs     *obs.Shard
	stopped bool
}

// nodeConfig is the result of applying NodeOptions.
type nodeConfig struct {
	coalesce    bool
	counters    *metrics.PacketCounters
	clientPlane bool
	clientCfg   subs.Config
	incarnation int64
	obs         *obs.Shard
}

// NodeOption configures a Node at construction.
type NodeOption func(*nodeConfig)

// WithCoalescing switches the outbound packet scheduler's coalescing on or
// off (default on). Off means every message ships as its own datagram —
// the pre-batching behaviour, kept for ablation experiments.
func WithCoalescing(enabled bool) NodeOption {
	return func(c *nodeConfig) { c.coalesce = enabled }
}

// WithPacketCounters installs the counter set the outbound scheduler
// reports datagram/batch/coalescing accounting to.
func WithPacketCounters(pc *metrics.PacketCounters) NodeOption {
	return func(c *nodeConfig) { c.counters = pc }
}

// WithIncarnation fixes the node's incarnation number instead of deriving
// it from the runtime clock. A sharded host runs one Node per shard but is
// still ONE process lifetime to the rest of the cluster: every shard's
// node must announce the same incarnation, or peers would treat the
// shards as repeated restarts of the process. inc must be strictly greater
// than any incarnation a previous lifetime of this process announced;
// zero means "derive from the clock" (the default).
func WithIncarnation(inc int64) NodeOption {
	return func(c *nodeConfig) { c.incarnation = inc }
}

// WithClientPlane turns on the remote client plane: the node answers
// SUBSCRIBE/LEASE_RENEW/UNSUBSCRIBE messages from non-member processes and
// keeps them informed of leadership with lease-bounded LEADER_SNAPSHOTs
// (fan-out on leader-change edges plus staggered re-advertisement, all
// through the outbound coalescing path). cfg tunes the registry: the
// identity, clock and send fields are supplied by the node and ignored.
func WithClientPlane(cfg subs.Config) NodeOption {
	return func(c *nodeConfig) {
		c.clientPlane = true
		c.clientCfg = cfg
	}
}

// WithObs installs the host's per-shard observability slot: protocol
// counters, the leaderless-duration histogram and the flight recorder
// all write through it on the node's event loop (plain stores — the
// slot is owned by the loop like the rest of the node's state). A nil
// slot (or omitting the option) disables instrumentation.
func WithObs(sh *obs.Shard) NodeOption {
	return func(c *nodeConfig) { c.obs = sh }
}

// NewNode creates a node for process self. The incarnation is the start
// time in nanoseconds, strictly increasing across restarts of the same
// process.
func NewNode(self id.Process, rt Runtime, opts ...NodeOption) *Node {
	cfg := nodeConfig{coalesce: true}
	for _, o := range opts {
		o(&cfg)
	}
	inc := cfg.incarnation
	if inc == 0 {
		inc = rt.Now().UnixNano()
	}
	n := &Node{
		self:   self,
		inc:    inc,
		rt:     rt,
		groups: make(map[id.Group]*groupState),
		est:    make(map[id.Process]*estEntry),
		pacers: make(map[id.Process]*pacer),
		obs:    cfg.obs,
	}
	ocfg := outbound.Config{
		Clock:    rt,
		Emit:     rt.Send,
		Counters: cfg.counters,
		Disabled: !cfg.coalesce,
	}
	if bs, ok := rt.(BatchSender); ok {
		ocfg.EmitBatch = bs.SendBatch
	}
	n.out = outbound.New(ocfg)
	if cfg.clientPlane {
		sc := cfg.clientCfg
		sc.Self = self
		sc.Incarnation = n.inc
		sc.Clock = rt
		sc.Obs = cfg.obs
		sc.Send = func(to id.Process, m wire.Message, urgent bool) {
			if urgent {
				n.sendNow(to, m)
			} else {
				n.sendLazy(to, m)
			}
		}
		sc.Leader = func(g id.Group) (subs.View, bool) {
			gs, ok := n.groups[g]
			if !ok || gs.stopped {
				return subs.View{}, false
			}
			return clientView(gs.currentInfo()), true
		}
		n.subs = subs.New(sc)
	}
	return n
}

// clientView converts a leader view for the client plane.
func clientView(li LeaderInfo) subs.View {
	return subs.View{
		Leader:      li.Leader,
		Incarnation: li.Incarnation,
		Elected:     li.Elected,
		At:          li.At,
	}
}

// ClientStats summarises the client-plane registry. ok is false when the
// node was built without a client plane.
func (n *Node) ClientStats() (st subs.Stats, ok bool) {
	if n.subs == nil {
		return subs.Stats{}, false
	}
	return n.subs.Stats(), true
}

// OutboundStaged reports the outbound scheduler's current staging
// depth: messages waiting in coalescing envelopes, and across how many
// destinations. Loop-owned like the scheduler itself — hosts read it
// from the owning event loop at scrape time.
//
//leadervet:onLoop
func (n *Node) OutboundStaged() (msgs, dests int) { return n.out.Staged() }

// Self returns the local process id.
func (n *Node) Self() id.Process { return n.self }

// Incarnation returns the node's incarnation number.
func (n *Node) Incarnation() int64 { return n.inc }

// Groups returns the ids of the currently joined groups.
func (n *Node) Groups() []id.Group {
	out := make([]id.Group, 0, len(n.groups))
	for g := range n.groups {
		out = append(out, g)
	}
	return out
}

// estimatorFor returns the shared estimator for the link from p, resetting
// it when p restarted with a newer incarnation (sequence numbering and link
// history restart with the process).
func (n *Node) estimatorFor(p id.Process, inc int64) *linkest.Estimator {
	e := n.est[p]
	if e == nil {
		e = &estEntry{est: linkest.New(), inc: inc}
		n.est[p] = e
	}
	if inc > e.inc {
		e.est.Reset()
		e.inc = inc
	}
	return e.est
}

// Join enters group g with the given options and starts electing a leader.
func (n *Node) Join(g id.Group, opts JoinOptions) error {
	if n.stopped {
		return ErrStopped
	}
	if _, ok := n.groups[g]; ok {
		return fmt.Errorf("%w: %q", ErrAlreadyJoined, g)
	}
	if err := opts.withDefaults().QoS.Validate(); err != nil {
		return err
	}
	gs := newGroupState(n, g, opts.withDefaults())
	n.groups[g] = gs
	gs.start()
	return nil
}

// Leave departs group g gracefully: a LEAVE is announced so the group
// re-elects immediately if this process was the leader.
func (n *Node) Leave(g id.Group) error {
	gs, ok := n.groups[g]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotJoined, g)
	}
	gs.leave()
	delete(n.groups, g)
	return nil
}

// Leader returns the current leader view for group g.
func (n *Node) Leader(g id.Group) (LeaderInfo, error) {
	gs, ok := n.groups[g]
	if !ok {
		return LeaderInfo{}, fmt.Errorf("%w: %q", ErrNotJoined, g)
	}
	return gs.currentInfo(), nil
}

// Standby returns group g's current warm standby as seen locally: the
// member the leader nominated to take over on a planned handover. An empty
// process means none is known (no leader, no eligible follower, or the
// handover plane is disabled). Like every Node method, callers must be on
// the owning event loop.
//
//leadervet:onLoop
func (n *Node) Standby(g id.Group) (id.Process, int64, error) {
	gs, ok := n.groups[g]
	if !ok {
		return "", 0, fmt.Errorf("%w: %q", ErrNotJoined, g)
	}
	return gs.standby, gs.standbyInc, nil
}

// Depose hands group g's leadership — which the local process must
// currently hold — to the warm standby immediately: an urgent HANDOVER
// grants the standby the group-minimal rank, so every receiver elects it
// in one event instead of waiting out the failure detector. The local
// process stays in the group as an ordinary member (and future candidate).
func (n *Node) Depose(g id.Group) error {
	if n.stopped {
		return ErrStopped
	}
	gs, ok := n.groups[g]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotJoined, g)
	}
	return gs.depose()
}

// MemberStatus is one fellow group member as seen by the local failure
// detection layer — the query surface of the underlying shared FD service
// (Section 4 of the paper).
type MemberStatus struct {
	// ID and Incarnation identify the member lifetime.
	ID          id.Process
	Incarnation int64
	// Candidate reports whether the member competes for leadership.
	Candidate bool
	// Self marks the local process's own row.
	Self bool
	// Trusted is the failure detector's current verdict (always true for
	// the local process). Under OmegaL, silent processes that voluntarily
	// dropped out of the competition legitimately show as untrusted.
	Trusted bool
	// Interval and Timeout are the failure detector parameters (η, δ)
	// currently configured for the link from this member.
	Interval time.Duration
	Timeout  time.Duration
}

// Status returns the membership and failure detection state of group g,
// sorted by member id.
func (n *Node) Status(g id.Group) ([]MemberStatus, error) {
	gs, ok := n.groups[g]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotJoined, g)
	}
	return gs.statusRows(), nil
}

// Stop halts the node abruptly (crash semantics: no LEAVE is sent, staged
// outbound traffic is dropped). Use Leave first for a graceful departure.
func (n *Node) Stop() {
	if n.stopped {
		return
	}
	n.stopped = true
	for g, gs := range n.groups {
		gs.shutdown()
		delete(n.groups, g)
	}
	if n.subs != nil {
		n.subs.Stop()
	}
	n.out.Stop()
}

// HandleMessage dispatches one received datagram: a protocol message, or a
// Batch envelope whose inner messages dispatch individually. Hosts call it
// on the node's event loop.
//
//leadervet:hotpath
func (n *Node) HandleMessage(m wire.Message) {
	if n.stopped || m == nil {
		return
	}
	if b, ok := m.(*wire.Batch); ok {
		for _, inner := range b.Msgs {
			if n.stopped {
				return // an inner message may tear the node down
			}
			if inner == nil {
				continue
			}
			if _, nested := inner.(*wire.Batch); nested {
				continue // batches never nest; drop hostile framing
			}
			n.handleOne(inner)
		}
		return
	}
	n.handleOne(m)
}

// handleOne dispatches a single protocol message.
//
//leadervet:hotpath
func (n *Node) handleOne(m wire.Message) {
	if m.From() == n.self {
		// A process never processes its own traffic (possible with
		// broadcast transports).
		return
	}
	// Client-plane traffic routes to the subscriber registry: the senders
	// are non-members, and an unserved group must still be answered (with
	// a tombstone), so this dispatch precedes the membership lookup.
	switch t := m.(type) {
	case *wire.Subscribe:
		if n.subs != nil {
			n.subs.HandleSubscribe(t)
		}
		return
	case *wire.LeaseRenew:
		if n.subs != nil {
			n.subs.HandleRenew(t)
		}
		return
	case *wire.Unsubscribe:
		if n.subs != nil {
			n.subs.HandleUnsubscribe(t)
		}
		return
	case *wire.LeaderSnapshot:
		// Client-bound; a service node receiving one drops it.
		return
	case *wire.SuccessorHint:
		// Client-bound half of a goodbye; a service node drops it too.
		return
	}
	gs, ok := n.groups[m.GroupID()]
	if !ok {
		return
	}
	switch t := m.(type) {
	case *wire.Join:
		gs.handleJoin(t)
	case *wire.Leave:
		gs.handleLeave(t)
	case *wire.Hello:
		gs.handleHello(t)
	case *wire.Alive:
		gs.handleAlive(t)
	case *wire.Accuse:
		gs.handleAccuse(t)
	case *wire.Rate:
		gs.handleRate(t)
	case *wire.Standby:
		gs.handleStandby(t)
	case *wire.Handover:
		gs.handleHandover(t)
	}
}

// sendNow enqueues m for to on the urgent path: the destination's staging
// buffer is flushed synchronously, m included, preserving per-peer order.
//
//leadervet:hotpath
func (n *Node) sendNow(to id.Process, m wire.Message) {
	n.out.Enqueue(to, m, 0)
}

// sendLazy enqueues m for to on the coalescing path: m may wait up to the
// link's coalescing delay for companions bound to the same peer.
//
//leadervet:hotpath
func (n *Node) sendLazy(to id.Process, m wire.Message) {
	n.out.Enqueue(to, m, n.coalesceDelayFor(to))
}
