package core

import (
	"time"

	"stableleader/id"
	"stableleader/internal/clock"
)

// maxCoalesceDelay caps how long any message may wait in the outbound
// scheduler for companions. Two milliseconds is invisible against the
// default 1s detection bound but long enough to merge a burst of per-group
// heartbeats into one datagram.
const maxCoalesceDelay = 2 * time.Millisecond

// pacer aligns the heartbeat streams of every group toward one destination
// so that a node in G groups wakes once per interval and emits all G ALIVEs
// back to back — which the outbound scheduler then coalesces into a single
// datagram. This replaces the per-(group, destination) timers the node used
// to run: one timer per peer instead of one per stream, the timer-side half
// of the paper's shared-infrastructure argument.
type pacer struct {
	n       *Node
	dest    id.Process
	streams map[id.Group]*hbStream
	// timer is re-armable and lives as long as the pacer: the per-wake
	// re-arm is an O(1) splice on wheel-backed clocks, so the pacer costs
	// zero runtime-timer allocations in steady state.
	timer clock.Rearmer
	minIv time.Duration
}

// hbStream is one group's heartbeat schedule toward the pacer's peer.
type hbStream struct {
	gs  *groupState
	ds  *destState
	due time.Time
}

// pacerFor returns (creating if needed) the pacer toward dest.
func (n *Node) pacerFor(dest id.Process) *pacer {
	pp := n.pacers[dest]
	if pp == nil {
		pp = &pacer{n: n, dest: dest, streams: make(map[id.Group]*hbStream)}
		pp.timer = clock.NewTimer(n.rt, pp.tick)
		n.pacers[dest] = pp
	}
	return pp
}

// registerStream starts gs's heartbeat stream toward dest: an immediate
// greeting (election rounds must not wait a full interval) and then paced
// sends. A new stream adopts the pacer's existing phase when that phase is
// earlier than its own natural one, so equal-interval streams converge onto
// one wake-up — sending early is always safe (a heartbeat is stamped with
// its interval, so an early one is simply fresher at the receiver).
func (n *Node) registerStream(gs *groupState, dest id.Process, ds *destState) {
	pp := n.pacerFor(dest)
	gs.sendAliveTo(dest, ds)
	due := n.rt.Now().Add(gs.intervalFor(ds))
	if e, ok := pp.earliest(); ok && e.Before(due) {
		due = e
	}
	pp.streams[gs.gid] = &hbStream{gs: gs, ds: ds, due: due}
	pp.refresh()
	pp.rearm()
}

// dropStream stops gid's heartbeat stream toward dest, removing the pacer
// when its last stream goes.
func (n *Node) dropStream(gid id.Group, dest id.Process) {
	pp := n.pacers[dest]
	if pp == nil {
		return
	}
	if _, ok := pp.streams[gid]; !ok {
		return
	}
	delete(pp.streams, gid)
	if len(pp.streams) == 0 {
		pp.timer.Stop()
		// An already-queued callback is disarmed by tick's identity check
		// (n.pacers no longer maps dest to this pacer).
		delete(n.pacers, dest)
		return
	}
	pp.refresh()
	pp.rearm()
}

// retimeStream moves gid's stream toward dest to a new due time (a RATE
// request changed the interval; the next heartbeat is re-anchored to the
// last one actually sent, so repeated RATEs cannot starve the stream).
func (n *Node) retimeStream(gid id.Group, dest id.Process, due time.Time) {
	pp := n.pacers[dest]
	if pp == nil {
		return
	}
	st := pp.streams[gid]
	if st == nil {
		return
	}
	st.due = due
	pp.refresh()
	pp.rearm()
}

// coalesceDelayFor derives the outbound coalescing delay for traffic to
// to from the link's heartbeat cadence: an eighth of the fastest interval,
// capped at maxCoalesceDelay. Peers we send no heartbeats to get a
// conservative default.
func (n *Node) coalesceDelayFor(to id.Process) time.Duration {
	d := time.Millisecond
	if pp := n.pacers[to]; pp != nil && pp.minIv > 0 {
		d = pp.minIv / 8
	}
	if d > maxCoalesceDelay {
		d = maxCoalesceDelay
	}
	return d
}

// earliest returns the soonest due time across streams.
func (pp *pacer) earliest() (time.Time, bool) {
	var e time.Time
	found := false
	for _, st := range pp.streams {
		if !found || st.due.Before(e) {
			e, found = st.due, true
		}
	}
	return e, found
}

// refresh recomputes the cached minimum interval. Called on the rare
// stream-set or rate changes, never per send.
func (pp *pacer) refresh() {
	pp.minIv = 0
	for _, st := range pp.streams {
		iv := st.gs.intervalFor(st.ds)
		if pp.minIv == 0 || iv < pp.minIv {
			pp.minIv = iv
		}
	}
}

// rearm schedules the next wake-up at the earliest due time.
func (pp *pacer) rearm() {
	e, ok := pp.earliest()
	if !ok {
		return
	}
	pp.timer.Reset(e.Sub(pp.n.rt.Now()))
}

// tick is the timer callback. A stale callback (the pacer was dropped, or
// the node stopped, after the fire was already queued) is discarded by
// the identity check; a merely re-armed wake-up is harmless because fire
// only sends streams actually due.
func (pp *pacer) tick() {
	if pp.n.stopped || pp.n.pacers[pp.dest] != pp {
		return
	}
	pp.fire()
}

// fire sends every stream due now — including streams due within a quarter
// interval, pulled forward so they share the wake-up and the datagram. The
// early-send slack costs at most a third more heartbeats on a stream in the
// worst case and is what keeps unequal phases from persisting forever.
func (pp *pacer) fire() {
	now := pp.n.rt.Now()
	for _, gid := range sortedKeys(pp.streams) {
		st := pp.streams[gid]
		if st.gs.stopped || !st.gs.active {
			continue // unregistration is in flight; do not send
		}
		iv := st.gs.intervalFor(st.ds)
		if st.due.After(now.Add(iv / 4)) {
			continue
		}
		st.gs.sendAliveTo(pp.dest, st.ds)
		st.due = now.Add(iv)
	}
	pp.rearm()
}
