package core

import (
	"time"

	"stableleader/id"
	"stableleader/internal/clock"
	"stableleader/internal/election"
	"stableleader/internal/fd"
	"stableleader/internal/group"
	"stableleader/internal/obs"
	"stableleader/internal/wire"
	"stableleader/qos"
)

// Join announcement schedule: the initial JOIN plus retries beat message
// loss; afterwards HELLO gossip keeps membership converged.
const (
	joinAnnounceCount = 4
	joinAnnounceEvery = 300 * time.Millisecond

	// minRate/maxRate clamp RATE requests from remote monitors so a
	// confused or malicious peer cannot drive our send rate to extremes.
	minRateInterval = time.Millisecond
	maxRateInterval = 10 * time.Second
)

// Warm-standby plane constants.
const (
	// standbyRefreshEvery is the per-destination re-announcement period of
	// the leader's standby nomination. The STANDBY rides the heartbeat
	// datagram already going to the peer (enqueued on the coalescing path
	// right before the ALIVE), so the refresh repairs announcement loss at
	// zero extra steady-state packets.
	standbyRefreshEvery = time.Second

	// standbyLivenessFactor scales HelloInterval into the window within
	// which a silent follower must have been heard (HELLO gossip, RATE
	// requests, ...) to stay nominable. ΩL followers stop heartbeating on
	// purpose, so the failure detector legitimately distrusts them and
	// group-maintenance traffic is the only liveness signal left.
	standbyLivenessFactor = 4
)

// monitorEntry pairs a failure detector monitor with the incarnation it
// watches. lastHeard is the liveness evidence for standby nomination:
// when any group traffic arrives from the member (see noteHeard).
type monitorEntry struct {
	mon       *fd.Monitor
	inc       int64
	lastHeard time.Time
}

// destState is the per-(group, destination) heartbeat stream state. The
// timer that used to live here moved into the node-level pacer, which wakes
// once per peer and services every group's stream in one burst.
type destState struct {
	interval time.Duration // requested via RATE; 0 means default
	seq      uint64
	lastSent time.Time
	// standbyAt is when this destination last received a STANDBY
	// announcement; zero forces one onto the next heartbeat (newcomers,
	// nomination changes).
	standbyAt time.Time
}

// groupState is one group's complete machinery on a node. It implements
// election.Env for its algorithm.
type groupState struct {
	n    *Node
	gid  id.Group
	opts JoinOptions

	table    *group.Table
	algo     election.Algorithm
	monitors map[id.Process]*monitorEntry
	dests    map[id.Process]*destState

	active   bool
	lastInfo LeaderInfo

	// Warm-standby plane (loop-owned). As leader, standby/standbyInc is
	// the follower we nominate and announce in the heartbeat stream
	// (standbySeq numbers the announcements); as follower, it is the view
	// adopted from the leader's STANDBY stream, guarded by
	// (standbyFromInc, standbyFromSeq).
	standby        id.Process //leadervet:loopOwned
	standbyInc     int64      //leadervet:loopOwned
	standbySeq     uint64     //leadervet:loopOwned
	standbyFromInc int64      //leadervet:loopOwned
	standbyFromSeq uint64     //leadervet:loopOwned

	// leaderlessAt is when the current leaderless window opened (we held
	// an elected view and lost it); zero while elected or before the
	// first loss. It feeds the observability plane's leaderless-duration
	// histogram on the re-election edge.
	leaderlessAt time.Time //leadervet:loopOwned

	// lastActive is the previous active membership view, kept so that
	// membership changes can be reported as per-member deltas.
	lastActive map[id.Process]group.Member

	// membersCache memoises table.Active() between table changes; the
	// election cores read the membership on every event.
	membersCache   []group.Member
	membersVersion uint64
	membersValid   bool

	helloTimer clock.Rearmer
	joinTimer  clock.Rearmer
	joinsLeft  int

	stopped bool
}

var _ election.Env = (*groupState)(nil)

func newGroupState(n *Node, gid id.Group, opts JoinOptions) *groupState {
	gs := &groupState{
		n:        n,
		gid:      gid,
		opts:     opts,
		table:    group.NewTable(),
		monitors: make(map[id.Process]*monitorEntry),
		dests:    make(map[id.Process]*destState),
	}
	gs.helloTimer = clock.NewTimer(n.rt, gs.helloTick)
	gs.joinTimer = clock.NewTimer(n.rt, gs.announceJoin)
	return gs
}

// start runs the join sequence: seed the table with ourselves, start the
// election core, announce the join, and begin gossiping.
func (gs *groupState) start() {
	gs.table.Upsert(group.Member{
		ID:          gs.n.self,
		Incarnation: gs.n.inc,
		Candidate:   gs.opts.Candidate,
	})
	gs.algo = election.New(gs.opts.Algorithm, gs)
	gs.lastInfo = LeaderInfo{Group: gs.gid, At: gs.n.rt.Now()}
	// Seed the delta baseline with the initial view (just ourselves) so
	// OnMembership reports only changes after the join.
	gs.lastActive = map[id.Process]group.Member{}
	for _, m := range gs.table.Active() {
		gs.lastActive[m.ID] = m
	}
	gs.algo.Start()
	gs.syncPeers()
	gs.joinsLeft = joinAnnounceCount
	gs.announceJoin()
	gs.scheduleHello()
	// The startup grace hides self-claims time-dependently; re-evaluate the
	// reported leader the moment it expires (plus a hair, so Now() is
	// strictly past the deadline).
	gs.n.rt.AfterFunc(gs.StartupGrace()+time.Millisecond, func() {
		if !gs.stopped {
			gs.afterEvent()
		}
	})
	gs.afterEvent()
	gs.publishStatus()
}

// --- election.Env -----------------------------------------------------

// Self implements election.Env.
func (gs *groupState) Self() id.Process { return gs.n.self }

// Incarnation implements election.Env.
func (gs *groupState) Incarnation() int64 { return gs.n.inc }

// Now implements election.Env.
func (gs *groupState) Now() time.Time { return gs.n.rt.Now() }

// Members implements election.Env.
func (gs *groupState) Members() []group.Member {
	if !gs.membersValid || gs.membersVersion != gs.table.Version() {
		gs.membersCache = gs.table.Active()
		gs.membersVersion = gs.table.Version()
		gs.membersValid = true
	}
	return gs.membersCache
}

// SendAccuse implements election.Env. Accusations are latency-critical
// (they close the window in which a demoted leader can flap back), so they
// bypass coalescing and flush the peer's staged traffic with them.
func (gs *groupState) SendAccuse(to id.Process, targetInc int64, phase uint32) {
	// An accusation is the rank-change half of an election: it raises the
	// target's accusation time everywhere it lands.
	gs.n.obs.Inc(obs.CAccusationsOut)
	gs.n.obs.Record(obs.KindRankChange, gs.gid, to, targetInc, int64(phase), gs.n.rt.Now())
	gs.n.sendNow(to, &wire.Accuse{
		Group:             gs.gid,
		Sender:            gs.n.self,
		Incarnation:       gs.n.inc,
		TargetIncarnation: targetInc,
		Phase:             phase,
		At:                gs.n.rt.Now().UnixNano(),
	})
}

// StartupGrace implements election.Env: one detection time is long enough
// for a live incumbent's heartbeat to reach a fresh joiner.
func (gs *groupState) StartupGrace() time.Duration {
	if gs.opts.DisableStartupGrace {
		return 0
	}
	return gs.opts.QoS.DetectionTime
}

// SetActive implements election.Env: it switches ALIVE emission on or off.
// Activation registers a heartbeat stream per destination with the node's
// pacer, which greets each immediately (election rounds must not wait a
// full interval).
func (gs *groupState) SetActive(active bool) {
	if gs.active == active || gs.stopped {
		return
	}
	gs.active = active
	for _, dest := range sortedKeys(gs.dests) {
		if active {
			gs.n.registerStream(gs, dest, gs.dests[dest])
		} else {
			gs.n.dropStream(gs.gid, dest)
		}
	}
}

// --- heartbeats --------------------------------------------------------

// intervalFor is the heartbeat interval toward a destination: what the
// destination requested via RATE, or TdU/5 until it does.
func (gs *groupState) intervalFor(ds *destState) time.Duration {
	if ds.interval > 0 {
		return ds.interval
	}
	return gs.opts.QoS.DetectionTime / 5
}

// sendAliveTo emits one heartbeat to dest through the coalescing path.
// When we lead and the destination's standby announcement is due, the
// STANDBY is enqueued right before the ALIVE so both coalesce into the one
// datagram already leaving — the piggyback that keeps the standby plane at
// zero extra steady-state packets.
//
//leadervet:onLoop
func (gs *groupState) sendAliveTo(dest id.Process, ds *destState) {
	if m := gs.standbyToAnnounce(ds); m != nil {
		gs.n.sendLazy(dest, m)
	}
	ds.seq++
	ds.lastSent = gs.n.rt.Now()
	m := &wire.Alive{
		Group:       gs.gid,
		Sender:      gs.n.self,
		Incarnation: gs.n.inc,
		Seq:         ds.seq,
		SendTime:    gs.n.rt.Now().UnixNano(),
		Interval:    int64(gs.intervalFor(ds)),
	}
	gs.algo.FillAlive(m)
	gs.n.sendLazy(dest, m)
}

// standbyToAnnounce returns the STANDBY announcement due for a heartbeat
// destination, or nil: non-leaders announce nothing, and a leader
// re-announces per destination only every standbyRefreshEvery (loss
// repair) or immediately after a nomination change (standbyAt zeroed).
//
//leadervet:onLoop
func (gs *groupState) standbyToAnnounce(ds *destState) *wire.Standby {
	if gs.opts.DisableHandover {
		return nil
	}
	info := gs.lastInfo
	if !info.Elected || info.Leader != gs.n.self {
		return nil
	}
	now := gs.n.rt.Now()
	if !ds.standbyAt.IsZero() && now.Sub(ds.standbyAt) < standbyRefreshEvery {
		return nil
	}
	ds.standbyAt = now
	gs.standbySeq++
	return &wire.Standby{
		Group:       gs.gid,
		Sender:      gs.n.self,
		Incarnation: gs.n.inc,
		Seq:         gs.standbySeq,
		Standby:     gs.standby,
		StandbyInc:  gs.standbyInc,
	}
}

// --- peer bookkeeping ---------------------------------------------------

// syncPeers reconciles monitors and heartbeat destinations with the current
// membership: one monitor and one destination per fellow active member.
// All iteration is in id order so runs are reproducible.
func (gs *groupState) syncPeers() {
	members := gs.table.Active() // sorted by id
	want := make(map[id.Process]group.Member, len(members))
	for _, m := range members {
		if m.ID != gs.n.self {
			want[m.ID] = m
		}
	}
	// Drop peers that left (or whose incarnation was superseded: their
	// monitor must restart from scratch).
	for _, p := range sortedKeys(gs.monitors) {
		entry := gs.monitors[p]
		m, ok := want[p]
		if ok && m.Incarnation == entry.inc {
			continue
		}
		entry.mon.Stop()
		delete(gs.monitors, p)
	}
	for _, p := range sortedKeys(gs.dests) {
		if _, ok := want[p]; ok {
			continue
		}
		gs.n.dropStream(gs.gid, p)
		delete(gs.dests, p)
	}
	// Add new peers in id order.
	for _, m := range members {
		p := m.ID
		if p == gs.n.self {
			continue
		}
		if _, ok := gs.monitors[p]; !ok {
			gs.monitors[p] = gs.newMonitor(p, m.Incarnation)
		}
		if _, ok := gs.dests[p]; !ok {
			ds := &destState{}
			gs.dests[p] = ds
			if gs.active {
				// Registration greets the newcomer immediately so it
				// adopts a leader without waiting a full interval.
				gs.n.registerStream(gs, p, ds)
			}
		}
	}
}

// newMonitor builds the failure detector for peer p.
func (gs *groupState) newMonitor(p id.Process, inc int64) *monitorEntry {
	entry := &monitorEntry{inc: inc}
	entry.mon = fd.NewMonitor(fd.Config{
		Clock:     gs.n.rt,
		Spec:      gs.opts.QoS,
		Estimator: gs.n.estimatorFor(p, inc),
		OnEdge: func(trusted bool) {
			if gs.stopped {
				return
			}
			// Recorded before the algorithm reacts, so a crash-driven
			// election dumps as suspect → rank-change → leader-change.
			if trusted {
				gs.n.obs.Inc(obs.CTrustRestored)
				gs.n.obs.Record(obs.KindTrust, gs.gid, p, entry.inc, 0, gs.n.rt.Now())
			} else {
				gs.n.obs.Inc(obs.CSuspicions)
				gs.n.obs.Record(obs.KindSuspect, gs.gid, p, entry.inc, 0, gs.n.rt.Now())
			}
			if gs.opts.OnTrustChange != nil {
				gs.opts.OnTrustChange(p, entry.inc, trusted)
			}
			if trusted {
				gs.algo.HandleTrust(p, entry.inc)
			} else {
				gs.algo.HandleSuspect(p)
			}
			gs.afterEvent()
			gs.publishStatus()
			// A trust edge changes nomination eligibility; re-rank.
			gs.nominateStandby()
		},
		RequestRate: func(interval time.Duration) {
			gs.n.sendLazy(p, &wire.Rate{
				Group:       gs.gid,
				Sender:      gs.n.self,
				Incarnation: gs.n.inc,
				Interval:    int64(interval),
			})
		},
		OnReconfigure: func(params qos.Params) {
			if gs.stopped {
				return
			}
			if gs.opts.OnReconfigured != nil {
				gs.opts.OnReconfigured(p, params)
			}
			gs.publishStatus()
		},
		ReconfigureInterval: gs.opts.ReconfigureInterval,
		Obs:                 gs.n.obs,
	})
	return entry
}

// ObserveDropout implements election.Observer: the core reports a
// voluntary competition drop-out (ΩL's phase bump, which keeps the
// suspicions our deliberate silence causes from raising our accusation
// time). Runs on the loop like every Env callback.
//
//leadervet:onLoop
func (gs *groupState) ObserveDropout(phase uint32) {
	gs.n.obs.Inc(obs.CDropouts)
	gs.n.obs.Record(obs.KindRankChange, gs.gid, gs.n.self, gs.n.inc, int64(phase), gs.n.rt.Now())
}

// --- group maintenance ---------------------------------------------------

// announceJoin broadcasts JOIN to the seeds and the currently known
// members, with a few retries to beat message loss.
func (gs *groupState) announceJoin() {
	if gs.stopped || gs.joinsLeft <= 0 {
		return
	}
	gs.joinsLeft--
	targets := make(map[id.Process]bool)
	for _, s := range gs.opts.Seeds {
		if s != gs.n.self {
			targets[s] = true
		}
	}
	for _, m := range gs.table.Active() {
		if m.ID != gs.n.self {
			targets[m.ID] = true
		}
	}
	msg := &wire.Join{
		Group:       gs.gid,
		Sender:      gs.n.self,
		Incarnation: gs.n.inc,
		Candidate:   gs.opts.Candidate,
	}
	for _, p := range sortedKeys(targets) {
		gs.n.sendLazy(p, msg)
	}
	if gs.joinsLeft > 0 {
		gs.joinTimer.Reset(joinAnnounceEvery)
	}
}

// scheduleHello arms the next gossip round with jitter so rounds desync
// across the group.
func (gs *groupState) scheduleHello() {
	jitter := 0.75 + 0.5*gs.n.rt.Rand().Float64()
	gs.helloTimer.Reset(time.Duration(float64(gs.opts.HelloInterval) * jitter))
}

// helloTick is one gossip round; it re-arms itself. The round also
// re-ranks the standby nomination: link estimates drift between trust
// edges, and the gossip cadence is a cheap place to track them.
func (gs *groupState) helloTick() {
	if gs.stopped {
		return
	}
	gs.gossip()
	gs.scheduleHello()
	gs.nominateStandby()
}

// gossip sends the membership table to a few random members.
func (gs *groupState) gossip() {
	peers := make([]id.Process, 0, gs.table.Len())
	for _, m := range gs.table.Active() {
		if m.ID != gs.n.self {
			peers = append(peers, m.ID)
		}
	}
	if len(peers) == 0 {
		return
	}
	rng := gs.n.rt.Rand()
	rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	k := gs.opts.GossipFanout
	if k > len(peers) {
		k = len(peers)
	}
	for _, p := range peers[:k] {
		gs.sendHelloTo(p)
	}
}

// sendHelloTo sends our full membership table to p.
func (gs *groupState) sendHelloTo(p id.Process) {
	rows := gs.table.Snapshot()
	members := make([]wire.MemberInfo, len(rows))
	for i, r := range rows {
		members[i] = wire.MemberInfo{
			ID:          r.ID,
			Incarnation: r.Incarnation,
			Candidate:   r.Candidate,
			Left:        r.Left,
		}
	}
	gs.n.sendLazy(p, &wire.Hello{
		Group:       gs.gid,
		Sender:      gs.n.self,
		Incarnation: gs.n.inc,
		Members:     members,
	})
}

// --- message handlers -----------------------------------------------------

// noteHeard records group traffic from p as liveness evidence for standby
// nomination: ΩL followers stop heartbeating on purpose, so the failure
// detector legitimately distrusts them and HELLO/RATE receipt is the only
// signal that they are still there.
func (gs *groupState) noteHeard(p id.Process, inc int64) {
	if entry, ok := gs.monitors[p]; ok && entry.inc == inc {
		entry.lastHeard = gs.n.rt.Now()
	}
}

func (gs *groupState) handleJoin(m *wire.Join) {
	gs.noteHeard(m.Sender, m.Incarnation)
	changed := gs.table.Upsert(group.Member{
		ID:          m.Sender,
		Incarnation: m.Incarnation,
		Candidate:   m.Candidate,
	})
	if changed {
		gs.onMembershipChange()
		// Greet the newcomer with our table so it converges immediately.
		gs.sendHelloTo(m.Sender)
	}
}

func (gs *groupState) handleLeave(m *wire.Leave) {
	changed := gs.table.Upsert(group.Member{
		ID:          m.Sender,
		Incarnation: m.Incarnation,
		Left:        true,
	})
	if changed {
		gs.onMembershipChange()
	}
}

func (gs *groupState) handleHello(m *wire.Hello) {
	gs.noteHeard(m.Sender, m.Incarnation)
	rows := make([]group.Member, len(m.Members))
	for i, r := range m.Members {
		rows[i] = group.Member{
			ID:          r.ID,
			Incarnation: r.Incarnation,
			Candidate:   r.Candidate,
			Left:        r.Left,
		}
	}
	if gs.table.Merge(rows) {
		gs.onMembershipChange()
	}
}

func (gs *groupState) handleAlive(m *wire.Alive) {
	member, ok := gs.table.Get(m.Sender)
	if !ok || member.Left || member.Incarnation != m.Incarnation {
		// Unknown or stale incarnation: membership will catch up through
		// the JOIN retries or gossip; judging liveness from unattributable
		// heartbeats would be unsound.
		return
	}
	now := gs.n.rt.Now()
	delay := now.Sub(time.Unix(0, m.SendTime))
	gs.n.estimatorFor(m.Sender, m.Incarnation).Observe(gs.gid, m.Seq, delay)
	if entry, ok := gs.monitors[m.Sender]; ok {
		entry.lastHeard = now
		entry.mon.Observe(time.Unix(0, m.SendTime), time.Duration(m.Interval), now)
	}
	if gs.stopped {
		// The trust edge may have torn the group down (callback side
		// effects); bail out before touching the algorithm.
		return
	}
	gs.algo.HandleAlive(m)
	gs.afterEvent()
}

func (gs *groupState) handleAccuse(m *wire.Accuse) {
	gs.noteHeard(m.Sender, m.Incarnation)
	gs.n.obs.Inc(obs.CAccusationsIn)
	gs.algo.HandleAccuse(m)
	gs.afterEvent()
}

func (gs *groupState) handleRate(m *wire.Rate) {
	gs.noteHeard(m.Sender, m.Incarnation)
	ds, ok := gs.dests[m.Sender]
	if !ok {
		return
	}
	interval := time.Duration(m.Interval)
	if interval < minRateInterval {
		interval = minRateInterval
	}
	if interval > maxRateInterval {
		interval = maxRateInterval
	}
	if ds.interval == interval {
		return
	}
	ds.interval = interval
	if gs.active {
		// Re-anchor to the last heartbeat actually sent: re-arming from
		// "now" would silently stretch the gap on every rate change, and a
		// monitor repeating its RATE could otherwise starve the very
		// stream it is trying to speed up.
		gs.n.retimeStream(gs.gid, m.Sender, ds.lastSent.Add(interval))
	}
}

// handleStandby adopts the leader's standby nomination. Only the current
// leader's announcements count, and (incarnation, seq) ordering drops
// duplicated or reordered deliveries.
//
//leadervet:onLoop
func (gs *groupState) handleStandby(m *wire.Standby) {
	gs.noteHeard(m.Sender, m.Incarnation)
	if gs.opts.DisableHandover {
		return
	}
	info := gs.lastInfo
	if !info.Elected || info.Leader != m.Sender || info.Incarnation != m.Incarnation {
		return
	}
	if m.Incarnation == gs.standbyFromInc && m.Seq <= gs.standbyFromSeq {
		return
	}
	gs.standbyFromInc, gs.standbyFromSeq = m.Incarnation, m.Seq
	gs.setStandby(m.Standby, m.StandbyInc)
}

// handleHandover feeds a planned handover to the election core; the core
// itself guards that the sender is our current leader.
func (gs *groupState) handleHandover(m *wire.Handover) {
	gs.noteHeard(m.Sender, m.Incarnation)
	if gs.opts.DisableHandover {
		return
	}
	gs.n.obs.Inc(obs.CHandoversRecv)
	gs.n.obs.Record(obs.KindHandover, gs.gid, m.Successor, m.SuccessorInc, 0, gs.n.rt.Now())
	gs.algo.HandleHandover(m)
	gs.afterEvent()
}

// onMembershipChange reconciles peers, reports membership deltas, and
// informs the algorithm.
func (gs *groupState) onMembershipChange() {
	gs.syncPeers()
	gs.reportMembershipDelta()
	gs.algo.HandleMembership()
	gs.afterEvent()
	gs.publishStatus()
	gs.nominateStandby()
}

// reportMembershipDelta diffs the active view against the previous one and
// fires OnMembership for each member that entered or left it. A member
// superseded by a newer incarnation reports as leave-then-join.
func (gs *groupState) reportMembershipDelta() {
	cur := gs.Members() // sorted by id; also primes the memoised cache
	next := make(map[id.Process]group.Member, len(cur))
	for _, m := range cur {
		next[m.ID] = m
	}
	if gs.opts.OnMembership == nil {
		gs.lastActive = next
		return
	}
	// Departures first (in id order, for reproducibility).
	for _, p := range sortedKeys(gs.lastActive) {
		old := gs.lastActive[p]
		m, ok := next[p]
		if !ok || m.Incarnation != old.Incarnation {
			gs.opts.OnMembership(old, false)
		}
	}
	for _, m := range cur {
		old, ok := gs.lastActive[m.ID]
		if !ok || old.Incarnation != m.Incarnation {
			gs.opts.OnMembership(m, true)
		}
	}
	gs.lastActive = next
}

// --- leadership notification ----------------------------------------------

// statusRows builds the group's membership/FD status, sorted by member
// id: the rows behind Node.Status and the OnStatus snapshots.
func (gs *groupState) statusRows() []MemberStatus {
	members := gs.table.Active()
	out := make([]MemberStatus, 0, len(members))
	for _, m := range members {
		st := MemberStatus{
			ID:          m.ID,
			Incarnation: m.Incarnation,
			Candidate:   m.Candidate,
			Self:        m.ID == gs.n.self,
			Trusted:     m.ID == gs.n.self,
		}
		if entry, ok := gs.monitors[m.ID]; ok {
			st.Trusted = entry.mon.Trusted()
			p := entry.mon.Params()
			st.Interval, st.Timeout = p.Interval, p.Timeout
		}
		out = append(out, st)
	}
	return out
}

// publishStatus hands the host a fresh status snapshot. Called at every
// status-visible edge — membership deltas, trust edges, reconfigurations
// — never per heartbeat, so the O(members) copy prices the rare event,
// not the steady state.
func (gs *groupState) publishStatus() {
	if gs.stopped || gs.opts.OnStatus == nil {
		return
	}
	gs.opts.OnStatus(gs.statusRows())
}

// currentInfo derives the LeaderInfo from the algorithm's present answer.
func (gs *groupState) currentInfo() LeaderInfo {
	m, ok := gs.algo.Leader()
	if !ok {
		return LeaderInfo{Group: gs.gid, At: gs.lastInfo.At}
	}
	return LeaderInfo{
		Group:       gs.gid,
		Leader:      m.ID,
		Incarnation: m.Incarnation,
		Elected:     true,
		At:          gs.lastInfo.At,
	}
}

// afterEvent runs after every event delivered to the algorithm: it detects
// leader view changes and fires the interrupt callback.
func (gs *groupState) afterEvent() {
	if gs.stopped {
		return
	}
	info := gs.currentInfo()
	if info.Same(gs.lastInfo) {
		return
	}
	info.At = gs.n.rt.Now()
	prev := gs.lastInfo
	gs.lastInfo = info
	gs.noteLeaderEdge(prev, info)
	if gs.opts.OnLeaderChange != nil {
		gs.opts.OnLeaderChange(info)
	}
	if gs.n.subs != nil {
		// The client plane shares the interrupt edge: remote subscribers
		// learn of the change in the same event that notified local ones.
		gs.n.subs.PublishLeaderChange(gs.gid, clientView(info))
	}
	gs.onLeaderEdge(info)
}

// noteLeaderEdge feeds the observability plane at every leader-view
// change: election counters, the flight record, and the leaderless-
// duration histogram (a window opens when an elected view is lost and
// closes when the next one is adopted — startup convergence does not
// count, matching the accounting in internal/metrics).
//
//leadervet:onLoop
func (gs *groupState) noteLeaderEdge(prev, info LeaderInfo) {
	o := gs.n.obs
	if o == nil {
		return
	}
	if info.Elected {
		o.Inc(obs.CLeaderChanges)
		if info.Leader == gs.n.self {
			o.Inc(obs.CElectionsWon)
		}
		if !gs.leaderlessAt.IsZero() {
			o.ObserveLeaderless(info.At.Sub(gs.leaderlessAt))
			gs.leaderlessAt = time.Time{}
		}
	} else {
		o.Inc(obs.CElectionsStarted)
		gs.leaderlessAt = info.At
	}
	if prev.Elected && prev.Leader == gs.n.self && (!info.Elected || info.Leader != gs.n.self) {
		o.Inc(obs.CDemotions)
	}
	o.Record(obs.KindLeaderChange, gs.gid, info.Leader, info.Incarnation, 0, info.At)
}

// onLeaderEdge maintains the standby plane across leadership changes: a
// fresh leader nominates immediately, and a follower whose adopted standby
// just became the leader clears the consumed nomination.
//
//leadervet:onLoop
func (gs *groupState) onLeaderEdge(info LeaderInfo) {
	if info.Elected && info.Leader == gs.n.self {
		gs.nominateStandby()
		return
	}
	if info.Elected && gs.standby == info.Leader && gs.standbyInc == info.Incarnation {
		gs.setStandby("", 0)
	}
}

// --- warm standby & planned handover --------------------------------------

// setStandby records the current standby view and fires the host callback
// on change.
//
//leadervet:onLoop
func (gs *groupState) setStandby(p id.Process, inc int64) {
	if gs.standby == p && gs.standbyInc == inc {
		return
	}
	gs.standby, gs.standbyInc = p, inc
	if p != "" {
		gs.n.obs.Inc(obs.CStandbyNominations)
	}
	gs.n.obs.Record(obs.KindStandby, gs.gid, p, inc, 0, gs.n.rt.Now())
	if gs.opts.OnStandbyChange != nil {
		gs.opts.OnStandbyChange(p, inc)
	}
}

// nominateStandby re-evaluates the leader's choice of warm standby. On a
// change, every destination's announcement clock is zeroed so the next
// heartbeat to each peer carries the new nomination.
//
//leadervet:onLoop
func (gs *groupState) nominateStandby() {
	if gs.stopped || gs.opts.DisableHandover {
		return
	}
	info := gs.lastInfo
	if !info.Elected || info.Leader != gs.n.self {
		return
	}
	p, inc := gs.bestFollower()
	if p == gs.standby && inc == gs.standbyInc {
		return
	}
	gs.setStandby(p, inc)
	for _, dest := range sortedKeys(gs.dests) {
		gs.dests[dest].standbyAt = time.Time{}
	}
}

// bestFollower picks the standby: the live candidate follower with the best
// link to us, preferring failure-detector trust, then lowest estimated loss,
// then lowest mean delay, then smallest id. Under ΩL followers are silent on
// purpose, so untrusted members heard from recently (HELLO gossip, RATE)
// remain eligible. Under Ωid the handover carries no rank, and the LEAVE
// that follows elects the smallest remaining id — nominate exactly that so
// the successor hint matches what the group will actually do.
func (gs *groupState) bestFollower() (id.Process, int64) {
	now := gs.n.rt.Now()
	window := time.Duration(standbyLivenessFactor) * gs.opts.HelloInterval
	var bestID id.Process
	var bestInc int64
	var bestTrusted bool
	var bestLoss float64
	var bestDelay time.Duration
	found := false
	for _, m := range gs.Members() { // sorted by id: deterministic ties
		if m.ID == gs.n.self || !m.Candidate {
			continue
		}
		entry, ok := gs.monitors[m.ID]
		if !ok || entry.inc != m.Incarnation {
			continue
		}
		trusted := entry.mon.Trusted()
		if !trusted && (entry.lastHeard.IsZero() || now.Sub(entry.lastHeard) > window) {
			continue
		}
		if gs.opts.Algorithm == election.OmegaID {
			// First eligible in id order is the next leader after our LEAVE.
			return m.ID, m.Incarnation
		}
		st := gs.n.estimatorFor(m.ID, m.Incarnation).Snapshot()
		if found && !followerBetter(trusted, st.Loss, st.MeanDelay, bestTrusted, bestLoss, bestDelay) {
			continue
		}
		bestID, bestInc = m.ID, m.Incarnation
		bestTrusted, bestLoss, bestDelay = trusted, st.Loss, st.MeanDelay
		found = true
	}
	if !found {
		return "", 0
	}
	return bestID, bestInc
}

// followerBetter is the strict nomination order: trust beats distrust, then
// lower loss, then lower delay. Equal candidates keep the incumbent (the
// smaller id, by iteration order).
func followerBetter(aTrusted bool, aLoss float64, aDelay time.Duration, bTrusted bool, bLoss float64, bDelay time.Duration) bool {
	if aTrusted != bTrusted {
		return aTrusted
	}
	if aLoss != bLoss {
		return aLoss < bLoss
	}
	return aDelay < bDelay
}

// performHandover executes a planned handover if we lead and a standby is
// available: broadcast HANDOVER granting the standby the group-minimal rank,
// then self-apply so our own view (and the tombstone derived from it) names
// the successor. Urgent handovers (deposition) flush immediately; lazy ones
// (leave) stay staged so the LEAVE that follows flushes [HANDOVER, LEAVE]
// to each peer as one datagram.
//
//leadervet:onLoop
func (gs *groupState) performHandover(urgent bool) (id.Process, int64, bool) {
	if gs.stopped || gs.opts.DisableHandover {
		return "", 0, false
	}
	grant, ok := gs.algo.HandoverGrant()
	if !ok {
		return "", 0, false
	}
	// Re-nominate at the last moment: the standby view may predate a
	// membership change.
	gs.nominateStandby()
	succ, succInc := gs.standby, gs.standbyInc
	if succ == "" {
		return "", 0, false
	}
	m := &wire.Handover{
		Group:        gs.gid,
		Sender:       gs.n.self,
		Incarnation:  gs.n.inc,
		Successor:    succ,
		SuccessorInc: succInc,
		GrantAcc:     grant,
		At:           gs.n.rt.Now().UnixNano(),
	}
	for _, mem := range gs.table.Active() {
		if mem.ID == gs.n.self {
			continue
		}
		if urgent {
			gs.n.sendNow(mem.ID, m)
		} else {
			gs.n.sendLazy(mem.ID, m)
		}
	}
	gs.n.obs.Inc(obs.CHandoversSent)
	gs.n.obs.Record(obs.KindHandover, gs.gid, succ, succInc, 1, gs.n.rt.Now())
	gs.algo.HandleHandover(m)
	gs.afterEvent()
	return succ, succInc, true
}

// depose steps down as leader without leaving the group: the standby takes
// over immediately and we stay as a ranked-last follower.
func (gs *groupState) depose() error {
	if gs.stopped {
		return ErrStopped
	}
	if gs.opts.DisableHandover {
		return ErrNoStandby
	}
	if _, ok := gs.algo.HandoverGrant(); !ok {
		return ErrNotLeader
	}
	if _, _, ok := gs.performHandover(true); !ok {
		return ErrNoStandby
	}
	return nil
}

// --- lifecycle -------------------------------------------------------------

// leave announces departure and tears the group down. A departing leader
// first performs a planned handover: the HANDOVER is staged lazily so the
// urgent LEAVE that follows flushes [HANDOVER, LEAVE] to each peer as one
// datagram — the standby assumes leadership in the same delivery that
// removes us, instead of the group waiting out a detection timeout.
func (gs *groupState) leave() {
	succ, succInc, handedOver := gs.performHandover(false)
	msg := &wire.Leave{Group: gs.gid, Sender: gs.n.self, Incarnation: gs.n.inc}
	for _, m := range gs.table.Active() {
		if m.ID != gs.n.self {
			gs.n.sendNow(m.ID, msg)
		}
	}
	if gs.n.subs != nil {
		// Final tombstone snapshots, flushed urgently: subscribed clients
		// fail over to another service node immediately instead of waiting
		// out their leases against a dead endpoint. After a handover the
		// tombstone carries the successor, so clients re-pin without probing.
		v := clientView(gs.currentInfo())
		if handedOver {
			v.Successor, v.SuccessorInc = succ, succInc
		}
		gs.n.subs.PublishTombstone(gs.gid, v)
	}
	gs.shutdown()
}

// shutdown stops all timers, heartbeat streams and monitors without
// announcing anything (crash semantics).
func (gs *groupState) shutdown() {
	if gs.stopped {
		return
	}
	gs.stopped = true
	gs.algo.Stop()
	for _, entry := range gs.monitors {
		entry.mon.Stop()
	}
	for _, p := range sortedKeys(gs.dests) {
		gs.n.dropStream(gs.gid, p)
	}
	gs.helloTimer.Stop()
	gs.joinTimer.Stop()
}

// sortedKeys returns a map's keys in deterministic order; every peer- or
// group-set iteration must go through it for runs to be reproducible.
func sortedKeys[K ~string, V any](m map[K]V) []K {
	return id.SortedMapKeys(m)
}
