package election

import (
	"stableleader/id"
	"stableleader/internal/group"
	"stableleader/internal/wire"
)

// omegaLC is the Ωlc core of service S2 (Section 6.3): the algorithm of
// Aguilera et al. [4] designed to tolerate links that are lossy and links
// that crash outright, at the price of quadratic ALIVE traffic (every
// process always heartbeats to every other).
//
// Leader selection happens in two stages:
//
//  1. local: each process picks, among the candidates it currently trusts
//     (plus itself), the one with the earliest (accusation time, id);
//  2. global: each ALIVE carries the sender's local leader, and a process
//     picks as its global leader the best of all local leaders reported by
//     processes it trusts (plus its own).
//
// The forwarding stage is what makes the algorithm robust to crashed
// links: if the link leader→p dies, p stops trusting the leader but keeps
// electing it globally because other processes still vouch for it. A
// process accuses its leader only when the leader vanishes from its
// *global* pool — i.e. when nobody it trusts vouches for the leader any
// more — so a single crashed link never demotes a healthy leader, while a
// real crash (or total disconnection) is accused and demoted everywhere
// within the detection bound.
type omegaLC struct {
	env Env

	acc      int64                 // own accusation time
	trusted  map[id.Process]int64  // process -> trusted incarnation
	knownAcc map[id.Process]int64  // freshest accusation time heard, max-merged
	reports  map[id.Process]report // local-leader vouches from trusted senders

	leader    id.Process
	hasLeader bool
	grace     graceGate
	members   memberCache
	stopped   bool
}

// report is the freshest ALIVE state heard from a process: the per-sender
// seq tracking (one entry per sender regardless of whether it currently
// vouches for a local leader) plus the local-leader vouch itself when has
// is set.
type report struct {
	leader id.Process
	has    bool
	inc    int64 // sender incarnation the report came from
	seq    uint64
}

var _ Algorithm = (*omegaLC)(nil)

func newOmegaLC(env Env) *omegaLC {
	return &omegaLC{
		env:      env,
		trusted:  make(map[id.Process]int64),
		knownAcc: make(map[id.Process]int64),
		reports:  make(map[id.Process]report),
	}
}

// Start implements Algorithm. Every process is permanently active under
// Ωlc; the accusation time starts at the join time (stability: rejoining
// processes rank last).
func (o *omegaLC) Start() {
	o.acc = o.env.Now().UnixNano()
	o.knownAcc[o.env.Self()] = o.acc
	o.grace.start(o.env)
	o.env.SetActive(true)
	o.recompute()
}

// mergeAcc max-merges an accusation time heard for p.
func (o *omegaLC) mergeAcc(p id.Process, acc int64) {
	if acc > o.knownAcc[p] {
		o.knownAcc[p] = acc
	}
}

// HandleAlive implements Algorithm.
func (o *omegaLC) HandleAlive(m *wire.Alive) {
	cur, ok := o.reports[m.Sender]
	fresh := !ok || cur.inc != m.Incarnation || m.Seq >= cur.seq
	if fresh {
		// In-order self-reports are authoritative for the sender's own
		// accusation time: plain assignment (not max-merge) lets a
		// handover grant *lower* the successor's rank for processes that
		// missed the HANDOVER itself. Forwarded third-party accusation
		// times below stay max-merged — they carry no seq stream.
		o.knownAcc[m.Sender] = m.AccTime
		rep := report{inc: m.Incarnation, seq: m.Seq}
		if m.HasLocalLeader {
			rep.leader, rep.has = m.LocalLeader, true
		}
		o.reports[m.Sender] = rep
	} else {
		o.mergeAcc(m.Sender, m.AccTime)
	}
	if m.HasLocalLeader {
		o.mergeAcc(m.LocalLeader, m.LocalLeaderAcc)
	}
	o.recompute()
}

// HandleHandover implements Algorithm: the sender — our current leader at
// the matching incarnation — steps down as of the handover stamp and grants
// its successor the group-minimal accusation time.
func (o *omegaLC) HandleHandover(m *wire.Handover) {
	self := o.env.Self()
	idx := o.members.index(o.env)
	if m.Sender == self {
		// Self-application by the departing leader: raise our own rank,
		// then fall through to the successor grant so we elect the
		// successor locally in the same event.
		if m.Incarnation != o.env.Incarnation() {
			return
		}
		o.acc = maxInt64(o.acc, m.At)
		o.knownAcc[self] = o.acc
	} else {
		mem, ok := idx[m.Sender]
		if !ok || mem.Incarnation != m.Incarnation || !o.hasLeader || o.leader != m.Sender {
			return
		}
		// The grantor demoted itself as of the handover stamp; trust in it
		// is untouched (it may stay in the group after a deposition) — the
		// rank change alone moves leadership.
		o.mergeAcc(m.Sender, m.At)
	}
	if sm, ok := idx[m.Successor]; ok && sm.Incarnation == m.SuccessorInc {
		if cur, ok := o.knownAcc[m.Successor]; !ok || m.GrantAcc < cur {
			o.knownAcc[m.Successor] = m.GrantAcc
		}
		if m.Successor == self && m.GrantAcc < o.acc {
			o.acc = m.GrantAcc
		}
	}
	o.recompute()
}

// HandoverGrant implements Algorithm: while we lead, our accusation time is
// the group minimum, so acc-1 is strictly better than every rank in the
// group.
func (o *omegaLC) HandoverGrant() (int64, bool) {
	if !o.hasLeader || o.leader != o.env.Self() {
		return 0, false
	}
	return o.acc - 1, true
}

// HandleAccuse implements Algorithm: any accusation naming the current
// incarnation raises the accusation time — the accuser has globally
// demoted us, so we must not flap back.
func (o *omegaLC) HandleAccuse(m *wire.Accuse) {
	if m.TargetIncarnation != o.env.Incarnation() {
		return
	}
	o.acc = maxInt64(o.acc, o.env.Now().UnixNano())
	o.knownAcc[o.env.Self()] = o.acc
	o.recompute()
}

// HandleTrust implements Algorithm.
func (o *omegaLC) HandleTrust(p id.Process, incarnation int64) {
	o.trusted[p] = incarnation
	o.recompute()
}

// HandleSuspect implements Algorithm.
func (o *omegaLC) HandleSuspect(p id.Process) {
	delete(o.trusted, p)
	delete(o.reports, p)
	o.recompute()
}

// HandleMembership implements Algorithm.
func (o *omegaLC) HandleMembership() {
	o.members.invalidate()
	idx := o.members.index(o.env)
	for p, inc := range o.trusted {
		m, ok := idx[p]
		if !ok || m.Incarnation != inc {
			delete(o.trusted, p)
			delete(o.reports, p)
		}
	}
	o.recompute()
}

// FillAlive implements Algorithm: heartbeats gossip our accusation time and
// vouch for our current local leader.
func (o *omegaLC) FillAlive(m *wire.Alive) {
	m.AccTime = o.acc
	if ll, ok := o.localLeader(o.members.index(o.env)); ok {
		m.HasLocalLeader = true
		m.LocalLeader = ll
		m.LocalLeaderAcc = o.knownAcc[ll]
	}
}

// Leader implements Algorithm. Self-claims are hidden during the startup
// grace (see Env.StartupGrace); the forwarding stages are unaffected.
func (o *omegaLC) Leader() (group.Member, bool) {
	if !o.hasLeader {
		return group.Member{}, false
	}
	if o.leader == o.env.Self() && o.grace.selfSuppressed() {
		return group.Member{}, false
	}
	m, ok := o.members.index(o.env)[o.leader]
	return m, ok
}

// Stop implements Algorithm.
func (o *omegaLC) Stop() {
	o.stopped = true
	o.env.SetActive(false)
}

// localLeader is stage one: the best candidate among trusted processes and
// the local process itself.
func (o *omegaLC) localLeader(idx map[id.Process]group.Member) (id.Process, bool) {
	var bestID id.Process
	var bestAcc int64
	found := false
	consider := func(p id.Process) {
		m, ok := idx[p]
		if !ok || !m.Candidate {
			return
		}
		if inc, trusted := o.trusted[p]; p != o.env.Self() && (!trusted || inc != m.Incarnation) {
			return
		}
		acc := o.knownAcc[p]
		if !found || better(acc, p, bestAcc, bestID) {
			bestID, bestAcc, found = p, acc, true
		}
	}
	consider(o.env.Self())
	for p := range o.trusted {
		consider(p)
	}
	return bestID, found
}

// recompute is stage two: the best of the local leaders vouched for by
// trusted processes, plus our own. It also issues the accusation when the
// previous global leader dropped out of the pool entirely.
func (o *omegaLC) recompute() {
	if o.stopped {
		return
	}
	idx := o.members.index(o.env)
	prev, hadPrev := o.leader, o.hasLeader
	var bestID id.Process
	var bestAcc int64
	found := false
	prevInPool := false
	consider := func(p id.Process) {
		m, ok := idx[p]
		if !ok || !m.Candidate {
			return
		}
		if p == prev {
			prevInPool = true
		}
		acc := o.knownAcc[p]
		if !found || better(acc, p, bestAcc, bestID) {
			bestID, bestAcc, found = p, acc, true
		}
	}
	if ll, ok := o.localLeader(idx); ok {
		consider(ll)
	}
	for q, rep := range o.reports {
		if !rep.has {
			continue
		}
		if inc, ok := o.trusted[q]; !ok || inc != rep.inc {
			continue
		}
		consider(rep.leader)
	}

	o.leader, o.hasLeader = bestID, found
	if hadPrev && prev != bestID && !prevInPool {
		// The old leader vanished from the global pool: nobody we trust
		// vouches for it any more. Accuse it so that, if it is actually
		// alive, its accusation time rises and it cannot flap back.
		if m, ok := idx[prev]; ok && !m.Left {
			o.env.SendAccuse(prev, m.Incarnation, 0)
		}
	}
}
