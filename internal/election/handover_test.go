package election

import (
	"testing"

	"stableleader/id"
	"stableleader/internal/wire"
)

// aliveFrom builds a heartbeat payload from p with the given election state.
func aliveFrom(p id.Process, inc int64, seq uint64, acc int64) *wire.Alive {
	return &wire.Alive{Group: "g", Sender: p, Incarnation: inc, Seq: seq, AccTime: acc}
}

// lcAliveFrom builds an Ωlc heartbeat that also vouches for a local leader.
func lcAliveFrom(p id.Process, inc int64, seq uint64, acc int64, ll id.Process, llAcc int64) *wire.Alive {
	m := aliveFrom(p, inc, seq, acc)
	m.HasLocalLeader = true
	m.LocalLeader = ll
	m.LocalLeaderAcc = llAcc
	return m
}

// handoverMsg builds a HANDOVER from sender granting succ the given rank.
func handoverMsg(sender id.Process, senderInc int64, succ id.Process, succInc, grant, at int64) *wire.Handover {
	return &wire.Handover{
		Group: "g", Sender: sender, Incarnation: senderInc,
		Successor: succ, SuccessorInc: succInc, GrantAcc: grant, At: at,
	}
}

// TestOmegaLHandoverElectsSilentStandby: a follower that applies a handover
// elects the successor in the same event even though the successor — a
// silent standby under ΩL — has never sent it an ALIVE.
func TestOmegaLHandoverElectsSilentStandby(t *testing.T) {
	env := newFakeEnv("b", true)
	a := New(OmegaL, env)
	a.Start()
	env.addMember(a, "a", 500, true)
	env.addMember(a, "c", 600, true)
	a.HandleAlive(aliveFrom("a", 500, 1, 50))
	if l, ok := leaderID(t, a); !ok || l != "a" {
		t.Fatalf("precondition: leader = %q, %v; want a", l, ok)
	}
	a.HandleHandover(handoverMsg("a", 500, "c", 600, 49, env.now.UnixNano()))
	if l, ok := leaderID(t, a); !ok || l != "c" {
		t.Fatalf("after handover: leader = %q, %v; want the successor c", l, ok)
	}
}

// TestOmegaLHandoverToSelf: the nominated standby adopts the granted rank
// and assumes leadership immediately.
func TestOmegaLHandoverToSelf(t *testing.T) {
	env := newFakeEnv("b", true)
	a := New(OmegaL, env)
	a.Start()
	env.pastGrace()
	env.addMember(a, "a", 500, true)
	a.HandleAlive(aliveFrom("a", 500, 1, 50))
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatalf("precondition: leader = %q, want a", l)
	}
	a.HandleHandover(handoverMsg("a", 500, "b", env.inc, 49, env.now.UnixNano()))
	if l, ok := leaderID(t, a); !ok || l != "b" {
		t.Fatalf("after handover to self: leader = %q, %v; want self", l, ok)
	}
	if !env.active() {
		t.Error("successor did not start competing (SetActive true)")
	}
}

// TestOmegaLHandoverSelfApply: the departing leader applies the handover it
// originated and stops electing itself — the successor wins its local view
// too, so the tombstone it fans out to clients names the successor.
func TestOmegaLHandoverSelfApply(t *testing.T) {
	env := newFakeEnv("a", true)
	a := New(OmegaL, env)
	a.Start()
	env.pastGrace()
	env.addMember(a, "c", 600, true)
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatalf("precondition: leader = %q, want self", l)
	}
	grant, ok := a.HandoverGrant()
	if !ok {
		t.Fatal("leader could not grant a handover")
	}
	a.HandleHandover(handoverMsg("a", env.inc, "c", 600, grant, env.now.UnixNano()))
	if l, ok := leaderID(t, a); !ok || l != "c" {
		t.Fatalf("after self-apply: leader = %q, %v; want the successor c", l, ok)
	}
}

// TestOmegaLHandoverGuards: handovers from processes that are not the
// current leader — forged, stale-incarnation, or out of context — change
// nothing.
func TestOmegaLHandoverGuards(t *testing.T) {
	env := newFakeEnv("b", true)
	a := New(OmegaL, env)
	a.Start()
	env.addMember(a, "a", 500, true)
	env.addMember(a, "c", 600, true)
	env.addMember(a, "d", 700, true)
	a.HandleAlive(aliveFrom("a", 500, 1, 50))
	a.HandleAlive(aliveFrom("d", 700, 1, 60))
	// d is not the leader; its handover must be ignored.
	a.HandleHandover(handoverMsg("d", 700, "c", 600, 1, env.now.UnixNano()))
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatalf("non-leader handover applied: leader = %q, want a", l)
	}
	// Stale incarnation of the real leader: ignored too.
	a.HandleHandover(handoverMsg("a", 499, "c", 600, 1, env.now.UnixNano()))
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatalf("stale-incarnation handover applied: leader = %q, want a", l)
	}
}

// TestOmegaLStragglerHealsThroughAliveAssignment: a process that missed the
// HANDOVER itself still converges on the successor, because in-order ALIVE
// self-reports assign (not max-merge) the sender's accusation time — the
// successor's post-grant heartbeats carry the lowered rank.
func TestOmegaLStragglerHealsThroughAliveAssignment(t *testing.T) {
	env := newFakeEnv("b", true)
	a := New(OmegaL, env)
	a.Start()
	env.addMember(a, "a", 500, true)
	env.addMember(a, "c", 600, true)
	// c competed earlier with a worse rank than a, then went silent.
	a.HandleAlive(aliveFrom("a", 500, 1, 50))
	a.HandleAlive(aliveFrom("c", 600, 1, 90))
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatalf("precondition: leader = %q, want a", l)
	}
	// The handover a→c happened but this process missed it. a departs
	// (suspected and pruned), and c's fresh heartbeat carries the granted
	// rank, lower than what we knew for it.
	a.HandleSuspect("a")
	a.HandleAlive(aliveFrom("c", 600, 2, 49))
	if l, ok := leaderID(t, a); !ok || l != "c" {
		t.Fatalf("straggler: leader = %q, %v; want c at the granted rank", l, ok)
	}
}

// TestOmegaLCHandoverElectsSuccessor: Ωlc moves leadership on the rank
// change alone — trust in the grantor is untouched, so a deposed leader
// that stays in the group needs no re-trust edge to remain electable later.
func TestOmegaLCHandoverElectsSuccessor(t *testing.T) {
	env := newFakeEnv("b", true)
	a := New(OmegaLC, env)
	a.Start()
	env.addMember(a, "a", 500, true)
	env.addMember(a, "c", 600, true)
	a.HandleTrust("a", 500)
	a.HandleTrust("c", 600)
	a.HandleAlive(lcAliveFrom("a", 500, 1, 50, "a", 50))
	a.HandleAlive(lcAliveFrom("c", 600, 1, 90, "a", 50))
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatalf("precondition: leader = %q, want a", l)
	}
	at := env.now.UnixNano()
	a.HandleHandover(handoverMsg("a", 500, "c", 600, 49, at))
	if l, ok := leaderID(t, a); !ok || l != "c" {
		t.Fatalf("after handover: leader = %q, %v; want the successor c", l, ok)
	}
	// The grantor must still be electable if the successor later fails:
	// its rank rose, but nothing removed it from the candidate pool.
	a.HandleSuspect("c")
	a.HandleAlive(lcAliveFrom("a", 500, 2, at, "a", at))
	if l, ok := leaderID(t, a); !ok || l != "a" {
		t.Fatalf("after successor failure: leader = %q, %v; want the deposed a back", l, ok)
	}
}

// TestOmegaLCHandoverToSelf: the standby's own core adopts the grant.
func TestOmegaLCHandoverToSelf(t *testing.T) {
	env := newFakeEnv("b", true)
	a := New(OmegaLC, env)
	a.Start()
	env.pastGrace()
	env.addMember(a, "a", 500, true)
	a.HandleTrust("a", 500)
	a.HandleAlive(lcAliveFrom("a", 500, 1, 50, "a", 50))
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatalf("precondition: leader = %q, want a", l)
	}
	a.HandleHandover(handoverMsg("a", 500, "b", env.inc, 49, env.now.UnixNano()))
	if l, ok := leaderID(t, a); !ok || l != "b" {
		t.Fatalf("after handover to self: leader = %q, %v; want self", l, ok)
	}
}

// TestHandoverGrantOnlyFromLeader pins the grant rule across the cores: a
// leader grants a rank strictly better than its own; a non-leader (and Ωid
// always, having no rank to transfer) refuses.
func TestHandoverGrantOnlyFromLeader(t *testing.T) {
	for _, k := range []Kind{OmegaL, OmegaLC} {
		env := newFakeEnv("b", true)
		a := New(k, env)
		a.Start()
		// A better competitor leads; we must not grant.
		env.addMember(a, "a", 500, true)
		if k == OmegaLC {
			a.HandleTrust("a", 500)
		}
		a.HandleAlive(lcAliveFrom("a", 500, 1, 50, "a", 50))
		if _, ok := a.HandoverGrant(); ok {
			t.Errorf("%v: non-leader granted a handover", k)
		}
		// Remove it; we lead and may grant.
		a.HandleSuspect("a")
		grant, ok := a.HandoverGrant()
		if !ok {
			t.Errorf("%v: leader refused to grant", k)
		}
		if grant >= env.now.UnixNano() {
			t.Errorf("%v: grant %d not better than own rank", k, grant)
		}
	}
	env := newFakeEnv("b", true)
	a := New(OmegaID, env)
	a.Start()
	env.pastGrace()
	if _, ok := a.HandoverGrant(); ok {
		t.Error("omega-id granted a handover despite having no rank to transfer")
	}
}

// TestOmegaIDHandoverIgnored: Ωid ignores handovers entirely; the LEAVE
// that follows a graceful departure is what fails the group over.
func TestOmegaIDHandoverIgnored(t *testing.T) {
	env := newFakeEnv("b", true)
	a := New(OmegaID, env)
	a.Start()
	env.addMember(a, "a", 500, true)
	a.HandleTrust("a", 500)
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatalf("precondition: leader = %q, want a", l)
	}
	a.HandleHandover(handoverMsg("a", 500, "c", 600, 0, env.now.UnixNano()))
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatalf("omega-id changed leaders on a handover: leader = %q", l)
	}
}
