package election

import (
	"testing"
	"time"

	"stableleader/id"
	"stableleader/internal/group"
)

// accusation records one SendAccuse call.
type accusation struct {
	to    id.Process
	inc   int64
	phase uint32
}

// fakeEnv is a scripted environment for exercising the cores directly.
type fakeEnv struct {
	self    id.Process
	inc     int64
	now     time.Time
	members []group.Member
	grace   time.Duration

	accusations []accusation
	activeLog   []bool
}

var _ Env = (*fakeEnv)(nil)

func newFakeEnv(self id.Process, candidate bool) *fakeEnv {
	e := &fakeEnv{
		self:  self,
		inc:   1000,
		now:   time.Unix(100, 0),
		grace: time.Second,
	}
	e.members = []group.Member{{ID: self, Incarnation: e.inc, Candidate: candidate}}
	return e
}

func (e *fakeEnv) Self() id.Process        { return e.self }
func (e *fakeEnv) Incarnation() int64      { return e.inc }
func (e *fakeEnv) Now() time.Time          { return e.now }
func (e *fakeEnv) Members() []group.Member { return e.members }
func (e *fakeEnv) SendAccuse(to id.Process, inc int64, phase uint32) {
	e.accusations = append(e.accusations, accusation{to, inc, phase})
}
func (e *fakeEnv) SetActive(a bool)            { e.activeLog = append(e.activeLog, a) }
func (e *fakeEnv) StartupGrace() time.Duration { return e.grace }

// addMember registers another process in the membership view.
func (e *fakeEnv) addMember(a Algorithm, p id.Process, inc int64, candidate bool) {
	e.members = append(e.members, group.Member{ID: p, Incarnation: inc, Candidate: candidate})
	a.HandleMembership()
}

// pastGrace advances the clock beyond the startup grace.
func (e *fakeEnv) pastGrace() { e.now = e.now.Add(e.grace + time.Millisecond) }

// active reports the last SetActive value (default false).
func (e *fakeEnv) active() bool {
	if len(e.activeLog) == 0 {
		return false
	}
	return e.activeLog[len(e.activeLog)-1]
}

// leaderID is a test helper.
func leaderID(t *testing.T, a Algorithm) (id.Process, bool) {
	t.Helper()
	m, ok := a.Leader()
	return m.ID, ok
}

func TestKindString(t *testing.T) {
	if OmegaL.String() != "omega-l" || OmegaLC.String() != "omega-lc" || OmegaID.String() != "omega-id" {
		t.Error("unexpected kind names")
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind must still render")
	}
}

func TestNewPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Kind(42), newFakeEnv("a", true))
}

func TestGraceSuppressionAllKinds(t *testing.T) {
	for _, k := range []Kind{OmegaL, OmegaLC, OmegaID} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			env := newFakeEnv("a", true)
			a := New(k, env)
			a.Start()
			if _, ok := a.Leader(); ok {
				t.Error("self-claim visible during the startup grace")
			}
			env.pastGrace()
			if l, ok := leaderID(t, a); !ok || l != "a" {
				t.Errorf("after grace: leader = %q, %v; want self", l, ok)
			}
		})
	}
}

func TestNonCandidateNeverLeadsItself(t *testing.T) {
	for _, k := range []Kind{OmegaL, OmegaLC, OmegaID} {
		env := newFakeEnv("a", false)
		a := New(k, env)
		a.Start()
		env.pastGrace()
		a.HandleMembership()
		if l, ok := a.Leader(); ok {
			t.Errorf("%v: non-candidate elected %v", k, l)
		}
	}
}
