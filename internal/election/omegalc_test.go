package election

import (
	"testing"
	"time"

	"stableleader/id"
	"stableleader/internal/wire"
)

// lcAlive builds an Ωlc heartbeat payload with a local-leader vouch.
func lcAlive(from id.Process, inc int64, seq uint64, acc int64, ll id.Process, llAcc int64) *wire.Alive {
	m := &wire.Alive{Group: "g", Sender: from, Incarnation: inc, Seq: seq, AccTime: acc}
	if ll != "" {
		m.HasLocalLeader = true
		m.LocalLeader = ll
		m.LocalLeaderAcc = llAcc
	}
	return m
}

// startOmegaLC boots an Ωlc candidate "p" past its grace with members
// "a" (the would-be leader) and "q" (a forwarder), both candidates.
func startOmegaLC(t *testing.T) (*fakeEnv, Algorithm) {
	t.Helper()
	env := newFakeEnv("p", true)
	a := New(OmegaLC, env)
	a.Start()
	env.pastGrace()
	env.addMember(a, "a", 1, true)
	env.addMember(a, "q", 1, true)
	return env, a
}

func TestOmegaLCAlwaysActive(t *testing.T) {
	env := newFakeEnv("p", true)
	a := New(OmegaLC, env)
	a.Start()
	if !env.active() {
		t.Fatal("omega-lc processes always heartbeat")
	}
}

func TestOmegaLCDirectTrustElectsSmallestAccTime(t *testing.T) {
	_, a := startOmegaLC(t)
	a.HandleTrust("a", 1)
	a.HandleAlive(lcAlive("a", 1, 1, 1, "a", 1))
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatalf("leader = %q, want a (earliest accusation time)", l)
	}
}

// TestOmegaLCForwardingSurvivesCrashedLink is the Figure 7 robustness
// property: the link a→p crashes, p stops trusting a, but q still vouches
// for a — p must keep electing a and must NOT accuse it.
func TestOmegaLCForwardingSurvivesCrashedLink(t *testing.T) {
	env, a := startOmegaLC(t)
	a.HandleTrust("a", 1)
	a.HandleAlive(lcAlive("a", 1, 1, 1, "a", 1))
	a.HandleTrust("q", 1)
	a.HandleAlive(lcAlive("q", 1, 1, 50, "a", 1))
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatal("setup: a leads")
	}
	env.accusations = nil
	// Link a→p crashes: p's detector suspects a, but q keeps vouching.
	a.HandleSuspect("a")
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatalf("leader = %q, want a — the forwarding stage must retain the leader", l)
	}
	if len(env.accusations) != 0 {
		t.Fatalf("p accused the leader despite a live vouch: %v — a single crashed link would demote healthy leaders", env.accusations)
	}
}

// TestOmegaLCRealCrashDemotesAndAccuses completes the contrast: when the
// forwarder's vouch also disappears, the leader drops out of the global
// pool, is accused, and is replaced.
func TestOmegaLCRealCrashDemotesAndAccuses(t *testing.T) {
	env, a := startOmegaLC(t)
	a.HandleTrust("a", 1)
	a.HandleAlive(lcAlive("a", 1, 1, 1, "a", 1))
	a.HandleTrust("q", 1)
	a.HandleAlive(lcAlive("q", 1, 1, 50, "a", 1))
	env.accusations = nil

	a.HandleSuspect("a")
	// q's next heartbeat no longer vouches for a (q suspected it too).
	a.HandleAlive(lcAlive("q", 1, 2, 50, "q", 50))
	l, _ := leaderID(t, a)
	if l == "a" {
		t.Fatal("a must drop once no trusted process vouches for it")
	}
	found := false
	for _, acc := range env.accusations {
		if acc.to == "a" && acc.inc == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("the demoted leader was never accused: %v", env.accusations)
	}
}

func TestOmegaLCAccusationRaisesOwnAccTime(t *testing.T) {
	env := newFakeEnv("p", true)
	a := New(OmegaLC, env)
	a.Start()
	env.pastGrace()
	before := &wire.Alive{}
	a.FillAlive(before)
	env.now = env.now.Add(3 * time.Second)
	a.HandleAccuse(&wire.Accuse{Sender: "x", TargetIncarnation: env.inc})
	after := &wire.Alive{}
	a.FillAlive(after)
	if after.AccTime <= before.AccTime {
		t.Fatal("a valid accusation must raise the accusation time")
	}
	// Wrong incarnation is void.
	env.now = env.now.Add(3 * time.Second)
	a.HandleAccuse(&wire.Accuse{Sender: "x", TargetIncarnation: env.inc + 7})
	final := &wire.Alive{}
	a.FillAlive(final)
	if final.AccTime != after.AccTime {
		t.Fatal("an accusation for a different incarnation must be ignored")
	}
}

// TestOmegaLCStability mirrors the Ωl test: a later-started process (larger
// accusation time) never displaces the incumbent.
func TestOmegaLCStability(t *testing.T) {
	env, a := startOmegaLC(t)
	a.HandleTrust("a", 1)
	a.HandleAlive(lcAlive("a", 1, 1, 5, "a", 5))
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatal("setup: a leads")
	}
	// "newguy" joins with a fresh (large) accusation time and a smaller id
	// than nobody — even with the smallest id it would lose: order is
	// (accTime, id).
	env.addMember(a, "aa", 1, true)
	a.HandleTrust("aa", 1)
	a.HandleAlive(lcAlive("aa", 1, 1, env.now.UnixNano()+int64(1e9), "aa", env.now.UnixNano()+int64(1e9)))
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatalf("leader = %q, want a — joining must not demote the incumbent", l)
	}
}

func TestOmegaLCAccTimeMaxMerge(t *testing.T) {
	_, a := startOmegaLC(t)
	a.HandleTrust("a", 1)
	a.HandleTrust("q", 1)
	// q vouches for a with an *old* (small) accusation time…
	a.HandleAlive(lcAlive("q", 1, 1, 50, "a", 1))
	// …but a's own heartbeat carries a newer, larger one (it was accused).
	a.HandleAlive(lcAlive("a", 1, 5, 100, "a", 100))
	// A later stale vouch from q must not lower a's known accusation time.
	a.HandleAlive(lcAlive("q", 1, 2, 50, "a", 1))
	// q (acc 50) must beat a (acc 100) now.
	if l, _ := leaderID(t, a); l != "q" {
		t.Fatalf("leader = %q, want q — stale forwarded accusation times must not win", l)
	}
}

func TestOmegaLCReorderedReportIgnored(t *testing.T) {
	_, a := startOmegaLC(t)
	a.HandleTrust("q", 1)
	a.HandleTrust("a", 1)
	a.HandleAlive(lcAlive("a", 1, 1, 1, "a", 1))
	// q's fresh report (seq 9) vouches for a…
	a.HandleAlive(lcAlive("q", 1, 9, 50, "a", 1))
	// …then a delayed older report (seq 3) naming q itself arrives. It
	// must not replace the fresher vouch.
	a.HandleAlive(lcAlive("q", 1, 3, 50, "q", 50))
	a.HandleSuspect("a") // only q's vouch can keep a alive now
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatalf("leader = %q, want a — the stale report displaced the fresh vouch", l)
	}
}

func TestOmegaLCFillAliveCarriesLocalLeader(t *testing.T) {
	_, a := startOmegaLC(t)
	a.HandleTrust("a", 1)
	a.HandleAlive(lcAlive("a", 1, 1, 1, "a", 1))
	m := &wire.Alive{}
	a.FillAlive(m)
	if !m.HasLocalLeader || m.LocalLeader != "a" {
		t.Fatalf("FillAlive = %+v, want a local-leader vouch for a", m)
	}
	if m.AccTime == 0 {
		t.Error("FillAlive must carry our own accusation time")
	}
}

func TestOmegaLCLeaderLeavesNoAccusation(t *testing.T) {
	env, a := startOmegaLC(t)
	a.HandleTrust("a", 1)
	a.HandleAlive(lcAlive("a", 1, 1, 1, "a", 1))
	env.accusations = nil
	// "a" leaves the group: it disappears from membership entirely.
	env.members = env.members[:1] // only self remains
	a.HandleMembership()
	if l, _ := leaderID(t, a); l != "p" {
		t.Fatalf("leader = %q, want self after everyone left", l)
	}
	if len(env.accusations) != 0 {
		t.Fatal("voluntary departure must not be accused")
	}
}
