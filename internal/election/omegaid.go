package election

import (
	"stableleader/id"
	"stableleader/internal/group"
	"stableleader/internal/wire"
)

// omegaID is the Ωid core of service S1 (Section 6.2): every process
// heartbeats to every other, and the leader is the candidate with the
// smallest id among those currently deemed alive. The algorithm is
// deliberately kept as the paper describes it — including its instability:
// whenever a candidate with a smaller id than the current leader (re)joins,
// the leader is demoted even though it is fully functional.
type omegaID struct {
	env     Env
	trusted map[id.Process]int64 // process -> trusted incarnation
	grace   graceGate
	members memberCache
	stopped bool
}

var _ Algorithm = (*omegaID)(nil)

func newOmegaID(env Env) *omegaID {
	return &omegaID{env: env, trusted: make(map[id.Process]int64)}
}

// Start implements Algorithm. Under Ωid every process is "active": all
// alive processes heartbeat so everyone can evaluate the alive set.
func (o *omegaID) Start() {
	o.grace.start(o.env)
	o.env.SetActive(true)
}

// HandleAlive implements Algorithm. Liveness is tracked by the failure
// detector, so the payload carries nothing for Ωid.
func (o *omegaID) HandleAlive(*wire.Alive) {}

// HandleAccuse implements Algorithm. Ωid has no accusation mechanism.
func (o *omegaID) HandleAccuse(*wire.Accuse) {}

// HandleHandover implements Algorithm. Ωid has no rank a grant could
// transfer — the smallest trusted id leads, always — so handovers are
// ignored. A graceful departure still fails over instantly: the LEAVE that
// follows the handover removes the sender from the membership table, and
// every receiver elects the next-smallest id in the same event.
func (o *omegaID) HandleHandover(*wire.Handover) {}

// HandoverGrant implements Algorithm: Ωid cannot express a rank transfer,
// so it never grants one.
func (o *omegaID) HandoverGrant() (int64, bool) { return 0, false }

// HandleTrust implements Algorithm.
func (o *omegaID) HandleTrust(p id.Process, incarnation int64) {
	o.trusted[p] = incarnation
}

// HandleSuspect implements Algorithm.
func (o *omegaID) HandleSuspect(p id.Process) {
	delete(o.trusted, p)
}

// HandleMembership implements Algorithm: trust entries for processes that
// left (or were superseded by a newer incarnation) are dropped.
func (o *omegaID) HandleMembership() {
	o.members.invalidate()
	idx := o.members.index(o.env)
	for p, inc := range o.trusted {
		m, ok := idx[p]
		if !ok || m.Incarnation != inc {
			delete(o.trusted, p)
		}
	}
}

// FillAlive implements Algorithm. Ωid heartbeats carry no election state.
func (o *omegaID) FillAlive(*wire.Alive) {}

// Leader implements Algorithm: the smallest-id candidate among the trusted
// processes and the local process itself.
func (o *omegaID) Leader() (group.Member, bool) {
	var best group.Member
	found := false
	for _, m := range o.env.Members() {
		if !m.Candidate {
			continue
		}
		if m.ID != o.env.Self() {
			inc, ok := o.trusted[m.ID]
			if !ok || inc != m.Incarnation {
				continue
			}
		}
		if !found || m.ID < best.ID {
			best = m
			found = true
		}
	}
	if found && best.ID == o.env.Self() && o.grace.selfSuppressed() {
		return group.Member{}, false
	}
	return best, found
}

// Stop implements Algorithm.
func (o *omegaID) Stop() { o.stopped = true }
