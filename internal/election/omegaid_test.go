package election

import (
	"testing"

	"stableleader/internal/wire"
)

func TestOmegaIDSmallestTrustedIDWins(t *testing.T) {
	env := newFakeEnv("b", true)
	a := New(OmegaID, env)
	a.Start()
	env.pastGrace()
	env.addMember(a, "c", 1, true)
	env.addMember(a, "a", 1, true)
	// Nothing trusted yet: self is the only live candidate.
	if l, ok := leaderID(t, a); !ok || l != "b" {
		t.Fatalf("leader = %q, want self b", l)
	}
	a.HandleTrust("c", 1)
	if l, _ := leaderID(t, a); l != "b" {
		t.Fatalf("leader = %q, want b (still smaller than c)", l)
	}
	a.HandleTrust("a", 1)
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatalf("leader = %q, want a — smallest id always wins under omega-id", l)
	}
}

// TestOmegaIDInstability pins down the behaviour the paper measures in
// Figure 3: a recovering smaller-id process demotes a healthy leader.
func TestOmegaIDInstability(t *testing.T) {
	env := newFakeEnv("b", true)
	a := New(OmegaID, env)
	a.Start()
	env.pastGrace()
	// b leads. Process "a" (smaller id) joins later — and takes over even
	// though b is perfectly healthy. This is Ωid's documented flaw.
	env.addMember(a, "a", 1, true)
	a.HandleTrust("a", 1)
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatalf("leader = %q, want a — omega-id must demote b (this instability is by design)", l)
	}
}

func TestOmegaIDSuspectRemovesFromPool(t *testing.T) {
	env := newFakeEnv("b", true)
	a := New(OmegaID, env)
	a.Start()
	env.pastGrace()
	env.addMember(a, "a", 1, true)
	a.HandleTrust("a", 1)
	a.HandleSuspect("a")
	if l, _ := leaderID(t, a); l != "b" {
		t.Fatalf("leader = %q, want b after a is suspected", l)
	}
}

func TestOmegaIDIgnoresNonCandidates(t *testing.T) {
	env := newFakeEnv("b", true)
	a := New(OmegaID, env)
	a.Start()
	env.pastGrace()
	env.addMember(a, "a", 1, false) // not a candidate
	a.HandleTrust("a", 1)
	if l, _ := leaderID(t, a); l != "b" {
		t.Fatalf("leader = %q, want b — non-candidates must not be elected", l)
	}
}

func TestOmegaIDStaleIncarnationPruned(t *testing.T) {
	env := newFakeEnv("b", true)
	a := New(OmegaID, env)
	a.Start()
	env.pastGrace()
	env.addMember(a, "a", 1, true)
	a.HandleTrust("a", 1)
	// "a" restarts with incarnation 2; the old trust is stale.
	env.members[1].Incarnation = 2
	a.HandleMembership()
	if l, _ := leaderID(t, a); l != "b" {
		t.Fatalf("leader = %q, want b — trust in a's old incarnation must not elect it", l)
	}
	a.HandleTrust("a", 2)
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatalf("leader = %q, want a once the new incarnation is trusted", l)
	}
}

func TestOmegaIDAlwaysActive(t *testing.T) {
	env := newFakeEnv("b", true)
	a := New(OmegaID, env)
	a.Start()
	if !env.active() {
		t.Fatal("omega-id processes must heartbeat from the start")
	}
}

func TestOmegaIDIgnoresElectionPayloads(t *testing.T) {
	env := newFakeEnv("b", true)
	a := New(OmegaID, env)
	a.Start()
	env.pastGrace()
	// ALIVE payloads and accusations carry no meaning under omega-id.
	a.HandleAlive(&wire.Alive{Group: "g", Sender: "c", Incarnation: 1, AccTime: -1})
	a.HandleAccuse(&wire.Accuse{Group: "g", Sender: "c", TargetIncarnation: env.inc})
	m := &wire.Alive{}
	a.FillAlive(m)
	if m.AccTime != 0 || m.Phase != 0 || m.HasLocalLeader {
		t.Error("omega-id must not stamp election state onto heartbeats")
	}
}
