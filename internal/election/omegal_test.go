package election

import (
	"testing"
	"time"

	"stableleader/id"
	"stableleader/internal/wire"
)

// lAlive builds an Ωl heartbeat payload.
func lAlive(from id.Process, inc int64, seq uint64, acc int64, phase uint32) *wire.Alive {
	return &wire.Alive{
		Group: "g", Sender: from, Incarnation: inc,
		Seq: seq, AccTime: acc, Phase: phase,
	}
}

// startOmegaL boots an Ωl candidate "b" past its grace with one extra
// member "a" (candidate, incarnation 1) already known.
func startOmegaL(t *testing.T) (*fakeEnv, Algorithm) {
	t.Helper()
	env := newFakeEnv("b", true)
	a := New(OmegaL, env)
	a.Start()
	env.pastGrace()
	env.addMember(a, "a", 1, true)
	return env, a
}

func TestOmegaLCandidateCompetesAtStart(t *testing.T) {
	env := newFakeEnv("b", true)
	a := New(OmegaL, env)
	a.Start()
	if !env.active() {
		t.Fatal("a lone candidate must compete (send ALIVEs) from the start")
	}
	env.pastGrace()
	if l, ok := leaderID(t, a); !ok || l != "b" {
		t.Fatalf("leader = %q, %v; want self", l, ok)
	}
}

func TestOmegaLBetterCompetitorWinsAndSelfDropsOut(t *testing.T) {
	env, a := startOmegaL(t)
	// "a" has an older accusation time (it started long before b did): it
	// is the better candidate. On hearing it, b adopts it and goes silent.
	a.HandleAlive(lAlive("a", 1, 1, 1, 0))
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatalf("leader = %q, want a (earlier accusation time)", l)
	}
	if env.active() {
		t.Fatal("b must stop competing after seeing a better candidate")
	}
	// Voluntary drop-out bumps the phase so stale accusations are void.
	m := &wire.Alive{}
	a.FillAlive(m)
	if m.Phase != 1 {
		t.Errorf("phase after drop-out = %d, want 1", m.Phase)
	}
}

// TestOmegaLStability is the paper's core claim: a process that joins (or
// rejoins after recovery) with a *later* accusation time cannot displace
// the incumbent — unlike under Ωid.
func TestOmegaLStability(t *testing.T) {
	env, a := startOmegaL(t)
	// "a" has a *later* accusation time (it just recovered). Although its
	// id is smaller, the incumbent b must keep the leadership.
	a.HandleAlive(lAlive("a", 1, 1, env.now.UnixNano()+int64(1e9), 0))
	if l, _ := leaderID(t, a); l != "b" {
		t.Fatalf("leader = %q, want b — a recovering process must not demote the incumbent", l)
	}
	if !env.active() {
		t.Fatal("b must keep competing")
	}
}

func TestOmegaLSuspectedLeaderIsAccusedAndReplaced(t *testing.T) {
	env, a := startOmegaL(t)
	a.HandleAlive(lAlive("a", 1, 1, 1, 7)) // "a" wins with a tiny acc time, phase 7
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatal("setup: a should lead")
	}
	a.HandleSuspect("a")
	if len(env.accusations) != 1 {
		t.Fatalf("accusations = %v, want exactly one to the suspected leader", env.accusations)
	}
	acc := env.accusations[0]
	if acc.to != "a" || acc.inc != 1 || acc.phase != 7 {
		t.Errorf("accusation = %+v, want {a 1 7} (the leader's advertised phase)", acc)
	}
	// b knows no other competitor: it steps back up.
	if l, _ := leaderID(t, a); l != "b" {
		t.Errorf("leader = %q, want b after the only competitor vanished", l)
	}
	if !env.active() {
		t.Error("b must re-enter the competition")
	}
}

func TestOmegaLSuspectOfNonLeaderDoesNotAccuse(t *testing.T) {
	env, a := startOmegaL(t)
	env.addMember(a, "c", 1, true)
	a.HandleAlive(lAlive("a", 1, 1, 1, 0)) // leader
	a.HandleAlive(lAlive("c", 1, 1, 2, 0)) // another competitor
	env.accusations = nil
	a.HandleSuspect("c")
	if len(env.accusations) != 0 {
		t.Fatalf("suspecting a non-leader produced accusations: %v", env.accusations)
	}
}

func TestOmegaLAccusationValidation(t *testing.T) {
	env := newFakeEnv("b", true)
	a := New(OmegaL, env)
	a.Start()
	env.pastGrace()
	before := &wire.Alive{}
	a.FillAlive(before)

	// Wrong incarnation: ignored.
	a.HandleAccuse(&wire.Accuse{Sender: "x", TargetIncarnation: env.inc + 1, Phase: before.Phase})
	// Wrong phase: ignored (this is the voluntary-silence protection).
	a.HandleAccuse(&wire.Accuse{Sender: "x", TargetIncarnation: env.inc, Phase: before.Phase + 9})
	after := &wire.Alive{}
	a.FillAlive(after)
	if after.AccTime != before.AccTime {
		t.Fatal("invalid accusations must not raise the accusation time")
	}

	// Valid accusation: raises the accusation time to now.
	env.now = env.now.Add(time.Duration(5e9))
	a.HandleAccuse(&wire.Accuse{Sender: "x", TargetIncarnation: env.inc, Phase: before.Phase})
	final := &wire.Alive{}
	a.FillAlive(final)
	if final.AccTime != env.now.UnixNano() {
		t.Fatalf("acc time after valid accusation = %d, want %d", final.AccTime, env.now.UnixNano())
	}
}

func TestOmegaLAccusationAfterDropOutIgnored(t *testing.T) {
	env, a := startOmegaL(t)
	a.HandleAlive(lAlive("a", 1, 1, 1, 0)) // b drops out, phase 0 -> 1
	dropped := &wire.Alive{}
	a.FillAlive(dropped)
	// A peer that timed out on b's voluntary silence accuses with the old
	// phase 0: it must be void.
	a.HandleAccuse(&wire.Accuse{Sender: "c", TargetIncarnation: env.inc, Phase: 0})
	after := &wire.Alive{}
	a.FillAlive(after)
	if after.AccTime != dropped.AccTime {
		t.Fatal("a stale-phase accusation raised the accusation time — the paper's stability mechanism is broken")
	}
}

func TestOmegaLReorderedHeartbeatIgnored(t *testing.T) {
	env, a := startOmegaL(t)
	// Fresh state: a was accused (acc high) at seq 10.
	a.HandleAlive(lAlive("a", 1, 10, env.now.UnixNano()+int64(5e9), 0))
	if l, _ := leaderID(t, a); l != "b" {
		t.Fatal("setup: b should lead (a's acc is later)")
	}
	// A delayed older heartbeat with a's pristine (small) acc arrives: it
	// must not resurrect a's candidacy.
	a.HandleAlive(lAlive("a", 1, 3, 1, 0))
	if l, _ := leaderID(t, a); l != "b" {
		t.Fatal("a reordered stale heartbeat flipped the leadership")
	}
}

func TestOmegaLNonCandidateFollowsCompetitors(t *testing.T) {
	env := newFakeEnv("z", false)
	a := New(OmegaL, env)
	a.Start()
	env.pastGrace()
	env.addMember(a, "a", 1, true)
	if env.active() {
		t.Fatal("non-candidates never send ALIVEs under omega-l")
	}
	a.HandleAlive(lAlive("a", 1, 1, 1, 0))
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatalf("leader = %q, want a", l)
	}
	a.HandleSuspect("a")
	if _, ok := a.Leader(); ok {
		t.Fatal("with the only competitor suspected, a non-candidate must report no leader")
	}
	if len(env.accusations) != 1 {
		t.Fatal("non-candidates still accuse their suspected leader")
	}
}

func TestOmegaLMembershipPruneRemovesRestartedCompetitor(t *testing.T) {
	env, a := startOmegaL(t)
	a.HandleAlive(lAlive("a", 1, 1, 1, 0))
	if l, _ := leaderID(t, a); l != "a" {
		t.Fatal("setup: a leads")
	}
	// "a" restarts: membership now knows incarnation 2; the old competitor
	// entry must vanish (no accusation — this is not a suspicion).
	env.accusations = nil
	env.members[1].Incarnation = 2
	a.HandleMembership()
	if l, _ := leaderID(t, a); l != "b" {
		t.Fatalf("leader = %q, want b after a's incarnation was superseded", l)
	}
	if len(env.accusations) != 0 {
		t.Error("membership-based removal must not send accusations")
	}
}

func TestOmegaLLoneProcessStillLeadsAfterAccusation(t *testing.T) {
	env := newFakeEnv("b", true)
	a := New(OmegaL, env)
	a.Start()
	env.pastGrace()
	a.HandleAccuse(&wire.Accuse{Sender: "x", TargetIncarnation: env.inc, Phase: 0})
	// Nobody else is known: b stays leader despite the bumped acc time.
	if l, ok := leaderID(t, a); !ok || l != "b" {
		t.Fatalf("leader = %q, %v; a lone candidate must lead itself", l, ok)
	}
}

func TestOmegaLStopDeactivates(t *testing.T) {
	env := newFakeEnv("b", true)
	a := New(OmegaL, env)
	a.Start()
	a.Stop()
	if env.active() {
		t.Fatal("Stop must cease heartbeating")
	}
}
