package election

import (
	"stableleader/id"
	"stableleader/internal/group"
	"stableleader/internal/wire"
)

// omegaL is the Ωl core of service S3 (Section 6.4): the
// communication-efficient algorithm of Aguilera et al. [2] in which
// eventually only the elected leader transmits ALIVE messages.
//
// Mechanics:
//
//   - A process considers q a competitor only while it receives ALIVEs
//     directly from q (no forwarding). The leader is the competitor — or
//     the process itself, if it is a candidate — with the smallest
//     (accusation time, id).
//   - A process that sees a better competitor voluntarily drops out of the
//     competition: it stops sending ALIVEs and increments its phase. Other
//     processes will soon suspect it (it went silent on purpose), but the
//     accusations they send carry the old phase and are discarded — the
//     paper's mechanism ensuring voluntary silence never raises a process's
//     accusation time.
//   - When a process suspects its current leader it sends the leader an
//     ACCUSE (raising the leader's accusation time if it is in fact alive
//     and still competing) and recomputes; if it knows no better competitor
//     and is a candidate, it re-enters the competition itself.
type omegaL struct {
	env Env

	acc       int64  // own accusation time (ns)
	phase     uint32 // competition phase; bumped on voluntary drop-out
	competing bool
	grace     graceGate
	members   memberCache

	comp map[id.Process]lCompetitor

	leader    id.Process // empty when unknown
	hasLeader bool
	stopped   bool
}

// lCompetitor is the freshest election state heard directly from a process.
type lCompetitor struct {
	inc   int64
	acc   int64
	phase uint32
	seq   uint64
}

var _ Algorithm = (*omegaL)(nil)

func newOmegaL(env Env) *omegaL {
	return &omegaL{env: env, comp: make(map[id.Process]lCompetitor)}
}

// Start implements Algorithm. The accusation time starts at the join time:
// a (re)starting process is by construction the worst-ranked candidate and
// cannot displace an incumbent leader.
func (o *omegaL) Start() {
	o.acc = o.env.Now().UnixNano()
	o.grace.start(o.env)
	o.recompute()
}

// HandleAlive implements Algorithm.
func (o *omegaL) HandleAlive(m *wire.Alive) {
	cur, ok := o.comp[m.Sender]
	if ok && cur.inc == m.Incarnation {
		if m.Seq < cur.seq {
			// Reordered heartbeat: its accusation time may be stale
			// (accusation times only grow); ignoring it prevents a
			// transient, spurious leadership flip.
			return
		}
		cur.seq = m.Seq
		// In-order self-reports are authoritative for the sender's own
		// accusation time: plain assignment (not max-merge) lets a
		// handover grant *lower* a competitor's rank for processes that
		// missed the HANDOVER itself. The seq guard above already rejects
		// the reordered heartbeats a max-merge protected against.
		cur.acc = m.AccTime
		if m.Phase > cur.phase {
			cur.phase = m.Phase
		}
	} else {
		cur = lCompetitor{inc: m.Incarnation, acc: m.AccTime, phase: m.Phase, seq: m.Seq}
	}
	o.comp[m.Sender] = cur
	o.recompute()
}

// HandleAccuse implements Algorithm: an accusation is valid only if it
// names the current incarnation and the current phase while the process is
// competing. A valid accusation raises the accusation time to now.
func (o *omegaL) HandleAccuse(m *wire.Accuse) {
	if m.TargetIncarnation != o.env.Incarnation() || m.Phase != o.phase || !o.competing {
		return
	}
	o.acc = maxInt64(o.acc, o.env.Now().UnixNano())
	o.recompute()
}

// HandleHandover implements Algorithm: the sender — which must be our
// current leader at the matching incarnation — steps down and grants its
// successor the group-minimal accusation time. Standbys are silent in ΩL
// (they dropped out of the competition), so receivers synthesize the
// successor's competitor entry at the granted rank instead of waiting for
// its first ALIVE: every process that applies the handover elects the
// successor in the same event.
func (o *omegaL) HandleHandover(m *wire.Handover) {
	if m.Sender == o.env.Self() {
		// Self-application by the departing leader: raise our own
		// accusation time to the handover stamp, then fall through to the
		// successor synthesis — the standby is silent, so without it the
		// departing leader would keep electing itself as the only
		// competitor it knows.
		if m.Incarnation != o.env.Incarnation() {
			return
		}
		o.acc = maxInt64(o.acc, m.At)
	} else {
		c, ok := o.comp[m.Sender]
		if !ok || c.inc != m.Incarnation || !o.hasLeader || o.leader != m.Sender {
			// Forged, stale or out-of-context handover: ignore it. A
			// receiver that misses the handover still converges through the
			// successor's own heartbeat stream (assignment merge above).
			return
		}
		// The grantor is stepping down: drop it from the competition. If
		// it stays in the group (deposition rather than leave), its next
		// ALIVE re-enters it with its raised accusation time.
		delete(o.comp, m.Sender)
	}
	if m.Successor == o.env.Self() {
		if o.env.Incarnation() == m.SuccessorInc && m.GrantAcc < o.acc {
			o.acc = m.GrantAcc
		}
	} else if cur, ok := o.comp[m.Successor]; !ok || cur.inc != m.SuccessorInc || m.GrantAcc < cur.acc {
		// Seq 0 lets the successor's own heartbeat stream take over the
		// entry immediately; its self-reported accusation time equals the
		// grant once it applies the same handover.
		o.comp[m.Successor] = lCompetitor{inc: m.SuccessorInc, acc: m.GrantAcc}
	}
	o.recompute()
}

// HandoverGrant implements Algorithm: while we lead, our accusation time is
// the group minimum, so acc-1 is strictly better than every rank in the
// group.
func (o *omegaL) HandoverGrant() (int64, bool) {
	if !o.hasLeader || o.leader != o.env.Self() {
		return 0, false
	}
	return o.acc - 1, true
}

// HandleTrust implements Algorithm. Competitor state is established by the
// ALIVE payload itself, which always accompanies the trust edge.
func (o *omegaL) HandleTrust(id.Process, int64) {}

// HandleSuspect implements Algorithm.
func (o *omegaL) HandleSuspect(p id.Process) {
	c, ok := o.comp[p]
	if !ok {
		return
	}
	delete(o.comp, p)
	if o.hasLeader && o.leader == p {
		o.env.SendAccuse(p, c.inc, c.phase)
	}
	o.recompute()
}

// HandleMembership implements Algorithm: competitors that left, lost
// candidacy or were superseded by a newer incarnation are pruned.
func (o *omegaL) HandleMembership() {
	o.members.invalidate()
	idx := o.members.index(o.env)
	for p, c := range o.comp {
		m, ok := idx[p]
		if !ok || !m.Candidate || m.Incarnation != c.inc {
			delete(o.comp, p)
		}
	}
	o.recompute()
}

// FillAlive implements Algorithm.
func (o *omegaL) FillAlive(m *wire.Alive) {
	m.AccTime = o.acc
	m.Phase = o.phase
}

// Leader implements Algorithm. A self-claim inside the startup grace is
// reported as "no leader yet": the process keeps competing internally but
// does not announce itself before a live incumbent had a chance to appear.
func (o *omegaL) Leader() (group.Member, bool) {
	if !o.hasLeader {
		return group.Member{}, false
	}
	if o.leader == o.env.Self() && o.grace.selfSuppressed() {
		return group.Member{}, false
	}
	idx := o.members.index(o.env)
	m, ok := idx[o.leader]
	return m, ok
}

// Stop implements Algorithm.
func (o *omegaL) Stop() {
	o.stopped = true
	o.env.SetActive(false)
}

// recompute re-evaluates the leader and the local competition state.
func (o *omegaL) recompute() {
	if o.stopped {
		return
	}
	idx := o.members.index(o.env)
	var bestID id.Process
	var bestAcc int64
	found := false
	for p, c := range o.comp {
		m, ok := idx[p]
		if !ok || !m.Candidate || m.Incarnation != c.inc {
			continue
		}
		if !found || better(c.acc, p, bestAcc, bestID) {
			bestID, bestAcc, found = p, c.acc, true
		}
	}
	self := o.env.Self()
	if m, ok := idx[self]; ok && m.Candidate {
		if !found || better(o.acc, self, bestAcc, bestID) {
			bestID, bestAcc, found = self, o.acc, true
		}
	}
	o.leader, o.hasLeader = bestID, found
	switch {
	case found && bestID == self && !o.competing:
		o.competing = true
		o.env.SetActive(true)
	case (!found || bestID != self) && o.competing:
		// Voluntary drop-out: advance the phase so that the suspicions our
		// silence is about to cause cannot raise our accusation time.
		o.competing = false
		o.phase++
		noteDropout(o.env, o.phase)
		o.env.SetActive(false)
	}
}
