// Package election implements the Leader Election Algorithm module of the
// service (Section 4): three pluggable election cores sharing one
// host-facing interface.
//
//   - OmegaID (service S1): the leader is the smallest-id process currently
//     deemed alive. Simple and fast, but unstable: a small-id process that
//     recovers demotes a perfectly healthy leader (Section 6.2).
//   - OmegaLC (service S2): accusation times plus two-stage local-leader
//     forwarding; tolerates lossy links and crashed links at quadratic
//     message cost (Section 6.3, based on Aguilera et al. [4]).
//   - OmegaL (service S3): accusation times plus communication-efficient
//     competition — eventually only the leader sends ALIVEs (Section 6.4,
//     based on Aguilera et al. [2]).
//
// Accusation times realise stability: every process records the last time
// it was validly accused of having crashed (initially its start time), and
// leaders are chosen by smallest (accusation time, id). A process that
// recovers re-enters with a fresh — hence large — accusation time and
// therefore cannot displace an incumbent, which is exactly the property
// OmegaID lacks.
//
// Algorithms are passive state machines: the host (internal/core) drives
// them with decoded messages, failure detector edges and membership
// changes, and reads Leader() after every event.
package election

import (
	"fmt"
	"time"

	"stableleader/id"
	"stableleader/internal/group"
	"stableleader/internal/wire"
)

// Kind selects one of the three election cores.
type Kind int

// Available algorithms. OmegaL is the scalable default recommended by the
// paper for all but the most hostile networks; OmegaLC trades quadratic
// traffic for robustness to link crashes; OmegaID exists as the unstable
// baseline of the evaluation.
const (
	OmegaL Kind = iota
	OmegaLC
	OmegaID
)

// String returns the paper's name for the algorithm.
func (k Kind) String() string {
	switch k {
	case OmegaL:
		return "omega-l"
	case OmegaLC:
		return "omega-lc"
	case OmegaID:
		return "omega-id"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Env is the host environment an algorithm runs in. All methods are called
// and served on the node's event loop.
type Env interface {
	// Self is the local process id.
	Self() id.Process
	// Incarnation is the local process's current incarnation.
	Incarnation() int64
	// Now is the local clock.
	Now() time.Time
	// Members is the current non-left membership of the group, sorted by
	// id, including the local process.
	Members() []group.Member
	// SendAccuse transmits an ACCUSE message to the given process.
	SendAccuse(to id.Process, targetIncarnation int64, phase uint32)
	// SetActive switches the local ALIVE heartbeat emission for this group
	// on or off (the Group Maintenance notion of an "active" process).
	SetActive(active bool)
	// StartupGrace is how long after joining the local process must wait
	// before it may report itself as the leader. A process that (re)starts
	// competes immediately, but within one grace period a live incumbent's
	// heartbeat is guaranteed to have been seen, so claiming leadership
	// earlier would only create spurious transient leaderships (e.g. a
	// leader that crashed and recovered within the detection bound briefly
	// agreeing with everyone's stale view of its previous incarnation).
	StartupGrace() time.Duration
}

// Observer is optionally implemented by an Env that exports protocol
// telemetry. Algorithms report decision points that are invisible from
// outside the core through it — today the voluntary competition
// drop-out (the phase bump that keeps deliberate silence from raising
// the local accusation time). Called on the node's event loop, like
// every Env method.
type Observer interface {
	// ObserveDropout reports that the local process voluntarily dropped
	// out of the competition; phase is the new competition phase.
	ObserveDropout(phase uint32)
}

// noteDropout reports a voluntary drop-out to the env if it observes.
func noteDropout(env Env, phase uint32) {
	if o, ok := env.(Observer); ok {
		o.ObserveDropout(phase)
	}
}

// Algorithm is one election core. The host guarantees single-threaded
// delivery and that HandleAlive is only invoked for messages whose sender
// incarnation matches the membership table.
type Algorithm interface {
	// Start initialises the core once the local process has joined.
	Start()
	// HandleAlive processes a received heartbeat's election payload.
	HandleAlive(m *wire.Alive)
	// HandleAccuse processes an accusation addressed to the local process.
	HandleAccuse(m *wire.Accuse)
	// HandleHandover processes a planned leadership handover: the named
	// sender steps down and grants its successor the group-minimal rank.
	// The host also self-applies the handover it originates (Sender equal
	// to the local process), which is how the departing leader demotes
	// itself. Cores without accusation-time state may ignore the message.
	HandleHandover(m *wire.Handover)
	// HandoverGrant returns the accusation-time grant a planned handover
	// should carry, and whether the local process may grant one at all —
	// true only when the core currently elects the local process and can
	// express an instant transfer of its rank. The grant is strictly
	// better (smaller) than every accusation time in the group, so the
	// successor assumes leadership the moment the HANDOVER is applied.
	HandoverGrant() (grantAcc int64, ok bool)
	// HandleTrust reports a failure detector trust edge for p.
	HandleTrust(p id.Process, incarnation int64)
	// HandleSuspect reports a failure detector suspect edge for p.
	HandleSuspect(p id.Process)
	// HandleMembership reports that the membership table changed.
	HandleMembership()
	// FillAlive stamps the election payload onto an outgoing heartbeat.
	FillAlive(m *wire.Alive)
	// Leader returns the current leader of the group, if any.
	Leader() (group.Member, bool)
	// Stop releases the core. No further calls are made after Stop.
	Stop()
}

// New constructs an algorithm of the given kind bound to env.
func New(k Kind, env Env) Algorithm {
	switch k {
	case OmegaL:
		return newOmegaL(env)
	case OmegaLC:
		return newOmegaLC(env)
	case OmegaID:
		return newOmegaID(env)
	default:
		panic(fmt.Sprintf("election: unknown algorithm kind %d", int(k)))
	}
}

// better reports whether candidate (accA, idA) beats (accB, idB) under the
// (accusation time, id) order used by OmegaL and OmegaLC.
func better(accA int64, idA id.Process, accB int64, idB id.Process) bool {
	if accA != accB {
		return accA < accB
	}
	return idA < idB
}

// memberCache caches the membership lookup between membership changes;
// algorithms consult it on every event, so rebuilding per call would
// dominate the hot path.
type memberCache struct {
	idx map[id.Process]group.Member
}

// invalidate drops the cache; call on every HandleMembership.
func (c *memberCache) invalidate() { c.idx = nil }

// index returns the id -> member lookup, rebuilding it if needed.
func (c *memberCache) index(env Env) map[id.Process]group.Member {
	if c.idx == nil {
		ms := env.Members()
		c.idx = make(map[id.Process]group.Member, len(ms))
		for _, m := range ms {
			c.idx[m.ID] = m
		}
	}
	return c.idx
}

// maxInt64 returns the larger of a and b.
func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// graceGate tracks the startup-grace window common to all three cores.
type graceGate struct {
	env      Env
	deadline time.Time
}

// start opens the gate's window at the current time.
func (g *graceGate) start(env Env) {
	g.env = env
	g.deadline = env.Now().Add(env.StartupGrace())
}

// selfSuppressed reports whether a self-leadership claim must still be
// hidden from the application.
func (g *graceGate) selfSuppressed() bool {
	return g.env.Now().Before(g.deadline)
}
