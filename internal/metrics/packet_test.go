package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestPacketStatsDelta(t *testing.T) {
	prev := PacketStats{
		DatagramsOut: 10, BatchesOut: 2, MessagesOut: 30, CoalescedOut: 22, BytesOut: 4000,
		DatagramsIn: 8, BatchesIn: 1, MessagesIn: 20, BytesIn: 3000,
		UnknownDropped: 1, RecvSyscalls: 4, SendSyscalls: 5,
	}
	cur := PacketStats{
		DatagramsOut: 25, BatchesOut: 6, MessagesOut: 90, CoalescedOut: 70, BytesOut: 10000,
		DatagramsIn: 20, BatchesIn: 3, MessagesIn: 55, BytesIn: 8000,
		UnknownDropped: 1, RecvSyscalls: 6, SendSyscalls: 10,
	}
	d := cur.Delta(prev)
	want := PacketStats{
		DatagramsOut: 15, BatchesOut: 4, MessagesOut: 60, CoalescedOut: 48, BytesOut: 6000,
		DatagramsIn: 12, BatchesIn: 2, MessagesIn: 35, BytesIn: 5000,
		UnknownDropped: 0, RecvSyscalls: 2, SendSyscalls: 5,
	}
	if d != want {
		t.Errorf("Delta = %+v, want %+v", d, want)
	}
	// Differencing against itself yields the zero delta.
	if z := cur.Delta(cur); z != (PacketStats{}) {
		t.Errorf("self-delta = %+v, want zero", z)
	}
}

func TestPacketStatsRatesOver(t *testing.T) {
	d := PacketStats{
		DatagramsOut: 30, MessagesOut: 90, BytesOut: 6000,
		DatagramsIn: 10, MessagesIn: 20, BytesIn: 2000,
	}
	r := d.RatesOver(2 * time.Second)
	if r.DatagramsOutPerSec != 15 || r.MessagesOutPerSec != 45 || r.BytesOutPerSec != 3000 {
		t.Errorf("outbound rates = %+v", r)
	}
	if r.DatagramsInPerSec != 5 || r.MessagesInPerSec != 10 || r.BytesInPerSec != 1000 {
		t.Errorf("inbound rates = %+v", r)
	}
	if z := d.RatesOver(0); z != (PacketRates{}) {
		t.Errorf("zero-elapsed rates = %+v, want zero", z)
	}
	if z := d.RatesOver(-time.Second); z != (PacketRates{}) {
		t.Errorf("negative-elapsed rates = %+v, want zero", z)
	}
}

// TestPacketCountersMonotonicUnderConcurrentReaders hammers one counter
// set with writer goroutines while snapshot readers race them, asserting
// every column only ever grows between successive snapshots — the
// contract interval observers (Delta) depend on.
func TestPacketCountersMonotonicUnderConcurrentReaders(t *testing.T) {
	var c PacketCounters
	const (
		writers = 4
		rounds  = 2000
		readers = 3
	)
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < rounds; i++ {
				c.CountOut(3, 180)
				c.CountIn(2, 120)
				c.CountInPart(1, 90, i%2 == 0, false)
				c.CountUnknown(1)
			}
		}()
	}
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			prev := c.Snapshot()
			for {
				cur := c.Snapshot()
				d := cur.Delta(prev)
				if d.DatagramsOut < 0 || d.BatchesOut < 0 || d.MessagesOut < 0 ||
					d.CoalescedOut < 0 || d.BytesOut < 0 ||
					d.DatagramsIn < 0 || d.BatchesIn < 0 || d.MessagesIn < 0 ||
					d.BytesIn < 0 || d.UnknownDropped < 0 {
					select {
					case errs <- "counter regressed between snapshots":
					default:
					}
					return
				}
				prev = cur
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	got := c.Snapshot()
	if want := int64(writers * rounds * 3); got.MessagesOut != want {
		t.Errorf("MessagesOut = %d, want %d", got.MessagesOut, want)
	}
	// CountIn delivers one datagram per call; CountInPart adds messages
	// always and a datagram only when flagged.
	if want := int64(writers * rounds); got.DatagramsIn != want+want/2 {
		t.Errorf("DatagramsIn = %d, want %d", got.DatagramsIn, want+want/2)
	}
}
