package metrics

import (
	"sync/atomic"
	"time"
)

// PacketCounters instruments the outbound packet plane and its receive
// mirror: how many datagrams actually hit the wire, how many protocol
// messages rode inside them, and how much of the traffic was coalesced into
// shared datagrams. The counters are atomic so the single-threaded protocol
// loop can write them while observers snapshot from any goroutine.
//
// The set quantifies the paper's "lightweight shared infrastructure" claim
// end to end: MessagesOut/DatagramsOut is the coalescing factor, and
// BytesOut counts one UDP/IP header per datagram — the honest version of
// the per-workstation KB/s figures.
type PacketCounters struct {
	// DatagramsOut counts datagrams handed to the transport.
	DatagramsOut atomic.Int64
	// BatchesOut counts datagrams that carried more than one message.
	BatchesOut atomic.Int64
	// MessagesOut counts protocol messages emitted, batched or bare.
	MessagesOut atomic.Int64
	// CoalescedOut counts messages that shared a datagram with at least one
	// other message: the traffic the batch envelope saved a datagram for.
	CoalescedOut atomic.Int64
	// BytesOut counts wire bytes sent, including one UDPOverhead per
	// datagram.
	BytesOut atomic.Int64

	// DatagramsIn, BatchesIn, MessagesIn and BytesIn mirror the receive
	// side, counted by the host when it decodes a datagram.
	DatagramsIn atomic.Int64
	BatchesIn   atomic.Int64
	MessagesIn  atomic.Int64
	BytesIn     atomic.Int64

	// UnknownDropped counts received messages skipped because their wire
	// kind is unknown to this build: forward traffic from newer peers
	// (batch inners skipped individually, bare datagrams dropped whole).
	UnknownDropped atomic.Int64
}

// PacketStats is a point-in-time copy of PacketCounters.
type PacketStats struct {
	DatagramsOut int64
	BatchesOut   int64
	MessagesOut  int64
	CoalescedOut int64
	BytesOut     int64

	DatagramsIn int64
	BatchesIn   int64
	MessagesIn  int64
	BytesIn     int64

	UnknownDropped int64

	// RecvSyscalls and SendSyscalls count the kernel crossings behind the
	// datagram columns. They are not counters of this set — the transport
	// owns syscall accounting — so Snapshot leaves them zero; the host
	// fills them from the transport when it exposes them (see
	// transport.IOStatser). DatagramsIn/RecvSyscalls and
	// DatagramsOut/SendSyscalls are the packets-per-syscall ratios the
	// batched packet plane exists to raise above 1.
	RecvSyscalls int64
	SendSyscalls int64
}

// Delta returns the column-wise difference s - prev: the traffic between
// two snapshots of the same counter set. Interval observers (periodic
// stats logs, rate panels) difference snapshots instead of hand-
// subtracting twelve fields; ratio computations (packets per syscall,
// coalescing factor) apply to a delta exactly as to a cumulative
// snapshot, yielding interval ratios.
func (s PacketStats) Delta(prev PacketStats) PacketStats {
	return PacketStats{
		DatagramsOut: s.DatagramsOut - prev.DatagramsOut,
		BatchesOut:   s.BatchesOut - prev.BatchesOut,
		MessagesOut:  s.MessagesOut - prev.MessagesOut,
		CoalescedOut: s.CoalescedOut - prev.CoalescedOut,
		BytesOut:     s.BytesOut - prev.BytesOut,

		DatagramsIn: s.DatagramsIn - prev.DatagramsIn,
		BatchesIn:   s.BatchesIn - prev.BatchesIn,
		MessagesIn:  s.MessagesIn - prev.MessagesIn,
		BytesIn:     s.BytesIn - prev.BytesIn,

		UnknownDropped: s.UnknownDropped - prev.UnknownDropped,

		RecvSyscalls: s.RecvSyscalls - prev.RecvSyscalls,
		SendSyscalls: s.SendSyscalls - prev.SendSyscalls,
	}
}

// PacketRates is a PacketStats delta normalised to per-second rates over
// a measurement interval.
type PacketRates struct {
	DatagramsOutPerSec float64
	MessagesOutPerSec  float64
	BytesOutPerSec     float64
	DatagramsInPerSec  float64
	MessagesInPerSec   float64
	BytesInPerSec      float64
}

// RatesOver converts the snapshot — normally a Delta — into per-second
// rates over elapsed. A non-positive elapsed yields zero rates.
func (s PacketStats) RatesOver(elapsed time.Duration) PacketRates {
	sec := elapsed.Seconds()
	if sec <= 0 {
		return PacketRates{}
	}
	return PacketRates{
		DatagramsOutPerSec: float64(s.DatagramsOut) / sec,
		MessagesOutPerSec:  float64(s.MessagesOut) / sec,
		BytesOutPerSec:     float64(s.BytesOut) / sec,
		DatagramsInPerSec:  float64(s.DatagramsIn) / sec,
		MessagesInPerSec:   float64(s.MessagesIn) / sec,
		BytesInPerSec:      float64(s.BytesIn) / sec,
	}
}

// Snapshot reads every counter. The fields are read individually, so a
// snapshot taken mid-flush may be off by one message between columns; each
// column is itself exact.
func (c *PacketCounters) Snapshot() PacketStats {
	return PacketStats{
		DatagramsOut: c.DatagramsOut.Load(),
		BatchesOut:   c.BatchesOut.Load(),
		MessagesOut:  c.MessagesOut.Load(),
		CoalescedOut: c.CoalescedOut.Load(),
		BytesOut:     c.BytesOut.Load(),
		DatagramsIn:  c.DatagramsIn.Load(),
		BatchesIn:    c.BatchesIn.Load(),
		MessagesIn:   c.MessagesIn.Load(),
		BytesIn:      c.BytesIn.Load(),

		UnknownDropped: c.UnknownDropped.Load(),
	}
}

// CountOut records one outbound datagram carrying msgs messages and bytes
// wire bytes (UDP/IP overhead included).
func (c *PacketCounters) CountOut(msgs int, bytes int) {
	if c == nil {
		return
	}
	c.DatagramsOut.Add(1)
	c.MessagesOut.Add(int64(msgs))
	c.BytesOut.Add(int64(bytes))
	if msgs > 1 {
		c.BatchesOut.Add(1)
		c.CoalescedOut.Add(int64(msgs))
	}
}

// CountUnknown records n received messages skipped for carrying a wire
// kind this build does not know.
func (c *PacketCounters) CountUnknown(n int64) {
	if c == nil || n == 0 {
		return
	}
	c.UnknownDropped.Add(n)
}

// CountIn records one inbound datagram carrying msgs messages and bytes
// wire bytes (UDP/IP overhead included).
func (c *PacketCounters) CountIn(msgs int, bytes int) {
	if c == nil {
		return
	}
	c.DatagramsIn.Add(1)
	c.MessagesIn.Add(int64(msgs))
	c.BytesIn.Add(int64(bytes))
	if msgs > 1 {
		c.BatchesIn.Add(1)
	}
}

// CountInPart records one shard's share of an inbound datagram whose
// messages were steered to several event-loop shards. MessagesIn counts
// every part; the datagram-level columns (DatagramsIn, BytesIn, and
// BatchesIn when the whole datagram carried more than one message) are
// carried by exactly one part, flagged datagram by the steering stage —
// so a datagram split three ways still counts once, while per-shard
// message delivery stays exact.
func (c *PacketCounters) CountInPart(msgs int, bytes int, datagram bool, batch bool) {
	if c == nil {
		return
	}
	c.MessagesIn.Add(int64(msgs))
	if datagram {
		c.DatagramsIn.Add(1)
		c.BytesIn.Add(int64(bytes))
		if batch {
			c.BatchesIn.Add(1)
		}
	}
}
