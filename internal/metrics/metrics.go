// Package metrics computes the leader election QoS metrics of Section 5 of
// the paper from an experiment's ground truth:
//
//   - Tr, the leader recovery time: how long a group stays leaderless after
//     its common leader crashes;
//   - λu, the average mistake rate: unjustified demotions (a functional
//     leader losing common leadership) per hour;
//   - Pleader, the leader availability: the fraction of time at which some
//     alive process ℓ is the leader of every alive process in the group.
//
// The Observer consumes a time-ordered stream of events — process up/down
// transitions from the fault injector and per-process leader view changes
// from the service's interrupt callbacks — and integrates the "group has a
// leader" predicate exactly as the paper defines it: at time t the group
// has a leader iff there is an alive process ℓ such that every alive
// process's current view names ℓ.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"stableleader/id"
	"stableleader/internal/stats"
)

// view is one process's current leader opinion. Views name a specific
// incarnation: trusting a previous lifetime of a process is not the same as
// trusting its current one.
type view struct {
	leader id.Process
	inc    int64
	ok     bool
}

// Observer integrates the QoS metrics online.
type Observer struct {
	group id.Group
	from  time.Time // accounting starts here (warm-up excluded)
	last  time.Time // time of the previous event

	// up is every process whose service instance is running; joined is the
	// subset whose join has completed (first leader answer, or the host
	// force-joins after a bounded grace). The availability predicate
	// quantifies over joined processes — a process still executing the join
	// protocol is not yet "in the group" — but a leader only needs to be
	// up, not joined, to count as operational.
	up     map[id.Process]bool
	joined map[id.Process]bool
	views  map[id.Process]view
	// curInc is the incarnation currently running for each up process.
	curInc map[id.Process]int64

	// derived state
	hasLeader bool
	leader    id.Process
	leaderInc int64

	// accumulators
	leaderTime time.Duration
	total      time.Duration

	// leader recovery (Tr)
	trPending   bool
	trCrashedAt time.Time
	trSamples   stats.Welford
	trAll       []time.Duration

	// leaderless windows: every maximal interval without a common leader,
	// whatever the cause (crash, graceful departure, demotion churn),
	// clipped to the accounting window. The distribution separates planned
	// handovers (near-zero windows) from reactive failovers (detection-time
	// windows) in a way the Tr mean — crash recoveries only — cannot.
	llOpen    bool
	llStart   time.Time
	llWindows []time.Duration

	// dualTime integrates the time during which two or more up processes
	// simultaneously considered themselves leader (at their current
	// incarnations) — the split-brain exposure of the run.
	dualTime time.Duration

	// unjustified demotions (λu)
	lastCommon        id.Process
	lastCommonInc     int64
	lastCommonValid   bool
	lastCommonCrashed bool
	demotions         int64
	leaderChanges     int64
}

// NewObserver starts observing a group. Accounting of time-based metrics
// begins at from; events before from still update state (so the predicate
// is correct at from) but do not accumulate.
func NewObserver(group id.Group, from time.Time) *Observer {
	return &Observer{
		group:  group,
		from:   from,
		last:   from,
		up:     make(map[id.Process]bool),
		joined: make(map[id.Process]bool),
		views:  make(map[id.Process]view),
		curInc: make(map[id.Process]int64),
	}
}

// advance integrates the current predicate value up to t.
func (o *Observer) advance(t time.Time) {
	if t.Before(o.from) {
		return
	}
	start := o.last
	if start.Before(o.from) {
		start = o.from
	}
	if d := t.Sub(start); d > 0 {
		o.total += d
		if o.hasLeader {
			o.leaderTime += d
		}
		// advance always runs before the event mutates state, so the
		// current views describe the whole (start, t] interval.
		if o.selfLeaders() >= 2 {
			o.dualTime += d
		}
	}
	if t.After(o.last) {
		o.last = t
	}
}

// selfLeaders counts up processes that currently consider themselves the
// leader at their own running incarnation.
func (o *Observer) selfLeaders() int {
	n := 0
	for p := range o.up {
		v := o.views[p]
		if v.ok && v.leader == p && v.inc == o.curInc[p] {
			n++
		}
	}
	return n
}

// NodeUp records that p's service instance started (or recovered) at t
// with the given incarnation. The process counts as operational (it may be
// elected) but is not yet in the availability predicate until its join
// completes.
func (o *Observer) NodeUp(t time.Time, p id.Process, incarnation int64) {
	o.advance(t)
	o.up[p] = true
	o.joined[p] = false
	o.views[p] = view{}
	o.curInc[p] = incarnation
	o.refresh(t, false)
}

// MarkJoined records that p's join protocol completed (the host bounds the
// join duration; a leaderless group cannot hide behind joining forever).
func (o *Observer) MarkJoined(t time.Time, p id.Process) {
	o.advance(t)
	if !o.up[p] || o.joined[p] {
		return
	}
	o.joined[p] = true
	o.refresh(t, false)
}

// NodeDown records that p crashed at t.
func (o *Observer) NodeDown(t time.Time, p id.Process) {
	o.advance(t)
	crashedLeader := o.hasLeader && o.leader == p
	delete(o.up, p)
	delete(o.joined, p)
	delete(o.views, p)
	delete(o.curInc, p)
	if o.lastCommonValid && o.lastCommon == p {
		o.lastCommonCrashed = true
	}
	o.refresh(t, false)
	if crashedLeader && !o.hasLeader && !t.Before(o.from) {
		// The common leader crashed: the recovery clock starts now.
		o.trPending = true
		o.trCrashedAt = t
	}
}

// NodeLeft records a voluntary departure: the process is no longer part of
// the group predicate and its displacement does not count as a mistake.
func (o *Observer) NodeLeft(t time.Time, p id.Process) {
	o.advance(t)
	delete(o.up, p)
	delete(o.joined, p)
	delete(o.views, p)
	delete(o.curInc, p)
	if o.lastCommonValid && o.lastCommon == p {
		// Leaving is voluntary: a successor is not a demotion mistake.
		o.lastCommonCrashed = true
	}
	o.refresh(t, false)
}

// LeaderView records that process p's local view changed at t, naming a
// specific leader incarnation. The first elected view completes p's join.
func (o *Observer) LeaderView(t time.Time, p id.Process, leader id.Process, leaderInc int64, ok bool) {
	o.advance(t)
	if !o.up[p] {
		return
	}
	o.views[p] = view{leader: leader, inc: leaderInc, ok: ok}
	if ok {
		o.joined[p] = true
	}
	o.refresh(t, true)
}

// refresh recomputes the group predicate and handles transitions.
func (o *Observer) refresh(t time.Time, countChange bool) {
	had, prev, prevInc := o.hasLeader, o.leader, o.leaderInc
	o.hasLeader, o.leader, o.leaderInc = o.evaluate()
	if had && !o.hasLeader {
		o.llOpen, o.llStart = true, t
	}
	if !had && o.hasLeader {
		o.closeLeaderlessWindow(t)
		o.established(t)
	}
	if countChange && had && o.hasLeader && (prev != o.leader || prevInc != o.leaderInc) {
		// Direct switch without a leaderless gap (possible when the last
		// disagreeing process flips): still an establishment of a new
		// common leader.
		o.established(t)
	}
}

// evaluate applies the paper's predicate to the current state: some alive
// process ℓ is the leader in the view of every joined alive process. Views
// must agree on ℓ's incarnation, and that incarnation must be the one
// currently running — trusting a dead lifetime of ℓ does not make the group
// led.
func (o *Observer) evaluate() (bool, id.Process, int64) {
	var leader id.Process
	var leaderInc int64
	members := 0
	for p := range o.up {
		if !o.joined[p] {
			continue
		}
		v := o.views[p]
		if !v.ok {
			return false, "", 0
		}
		if members == 0 {
			leader, leaderInc = v.leader, v.inc
		} else if v.leader != leader || v.inc != leaderInc {
			return false, "", 0
		}
		members++
	}
	if members == 0 || !o.up[leader] || o.curInc[leader] != leaderInc {
		return false, "", 0
	}
	return true, leader, leaderInc
}

// closeLeaderlessWindow records the leaderless interval ending at t,
// clipped to the accounting window.
func (o *Observer) closeLeaderlessWindow(t time.Time) {
	if !o.llOpen {
		return
	}
	o.llOpen = false
	if t.Before(o.from) {
		return
	}
	start := o.llStart
	if start.Before(o.from) {
		start = o.from
	}
	if d := t.Sub(start); d > 0 {
		o.llWindows = append(o.llWindows, d)
	}
}

// established handles the moment a common alive leader exists (again).
func (o *Observer) established(t time.Time) {
	if t.Before(o.from) {
		o.lastCommon, o.lastCommonInc, o.lastCommonValid = o.leader, o.leaderInc, true
		o.lastCommonCrashed = false
		return
	}
	if o.trPending {
		o.trPending = false
		d := t.Sub(o.trCrashedAt)
		o.trSamples.Add(d.Seconds())
		o.trAll = append(o.trAll, d)
	}
	if o.lastCommonValid && (o.leader != o.lastCommon || o.leaderInc != o.lastCommonInc) {
		o.leaderChanges++
		// Unjustified only if the demoted leader's very incarnation is
		// still running: a leader that crashed and restarted lost its
		// leadership because of the crash, however fast it came back.
		if !o.lastCommonCrashed && o.up[o.lastCommon] && o.curInc[o.lastCommon] == o.lastCommonInc {
			o.demotions++
			if debugDemotions {
				fmt.Printf("DEMOTION at %v: %s -> %s (old up=%v)\n", t, o.lastCommon, o.leader, o.up[o.lastCommon])
			}
		}
	}
	o.lastCommon, o.lastCommonInc, o.lastCommonValid = o.leader, o.leaderInc, true
	o.lastCommonCrashed = false
}

// Report is the final metric set of one experiment.
type Report struct {
	// Group identifies the observed group.
	Group id.Group
	// Duration is the accounted observation window.
	Duration time.Duration
	// Pleader is the leader availability in [0, 1].
	Pleader float64
	// TrMean is the average leader recovery time; TrCI95 its 95% CI
	// half-width; TrSamples the number of leader crashes measured.
	TrMean    time.Duration
	TrCI95    time.Duration
	TrSamples int64
	// Tr holds the individual recovery samples.
	Tr []time.Duration
	// MistakesPerHour is λu; MistakesCI95 its 95% CI half-width;
	// Demotions the raw unjustified demotion count.
	MistakesPerHour float64
	MistakesCI95    float64
	Demotions       int64
	// LeaderChanges counts all common-leader successions (justified or not).
	LeaderChanges int64
	// Leaderless holds every leaderless-window sample — each maximal
	// interval without a common leader, whatever the cause — and
	// LeaderlessP50/LeaderlessP99 its percentiles (zero with no samples).
	Leaderless    []time.Duration
	LeaderlessP50 time.Duration
	LeaderlessP99 time.Duration
	// DualLeaderTime is the integrated time during which two or more up
	// processes considered themselves leader simultaneously — the run's
	// split-brain exposure. Zero in every correct execution that keeps
	// agreement; the partition/skew scenarios assert on it.
	DualLeaderTime time.Duration
}

// percentile returns the q-quantile (0 < q ≤ 1) of sorted samples.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Finish closes the observation window at end and returns the report.
func (o *Observer) Finish(end time.Time) Report {
	o.advance(end)
	o.closeLeaderlessWindow(end)
	r := Report{
		Group:          o.group,
		Duration:       o.total,
		TrSamples:      o.trSamples.N(),
		Tr:             append([]time.Duration(nil), o.trAll...),
		Demotions:      o.demotions,
		LeaderChanges:  o.leaderChanges,
		Leaderless:     append([]time.Duration(nil), o.llWindows...),
		DualLeaderTime: o.dualTime,
	}
	if len(r.Leaderless) > 0 {
		sorted := append([]time.Duration(nil), r.Leaderless...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		r.LeaderlessP50 = percentile(sorted, 0.50)
		r.LeaderlessP99 = percentile(sorted, 0.99)
	}
	if o.total > 0 {
		r.Pleader = float64(o.leaderTime) / float64(o.total)
	}
	if o.trSamples.N() > 0 {
		r.TrMean = time.Duration(o.trSamples.Mean() * float64(time.Second))
		r.TrCI95 = time.Duration(o.trSamples.CI95() * float64(time.Second))
	}
	hours := o.total.Hours()
	if hours > 0 {
		r.MistakesPerHour = float64(o.demotions) / hours
		r.MistakesCI95 = stats.PoissonRateCI95(o.demotions, hours)
	}
	return r
}

// String renders the headline numbers.
func (r Report) String() string {
	return fmt.Sprintf("group=%s Pleader=%.4f%% Tr=%v±%v (n=%d) λu=%.2f±%.2f/h demotions=%d changes=%d over %v",
		r.Group, 100*r.Pleader, r.TrMean, r.TrCI95, r.TrSamples,
		r.MistakesPerHour, r.MistakesCI95, r.Demotions, r.LeaderChanges, r.Duration)
}

// debugDemotions enables diagnostic printing of demotion events; used only
// by internal debugging tools.
var debugDemotions = false

// SetDebugDemotions toggles demotion diagnostics (internal tooling).
func SetDebugDemotions(v bool) { debugDemotions = v }
