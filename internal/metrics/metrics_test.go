package metrics

import (
	"math"
	"testing"
	"time"

	"stableleader/id"
)

// at is a convenient absolute timestamp: t0 + seconds.
var t0 = time.Date(2008, 3, 1, 0, 0, 0, 0, time.UTC)

func at(seconds float64) time.Time {
	return t0.Add(time.Duration(seconds * float64(time.Second)))
}

// boot brings a process up and completes its join with the given view.
func boot(o *Observer, t time.Time, p id.Process, leader id.Process, inc int64) {
	o.NodeUp(t, p, 1)
	o.LeaderView(t, p, leader, inc, true)
}

func TestPleaderFullAgreement(t *testing.T) {
	o := NewObserver("g", t0)
	boot(o, at(0), "a", "a", 1)
	boot(o, at(0), "b", "a", 1)
	r := o.Finish(at(100))
	if r.Pleader != 1.0 {
		t.Errorf("Pleader = %v, want 1.0", r.Pleader)
	}
	if r.Demotions != 0 || r.TrSamples != 0 {
		t.Errorf("unexpected events: %+v", r)
	}
}

func TestDisagreementBreaksCommonality(t *testing.T) {
	o := NewObserver("g", t0)
	boot(o, at(0), "a", "a", 1)
	boot(o, at(0), "b", "a", 1)
	// b switches to itself for 10 seconds, then back.
	o.LeaderView(at(40), "b", "b", 1, true)
	o.LeaderView(at(50), "b", "a", 1, true)
	r := o.Finish(at(100))
	if want := 0.9; math.Abs(r.Pleader-want) > 1e-9 {
		t.Errorf("Pleader = %v, want %v", r.Pleader, want)
	}
}

func TestLeaderMustBeAlive(t *testing.T) {
	o := NewObserver("g", t0)
	boot(o, at(0), "a", "a", 1)
	boot(o, at(0), "b", "a", 1)
	// a crashes at t=60; views still agree on a, but a is dead.
	o.NodeDown(at(60), "a")
	r := o.Finish(at(100))
	if want := 0.6; math.Abs(r.Pleader-want) > 1e-9 {
		t.Errorf("Pleader = %v, want %v", r.Pleader, want)
	}
}

func TestTrSampleOnLeaderCrash(t *testing.T) {
	o := NewObserver("g", t0)
	boot(o, at(0), "a", "a", 1)
	boot(o, at(0), "b", "a", 1)
	o.NodeDown(at(10), "a")
	// b elects itself 1.5 seconds later.
	o.LeaderView(at(11.5), "b", "b", 1, true)
	r := o.Finish(at(100))
	if r.TrSamples != 1 {
		t.Fatalf("TrSamples = %d, want 1", r.TrSamples)
	}
	if want := 1500 * time.Millisecond; r.TrMean != want {
		t.Errorf("TrMean = %v, want %v", r.TrMean, want)
	}
	// The succession is justified (the old leader crashed).
	if r.Demotions != 0 {
		t.Errorf("Demotions = %d, want 0", r.Demotions)
	}
	if r.LeaderChanges != 1 {
		t.Errorf("LeaderChanges = %d, want 1", r.LeaderChanges)
	}
}

func TestNoTrSampleWhenNonLeaderCrashes(t *testing.T) {
	o := NewObserver("g", t0)
	boot(o, at(0), "a", "a", 1)
	boot(o, at(0), "b", "a", 1)
	o.NodeDown(at(10), "b")
	r := o.Finish(at(100))
	if r.TrSamples != 0 {
		t.Errorf("TrSamples = %d, want 0 — only leader crashes start the recovery clock", r.TrSamples)
	}
	if r.Pleader != 1.0 {
		t.Errorf("Pleader = %v, want 1.0 (survivor agrees with itself)", r.Pleader)
	}
}

func TestUnjustifiedDemotion(t *testing.T) {
	o := NewObserver("g", t0)
	boot(o, at(0), "a", "b", 1)
	boot(o, at(0), "b", "b", 1)
	// Both switch to a while b is alive and well: the omega-id pattern.
	o.LeaderView(at(50), "a", "a", 1, true)
	o.LeaderView(at(50.2), "b", "a", 1, true)
	r := o.Finish(at(100))
	if r.Demotions != 1 {
		t.Fatalf("Demotions = %d, want 1", r.Demotions)
	}
	if want := 1.0 / (100.0 / 3600); math.Abs(r.MistakesPerHour-want) > 1e-9 {
		t.Errorf("MistakesPerHour = %v, want %v", r.MistakesPerHour, want)
	}
}

func TestJustifiedDemotionAfterCrashAndFastRecovery(t *testing.T) {
	// The leader crashes and recovers faster than detection; the group
	// then replaces it. Per the paper this is NOT a mistake: the leader
	// did crash.
	o := NewObserver("g", t0)
	boot(o, at(0), "a", "a", 1)
	boot(o, at(0), "b", "a", 1)
	o.NodeDown(at(10), "a")
	o.NodeUp(at(10.4), "a", 2) // fast recovery, new incarnation
	// b (and then a) settle on b.
	o.LeaderView(at(11), "b", "b", 1, true)
	o.LeaderView(at(11.1), "a", "b", 1, true)
	r := o.Finish(at(100))
	if r.Demotions != 0 {
		t.Fatalf("Demotions = %d, want 0 — the old incarnation crashed", r.Demotions)
	}
	if r.TrSamples != 1 {
		t.Fatalf("TrSamples = %d, want 1", r.TrSamples)
	}
}

func TestStaleViewsOfOldIncarnationDoNotCount(t *testing.T) {
	o := NewObserver("g", t0)
	boot(o, at(0), "a", "a", 1)
	boot(o, at(0), "b", "a", 1)
	o.NodeDown(at(10), "a")
	o.NodeUp(at(10.2), "a", 2)
	// b still views (a, inc 1): the incarnation no longer exists, so the
	// group must NOT count as led even though "a" is up.
	o.MarkJoined(at(12), "a")
	r := o.Finish(at(20))
	// Led 0..10 only: 10 of 20 seconds.
	if want := 0.5; math.Abs(r.Pleader-want) > 1e-9 {
		t.Errorf("Pleader = %v, want %v", r.Pleader, want)
	}
}

func TestVoluntaryLeaveIsNotADemotion(t *testing.T) {
	o := NewObserver("g", t0)
	boot(o, at(0), "a", "a", 1)
	boot(o, at(0), "b", "a", 1)
	o.NodeLeft(at(10), "a")
	o.LeaderView(at(10.5), "b", "b", 1, true)
	r := o.Finish(at(100))
	if r.Demotions != 0 {
		t.Errorf("Demotions = %d, want 0 for a voluntary departure", r.Demotions)
	}
	if r.TrSamples != 0 {
		t.Errorf("TrSamples = %d, want 0 — leaving is not a crash", r.TrSamples)
	}
}

func TestJoiningProcessExcludedUntilJoined(t *testing.T) {
	o := NewObserver("g", t0)
	boot(o, at(0), "a", "a", 1)
	boot(o, at(0), "b", "a", 1)
	// c boots at t=50 and takes 2 seconds to learn the leader. The group
	// must not count as leaderless during c's join.
	o.NodeUp(at(50), "c", 1)
	o.LeaderView(at(52), "c", "a", 1, true)
	r := o.Finish(at(100))
	if r.Pleader != 1.0 {
		t.Errorf("Pleader = %v, want 1.0 — joining processes are not yet group members", r.Pleader)
	}
}

func TestForceJoinCountsLeaderlessJoiner(t *testing.T) {
	o := NewObserver("g", t0)
	boot(o, at(0), "a", "a", 1)
	o.NodeUp(at(50), "c", 1)
	// The host bounds the join at 2s: c becomes a member with no view.
	o.MarkJoined(at(52), "c")
	o.LeaderView(at(62), "c", "a", 1, true)
	r := o.Finish(at(100))
	// Leaderless 52..62.
	if want := 0.9; math.Abs(r.Pleader-want) > 1e-9 {
		t.Errorf("Pleader = %v, want %v", r.Pleader, want)
	}
}

func TestWarmupExcluded(t *testing.T) {
	o := NewObserver("g", at(30))
	// Total chaos before the warm-up boundary...
	o.NodeUp(at(0), "a", 1)
	o.NodeUp(at(0), "b", 1)
	o.LeaderView(at(29), "a", "a", 1, true)
	o.LeaderView(at(29.5), "b", "a", 1, true)
	r := o.Finish(at(130))
	// ...must not count: from t=30 on the group is perfectly led.
	if r.Pleader != 1.0 {
		t.Errorf("Pleader = %v, want 1.0", r.Pleader)
	}
	if r.Duration != 100*time.Second {
		t.Errorf("Duration = %v, want 100s", r.Duration)
	}
}

func TestEmptyGroupIsLeaderless(t *testing.T) {
	o := NewObserver("g", t0)
	boot(o, at(0), "a", "a", 1)
	o.NodeDown(at(40), "a")
	r := o.Finish(at(100))
	if want := 0.4; math.Abs(r.Pleader-want) > 1e-9 {
		t.Errorf("Pleader = %v, want %v", r.Pleader, want)
	}
}

func TestTrSpansMultipleCrashes(t *testing.T) {
	o := NewObserver("g", t0)
	boot(o, at(0), "a", "a", 1)
	boot(o, at(0), "b", "a", 1)
	boot(o, at(0), "c", "a", 1)
	// Leader a crashes; b and c converge on b after 1s; then b crashes;
	// c elects itself after 2s.
	o.NodeDown(at(10), "a")
	o.LeaderView(at(11), "b", "b", 1, true)
	o.LeaderView(at(11), "c", "b", 1, true)
	o.NodeDown(at(20), "b")
	o.LeaderView(at(22), "c", "c", 1, true)
	r := o.Finish(at(100))
	if r.TrSamples != 2 {
		t.Fatalf("TrSamples = %d, want 2", r.TrSamples)
	}
	if want := 1500 * time.Millisecond; r.TrMean != want {
		t.Errorf("TrMean = %v, want %v (mean of 1s and 2s)", r.TrMean, want)
	}
}

func TestDirectSwitchWithoutGapCountsChange(t *testing.T) {
	// Single-member group: its view flips directly a->b with no leaderless
	// gap. The succession (and potential demotion) must still register.
	o := NewObserver("g", t0)
	boot(o, at(0), "a", "a", 1)
	boot(o, at(0), "b", "a", 1)
	o.LeaderView(at(10), "a", "b", 1, true)
	o.LeaderView(at(10), "b", "b", 1, true)
	r := o.Finish(at(100))
	if r.LeaderChanges != 1 || r.Demotions != 1 {
		t.Errorf("changes=%d demotions=%d, want 1 and 1 (a is alive and never crashed)",
			r.LeaderChanges, r.Demotions)
	}
}

func TestReportString(t *testing.T) {
	o := NewObserver("g", t0)
	boot(o, at(0), "a", "a", 1)
	r := o.Finish(at(10))
	if r.String() == "" {
		t.Error("empty report string")
	}
}

func TestLeaderlessPercentilesNoWindows(t *testing.T) {
	// A run that never loses its leader reports an empty distribution and
	// zero percentiles — not a phantom zero-length sample.
	o := NewObserver("g", t0)
	boot(o, at(0), "a", "a", 1)
	boot(o, at(0), "b", "a", 1)
	r := o.Finish(at(100))
	if len(r.Leaderless) != 0 {
		t.Fatalf("Leaderless = %v, want none", r.Leaderless)
	}
	if r.LeaderlessP50 != 0 || r.LeaderlessP99 != 0 {
		t.Errorf("percentiles = %v/%v, want 0/0 with no samples",
			r.LeaderlessP50, r.LeaderlessP99)
	}
}

func TestLeaderlessPercentilesSingleSample(t *testing.T) {
	// With exactly one window both percentiles collapse onto the sample.
	o := NewObserver("g", t0)
	boot(o, at(0), "a", "a", 1)
	boot(o, at(0), "b", "a", 1)
	o.NodeDown(at(40), "a")
	o.LeaderView(at(43), "b", "b", 1, true)
	r := o.Finish(at(100))
	if len(r.Leaderless) != 1 {
		t.Fatalf("Leaderless = %v, want one window", r.Leaderless)
	}
	if want := 3 * time.Second; r.LeaderlessP50 != want || r.LeaderlessP99 != want {
		t.Errorf("percentiles = %v/%v, want %v for both",
			r.LeaderlessP50, r.LeaderlessP99, want)
	}
}

func TestLeaderlessWindowClippedAtAccountingStart(t *testing.T) {
	// The group goes leaderless during warm-up and recovers after the
	// accounting boundary: only the post-boundary share counts.
	o := NewObserver("g", at(30))
	boot(o, at(0), "a", "a", 1)
	boot(o, at(0), "b", "a", 1)
	o.NodeDown(at(25), "a") // leaderless from t=25, before accounting
	o.LeaderView(at(34), "b", "b", 1, true)
	r := o.Finish(at(130))
	if len(r.Leaderless) != 1 {
		t.Fatalf("Leaderless = %v, want one window", r.Leaderless)
	}
	if want := 4 * time.Second; r.Leaderless[0] != want {
		t.Errorf("window = %v, want %v (clipped to the accounting start)",
			r.Leaderless[0], want)
	}
}

func TestLeaderlessWindowStillOpenAtFinish(t *testing.T) {
	// A window that never closes is clipped at the observation end rather
	// than dropped.
	o := NewObserver("g", t0)
	boot(o, at(0), "a", "a", 1)
	o.NodeDown(at(90), "a")
	r := o.Finish(at(100))
	if len(r.Leaderless) != 1 || r.Leaderless[0] != 10*time.Second {
		t.Fatalf("Leaderless = %v, want one 10s window", r.Leaderless)
	}
}
