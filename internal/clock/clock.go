// Package clock abstracts time for the protocol stack so that identical
// code runs against the wall clock in real deployments and against the
// virtual clock of the discrete-event simulator.
package clock

import "time"

// Timer is a cancellable pending callback, mirroring time.Timer's Stop
// contract: Stop reports whether it prevented the callback from firing.
type Timer interface {
	Stop() bool
}

// Clock supplies the current time and one-shot timers. Implementations must
// deliver AfterFunc callbacks on the owning node's event loop, never
// concurrently with other callbacks of the same node.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// AfterFunc schedules fn to run once after d. A non-positive d schedules
	// fn as soon as possible.
	AfterFunc(d time.Duration, fn func()) Timer
}
