// Package clock abstracts time for the protocol stack so that identical
// code runs against the wall clock in real deployments and against the
// virtual clock of the discrete-event simulator.
package clock

import "time"

// Timer is a cancellable pending callback, mirroring time.Timer's Stop
// contract: Stop reports whether it prevented the callback from firing.
type Timer interface {
	Stop() bool
}

// Rearmer is a reusable one-shot timer bound to a fixed callback: Reset
// arms (or re-arms) it to fire once after d, Stop cancels the pending
// fire. On wheel-backed clocks both operations are O(1) and allocation
// free, which is what the steady-state hot paths (failure detector
// deadlines, heartbeat pacing, coalescing flushes) need — they re-arm on
// every heartbeat.
type Rearmer interface {
	Timer
	// Reset schedules the callback to fire once after d, replacing any
	// pending fire. It reports whether a pending fire was cancelled.
	Reset(d time.Duration) bool
}

// Clock supplies the current time and one-shot timers. Implementations must
// deliver AfterFunc callbacks on the owning node's event loop, never
// concurrently with other callbacks of the same node.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// AfterFunc schedules fn to run once after d. A non-positive d schedules
	// fn as soon as possible.
	AfterFunc(d time.Duration, fn func()) Timer
}

// TimerFactory is implemented by clocks that can hand out re-armable
// timers cheaper than Stop+AfterFunc — the real-time service backs them
// with a hashed timer wheel driven by a single runtime timer, the
// simulator with its event heap.
type TimerFactory interface {
	// NewTimer returns an unarmed Rearmer that runs fn on the owning
	// node's event loop each time it fires.
	NewTimer(fn func()) Rearmer
}

// NewTimer returns an unarmed re-armable timer for fn on c: the clock's
// native implementation when c is a TimerFactory, or a portable
// Stop+AfterFunc fallback otherwise (exactly the re-arm sequence callers
// used to hand-roll, so plain test clocks keep working unchanged).
func NewTimer(c Clock, fn func()) Rearmer {
	if tf, ok := c.(TimerFactory); ok {
		return tf.NewTimer(fn)
	}
	return &fallbackRearmer{c: c, fn: fn}
}

// fallbackRearmer implements Rearmer over any Clock.
type fallbackRearmer struct {
	c  Clock
	fn func()
	t  Timer
}

func (r *fallbackRearmer) Reset(d time.Duration) bool {
	stopped := false
	if r.t != nil {
		stopped = r.t.Stop()
	}
	r.t = r.c.AfterFunc(d, r.fn)
	return stopped
}

func (r *fallbackRearmer) Stop() bool {
	if r.t == nil {
		return false
	}
	return r.t.Stop()
}
