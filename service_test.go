package stableleader_test

import (
	"testing"
	"time"

	stableleader "stableleader"
	"stableleader/id"
	"stableleader/qos"
	"stableleader/transport"
)

// fastQoS keeps real-time tests quick: 150ms detection.
func fastQoS() qos.Spec {
	return qos.Spec{
		DetectionTime:     150 * time.Millisecond,
		MistakeRecurrence: time.Hour,
		QueryAccuracy:     0.999,
	}
}

// startServices boots n services named a, b, c... on one in-process hub.
func startServices(t *testing.T, hub *transport.Inproc, names ...id.Process) map[id.Process]*stableleader.Service {
	t.Helper()
	svcs := make(map[id.Process]*stableleader.Service, len(names))
	for i, name := range names {
		svc, err := stableleader.New(stableleader.Config{
			ID:        name,
			Transport: hub.Endpoint(name),
			Seed:      int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		svcs[name] = svc
	}
	return svcs
}

// joinAll joins every service to the group as a candidate.
func joinAll(t *testing.T, svcs map[id.Process]*stableleader.Service, g id.Group, names []id.Process) map[id.Process]*stableleader.Group {
	t.Helper()
	groups := make(map[id.Process]*stableleader.Group, len(svcs))
	for name, svc := range svcs {
		grp, err := svc.Join(g, stableleader.JoinOptions{
			Candidate: true,
			QoS:       fastQoS(),
			Seeds:     names,
		})
		if err != nil {
			t.Fatal(err)
		}
		groups[name] = grp
	}
	return groups
}

// waitAgreement polls Leader() until every group handle names the same
// elected leader.
func waitAgreement(t *testing.T, groups map[id.Process]*stableleader.Group, timeout time.Duration) id.Process {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var leader id.Process
		agreed := true
		first := true
		for _, g := range groups {
			li, err := g.Leader()
			if err != nil || !li.Elected {
				agreed = false
				break
			}
			if first {
				leader, first = li.Leader, false
			} else if li.Leader != leader {
				agreed = false
				break
			}
		}
		if agreed && !first {
			// Agreement only counts on a live participant: right after a
			// crash the survivors briefly still agree on the dead leader.
			if _, live := groups[leader]; live {
				return leader
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no agreement within the deadline")
	return ""
}

func TestServiceElectsAndReelects(t *testing.T) {
	hub := transport.NewInproc(nil)
	names := []id.Process{"a", "b", "c"}
	svcs := startServices(t, hub, names...)
	groups := joinAll(t, svcs, "demo", names)
	defer func() {
		for _, s := range svcs {
			_ = s.Close(false)
		}
	}()

	leader := waitAgreement(t, groups, 5*time.Second)

	// Kill the leader abruptly (no LEAVE): the rest must re-elect within
	// the detection bound plus slack.
	if err := svcs[leader].Close(false); err != nil {
		t.Fatal(err)
	}
	delete(svcs, leader)
	delete(groups, leader)
	start := time.Now()
	newLeader := waitAgreement(t, groups, 5*time.Second)
	if newLeader == leader {
		t.Fatalf("dead service %q still leads", leader)
	}
	if e := time.Since(start); e > 3*time.Second {
		t.Errorf("re-election took %v", e)
	}
}

func TestServiceGracefulLeaveNotifies(t *testing.T) {
	hub := transport.NewInproc(nil)
	names := []id.Process{"a", "b"}
	svcs := startServices(t, hub, names...)
	groups := joinAll(t, svcs, "demo", names)
	defer func() {
		for _, s := range svcs {
			_ = s.Close(false)
		}
	}()
	leader := waitAgreement(t, groups, 5*time.Second)

	// Graceful close announces LEAVE; the survivor should take over fast.
	if err := svcs[leader].Close(true); err != nil {
		t.Fatal(err)
	}
	delete(svcs, leader)
	delete(groups, leader)
	newLeader := waitAgreement(t, groups, 2*time.Second)
	if newLeader == leader {
		t.Fatal("departed leader still elected")
	}
}

func TestChangesChannelDeliversElectionAndCloses(t *testing.T) {
	hub := transport.NewInproc(nil)
	names := []id.Process{"a", "b"}
	svcs := startServices(t, hub, names...)
	groups := joinAll(t, svcs, "demo", names)

	waitAgreement(t, groups, 5*time.Second)
	// Each member must observe at least one elected view. Notifications
	// trail the queryable state slightly (they hop through the event
	// loop), so allow a bounded wait.
	for name, g := range groups {
		sawElected := false
		timeout := time.After(2 * time.Second)
		for !sawElected {
			select {
			case li, ok := <-g.Changes():
				if !ok {
					t.Fatalf("%s: Changes() closed early", name)
				}
				sawElected = li.Elected
			case <-timeout:
				t.Fatalf("%s: Changes() never reported an elected leader", name)
			}
		}
	}
	for _, s := range svcs {
		_ = s.Close(false)
	}
	// Channels must close after service shutdown.
	for name, g := range groups {
		select {
		case _, ok := <-g.Changes():
			if ok {
				continue // drain remaining buffered items
			}
		case <-time.After(time.Second):
			t.Errorf("%s: Changes() not closed after Close", name)
		}
	}
}

func TestServiceConfigValidation(t *testing.T) {
	if _, err := stableleader.New(stableleader.Config{}); err == nil {
		t.Error("empty config must be rejected")
	}
	hub := transport.NewInproc(nil)
	if _, err := stableleader.New(stableleader.Config{ID: "a"}); err == nil {
		t.Error("missing transport must be rejected")
	}
	svc, err := stableleader.New(stableleader.Config{ID: "a", Transport: hub.Endpoint("a")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Join("g", stableleader.JoinOptions{QoS: qos.Spec{DetectionTime: -1}}); err == nil {
		t.Error("invalid QoS must be rejected")
	}
	if _, err := svc.Join("g", stableleader.JoinOptions{Candidate: true}); err != nil {
		t.Fatalf("join: %v", err)
	}
	if _, err := svc.Join("g", stableleader.JoinOptions{}); err == nil {
		t.Error("double join must be rejected")
	}
	if err := svc.Close(true); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(true); err != nil {
		t.Errorf("double close must be idempotent, got %v", err)
	}
	if _, err := svc.Join("g2", stableleader.JoinOptions{}); err == nil {
		t.Error("join after close must fail")
	}
}

func TestGroupLeaveStopsMembership(t *testing.T) {
	hub := transport.NewInproc(nil)
	names := []id.Process{"a", "b"}
	svcs := startServices(t, hub, names...)
	groups := joinAll(t, svcs, "demo", names)
	defer func() {
		for _, s := range svcs {
			_ = s.Close(false)
		}
	}()
	leader := waitAgreement(t, groups, 5*time.Second)
	if err := groups[leader].Leave(); err != nil {
		t.Fatal(err)
	}
	if err := groups[leader].Leave(); err != nil {
		t.Errorf("double leave must be idempotent, got %v", err)
	}
	delete(groups, leader)
	if waitAgreement(t, groups, 2*time.Second) == leader {
		t.Fatal("left process still elected")
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]stableleader.Algorithm{
		"omega-l":  stableleader.OmegaL,
		"omega-lc": stableleader.OmegaLC,
		"omega-id": stableleader.OmegaID,
		"s1":       stableleader.OmegaID,
		"s2":       stableleader.OmegaLC,
		"s3":       stableleader.OmegaL,
	}
	for s, want := range cases {
		got, err := stableleader.ParseAlgorithm(s)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := stableleader.ParseAlgorithm("raft"); err == nil {
		t.Error("unknown algorithm must error")
	}
	if stableleader.OmegaL.String() != "omega-l" {
		t.Error("Algorithm.String mismatch")
	}
}

func TestGroupStatus(t *testing.T) {
	hub := transport.NewInproc(nil)
	names := []id.Process{"a", "b"}
	svcs := startServices(t, hub, names...)
	// Use omega-lc: everyone heartbeats, so both peers stay trusted.
	// (Under omega-l a dropped-out competitor is legitimately untrusted.)
	groups := make(map[id.Process]*stableleader.Group, len(svcs))
	for name, svc := range svcs {
		grp, err := svc.Join("demo", stableleader.JoinOptions{
			Candidate: true,
			Algorithm: stableleader.OmegaLC,
			QoS:       fastQoS(),
			Seeds:     names,
		})
		if err != nil {
			t.Fatal(err)
		}
		groups[name] = grp
	}
	defer func() {
		for _, s := range svcs {
			_ = s.Close(false)
		}
	}()
	waitAgreement(t, groups, 5*time.Second)
	deadline := time.Now().Add(3 * time.Second)
	for {
		rows, err := groups["a"].Status()
		if err != nil {
			t.Fatal(err)
		}
		allTrusted := len(rows) == 2
		for _, r := range rows {
			if !r.Trusted {
				allTrusted = false
			}
			if r.ID == "a" && !r.Self {
				t.Fatalf("self flag missing: %+v", r)
			}
		}
		if allTrusted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peers never fully trusted: %+v", rows)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestChangesBufferDropsOldestNeverNewest(t *testing.T) {
	hub := transport.NewInproc(nil)
	svc, err := stableleader.New(stableleader.Config{ID: "solo", Transport: hub.Endpoint("solo")})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(false)
	grp, err := svc.Join("demo", stableleader.JoinOptions{
		Candidate:    true,
		QoS:          fastQoS(),
		NotifyBuffer: 1, // force overflow on the second change
	})
	if err != nil {
		t.Fatal(err)
	}
	// A lone candidate produces at least two view changes over its life:
	// the post-grace self-claim now, and more after we leave/rejoin other
	// groups... simplest: wait for the first elected view.
	deadline := time.Now().Add(3 * time.Second)
	for {
		li, err := grp.Leader()
		if err != nil {
			t.Fatal(err)
		}
		if li.Elected {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never elected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// However many notifications were generated, a full buffer must always
	// retain the FRESHEST view. Wait (bounded) for the first notification —
	// it trails the queryable state through the event loop — then drain
	// whatever else is buffered and compare the last one with the query.
	var last stableleader.LeaderInfo
	select {
	case li, ok := <-grp.Changes():
		if !ok {
			t.Fatal("Changes closed early")
		}
		last = li
	case <-time.After(2 * time.Second):
		t.Fatal("no notification retained despite a leader change")
	}
	for drain := true; drain; {
		select {
		case li, ok := <-grp.Changes():
			if !ok {
				drain = false
			} else {
				last = li
			}
		default:
			drain = false
		}
	}
	q, err := grp.Leader()
	if err != nil {
		t.Fatal(err)
	}
	if !last.Elected || last.Leader != q.Leader {
		t.Errorf("retained notification %+v disagrees with current view %+v", last, q)
	}
}
