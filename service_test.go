package stableleader_test

import (
	"context"
	"testing"
	"time"

	stableleader "stableleader"
	"stableleader/id"
	"stableleader/qos"
	"stableleader/transport"
)

// fastQoS keeps real-time tests quick: 150ms detection.
func fastQoS() qos.Spec {
	return qos.Spec{
		DetectionTime:     150 * time.Millisecond,
		MistakeRecurrence: time.Hour,
		QueryAccuracy:     0.999,
	}
}

// startServices boots n services named a, b, c... on one in-process hub.
func startServices(t *testing.T, hub *transport.Inproc, names ...id.Process) map[id.Process]*stableleader.Service {
	t.Helper()
	svcs := make(map[id.Process]*stableleader.Service, len(names))
	for i, name := range names {
		svc, err := stableleader.New(name, hub.Endpoint(name), stableleader.WithSeed(int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		svcs[name] = svc
	}
	return svcs
}

// joinAll joins every service to the group as a candidate.
func joinAll(t *testing.T, svcs map[id.Process]*stableleader.Service, g id.Group, names []id.Process, extra ...stableleader.JoinOption) map[id.Process]*stableleader.Group {
	t.Helper()
	ctx := context.Background()
	groups := make(map[id.Process]*stableleader.Group, len(svcs))
	for name, svc := range svcs {
		opts := append([]stableleader.JoinOption{
			stableleader.AsCandidate(),
			stableleader.WithQoS(fastQoS()),
			stableleader.WithSeeds(names...),
		}, extra...)
		grp, err := svc.Join(ctx, g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		groups[name] = grp
	}
	return groups
}

// waitAgreement polls Leader() until every group handle names the same
// elected leader.
func waitAgreement(t *testing.T, groups map[id.Process]*stableleader.Group, timeout time.Duration) id.Process {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var leader id.Process
		agreed := true
		first := true
		for _, g := range groups {
			li, err := g.Leader(ctx)
			if err != nil || !li.Elected {
				agreed = false
				break
			}
			if first {
				leader, first = li.Leader, false
			} else if li.Leader != leader {
				agreed = false
				break
			}
		}
		if agreed && !first {
			// Agreement only counts on a live participant: right after a
			// crash the survivors briefly still agree on the dead leader.
			if _, live := groups[leader]; live {
				return leader
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no agreement within the deadline")
	return ""
}

func TestServiceElectsAndReelects(t *testing.T) {
	hub := transport.NewInproc(nil)
	names := []id.Process{"a", "b", "c"}
	svcs := startServices(t, hub, names...)
	groups := joinAll(t, svcs, "demo", names)
	defer func() {
		for _, s := range svcs {
			_ = s.Crash()
		}
	}()

	leader := waitAgreement(t, groups, 5*time.Second)

	// Kill the leader abruptly (no LEAVE): the rest must re-elect within
	// the detection bound plus slack.
	if err := svcs[leader].Crash(); err != nil {
		t.Fatal(err)
	}
	delete(svcs, leader)
	delete(groups, leader)
	start := time.Now()
	newLeader := waitAgreement(t, groups, 5*time.Second)
	if newLeader == leader {
		t.Fatalf("dead service %q still leads", leader)
	}
	if e := time.Since(start); e > 3*time.Second {
		t.Errorf("re-election took %v", e)
	}
}

func TestServiceGracefulCloseNotifies(t *testing.T) {
	hub := transport.NewInproc(nil)
	names := []id.Process{"a", "b"}
	svcs := startServices(t, hub, names...)
	groups := joinAll(t, svcs, "demo", names)
	defer func() {
		for _, s := range svcs {
			_ = s.Crash()
		}
	}()
	leader := waitAgreement(t, groups, 5*time.Second)

	// Graceful close announces LEAVE; the survivor should take over fast.
	if err := svcs[leader].Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	delete(svcs, leader)
	delete(groups, leader)
	newLeader := waitAgreement(t, groups, 2*time.Second)
	if newLeader == leader {
		t.Fatal("departed leader still elected")
	}
}

func TestWatchDeliversElectionAndCloses(t *testing.T) {
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	names := []id.Process{"a", "b"}
	svcs := startServices(t, hub, names...)
	groups := joinAll(t, svcs, "demo", names)

	watches := make(map[id.Process]<-chan stableleader.Event, len(groups))
	for name, g := range groups {
		watches[name] = g.Watch(ctx, stableleader.WithEventFilter(stableleader.KindLeaderChanged))
	}

	waitAgreement(t, groups, 5*time.Second)
	// Each member must observe at least one elected view. Notifications
	// trail the queryable state slightly (they hop through the event
	// loop), so allow a bounded wait.
	for name, w := range watches {
		sawElected := false
		timeout := time.After(2 * time.Second)
		for !sawElected {
			select {
			case ev, ok := <-w:
				if !ok {
					t.Fatalf("%s: Watch closed early", name)
				}
				sawElected = ev.(stableleader.LeaderChanged).Info.Elected
			case <-timeout:
				t.Fatalf("%s: Watch never reported an elected leader", name)
			}
		}
	}
	for _, s := range svcs {
		_ = s.Crash()
	}
	// Streams must close after service shutdown.
	for name, w := range watches {
		closed := false
		timeout := time.After(time.Second)
		for !closed {
			select {
			case _, ok := <-w:
				closed = !ok // drain remaining buffered items
			case <-timeout:
				t.Fatalf("%s: Watch not closed after shutdown", name)
			}
		}
	}
}

func TestServiceValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := stableleader.New("", nil); err == nil {
		t.Error("missing id must be rejected")
	}
	if _, err := stableleader.New("a", nil); err == nil {
		t.Error("missing transport must be rejected")
	}
	hub := transport.NewInproc(nil)
	svc, err := stableleader.New("a", hub.Endpoint("a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Join(ctx, "g", stableleader.WithQoS(qos.Spec{DetectionTime: -1})); err == nil {
		t.Error("invalid QoS must be rejected")
	}
	if _, err := svc.Join(ctx, "g", stableleader.WithGossipFanout(-3)); err == nil {
		t.Error("invalid gossip fanout must be rejected")
	}
	if _, err := svc.Join(ctx, "g", stableleader.WithHelloInterval(0)); err == nil {
		t.Error("invalid hello interval must be rejected")
	}
	if _, err := svc.Join(ctx, "g", stableleader.WithAlgorithm(stableleader.Algorithm(99))); err == nil {
		t.Error("invalid algorithm must be rejected")
	}
	if _, err := svc.Join(ctx, "g", stableleader.AsCandidate()); err != nil {
		t.Fatalf("join: %v", err)
	}
	if _, err := svc.Join(ctx, "g"); err == nil {
		t.Error("double join must be rejected")
	}
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(ctx); err != nil {
		t.Errorf("double close must be idempotent, got %v", err)
	}
	if _, err := svc.Join(ctx, "g2"); err == nil {
		t.Error("join after close must fail")
	}
}

func TestGroupLeaveStopsMembership(t *testing.T) {
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	names := []id.Process{"a", "b"}
	svcs := startServices(t, hub, names...)
	groups := joinAll(t, svcs, "demo", names)
	defer func() {
		for _, s := range svcs {
			_ = s.Crash()
		}
	}()
	leader := waitAgreement(t, groups, 5*time.Second)
	if err := groups[leader].Leave(ctx); err != nil {
		t.Fatal(err)
	}
	if err := groups[leader].Leave(ctx); err != nil {
		t.Errorf("double leave must be idempotent, got %v", err)
	}
	delete(groups, leader)
	if waitAgreement(t, groups, 2*time.Second) == leader {
		t.Fatal("left process still elected")
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]stableleader.Algorithm{
		"omega-l":  stableleader.OmegaL,
		"omega-lc": stableleader.OmegaLC,
		"omega-id": stableleader.OmegaID,
		"s1":       stableleader.OmegaID,
		"s2":       stableleader.OmegaLC,
		"s3":       stableleader.OmegaL,
	}
	for s, want := range cases {
		got, err := stableleader.ParseAlgorithm(s)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := stableleader.ParseAlgorithm("raft"); err == nil {
		t.Error("unknown algorithm must error")
	}
}

func TestParseAlgorithmStringRoundTrip(t *testing.T) {
	for _, a := range []stableleader.Algorithm{
		stableleader.OmegaL, stableleader.OmegaLC, stableleader.OmegaID,
	} {
		back, err := stableleader.ParseAlgorithm(a.String())
		if err != nil {
			t.Errorf("ParseAlgorithm(%q): %v", a.String(), err)
		}
		if back != a {
			t.Errorf("round trip %v -> %q -> %v", a, a.String(), back)
		}
	}
}

func TestGroupStatus(t *testing.T) {
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	names := []id.Process{"a", "b"}
	svcs := startServices(t, hub, names...)
	// Use omega-lc: everyone heartbeats, so both peers stay trusted.
	// (Under omega-l a dropped-out competitor is legitimately untrusted.)
	groups := joinAll(t, svcs, "demo", names, stableleader.WithAlgorithm(stableleader.OmegaLC))
	defer func() {
		for _, s := range svcs {
			_ = s.Crash()
		}
	}()
	waitAgreement(t, groups, 5*time.Second)
	deadline := time.Now().Add(3 * time.Second)
	for {
		rows, err := groups["a"].Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		allTrusted := len(rows) == 2
		for _, r := range rows {
			if !r.Trusted {
				allTrusted = false
			}
			if r.ID == "a" && !r.Self {
				t.Fatalf("self flag missing: %+v", r)
			}
		}
		if allTrusted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peers never fully trusted: %+v", rows)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestWatchBufferDropsOldestNeverNewest(t *testing.T) {
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	svc, err := stableleader.New("solo", hub.Endpoint("solo"))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Crash()
	grp, err := svc.Join(ctx, "demo",
		stableleader.AsCandidate(),
		stableleader.WithQoS(fastQoS()),
	)
	if err != nil {
		t.Fatal(err)
	}
	w := grp.Watch(ctx,
		stableleader.WithWatchBuffer(1), // force overflow on the second change
		stableleader.WithEventFilter(stableleader.KindLeaderChanged),
	)
	// Wait for the first elected view through the query surface.
	deadline := time.Now().Add(3 * time.Second)
	for {
		li, err := grp.Leader(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if li.Elected {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never elected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// However many notifications were generated, a full buffer must always
	// retain the FRESHEST view. Wait (bounded) for the first notification —
	// it trails the queryable state through the event loop — then drain
	// whatever else is buffered and compare the last one with the query.
	var last stableleader.LeaderInfo
	select {
	case ev, ok := <-w:
		if !ok {
			t.Fatal("Watch closed early")
		}
		last = ev.(stableleader.LeaderChanged).Info
	case <-time.After(2 * time.Second):
		t.Fatal("no notification retained despite a leader change")
	}
	for drain := true; drain; {
		select {
		case ev, ok := <-w:
			if !ok {
				drain = false
			} else {
				last = ev.(stableleader.LeaderChanged).Info
			}
		default:
			drain = false
		}
	}
	q, err := grp.Leader(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !last.Elected || last.Leader != q.Leader {
		t.Errorf("retained notification %+v disagrees with current view %+v", last, q)
	}
}

// TestPacketStatsCountCoalescedTraffic drives two services through several
// groups on one hub and checks the packet-plane counters: traffic flows,
// datagrams carry batches, and the coalescing factor shows up end to end
// (send side batches, receive side unpacks the same envelopes).
func TestPacketStatsCountCoalescedTraffic(t *testing.T) {
	hub := transport.NewInproc(nil)
	names := []id.Process{"a", "b"}
	// One shard, explicitly: this test exercises the packet-plane
	// counters through CROSS-group coalescing, which happens within one
	// outbound scheduler — on a multi-core host the default shard count
	// would spread the four groups over several schedulers and the
	// cross-group batches this asserts on would (correctly) not form.
	svcs := make(map[id.Process]*stableleader.Service, len(names))
	for i, name := range names {
		svc, err := stableleader.New(name, hub.Endpoint(name),
			stableleader.WithSeed(int64(i+1)), stableleader.WithShards(1))
		if err != nil {
			t.Fatal(err)
		}
		svcs[name] = svc
	}
	defer func() {
		for _, s := range svcs {
			_ = s.Crash()
		}
	}()
	joinAll(t, svcs, "g1", names)
	joinAll(t, svcs, "g2", names)
	joinAll(t, svcs, "g3", names)
	joinAll(t, svcs, "g4", names)

	deadline := time.Now().Add(5 * time.Second)
	var st stableleader.PacketStats
	for time.Now().Before(deadline) {
		st = svcs["a"].PacketStats()
		if st.BatchesOut > 0 && st.BatchesIn > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.DatagramsOut == 0 || st.MessagesOut == 0 || st.BytesOut == 0 {
		t.Fatalf("no outbound traffic counted: %+v", st)
	}
	if st.BatchesOut == 0 || st.CoalescedOut == 0 {
		t.Errorf("four groups toward one peer produced no batches: %+v", st)
	}
	if st.MessagesOut < st.DatagramsOut {
		t.Errorf("messages (%d) below datagrams (%d): impossible", st.MessagesOut, st.DatagramsOut)
	}
	if st.BatchesIn == 0 || st.MessagesIn <= st.DatagramsIn {
		t.Errorf("receive side saw no coalescing: %+v", st)
	}
	// The in-process hub does not account kernel crossings: the syscall
	// counters stay zero and the ratios report "not accounted".
	if st.RecvSyscalls != 0 || st.SendSyscalls != 0 || st.PacketsPerSyscall() != 0 {
		t.Errorf("inproc transport must not report syscalls: %+v", st)
	}
}

// TestPacketStatsSyscallCountersOverUDP boots two members over real UDP
// sockets and checks that the service surfaces the transport's kernel
// crossing counters: RecvSyscalls/SendSyscalls fill from the transport's
// IOStats and the PacketsPerSyscall ratios become meaningful. At the
// protocol's trickle rate datagrams mostly arrive alone, so the ratios
// are asserted positive, not >1 — the >1-under-load property is proven
// by the transport package's burst test and drain benchmark.
func TestPacketStatsSyscallCountersOverUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	trA, err := transport.NewUDP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	trB, err := transport.NewUDP("127.0.0.1:0", map[id.Process]string{
		"a": trA.LocalAddr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := trA.SetPeer("b", trB.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	svcs := map[id.Process]*stableleader.Service{}
	for i, w := range []struct {
		name id.Process
		tr   transport.Transport
	}{{"a", trA}, {"b", trB}} {
		svc, err := stableleader.New(w.name, w.tr, stableleader.WithSeed(int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		svcs[w.name] = svc
	}
	defer func() {
		for _, s := range svcs {
			_ = s.Crash()
		}
	}()
	joinAll(t, svcs, "udp-stats", []id.Process{"a", "b"})

	deadline := time.Now().Add(10 * time.Second)
	var st stableleader.PacketStats
	for time.Now().Before(deadline) {
		st = svcs["a"].PacketStats()
		if st.RecvSyscalls > 0 && st.SendSyscalls > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.RecvSyscalls == 0 || st.SendSyscalls == 0 {
		t.Fatalf("UDP-backed service never surfaced syscall counters: %+v", st)
	}
	if st.RecvPacketsPerSyscall() <= 0 || st.SendPacketsPerSyscall() <= 0 || st.PacketsPerSyscall() <= 0 {
		t.Errorf("ratios must be positive once syscalls are accounted: recv=%.2f send=%.2f total=%.2f",
			st.RecvPacketsPerSyscall(), st.SendPacketsPerSyscall(), st.PacketsPerSyscall())
	}
}
