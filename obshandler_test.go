package stableleader_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	stableleader "stableleader"
	"stableleader/id"
	"stableleader/transport"
)

// probe issues one request against the observability handler.
func probe(h http.Handler, path string) (int, string) {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code, rec.Body.String()
}

// pollStatus polls path until it answers with code, failing at the
// deadline.
func pollStatus(t *testing.T, h http.Handler, path string, code int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if got, _ := probe(h, path); got == code {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	got, body := probe(h, path)
	t.Fatalf("%s = %d (%q), want %d within %v", path, got, strings.TrimSpace(body), code, timeout)
}

// metricValue extracts the value of an unlabelled sample from a text
// exposition body; -1 when the series is absent.
func metricValue(body, name string) float64 {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				return -1
			}
			return v
		}
	}
	return -1
}

// checkExpositionFormat validates every sample line of a text exposition
// body: metric name (optionally labelled) followed by a float value.
func checkExpositionFormat(t *testing.T, body string) {
	t.Helper()
	if !strings.HasSuffix(body, "\n") {
		t.Error("exposition does not end in a newline")
	}
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Errorf("sample line without value: %q", line)
			continue
		}
		name, value := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(value, 64); err != nil && value != "+Inf" && value != "NaN" {
			t.Errorf("unparseable sample value in %q: %v", line, err)
		}
		base := name
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Errorf("malformed labels in %q", line)
			}
			base = name[:i]
		}
		for _, r := range base {
			if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
				t.Errorf("invalid metric name %q", base)
				break
			}
		}
	}
}

// flightRecord mirrors the dump shape for decoding.
type flightRecord struct {
	At      string `json:"at"`
	Kind    string `json:"kind"`
	Group   string `json:"group"`
	Subject string `json:"subject"`
}

func TestObservabilityPlaneEndToEnd(t *testing.T) {
	hub := transport.NewInproc(nil)
	names := []id.Process{"a", "b"}
	svcs := startServices(t, hub, names...)
	defer func() {
		for _, svc := range svcs {
			_ = svc.Crash()
		}
	}()

	handlers := map[id.Process]http.Handler{}
	for name, svc := range svcs {
		handlers[name] = svc.ObsHandler()
	}

	// Liveness is immediate; with no groups joined, readiness is vacuous.
	for _, name := range names {
		if code, _ := probe(handlers[name], "/healthz"); code != http.StatusOK {
			t.Fatalf("healthz on %s = %d, want 200", name, code)
		}
		if code, body := probe(handlers[name], "/readyz"); code != http.StatusOK {
			t.Fatalf("readyz with no groups on %s = %d (%q), want 200", name, code, body)
		}
	}

	const g = id.Group("obs-e2e")
	groups := joinAll(t, svcs, g, names)
	leader := waitAgreement(t, groups, 5*time.Second)

	// Converged: every handler reports ready.
	for _, name := range names {
		pollStatus(t, handlers[name], "/readyz", http.StatusOK, 5*time.Second)
	}

	// Readiness flips with convergence: an observer joining a group with
	// no candidates yet is deterministically unready, and flips to ready
	// the moment candidates join and its view converges. (A two-node
	// crash re-election switches the survivor's view leader-to-leader in
	// one event, so it cannot demonstrate the unready state.)
	csvc, err := stableleader.New("c", hub.Endpoint("c"), stableleader.WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	svcs["c"] = csvc
	ch := csvc.ObsHandler()
	const g2 = id.Group("obs-flip")
	if _, err := csvc.Join(context.Background(), g2,
		stableleader.WithQoS(fastQoS()), stableleader.WithSeeds(names...)); err != nil {
		t.Fatal(err)
	}
	if code, body := probe(ch, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz on observer of candidate-less group = %d (%q), want 503", code, body)
	}
	ab := map[id.Process]*stableleader.Service{names[0]: svcs[names[0]], names[1]: svcs[names[1]]}
	joinAll(t, ab, g2, append([]id.Process{"c"}, names...))
	pollStatus(t, ch, "/readyz", http.StatusOK, 5*time.Second)

	// Kill the leader; the survivor re-elects and stays ready.
	survivor := names[0]
	if survivor == leader {
		survivor = names[1]
	}
	if err := svcs[leader].Crash(); err != nil {
		t.Fatal(err)
	}
	delete(svcs, leader)
	delete(groups, leader)
	sh := handlers[survivor]
	if waitAgreement(t, groups, 5*time.Second) != survivor {
		t.Fatal("survivor did not take leadership")
	}
	pollStatus(t, sh, "/readyz", http.StatusOK, 5*time.Second)

	// The metrics exposition must be valid text format and carry every
	// subsystem's series.
	code, body := probe(sh, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	checkExpositionFormat(t, body)
	for _, family := range []string{
		// Election plane.
		"stableleader_elections_started_total",
		"stableleader_elections_won_total",
		"stableleader_leader_changes_total",
		"stableleader_leaderless_seconds_bucket",
		// Failure detection plane.
		"stableleader_fd_heartbeats_total",
		"stableleader_fd_suspicions_total",
		"stableleader_accusations_sent_total",
		// Standby/handover plane.
		"stableleader_standby_nominations_total",
		"stableleader_handovers_sent_total",
		// Client plane.
		"stableleader_client_subscribes_total",
		"stableleader_client_leases",
		// Packet plane and syscall ratios.
		"stableleader_datagrams_sent_total",
		"stableleader_messages_received_total",
		"stableleader_recv_syscalls_total",
		"stableleader_recv_packets_per_syscall",
		"stableleader_send_packets_per_syscall",
		// Runtime gauges.
		"stableleader_timer_wheel_entries",
		"stableleader_groups_joined",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("metrics missing %s", family)
		}
	}
	if v := metricValue(body, "stableleader_elections_won_total"); v < 1 {
		t.Errorf("elections_won = %v, want >= 1 (survivor won the re-election)", v)
	}
	if v := metricValue(body, "stableleader_fd_suspicions_total"); v < 1 {
		t.Errorf("fd_suspicions = %v, want >= 1 (crashed leader was suspected)", v)
	}
	if v := metricValue(body, "stableleader_leader_changes_total"); v < 1 {
		t.Errorf("leader_changes = %v, want >= 1", v)
	}
	if v := metricValue(body, "stableleader_fd_heartbeats_total"); v < 1 {
		t.Errorf("fd_heartbeats = %v, want >= 1", v)
	}
	if v := metricValue(body, "stableleader_groups_joined"); v != 2 {
		t.Errorf("groups_joined = %v, want 2 (obs-e2e and obs-flip)", v)
	}
	// The inproc transport accounts no syscalls, so the ratio reads 0.
	if v := metricValue(body, "stableleader_recv_packets_per_syscall"); v != 0 {
		t.Errorf("recv packets/syscall = %v, want 0 on inproc", v)
	}

	// The flight recorder must hold the crash-driven re-election as the
	// suspect → rank-change → leader-change sequence.
	var buf bytes.Buffer
	if err := svcs[survivor].DumpFlight(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	var env struct {
		Node    string         `json:"node"`
		Records []flightRecord `json:"records"`
	}
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v", err)
	}
	if env.Node != string(survivor) {
		t.Errorf("flight node = %q, want %q", env.Node, survivor)
	}
	suspect := -1
	rankChange := -1
	leaderChange := -1
	for i, r := range env.Records {
		if r.Group != string(g) {
			continue
		}
		switch {
		case suspect < 0 && r.Kind == "suspect" && r.Subject == string(leader):
			suspect = i
		case suspect >= 0 && rankChange < 0 && r.Kind == "rank-change":
			rankChange = i
		case rankChange >= 0 && leaderChange < 0 && r.Kind == "leader-change" && r.Subject == string(survivor):
			leaderChange = i
		}
	}
	if suspect < 0 || rankChange < 0 || leaderChange < 0 {
		t.Fatalf("flight dump missing suspect(%d) -> rank-change(%d) -> leader-change(%d) sequence:\n%s",
			suspect, rankChange, leaderChange, buf.String())
	}

	// The HTTP flight endpoint serves the same dump.
	code, fbody := probe(sh, "/debug/flight")
	if code != http.StatusOK || !strings.Contains(fbody, `"records"`) {
		t.Errorf("/debug/flight = %d, body %q...", code, fbody[:min(len(fbody), 80)])
	}

	// A closed service reports unhealthy and unready.
	if err := svcs[survivor].Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	delete(svcs, survivor)
	if code, _ := probe(sh, "/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("healthz after close = %d, want 503", code)
	}
	if code, _ := probe(sh, "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz after close = %d, want 503", code)
	}
}
