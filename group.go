package stableleader

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stableleader/id"
	"stableleader/internal/core"
)

// LeaderInfo describes the leadership of one group as seen locally.
type LeaderInfo struct {
	// Group is the group concerned.
	Group id.Group
	// Leader is the elected process (empty if Elected is false).
	Leader id.Process
	// Incarnation distinguishes successive lifetimes of the leader process.
	Incarnation int64
	// Elected is false while the group looks leaderless from this process
	// (for example during an election).
	Elected bool
	// At is when this view was adopted.
	At time.Time
}

// MemberStatus is one group member as seen by the local failure detection
// layer: identity, candidacy, the detector's current trust verdict, and the
// (η, δ) parameters its QoS configurator chose for the link.
type MemberStatus struct {
	ID          id.Process
	Incarnation int64
	Candidate   bool
	Self        bool
	Trusted     bool
	// Interval (η) is the heartbeat rate requested from this member;
	// Timeout (δ) the timeout shift applied to its heartbeats.
	Interval time.Duration
	Timeout  time.Duration
}

// leaderView is the copy-on-write leader snapshot behind the wait-free
// read plane. A new view is published (never mutated) on the service
// event loop at exactly the points the LeaderChanged interrupt fires.
type leaderView struct {
	info LeaderInfo
	// observed distinguishes a real leadership observation from the
	// join-time seed: the closed-service fallback only serves the former,
	// mirroring the event stream's "last published view" semantics.
	observed bool
	// err, when non-nil, tombstones the view (the group was left).
	err error
}

// statusView is the copy-on-write membership/FD snapshot behind
// Group.Status. The slice is immutable once published.
type statusView struct {
	rows []MemberStatus
	err  error // tombstone: the group was left
}

// standbyView is the copy-on-write warm-standby snapshot behind
// Group.Standby, published on the event loop at every nomination change.
type standbyView struct {
	p   id.Process
	inc int64
	err error // tombstone: the group was left
}

// Deposition errors, mirrored from the core so callers can test with
// errors.Is against the public package.
var (
	// ErrNotLeader reports a Depose on a group this process does not lead.
	ErrNotLeader = core.ErrNotLeader
	// ErrNoStandby reports a Depose with no live standby to hand over to.
	ErrNoStandby = core.ErrNoStandby
)

// Group is a handle on one joined group.
type Group struct {
	svc *Service
	// sh is the event-loop shard that owns this group's protocol state;
	// every loop-serialised operation on the group routes to it. Fixed at
	// Join: a group never migrates between shards.
	sh *serviceShard
	id id.Group

	// leader, status and standby are the atomic read plane: Leader, Status
	// and Standby are single atomic loads against these, with no event-loop
	// round-trip and no contention with protocol work. Writers (the event
	// loop, plus Leave's tombstone) publish whole new views.
	leader  atomic.Pointer[leaderView]
	status  atomic.Pointer[statusView]
	standby atomic.Pointer[standbyView]

	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool
	left   bool
	donec  chan struct{} // closed with the subscribers; ends Watch reapers
}

// newGroup builds the handle for group g, owned by shard sh.
func newGroup(svc *Service, sh *serviceShard, g id.Group) *Group {
	return &Group{
		svc:   svc,
		sh:    sh,
		id:    g,
		subs:  make(map[*subscriber]struct{}),
		donec: make(chan struct{}),
	}
}

// ID returns the group identifier.
func (g *Group) ID() id.Group { return g.id }

// publish fans one event out to every subscriber. It runs on the service
// event loop (one publisher at a time); the mutex orders it against
// subscription and teardown.
func (g *Group) publish(ev Event) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if lc, ok := ev.(LeaderChanged); ok {
		g.leader.Store(&leaderView{info: lc.Info, observed: true})
	}
	if g.closed {
		return
	}
	for s := range g.subs {
		s.offer(ev)
	}
}

// seedLeader installs the initial leader view at join time, unless an
// observation already beat it to the store (a leadership change fired
// during the core join itself).
func (g *Group) seedLeader(info LeaderInfo) {
	g.leader.CompareAndSwap(nil, &leaderView{info: info})
}

// storeStatus publishes a status snapshot; the rows come from the core's
// OnStatus hook on the event loop, already sorted and never re-mutated.
func (g *Group) storeStatus(rows []core.MemberStatus) {
	g.status.Store(&statusView{rows: publicStatusRows(rows)})
}

// storeStandby publishes a warm-standby view; called from the core's
// OnStandbyChange hook on the event loop.
func (g *Group) storeStandby(p id.Process, inc int64) {
	g.standby.Store(&standbyView{p: p, inc: inc})
}

// publicStatusRows converts the internal status rows.
func publicStatusRows(rows []core.MemberStatus) []MemberStatus {
	out := make([]MemberStatus, len(rows))
	for i, r := range rows {
		out[i] = MemberStatus{
			ID:          r.ID,
			Incarnation: r.Incarnation,
			Candidate:   r.Candidate,
			Self:        r.Self,
			Trusted:     r.Trusted,
			Interval:    r.Interval,
			Timeout:     r.Timeout,
		}
	}
	return out
}

// Watch subscribes to the group's event stream: leadership changes,
// membership joins and leaves, failure detector suspicion edges and QoS
// reconfigurations (filterable with WithEventFilter). Any number of
// subscribers may watch one group concurrently; each receives its own
// copy of every event through its own buffer. Delivery never blocks the
// service: a subscriber that falls behind loses the oldest undelivered
// events, never the newest.
//
// The returned channel closes when ctx is cancelled, the group is left,
// or the service closes. Watching an already-left group returns a closed
// channel.
func (g *Group) Watch(ctx context.Context, opts ...WatchOption) <-chan Event {
	cfg := watchConfig{buffer: defaultWatchBuffer}
	for _, o := range opts {
		o(&cfg)
	}
	sub := &subscriber{ch: make(chan Event, cfg.buffer), mask: cfg.mask}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		close(sub.ch)
		return sub.ch
	}
	g.subs[sub] = struct{}{}
	if lv := g.leader.Load(); cfg.initial && lv != nil && lv.observed {
		sub.offer(LeaderChanged{Info: lv.info})
	}
	g.mu.Unlock()

	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				g.unsubscribe(sub)
			case <-g.donec:
				// Teardown already closed every subscriber channel.
			}
		}()
	}
	return sub.ch
}

// unsubscribe detaches one subscriber and closes its channel.
func (g *Group) unsubscribe(sub *subscriber) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.subs[sub]; !ok {
		return
	}
	delete(g.subs, sub)
	close(sub.ch)
}

// closeSubscribers ends every Watch stream exactly once.
func (g *Group) closeSubscribers() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	g.closed = true
	for s := range g.subs {
		close(s.ch)
		delete(g.subs, s)
	}
	close(g.donec)
}

// Leader returns the current leader view — the paper's "query" mode, the
// surface every application request path hits. By default it is a single
// atomic load: wait-free, allocation-free, and contention-free against
// protocol work. The view is the one most recently published by the
// event loop; an event being processed concurrently with the load may
// not be reflected yet (it is observable no later than its LeaderChanged
// event on Watch). WithSyncRead serialises the read through the event
// loop instead, for callers needing read-your-event-loop semantics.
//
// On a closed service Leader falls back to the last locally observed
// view when one exists.
//
//leadervet:hotpath
func (g *Group) Leader(ctx context.Context, opts ...QueryOption) (LeaderInfo, error) {
	if wantSyncRead(opts) {
		return g.leaderSync(ctx)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return LeaderInfo{}, err
		}
	}
	lv := g.leader.Load()
	select {
	case <-g.svc.closing:
		// Closed-service semantics match the loop path: the last observed
		// view when there is one, ErrClosed otherwise.
		if lv != nil && lv.observed && lv.err == nil {
			return lv.info, nil
		}
		return LeaderInfo{}, ErrClosed
	default:
	}
	if lv == nil {
		// Unreachable through the public API (Join seeds the view before
		// returning the handle), kept as a defensive fallback.
		return g.leaderSync(ctx)
	}
	if lv.err != nil {
		return LeaderInfo{}, lv.err
	}
	return lv.info, nil
}

// leaderSync is the loop-serialised leader query behind WithSyncRead,
// serialised through the group's owning shard.
func (g *Group) leaderSync(ctx context.Context) (LeaderInfo, error) {
	var li LeaderInfo
	var lerr error
	err := g.sh.call(ctx, func() {
		cli, e := g.sh.node.Leader(g.id)
		li, lerr = publicInfo(cli), e
	})
	if err != nil {
		if errors.Is(err, ErrClosed) {
			if lv := g.leader.Load(); lv != nil && lv.observed && lv.err == nil {
				return lv.info, nil
			}
		}
		return LeaderInfo{}, err
	}
	return li, lerr
}

// Status queries the group's membership and failure detection state — the
// query surface of the shared failure detector service underlying the
// election (Section 4 of the paper). By default it is a single atomic
// load of the latest copy-on-write snapshot published by the event loop
// (same staleness contract as Leader).
//
// The returned slice is the shared snapshot itself, not a copy: treat it
// as strictly read-only. Mutating it (even reordering rows in place) is
// a data race against every concurrent Status caller. Callers that need
// a private, mutable copy must copy the rows, or use WithSyncRead, which
// builds a fresh slice on the event loop per call.
//
//leadervet:hotpath
func (g *Group) Status(ctx context.Context, opts ...QueryOption) ([]MemberStatus, error) {
	if wantSyncRead(opts) {
		return g.statusSync(ctx)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	select {
	case <-g.svc.closing:
		return nil, ErrClosed
	default:
	}
	sv := g.status.Load()
	if sv == nil {
		return g.statusSync(ctx) // defensive; Join seeds the snapshot
	}
	if sv.err != nil {
		return nil, sv.err
	}
	return sv.rows, nil
}

// statusSync is the loop-serialised status query behind WithSyncRead,
// serialised through the group's owning shard.
func (g *Group) statusSync(ctx context.Context) ([]MemberStatus, error) {
	var out []MemberStatus
	var serr error
	err := g.sh.call(ctx, func() {
		rows, e := g.sh.node.Status(g.id)
		if e != nil {
			serr = e
			return
		}
		out = publicStatusRows(rows)
	})
	if err != nil {
		return nil, err
	}
	return out, serr
}

// Standby returns the group's current warm standby as seen locally: the
// follower the leader has nominated (and continuously announces in its
// heartbeat stream) to take over on a planned handover. ok is false while
// no nomination has been observed — on followers that predates the first
// STANDBY adoption; on the leader it means no live follower qualifies.
// Like Leader, it is a single atomic load against the copy-on-write view
// the event loop publishes.
func (g *Group) Standby(ctx context.Context) (p id.Process, incarnation int64, ok bool, err error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return "", 0, false, err
		}
	}
	select {
	case <-g.svc.closing:
		return "", 0, false, ErrClosed
	default:
	}
	sv := g.standby.Load()
	if sv == nil {
		return "", 0, false, nil
	}
	if sv.err != nil {
		return "", 0, false, sv.err
	}
	return sv.p, sv.inc, sv.p != "", nil
}

// Depose steps this process down as the group's leader without leaving:
// a planned handover transfers leadership to the current warm standby
// immediately (urgent HANDOVER to every peer), and this process stays in
// the group as a ranked-last follower. It fails with ErrNotLeader when
// this process does not lead the group, and with ErrNoStandby when no
// live follower qualifies as successor (deposing would leave the group
// leaderless until the next election). Serialised through the group's
// event-loop shard.
func (g *Group) Depose(ctx context.Context) error {
	var derr error
	if err := g.sh.call(ctx, func() { derr = g.sh.node.Depose(g.id) }); err != nil {
		return err
	}
	return derr
}

// Leave departs the group gracefully: a LEAVE is announced so peers
// re-elect immediately rather than waiting for failure detection. It
// honours ctx for cancellation; the departure still completes in the
// background if ctx expires first. Leave is idempotent.
func (g *Group) Leave(ctx context.Context) error {
	g.mu.Lock()
	if g.left {
		g.mu.Unlock()
		return nil
	}
	g.left = true
	g.mu.Unlock()
	// leave departs on the loop and then tombstones the read plane, so
	// wait-free reads after Leave report the same not-joined error the
	// loop path would. Tombstoning ON the loop, after node.Leave, is what
	// makes it final: every publication also runs on the loop, so none
	// can overwrite it. (The closing check in Leader/Status still takes
	// precedence, matching the loop path's ErrClosed-first ordering.)
	tombstone := func() {
		tomb := fmt.Errorf("%w: %q", core.ErrNotJoined, g.id)
		g.leader.Store(&leaderView{err: tomb})
		g.status.Store(&statusView{err: tomb})
		g.standby.Store(&standbyView{err: tomb})
	}
	var lerr error
	err := g.sh.call(ctx, func() {
		lerr = g.sh.node.Leave(g.id)
		tombstone()
	})
	if err != nil && !errors.Is(err, ErrClosed) {
		// ctx expired before the loop ran the departure; finish it in the
		// background (leaving twice is a harmless no-op).
		g.sh.enqueue(func() {
			_ = g.sh.node.Leave(g.id)
			tombstone()
		})
	}
	g.svc.mu.Lock()
	delete(g.svc.groups, g.id)
	g.svc.mu.Unlock()
	g.closeSubscribers()
	if err != nil {
		return err
	}
	return lerr
}

// publicInfo converts the internal view type.
func publicInfo(li core.LeaderInfo) LeaderInfo {
	return LeaderInfo{
		Group:       li.Group,
		Leader:      li.Leader,
		Incarnation: li.Incarnation,
		Elected:     li.Elected,
		At:          li.At,
	}
}
