package stableleader

import (
	"context"
	"errors"
	"sync"
	"time"

	"stableleader/id"
	"stableleader/internal/core"
)

// LeaderInfo describes the leadership of one group as seen locally.
type LeaderInfo struct {
	// Group is the group concerned.
	Group id.Group
	// Leader is the elected process (empty if Elected is false).
	Leader id.Process
	// Incarnation distinguishes successive lifetimes of the leader process.
	Incarnation int64
	// Elected is false while the group looks leaderless from this process
	// (for example during an election).
	Elected bool
	// At is when this view was adopted.
	At time.Time
}

// MemberStatus is one group member as seen by the local failure detection
// layer: identity, candidacy, the detector's current trust verdict, and the
// (η, δ) parameters its QoS configurator chose for the link.
type MemberStatus struct {
	ID          id.Process
	Incarnation int64
	Candidate   bool
	Self        bool
	Trusted     bool
	// Interval (η) is the heartbeat rate requested from this member;
	// Timeout (δ) the timeout shift applied to its heartbeats.
	Interval time.Duration
	Timeout  time.Duration
}

// Group is a handle on one joined group.
type Group struct {
	svc *Service
	id  id.Group

	mu      sync.Mutex
	last    LeaderInfo
	hasLast bool
	subs    map[*subscriber]struct{}
	closed  bool
	left    bool
	donec   chan struct{} // closed with the subscribers; ends Watch reapers
}

// newGroup builds the handle for group g.
func newGroup(svc *Service, g id.Group) *Group {
	return &Group{
		svc:   svc,
		id:    g,
		subs:  make(map[*subscriber]struct{}),
		donec: make(chan struct{}),
	}
}

// ID returns the group identifier.
func (g *Group) ID() id.Group { return g.id }

// publish fans one event out to every subscriber. It runs on the service
// event loop (one publisher at a time); the mutex orders it against
// subscription and teardown.
func (g *Group) publish(ev Event) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if lc, ok := ev.(LeaderChanged); ok {
		g.last, g.hasLast = lc.Info, true
	}
	if g.closed {
		return
	}
	for s := range g.subs {
		s.offer(ev)
	}
}

// Watch subscribes to the group's event stream: leadership changes,
// membership joins and leaves, failure detector suspicion edges and QoS
// reconfigurations (filterable with WithEventFilter). Any number of
// subscribers may watch one group concurrently; each receives its own
// copy of every event through its own buffer. Delivery never blocks the
// service: a subscriber that falls behind loses the oldest undelivered
// events, never the newest.
//
// The returned channel closes when ctx is cancelled, the group is left,
// or the service closes. Watching an already-left group returns a closed
// channel.
func (g *Group) Watch(ctx context.Context, opts ...WatchOption) <-chan Event {
	cfg := watchConfig{buffer: defaultWatchBuffer}
	for _, o := range opts {
		o(&cfg)
	}
	sub := &subscriber{ch: make(chan Event, cfg.buffer), mask: cfg.mask}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		close(sub.ch)
		return sub.ch
	}
	g.subs[sub] = struct{}{}
	if cfg.initial && g.hasLast {
		sub.offer(LeaderChanged{Info: g.last})
	}
	g.mu.Unlock()

	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				g.unsubscribe(sub)
			case <-g.donec:
				// Teardown already closed every subscriber channel.
			}
		}()
	}
	return sub.ch
}

// unsubscribe detaches one subscriber and closes its channel.
func (g *Group) unsubscribe(sub *subscriber) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.subs[sub]; !ok {
		return
	}
	delete(g.subs, sub)
	close(sub.ch)
}

// closeSubscribers ends every Watch stream exactly once.
func (g *Group) closeSubscribers() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	g.closed = true
	for s := range g.subs {
		close(s.ch)
		delete(g.subs, s)
	}
	close(g.donec)
}

// Leader returns the current leader view — the paper's "query" mode. It
// honours ctx for cancellation; on a closed service it falls back to the
// last locally observed view when one exists.
func (g *Group) Leader(ctx context.Context) (LeaderInfo, error) {
	var li LeaderInfo
	var lerr error
	err := g.svc.call(ctx, func() {
		cli, e := g.svc.node.Leader(g.id)
		li, lerr = publicInfo(cli), e
	})
	if err != nil {
		if errors.Is(err, ErrClosed) {
			g.mu.Lock()
			defer g.mu.Unlock()
			if g.hasLast {
				return g.last, nil
			}
		}
		return LeaderInfo{}, err
	}
	return li, lerr
}

// Status queries the group's membership and failure detection state — the
// query surface of the shared failure detector service underlying the
// election (Section 4 of the paper). It honours ctx for cancellation.
func (g *Group) Status(ctx context.Context) ([]MemberStatus, error) {
	var out []MemberStatus
	var serr error
	err := g.svc.call(ctx, func() {
		rows, e := g.svc.node.Status(g.id)
		if e != nil {
			serr = e
			return
		}
		out = make([]MemberStatus, len(rows))
		for i, r := range rows {
			out[i] = MemberStatus{
				ID:          r.ID,
				Incarnation: r.Incarnation,
				Candidate:   r.Candidate,
				Self:        r.Self,
				Trusted:     r.Trusted,
				Interval:    r.Interval,
				Timeout:     r.Timeout,
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return out, serr
}

// Leave departs the group gracefully: a LEAVE is announced so peers
// re-elect immediately rather than waiting for failure detection. It
// honours ctx for cancellation; the departure still completes in the
// background if ctx expires first. Leave is idempotent.
func (g *Group) Leave(ctx context.Context) error {
	g.mu.Lock()
	if g.left {
		g.mu.Unlock()
		return nil
	}
	g.left = true
	g.mu.Unlock()
	var lerr error
	err := g.svc.call(ctx, func() { lerr = g.svc.node.Leave(g.id) })
	if err != nil && !errors.Is(err, ErrClosed) {
		// ctx expired before the loop ran the departure; finish it in the
		// background (leaving twice is a harmless no-op).
		g.svc.enqueue(func() { _ = g.svc.node.Leave(g.id) })
	}
	g.svc.mu.Lock()
	delete(g.svc.groups, g.id)
	g.svc.mu.Unlock()
	g.closeSubscribers()
	if err != nil {
		return err
	}
	return lerr
}

// publicInfo converts the internal view type.
func publicInfo(li core.LeaderInfo) LeaderInfo {
	return LeaderInfo{
		Group:       li.Group,
		Leader:      li.Leader,
		Incarnation: li.Incarnation,
		Elected:     li.Elected,
		At:          li.At,
	}
}
