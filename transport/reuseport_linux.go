//go:build linux && !mips && !mipsle && !mips64 && !mips64le

package transport

import (
	"context"
	"net"
	"syscall"
)

// reusePortSupported reports whether this platform can bind several UDP
// sockets to one address with SO_REUSEPORT — the kernel then hashes each
// datagram's source 4-tuple onto one socket, which both spreads receive
// processing across reader goroutines and keeps any one peer's datagrams
// in order (one flow always lands on one socket).
const reusePortSupported = true

// soReusePort is SO_REUSEPORT from uapi asm-generic/socket.h; the stdlib
// syscall package predates the option and never exported it. The value is
// arch-dependent — MIPS uses the historical 0x0200 layout — so this file's
// build tags admit only the asm-generic architectures and MIPS takes the
// single-socket fallback rather than a silently wrong setsockopt.
const soReusePort = 0xf

// reusePortControl is the ListenConfig control hook that sets
// SO_REUSEPORT on the socket before bind.
func reusePortControl(_, _ string, c syscall.RawConn) error {
	var serr error
	if err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	}); err != nil {
		return err
	}
	return serr
}

// listenReusePort opens one UDP socket on addr with SO_REUSEPORT set.
func listenReusePort(network, addr string) (*net.UDPConn, error) {
	lc := net.ListenConfig{Control: reusePortControl}
	pc, err := lc.ListenPacket(context.Background(), network, addr)
	if err != nil {
		return nil, err
	}
	return pc.(*net.UDPConn), nil
}
