package transport

// BenchmarkUDPSaturation measures socket-level receive throughput on the
// multi-receiver path — the figure BENCH_pr7.json records and the ≥3x
// batching claim rests on. Four sender goroutines drive SendBatchHint
// vectors (distinct hints, so multi-receiver send affinity spreads them
// over the send sockets) into a WithReceivers(4) receiver over real
// loopback; ns/op is per delivered datagram. The mode=batched and
// mode=classic sub-benchmarks run the identical workload with the
// recvmmsg/sendmmsg/GSO plane on and force-disabled, so their ratio
// isolates what syscall batching buys. Packets-per-syscall on both sides
// is reported as a custom metric; on the classic path it is 1.0 by
// construction.
//
// Run with:
//
//	go test -run=NONE -bench=UDPSaturation -benchmem ./transport
//
// Flow control mirrors BenchmarkUDPReceive: in-flight datagrams are
// capped well under the socket buffers so loopback does not drop, and
// the tail wait is deadline-bounded so a kernel drop cannot hang the
// benchmark.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stableleader/id"
)

func benchmarkUDPSaturation(b *testing.B, opt UDPOption) {
	// Big socket buffers: at saturation a sendmmsg vector lands dozens of
	// datagrams between two receiver scheduler slots, and the default
	// ~208KiB buffer drops the overflow on a loaded host.
	recv, err := NewUDP("127.0.0.1:0", nil, opt, WithReceivers(4), WithSocketBuffers(4<<20))
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	var delivered atomic.Int64
	recv.Receive(func(p []byte) { delivered.Add(1) })

	send, err := NewUDP("127.0.0.1:0", map[id.Process]string{
		"r": recv.LocalAddr().String(),
	}, opt, WithReceivers(4), WithSocketBuffers(4<<20))
	if err != nil {
		b.Fatal(err)
	}
	defer send.Close()

	// Same-size payloads to one destination: the shape of a heartbeat
	// fan-in, and the shape GSO coalesces into super-datagrams. The size
	// is a typical wire.Hello with a few members — the datagrams whose
	// volume saturates a deployment.
	const payloadSize = 256
	const chunk = 32 // one staged send vector
	payload := make([]byte, payloadSize)
	for i := range payload {
		payload[i] = byte(i)
	}

	const producers = 4
	const window = 1024 // in-flight cap: keep loopback from dropping
	var tickets atomic.Int64
	b.ReportAllocs()
	b.SetBytes(payloadSize)
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(h SenderHint) {
			defer wg.Done()
			batch := make([]Datagram, chunk)
			for i := range batch {
				batch[i] = Datagram{To: "r", Payload: payload}
			}
			// credit compensates for loopback drops: datagrams that will
			// never be delivered must not wedge the flow-control window.
			var credit int64
			for {
				end := tickets.Add(chunk)
				if end-chunk >= int64(b.N) {
					return
				}
				n := chunk
				if left := int64(b.N) - (end - chunk); left < chunk {
					n = int(left)
				}
				stall := time.Now()
				for end-delivered.Load()-credit > window {
					runtime.Gosched()
					if time.Since(stall) > 5*time.Millisecond {
						// No drain in 5ms at saturation: the gap is drops,
						// not backlog. Credit it and keep clocking off the
						// deliveries that do happen.
						credit = end - delivered.Load() - window
						stall = time.Now()
					}
				}
				if _, err := send.SendBatchHint(h, batch[:n]); err != nil {
					b.Error(err)
					return
				}
			}
		}(SenderHint(g))
	}
	wg.Wait()
	// Drain the in-flight tail; exit once the count stays flat so a
	// dropped datagram costs milliseconds, not a full deadline.
	last, flat := int64(-1), 0
	for delivered.Load() < int64(b.N) && flat < 20 {
		if cur := delivered.Load(); cur == last {
			flat++
		} else {
			last, flat = cur, 0
		}
		time.Sleep(time.Millisecond)
	}
	b.StopTimer()
	if got := delivered.Load(); got < int64(b.N) {
		b.Logf("delivered %d of %d datagrams (kernel drop)", got, b.N)
	}
	if st := recv.IOStats(); st.RecvSyscalls > 0 {
		b.ReportMetric(float64(st.RecvDatagrams)/float64(st.RecvSyscalls), "pkts/recvcall")
	}
	if st := send.IOStats(); st.SendSyscalls > 0 {
		b.ReportMetric(float64(st.SendDatagrams)/float64(st.SendSyscalls), "pkts/sendcall")
	}
}

func BenchmarkUDPSaturation(b *testing.B) {
	for _, mode := range []struct {
		name string
		opt  UDPOption
	}{
		{"batched", WithBatchIO(true)},
		{"classic", WithBatchIO(false)},
	} {
		b.Run(fmt.Sprintf("mode=%s", mode.name), func(b *testing.B) {
			benchmarkUDPSaturation(b, mode.opt)
		})
	}
}

// BenchmarkUDPRecvDrain isolates the receive path — the side the ≥3x
// claim is about. Each round queues a burst in the kernel socket buffers
// with the handler gated shut (the send cost stays outside the timer),
// then times the drain through the read loops: recvmmsg pulling 32
// datagrams per syscall against the classic one-datagram-one-syscall
// loop, identical handler work on both. This is the regime a saturated
// receiver actually lives in — the socket buffer is never empty — and
// unlike BenchmarkUDPSaturation it does not share the CPU budget with a
// loopback sender, so the syscall amortization is visible undiluted.
func benchmarkUDPRecvDrain(b *testing.B, opt UDPOption) {
	recv, err := NewUDP("127.0.0.1:0", nil, opt, WithReceivers(4), WithSocketBuffers(4<<20))
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	var delivered atomic.Int64
	var target atomic.Int64
	target.Store(-1)
	var gate atomic.Value // chan struct{}: open while filling, closed while draining
	var done atomic.Value // chan struct{}: closed by the handler at target
	ch := make(chan struct{})
	close(ch)
	gate.Store(ch)
	done.Store(ch)
	recv.Receive(func(p []byte) {
		<-gate.Load().(chan struct{})
		if delivered.Add(1) == target.Load() {
			close(done.Load().(chan struct{}))
		}
	})

	send, err := NewUDP("127.0.0.1:0", map[id.Process]string{
		"r": recv.LocalAddr().String(),
	}, opt, WithReceivers(4), WithSocketBuffers(4<<20))
	if err != nil {
		b.Fatal(err)
	}
	defer send.Close()

	const payloadSize = 256
	const burst = 4096 // fits the 4MiB socket buffers with skb overhead
	payload := make([]byte, payloadSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	batch := make([]Datagram, 32)
	for i := range batch {
		batch[i] = Datagram{To: "r", Payload: payload}
	}

	b.ReportAllocs()
	b.SetBytes(payloadSize)
	b.ResetTimer()
	var sent int64
	for sent < int64(b.N) {
		k := int64(burst)
		if left := int64(b.N) - sent; left < k {
			k = left
		}
		b.StopTimer()
		hold := make(chan struct{})
		drained := make(chan struct{})
		gate.Store(hold)
		done.Store(drained)
		target.Store(sent + k)
		for q := int64(0); q < k; {
			n := int64(len(batch))
			if k-q < n {
				n = k - q
			}
			if _, err := send.SendBatchHint(SenderHint(q), batch[:n]); err != nil {
				b.Fatal(err)
			}
			q += n
		}
		b.StartTimer()
		close(hold)
		select {
		case <-drained:
		case <-time.After(10 * time.Second):
			b.Fatalf("drained %d of %d datagrams", delivered.Load()-sent, k)
		}
		sent += k
	}
	b.StopTimer()
	if st := recv.IOStats(); st.RecvSyscalls > 0 {
		b.ReportMetric(float64(st.RecvDatagrams)/float64(st.RecvSyscalls), "pkts/recvcall")
	}
}

func BenchmarkUDPRecvDrain(b *testing.B) {
	for _, mode := range []struct {
		name string
		opt  UDPOption
	}{
		{"batched", WithBatchIO(true)},
		{"classic", WithBatchIO(false)},
	} {
		b.Run(fmt.Sprintf("mode=%s", mode.name), func(b *testing.B) {
			benchmarkUDPRecvDrain(b, mode.opt)
		})
	}
}
