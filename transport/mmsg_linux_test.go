//go:build linux && (amd64 || arm64)

package transport

// Linux-only coverage of the recvmmsg/sendmmsg fast path itself: vector
// accounting, the runtime downgrade ladder (injected ENOSYS), partial
// sendmmsg retry (injected short vectors), and the GSO lane. The
// injectable syscall fn vars are package globals, so these tests never
// run in parallel with each other.

import (
	"fmt"
	"net/netip"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"stableleader/id"
)

func TestMmsgSendVectorAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	send, _, rec := newUDPPair(t, WithBatchIO(true))
	if !send.BatchIO() {
		t.Fatal("batched plane should be active on this platform")
	}
	// Distinct sizes defeat GSO coalescing, so the header count is exact.
	const n = 12
	batch := make([]Datagram, n)
	for i := range batch {
		batch[i] = Datagram{To: "r", Payload: []byte(fmt.Sprintf("%0*d", i+4, i))}
	}
	sent, err := send.SendBatch(batch)
	if err != nil || sent != n {
		t.Fatalf("SendBatch: sent=%d err=%v", sent, err)
	}
	rec.waitN(t, n, 2*time.Second)
	st := send.IOStats()
	if st.SendDatagrams != n {
		t.Errorf("SendDatagrams = %d, want %d", st.SendDatagrams, n)
	}
	// The whole batch fits one vector; a loaded kernel may still split it,
	// so assert batching happened at all rather than exactly one crossing.
	if st.SendSyscalls >= n {
		t.Errorf("SendSyscalls = %d for %d datagrams: vector not batched", st.SendSyscalls, n)
	}
}

func TestMmsgRecvBatchingUnderBurst(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	recv, err := NewUDP("127.0.0.1:0", nil, WithBatchIO(true))
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	var delivered atomic.Int64
	gate := make(chan struct{})
	recv.Receive(func(p []byte) {
		if delivered.Add(1) == 1 {
			// Stall the first delivery until the whole burst is queued in
			// the socket buffer, so the next recvmmsg must drain a batch.
			<-gate
		}
	})
	send, err := NewUDP("127.0.0.1:0", map[id.Process]string{
		"r": recv.LocalAddr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	const n = 200
	payload := make([]byte, 256)
	for i := 0; i < n; i++ {
		if err := send.Send("r", payload); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	// Wait for the drain, tolerating loopback drops: stop once the count
	// has been flat for a while.
	deadline := time.Now().Add(5 * time.Second)
	last, flat := int64(-1), 0
	for delivered.Load() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		if cur := delivered.Load(); cur == last {
			if flat++; flat > 40 {
				break
			}
		} else {
			last, flat = cur, 0
		}
	}
	got := delivered.Load()
	if got < n/2 {
		t.Fatalf("delivered %d of %d (loopback drop too aggressive to judge batching)", got, n)
	}
	st := recv.IOStats()
	if st.RecvSyscalls == 0 {
		t.Fatal("no receive syscalls accounted")
	}
	ratio := float64(st.RecvDatagrams) / float64(st.RecvSyscalls)
	t.Logf("recv %d datagrams in %d syscalls (%.1f packets/syscall)", st.RecvDatagrams, st.RecvSyscalls, ratio)
	if ratio <= 1 {
		t.Errorf("packets per recv syscall = %.2f, want > 1 under a queued burst", ratio)
	}
}

func TestMmsgRuntimeDowngradeENOSYS(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	origRecv, origSend := recvmmsgFn, sendmmsgFn
	t.Cleanup(func() { recvmmsgFn, sendmmsgFn = origRecv, origSend })
	recvmmsgFn = func(fd uintptr, hdrs []mmsghdr, flags int) (int, syscall.Errno) {
		return 0, syscall.ENOSYS
	}
	sendmmsgFn = func(fd uintptr, hdrs []mmsghdr, flags int) (int, syscall.Errno) {
		return 0, syscall.ENOSYS
	}
	send, _, rec := newUDPPair(t, WithBatchIO(true))
	batch := []Datagram{
		{To: "r", Payload: []byte("after")},
		{To: "r", Payload: []byte("enosys")},
	}
	sent, err := send.SendBatch(batch)
	if err != nil || sent != 2 {
		t.Fatalf("SendBatch under ENOSYS: sent=%d err=%v (remainder must go the classic way)", sent, err)
	}
	got := rec.waitN(t, 2, 2*time.Second)
	if string(got[0]) != "after" || string(got[1]) != "enosys" {
		t.Errorf("payloads = %q, %q", got[0], got[1])
	}
	if send.BatchIO() {
		t.Error("transport must latch the downgrade after ENOSYS")
	}
	// Downgraded send is one syscall per datagram again.
	st := send.IOStats()
	if st.SendSyscalls != st.SendDatagrams {
		t.Errorf("downgraded stats = %+v, want syscalls == datagrams", st)
	}
}

func TestMmsgPartialSendRetried(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	origSend := sendmmsgFn
	t.Cleanup(func() { sendmmsgFn = origSend })
	var calls atomic.Int64
	// A kernel that accepts at most 2 headers per sendmmsg: the transport
	// must keep calling until the vector drains, never dropping the tail.
	sendmmsgFn = func(fd uintptr, hdrs []mmsghdr, flags int) (int, syscall.Errno) {
		calls.Add(1)
		if len(hdrs) > 2 {
			hdrs = hdrs[:2]
		}
		return origSend(fd, hdrs, flags)
	}
	send, _, rec := newUDPPair(t, WithBatchIO(true))
	const n = 7
	batch := make([]Datagram, n)
	for i := range batch {
		// Distinct sizes: no GSO runs, so headers == datagrams.
		batch[i] = Datagram{To: "r", Payload: []byte(fmt.Sprintf("%0*d", i+4, i))}
	}
	sent, err := send.SendBatch(batch)
	if err != nil || sent != n {
		t.Fatalf("partial-kernel SendBatch: sent=%d err=%v", sent, err)
	}
	got := rec.waitN(t, n, 2*time.Second)
	for i := range batch {
		if string(got[i]) != string(batch[i].Payload) {
			t.Errorf("payload[%d] = %q, want %q (retry must preserve order)", i, got[i], batch[i].Payload)
		}
	}
	if c := calls.Load(); c < 4 {
		t.Errorf("sendmmsg called %d times for %d headers capped at 2/call, want ≥ 4", c, n)
	}
}

func TestMmsgGSOCoalescedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	send, _, rec := newUDPPair(t, WithBatchIO(true))
	if !send.gsoOK {
		t.Skip("kernel without UDP_SEGMENT")
	}
	// An equal-size run to one destination: one GSO super-datagram on the
	// wire side of the syscall, identical individual datagrams on receive.
	const n = 8
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i)
	}
	batch := make([]Datagram, n)
	for i := range batch {
		batch[i] = Datagram{To: "r", Payload: payload}
	}
	sent, err := send.SendBatch(batch)
	if err != nil || sent != n {
		t.Fatalf("GSO SendBatch: sent=%d err=%v", sent, err)
	}
	got := rec.waitN(t, n, 2*time.Second)
	for i := range got {
		if len(got[i]) != len(payload) {
			t.Fatalf("datagram %d arrived as %d bytes, want %d (kernel must re-segment)", i, len(got[i]), len(payload))
		}
		for j := range got[i] {
			if got[i][j] != payload[j] {
				t.Fatalf("datagram %d corrupted at byte %d", i, j)
			}
		}
	}
	st := send.IOStats()
	if st.GSOBatches == 0 || st.GSOSegments != n {
		t.Errorf("GSO accounting = %+v, want ≥1 batch covering %d segments", st, n)
	}
	if st.SendDatagrams != n {
		t.Errorf("SendDatagrams = %d, want %d (segments count as wire datagrams)", st.SendDatagrams, n)
	}
}

func TestSockaddrRoundTrip(t *testing.T) {
	cases := []netip.AddrPort{
		netip.MustParseAddrPort("127.0.0.1:7400"),
		netip.MustParseAddrPort("[::1]:7400"),
		netip.MustParseAddrPort("10.0.0.3:65535"),
		netip.MustParseAddrPort("[fe80::1]:1"),
	}
	for _, ap := range cases {
		var b sockaddrBuf
		if ap.Addr().Is4() {
			// Encode the v4 case both ways: native AF_INET, and v4-mapped
			// through an AF_INET6 socket.
			putSockaddr(&b, famIPv4, ap)
			if got := sockaddrToAddrPort(&b); got != ap {
				t.Errorf("AF_INET round trip: %v -> %v", ap, got)
			}
		}
		putSockaddr(&b, famIPv6, ap)
		got := sockaddrToAddrPort(&b)
		// The decoder unmaps 4-in-6 sources, so a v4 address comes back in
		// canonical 4-byte form either way.
		if got.Port() != ap.Port() || got.Addr() != ap.Addr().Unmap() {
			t.Errorf("AF_INET6 round trip: %v -> %v", ap, got)
		}
	}
}

func TestMmsgDowngradeErrnoClassification(t *testing.T) {
	for _, errno := range []syscall.Errno{syscall.ENOSYS, syscall.EPERM, syscall.EOPNOTSUPP} {
		if !mmsgDowngradeErrno(errno) {
			t.Errorf("%v must demote the transport", errno)
		}
		if !mmsgDowngradeError(errno) {
			t.Errorf("%v (as error) must demote the transport", errno)
		}
	}
	for _, errno := range []syscall.Errno{syscall.EAGAIN, syscall.ECONNREFUSED, syscall.EINTR} {
		if mmsgDowngradeErrno(errno) {
			t.Errorf("%v is transient and must not demote the transport", errno)
		}
	}
	if mmsgDowngradeError(fmt.Errorf("not an errno")) {
		t.Error("non-errno errors must not demote the transport")
	}
}

// Ensure id is referenced (newUDPPair's map literal lives in another file).
var _ = id.Process("")
