package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMultiReceiverDelivers opens a multi-receiver UDP transport and
// checks that traffic from many peers is delivered exactly once each,
// whatever socket the kernel hashed the flow onto. On platforms without
// SO_REUSEPORT the transport must degrade to one socket, not fail.
func TestMultiReceiverDelivers(t *testing.T) {
	rx, err := NewUDP("127.0.0.1:0", nil, WithReceivers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	if got := rx.Receivers(); reusePortSupported && got != 4 {
		t.Fatalf("Receivers() = %d, want 4 (SO_REUSEPORT supported here)", got)
	} else if !reusePortSupported && got != 1 {
		t.Fatalf("Receivers() = %d, want the single-socket fallback", got)
	}

	var got atomic.Int64
	rx.Receive(func(payload []byte) {
		if len(payload) == 3 {
			got.Add(1)
		}
	})

	// Many senders, each its own socket (its own flow for the kernel's
	// REUSEPORT hash): all datagrams must arrive through SOME receiver.
	const senders, per = 8, 25
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx, err := NewUDP("127.0.0.1:0", nil)
			if err != nil {
				t.Error(err)
				return
			}
			defer tx.Close()
			if err := tx.SetPeer("rx", rx.LocalAddr().String()); err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < per; j++ {
				if err := tx.Send("rx", []byte{1, 2, 3}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for got.Load() < senders*per {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d datagrams", got.Load(), senders*per)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMultiReceiverCloseWaitsForAllLoops pins the Close contract in
// multi-receiver mode: once Close returns, no handler invocation is in
// flight on ANY receiver goroutine.
func TestMultiReceiverCloseWaitsForAllLoops(t *testing.T) {
	rx, err := NewUDP("127.0.0.1:0", nil, WithReceivers(4))
	if err != nil {
		t.Fatal(err)
	}
	var inFlight atomic.Int32
	rx.Receive(func([]byte) {
		inFlight.Add(1)
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
	})
	tx, err := NewUDP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	if err := tx.SetPeer("rx", rx.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		_ = tx.Send("rx", []byte("x"))
	}
	if err := rx.Close(); err != nil {
		t.Fatal(err)
	}
	if n := inFlight.Load(); n != 0 {
		t.Fatalf("%d handler invocations still in flight after Close", n)
	}
}
