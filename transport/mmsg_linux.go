//go:build linux && (amd64 || arm64)

package transport

import (
	"errors"
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

// This file is the Linux fast path of the syscall-batched packet plane:
// recvmmsg(2) drains up to mmsgRecvBatch datagrams per kernel crossing
// into a pinned ring of pooled buffers, sendmmsg(2) ships a whole vector
// of datagrams per crossing, and UDP_SEGMENT (GSO) lets the kernel
// segment a run of equal-size datagrams to one destination out of a
// single super-datagram. Everything here is reached only through the
// build-tag seam (mmsgSupported) and the runtime downgrade ladder in
// udp.go: a kernel or seccomp policy that refuses the syscalls (ENOSYS,
// EPERM, EOPNOTSUPP) demotes the transport to the portable
// one-datagram-per-syscall path with identical observable behavior.

// mmsgSupported gates the batched I/O paths at build time; the portable
// build (mmsg_other.go) pins it false and the stubs unreachable.
const mmsgSupported = true

// mmsgRecvBatch is the receive vector width: how many datagrams one
// recvmmsg may drain. 32 amortizes the syscall to noise under load while
// keeping the pinned buffer ring (32 × 64 KiB per receive socket) modest.
const mmsgRecvBatch = 32

// GSO limits: a super-datagram coalesces at most gsoMaxSegs equal-size
// payloads (the kernel caps UDP_MAX_SEGMENTS at 64) and the staging
// buffer bounds the copied bytes per vector.
const (
	gsoMaxSegs = 32
	gsoBufCap  = 32 * 1024
)

// solUDP/udpSegment are SOL_UDP and UDP_SEGMENT from uapi linux/udp.h
// (Linux ≥ 4.18); the stdlib syscall package predates UDP GSO.
const (
	solUDP     = 17
	udpSegment = 103
)

// mmsghdr mirrors struct mmsghdr on 64-bit Linux: one msghdr plus the
// kernel-written datagram length, padded to 8-byte alignment.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// recvmmsgRaw and sendmmsgRaw are the raw syscalls. The fn indirections
// exist for the fallback-ladder tests, which swap in stubs that return
// ENOSYS or transmit partial vectors.
func recvmmsgRaw(fd uintptr, hdrs []mmsghdr, flags int) (int, syscall.Errno) {
	n, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
		uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)),
		uintptr(flags), 0, 0)
	return int(n), errno
}

func sendmmsgRaw(fd uintptr, hdrs []mmsghdr, flags int) (int, syscall.Errno) {
	n, _, errno := syscall.Syscall6(sysSendmmsg, fd,
		uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)),
		uintptr(flags), 0, 0)
	return int(n), errno
}

var (
	recvmmsgFn = recvmmsgRaw
	sendmmsgFn = sendmmsgRaw
)

// mmsgDowngradeErrno classifies errnos that mean "this kernel or policy
// will never serve the batched syscalls": the transport demotes itself
// to the portable path instead of erroring every datagram.
func mmsgDowngradeErrno(errno syscall.Errno) bool {
	return errno == syscall.ENOSYS || errno == syscall.EPERM || errno == syscall.EOPNOTSUPP
}

// mmsgDowngradeError is mmsgDowngradeErrno over wrapped errors.
func mmsgDowngradeError(err error) bool {
	var errno syscall.Errno
	return errors.As(err, &errno) && mmsgDowngradeErrno(errno)
}

// sockaddrBuf is raw storage for one socket address, sized for the
// larger (IPv6) form; IPv4 uses a prefix of it.
const sockaddrBufLen = syscall.SizeofSockaddrInet6

type sockaddrBuf [sockaddrBufLen]byte

// putSockaddr encodes ap into b for the given socket family and returns
// the sockaddr length. An AF_INET6 socket takes any address in mapped
// form (As16 yields ::ffff:a.b.c.d for IPv4); AF_INET callers guarantee
// a 4-byte-representable address (udp.go routes mismatches and zoned
// addresses through the portable write path instead).
func putSockaddr(b *sockaddrBuf, family int, ap netip.AddrPort) uint32 {
	port := ap.Port()
	b[2] = byte(port >> 8) // sin_port/sin6_port is network order
	b[3] = byte(port)
	if family == famIPv4 {
		*(*uint16)(unsafe.Pointer(&b[0])) = syscall.AF_INET
		a4 := ap.Addr().As4()
		copy(b[4:8], a4[:])
		return syscall.SizeofSockaddrInet4
	}
	*(*uint16)(unsafe.Pointer(&b[0])) = syscall.AF_INET6
	for i := 4; i < 8; i++ { // flowinfo
		b[i] = 0
	}
	a16 := ap.Addr().As16()
	copy(b[8:24], a16[:])
	for i := 24; i < 28; i++ { // scope id; zoned addrs never reach here
		b[i] = 0
	}
	return syscall.SizeofSockaddrInet6
}

// sockaddrToAddrPort decodes a kernel-written source address. Unknown
// families yield the zero AddrPort, exactly like the stdlib read path
// would never produce them.
func sockaddrToAddrPort(b *sockaddrBuf) netip.AddrPort {
	family := *(*uint16)(unsafe.Pointer(&b[0]))
	port := uint16(b[2])<<8 | uint16(b[3])
	switch family {
	case syscall.AF_INET:
		var a4 [4]byte
		copy(a4[:], b[4:8])
		return netip.AddrPortFrom(netip.AddrFrom4(a4), port)
	case syscall.AF_INET6:
		var a16 [16]byte
		copy(a16[:], b[8:24])
		// Unmap 4-in-6 sources so address learning and the book agree on
		// one canonical form, matching the classic read loop.
		return netip.AddrPortFrom(netip.AddrFrom16(a16).Unmap(), port)
	}
	return netip.AddrPort{}
}

// mmsgReader is one read loop's recvmmsg state: a ring of pooled payload
// buffers pinned for the loop's lifetime, with the iovec/msghdr vectors
// pointing into them. The ring is reused in place across syscalls — the
// Receive handler contract (payload not retained after return) is what
// makes that safe, exactly as it makes the classic loop's single pooled
// buffer safe.
type mmsgReader struct {
	rc    syscall.RawConn
	bufs  [mmsgRecvBatch]*[]byte
	iovs  [mmsgRecvBatch]syscall.Iovec
	names [mmsgRecvBatch]sockaddrBuf
	hdrs  [mmsgRecvBatch]mmsghdr
}

// newMmsgReader builds the ring for one socket; nil when the socket
// cannot expose its descriptor (the caller then runs the classic loop).
func newMmsgReader(conn *net.UDPConn) *mmsgReader {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil
	}
	r := &mmsgReader{rc: rc}
	for i := range r.hdrs {
		bp := getPayloadBuf()
		r.bufs[i] = bp //leadervet:handoff — ring slot owns the buffer until release()
		r.iovs[i].Base = &(*bp)[0]
		r.iovs[i].SetLen(len(*bp))
		h := &r.hdrs[i].hdr
		h.Name = &r.names[i][0]
		h.Iov = &r.iovs[i]
		h.Iovlen = 1
	}
	return r
}

// recv blocks on the netpoller until the socket is readable, then drains
// up to mmsgRecvBatch datagrams in one syscall. It returns the datagram
// count; the error is the poller's (socket closed) or a raw errno, which
// the caller classifies for the downgrade ladder.
func (r *mmsgReader) recv() (int, error) {
	for i := range r.hdrs {
		// Restore the fields the kernel overwrites per call.
		r.hdrs[i].hdr.Namelen = sockaddrBufLen
		r.hdrs[i].hdr.Flags = 0
		r.hdrs[i].n = 0
	}
	for {
		var n int
		var errno syscall.Errno
		err := r.rc.Read(func(fd uintptr) bool {
			n, errno = recvmmsgFn(fd, r.hdrs[:], syscall.MSG_DONTWAIT)
			return errno != syscall.EAGAIN
		})
		if err != nil {
			return 0, err
		}
		if errno == syscall.EINTR {
			continue
		}
		if errno != 0 {
			return 0, errno
		}
		return n, nil
	}
}

// payload returns the i-th received datagram's bytes, valid until the
// next recv.
//
//leadervet:hotpath
func (r *mmsgReader) payload(i int) []byte {
	return (*r.bufs[i])[:r.hdrs[i].n]
}

// src returns the i-th received datagram's source address.
//
//leadervet:hotpath
func (r *mmsgReader) src(i int) netip.AddrPort {
	return sockaddrToAddrPort(&r.names[i])
}

// release returns the ring's buffers to the payload pool when the loop
// ends (socket closed or downgrade).
func (r *mmsgReader) release() {
	for i, bp := range r.bufs {
		if bp != nil {
			putPayloadBuf(bp)
			r.bufs[i] = nil
		}
	}
}

// sendVec is the per-call sendmmsg scratch inside a pooled sendScratch:
// iovec/msghdr vectors, raw sockaddrs, per-header segment counts, cmsg
// space for UDP_SEGMENT, and the GSO staging buffer.
type sendVec struct {
	iovs  [maxSendBatch]syscall.Iovec
	names [maxSendBatch]sockaddrBuf
	hdrs  [maxSendBatch]mmsghdr
	segs  [maxSendBatch]int32
	ctrl  [maxSendBatch][32]byte
	gso   [gsoBufCap]byte
}

// putGsoCmsg writes one UDP_SEGMENT cmsg announcing seg-byte segments
// and returns the control length for the msghdr.
func putGsoCmsg(b *[32]byte, seg uint16) uint64 {
	h := (*syscall.Cmsghdr)(unsafe.Pointer(&b[0]))
	h.Level = solUDP
	h.Type = udpSegment
	h.SetLen(syscall.CmsgLen(2))
	*(*uint16)(unsafe.Pointer(&b[syscall.CmsgLen(0)])) = seg
	return uint64(syscall.CmsgSpace(2))
}

// build fills the vector from the resolved entries of batch (s.ok set,
// s.direct clear), coalescing GSO runs when gso is true: consecutive
// entries to one destination whose payloads all match the first one's
// size (a shorter one may close the run) become a single super-datagram
// the kernel segments back into the identical wire datagrams. Returns
// the header count; v.segs[i] records how many wire datagrams header i
// carries.
//
//leadervet:hotpath
func (v *sendVec) build(family int, s *sendScratch, batch []Datagram, gso bool) int {
	n := 0
	gsoOff := 0
	i := 0
	for i < len(batch) {
		if !s.ok[i] || s.direct[i] {
			i++
			continue
		}
		seg := len(batch[i].Payload)
		run := 1
		if gso && seg > 0 {
			for i+run < len(batch) && run < gsoMaxSegs &&
				s.ok[i+run] && !s.direct[i+run] && s.addrs[i+run] == s.addrs[i] {
				l := len(batch[i+run].Payload)
				if l > seg || l == 0 || gsoOff+seg*run+l > gsoBufCap {
					break
				}
				run++
				if l < seg {
					break // a shorter payload must be the super-datagram's tail
				}
			}
		}
		h := &v.hdrs[n]
		hdr := &h.hdr
		hdr.Name = &v.names[n][0]
		hdr.Namelen = putSockaddr(&v.names[n], family, s.addrs[i])
		hdr.Iov = &v.iovs[n]
		hdr.Iovlen = 1
		hdr.Control = nil
		hdr.Controllen = 0
		hdr.Flags = 0
		h.n = 0
		if run == 1 {
			if seg == 0 {
				v.iovs[n].Base = nil
				v.iovs[n].SetLen(0)
			} else {
				v.iovs[n].Base = &batch[i].Payload[0]
				v.iovs[n].SetLen(seg)
			}
		} else {
			base := gsoOff
			for j := 0; j < run; j++ {
				gsoOff += copy(v.gso[gsoOff:], batch[i+j].Payload)
			}
			v.iovs[n].Base = &v.gso[base]
			v.iovs[n].SetLen(gsoOff - base)
			hdr.Control = &v.ctrl[n][0]
			hdr.Controllen = putGsoCmsg(&v.ctrl[n], uint16(seg))
		}
		v.segs[n] = int32(run)
		n++
		i += run
	}
	return n
}

// sendMmsg transmits every resolved, non-direct entry of batch through
// sendmmsg on conn. A partial transmission (the kernel accepts k < n
// headers) retries the remainder — never drops it. A per-header errno
// (e.g. ECONNREFUSED bounced from an earlier ICMP) skips that header
// only, matching Send's independent best-effort contract. downgrade is
// true when the very first syscall says the kernel will never serve
// sendmmsg; the caller then demotes the transport and resends the whole
// chunk through the portable path (nothing has hit the wire yet).
func (u *UDP) sendMmsg(conn *net.UDPConn, s *sendScratch, batch []Datagram) (sent int, firstErr error, downgrade bool) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return 0, nil, true
	}
	v := &s.vec
	n := v.build(u.family, s, batch, u.gsoOK)
	if n == 0 {
		return 0, nil, false
	}
	off := 0
	for off < n {
		var k int
		var errno syscall.Errno
		werr := rc.Write(func(fd uintptr) bool {
			k, errno = sendmmsgFn(fd, v.hdrs[off:n], syscall.MSG_DONTWAIT)
			return errno != syscall.EAGAIN
		})
		if werr != nil {
			// The socket died under us (Close racing a send): report, stop.
			if firstErr == nil {
				firstErr = werr
			}
			break
		}
		if k > 0 {
			u.io.sendSyscalls.Add(1)
			for i := off; i < off+k; i++ {
				segs := int(v.segs[i])
				sent += segs
				if segs > 1 {
					u.io.gsoBatches.Add(1)
					u.io.gsoSegments.Add(int64(segs))
				}
			}
			off += k
			continue
		}
		if errno != 0 {
			if mmsgDowngradeErrno(errno) && off == 0 && sent == 0 {
				return 0, nil, true
			}
			u.io.sendSyscalls.Add(1)
			if firstErr == nil {
				firstErr = errno
			}
			off++ // this header's datagram(s) failed; the rest still go
			continue
		}
		break // k == 0 with no errno: never observed; avoid spinning
	}
	u.io.sendDatagrams.Add(int64(sent))
	return sent, firstErr, false
}

// probeGSO reports whether the kernel accepts UDP_SEGMENT on this socket
// (Linux ≥ 4.18): setting segment size 0 (GSO off) succeeds exactly when
// the option exists.
func probeGSO(conn *net.UDPConn) bool {
	rc, err := conn.SyscallConn()
	if err != nil {
		return false
	}
	ok := false
	_ = rc.Control(func(fd uintptr) {
		ok = syscall.SetsockoptInt(int(fd), solUDP, udpSegment, 0) == nil
	})
	return ok
}
