package transport

// Fallback-ladder coverage for the syscall-batched packet plane, all of
// it portable: every test here must pass identically with the fast path
// compiled in (linux/amd64, linux/arm64), compiled out (other
// platforms), force-disabled (WithBatchIO(false), STABLELEADER_UDP_BATCH)
// or runtime-downgraded — that equivalence IS the fallback contract.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"stableleader/id"
)

// newUDPPair builds a sender and receiver wired to each other.
func newUDPPair(t testing.TB, opts ...UDPOption) (send, recv *UDP, rec *recorder) {
	t.Helper()
	recv, err := NewUDP("127.0.0.1:0", nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })
	rec = newRecorder()
	recv.Receive(rec.handler)
	send, err = NewUDP("127.0.0.1:0", map[id.Process]string{
		"r": recv.LocalAddr().String(),
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { send.Close() })
	return send, recv, rec
}

// batchModes are the configurations every semantic test runs under: the
// platform fast path (where it exists) and the forced classic path must
// be observationally identical.
var batchModes = []struct {
	name string
	opt  UDPOption
}{
	{"batched", WithBatchIO(true)},
	{"classic", WithBatchIO(false)},
}

func TestSendBatchSemantics(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	for _, mode := range batchModes {
		t.Run(mode.name, func(t *testing.T) {
			send, _, rec := newUDPPair(t, mode.opt)
			batch := []Datagram{
				{To: "r", Payload: []byte("one")},
				{To: "ghost", Payload: []byte("dropped")},
				{To: "r", Payload: []byte("two")},
				{To: "r", Payload: []byte("three")},
			}
			sent, err := send.SendBatch(batch)
			if sent != 3 {
				t.Errorf("sent = %d, want 3 (the unresolvable entry is skipped, not fatal)", sent)
			}
			if err == nil {
				t.Error("want the unresolvable entry's error reported")
			}
			got := rec.waitN(t, 3, 2*time.Second)
			// Per-destination order: one, two, three in index order.
			for i, want := range []string{"one", "two", "three"} {
				if string(got[i]) != want {
					t.Errorf("payload[%d] = %q, want %q", i, got[i], want)
				}
			}
		})
	}
}

func TestSendBatchAllResolvable(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	for _, mode := range batchModes {
		t.Run(mode.name, func(t *testing.T) {
			send, _, rec := newUDPPair(t, mode.opt)
			// More than one sendmmsg vector's worth, with mixed sizes so a
			// GSO-capable kernel exercises run detection and run breaks.
			const n = maxSendBatch + 17
			batch := make([]Datagram, n)
			for i := range batch {
				batch[i] = Datagram{To: "r", Payload: []byte(fmt.Sprintf("m-%03d-%s", i, "xxxxxxxxxxxx"[:i%12]))}
			}
			sent, err := send.SendBatch(batch)
			if err != nil {
				t.Fatalf("SendBatch: %v", err)
			}
			if sent != n {
				t.Fatalf("sent = %d, want %d", sent, n)
			}
			got := rec.waitN(t, n, 5*time.Second)
			for i := range batch {
				if string(got[i]) != string(batch[i].Payload) {
					t.Fatalf("payload[%d] = %q, want %q (per-destination order must hold)", i, got[i], batch[i].Payload)
				}
			}
		})
	}
}

func TestSendBatchEmptyAndZeroLength(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	for _, mode := range batchModes {
		t.Run(mode.name, func(t *testing.T) {
			send, _, rec := newUDPPair(t, mode.opt)
			if sent, err := send.SendBatch(nil); sent != 0 || err != nil {
				t.Errorf("empty batch: sent=%d err=%v", sent, err)
			}
			// A zero-length payload is a legal UDP datagram.
			sent, err := send.SendBatch([]Datagram{{To: "r", Payload: nil}, {To: "r", Payload: []byte("tail")}})
			if err != nil || sent != 2 {
				t.Fatalf("zero-length entry: sent=%d err=%v", sent, err)
			}
			got := rec.waitN(t, 2, 2*time.Second)
			if len(got[0]) != 0 || string(got[1]) != "tail" {
				t.Errorf("got %q, %q; want \"\", \"tail\"", got[0], got[1])
			}
		})
	}
}

func TestSendBatchAfterClose(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	send, _, _ := newUDPPair(t)
	if err := send.Close(); err != nil {
		t.Fatal(err)
	}
	sent, err := send.SendBatch([]Datagram{{To: "r", Payload: []byte("x")}})
	if sent != 0 || err == nil {
		t.Errorf("SendBatch after Close: sent=%d err=%v, want 0 and an error", sent, err)
	}
}

func TestBatchEnvDisable(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	t.Setenv(batchEnvVar, "off")
	u, err := NewUDP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if u.BatchIO() {
		t.Errorf("%s=off must disable the batched packet plane", batchEnvVar)
	}
	// An explicit option outranks the environment default.
	u2, err := NewUDP("127.0.0.1:0", nil, WithBatchIO(true))
	if err != nil {
		t.Fatal(err)
	}
	defer u2.Close()
	if u2.BatchIO() != mmsgSupported {
		t.Errorf("WithBatchIO(true): BatchIO() = %v, want %v", u2.BatchIO(), mmsgSupported)
	}
}

func TestSendHintDelivery(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	recv, err := NewUDP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	rec := newRecorder()
	recv.Receive(rec.handler)
	send, err := NewUDP("127.0.0.1:0", map[id.Process]string{
		"r": recv.LocalAddr().String(),
	}, WithReceivers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	// Every hint must deliver, whatever socket it lands on; a fixed hint
	// must always pick the same socket (ordering contract).
	for h := SenderHint(0); h < 8; h++ {
		if send.sendConn(h) != send.sendConn(h) {
			t.Fatalf("hint %d is not stable", h)
		}
		if err := send.SendHint(h, "r", []byte(fmt.Sprintf("h%d", h))); err != nil {
			t.Fatal(err)
		}
	}
	rec.waitN(t, 8, 2*time.Second)
	if send.Receivers() > 1 {
		// With several sockets, distinct hints must not all collapse onto
		// conns[0] — that is the bottleneck this API removes.
		distinct := map[interface{}]bool{}
		for h := SenderHint(0); h < SenderHint(send.Receivers()); h++ {
			distinct[send.sendConn(h)] = true
		}
		if len(distinct) != send.Receivers() {
			t.Errorf("hints 0..%d map to %d sockets, want %d", send.Receivers()-1, len(distinct), send.Receivers())
		}
	}
}

func TestSendBatchCloseRace(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	for _, mode := range batchModes {
		t.Run(mode.name, func(t *testing.T) {
			recv, err := NewUDP("127.0.0.1:0", nil)
			if err != nil {
				t.Fatal(err)
			}
			defer recv.Close()
			send, err := NewUDP("127.0.0.1:0", map[id.Process]string{
				"r": recv.LocalAddr().String(),
			}, mode.opt, WithReceivers(2))
			if err != nil {
				t.Fatal(err)
			}
			batch := make([]Datagram, 16)
			for i := range batch {
				batch[i] = Datagram{To: "r", Payload: []byte("race")}
			}
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(h SenderHint) {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						// Errors are expected once Close lands; panics and
						// races are what this test hunts.
						_, _ = send.SendBatchHint(h, batch)
						_ = send.SendHint(h, "r", batch[0].Payload)
					}
				}(SenderHint(g))
			}
			time.Sleep(20 * time.Millisecond)
			if err := send.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
			close(stop)
			wg.Wait()
			// After Close every batch send must refuse cleanly.
			if sent, err := send.SendBatch(batch); sent != 0 || err == nil {
				t.Errorf("post-close SendBatch: sent=%d err=%v", sent, err)
			}
		})
	}
}

func TestIOStatsCountsClassicPath(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	send, recv, rec := newUDPPair(t, WithBatchIO(false))
	const n = 10
	for i := 0; i < n; i++ {
		if err := send.Send("r", []byte("count-me")); err != nil {
			t.Fatal(err)
		}
	}
	rec.waitN(t, n, 2*time.Second)
	st := send.IOStats()
	if st.SendSyscalls != n || st.SendDatagrams != n {
		t.Errorf("classic send stats = %+v, want %d syscalls / %d datagrams", st, n, n)
	}
	rst := recv.IOStats()
	if rst.RecvDatagrams != n {
		t.Errorf("classic recv datagrams = %d, want %d", rst.RecvDatagrams, n)
	}
	if rst.RecvSyscalls != rst.RecvDatagrams {
		t.Errorf("classic path must be one syscall per datagram: %+v", rst)
	}
}
