package transport

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestUDPCloseHandlerRace hammers the receive-after-Close window: traffic
// floods an endpoint while it closes. Run under -race. The contract under
// test: no handler invocation starts after Close returns.
func TestUDPCloseHandlerRace(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	for i := 0; i < 20; i++ {
		sender, err := NewUDP("127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		receiver, err := NewUDP("127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := sender.SetPeer("r", receiver.LocalAddr().String()); err != nil {
			t.Fatal(err)
		}

		var closed atomic.Bool
		receiver.Receive(func(p []byte) {
			if closed.Load() {
				t.Error("handler invoked after Close returned")
			}
		})

		var wg sync.WaitGroup
		stop := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = sender.Send("r", []byte("x"))
				}
			}
		}()

		if err := receiver.Close(); err != nil {
			t.Fatal(err)
		}
		closed.Store(true)
		close(stop)
		wg.Wait()
		_ = sender.Close()
	}
}

// TestUDPReceiveAfterClose pins the no-op semantics of a late Receive.
func TestUDPReceiveAfterClose(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	u, err := NewUDP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	u.Receive(func([]byte) { t.Error("handler installed after Close ran") })
	// The read loop already exited; nothing can deliver. This mostly
	// documents that the late install does not resurrect delivery.
}
