package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"stableleader/id"
)

// InprocOptions shape the behaviour of the in-process network.
type InprocOptions struct {
	// Loss is the iid probability that a datagram is dropped.
	Loss float64
	// MeanDelay is the mean of an exponential delivery delay; zero
	// delivers (asynchronously) as fast as possible.
	MeanDelay time.Duration
	// Seed seeds the loss/delay randomness; zero derives from the clock.
	Seed int64
}

// Inproc is an in-memory datagram network connecting any number of
// endpoints in one process: the quickest way to run a whole group in a
// single binary (examples, tests) or to inject controlled loss and delay
// in front of the real service.
type Inproc struct {
	mu   sync.Mutex
	eps  map[id.Process]*inprocEndpoint
	opts InprocOptions
	rng  *rand.Rand
}

// NewInproc creates an in-process network. opts may be nil for a perfect
// network.
func NewInproc(opts *InprocOptions) *Inproc {
	o := InprocOptions{}
	if opts != nil {
		o = *opts
	}
	seed := o.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Inproc{
		eps:  make(map[id.Process]*inprocEndpoint),
		opts: o,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Endpoint attaches (or returns the existing attachment of) process p.
func (h *Inproc) Endpoint(p id.Process) Transport {
	h.mu.Lock()
	defer h.mu.Unlock()
	ep, ok := h.eps[p]
	if !ok {
		ep = &inprocEndpoint{hub: h, self: p}
		h.eps[p] = ep
	}
	return ep
}

// deliver routes one datagram, applying loss and delay.
func (h *Inproc) deliver(to id.Process, payload []byte) {
	h.mu.Lock()
	if h.opts.Loss > 0 && h.rng.Float64() < h.opts.Loss {
		h.mu.Unlock()
		return
	}
	var delay time.Duration
	if h.opts.MeanDelay > 0 {
		delay = time.Duration(h.rng.ExpFloat64() * float64(h.opts.MeanDelay))
	}
	h.mu.Unlock()

	buf := make([]byte, len(payload))
	copy(buf, payload)
	dispatch := func() {
		h.mu.Lock()
		ep := h.eps[to]
		var fn func([]byte)
		if ep != nil {
			fn = ep.handler
		}
		h.mu.Unlock()
		if fn != nil {
			fn(buf)
		}
	}
	if delay > 0 {
		time.AfterFunc(delay, dispatch)
	} else {
		go dispatch()
	}
}

// inprocEndpoint is one process's attachment to the hub.
type inprocEndpoint struct {
	hub     *Inproc
	self    id.Process
	handler func([]byte)
	closed  bool
}

var _ Transport = (*inprocEndpoint)(nil)

// Send implements Transport.
func (e *inprocEndpoint) Send(to id.Process, payload []byte) error {
	e.hub.mu.Lock()
	closed := e.closed
	e.hub.mu.Unlock()
	if closed {
		return fmt.Errorf("inproc %q: %w", e.self, errClosed)
	}
	e.hub.deliver(to, payload)
	return nil
}

// Receive implements Transport.
func (e *inprocEndpoint) Receive(h func(payload []byte)) {
	e.hub.mu.Lock()
	e.handler = h
	e.hub.mu.Unlock()
}

// Close implements Transport.
func (e *inprocEndpoint) Close() error {
	e.hub.mu.Lock()
	e.closed = true
	e.handler = nil
	delete(e.hub.eps, e.self)
	e.hub.mu.Unlock()
	return nil
}

var errClosed = errors.New("transport closed")
