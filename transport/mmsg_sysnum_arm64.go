//go:build linux && arm64

package transport

// recvmmsg(2)/sendmmsg(2) syscall numbers for linux/arm64 (the
// asm-generic table). The stdlib syscall package's frozen tables predate
// sendmmsg, so the numbers are spelled here; they are ABI and can never
// change.
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
