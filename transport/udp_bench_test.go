package transport

// BenchmarkUDPReceive proves the zero-allocation receive path: the read
// loop reads into pooled buffers, identifies the peer without resolving a
// *net.UDPAddr, and hands the payload to the handler without copying. The
// benchmark drives real loopback datagrams end to end and reports total
// allocations per delivered datagram across ALL goroutines (Go's testing
// allocator accounting is process-wide), so an allocation reintroduced in
// readLoop shows up even though it runs on its own goroutine.
//
// Expected: 0 allocs/op at steady state. The send side (Send via
// WriteToUDPAddrPort on a prebuilt payload) is allocation-free too, so the
// figure isolates the receive path's contribution as zero.

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"stableleader/id"
)

func BenchmarkUDPReceive(b *testing.B) {
	recv, err := NewUDP("127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	var delivered atomic.Int64
	recv.Receive(func(p []byte) { delivered.Add(1) })

	send, err := NewUDP("127.0.0.1:0", map[id.Process]string{
		"r": recv.LocalAddr().String(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer send.Close()

	// A realistic coalesced-heartbeat-sized payload.
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i)
	}

	// Cap in-flight datagrams well under the socket buffer so loopback
	// does not drop: a drop would stall the catch-up loop below.
	const window = 64
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for int64(i)-delivered.Load() > window {
			runtime.Gosched()
		}
		if err := send.Send("r", payload); err != nil {
			b.Fatal(err)
		}
	}
	// Wait for the tail; loopback should deliver everything, but a kernel
	// drop must not hang the benchmark.
	deadline := time.Now().Add(5 * time.Second)
	for delivered.Load() < int64(b.N) && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	b.StopTimer()
	if got := delivered.Load(); got < int64(b.N) {
		b.Logf("delivered %d of %d datagrams (kernel drop); allocs/op still valid", got, b.N)
	}
}
