//go:build !linux || mips || mipsle || mips64 || mips64le

package transport

import (
	"errors"
	"net"
)

// reusePortSupported: without SO_REUSEPORT the multi-receiver mode falls
// back to a single socket — the service-side steering stage still spreads
// protocol work across its event-loop shards, only the socket reads stay
// on one goroutine.
const reusePortSupported = false

// listenReusePort is unreachable when reusePortSupported is false; it
// exists so the platform-independent code compiles everywhere.
func listenReusePort(network, addr string) (*net.UDPConn, error) {
	return nil, errors.New("transport: SO_REUSEPORT not supported on this platform")
}
