//go:build !linux || !(amd64 || arm64)

package transport

import (
	"net"
	"net/netip"
)

// Portable stand-ins for the Linux syscall-batched packet plane. With
// mmsgSupported pinned false, udp.go's batched paths are dead code on
// this platform and every send/receive degrades to the classic
// one-datagram-per-syscall loop with identical observable behavior; the
// stubs below only satisfy the compiler.

const mmsgSupported = false

const mmsgRecvBatch = 1

func mmsgDowngradeError(error) bool { return false }

type mmsgReader struct{}

func newMmsgReader(*net.UDPConn) *mmsgReader { return nil }

func (r *mmsgReader) recv() (int, error)     { return 0, nil }
func (r *mmsgReader) payload(int) []byte     { return nil }
func (r *mmsgReader) src(int) netip.AddrPort { return netip.AddrPort{} }
func (r *mmsgReader) release()               {}

// sendVec carries no state on portable builds; sendScratch embeds it so
// the pooled scratch type is the same shape everywhere.
type sendVec struct{}

func (u *UDP) sendMmsg(*net.UDPConn, *sendScratch, []Datagram) (sent int, firstErr error, downgrade bool) {
	return 0, nil, true
}

func probeGSO(*net.UDPConn) bool { return false }
