package transport

import (
	"fmt"
	"net/netip"
	"testing"

	"stableleader/id"
)

// TestLearnPeerCannotOverridePinnedAddresses is the spoof-hardening
// regression test: addresses from configuration (NewUDP peers, SetPeer)
// are pinned, so a client-plane datagram claiming a member's id must not
// redirect that member's traffic.
func TestLearnPeerCannotOverridePinnedAddresses(t *testing.T) {
	u, err := NewUDP("127.0.0.1:0", map[id.Process]string{
		"member": "127.0.0.1:7999",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()

	attacker := netip.MustParseAddrPort("10.6.6.6:6666")
	u.LearnPeer("member", attacker)
	u.mu.RLock()
	got := u.book["member"]
	u.mu.RUnlock()
	if got == attacker {
		t.Fatal("LearnPeer overwrote a configured member address")
	}

	// SetPeer pins too.
	if err := u.SetPeer("other", "127.0.0.1:7998"); err != nil {
		t.Fatal(err)
	}
	u.LearnPeer("other", attacker)
	u.mu.RLock()
	got = u.book["other"]
	u.mu.RUnlock()
	if got == attacker {
		t.Fatal("LearnPeer overwrote a SetPeer address")
	}

	// Genuinely new ids ARE learned, and refresh on change.
	a1 := netip.MustParseAddrPort("127.0.0.1:9001")
	a2 := netip.MustParseAddrPort("127.0.0.1:9002")
	u.LearnPeer("client", a1)
	u.LearnPeer("client", a2)
	u.mu.RLock()
	got = u.book["client"]
	u.mu.RUnlock()
	if got != a2 {
		t.Fatalf("learned address = %v, want %v", got, a2)
	}
}

// TestLearnPeerBounded: the learned half of the book is capped — an id
// spray cannot grow memory without bound, and pinned entries survive the
// eviction churn.
func TestLearnPeerBounded(t *testing.T) {
	u, err := NewUDP("127.0.0.1:0", map[id.Process]string{
		"member": "127.0.0.1:7999",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()

	addr := netip.MustParseAddrPort("127.0.0.1:9000")
	for i := 0; i < maxLearnedPeers+500; i++ {
		u.LearnPeer(id.Process(fmt.Sprintf("spray-%d", i)), addr)
	}
	u.mu.RLock()
	size := len(u.book)
	_, memberKept := u.book["member"]
	u.mu.RUnlock()
	if size > maxLearnedPeers+1 {
		t.Fatalf("address book grew to %d entries, cap is %d learned + 1 pinned", size, maxLearnedPeers)
	}
	if !memberKept {
		t.Fatal("eviction removed a pinned member entry")
	}
}
