// Package transport carries the service's datagrams between processes.
//
// The service treats transports as unreliable, unordered datagram carriers
// — exactly the assumption of the paper's protocols — so implementations
// never need retries or acknowledgements. Two transports are provided: an
// in-process hub (examples, tests, single-binary clusters) and UDP (real
// deployments). Payloads are opaque: the service encodes its own messages
// (see internal/wire) and identifies senders from the payload itself.
package transport

import (
	"net/netip"

	"stableleader/id"
)

// Transport is one process's attachment to the network.
//
// Payload buffers are reused on both sides of the contract: Send must not
// retain payload after it returns (the service marshals into a pooled
// buffer and reclaims it immediately), and Receive handlers must not
// retain payload after they return (transports read into pooled buffers
// and reuse them for the next datagram). Implementations that need the
// bytes past the call — queueing, delayed delivery — must copy.
type Transport interface {
	// Send transmits payload to the process named to. Best effort: an
	// error means the datagram was certainly not sent; nil means it was
	// handed to the network, which may still lose it. Send must not
	// retain payload after returning, and must be safe for concurrent
	// use — the sharded service calls it from every event-loop shard.
	Send(to id.Process, payload []byte) error
	// Receive installs the delivery callback. The callback may be invoked
	// concurrently and must not retain payload after returning. Receive
	// must be called before any delivery is expected and at most once.
	Receive(h func(payload []byte))
	// Close detaches from the network and stops deliveries. It may block
	// until in-flight handler invocations return, so it must not be
	// called from inside the Receive handler (or from anything the
	// handler is blocked on): that self-deadlocks.
	Close() error
}

// Datagram is one send-ready packet: an opaque payload bound for one
// process. Batch send paths move slices of these so a burst of datagrams
// can cross the kernel boundary in a single syscall (sendmmsg on Linux).
type Datagram struct {
	// To names the destination process (resolved through the transport's
	// address book, like Send).
	To id.Process
	// Payload is the wire bytes. Like Send, the transport must not retain
	// it after the batch call returns.
	Payload []byte
}

// BatchSender is implemented by transports that can hand several
// datagrams to the network in fewer syscalls than one per datagram.
//
// SendBatch attempts every datagram in the batch: each entry is
// independent best effort (exactly as if sent through Send one by one, in
// order), so one unresolvable destination or transient send error skips
// that entry rather than aborting the rest. sent is the number of
// datagrams actually handed to the network; err is the first per-entry
// error, nil when sent == len(batch). A kernel that transmits only a
// prefix of the vector (partial sendmmsg) is retried internally — the
// remainder is never silently dropped. Per-destination payload order is
// preserved: batch[i] and batch[j] to the same destination leave the
// socket in index order.
type BatchSender interface {
	SendBatch(batch []Datagram) (sent int, err error)
}

// SenderHint pins a caller's traffic to one send socket of a
// multi-socket transport. Callers that send concurrently (the sharded
// service's event-loop shards) pass a stable per-caller hint so their
// streams stop funneling through one socket's write lock; a given hint
// always selects the same socket, which preserves per-(hint,
// destination) send order. Hints beyond the socket count wrap around.
type SenderHint int

// HintedSender is implemented by transports with more than one send
// socket (the UDP transport in multi-receiver mode): Send/SendBatch
// variants that let the caller steer its traffic onto a stable socket
// instead of the default first one. Semantics are otherwise identical to
// Send and SendBatch.
type HintedSender interface {
	SendHint(h SenderHint, to id.Process, payload []byte) error
	SendBatchHint(h SenderHint, batch []Datagram) (sent int, err error)
}

// IOStats counts the syscall-level traffic of a transport: how many
// kernel crossings the packet plane paid and how many datagrams each one
// carried. RecvDatagrams/RecvSyscalls and SendDatagrams/SendSyscalls are
// the packets-per-syscall ratios the batched I/O plane exists to raise
// above 1.
type IOStats struct {
	// RecvSyscalls counts receive syscalls (recvmmsg or single reads).
	RecvSyscalls int64
	// RecvDatagrams counts datagrams those syscalls returned.
	RecvDatagrams int64
	// SendSyscalls counts send syscalls (sendmmsg or single writes).
	SendSyscalls int64
	// SendDatagrams counts datagrams those syscalls transmitted (GSO
	// super-datagrams count once per wire datagram they segment into).
	SendDatagrams int64
	// GSOBatches counts kernel-segmented super-datagrams sent, and
	// GSOSegments the wire datagrams they expanded to.
	GSOBatches  int64
	GSOSegments int64
}

// IOStatser is implemented by transports that account their syscall
// traffic. The service folds these numbers into PacketStats.
type IOStatser interface {
	IOStats() IOStats
}

// SourceAware is implemented by transports that expose each datagram's
// network source and can learn id-to-address mappings from it. The
// service uses it for the remote client plane: clients are a dynamic,
// unbounded population that cannot be preconfigured in a static address
// book, so the service learns each client's address from its SUBSCRIBE
// traffic and answers through the learned mapping.
//
// The in-process transport routes by id natively and does not need this;
// UDP implements it.
type SourceAware interface {
	// ReceiveFrom installs a delivery callback that also receives the
	// datagram's source address. It replaces Receive (same contract:
	// before any delivery, at most one of the two, payload not retained).
	ReceiveFrom(h func(payload []byte, src netip.AddrPort))
	// LearnPeer adds or refreshes the address for process p. Safe for
	// concurrent use; learning an unchanged address is cheap.
	LearnPeer(p id.Process, addr netip.AddrPort)
}
