// Package transport carries the service's datagrams between processes.
//
// The service treats transports as unreliable, unordered datagram carriers
// — exactly the assumption of the paper's protocols — so implementations
// never need retries or acknowledgements. Two transports are provided: an
// in-process hub (examples, tests, single-binary clusters) and UDP (real
// deployments). Payloads are opaque: the service encodes its own messages
// (see internal/wire) and identifies senders from the payload itself.
package transport

import (
	"net/netip"

	"stableleader/id"
)

// Transport is one process's attachment to the network.
//
// Payload buffers are reused on both sides of the contract: Send must not
// retain payload after it returns (the service marshals into a pooled
// buffer and reclaims it immediately), and Receive handlers must not
// retain payload after they return (transports read into pooled buffers
// and reuse them for the next datagram). Implementations that need the
// bytes past the call — queueing, delayed delivery — must copy.
type Transport interface {
	// Send transmits payload to the process named to. Best effort: an
	// error means the datagram was certainly not sent; nil means it was
	// handed to the network, which may still lose it. Send must not
	// retain payload after returning, and must be safe for concurrent
	// use — the sharded service calls it from every event-loop shard.
	Send(to id.Process, payload []byte) error
	// Receive installs the delivery callback. The callback may be invoked
	// concurrently and must not retain payload after returning. Receive
	// must be called before any delivery is expected and at most once.
	Receive(h func(payload []byte))
	// Close detaches from the network and stops deliveries. It may block
	// until in-flight handler invocations return, so it must not be
	// called from inside the Receive handler (or from anything the
	// handler is blocked on): that self-deadlocks.
	Close() error
}

// SourceAware is implemented by transports that expose each datagram's
// network source and can learn id-to-address mappings from it. The
// service uses it for the remote client plane: clients are a dynamic,
// unbounded population that cannot be preconfigured in a static address
// book, so the service learns each client's address from its SUBSCRIBE
// traffic and answers through the learned mapping.
//
// The in-process transport routes by id natively and does not need this;
// UDP implements it.
type SourceAware interface {
	// ReceiveFrom installs a delivery callback that also receives the
	// datagram's source address. It replaces Receive (same contract:
	// before any delivery, at most one of the two, payload not retained).
	ReceiveFrom(h func(payload []byte, src netip.AddrPort))
	// LearnPeer adds or refreshes the address for process p. Safe for
	// concurrent use; learning an unchanged address is cheap.
	LearnPeer(p id.Process, addr netip.AddrPort)
}
