//go:build linux && amd64

package transport

// recvmmsg(2)/sendmmsg(2) syscall numbers for linux/amd64. The stdlib
// syscall package's frozen tables predate sendmmsg (Linux 3.0), so the
// numbers are spelled here; they are ABI and can never change.
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
