package transport

import (
	"fmt"
	"net"
	"net/netip"
	"sync"

	"stableleader/id"
)

// maxDatagram bounds received datagrams; service messages are far smaller.
const maxDatagram = 64 * 1024

// payloadPool recycles receive buffers across read iterations (and across
// UDP instances). The Receive contract forbids handlers from retaining the
// payload, so a buffer goes back into the pool the moment the handler
// returns: the receive path performs no per-datagram allocation.
var payloadPool = sync.Pool{
	New: func() any {
		b := make([]byte, maxDatagram)
		return &b
	},
}

// UDP is the real-network transport: one UDP socket per process plus a
// static address book mapping process ids to peer addresses, mirroring the
// deployment style of the paper's testbed (a fixed set of workstations).
type UDP struct {
	conn *net.UDPConn

	// readerDone is closed when readLoop returns; Close waits on it so no
	// handler invocation can be in flight once Close has returned.
	readerDone chan struct{}

	mu      sync.RWMutex
	book    map[id.Process]netip.AddrPort
	handler func([]byte)
	closed  bool
}

// NewUDP opens a socket on listen (e.g. ":7400" or "10.0.0.3:7400") and
// resolves the peer address book, e.g. {"b": "10.0.0.4:7400"}.
func NewUDP(listen string, peers map[id.Process]string) (*UDP, error) {
	laddr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve listen %q: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", listen, err)
	}
	u := &UDP{
		conn:       conn,
		readerDone: make(chan struct{}),
		book:       make(map[id.Process]netip.AddrPort, len(peers)),
	}
	for p, addr := range peers {
		a, err := resolveAddrPort(addr)
		if err != nil {
			_ = conn.Close()
			return nil, fmt.Errorf("transport: resolve peer %q=%q: %w", p, addr, err)
		}
		u.book[p] = a
	}
	go u.readLoop()
	return u, nil
}

// resolveAddrPort resolves a host:port (names included) to a socket
// address value. Storing netip.AddrPort instead of *net.UDPAddr keeps the
// send path free of per-datagram sockaddr allocations.
func resolveAddrPort(addr string) (netip.AddrPort, error) {
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return netip.AddrPort{}, err
	}
	ap := a.AddrPort()
	// Unmap 4-in-6 forms (net.IP stores IPv4 in 16 bytes): an AF_INET
	// socket rejects ::ffff:a.b.c.d destinations.
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()), nil
}

// LocalAddr returns the bound socket address.
func (u *UDP) LocalAddr() net.Addr { return u.conn.LocalAddr() }

// SetPeer adds or updates one peer address.
func (u *UDP) SetPeer(p id.Process, addr string) error {
	a, err := resolveAddrPort(addr)
	if err != nil {
		return fmt.Errorf("transport: resolve peer %q=%q: %w", p, addr, err)
	}
	u.mu.Lock()
	u.book[p] = a
	u.mu.Unlock()
	return nil
}

// readLoop pumps datagrams into the handler until the socket closes. Each
// iteration reads into a pooled buffer, hands it to the handler, and
// returns it to the pool — zero copies and zero allocations per datagram
// (the handler must not retain the payload, per the Receive contract).
func (u *UDP) readLoop() {
	defer close(u.readerDone)
	for {
		bp := payloadPool.Get().(*[]byte)
		n, _, err := u.conn.ReadFromUDPAddrPort(*bp)
		if err != nil {
			payloadPool.Put(bp)
			return
		}
		// Snapshot the handler under the lock and re-check closed: Close
		// clears the handler before closing the socket, so a datagram that
		// raced the shutdown is dropped here rather than delivered.
		u.mu.RLock()
		h := u.handler
		closed := u.closed
		u.mu.RUnlock()
		if h != nil && !closed {
			h((*bp)[:n])
		}
		payloadPool.Put(bp)
	}
}

// Send implements Transport. The payload is written synchronously and not
// retained, per the Transport contract.
func (u *UDP) Send(to id.Process, payload []byte) error {
	u.mu.RLock()
	addr, ok := u.book[to]
	closed := u.closed
	u.mu.RUnlock()
	if closed {
		return fmt.Errorf("udp: %w", errClosed)
	}
	if !ok {
		return fmt.Errorf("transport: no address for process %q", to)
	}
	_, err := u.conn.WriteToUDPAddrPort(payload, addr)
	return err
}

// Receive implements Transport. Installing a handler after Close is a
// no-op: deliveries have already stopped for good.
func (u *UDP) Receive(h func(payload []byte)) {
	u.mu.Lock()
	if !u.closed {
		u.handler = h
	}
	u.mu.Unlock()
}

// Close implements Transport. It returns only after the read loop has
// exited, so no handler invocation survives (or starts after) Close —
// which also means Close must never be called from the handler itself
// (see the Transport.Close contract).
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		<-u.readerDone
		return nil
	}
	u.closed = true
	u.handler = nil
	u.mu.Unlock()
	err := u.conn.Close() // unblocks ReadFromUDPAddrPort; readLoop then exits
	<-u.readerDone
	return err
}

var _ Transport = (*UDP)(nil)
