package transport

import (
	"fmt"
	"net"
	"net/netip"
	"sync"

	"stableleader/id"
)

// maxDatagram bounds received datagrams; service messages are far smaller.
const maxDatagram = 64 * 1024

// maxLearnedPeers bounds the learned (non-pinned) half of the address
// book: a spray of datagrams with unique sender ids must not grow memory
// without bound. At the cap, learning a new id evicts an arbitrary
// learned entry — an evicted-but-live client re-teaches its address with
// its next renewal.
const maxLearnedPeers = 65536

// payloadPool recycles receive buffers across read iterations (and across
// UDP instances). The Receive contract forbids handlers from retaining the
// payload, so a buffer goes back into the pool the moment the handler
// returns: the receive path performs no per-datagram allocation.
var payloadPool = sync.Pool{
	New: func() any {
		b := make([]byte, maxDatagram)
		return &b
	},
}

// UDP is the real-network transport: one or more UDP sockets per process
// plus a static address book mapping process ids to peer addresses,
// mirroring the deployment style of the paper's testbed (a fixed set of
// workstations). With WithReceivers(n) and kernel SO_REUSEPORT support,
// n sockets share the listen address and each runs its own read loop —
// the kernel hashes each peer's flow onto one socket, so per-peer
// ordering is preserved while receive processing (and the service's
// decode + steering stage behind the handler) spreads across cores.
type UDP struct {
	// conns are the bound sockets; conns[0] is the send socket and the
	// address LocalAddr reports. Immutable after construction.
	conns []*net.UDPConn

	// readerDone is closed when every readLoop has returned; Close waits
	// on it so no handler invocation can be in flight once Close has
	// returned.
	readerDone chan struct{}
	readers    sync.WaitGroup

	mu   sync.RWMutex
	book map[id.Process]netip.AddrPort
	// pinned marks ids whose address was configured (NewUDP peers,
	// SetPeer) rather than learned: LearnPeer must never overwrite them,
	// or one spoofed client-plane datagram naming a member id would
	// redirect that member's protocol traffic to the attacker.
	pinned  map[id.Process]bool
	handler func([]byte)
	// srcHandler is the SourceAware alternative to handler: at most one
	// of the two is installed.
	srcHandler func([]byte, netip.AddrPort)
	closed     bool
}

// udpConfig is the result of applying UDPOptions.
type udpConfig struct {
	receivers int
}

// UDPOption configures a UDP transport at construction (see NewUDP).
type UDPOption func(*udpConfig)

// WithReceivers asks for n parallel receive sockets on the listen address
// (default 1). Values above 1 need kernel SO_REUSEPORT support; where it
// is unavailable (or a socket fails to open) the transport silently falls
// back to fewer sockets — Receivers reports the number actually running.
// More receivers only help a host whose handler scales with concurrent
// delivery, like the sharded service's steered inbound plane.
func WithReceivers(n int) UDPOption {
	return func(c *udpConfig) {
		if n > 0 {
			c.receivers = n
		}
	}
}

// NewUDP opens a socket on listen (e.g. ":7400" or "10.0.0.3:7400") and
// resolves the peer address book, e.g. {"b": "10.0.0.4:7400"}.
func NewUDP(listen string, peers map[id.Process]string, opts ...UDPOption) (*UDP, error) {
	cfg := udpConfig{receivers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	laddr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve listen %q: %w", listen, err)
	}
	conns, err := openSockets(laddr, cfg.receivers)
	if err != nil {
		return nil, err
	}
	u := &UDP{
		conns:      conns,
		readerDone: make(chan struct{}),
		book:       make(map[id.Process]netip.AddrPort, len(peers)),
		pinned:     make(map[id.Process]bool, len(peers)),
	}
	for p, addr := range peers {
		a, err := resolveAddrPort(addr)
		if err != nil {
			for _, c := range conns {
				_ = c.Close()
			}
			return nil, fmt.Errorf("transport: resolve peer %q=%q: %w", p, addr, err)
		}
		u.book[p] = a
		u.pinned[p] = true
	}
	u.readers.Add(len(u.conns))
	for _, c := range u.conns {
		go u.readLoop(c)
	}
	go func() {
		u.readers.Wait()
		close(u.readerDone)
	}()
	return u, nil
}

// openSockets binds n sockets to laddr. n == 1 is the classic single
// socket; above that every socket (the first included) is opened with
// SO_REUSEPORT so the kernel accepts the shared binding, falling back to
// whatever subset opened — at minimum the plain single socket.
func openSockets(laddr *net.UDPAddr, n int) ([]*net.UDPConn, error) {
	if n <= 1 || !reusePortSupported {
		conn, err := net.ListenUDP("udp", laddr)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %q: %w", laddr, err)
		}
		return []*net.UDPConn{conn}, nil
	}
	first, err := listenReusePort("udp", laddr.String())
	if err != nil {
		// SO_REUSEPORT refused (policy, odd network stack): classic socket.
		conn, perr := net.ListenUDP("udp", laddr)
		if perr != nil {
			return nil, fmt.Errorf("transport: listen %q: %w", laddr, perr)
		}
		return []*net.UDPConn{conn}, nil
	}
	conns := []*net.UDPConn{first}
	// Siblings bind the first socket's RESOLVED address: with ":0" every
	// receiver must share the one ephemeral port the kernel picked.
	actual := first.LocalAddr().String()
	for len(conns) < n {
		c, err := listenReusePort("udp", actual)
		if err != nil {
			break // run with what opened; Receivers reports the truth
		}
		conns = append(conns, c)
	}
	return conns, nil
}

// Receivers reports how many receive sockets are running (see
// WithReceivers).
func (u *UDP) Receivers() int { return len(u.conns) }

// resolveAddrPort resolves a host:port (names included) to a socket
// address value. Storing netip.AddrPort instead of *net.UDPAddr keeps the
// send path free of per-datagram sockaddr allocations.
func resolveAddrPort(addr string) (netip.AddrPort, error) {
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return netip.AddrPort{}, err
	}
	ap := a.AddrPort()
	// Unmap 4-in-6 forms (net.IP stores IPv4 in 16 bytes): an AF_INET
	// socket rejects ::ffff:a.b.c.d destinations.
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()), nil
}

// LocalAddr returns the bound socket address.
func (u *UDP) LocalAddr() net.Addr { return u.conns[0].LocalAddr() }

// SetPeer adds or updates one peer address. Addresses set this way are
// configuration: they are pinned against LearnPeer overwrites.
func (u *UDP) SetPeer(p id.Process, addr string) error {
	a, err := resolveAddrPort(addr)
	if err != nil {
		return fmt.Errorf("transport: resolve peer %q=%q: %w", p, addr, err)
	}
	u.mu.Lock()
	u.book[p] = a
	u.pinned[p] = true
	u.mu.Unlock()
	return nil
}

// readLoop pumps one socket's datagrams into the handler until the socket
// closes. Each iteration reads into a pooled buffer, hands it to the
// handler, and returns it to the pool — zero copies and zero allocations
// per datagram (the handler must not retain the payload, per the Receive
// contract). In multi-receiver mode several readLoops run concurrently,
// which the handler contract has always permitted.
func (u *UDP) readLoop(conn *net.UDPConn) {
	defer u.readers.Done()
	for {
		bp := payloadPool.Get().(*[]byte)
		n, src, err := conn.ReadFromUDPAddrPort(*bp)
		if err != nil {
			payloadPool.Put(bp)
			return
		}
		// Snapshot the handler under the lock and re-check closed: Close
		// clears the handler before closing the socket, so a datagram that
		// raced the shutdown is dropped here rather than delivered.
		u.mu.RLock()
		h := u.handler
		sh := u.srcHandler
		closed := u.closed
		u.mu.RUnlock()
		if !closed {
			switch {
			case sh != nil:
				sh((*bp)[:n], netip.AddrPortFrom(src.Addr().Unmap(), src.Port()))
			case h != nil:
				h((*bp)[:n])
			}
		}
		payloadPool.Put(bp)
	}
}

// Send implements Transport. The payload is written synchronously and not
// retained, per the Transport contract.
func (u *UDP) Send(to id.Process, payload []byte) error {
	u.mu.RLock()
	addr, ok := u.book[to]
	closed := u.closed
	u.mu.RUnlock()
	if closed {
		return fmt.Errorf("udp: %w", errClosed)
	}
	if !ok {
		return fmt.Errorf("transport: no address for process %q", to)
	}
	_, err := u.conns[0].WriteToUDPAddrPort(payload, addr)
	return err
}

// Receive implements Transport. Installing a handler after Close is a
// no-op: deliveries have already stopped for good.
func (u *UDP) Receive(h func(payload []byte)) {
	u.mu.Lock()
	if !u.closed {
		u.handler = h
	}
	u.mu.Unlock()
}

// ReceiveFrom implements SourceAware: like Receive, with the datagram's
// source address alongside — what the client plane's address learning
// feeds on. Installing it after Close is a no-op.
func (u *UDP) ReceiveFrom(h func(payload []byte, src netip.AddrPort)) {
	u.mu.Lock()
	if !u.closed {
		u.srcHandler = h
	}
	u.mu.Unlock()
}

// LearnPeer implements SourceAware: it adds or refreshes one peer
// address — unless the id's address is pinned configuration (NewUDP
// peers, SetPeer), which learning must never override: otherwise one
// spoofed datagram claiming a member's id would hijack that member's
// traffic. The common case — the address is already known and unchanged —
// takes only the read lock, so per-datagram learning stays cheap.
func (u *UDP) LearnPeer(p id.Process, addr netip.AddrPort) {
	u.mu.RLock()
	cur, ok := u.book[p]
	pinned := u.pinned[p]
	u.mu.RUnlock()
	if pinned || (ok && cur == addr) {
		return
	}
	u.mu.Lock()
	if !u.pinned[p] {
		if _, exists := u.book[p]; !exists && len(u.book)-len(u.pinned) >= maxLearnedPeers {
			// At capacity: evict an arbitrary learned entry to stay
			// bounded (map iteration order; pinned entries are immune).
			for q := range u.book {
				if !u.pinned[q] {
					delete(u.book, q)
					break
				}
			}
		}
		u.book[p] = addr
	}
	u.mu.Unlock()
}

// Close implements Transport. It returns only after the read loop has
// exited, so no handler invocation survives (or starts after) Close —
// which also means Close must never be called from the handler itself
// (see the Transport.Close contract).
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		<-u.readerDone
		return nil
	}
	u.closed = true
	u.handler = nil
	u.srcHandler = nil
	u.mu.Unlock()
	var err error
	for _, c := range u.conns {
		// Unblocks each ReadFromUDPAddrPort; its readLoop then exits.
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	<-u.readerDone
	return err
}

var _ Transport = (*UDP)(nil)
var _ SourceAware = (*UDP)(nil)
