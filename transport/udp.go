package transport

import (
	"fmt"
	"net"
	"net/netip"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"stableleader/id"
)

// maxDatagram bounds received datagrams; service messages are far smaller.
const maxDatagram = 64 * 1024

// maxSendBatch is the sendmmsg vector width: SendBatch transmits at most
// this many datagrams per syscall and chunks longer batches.
const maxSendBatch = 64

// Socket address families, abstracted from syscall constants so the
// portable build carries no syscall dependency.
const (
	famIPv4 = 4
	famIPv6 = 6
)

// batchEnvVar force-disables the syscall-batched packet plane when set
// to an off value — the escape hatch for CI's portable-path runs and for
// production triage without a rebuild.
const batchEnvVar = "STABLELEADER_UDP_BATCH"

func batchEnvDefault() bool {
	switch strings.ToLower(os.Getenv(batchEnvVar)) {
	case "0", "off", "false", "no":
		return false
	}
	return true
}

// maxLearnedPeers bounds the learned (non-pinned) half of the address
// book: a spray of datagrams with unique sender ids must not grow memory
// without bound. At the cap, learning a new id evicts an arbitrary
// learned entry — an evicted-but-live client re-teaches its address with
// its next renewal.
const maxLearnedPeers = 65536

// payloadPool recycles receive buffers across read iterations (and across
// UDP instances). The Receive contract forbids handlers from retaining the
// payload, so a buffer goes back into the pool the moment the handler
// returns: the receive path performs no per-datagram allocation.
var payloadPool = sync.Pool{
	New: func() any {
		b := make([]byte, maxDatagram)
		return &b
	},
}

// getPayloadBuf takes one receive buffer from the pool. The batched read
// loop pins a ring of these for its lifetime; the classic loop cycles
// one per datagram.
//
//leadervet:acquires
func getPayloadBuf() *[]byte {
	return payloadPool.Get().(*[]byte)
}

// putPayloadBuf returns a receive buffer to the pool.
//
//leadervet:releases bp
func putPayloadBuf(bp *[]byte) {
	payloadPool.Put(bp)
}

// sendScratch is the per-SendBatch-chunk working state: resolved
// destination addresses, per-entry resolve/routing flags, and the
// platform sendmmsg vector. Pooled because SendBatch runs on every
// shard's flush path.
type sendScratch struct {
	addrs  [maxSendBatch]netip.AddrPort
	ok     [maxSendBatch]bool
	direct [maxSendBatch]bool
	vec    sendVec
}

var sendScratchPool = sync.Pool{
	New: func() any { return new(sendScratch) },
}

//leadervet:acquires
func getSendScratch() *sendScratch {
	return sendScratchPool.Get().(*sendScratch)
}

//leadervet:releases s
func putSendScratch(s *sendScratch) {
	sendScratchPool.Put(s)
}

// ioCounters is the transport's syscall-level accounting (see IOStats).
type ioCounters struct {
	recvSyscalls  atomic.Int64
	recvDatagrams atomic.Int64
	sendSyscalls  atomic.Int64
	sendDatagrams atomic.Int64
	gsoBatches    atomic.Int64
	gsoSegments   atomic.Int64
}

// UDP is the real-network transport: one or more UDP sockets per process
// plus a static address book mapping process ids to peer addresses,
// mirroring the deployment style of the paper's testbed (a fixed set of
// workstations). With WithReceivers(n) and kernel SO_REUSEPORT support,
// n sockets share the listen address and each runs its own read loop —
// the kernel hashes each peer's flow onto one socket, so per-peer
// ordering is preserved while receive processing (and the service's
// decode + steering stage behind the handler) spreads across cores.
type UDP struct {
	// conns are the bound sockets; conns[0] is the send socket and the
	// address LocalAddr reports. Immutable after construction.
	conns []*net.UDPConn

	// family is the socket address family (famIPv4/famIPv6), fixed at
	// construction; the raw sendmmsg path encodes sockaddrs for it.
	family int
	// batch enables the syscall-batched packet plane (WithBatchIO and the
	// STABLELEADER_UDP_BATCH environment variable); mmsgDown latches the
	// runtime downgrade when the kernel or a seccomp policy refuses
	// recvmmsg/sendmmsg, demoting both directions to the classic
	// one-datagram-per-syscall path for the transport's lifetime.
	batch    bool
	mmsgDown atomic.Bool
	// gsoOK records whether the kernel accepts UDP_SEGMENT (probed once
	// at construction).
	gsoOK bool

	// io counts syscalls and datagrams in both directions (see IOStats).
	io ioCounters

	// readerDone is closed when every readLoop has returned; Close waits
	// on it so no handler invocation can be in flight once Close has
	// returned.
	readerDone chan struct{}
	readers    sync.WaitGroup

	mu   sync.RWMutex
	book map[id.Process]netip.AddrPort
	// pinned marks ids whose address was configured (NewUDP peers,
	// SetPeer) rather than learned: LearnPeer must never overwrite them,
	// or one spoofed client-plane datagram naming a member id would
	// redirect that member's protocol traffic to the attacker.
	pinned  map[id.Process]bool
	handler func([]byte)
	// srcHandler is the SourceAware alternative to handler: at most one
	// of the two is installed.
	srcHandler func([]byte, netip.AddrPort)
	closed     bool
}

// udpConfig is the result of applying UDPOptions.
type udpConfig struct {
	receivers int
	batchIO   bool
	sockBuf   int
}

// UDPOption configures a UDP transport at construction (see NewUDP).
type UDPOption func(*udpConfig)

// WithReceivers asks for n parallel receive sockets on the listen address
// (default 1). Values above 1 need kernel SO_REUSEPORT support; where it
// is unavailable (or a socket fails to open) the transport silently falls
// back to fewer sockets — Receivers reports the number actually running.
// More receivers only help a host whose handler scales with concurrent
// delivery, like the sharded service's steered inbound plane.
func WithReceivers(n int) UDPOption {
	return func(c *udpConfig) {
		if n > 0 {
			c.receivers = n
		}
	}
}

// WithBatchIO forces the syscall-batched packet plane (recvmmsg/sendmmsg
// with optional UDP GSO) on or off. The default is on where the platform
// supports it, unless the STABLELEADER_UDP_BATCH environment variable
// says otherwise ("0", "off", "false", "no" disable); an explicit option
// wins over the environment. On platforms without the fast path, and on
// kernels that refuse the syscalls at runtime, the transport behaves
// identically either way — one datagram per syscall.
func WithBatchIO(on bool) UDPOption {
	return func(c *udpConfig) { c.batchIO = on }
}

// WithSocketBuffers asks the kernel for n-byte receive and send buffers
// on every socket (default: kernel defaults, typically ~208KiB). Larger
// buffers absorb the bursts the batched packet plane produces — a single
// sendmmsg vector can land dozens of datagrams on a receiver between two
// of its scheduler slots, and a default-sized buffer drops the overflow.
// Best effort: the kernel clamps to net.core.{r,w}mem_max, and a refusal
// is ignored.
func WithSocketBuffers(n int) UDPOption {
	return func(c *udpConfig) {
		if n > 0 {
			c.sockBuf = n
		}
	}
}

// NewUDP opens a socket on listen (e.g. ":7400" or "10.0.0.3:7400") and
// resolves the peer address book, e.g. {"b": "10.0.0.4:7400"}.
func NewUDP(listen string, peers map[id.Process]string, opts ...UDPOption) (*UDP, error) {
	cfg := udpConfig{receivers: 1, batchIO: batchEnvDefault()}
	for _, o := range opts {
		o(&cfg)
	}
	laddr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve listen %q: %w", listen, err)
	}
	conns, err := openSockets(laddr, cfg.receivers)
	if err != nil {
		return nil, err
	}
	if cfg.sockBuf > 0 {
		for _, c := range conns {
			_ = c.SetReadBuffer(cfg.sockBuf)
			_ = c.SetWriteBuffer(cfg.sockBuf)
		}
	}
	u := &UDP{
		conns:      conns,
		family:     sockFamily(conns[0]),
		batch:      cfg.batchIO && mmsgSupported,
		readerDone: make(chan struct{}),
		book:       make(map[id.Process]netip.AddrPort, len(peers)),
		pinned:     make(map[id.Process]bool, len(peers)),
	}
	if u.batch {
		// GSO support is a kernel property; one socket answers for all.
		u.gsoOK = probeGSO(conns[0])
	}
	for p, addr := range peers {
		a, err := resolveAddrPort(addr)
		if err != nil {
			for _, c := range conns {
				_ = c.Close()
			}
			return nil, fmt.Errorf("transport: resolve peer %q=%q: %w", p, addr, err)
		}
		u.book[p] = a
		u.pinned[p] = true
	}
	u.readers.Add(len(u.conns))
	for _, c := range u.conns {
		go u.readLoop(c)
	}
	go func() {
		u.readers.Wait()
		close(u.readerDone)
	}()
	return u, nil
}

// openSockets binds n sockets to laddr. n == 1 is the classic single
// socket; above that every socket (the first included) is opened with
// SO_REUSEPORT so the kernel accepts the shared binding, falling back to
// whatever subset opened — at minimum the plain single socket.
func openSockets(laddr *net.UDPAddr, n int) ([]*net.UDPConn, error) {
	if n <= 1 || !reusePortSupported {
		conn, err := net.ListenUDP("udp", laddr)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %q: %w", laddr, err)
		}
		return []*net.UDPConn{conn}, nil
	}
	first, err := listenReusePort("udp", laddr.String())
	if err != nil {
		// SO_REUSEPORT refused (policy, odd network stack): classic socket.
		conn, perr := net.ListenUDP("udp", laddr)
		if perr != nil {
			return nil, fmt.Errorf("transport: listen %q: %w", laddr, perr)
		}
		return []*net.UDPConn{conn}, nil
	}
	conns := []*net.UDPConn{first}
	// Siblings bind the first socket's RESOLVED address: with ":0" every
	// receiver must share the one ephemeral port the kernel picked.
	actual := first.LocalAddr().String()
	for len(conns) < n {
		c, err := listenReusePort("udp", actual)
		if err != nil {
			break // run with what opened; Receivers reports the truth
		}
		conns = append(conns, c)
	}
	return conns, nil
}

// Receivers reports how many receive sockets are running (see
// WithReceivers).
func (u *UDP) Receivers() int { return len(u.conns) }

// resolveAddrPort resolves a host:port (names included) to a socket
// address value. Storing netip.AddrPort instead of *net.UDPAddr keeps the
// send path free of per-datagram sockaddr allocations.
func resolveAddrPort(addr string) (netip.AddrPort, error) {
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return netip.AddrPort{}, err
	}
	ap := a.AddrPort()
	// Unmap 4-in-6 forms (net.IP stores IPv4 in 16 bytes): an AF_INET
	// socket rejects ::ffff:a.b.c.d destinations.
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()), nil
}

// LocalAddr returns the bound socket address.
func (u *UDP) LocalAddr() net.Addr { return u.conns[0].LocalAddr() }

// SetPeer adds or updates one peer address. Addresses set this way are
// configuration: they are pinned against LearnPeer overwrites.
func (u *UDP) SetPeer(p id.Process, addr string) error {
	a, err := resolveAddrPort(addr)
	if err != nil {
		return fmt.Errorf("transport: resolve peer %q=%q: %w", p, addr, err)
	}
	u.mu.Lock()
	u.book[p] = a
	u.pinned[p] = true
	u.mu.Unlock()
	return nil
}

// sockFamily detects the bound socket's address family. Wildcard and
// IPv6 binds (the stdlib default) are AF_INET6; only an explicit IPv4
// listen address yields an AF_INET socket.
func sockFamily(conn *net.UDPConn) int {
	if a, ok := conn.LocalAddr().(*net.UDPAddr); ok && a.IP.To4() != nil {
		return famIPv4
	}
	return famIPv6
}

// batchActive reports whether the syscall-batched fast path is live:
// built in, enabled, and not runtime-downgraded.
//
//leadervet:hotpath
func (u *UDP) batchActive() bool {
	return mmsgSupported && u.batch && !u.mmsgDown.Load()
}

// BatchIO reports whether the syscall-batched packet plane is currently
// active (see WithBatchIO); false after a runtime downgrade.
func (u *UDP) BatchIO() bool { return u.batchActive() }

// IOStats implements IOStatser.
func (u *UDP) IOStats() IOStats {
	return IOStats{
		RecvSyscalls:  u.io.recvSyscalls.Load(),
		RecvDatagrams: u.io.recvDatagrams.Load(),
		SendSyscalls:  u.io.sendSyscalls.Load(),
		SendDatagrams: u.io.sendDatagrams.Load(),
		GSOBatches:    u.io.gsoBatches.Load(),
		GSOSegments:   u.io.gsoSegments.Load(),
	}
}

// readLoop pumps one socket's datagrams into the handler until the
// socket closes, through the batched recvmmsg path where active and the
// classic one-read-per-datagram path everywhere else. A batched loop
// that discovers the kernel refuses recvmmsg (ENOSYS, seccomp) demotes
// the whole transport and continues classically — no datagram is lost in
// the handoff.
func (u *UDP) readLoop(conn *net.UDPConn) {
	defer u.readers.Done()
	if u.batchActive() {
		if u.readLoopBatched(conn) {
			return
		}
		u.mmsgDown.Store(true)
	}
	u.readLoopClassic(conn)
}

// readLoopBatched drains up to mmsgRecvBatch datagrams per syscall into
// a pinned buffer ring and delivers each through the handler contract.
// Returns true when the loop is done (socket closed), false to demote to
// the classic loop.
func (u *UDP) readLoopBatched(conn *net.UDPConn) bool {
	r := newMmsgReader(conn)
	if r == nil {
		return false
	}
	defer r.release()
	for {
		n, err := r.recv()
		if err != nil {
			// The poller's error (socket closed) ends the loop; a refused
			// syscall demotes the transport.
			return !mmsgDowngradeError(err)
		}
		if n == 0 {
			continue
		}
		u.io.recvSyscalls.Add(1)
		u.io.recvDatagrams.Add(int64(n))
		// Snapshot the handler under the lock and re-check closed, exactly
		// like the classic loop: a burst that raced the shutdown is dropped
		// rather than delivered.
		u.mu.RLock()
		h := u.handler
		sh := u.srcHandler
		closed := u.closed
		u.mu.RUnlock()
		if closed {
			return true
		}
		for i := 0; i < n; i++ {
			switch {
			case sh != nil:
				sh(r.payload(i), r.src(i))
			case h != nil:
				h(r.payload(i))
			}
		}
	}
}

// readLoopClassic reads one datagram per syscall into a pooled buffer,
// hands it to the handler, and returns it to the pool — zero copies and
// zero allocations per datagram (the handler must not retain the
// payload, per the Receive contract). In multi-receiver mode several
// readLoops run concurrently, which the handler contract has always
// permitted.
func (u *UDP) readLoopClassic(conn *net.UDPConn) {
	for {
		bp := getPayloadBuf()
		n, src, err := conn.ReadFromUDPAddrPort(*bp)
		if err != nil {
			putPayloadBuf(bp)
			return
		}
		u.io.recvSyscalls.Add(1)
		u.io.recvDatagrams.Add(1)
		// Snapshot the handler under the lock and re-check closed: Close
		// clears the handler before closing the socket, so a datagram that
		// raced the shutdown is dropped here rather than delivered.
		u.mu.RLock()
		h := u.handler
		sh := u.srcHandler
		closed := u.closed
		u.mu.RUnlock()
		if !closed {
			switch {
			case sh != nil:
				sh((*bp)[:n], netip.AddrPortFrom(src.Addr().Unmap(), src.Port()))
			case h != nil:
				h((*bp)[:n])
			}
		}
		putPayloadBuf(bp)
	}
}

// Send implements Transport. The payload is written synchronously and not
// retained, per the Transport contract. Send always uses the first
// socket; concurrent callers that want their own socket pass a hint
// through SendHint.
func (u *UDP) Send(to id.Process, payload []byte) error {
	return u.SendHint(0, to, payload)
}

// SendHint implements HintedSender: Send on the socket the hint selects.
// A stable hint per caller (the service passes its shard index) spreads
// concurrent senders across the multi-receiver sockets instead of
// funneling them through one socket's write lock, while keeping each
// (hint, destination) stream on one socket — per-pair send order is
// preserved.
func (u *UDP) SendHint(h SenderHint, to id.Process, payload []byte) error {
	u.mu.RLock()
	addr, ok := u.book[to]
	closed := u.closed
	u.mu.RUnlock()
	if closed {
		return fmt.Errorf("udp: %w", errClosed)
	}
	if !ok {
		return fmt.Errorf("transport: no address for process %q", to)
	}
	return u.writeOne(u.sendConn(h), payload, addr)
}

// sendConn maps a sender hint onto one of the sockets, stably.
//
//leadervet:hotpath
func (u *UDP) sendConn(h SenderHint) *net.UDPConn {
	if h <= 0 || len(u.conns) == 1 {
		return u.conns[0]
	}
	return u.conns[int(h)%len(u.conns)]
}

// writeOne is the single-datagram write: one syscall, counted.
//
//leadervet:hotpath
func (u *UDP) writeOne(conn *net.UDPConn, payload []byte, addr netip.AddrPort) error {
	_, err := conn.WriteToUDPAddrPort(payload, addr)
	u.io.sendSyscalls.Add(1)
	if err == nil {
		u.io.sendDatagrams.Add(1)
	}
	return err
}

// SendBatch implements BatchSender on the default send socket.
func (u *UDP) SendBatch(batch []Datagram) (int, error) {
	return u.SendBatchHint(0, batch)
}

// SendBatchHint implements HintedSender: SendBatch on the socket the
// hint selects. Where the platform fast path is active the batch goes
// out in sendmmsg vectors of up to maxSendBatch datagrams (GSO-coalesced
// where profitable); otherwise it degrades to exactly the loop of writes
// Send would have performed, same per-entry semantics.
func (u *UDP) SendBatchHint(h SenderHint, batch []Datagram) (int, error) {
	sent := 0
	var firstErr error
	for off := 0; off < len(batch); off += maxSendBatch {
		end := off + maxSendBatch
		if end > len(batch) {
			end = len(batch)
		}
		n, err := u.sendChunk(h, batch[off:end])
		sent += n
		if firstErr == nil {
			firstErr = err
		}
	}
	return sent, firstErr
}

// sendChunk transmits one ≤ maxSendBatch slice of a batch: resolve every
// destination under one lock acquisition, vector the resolvable entries
// through sendmmsg when active, and sweep the leftovers (unroutable by
// the raw path, or everything after a downgrade) through single writes.
// Entries to one destination never change lanes, so per-destination
// index order holds.
func (u *UDP) sendChunk(h SenderHint, batch []Datagram) (int, error) {
	s := getSendScratch()
	defer putSendScratch(s)
	u.mu.RLock()
	closed := u.closed
	if !closed {
		for i := range batch {
			s.addrs[i], s.ok[i] = u.book[batch[i].To]
		}
	}
	u.mu.RUnlock()
	if closed {
		return 0, fmt.Errorf("udp: %w", errClosed)
	}
	var firstErr error
	for i := range batch {
		if !s.ok[i] {
			s.direct[i] = false
			if firstErr == nil {
				firstErr = fmt.Errorf("transport: no address for process %q", batch[i].To)
			}
			continue
		}
		s.direct[i] = u.needsDirect(s.addrs[i])
	}
	conn := u.sendConn(h)
	if u.batchActive() {
		n, err, downgrade := u.sendMmsg(conn, s, batch)
		if !downgrade {
			if firstErr == nil {
				firstErr = err
			}
			sent := n
			for i := range batch {
				if !s.ok[i] || !s.direct[i] {
					continue
				}
				if werr := u.writeOne(conn, batch[i].Payload, s.addrs[i]); werr != nil {
					if firstErr == nil {
						firstErr = werr
					}
					continue
				}
				sent++
			}
			return sent, firstErr
		}
		// The kernel (or a seccomp policy) refuses sendmmsg: demote the
		// transport for good and fall through — nothing of this chunk has
		// hit the wire yet.
		u.mmsgDown.Store(true)
	}
	sent := 0
	for i := range batch {
		if !s.ok[i] {
			continue
		}
		if err := u.writeOne(conn, batch[i].Payload, s.addrs[i]); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sent++
	}
	return sent, firstErr
}

// needsDirect reports whether addr cannot ride the raw sendmmsg vector
// and must take the stdlib write path instead: zoned IPv6 (the raw
// sockaddr builder does not carry scope ids) or an address family the
// socket's raw encoding cannot express.
//
//leadervet:hotpath
func (u *UDP) needsDirect(addr netip.AddrPort) bool {
	if !mmsgSupported {
		return true
	}
	a := addr.Addr()
	if a.Zone() != "" {
		return true
	}
	return u.family == famIPv4 && !a.Is4() && !a.Is4In6()
}

// Receive implements Transport. Installing a handler after Close is a
// no-op: deliveries have already stopped for good.
func (u *UDP) Receive(h func(payload []byte)) {
	u.mu.Lock()
	if !u.closed {
		u.handler = h
	}
	u.mu.Unlock()
}

// ReceiveFrom implements SourceAware: like Receive, with the datagram's
// source address alongside — what the client plane's address learning
// feeds on. Installing it after Close is a no-op.
func (u *UDP) ReceiveFrom(h func(payload []byte, src netip.AddrPort)) {
	u.mu.Lock()
	if !u.closed {
		u.srcHandler = h
	}
	u.mu.Unlock()
}

// LearnPeer implements SourceAware: it adds or refreshes one peer
// address — unless the id's address is pinned configuration (NewUDP
// peers, SetPeer), which learning must never override: otherwise one
// spoofed datagram claiming a member's id would hijack that member's
// traffic. The common case — the address is already known and unchanged —
// takes only the read lock, so per-datagram learning stays cheap.
func (u *UDP) LearnPeer(p id.Process, addr netip.AddrPort) {
	u.mu.RLock()
	cur, ok := u.book[p]
	pinned := u.pinned[p]
	u.mu.RUnlock()
	if pinned || (ok && cur == addr) {
		return
	}
	u.mu.Lock()
	if !u.pinned[p] {
		if _, exists := u.book[p]; !exists && len(u.book)-len(u.pinned) >= maxLearnedPeers {
			// At capacity: evict an arbitrary learned entry to stay
			// bounded (map iteration order; pinned entries are immune).
			for q := range u.book {
				if !u.pinned[q] {
					delete(u.book, q)
					break
				}
			}
		}
		u.book[p] = addr
	}
	u.mu.Unlock()
}

// Close implements Transport. It returns only after the read loop has
// exited, so no handler invocation survives (or starts after) Close —
// which also means Close must never be called from the handler itself
// (see the Transport.Close contract).
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		<-u.readerDone
		return nil
	}
	u.closed = true
	u.handler = nil
	u.srcHandler = nil
	u.mu.Unlock()
	var err error
	for _, c := range u.conns {
		// Unblocks each ReadFromUDPAddrPort; its readLoop then exits.
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	<-u.readerDone
	return err
}

var _ Transport = (*UDP)(nil)
var _ SourceAware = (*UDP)(nil)
var _ BatchSender = (*UDP)(nil)
var _ HintedSender = (*UDP)(nil)
var _ IOStatser = (*UDP)(nil)
