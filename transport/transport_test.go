package transport

import (
	"sync"
	"testing"
	"time"

	"stableleader/id"
)

// recorder collects delivered payloads thread-safely.
type recorder struct {
	mu   sync.Mutex
	got  [][]byte
	cond *sync.Cond
}

func newRecorder() *recorder {
	r := &recorder{}
	r.cond = sync.NewCond(&r.mu)
	return r
}

func (r *recorder) handler(p []byte) {
	// The Receive contract forbids retaining p after returning (transports
	// reuse pooled buffers), so record a copy.
	c := make([]byte, len(p))
	copy(c, p)
	r.mu.Lock()
	r.got = append(r.got, c)
	r.cond.Broadcast()
	r.mu.Unlock()
}

// waitN blocks until n payloads arrived or the timeout passes.
func (r *recorder) waitN(t *testing.T, n int, timeout time.Duration) [][]byte {
	t.Helper()
	deadline := time.Now().Add(timeout)
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.got) < n {
		if time.Now().After(deadline) {
			t.Fatalf("got %d payloads, want %d", len(r.got), n)
		}
		r.mu.Unlock()
		time.Sleep(time.Millisecond)
		r.mu.Lock()
	}
	return append([][]byte(nil), r.got...)
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.got)
}

func TestInprocDelivery(t *testing.T) {
	hub := NewInproc(nil)
	a := hub.Endpoint("a")
	b := hub.Endpoint("b")
	rec := newRecorder()
	b.Receive(rec.handler)
	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got := rec.waitN(t, 1, time.Second)
	if string(got[0]) != "hello" {
		t.Errorf("payload = %q", got[0])
	}
}

func TestInprocPayloadIsolation(t *testing.T) {
	hub := NewInproc(nil)
	a := hub.Endpoint("a")
	b := hub.Endpoint("b")
	rec := newRecorder()
	b.Receive(rec.handler)
	buf := []byte("mutate-me")
	if err := a.Send("b", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // sender reuses its buffer immediately
	got := rec.waitN(t, 1, time.Second)
	if string(got[0]) != "mutate-me" {
		t.Errorf("delivery aliased the sender's buffer: %q", got[0])
	}
}

func TestInprocUnknownDestinationDropsSilently(t *testing.T) {
	hub := NewInproc(nil)
	a := hub.Endpoint("a")
	if err := a.Send("ghost", []byte("x")); err != nil {
		t.Fatalf("datagram transports drop unknown destinations silently, got %v", err)
	}
}

func TestInprocLoss(t *testing.T) {
	hub := NewInproc(&InprocOptions{Loss: 1.0, Seed: 1})
	a := hub.Endpoint("a")
	b := hub.Endpoint("b")
	rec := newRecorder()
	b.Receive(rec.handler)
	for i := 0; i < 50; i++ {
		_ = a.Send("b", []byte("x"))
	}
	time.Sleep(50 * time.Millisecond)
	if rec.count() != 0 {
		t.Errorf("loss=1.0 delivered %d payloads", rec.count())
	}
}

func TestInprocDelay(t *testing.T) {
	hub := NewInproc(&InprocOptions{MeanDelay: 20 * time.Millisecond, Seed: 1})
	a := hub.Endpoint("a")
	b := hub.Endpoint("b")
	rec := newRecorder()
	b.Receive(rec.handler)
	start := time.Now()
	const n = 40
	for i := 0; i < n; i++ {
		_ = a.Send("b", []byte("x"))
	}
	rec.waitN(t, n, 5*time.Second)
	if e := time.Since(start); e < 5*time.Millisecond {
		t.Errorf("all deliveries completed in %v; delay seems unapplied", e)
	}
}

func TestInprocClose(t *testing.T) {
	hub := NewInproc(nil)
	a := hub.Endpoint("a")
	b := hub.Endpoint("b")
	rec := newRecorder()
	b.Receive(rec.handler)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	_ = a.Send("b", []byte("x"))
	time.Sleep(20 * time.Millisecond)
	if rec.count() != 0 {
		t.Error("closed endpoint received a payload")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("x")); err == nil {
		t.Error("send on a closed endpoint should fail")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	ua, err := NewUDP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ua.Close()
	ub, err := NewUDP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ub.Close()
	if err := ua.SetPeer("b", ub.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	if err := ub.SetPeer("a", ua.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	reca, recb := newRecorder(), newRecorder()
	ua.Receive(reca.handler)
	ub.Receive(recb.handler)
	if err := ua.Send("b", []byte("ping")); err != nil {
		t.Fatal(err)
	}
	got := recb.waitN(t, 1, 2*time.Second)
	if string(got[0]) != "ping" {
		t.Errorf("payload = %q", got[0])
	}
	if err := ub.Send("a", []byte("pong")); err != nil {
		t.Fatal(err)
	}
	got = reca.waitN(t, 1, 2*time.Second)
	if string(got[0]) != "pong" {
		t.Errorf("payload = %q", got[0])
	}
}

func TestUDPErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	if _, err := NewUDP("not-an-address", nil); err == nil {
		t.Error("bad listen address should fail")
	}
	if _, err := NewUDP("127.0.0.1:0", map[id.Process]string{"x": "bad::addr::"}); err == nil {
		t.Error("bad peer address should fail")
	}
	u, err := NewUDP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Send("unknown", []byte("x")); err == nil {
		t.Error("send to an unknown peer should fail")
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	if err := u.Close(); err != nil {
		t.Errorf("double close should be idempotent, got %v", err)
	}
	if err := u.Send("unknown", []byte("x")); err == nil {
		t.Error("send after close should fail")
	}
}
