// Package stableleader is a robust, lightweight, stable leader election
// service for dynamic systems — a Go implementation of the service of
// Schiper and Toueg (DSN 2008).
//
// Applications use the service to elect and maintain an operational leader
// for any group of processes, where processes may crash and recover, join
// and leave groups at any time, and links may lose, delay, or stop
// delivering messages. If the leader of a group crashes, disconnects or
// leaves, the service re-elects automatically and notifies the group.
//
// # Stability
//
// The default election algorithms guarantee leader stability: a functional
// leader is never demoted just because a "better looking" process (for
// example one with a smaller identifier) joins or recovers. Stability is
// achieved with accusation times: each process carries the timestamp of the
// last time it was validly suspected, leaders are the candidates with the
// earliest accusation time, and recovering processes re-enter with a fresh
// (late) accusation time.
//
// # Algorithms
//
// Three election cores are available per group:
//
//   - OmegaL (default): communication-efficient — eventually only the
//     leader sends heartbeats; cost grows linearly with group size.
//   - OmegaLC: tolerates links that crash outright (full disconnection) via
//     two-stage local-leader forwarding, at quadratic message cost.
//   - OmegaID: the classic "smallest alive id" rule; unstable, provided as
//     the baseline of the paper's evaluation.
//
// # QoS control
//
// Failure detection underneath the election is the stochastic detector of
// Chen et al. with a link quality estimator: applications state a QoS
// triple (detection time bound, mistake recurrence bound, query accuracy)
// per group, and the service continuously derives heartbeat rates and
// timeouts from it and from measured link behaviour. See package
// stableleader/qos.
//
// # Quick start
//
//	ctx := context.Background()
//	tr := transport.NewInproc(nil)
//	svc, _ := stableleader.New("a", tr.Endpoint("a"))
//	grp, _ := svc.Join(ctx, "payments",
//		stableleader.AsCandidate(),
//		stableleader.WithSeeds("b", "c"),
//	)
//	for ev := range grp.Watch(ctx) {
//		if lc, ok := ev.(stableleader.LeaderChanged); ok {
//			fmt.Println("leader is now", lc.Info.Leader)
//		}
//	}
//
// Every blocking method takes a context and returns promptly with ctx.Err()
// on cancellation. Watch is the interrupt mode of the paper generalised to
// a typed event stream: any number of subscribers per group, each with its
// own buffer, receiving leadership changes, membership joins and leaves,
// failure detector suspicion edges and QoS reconfigurations. Query mode is
// Group.Leader; Group.Status exposes the failure detection state. Both are
// wait-free by default — a single atomic load of the latest snapshot, safe
// on every request at any fan-in — with WithSyncRead for loop-serialised
// reads.
//
// # Observability
//
// Service.ObsHandler serves the observability plane over HTTP: Prometheus
// text metrics on /metrics (election, failure-detection, handover,
// client-plane and packet-plane counters, all recorded shard-locally with
// zero hot-path atomics or allocations), liveness and readiness probes on
// /healthz and /readyz (ready once every joined group has an elected
// leader), the protocol flight recorder on /debug/flight (the last ~1024
// protocol decisions per shard as time-sorted JSON; also
// Service.DumpFlight), and pprof under /debug/pprof/. cmd/leaderd exposes
// it behind -metrics-addr.
//
// The experiments of the paper are reproduced in package stableleader/sim;
// see DESIGN.md and EXPERIMENTS.md.
//
// # Static invariants
//
// The concurrency and hot-path conventions of the implementation —
// event-loop ownership of protocol state, copy-on-write snapshot
// publication, pooled codec lifecycles, allocation-free fast paths — are
// declared in the source as //leadervet: comment directives and enforced
// by the cmd/leadervet analysis suite:
//
//	go build -o /tmp/leadervet ./cmd/leadervet
//	go vet -vettool=/tmp/leadervet ./...
//
// See the "Invariants & directives" section of DESIGN.md.
package stableleader
