// Package stableleader is a robust, lightweight, stable leader election
// service for dynamic systems — a Go implementation of the service of
// Schiper and Toueg (DSN 2008).
//
// Applications use the service to elect and maintain an operational leader
// for any group of processes, where processes may crash and recover, join
// and leave groups at any time, and links may lose, delay, or stop
// delivering messages. If the leader of a group crashes, disconnects or
// leaves, the service re-elects automatically and notifies the group.
//
// # Stability
//
// The default election algorithms guarantee leader stability: a functional
// leader is never demoted just because a "better looking" process (for
// example one with a smaller identifier) joins or recovers. Stability is
// achieved with accusation times: each process carries the timestamp of the
// last time it was validly suspected, leaders are the candidates with the
// earliest accusation time, and recovering processes re-enter with a fresh
// (late) accusation time.
//
// # Algorithms
//
// Three election cores are available per group:
//
//   - OmegaL (default): communication-efficient — eventually only the
//     leader sends heartbeats; cost grows linearly with group size.
//   - OmegaLC: tolerates links that crash outright (full disconnection) via
//     two-stage local-leader forwarding, at quadratic message cost.
//   - OmegaID: the classic "smallest alive id" rule; unstable, provided as
//     the baseline of the paper's evaluation.
//
// # QoS control
//
// Failure detection underneath the election is the stochastic detector of
// Chen et al. with a link quality estimator: applications state a QoS
// triple (detection time bound, mistake recurrence bound, query accuracy)
// per group, and the service continuously derives heartbeat rates and
// timeouts from it and from measured link behaviour. See package
// stableleader/qos.
//
// # Quick start
//
//	tr := transport.NewInproc(nil)
//	svc, _ := stableleader.New(stableleader.Config{ID: "a", Transport: tr.Endpoint("a")})
//	grp, _ := svc.Join("payments", stableleader.JoinOptions{
//		Candidate: true,
//		Seeds:     []id.Process{"b", "c"},
//	})
//	for info := range grp.Changes() {
//		fmt.Println("leader is now", info.Leader)
//	}
//
// The experiments of the paper are reproduced in package stableleader/sim;
// see DESIGN.md and EXPERIMENTS.md.
package stableleader
