package stableleader_test

// Benchmarks regenerating every figure of the paper's evaluation
// (Section 6). Each benchmark iteration simulates a shortened cell of the
// corresponding experiment (the CLI `leaderbench` runs the full-length
// versions) and reports the paper's metrics through b.ReportMetric:
//
//	Tr-s            average leader recovery time (seconds)
//	mistakes/h      unjustified demotions per hour (λu)
//	leaderless-ppm  leader unavailability, parts per million (1-Pleader)
//	KB/s/node       wire traffic per workstation
//	cpu-%           modelled CPU share per workstation
//
// Run with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"testing"
	"time"

	stableleader "stableleader"
	"stableleader/qos"
	"stableleader/sim"
)

// benchDuration is the simulated time per benchmark iteration: long enough
// for several workstation crashes (MTBF 600s per the paper), short enough
// to keep -bench runs snappy.
const benchDuration = 10 * time.Minute

// runCell executes one scenario per iteration, varying the seed, and
// reports aggregate metrics.
func runCell(b *testing.B, sc sim.Scenario) {
	b.Helper()
	var trSum, trN, mistakes, leaderless, kbps, cpu float64
	var hours float64
	for i := 0; i < b.N; i++ {
		sc.Seed = int64(i + 1)
		sc.Duration = benchDuration
		res, err := sim.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		m := res.Metrics
		trSum += m.TrMean.Seconds() * float64(m.TrSamples)
		trN += float64(m.TrSamples)
		hours += m.Duration.Hours()
		mistakes += float64(m.Demotions)
		leaderless += (1 - m.Pleader) * m.Duration.Hours()
		kbps += res.KBPerSec
		cpu += res.CPUPercent
	}
	if trN > 0 {
		b.ReportMetric(trSum/trN, "Tr-s")
	}
	if hours > 0 {
		b.ReportMetric(mistakes/hours, "mistakes/h")
		b.ReportMetric(1e6*leaderless/hours, "leaderless-ppm")
	}
	b.ReportMetric(kbps/float64(b.N), "KB/s/node")
	b.ReportMetric(cpu/float64(b.N), "cpu-%")
}

// paperScenario is the common Section 6.1 setup.
func paperScenario(algo stableleader.Algorithm, link sim.LinkModel) sim.Scenario {
	return sim.Scenario{
		N:             12,
		Algorithm:     algo,
		Link:          link,
		ProcessFaults: &sim.Faults{MTBF: 600 * time.Second, MTTR: 5 * time.Second},
	}
}

// lossyNets is the Figure 3-5 x-axis.
var lossyNets = []struct {
	name string
	link sim.LinkModel
}{
	{"LAN", sim.LinkModel{MeanDelay: 25 * time.Microsecond}},
	{"10ms-1pc", sim.LinkModel{MeanDelay: 10 * time.Millisecond, Loss: 0.01}},
	{"100ms-1pc", sim.LinkModel{MeanDelay: 100 * time.Millisecond, Loss: 0.01}},
	{"10ms-10pc", sim.LinkModel{MeanDelay: 10 * time.Millisecond, Loss: 0.1}},
	{"100ms-10pc", sim.LinkModel{MeanDelay: 100 * time.Millisecond, Loss: 0.1}},
}

// BenchmarkFigure3 regenerates Figure 3: S1 (omega-id) across the five
// lossy networks — recovery time and mistake rate.
func BenchmarkFigure3(b *testing.B) {
	for _, net := range lossyNets {
		b.Run(net.name, func(b *testing.B) {
			runCell(b, paperScenario(stableleader.OmegaID, net.link))
		})
	}
}

// BenchmarkFigure4 regenerates Figure 4: S1 vs S2 across the lossy
// networks — S2 must show zero mistakes.
func BenchmarkFigure4(b *testing.B) {
	for _, svc := range []struct {
		name string
		algo stableleader.Algorithm
	}{{"S1", stableleader.OmegaID}, {"S2", stableleader.OmegaLC}} {
		for _, net := range lossyNets {
			b.Run(svc.name+"/"+net.name, func(b *testing.B) {
				runCell(b, paperScenario(svc.algo, net.link))
			})
		}
	}
}

// BenchmarkFigure5 regenerates Figure 5: S2 vs S3 across the lossy
// networks — the message-efficient S3 matches S2's QoS.
func BenchmarkFigure5(b *testing.B) {
	for _, svc := range []struct {
		name string
		algo stableleader.Algorithm
	}{{"S2", stableleader.OmegaLC}, {"S3", stableleader.OmegaL}} {
		for _, net := range lossyNets {
			b.Run(svc.name+"/"+net.name, func(b *testing.B) {
				runCell(b, paperScenario(svc.algo, net.link))
			})
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6: CPU and bandwidth overhead of S2
// (quadratic) vs S3 (linear) as the group grows.
func BenchmarkFigure6(b *testing.B) {
	nets := []struct {
		name string
		link sim.LinkModel
	}{
		{"LAN", sim.LinkModel{MeanDelay: 25 * time.Microsecond}},
		{"100ms-10pc", sim.LinkModel{MeanDelay: 100 * time.Millisecond, Loss: 0.1}},
	}
	for _, svc := range []struct {
		name string
		algo stableleader.Algorithm
	}{{"S2", stableleader.OmegaLC}, {"S3", stableleader.OmegaL}} {
		for _, n := range []int{4, 8, 12} {
			for _, net := range nets {
				b.Run(fmt.Sprintf("%s/n=%d/%s", svc.name, n, net.name), func(b *testing.B) {
					sc := paperScenario(svc.algo, net.link)
					sc.N = n
					runCell(b, sc)
				})
			}
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7: S2 vs S3 under crash-prone links
// (the robustness trade-off: S2's forwarding rides out link crashes).
func BenchmarkFigure7(b *testing.B) {
	for _, svc := range []struct {
		name string
		algo stableleader.Algorithm
	}{{"S2", stableleader.OmegaLC}, {"S3", stableleader.OmegaL}} {
		for _, mtbf := range []time.Duration{600 * time.Second, 300 * time.Second, 60 * time.Second} {
			b.Run(fmt.Sprintf("%s/linkMTBF=%v", svc.name, mtbf), func(b *testing.B) {
				sc := paperScenario(svc.algo, sim.LinkModel{MeanDelay: 25 * time.Microsecond})
				sc.LinkFaults = &sim.Faults{MTBF: mtbf, MTTR: 3 * time.Second}
				runCell(b, sc)
			})
		}
	}
}

// BenchmarkFigure8 regenerates Figure 8: the effect of the detection bound
// TdU on recovery time and availability.
func BenchmarkFigure8(b *testing.B) {
	for _, svc := range []struct {
		name string
		algo stableleader.Algorithm
	}{{"S2", stableleader.OmegaLC}, {"S3", stableleader.OmegaL}} {
		for _, td := range []time.Duration{
			100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
			750 * time.Millisecond, time.Second,
		} {
			b.Run(fmt.Sprintf("%s/TdU=%v", svc.name, td), func(b *testing.B) {
				sc := paperScenario(svc.algo, sim.LinkModel{MeanDelay: 25 * time.Microsecond})
				spec := qos.Default()
				spec.DetectionTime = td
				sc.QoS = spec
				runCell(b, sc)
			})
		}
	}
}

// BenchmarkHeadline regenerates the Section 1 summary numbers on the worst
// lossy network for all three services.
func BenchmarkHeadline(b *testing.B) {
	worst := sim.LinkModel{MeanDelay: 100 * time.Millisecond, Loss: 0.1}
	for _, svc := range []struct {
		name string
		algo stableleader.Algorithm
	}{{"S1", stableleader.OmegaID}, {"S2", stableleader.OmegaLC}, {"S3", stableleader.OmegaL}} {
		b.Run(svc.name, func(b *testing.B) {
			runCell(b, paperScenario(svc.algo, worst))
		})
	}
}

// BenchmarkAblationStartupGrace quantifies the one design decision this
// implementation adds on top of the paper's algorithms: a freshly started
// process hides self-leadership claims for one detection time, so it
// discovers a live incumbent before announcing leadership. Without the
// grace, every fast recovery opens a split-leadership window (the
// recovering process claims itself against the group's standing leader),
// visible as a higher leaderless-ppm under fast crash/recovery cycles.
func BenchmarkAblationStartupGrace(b *testing.B) {
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"with-grace", false}, {"without-grace", true}} {
		b.Run(variant.name, func(b *testing.B) {
			sc := paperScenario(stableleader.OmegaL, sim.LinkModel{MeanDelay: 25 * time.Microsecond})
			sc.ProcessFaults = &sim.Faults{MTBF: 2 * time.Minute, MTTR: 400 * time.Millisecond}
			sc.DisableStartupGrace = variant.disable
			runCell(b, sc)
		})
	}
}
