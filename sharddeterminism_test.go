package stableleader_test

// Shard determinism: sharding is a runtime partition, not a protocol
// change. A cluster of 1-shard services and the same cluster on N-shard
// services, driven through the same scripted scenario, must converge on
// identical election outcomes for every group.

import (
	"context"
	"fmt"
	"testing"
	"time"

	stableleader "stableleader"
	"stableleader/id"
	"stableleader/qos"
	"stableleader/transport"
)

// convergenceSpec keeps detection generous so a loss-free in-process run
// never raises a spurious accusation (which could legitimately move
// leadership and fog the determinism comparison).
var convergenceSpec = qos.Spec{
	DetectionTime:     3 * time.Second,
	MistakeRecurrence: 24 * time.Hour,
	QueryAccuracy:     0.999,
}

// runShardScenario starts a 3-member cluster where every service runs
// `shards` event-loop shards, joins every member to each group (p1 first,
// so p1 carries the best accusation time everywhere), waits until all
// members agree on an elected leader per group, and returns the outcome.
func runShardScenario(t *testing.T, shards int, groups []id.Group) map[id.Group]id.Process {
	t.Helper()
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	peers := []id.Process{"p1", "p2", "p3"}

	svcs := make([]*stableleader.Service, len(peers))
	handles := make([]map[id.Group]*stableleader.Group, len(peers))
	for i, p := range peers {
		svc, err := stableleader.New(p, hub.Endpoint(p),
			stableleader.WithSeed(int64(i+1)),
			stableleader.WithShards(shards),
		)
		if err != nil {
			t.Fatal(err)
		}
		svcs[i] = svc
		handles[i] = make(map[id.Group]*stableleader.Group)
		for _, g := range groups {
			grp, err := svc.Join(ctx, g,
				stableleader.AsCandidate(),
				stableleader.WithQoS(convergenceSpec),
				stableleader.WithSeeds(peers...),
				stableleader.WithHelloInterval(50*time.Millisecond),
			)
			if err != nil {
				t.Fatal(err)
			}
			handles[i][g] = grp
		}
		// Joining in strict order gives p1 the oldest accusation time in
		// every group: under Ωl the stable outcome is then fixed, whatever
		// the shard count.
		time.Sleep(20 * time.Millisecond)
	}
	defer func() {
		for _, svc := range svcs {
			_ = svc.Close(ctx)
		}
	}()

	out := make(map[id.Group]id.Process)
	deadline := time.Now().Add(30 * time.Second)
	for _, g := range groups {
		for {
			leader := id.Process("")
			agreed := true
			for i := range peers {
				li, err := handles[i][g].Leader(ctx, stableleader.WithSyncRead())
				if err != nil {
					t.Fatal(err)
				}
				if !li.Elected {
					agreed = false
					break
				}
				if leader == "" {
					leader = li.Leader
				} else if li.Leader != leader {
					agreed = false
					break
				}
			}
			if agreed && leader != "" {
				out[g] = leader
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("shards=%d: group %q never converged on one elected leader", shards, g)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	return out
}

// TestShardCountDoesNotChangeElectionOutcome runs the same scripted
// scenario on 1-shard and on 4-shard services and demands identical
// election outcomes in every group — the invariant that lets operators
// change WithShards like a capacity knob, never like a protocol knob.
func TestShardCountDoesNotChangeElectionOutcome(t *testing.T) {
	var groups []id.Group
	for i := 0; i < 6; i++ {
		groups = append(groups, id.Group(fmt.Sprintf("det%02d", i)))
	}
	single := runShardScenario(t, 1, groups)
	sharded := runShardScenario(t, 4, groups)
	for _, g := range groups {
		if single[g] != sharded[g] {
			t.Errorf("group %q: 1-shard elected %q, 4-shard elected %q",
				g, single[g], sharded[g])
		}
	}
}
