package stableleader

// The multi-core saturation benchmark behind BENCH_pr5.json: K groups,
// each with a remote peer and M subscribed clients, driven with a mixed
// inbound workload (membership HELLOs and client-plane LEASE_RENEWs)
// through the full receive path — pooled decode, steering, the bounded
// per-shard inbound rings, and the shard event loops — at 1/2/4/8 shards.
//
// Two modes:
//
//   - BenchmarkSaturation/shards=N drives every group concurrently: the
//     true parallel throughput of this machine. On a multi-core host it
//     rises with N; on a single-core host (CI containers) it cannot.
//   - BenchmarkSaturationShardSlice/shards=N drives only the groups of
//     ONE shard of an N-shard service. Because shards share no locks,
//     total capacity on a machine with ≥ N cores is N × this number —
//     the modeled aggregate cmd/perfsnap derives and EXPERIMENTS.md
//     reports alongside the measured concurrent figures.
//
// Run with:
//
//	go test -run=NONE -bench=Saturation -benchmem .

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"stableleader/id"
	"stableleader/internal/wire"
)

// nullTransport drops every datagram: the benchmark injects inbound
// traffic directly and only measures the service side.
type nullTransport struct{}

func (nullTransport) Send(id.Process, []byte) error { return nil }
func (nullTransport) Receive(func([]byte))          {}
func (nullTransport) Close() error                  { return nil }

const (
	satGroups  = 16
	satClients = 64 // subscribed clients per service (each leases every group)
)

// satHarness is one fully set-up service plus its pre-marshalled
// workload payloads.
type satHarness struct {
	svc *Service
	// traffic holds the payload ring for the driven groups: for each
	// group one HELLO and satClients LEASE_RENEWs.
	hellos [][]byte
	renews [][][]byte
	gids   []id.Group
}

// newSatHarness builds the K-groups × M-clients service. When slice is
// set, only the groups owned by one shard are driven (the service state —
// all groups, all leases — is identical either way).
func newSatHarness(b *testing.B, shards int, slice bool) *satHarness {
	b.Helper()
	ctx := context.Background()
	svc, err := New("self", nullTransport{}, WithSeed(1), WithShards(shards), WithClientPlane())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = svc.Close(context.Background()) })

	h := &satHarness{svc: svc}
	all := make([]id.Group, satGroups)
	for i := range all {
		all[i] = id.Group(fmt.Sprintf("sat%02d", i))
		if _, err := svc.Join(ctx, all[i], AsCandidate()); err != nil {
			b.Fatal(err)
		}
		// One remote member per group, so HELLOs exercise a real
		// membership merge.
		svc.onDatagram(wire.MarshalAppend(nil, &wire.Join{
			Group: all[i], Sender: "zz", Incarnation: 1,
		}))
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, g := range all {
		grp := svc.groups[g]
		for {
			rows, err := grp.Status(ctx, WithSyncRead())
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) == 2 {
				break
			}
			if time.Now().After(deadline) {
				b.Fatalf("group %q never absorbed its remote member", g)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// M clients lease every group (the client-plane population whose
	// renewals and background re-advertisement sweeps ride the loops).
	for c := 0; c < satClients; c++ {
		for _, g := range all {
			svc.onDatagram(wire.MarshalAppend(nil, &wire.Subscribe{
				Group: g, Sender: id.Process(fmt.Sprintf("cl%03d", c)),
				Incarnation: 1, TTL: int64(time.Second),
			}))
		}
	}
	for {
		st, err := svc.ClientStats(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if st.Leases == satGroups*satClients {
			break
		}
		if time.Now().After(deadline) {
			b.Fatalf("client leases never registered: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	if slice {
		target := svc.shardIndex(all[0])
		for _, g := range all {
			if svc.shardIndex(g) == target {
				h.gids = append(h.gids, g)
			}
		}
	} else {
		h.gids = all
	}
	if len(h.gids) == 0 {
		b.Fatal("no driven groups")
	}
	selfInc := svc.Incarnation()
	for _, g := range h.gids {
		h.hellos = append(h.hellos, wire.MarshalAppend(nil, &wire.Hello{
			Group: g, Sender: "zz", Incarnation: 1,
			Members: []wire.MemberInfo{
				{ID: "self", Incarnation: selfInc, Candidate: true},
				{ID: "zz", Incarnation: 1},
			},
		}))
		var rs [][]byte
		for c := 0; c < satClients; c++ {
			rs = append(rs, wire.MarshalAppend(nil, &wire.LeaseRenew{
				Group: g, Sender: id.Process(fmt.Sprintf("cl%03d", c)),
				Incarnation: 1, TTL: int64(time.Second),
			}))
		}
		h.renews = append(h.renews, rs)
	}
	return h
}

// drive injects n workload messages from p producer goroutines (7 HELLOs
// to 1 LEASE_RENEW, round-robin over the driven groups and clients) and
// waits until every one has been dispatched on its shard loop.
func (h *satHarness) drive(b *testing.B, n int) {
	base := h.svc.PacketStats().MessagesIn
	const producers = 4
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		share := n / producers
		if p < n%producers {
			share++
		}
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < share; i++ {
				k := p + i*producers
				g := k % len(h.gids)
				if k%8 == 7 {
					h.svc.onDatagram(h.renews[g][k%satClients])
				} else {
					h.svc.onDatagram(h.hellos[g])
				}
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(60 * time.Second)
	for h.svc.PacketStats().MessagesIn-base < int64(n) {
		if time.Now().After(deadline) {
			b.Fatalf("dispatched %d of %d messages",
				h.svc.PacketStats().MessagesIn-base, n)
		}
		// Yield instead of spinning hot: on a small machine a busy poll
		// would steal the very cycles the shard loops need to drain.
		runtime.Gosched()
	}
}

func benchmarkSaturation(b *testing.B, shards int, slice bool) {
	h := newSatHarness(b, shards, slice)
	b.ReportAllocs()
	b.ResetTimer()
	h.drive(b, b.N)
	b.StopTimer()
	b.ReportMetric(float64(len(h.gids)), "groups")
}

// BenchmarkSaturation: concurrent inbound protocol+client traffic over
// every group of a 1/2/4/8-shard service. ns/op is per inbound message.
func BenchmarkSaturation(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			benchmarkSaturation(b, n, false)
		})
	}
}

// BenchmarkSaturationShardSlice: the same service and workload, driving
// only one shard's groups — the per-shard saturation throughput whose
// N-fold sum models aggregate capacity on an N-core machine.
func BenchmarkSaturationShardSlice(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			benchmarkSaturation(b, n, true)
		})
	}
}
