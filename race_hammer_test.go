package stableleader_test

// The read-plane race hammer (run under -race in CI): 32 goroutines
// pounding Leader, Status and Watch — fast and loop-serialised paths —
// while the protocol side runs real elections, membership churn, leaves
// and a full service shutdown. The assertions are deliberately light;
// the test's job is to put every reader/writer pair in front of the race
// detector.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	stableleader "stableleader"
	"stableleader/client"
	"stableleader/id"
	"stableleader/qos"
	"stableleader/transport"
)

func TestReadPlaneRaceHammer(t *testing.T) {
	if !raceEnabled {
		t.Log("running without -race: this hammer only detects races under the race detector")
	}
	hub := transport.NewInproc(nil)
	ctx := context.Background()
	spec := qos.Spec{
		DetectionTime:     250 * time.Millisecond,
		MistakeRecurrence: 24 * time.Hour,
		QueryAccuracy:     0.999,
	}

	newMember := func(p id.Process, seed int64) (*stableleader.Service, *stableleader.Group) {
		svc, err := stableleader.New(p, hub.Endpoint(p), stableleader.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		grp, err := svc.Join(ctx, "hammer",
			stableleader.AsCandidate(),
			stableleader.WithQoS(spec),
			stableleader.WithSeeds("p1", "p2"),
			stableleader.WithHelloInterval(100*time.Millisecond),
		)
		if err != nil {
			t.Fatal(err)
		}
		return svc, grp
	}

	svc1, grp1 := newMember("p1", 1)
	svc2, grp2 := newMember("p2", 2)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// 32 readers split across the two handles and the three read surfaces.
	for i := 0; i < 32; i++ {
		i := i
		grp := grp1
		if i%2 == 1 {
			grp = grp2
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 4 {
				case 0:
					_, _ = grp.Leader(ctx)
				case 1:
					if rows, err := grp.Status(ctx); err == nil {
						for _, r := range rows {
							_ = r.Trusted // walk the shared snapshot
						}
					}
				case 2:
					_, _ = grp.Leader(ctx, stableleader.WithSyncRead())
				case 3:
					wctx, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
					for range grp.Watch(wctx, stableleader.WithInitialState()) {
						break
					}
					cancel()
				}
			}
		}()
	}

	// Protocol churn: a third member joins, leaves, and crashes repeatedly
	// while the readers run.
	churners := []id.Process{"p3", "p4", "p5"}
	for cycle, p := range churners {
		svc3, grp3 := newMember(p, int64(100+cycle))
		time.Sleep(150 * time.Millisecond)
		if cycle%2 == 0 {
			if err := grp3.Leave(ctx); err != nil {
				t.Error(err)
			}
			if err := svc3.Close(ctx); err != nil {
				t.Error(err)
			}
		} else {
			if err := svc3.Crash(); err != nil {
				t.Error(err)
			}
		}
	}

	// Leave one group while its readers keep querying, then close both
	// services under the same load.
	if err := grp2.Leave(ctx); err != nil {
		t.Error(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := svc1.Close(ctx); err != nil {
		t.Error(err)
	}
	if err := svc2.Close(ctx); err != nil {
		t.Error(err)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Post-shutdown sanity: the fast paths answer deterministically.
	if _, err := grp2.Leader(ctx); err == nil {
		// Acceptable: the closed-service fallback served the last view.
		_ = err
	}
	if _, err := grp2.Status(ctx); !errors.Is(err, stableleader.ErrClosed) {
		t.Fatalf("Status on a closed service = %v, want ErrClosed", err)
	}
}

// TestHandoverRaceHammer puts the planned-handover plane in front of the
// race detector: concurrent Depose calls bounce leadership between two
// multi-shard services while readers pound the Standby/Leader fast paths
// and watch streams, and a third member cycles through graceful leaves
// (handover + tombstone fan-out) and crashes. Assertions are light; the
// job is racing the handover writers against every read surface at once.
func TestHandoverRaceHammer(t *testing.T) {
	if !raceEnabled {
		t.Log("running without -race: this hammer only detects races under the race detector")
	}
	hub := transport.NewInproc(nil)
	ctx := context.Background()
	spec := qos.Spec{
		DetectionTime:     250 * time.Millisecond,
		MistakeRecurrence: 24 * time.Hour,
		QueryAccuracy:     0.999,
	}

	const shards = 4
	const groupCount = 4
	gids := make([]id.Group, groupCount)
	for i := range gids {
		gids[i] = id.Group(fmt.Sprintf("ho%02d", i))
	}
	newMember := func(p id.Process, seed int64) (*stableleader.Service, []*stableleader.Group) {
		svc, err := stableleader.New(p, hub.Endpoint(p),
			stableleader.WithSeed(seed), stableleader.WithShards(shards),
			stableleader.WithClientPlane())
		if err != nil {
			t.Fatal(err)
		}
		grps := make([]*stableleader.Group, groupCount)
		for i, g := range gids {
			grp, err := svc.Join(ctx, g,
				stableleader.AsCandidate(),
				stableleader.WithQoS(spec),
				stableleader.WithSeeds("d1", "d2"),
				stableleader.WithHelloInterval(50*time.Millisecond),
			)
			if err != nil {
				t.Fatal(err)
			}
			grps[i] = grp
		}
		return svc, grps
	}

	svc1, grps1 := newMember("d1", 1)
	svc2, grps2 := newMember("d2", 2)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Readers: Standby and Leader fast paths plus watch streams, across
	// both handles and every group.
	for i := 0; i < 16; i++ {
		i := i
		grp := grps1[i%groupCount]
		if i%2 == 1 {
			grp = grps2[i%groupCount]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					_, _, _, _ = grp.Standby(ctx)
				case 1:
					_, _ = grp.Leader(ctx)
				case 2:
					wctx, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
					for range grp.Watch(wctx, stableleader.WithInitialState()) {
						break
					}
					cancel()
				}
			}
		}()
	}

	// Deposers: whoever currently leads a group hands it over; the loser's
	// call fails with ErrNotLeader/ErrNoStandby, both fine. Leadership
	// ping-pongs between the services, so HANDOVER processing races the
	// readers on every shard.
	for i := 0; i < 2*groupCount; i++ {
		i := i
		grp := grps1[i%groupCount]
		if i%2 == 1 {
			grp = grps2[i%groupCount]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = grp.Depose(ctx) // ErrNotLeader/ErrNoStandby expected
				time.Sleep(10 * time.Millisecond)
			}
		}()
	}

	// Churn: a third member joins every group, then leaves gracefully
	// (planned handover + tombstone fan-out) or crashes.
	for cycle := 0; cycle < 3; cycle++ {
		svc3, grps3 := newMember(id.Process(fmt.Sprintf("d%d", 3+cycle)), int64(100+cycle))
		time.Sleep(200 * time.Millisecond)
		if cycle%2 == 0 {
			for _, grp := range grps3 {
				if err := grp.Leave(ctx); err != nil {
					t.Error(err)
				}
			}
			if err := svc3.Close(ctx); err != nil {
				t.Error(err)
			}
		} else {
			if err := svc3.Crash(); err != nil {
				t.Error(err)
			}
		}
	}

	// Close both services under full handover load.
	if err := svc1.Close(ctx); err != nil {
		t.Error(err)
	}
	if err := svc2.Close(ctx); err != nil {
		t.Error(err)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Post-shutdown: the standby fast path answers deterministically.
	if _, _, _, err := grps1[0].Standby(ctx); err == nil {
		t.Fatal("Standby on a closed service answered without error")
	}
}

// TestCrossShardChurnRaceHammer is the sharded-runtime companion of the
// read-plane hammer: on a multi-shard service, protocol churn (member
// joins and crashes) hits the groups of one set of shards while readers
// pound Leader/Status and remote clients subscribe to groups on other
// shards — every cross-shard pair (steering stage, shared packet
// counters, per-shard registries, aggregate shutdown) in front of the
// race detector at once.
func TestCrossShardChurnRaceHammer(t *testing.T) {
	if !raceEnabled {
		t.Log("running without -race: this hammer only detects races under the race detector")
	}
	hub := transport.NewInproc(nil)
	ctx := context.Background()
	spec := qos.Spec{
		DetectionTime:     250 * time.Millisecond,
		MistakeRecurrence: 24 * time.Hour,
		QueryAccuracy:     0.999,
	}

	const shards = 4
	svc, err := stableleader.New("h1", hub.Endpoint("h1"),
		stableleader.WithSeed(1), stableleader.WithShards(shards),
		stableleader.WithClientPlane(),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Enough groups that every shard owns a few.
	const groupCount = 2 * shards
	groups := make([]*stableleader.Group, groupCount)
	gids := make([]id.Group, groupCount)
	for i := range groups {
		gids[i] = id.Group(fmt.Sprintf("xs%02d", i))
		grp, err := svc.Join(ctx, gids[i],
			stableleader.AsCandidate(),
			stableleader.WithQoS(spec),
			stableleader.WithSeeds("h1", "h2"),
			stableleader.WithHelloInterval(50*time.Millisecond),
		)
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = grp
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Readers across every group: fast reads, sync reads, watches.
	for i := 0; i < 16; i++ {
		i := i
		grp := groups[i%groupCount]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					_, _ = grp.Leader(ctx)
				case 1:
					_, _ = grp.Status(ctx)
				case 2:
					_, _ = grp.Leader(ctx, stableleader.WithSyncRead())
				}
			}
		}()
	}

	// Remote clients subscribing to a rotating subset of the groups.
	for c := 0; c < 2; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			cid := id.Process(fmt.Sprintf("cli%d", c))
			cl, err := client.New(hub.Endpoint(cid),
				client.WithID(cid), client.WithEndpoints("h1"),
				client.WithLeaseTTL(time.Second))
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close(ctx)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				qctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
				_, _ = cl.Leader(qctx, gids[i%groupCount])
				cancel()
			}
		}()
	}

	// Member churn: a second multi-shard service joins and crashes its
	// way through the groups while the readers run.
	for cycle := 0; cycle < 3; cycle++ {
		svc2, err := stableleader.New("h2", hub.Endpoint("h2"),
			stableleader.WithSeed(int64(100+cycle)), stableleader.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		for i := range gids {
			if _, err := svc2.Join(ctx, gids[i],
				stableleader.AsCandidate(),
				stableleader.WithQoS(spec),
				stableleader.WithSeeds("h1"),
				stableleader.WithHelloInterval(50*time.Millisecond),
			); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(200 * time.Millisecond)
		if cycle%2 == 0 {
			if err := svc2.Close(ctx); err != nil {
				t.Error(err)
			}
		} else {
			if err := svc2.Crash(); err != nil {
				t.Error(err)
			}
		}
	}

	// Close the primary under full load, then stop the hammer.
	if err := svc.Close(ctx); err != nil {
		t.Error(err)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}
