package stableleader

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"

	"stableleader/internal/obs"
	"stableleader/internal/subs"
)

// ObsHandler returns the service's observability surface as an
// http.Handler, for the host to mount on a listener of its choosing
// (leaderd exposes it behind -metrics-addr):
//
//   - /metrics — Prometheus text exposition: every protocol counter,
//     the leaderless-window histogram, per-shard runtime gauges, the
//     packet plane and its syscall-batching ratios.
//   - /healthz — liveness: 200 while the service runs, 503 once closed.
//   - /readyz — readiness: 200 once every joined group has a converged
//     (elected) leader view; 503 while any group is still electing. A
//     service with no groups joined is vacuously ready.
//   - /debug/flight — the protocol flight recorder as JSON (DumpFlight).
//   - /debug/pprof/ — the standard runtime profiles.
//
// Scrapes serialise one read through each shard's event loop — the same
// path as any loop query — so they observe loop-quiescent state and add
// nothing to the protocol hot path.
func (s *Service) ObsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/flight", s.handleFlight)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DumpFlight writes the service's protocol flight recorder — the last N
// protocol decisions (suspicions, trust edges, rank changes, standby
// nominations, handovers, leader changes) of every shard — as one JSON
// document, records sorted by timestamp. Each shard's ring is copied
// out through its event loop; ctx bounds the wait like any loop query.
func (s *Service) DumpFlight(ctx context.Context, w io.Writer) error {
	var records []obs.Record
	for _, sh := range s.shards {
		sh := sh
		var part []obs.Record
		if err := sh.call(ctx, func() { part = sh.obs.FlightSnapshot(nil) }); err != nil {
			return err
		}
		records = append(records, part...)
	}
	return obs.WriteFlightJSON(w, s.self, records)
}

// shardGauges is one shard's point-in-time runtime depth readings,
// collected in the same loop-serialised closure as the counter snapshot.
type shardGauges struct {
	wheel       int // pending timer-wheel entries
	inbound     int // steered datagram parts queued for the loop
	stagedMsgs  int // messages staged in the outbound coalescer
	stagedDests int // destinations with at least one staged message
}

// obsScrape is one full scrape: the merged counter/histogram snapshot
// plus per-shard gauges and the aggregated client-plane state.
type obsScrape struct {
	snap          obs.Snapshot
	perShard      []shardGauges
	clientEnabled bool
	clients       int
	leases        int
}

// scrapeObs serialises one read through every shard loop and aggregates.
func (s *Service) scrapeObs(ctx context.Context) (obsScrape, error) {
	sc := obsScrape{perShard: make([]shardGauges, len(s.shards))}
	for i, sh := range s.shards {
		sh := sh
		var snap obs.Snapshot
		var g shardGauges
		var st subs.Stats
		var enabled bool
		if err := sh.call(ctx, func() {
			snap = sh.obs.Snapshot()
			g.wheel = sh.rt.wheel.Len()
			g.inbound = len(sh.inbound)
			g.stagedMsgs, g.stagedDests = sh.node.OutboundStaged()
			st, enabled = sh.node.ClientStats()
		}); err != nil {
			return obsScrape{}, err
		}
		sc.snap.Merge(snap)
		sc.perShard[i] = g
		sc.clientEnabled = enabled
		sc.clients += st.Clients
		sc.leases += st.Leases
	}
	return sc, nil
}

// groupConvergence reports how many groups are joined and how many of
// them currently see an elected leader, from the wait-free read plane.
func (s *Service) groupConvergence() (joined, converged int) {
	s.mu.Lock()
	groups := make([]*Group, 0, len(s.groups))
	for _, g := range s.groups {
		groups = append(groups, g)
	}
	s.mu.Unlock()
	for _, g := range groups {
		joined++
		if lv := g.leader.Load(); lv != nil && lv.err == nil && lv.info.Elected {
			converged++
		}
	}
	return joined, converged
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sc, err := s.scrapeObs(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	ps := s.PacketStats()
	joined, converged := s.groupConvergence()

	var e obs.Exposition
	for c := obs.Counter(0); int(c) < obs.CounterCount; c++ {
		e.Counter(c.Name(), c.Help())
		e.Sample(c.Name(), float64(sc.snap.Get(c)))
	}
	e.Histogram("stableleader_leaderless_seconds",
		"Duration of leaderless windows: elected view lost to next view adopted.",
		obs.LeaderlessBounds(), sc.snap.Leaderless)

	e.Simple("stableleader_shards", "Event-loop shards this service runs.", "gauge", float64(len(s.shards)))
	e.Simple("stableleader_groups_joined", "Groups currently joined.", "gauge", float64(joined))
	e.Simple("stableleader_groups_converged", "Joined groups with an elected leader view.", "gauge", float64(converged))

	e.Gauge("stableleader_timer_wheel_entries", "Pending timer-wheel deadlines per shard.")
	for i, g := range sc.perShard {
		e.Sample("stableleader_timer_wheel_entries", float64(g.wheel), "shard", strconv.Itoa(i))
	}
	e.Gauge("stableleader_inbound_queue_depth", "Steered datagram parts queued per shard loop.")
	for i, g := range sc.perShard {
		e.Sample("stableleader_inbound_queue_depth", float64(g.inbound), "shard", strconv.Itoa(i))
	}
	e.Gauge("stableleader_outbound_staged_messages", "Messages staged in the outbound coalescer per shard.")
	for i, g := range sc.perShard {
		e.Sample("stableleader_outbound_staged_messages", float64(g.stagedMsgs), "shard", strconv.Itoa(i))
	}
	e.Gauge("stableleader_outbound_staged_destinations", "Destinations with staged outbound messages per shard.")
	for i, g := range sc.perShard {
		e.Sample("stableleader_outbound_staged_destinations", float64(g.stagedDests), "shard", strconv.Itoa(i))
	}

	clientEnabled := 0.0
	if sc.clientEnabled {
		clientEnabled = 1
	}
	e.Simple("stableleader_client_plane_enabled", "Whether the remote client plane is on (WithClientPlane).", "gauge", clientEnabled)
	e.Simple("stableleader_client_subscribers", "Distinct subscribed client processes (per-shard registries summed).", "gauge", float64(sc.clients))
	e.Simple("stableleader_client_leases", "Live (client, group) subscription leases.", "gauge", float64(sc.leases))

	// Packet plane: the shared atomic counters plus, on transports that
	// account kernel crossings, the syscall columns and derived
	// batching ratios.
	e.Simple("stableleader_datagrams_sent_total", "Datagrams handed to the transport.", "counter", float64(ps.DatagramsOut))
	e.Simple("stableleader_datagrams_received_total", "Datagrams delivered by the transport.", "counter", float64(ps.DatagramsIn))
	e.Simple("stableleader_messages_sent_total", "Protocol messages sent, batched or bare.", "counter", float64(ps.MessagesOut))
	e.Simple("stableleader_messages_received_total", "Protocol messages received, batched or bare.", "counter", float64(ps.MessagesIn))
	e.Simple("stableleader_batches_sent_total", "Sent datagrams carrying more than one message.", "counter", float64(ps.BatchesOut))
	e.Simple("stableleader_batches_received_total", "Received datagrams carrying more than one message.", "counter", float64(ps.BatchesIn))
	e.Simple("stableleader_coalesced_messages_total", "Sent messages that shared a datagram with another.", "counter", float64(ps.CoalescedOut))
	e.Simple("stableleader_bytes_sent_total", "Outbound wire bytes, UDP/IP headers included.", "counter", float64(ps.BytesOut))
	e.Simple("stableleader_bytes_received_total", "Inbound wire bytes, UDP/IP headers included.", "counter", float64(ps.BytesIn))
	e.Simple("stableleader_unknown_dropped_total", "Received messages dropped for unknown wire kind.", "counter", float64(ps.UnknownDropped))
	e.Simple("stableleader_recv_syscalls_total", "Receive kernel crossings (0 when the transport does not account them).", "counter", float64(ps.RecvSyscalls))
	e.Simple("stableleader_send_syscalls_total", "Send kernel crossings (0 when the transport does not account them).", "counter", float64(ps.SendSyscalls))
	e.Simple("stableleader_recv_packets_per_syscall", "Mean datagrams per receive syscall (recvmmsg batching factor).", "gauge", ps.RecvPacketsPerSyscall())
	e.Simple("stableleader_send_packets_per_syscall", "Mean datagrams per send syscall (sendmmsg/GSO batching factor).", "gauge", ps.SendPacketsPerSyscall())
	e.Simple("stableleader_packets_per_syscall", "Mean datagrams per kernel crossing, both directions.", "gauge", ps.PacketsPerSyscall())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = e.WriteTo(w)
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	select {
	case <-s.closing:
		http.Error(w, "closed", http.StatusServiceUnavailable)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}
}

func (s *Service) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	select {
	case <-s.closing:
		http.Error(w, "closed", http.StatusServiceUnavailable)
		return
	default:
	}
	joined, converged := s.groupConvergence()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if converged < joined {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "electing: %d/%d groups converged\n", converged, joined)
		return
	}
	fmt.Fprintf(w, "ready: %d/%d groups converged\n", converged, joined)
}

func (s *Service) handleFlight(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.DumpFlight(r.Context(), w); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	}
}
