// Command leaderbench regenerates the tables and figures of the paper's
// evaluation (Section 6) inside the deterministic virtual-time simulator.
//
// Usage:
//
//	leaderbench -figure all                 # every figure, 1 simulated hour per cell
//	leaderbench -figure 7 -duration 2h      # Figure 7 with longer cells
//	leaderbench -figure headline -seed 42
//	leaderbench -figure multigroup          # packet-plane sweep: coalescing on vs off
//	leaderbench -figure clients             # client-plane fan-out sweep: 100..1000 subscribers
//	leaderbench -figure failover            # leaderless windows: planned handover vs reactive
//
// Each cell simulates the paper's setup: a group of workstations that crash
// and recover at random, over links that lose, delay, or stop delivering
// messages. Output is one aligned table per figure, with the paper's
// expected shape quoted above it; EXPERIMENTS.md records a full
// paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stableleader/sim"
)

func main() {
	var (
		figure   = flag.String("figure", "all", "figure to regenerate: 3..8, headline, multigroup, clients, failover, or all")
		duration = flag.Duration("duration", time.Hour, "simulated measurement time per cell")
		warmup   = flag.Duration("warmup", 30*time.Second, "simulated warm-up excluded from measurement")
		seed     = flag.Int64("seed", 1, "base random seed (results are deterministic per seed)")
		n        = flag.Int("n", 12, "group size for figures that do not sweep it")
		quiet    = flag.Bool("quiet", false, "suppress per-cell progress lines")
	)
	flag.Parse()

	opts := sim.Options{
		Duration: *duration,
		Warmup:   *warmup,
		Seed:     *seed,
		N:        *n,
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	figures := []string{*figure}
	if *figure == "all" {
		figures = sim.Experiments()
	}
	start := time.Now()
	for _, fig := range figures {
		exp, err := sim.RunExperiment(fig, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "leaderbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(exp)
	}
	fmt.Fprintf(os.Stderr, "leaderbench: done in %v\n", time.Since(start).Round(time.Second))
}
