// Command leaderd runs one real leader election service instance over UDP —
// the deployment shape of the paper's C daemon. Start one per machine (or
// per terminal, with distinct ports) and watch the group elect and maintain
// a stable leader; kill the leader's process and watch the re-election.
//
// Example, three terminals on one machine:
//
//	leaderd -id a -listen :7401 -peer b=127.0.0.1:7402 -peer c=127.0.0.1:7403 -group demo
//	leaderd -id b -listen :7402 -peer a=127.0.0.1:7401 -peer c=127.0.0.1:7403 -group demo
//	leaderd -id c -listen :7403 -peer a=127.0.0.1:7401 -peer b=127.0.0.1:7402 -group demo
//
// Flags control the election algorithm (-algorithm omega-l|omega-lc|omega-id),
// candidacy (-candidate=false for a passive observer), and the failure
// detection QoS (-tdu, -tmr, -pa). -events widens the log from leadership
// changes to the full event stream (membership, suspicion, QoS
// reconfiguration).
//
// -serve-clients turns on the remote client plane: non-member processes
// (see the client package and examples/clientquery) can subscribe to
// leadership snapshots under renewable leases. Client addresses are
// learned from their own traffic, so clients need no -peer entries.
//
// -metrics-addr exposes the observability plane on a TCP listener:
// Prometheus metrics on /metrics, liveness and readiness probes on
// /healthz and /readyz, the protocol flight recorder on /debug/flight,
// and pprof under /debug/pprof/. Independent of it, SIGUSR1 dumps the
// flight recorder to stderr, and -stats-every logs a one-line packet-
// plane summary (rates and packets-per-syscall ratios) periodically.
//
// On SIGINT or SIGTERM the daemon leaves its group gracefully. If it holds
// leadership, it first performs a planned handover: the continuously agreed
// warm standby (nominated in the heartbeat stream at zero extra packets) is
// granted the group-minimal rank in a HANDOVER that ships in the same
// datagram as the LEAVE, so peers elect the standby in one event instead of
// waiting out the failure detector, and subscribed clients receive final
// tombstone snapshots carrying a successor hint so they re-pin at once with
// no stale window — and then it shuts down.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	stableleader "stableleader"
	"stableleader/id"
	"stableleader/qos"
	"stableleader/transport"
)

// shutdownTimeout bounds the graceful departure on SIGINT/SIGTERM.
const shutdownTimeout = 5 * time.Second

// peerFlags collects repeated -peer id=host:port flags.
type peerFlags map[id.Process]string

func (p peerFlags) String() string { return fmt.Sprintf("%v", map[id.Process]string(p)) }

func (p peerFlags) Set(v string) error {
	name, addr, ok := strings.Cut(v, "=")
	if !ok || name == "" || addr == "" {
		return fmt.Errorf("want id=host:port, got %q", v)
	}
	p[id.Process(name)] = addr
	return nil
}

func main() {
	peers := peerFlags{}
	var (
		self      = flag.String("id", "", "this process's unique id (required)")
		listen    = flag.String("listen", ":7400", "UDP listen address")
		group     = flag.String("group", "demo", "group to join")
		algoName  = flag.String("algorithm", "omega-l", "election algorithm: omega-l, omega-lc, omega-id (or s3, s2, s1)")
		candidate = flag.Bool("candidate", true, "compete for leadership")
		serveCli  = flag.Bool("serve-clients", false, "answer remote leadership subscriptions (the client package)")
		events    = flag.Bool("events", false, "log the full event stream, not just leadership changes")
		tdu       = flag.Duration("tdu", time.Second, "QoS: crash detection time bound (TdU)")
		tmr       = flag.Duration("tmr", 100*24*time.Hour, "QoS: mistake recurrence lower bound (TmrL)")
		pa        = flag.Float64("pa", 0.99999988, "QoS: query accuracy lower bound (PaL)")
		shards    = flag.Int("shards", 0, "event-loop shards (0 = one per CPU); groups hash across them")
		receivers = flag.Int("udp-receivers", 1, "parallel UDP receive sockets (needs SO_REUSEPORT; falls back to 1)")
		udpBatch  = flag.Bool("udp-batch", true, "syscall-batched UDP packet plane (recvmmsg/sendmmsg+GSO where the kernel has them)")
		metrics   = flag.String("metrics-addr", "", "TCP address for /metrics, /healthz, /readyz, /debug/flight and /debug/pprof (off when empty)")
		statsEach = flag.Duration("stats-every", 0, "log a one-line packet-plane stats summary at this period (off when 0)")
	)
	flag.StringVar(algoName, "algo", *algoName, "alias for -algorithm")
	flag.Var(peers, "peer", "peer address as id=host:port (repeatable)")
	flag.Parse()

	if *self == "" {
		fmt.Fprintln(os.Stderr, "leaderd: -id is required")
		flag.Usage()
		os.Exit(2)
	}
	algo, err := stableleader.ParseAlgorithm(*algoName)
	if err != nil {
		log.Fatalf("leaderd: %v", err)
	}

	tr, err := transport.NewUDP(*listen, peers,
		transport.WithReceivers(*receivers), transport.WithBatchIO(*udpBatch))
	if err != nil {
		log.Fatalf("leaderd: %v", err)
	}
	svcOpts := []stableleader.Option{}
	if *serveCli {
		svcOpts = append(svcOpts, stableleader.WithClientPlane())
	}
	if *shards > 0 {
		svcOpts = append(svcOpts, stableleader.WithShards(*shards))
	}
	svc, err := stableleader.New(id.Process(*self), tr, svcOpts...)
	if err != nil {
		log.Fatalf("leaderd: %v", err)
	}

	seeds := make([]id.Process, 0, len(peers))
	for p := range peers {
		seeds = append(seeds, p)
	}
	// ctx ends on SIGINT/SIGTERM; everything blocking hangs off it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *metrics != "" {
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			log.Fatalf("leaderd: metrics listener: %v", err)
		}
		defer ln.Close()
		log.Printf("leaderd: observability on http://%s (/metrics /healthz /readyz /debug/flight /debug/pprof)", ln.Addr())
		go func() {
			// Serve until the listener closes at exit; the error then is
			// the expected "use of closed network connection".
			_ = http.Serve(ln, svc.ObsHandler())
		}()
	}

	// SIGUSR1 dumps the protocol flight recorder to stderr — the last N
	// protocol decisions per shard, for post-hoc election forensics
	// without the HTTP plane.
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	go func() {
		for range usr1 {
			dumpCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
			if err := svc.DumpFlight(dumpCtx, os.Stderr); err != nil {
				log.Printf("leaderd: flight dump: %v", err)
			}
			cancel()
		}
	}()

	if *statsEach > 0 {
		go func() {
			prev := svc.PacketStats()
			tick := time.NewTicker(*statsEach)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				cur := svc.PacketStats()
				d := cur.Delta(prev)
				prev = cur
				r := d.RatesOver(*statsEach)
				log.Printf("stats: out %.0f dgram/s %.0f msg/s %.0f B/s | in %.0f dgram/s %.0f msg/s %.0f B/s | pkts/syscall recv=%.2f send=%.2f",
					r.DatagramsOutPerSec, r.MessagesOutPerSec, r.BytesOutPerSec,
					r.DatagramsInPerSec, r.MessagesInPerSec, r.BytesInPerSec,
					d.RecvPacketsPerSyscall(), d.SendPacketsPerSyscall())
			}
		}()
	}

	joinOpts := []stableleader.JoinOption{
		stableleader.WithAlgorithm(algo),
		stableleader.WithQoS(qos.Spec{
			DetectionTime:     *tdu,
			MistakeRecurrence: *tmr,
			QueryAccuracy:     *pa,
		}),
		stableleader.WithSeeds(seeds...),
	}
	if *candidate {
		joinOpts = append(joinOpts, stableleader.AsCandidate())
	}
	grp, err := svc.Join(ctx, id.Group(*group), joinOpts...)
	if err != nil {
		log.Fatalf("leaderd: join: %v", err)
	}

	log.Printf("leaderd: %s joined group %q on %s (algorithm=%s candidate=%v peers=%d serve-clients=%v shards=%d receivers=%d batch-io=%v)",
		*self, *group, tr.LocalAddr(), algo, *candidate, len(peers), *serveCli, svc.Shards(), tr.Receivers(), tr.BatchIO())

	watchOpts := []stableleader.WatchOption{stableleader.WithInitialState()}
	if !*events {
		watchOpts = append(watchOpts,
			stableleader.WithEventFilter(stableleader.KindLeaderChanged))
	}
	for ev := range grp.Watch(ctx, watchOpts...) {
		switch e := ev.(type) {
		case stableleader.LeaderChanged:
			if e.Info.Elected {
				mark := ""
				if e.Info.Leader == id.Process(*self) {
					mark = "  (that's me)"
				}
				log.Printf("leader of %q is now %s%s", e.Info.Group, e.Info.Leader, mark)
			} else {
				log.Printf("group %q has no leader (election in progress)", e.Info.Group)
			}
		case stableleader.MemberJoined:
			log.Printf("member %s joined %q (candidate=%v)", e.Member, e.Group, e.Candidate)
		case stableleader.MemberLeft:
			log.Printf("member %s left %q", e.Member, e.Group)
		case stableleader.MemberSuspected:
			log.Printf("member %s of %q suspected", e.Member, e.Group)
		case stableleader.MemberTrusted:
			log.Printf("member %s of %q trusted", e.Member, e.Group)
		case stableleader.QoSReconfigured:
			log.Printf("link from %s reconfigured: η=%v δ=%v", e.Member, e.Interval, e.Timeout)
		case stableleader.StandbyChanged:
			if e.Standby == "" {
				log.Printf("group %q has no warm standby", e.Group)
			} else {
				log.Printf("warm standby of %q is now %s (planned handovers land here)", e.Group, e.Standby)
			}
		}
	}

	// The stream closed: the signal context was cancelled. Restore the
	// default signal disposition first so a second SIGINT/SIGTERM
	// force-quits instead of being swallowed, then leave the group
	// gracefully so peers re-elect immediately, bounded by a fresh
	// timeout (the signal context is already dead).
	stop()
	log.Printf("leaderd: leaving group and shutting down")
	closeCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := svc.Close(closeCtx); err != nil {
		log.Printf("leaderd: close: %v", err)
	}
}
