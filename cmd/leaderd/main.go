// Command leaderd runs one real leader election service instance over UDP —
// the deployment shape of the paper's C daemon. Start one per machine (or
// per terminal, with distinct ports) and watch the group elect and maintain
// a stable leader; kill the leader's process and watch the re-election.
//
// Example, three terminals on one machine:
//
//	leaderd -id a -listen :7401 -peer b=127.0.0.1:7402 -peer c=127.0.0.1:7403 -group demo
//	leaderd -id b -listen :7402 -peer a=127.0.0.1:7401 -peer c=127.0.0.1:7403 -group demo
//	leaderd -id c -listen :7403 -peer a=127.0.0.1:7401 -peer b=127.0.0.1:7402 -group demo
//
// Flags control the election algorithm (-algo omega-l|omega-lc|omega-id),
// candidacy (-candidate=false for a passive observer), and the failure
// detection QoS (-tdu, -tmr, -pa).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	stableleader "stableleader"
	"stableleader/id"
	"stableleader/qos"
	"stableleader/transport"
)

// peerFlags collects repeated -peer id=host:port flags.
type peerFlags map[id.Process]string

func (p peerFlags) String() string { return fmt.Sprintf("%v", map[id.Process]string(p)) }

func (p peerFlags) Set(v string) error {
	name, addr, ok := strings.Cut(v, "=")
	if !ok || name == "" || addr == "" {
		return fmt.Errorf("want id=host:port, got %q", v)
	}
	p[id.Process(name)] = addr
	return nil
}

func main() {
	peers := peerFlags{}
	var (
		self      = flag.String("id", "", "this process's unique id (required)")
		listen    = flag.String("listen", ":7400", "UDP listen address")
		group     = flag.String("group", "demo", "group to join")
		algoName  = flag.String("algo", "omega-l", "election algorithm: omega-l, omega-lc, omega-id")
		candidate = flag.Bool("candidate", true, "compete for leadership")
		tdu       = flag.Duration("tdu", time.Second, "QoS: crash detection time bound (TdU)")
		tmr       = flag.Duration("tmr", 100*24*time.Hour, "QoS: mistake recurrence lower bound (TmrL)")
		pa        = flag.Float64("pa", 0.99999988, "QoS: query accuracy lower bound (PaL)")
	)
	flag.Var(peers, "peer", "peer address as id=host:port (repeatable)")
	flag.Parse()

	if *self == "" {
		fmt.Fprintln(os.Stderr, "leaderd: -id is required")
		flag.Usage()
		os.Exit(2)
	}
	algo, err := stableleader.ParseAlgorithm(*algoName)
	if err != nil {
		log.Fatalf("leaderd: %v", err)
	}

	tr, err := transport.NewUDP(*listen, peers)
	if err != nil {
		log.Fatalf("leaderd: %v", err)
	}
	svc, err := stableleader.New(stableleader.Config{ID: id.Process(*self), Transport: tr})
	if err != nil {
		log.Fatalf("leaderd: %v", err)
	}

	seeds := make([]id.Process, 0, len(peers))
	for p := range peers {
		seeds = append(seeds, p)
	}
	grp, err := svc.Join(id.Group(*group), stableleader.JoinOptions{
		Candidate: *candidate,
		Algorithm: algo,
		QoS: qos.Spec{
			DetectionTime:     *tdu,
			MistakeRecurrence: *tmr,
			QueryAccuracy:     *pa,
		},
		Seeds: seeds,
	})
	if err != nil {
		log.Fatalf("leaderd: join: %v", err)
	}

	log.Printf("leaderd: %s joined group %q on %s (algo=%s candidate=%v peers=%d)",
		*self, *group, tr.LocalAddr(), algo, *candidate, len(peers))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case info, ok := <-grp.Changes():
			if !ok {
				return
			}
			if info.Elected {
				mark := ""
				if info.Leader == id.Process(*self) {
					mark = "  (that's me)"
				}
				log.Printf("leader of %q is now %s%s", info.Group, info.Leader, mark)
			} else {
				log.Printf("group %q has no leader (election in progress)", info.Group)
			}
		case <-sigc:
			log.Printf("leaderd: leaving group and shutting down")
			if err := svc.Close(true); err != nil {
				log.Printf("leaderd: close: %v", err)
			}
			return
		}
	}
}
